package relaxreplay

import (
	"fmt"
	"testing"

	"relaxreplay/internal/core"
	"relaxreplay/internal/experiments"
	"relaxreplay/internal/machine"
)

// One benchmark per table/figure of the paper's evaluation (§5). Each
// regenerates the figure's data on the simulated multicore and reports
// the headline numbers as benchmark metrics; `cmd/rrbench` prints the
// full per-application tables. Verification is enabled, so every
// benchmark run also proves RnR soundness end to end.
//
// Ablation benchmarks at the bottom sweep the design parameters called
// out in DESIGN.md §5.

// skipInShort keeps `go test -short -bench=.` (the CI bench smoke) to
// the cheap end of the suite: each figure benchmark records dozens of
// full simulations. BenchmarkTable1 stays, so the smoke still runs one
// complete recording.
func skipInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("full-suite benchmark; skipped in -short")
	}
}

func benchSuite(scale int) *experiments.Suite {
	opts := experiments.DefaultOptions()
	opts.Scale = scale
	return experiments.NewSuite(opts)
}

// BenchmarkTable1 exercises the default machine configuration end to
// end on one kernel (the parameters themselves are asserted in tests).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(1)
		run, err := s.Record("fft", core.Opt, experiments.I4K, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.Res.Cycles), "cycles")
		b.ReportMetric(float64(run.Instructions()), "instructions")
	}
}

// BenchmarkFig1 measures the fraction of memory accesses performed out
// of program order (paper: 59% loads, 3% stores on average).
func BenchmarkFig1(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		s := benchSuite(2)
		rows, _, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		avg := rows[len(rows)-1]
		b.ReportMetric(avg.OOOLoads*100, "oooLoads%")
		b.ReportMetric(avg.OOOStores*100, "oooStores%")
	}
}

// BenchmarkFig9 measures the fraction of accesses logged as reordered
// (paper averages: Base 1.7%/0.17% at 4K/INF, Opt 0.03%).
func BenchmarkFig9(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		s := benchSuite(2)
		rows, _, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		avg := rows[len(rows)-1]
		b.ReportMetric(avg.Base4K*100, "base4K%")
		b.ReportMetric(avg.Opt4K*100, "opt4K%")
		b.ReportMetric(avg.BaseINF*100, "baseINF%")
		b.ReportMetric(avg.OptINF*100, "optINF%")
	}
}

// BenchmarkFig10 measures InorderBlock entries, Opt normalized to Base
// (paper averages: 13% at 4K, 48% at INF).
func BenchmarkFig10(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		s := benchSuite(2)
		rows, _, err := s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		avg := rows[len(rows)-1]
		b.ReportMetric(avg.Opt4KNorm*100, "optVsBase4K%")
		b.ReportMetric(avg.OptINFNorm*100, "optVsBaseINF%")
	}
}

// BenchmarkFig11 measures uncompressed log bits per 1K instructions
// (paper averages: Base 360/42, Opt 22/12 at 4K/INF) and the log rate.
func BenchmarkFig11(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		s := benchSuite(2)
		rows, _, err := s.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		avg := rows[len(rows)-1]
		b.ReportMetric(avg.Base4KBits, "base4K-bits/1K")
		b.ReportMetric(avg.Opt4KBits, "opt4K-bits/1K")
		b.ReportMetric(avg.OptINFBits, "optINF-bits/1K")
		b.ReportMetric(avg.Opt4KMBps, "opt4K-MB/s")
	}
}

// BenchmarkFig12 measures TRAQ occupancy (paper: average below 64 of
// 176 entries everywhere).
func BenchmarkFig12(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		s := benchSuite(2)
		rows, _, err := s.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		var maxAvg, sum float64
		for _, r := range rows {
			sum += r.Average
			if r.Average > maxAvg {
				maxAvg = r.Average
			}
		}
		b.ReportMetric(sum/float64(len(rows)), "avgOccupancy")
		b.ReportMetric(maxAvg, "maxAvgOccupancy")
	}
}

// BenchmarkFig13 measures sequential replay time normalized to
// parallel recording (paper averages: Opt 8.5x/6.7x, Base 26.2x/8.6x
// at 4K/INF), verifying determinism of every replay.
func BenchmarkFig13(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		s := benchSuite(2)
		rows, _, err := s.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		report := map[string][]float64{}
		for _, r := range rows {
			key := fmt.Sprintf("%v%v", r.Variant, r.Mode)
			report[key] = append(report[key], r.NormTotal)
		}
		for key, vs := range report {
			var sum float64
			for _, v := range vs {
				sum += v
			}
			b.ReportMetric(sum/float64(len(vs)), key+"-x")
		}
	}
}

// BenchmarkFig14 measures scalability with 4, 8 and 16 cores (paper:
// reordered fraction and log rate grow with core count, not
// exponentially).
func BenchmarkFig14(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		s := benchSuite(1)
		rows, _, err := s.Figure14([]int{4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Variant == core.Opt && r.Mode == experiments.INF {
				b.ReportMetric(r.ReorderedPct*100, fmt.Sprintf("optINF-P%d-reord%%", r.Cores))
				b.ReportMetric(r.LogMBps, fmt.Sprintf("optINF-P%d-MB/s", r.Cores))
			}
		}
	}
}

// Suite parallelism ---------------------------------------------------------

// benchWarm records the Figure 9/10/11 cross-product (4 apps x Base/Opt
// x 4K/INF) through Suite.RecordAll at the given parallelism; comparing
// the Serial and Parallel variants shows the worker-pool speedup on a
// multi-core host (results are identical either way — see the
// determinism test in internal/experiments).
func benchWarm(b *testing.B, parallelism int) {
	b.Helper()
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultOptions()
		opts.Scale = 1
		opts.Cores = 4
		opts.Apps = []string{"fft", "lu", "radix", "volrend"}
		opts.Parallelism = parallelism
		s := experiments.NewSuite(opts)
		var specs []experiments.Spec
		for _, app := range opts.Apps {
			for _, v := range []core.Variant{core.Base, core.Opt} {
				for _, m := range []experiments.IntervalMode{experiments.I4K, experiments.INF} {
					specs = append(specs, experiments.Spec{App: app, Variant: v, Mode: m, Cores: opts.Cores})
				}
			}
		}
		if err := s.RecordAll(specs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteWarmSerial(b *testing.B)   { benchWarm(b, 1) }
func BenchmarkSuiteWarmParallel(b *testing.B) { benchWarm(b, 0) }

// Ablation benchmarks -------------------------------------------------------

// ablationRecord records one kernel under cfg and reports log size
// and reordered counts.
func ablationRecord(b *testing.B, cfg Config, app, label string) {
	b.Helper()
	w := MustKernel(app, cfg.Cores, 2)
	rec, err := Record(cfg, w)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rec.Replay(); err != nil {
		b.Fatal(err) // every ablation point must stay sound
	}
	b.ReportMetric(float64(rec.LogSizeBits())*1000/float64(rec.Instructions()), label+"-bits/1K")
	b.ReportMetric(float64(rec.ReorderedAccesses()), label+"-reordered")
}

// BenchmarkAblationSnoopTable sweeps the Snoop Table geometry: smaller
// tables alias more and declare more accesses reordered.
func BenchmarkAblationSnoopTable(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{8, 16, 64, 256} {
			cfg := DefaultConfig()
			cfg.Cores = 8
			cfg.SnoopTableEntries = entries
			ablationRecord(b, cfg, "fft", fmt.Sprintf("entries%d", entries))
		}
	}
}

// BenchmarkAblationIntervalSize sweeps the maximum interval size
// between the paper's 4K and INF endpoints.
func BenchmarkAblationIntervalSize(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		for _, max := range []uint64{256, 1024, 4096, 16384, 0} {
			cfg := DefaultConfig()
			cfg.Cores = 8
			cfg.MaxIntervalInstrs = max
			label := fmt.Sprintf("max%d", max)
			if max == 0 {
				label = "maxINF"
			}
			ablationRecord(b, cfg, "fft", label)
		}
	}
}

// BenchmarkAblationSignatureBits sweeps the interval signature size on
// barnes (whose per-interval footprints are large enough to saturate
// small signatures): tighter Bloom filters terminate intervals on
// false conflicts and inflate the log.
func BenchmarkAblationSignatureBits(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{64, 256, 1024} {
			cfg := DefaultConfig()
			cfg.Cores = 8
			cfg.SignatureBits = bits
			ablationRecord(b, cfg, "barnes", fmt.Sprintf("sig%d", bits))
		}
	}
}

// BenchmarkAblationTRAQDepth sweeps the TRAQ size: small queues stall
// dispatch (paper §5.3 argues 176 entries leave stalls negligible).
func BenchmarkAblationTRAQDepth(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		for _, size := range []int{16, 64, 176} {
			cfg := DefaultConfig()
			cfg.Cores = 8
			cfg.TRAQSize = size
			w := MustKernel("fft", cfg.Cores, 2)
			rec, err := Record(cfg, w)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rec.Replay(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rec.Cycles()), fmt.Sprintf("traq%d-cycles", size))
		}
	}
}

// BenchmarkRecordingOverhead measures simulator throughput for the
// recording path itself (instructions simulated per second).
func BenchmarkRecordingOverhead(b *testing.B) {
	skipInShort(b)
	cfg := DefaultConfig()
	cfg.Cores = 8
	w := MustKernel("ocean", cfg.Cores, 2)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		rec, err := Record(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		instrs += rec.Instructions()
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkAblationCountBandwidth sweeps the TRAQ counting bandwidth
// (the paper reads the TRAQ twice per cycle): starving the counting
// stage lengthens the perform-to-count window and inflates reordered
// accesses.
func BenchmarkAblationCountBandwidth(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		for _, bw := range []int{1, 2, 4} {
			rcfg := core.DefaultConfig(core.Opt)
			rcfg.CountPerCycle = bw
			w := MustKernel("fft", 8, 2)
			res, err := core.Record(machineCfg8(), rcfg, core.Workload{
				Name: w.Name, Progs: w.Progs, Inputs: w.Inputs, InitMem: w.InitMem,
			})
			if err != nil {
				b.Fatal(err)
			}
			var reord uint64
			for _, st := range res.RecStats {
				reord += st.ReorderedLoads + st.ReorderedStores + st.ReorderedAtomics
			}
			b.ReportMetric(float64(reord), fmt.Sprintf("count%d-reordered", bw))
		}
	}
}

func machineCfg8() machine.Config { return machine.DefaultConfig(8) }
