package relaxreplay

import (
	"bytes"
	"io"
	"testing"
)

// Pipeline benchmarks: one per stage of the record → encode → decode →
// replay pipeline, on a fixed small workload so they are cheap enough
// for the CI bench smoke (they are the measurements behind
// BENCH_5.json; `rrbench -benchjson` re-runs the same bodies).

// benchPipelineRecording records the reference workload once, for the
// stages that consume a recording.
func benchPipelineRecording(b *testing.B) *Recording {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Cores = 4
	rec, err := Record(cfg, MustKernel("fft", cfg.Cores, 1))
	if err != nil {
		b.Fatal(err)
	}
	return rec
}

// BenchmarkPipelineRecord measures the full recording path (simulated
// machine + recorder) in cycles simulated per second of wall time.
func BenchmarkPipelineRecord(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	w := MustKernel("fft", cfg.Cores, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		rec, err := Record(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		cycles += rec.Cycles()
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkPipelineEncode measures serializing a recorded log to the
// v2 framing, in log bytes produced per second.
func BenchmarkPipelineEncode(b *testing.B) {
	rec := benchPipelineRecording(b)
	var buf bytes.Buffer
	if err := rec.WriteLog(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rec.WriteLog(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineDecode measures the strict decode of a recorded log.
func BenchmarkPipelineDecode(b *testing.B) {
	rec := benchPipelineRecording(b)
	var buf bytes.Buffer
	if err := rec.WriteLog(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadLog(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineReplay measures patch + sequential replay + full
// verification of a recorded log.
func BenchmarkPipelineReplay(b *testing.B) {
	rec := benchPipelineRecording(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Replay(); err != nil {
			b.Fatal(err)
		}
	}
}
