// Package relaxreplay is a full-system reproduction of RelaxReplay
// (Honarmand & Torrellas, ASPLOS 2014): hardware-assisted memory race
// recording and deterministic replay for relaxed-consistency
// multiprocessors.
//
// The package simulates a release-consistent multicore (out-of-order
// cores, MESI coherence on a slotted ring or with a directory),
// attaches a RelaxReplay memory race recorder to every core
// (RelaxReplay_Base or RelaxReplay_Opt), produces the paper's interval
// log, and deterministically replays it — verifying that the replay
// reproduces the recorded execution bit-for-bit.
//
// Quick start:
//
//	w := relaxreplay.MustKernel("fft", 8, 2)       // an 8-thread workload
//	rec, err := relaxreplay.Record(relaxreplay.DefaultConfig(), w)
//	rep, err := rec.Replay()                       // patch + replay + verify
//	fmt.Println(rec.LogSizeBits(), rep.Timing.Total())
//
// Programs are written in the package's mini RISC ISA via NewProgram,
// or taken from the bundled SPLASH-2-analog kernels (Kernels) and
// litmus tests (LitmusTests). The internal packages contain the full
// simulator; this package is the stable surface.
package relaxreplay

import (
	"bytes"
	"fmt"
	"io"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/core"
	"relaxreplay/internal/cpu"
	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/isa"
	"relaxreplay/internal/machine"
	"relaxreplay/internal/provenance"
	"relaxreplay/internal/replay"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/telemetry"
)

// Telemetry is the shared metrics registry and event tracer; see
// internal/telemetry. A nil *Telemetry disables all instrumentation at
// zero cost, and enabling it never changes simulation behaviour —
// recorded logs and replay outcomes are byte-identical either way.
type Telemetry = telemetry.Telemetry

// TelemetryOptions configures NewTelemetry.
type TelemetryOptions = telemetry.Options

// NewTelemetry builds a telemetry instance to place in Config.Telemetry.
func NewTelemetry(o TelemetryOptions) *Telemetry { return telemetry.New(o) }

// FaultInjector is a deterministic, seeded fault-injection engine; see
// internal/faultinject. A nil *FaultInjector never fires, so every
// fault-aware API accepts nil for normal operation, and the pipeline is
// byte-identical with faults disabled.
type FaultInjector = faultinject.Injector

// ParseFaults builds a fault injector from a "spec@seed" string
// ("default@1", "log.bitflip,ic.drop@7", "" or "none" for disabled).
// This is the parser behind every command's -faults flag.
func ParseFaults(spec string) (*FaultInjector, error) { return faultinject.Parse(spec) }

// Variant selects the recorder design (paper §3.2).
type Variant int

const (
	// Base is RelaxReplay_Base: no Snoop Table; any access whose
	// perform and counting events fall in different intervals is
	// logged as reordered.
	Base Variant = iota
	// Opt is RelaxReplay_Opt: the Snoop Table proves most
	// cross-interval accesses unobserved, shrinking the log.
	Opt
)

func (v Variant) String() string {
	if v == Opt {
		return "opt"
	}
	return "base"
}

// MemoryModel selects the consistency model the simulated cores
// implement. RelaxReplay records any of them (the paper's central
// claim); the paper's evaluation uses RC.
type MemoryModel int

const (
	// RC is release consistency (the paper's target).
	RC MemoryModel = iota
	// TSO is total store ordering (the model earlier recorders like
	// CoreRacer and RTR support).
	TSO
	// SC is sequential consistency (what conventional chunk recorders
	// assume).
	SC
)

func (m MemoryModel) String() string {
	switch m {
	case TSO:
		return "tso"
	case SC:
		return "sc"
	}
	return "rc"
}

// Ordering selects the interval-ordering mechanism paired with
// RelaxReplay's event tracking (paper §3.6: any chunk-ordering scheme
// composes with it).
type Ordering int

const (
	// QuickRec orders intervals by a globally-consistent physical
	// timestamp (the paper's evaluated pairing).
	QuickRec Ordering = iota
	// Lamport orders intervals by scalar logical clocks piggybacked on
	// coherence messages (Intel MRR / Cyrus style).
	Lamport
)

// Protocol selects the coherence protocol (paper §4.3).
type Protocol int

const (
	// Snoopy broadcasts every transaction on the ring (the paper's
	// evaluation configuration).
	Snoopy Protocol = iota
	// Directory keeps exact sharer state at the L2 home and sends
	// targeted invalidations.
	Directory
)

// Config selects the machine and recorder parameters. The zero value
// is not valid; start from DefaultConfig.
type Config struct {
	// Cores is the number of simulated cores (paper default: 8).
	Cores int
	// Variant selects RelaxReplay_Base or RelaxReplay_Opt.
	Variant Variant
	// MaxIntervalInstrs bounds interval size in instructions; 0 means
	// unbounded (the paper's INF configuration).
	MaxIntervalInstrs uint64
	// Protocol selects snoopy or directory coherence.
	Protocol Protocol
	// Ordering selects the interval orderer (QuickRec or Lamport).
	Ordering Ordering
	// Memory selects the consistency model of the simulated cores
	// (RC, TSO or SC).
	Memory MemoryModel
	// MaxCycles aborts runaway (deadlocked) workloads.
	MaxCycles uint64

	// Shards spreads each cycle's core phase over this many goroutines
	// (see machine.Config.Shards). Purely a throughput knob: recorded
	// logs and all statistics are byte-identical to the serial loop.
	// 0 or 1 means serial.
	Shards int

	// Hardware geometry (paper Table 1 defaults; exposed for the
	// ablation studies).
	TRAQSize          int
	SnoopTableArrays  int
	SnoopTableEntries int
	SignatureBits     int

	// Telemetry, when non-nil, instruments the run: counters and
	// histograms in the registry, plus (when tracing is enabled) a
	// Chrome trace_event timeline. nil means zero overhead.
	Telemetry *Telemetry

	// Faults, when non-nil, injects the enabled fault points into the
	// recording machine (ic.delay / ic.drop on the interconnect) and
	// the recording session (flush.crash at finalize). Faults make a
	// run fail loudly (e.g. *machine.StallError surfaced from Record)
	// or produce an incomplete log — never silently wrong output. nil
	// keeps the simulation fully deterministic.
	Faults *FaultInjector

	// Provenance, when non-nil, captures per-interval provenance during
	// recording (why each interval terminated, conflict addresses and
	// remote cores, reorder instants, queue occupancy) as a sideband on
	// the log. It observes only: the interval log is byte-identical with
	// or without it, and nil costs nothing on the recording hot path.
	// The sideband is persisted by WriteLogV3 and read back by every
	// decode path; rrtrace and divergence forensics consume it.
	Provenance *ProvenanceCollector
}

// DefaultConfig returns the paper's default setup: 8 cores, snoopy
// MESI ring, RelaxReplay_Opt, 4K-instruction maximum intervals.
func DefaultConfig() Config {
	r := core.DefaultConfig(core.Opt)
	return Config{
		Cores:             8,
		Variant:           Opt,
		MaxIntervalInstrs: r.MaxIntervalInstrs,
		Protocol:          Snoopy,
		MaxCycles:         500_000_000,
		TRAQSize:          r.TRAQSize,
		SnoopTableArrays:  r.SnoopArrays,
		SnoopTableEntries: r.SnoopEntries,
		SignatureBits:     r.SigBits,
	}
}

func (c Config) machineConfig() machine.Config {
	m := machine.DefaultConfig(c.Cores)
	if c.Protocol == Directory {
		m.Mem.Protocol = coherence.Directory
	}
	switch c.Memory {
	case TSO:
		m.CPU.Model = cpu.TSO
	case SC:
		m.CPU.Model = cpu.SC
	}
	if c.MaxCycles > 0 {
		m.MaxCycles = c.MaxCycles
	}
	m.Telemetry = c.Telemetry
	m.Faults = c.Faults
	m.Shards = c.Shards
	return m
}

// Validate checks the configuration without running anything: the core
// count must be positive and the derived recorder geometry structurally
// sound (TRAQ and NMI capacities at least 1, non-negative buffer and
// signature sizes — see internal/core.Config.Validate). Record calls
// it, so an invalid Config fails fast with a descriptive error instead
// of panicking mid-simulation.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("relaxreplay: config needs Cores > 0 (start from DefaultConfig)")
	}
	return c.recorderConfig().Validate()
}

func (c Config) recorderConfig() core.Config {
	v := core.Base
	if c.Variant == Opt {
		v = core.Opt
	}
	r := core.DefaultConfig(v)
	r.MaxIntervalInstrs = c.MaxIntervalInstrs
	if c.Ordering == Lamport {
		r.Ordering = core.OrderingLamport
	}
	// 0 means "use the paper default"; negative values flow through so
	// Validate reports them instead of silently falling back.
	if c.TRAQSize != 0 {
		r.TRAQSize = c.TRAQSize
	}
	if c.SnoopTableArrays != 0 {
		r.SnoopArrays = c.SnoopTableArrays
	}
	if c.SnoopTableEntries != 0 {
		r.SnoopEntries = c.SnoopTableEntries
	}
	if c.SignatureBits != 0 {
		r.SigBits = c.SignatureBits
	}
	r.Telemetry = c.Telemetry
	r.Faults = c.Faults
	r.Provenance = c.Provenance
	return r
}

// ProvenanceCollector gathers the per-interval provenance sideband
// during recording; see internal/provenance. Place one in
// Config.Provenance to enable capture. A nil collector disables
// capture at zero cost.
type ProvenanceCollector = provenance.Collector

// NewProvenanceCollector builds a collector for Config.Provenance.
func NewProvenanceCollector() *ProvenanceCollector { return provenance.NewCollector() }

// CoreProvenance is one core's captured provenance stream.
type CoreProvenance = provenance.CoreProvenance

// ProvenanceRecord is the provenance of one recorded interval: its
// termination cause, conflict address and remote core, reorder
// instants, and queue occupancy at termination.
type ProvenanceRecord = provenance.Record

// Program is a fully-built instruction sequence for one hardware thread.
type Program = isa.Program

// ProgramBuilder assembles Programs with symbolic labels; see the
// methods of isa.Builder (Ld, St, AmoAdd, Beq, ...).
type ProgramBuilder = isa.Builder

// NewProgram returns a builder for a new program.
func NewProgram(name string) *ProgramBuilder { return isa.NewBuilder(name) }

// Workload is a multithreaded program plus its environment: one
// program per core, optional recorded-input streams, initial memory.
type Workload struct {
	Name    string
	Progs   []Program
	Inputs  [][]uint64
	InitMem map[uint64]uint64
}

// Log is a RelaxReplay interval log; see internal/replaylog for the
// entry types.
type Log = replaylog.Log

// Recording is the outcome of recording a workload.
type Recording struct {
	cfg Config
	w   Workload
	res *core.Result
}

// Record runs the workload on the simulated multicore with a
// RelaxReplay recorder on every core and returns the recording.
func Record(cfg Config, w Workload) (*Recording, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(w.Progs) != cfg.Cores {
		return nil, fmt.Errorf("relaxreplay: workload has %d programs for %d cores", len(w.Progs), cfg.Cores)
	}
	res, err := core.Record(cfg.machineConfig(), cfg.recorderConfig(), core.Workload{
		Name: w.Name, Progs: w.Progs, Inputs: w.Inputs, InitMem: w.InitMem,
	})
	if err != nil {
		return nil, err
	}
	return &Recording{cfg: cfg, w: w, res: res}, nil
}

// Log returns the raw (unpatched) interval log.
func (r *Recording) Log() *Log { return r.res.Log }

// PatchedLog returns the log after the off-line patching pass (paper
// §3.3.2), ready for replay.
func (r *Recording) PatchedLog() (*Log, error) { return r.res.Log.Patch() }

// Cycles returns the parallel recording time in cycles.
func (r *Recording) Cycles() uint64 { return r.res.Cycles }

// LogSizeBits returns the uncompressed log size in bits (the paper's
// Figure 11 metric).
func (r *Recording) LogSizeBits() int { return r.res.Log.SizeBits() }

// Instructions returns the total retired instruction count.
func (r *Recording) Instructions() uint64 {
	var n uint64
	for _, s := range r.res.CoreStats {
		n += s.Retired
	}
	return n
}

// ReorderedAccesses returns how many memory accesses were logged as
// reordered (the paper's Figure 9 metric).
func (r *Recording) ReorderedAccesses() uint64 {
	var n uint64
	for _, s := range r.res.RecStats {
		n += s.ReorderedLoads + s.ReorderedStores + s.ReorderedAtomics
	}
	return n
}

// FinalMemory returns the recorded execution's final memory image
// (non-zero words).
func (r *Recording) FinalMemory() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(r.res.FinalMemory))
	for k, v := range r.res.FinalMemory {
		out[k] = v
	}
	return out
}

// Provenance returns the captured per-interval provenance sideband,
// or nil when the recording ran without a Config.Provenance collector.
func (r *Recording) Provenance() []CoreProvenance { return r.res.Log.Provenance }

// WriteLog serializes the raw log (with the recorded input streams) to
// w, in the checksummed v2 framing.
func (r *Recording) WriteLog(w io.Writer) error { return replaylog.Encode(w, r.res.Log) }

// WriteLogV3 serializes the raw log in the compressed, seekable v3
// format: delta/varint group frames with a flate stage, plus a segment
// index footer that lets OpenIndexed seek individual intervals without
// a full scan. v3 files are typically a fraction of the v2 size and
// decode on all the same paths (ReadLog, ReadLogRobust, and the
// parallel variants).
func (r *Recording) WriteLogV3(w io.Writer) error { return replaylog.EncodeV3(w, r.res.Log) }

// WriteLogWith is WriteLog under fault injection: the encoder consults
// inj's log.dupframe point, and the encoded bytes pass through
// inj.Corrupt (bit flips, truncation, short writes) before reaching w.
// It returns descriptions of the corruptions applied, so callers can
// report what was done to the bytes. A nil injector is exactly
// WriteLog.
func (r *Recording) WriteLogWith(w io.Writer, inj *FaultInjector) ([]string, error) {
	var buf bytes.Buffer
	if err := replaylog.EncodeWith(&buf, r.res.Log, inj); err != nil {
		return nil, err
	}
	data, applied := inj.Corrupt(buf.Bytes())
	_, err := w.Write(data)
	return applied, err
}

// ReadLog deserializes a log written by WriteLog. It is strict: any
// corruption (bad checksum, torn frame, duplicated frame) fails with
// an error matching ErrCorruptFrame or ErrTruncated. Use
// ReadLogRobust to salvage what a damaged log still holds.
func ReadLog(rd io.Reader) (*Log, error) { return replaylog.Decode(rd) }

// ReadLogParallel is ReadLog with v3 per-core streams decoded
// concurrently; the result is identical, and it is just as strict
// (any corruption fails with a typed error).
func ReadLogParallel(rd io.Reader) (*Log, error) {
	l, rep, err := replaylog.DecodeParallel(rd)
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// CorruptionReport describes everything the robust decoder had to skip,
// drop or infer; see internal/replaylog. Clean() reports an intact log.
type CorruptionReport = replaylog.CorruptionReport

// Typed sentinel errors for log damage: errors.Is-matchable from any
// error returned by the strict decode path or CorruptionReport.Err.
var (
	// ErrCorruptFrame marks logs with damaged or lost frames.
	ErrCorruptFrame = replaylog.ErrCorruptFrame
	// ErrTruncated marks logs that end before their declared content.
	ErrTruncated = replaylog.ErrTruncated
)

// ReadLogRobust deserializes as much of a (possibly damaged) log as
// survives: corrupt frames are skipped with the decoder resyncing on
// the next frame marker, and everything skipped, dropped or inferred is
// itemized in the report. The returned log holds the intact frames
// only; the error is non-nil solely when nothing decodable remains.
func ReadLogRobust(rd io.Reader) (*Log, *CorruptionReport, error) {
	return replaylog.DecodeRobust(rd)
}

// ReadLogRobustParallel is ReadLogRobust with v3 per-core streams
// decoded concurrently (one goroutine per core, capped at GOMAXPROCS).
// The merge is deterministic: the log and report are identical to
// ReadLogRobust's on the same bytes. v1/v2 logs decode sequentially.
func ReadLogRobustParallel(rd io.Reader) (*Log, *CorruptionReport, error) {
	return replaylog.DecodeParallel(rd)
}

// WriteSalvagedLog re-encodes a log — typically the survivor returned
// by ReadLogRobust — as a clean, fully-checksummed file: the repair
// path of rrlog -repair.
func WriteSalvagedLog(w io.Writer, l *Log) error { return replaylog.Encode(w, l) }

// WriteSalvagedLogV3 is WriteSalvagedLog in the v3 format: the repair
// path of rrlog -repair -v3, upgrading a damaged v1/v2/v3 log to a
// clean compressed-and-indexed file in one pass.
func WriteSalvagedLogV3(w io.Writer, l *Log) error { return replaylog.EncodeV3(w, l) }

// ReplayResult is the outcome of a verified deterministic replay.
type ReplayResult struct {
	// Timing is the modeled sequential replay time (Figure 13).
	Timing ReplayTiming
	// Intervals is the number of intervals replayed.
	Intervals int
	// FinalMemory is the replayed memory image (equal to the
	// recording's, or Replay would have failed).
	FinalMemory map[uint64]uint64
	// Degradations lists the cores abandoned mid-replay. It is only
	// ever non-empty on the graceful-degradation path
	// (ReplayLogPartialWith); the strict paths fail instead.
	Degradations []Degradation
}

// Degradation records one core abandoned by a partial replay: where
// its stream stopped matching and why.
type Degradation = replay.Degradation

// DivergedError is the typed failure of a strict replay whose
// execution stopped matching the log (errors.As-matchable as
// *DivergedError). Interval -1 means a core ended before HALT.
type DivergedError = replay.ErrDiverged

// DivergenceReport is the structured forensic record of one replay
// divergence or degradation: the mismatch's expected and actual sides,
// the context window of preceding intervals across cores, and (when
// the log carries a provenance sideband) why the diverged interval
// terminated during recording. Serialize with its JSON method.
type DivergenceReport = replay.DivergenceReport

// DivergenceForensics builds one DivergenceReport per degradation of a
// partial replay against the log it ran on (patching it first if
// needed, as ReplayLogPartialWith did). This is the report rrreplay
// -forensics writes.
func DivergenceForensics(log *Log, degs []Degradation) []*DivergenceReport {
	patched := log
	if !log.Patched {
		if p, _, err := log.PatchPartial(); err == nil {
			patched = p
		}
	}
	return replay.DivergenceReports(patched, degs, replay.ForensicsOptions{})
}

// DamageForensics synthesizes a DivergenceReport for log damage with
// no replay-side divergence to point at (dropped frames, unplaceable
// stores): replay stayed on its surviving streams, so the damage
// summary itself is the forensic record.
func DamageForensics(detail string) *DivergenceReport { return replay.DamageReport(detail) }

// StalledError is the typed failure of a replay whose watchdog step
// budget ran out; its Report pins down where every core was.
type StalledError = replay.ErrStalled

// ReplayTiming is the modeled user/OS cycle breakdown.
type ReplayTiming = replay.Timing

// Replay patches the log, replays it sequentially in the recorded
// interval order, and verifies the replayed execution against the
// recording (every register, every memory word, every instruction
// count). An error means nondeterminism — the condition RnR exists to
// rule out.
func (r *Recording) Replay() (*ReplayResult, error) {
	patched, err := r.res.Log.Patch()
	if err != nil {
		return nil, err
	}
	cpi := make([]float64, r.cfg.Cores)
	retired := make([]uint64, r.cfg.Cores)
	for c, st := range r.res.CoreStats {
		retired[c] = st.Retired
		if st.Retired > 0 {
			cpi[c] = float64(st.Cycles) / float64(st.Retired)
		} else {
			cpi[c] = 1
		}
	}
	rcfg := replay.DefaultConfig()
	rcfg.Telemetry = r.cfg.Telemetry
	rp, err := replay.New(rcfg, patched, r.w.Progs, r.w.InitMem, cpi)
	if err != nil {
		return nil, err
	}
	rep, err := rp.Run()
	if err != nil {
		return nil, err
	}
	if err := replay.Verify(rep, r.res.FinalMemory, r.res.FinalRegs, retired); err != nil {
		return nil, err
	}
	return &ReplayResult{Timing: rep.Timing, Intervals: rep.Intervals, FinalMemory: rep.FinalMemory}, nil
}

// ReplayLog replays an externally-loaded (possibly unpatched) log
// against the workload that was recorded. It cannot verify against
// the original machine state (that lives in the Recording); it returns
// the replayed final memory for the caller to inspect.
func ReplayLog(log *Log, w Workload) (*ReplayResult, error) {
	return ReplayLogWith(log, w, nil)
}

// ReplayLogWith is ReplayLog with telemetry attached: the replayer's
// counters and trace events land in tel (which may be nil).
func ReplayLogWith(log *Log, w Workload, tel *Telemetry) (*ReplayResult, error) {
	patched := log
	if !log.Patched {
		var err error
		patched, err = log.Patch()
		if err != nil {
			return nil, err
		}
	}
	cfg := replay.DefaultConfig()
	cfg.Telemetry = tel
	rp, err := replay.New(cfg, patched, w.Progs, w.InitMem, nil)
	if err != nil {
		return nil, err
	}
	rep, err := rp.Run()
	if err != nil {
		return nil, err
	}
	return &ReplayResult{Timing: rep.Timing, Intervals: rep.Intervals, FinalMemory: rep.FinalMemory}, nil
}

// ReplayLogPartialWith replays a possibly damaged log with graceful
// degradation: the log is patched tolerantly (stores whose target
// intervals were lost are dropped), a core that stops matching its
// stream is abandoned and itemized in Degradations instead of failing
// the run, and the watchdog converts a replay hang into a typed
// *StalledError. Use it on the output of ReadLogRobust; the result's
// final state is authoritative only for undegraded cores.
func ReplayLogPartialWith(log *Log, w Workload, tel *Telemetry) (*ReplayResult, error) {
	patched := log
	if !log.Patched {
		var err error
		patched, _, err = log.PatchPartial()
		if err != nil {
			return nil, err
		}
	}
	cfg := replay.DefaultConfig()
	cfg.Telemetry = tel
	cfg.AllowPartial = true
	rp, err := replay.New(cfg, patched, w.Progs, w.InitMem, nil)
	if err != nil {
		return nil, err
	}
	rep, err := rp.Run()
	if err != nil {
		return nil, err
	}
	return &ReplayResult{Timing: rep.Timing, Intervals: rep.Intervals,
		FinalMemory: rep.FinalMemory, Degradations: rep.Degradations}, nil
}

// ParallelReplayEstimate is the parallel-replay scheduling estimate
// computed from the recorded Cyrus-style dependence edges (an
// extension; paper §5.4 anticipates parallel replay when RelaxReplay
// is paired with a dependence-recording orderer).
type ParallelReplayEstimate struct {
	SequentialCycles uint64
	ParallelCycles   uint64
	Speedup          float64
}

// EstimateParallelReplay schedules the recorded intervals with one
// logical processor per recorded core, honoring same-core order and
// the recorded cross-core dependence edges, and reports the modeled
// makespan next to sequential replay time.
func (r *Recording) EstimateParallelReplay() ParallelReplayEstimate {
	cpi := make([]float64, r.cfg.Cores)
	for c, st := range r.res.CoreStats {
		if st.Retired > 0 {
			cpi[c] = float64(st.Cycles) / float64(st.Retired)
		} else {
			cpi[c] = 1
		}
	}
	est := replay.EstimateParallel(replay.DefaultConfig(), r.res.Log, cpi)
	return ParallelReplayEstimate{
		SequentialCycles: est.SequentialCycles,
		ParallelCycles:   est.ParallelCycles,
		Speedup:          est.Speedup(),
	}
}
