module relaxreplay

go 1.22
