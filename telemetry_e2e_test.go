package relaxreplay

import (
	"bytes"
	"testing"

	"relaxreplay/internal/telemetry"
)

// A fully traced record+replay of a kernel must export a Chrome trace
// that round-trips through the decoder and carries events from every
// instrumented layer: the pipeline (cpu), the memory system
// (coherence), the recorder (core) and the replayer (replay).
func TestTraceEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Telemetry = NewTelemetry(TelemetryOptions{Shards: cfg.Cores, Trace: true})
	w, _, err := BuildKernel("fft", cfg.Cores, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Record(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Replay(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cfg.Telemetry.Tracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := telemetry.ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	cats := map[string]bool{}
	for _, c := range tr.Categories() {
		cats[c] = true
	}
	for _, want := range []string{"cpu", "coherence", "core", "interconnect", "replay"} {
		if !cats[want] {
			t.Errorf("trace has no %q events (categories: %v)", want, tr.Categories())
		}
	}

	// Both sides of the timeline must be named and populated.
	pids := map[int]bool{}
	var metadata int
	for _, ev := range tr.TraceEvents {
		pids[ev.Pid] = true
		if ev.Ph == telemetry.PhaseMetadata {
			metadata++
		}
	}
	if !pids[telemetry.PidRecord] || !pids[telemetry.PidReplay] {
		t.Fatalf("trace must span both the record (pid %d) and replay (pid %d) processes",
			telemetry.PidRecord, telemetry.PidReplay)
	}
	if metadata == 0 {
		t.Fatal("trace has no process/thread naming metadata")
	}

	// The registry side must have seen the same run.
	reg := cfg.Telemetry.Registry()
	if reg.Counter("core.intervals").Value() == 0 {
		t.Fatal("recorder formed no intervals")
	}
	if reg.Counter("replay.intervals").Value() == 0 {
		t.Fatal("replayer committed no intervals")
	}
	if reg.Counter("cpu.retired").Value() == 0 {
		t.Fatal("pipeline retired no instructions")
	}
	if reg.Counter("coherence.transactions").Value() == 0 {
		t.Fatal("memory system saw no transactions")
	}
}
