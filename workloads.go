package relaxreplay

import (
	"fmt"

	"relaxreplay/internal/isa"
	"relaxreplay/internal/workload"
)

// KernelInfo describes one bundled SPLASH-2-analog kernel.
type KernelInfo struct {
	Name        string
	Description string
}

// Kernels lists the bundled workload kernels (the SPLASH-2 analogs the
// evaluation runs; see DESIGN.md for the substitution rationale).
func Kernels() []KernelInfo {
	var out []KernelInfo
	for _, k := range workload.Kernels() {
		out = append(out, KernelInfo{Name: k.Name, Description: k.Description})
	}
	return out
}

// BuildKernel builds the named kernel for the given core count and
// problem scale. The returned Check function (non-nil for every
// bundled kernel) validates a final memory image against the kernel's
// sequential model.
func BuildKernel(name string, cores, scale int) (Workload, func(map[uint64]uint64) error, error) {
	k, err := workload.ByName(name)
	if err != nil {
		return Workload{}, nil, err
	}
	w := k.Build(cores, scale)
	return Workload{Name: w.Name, Progs: w.Progs, Inputs: w.Inputs, InitMem: w.InitMem}, w.Check, nil
}

// MustKernel is BuildKernel without the oracle, panicking on an
// unknown name; it keeps examples and tests terse.
func MustKernel(name string, cores, scale int) Workload {
	w, _, err := BuildKernel(name, cores, scale)
	if err != nil {
		panic(err)
	}
	return w
}

// LitmusTest is a classic relaxed-memory litmus workload.
type LitmusTest struct {
	Workload
	// ResultAddrs are the memory words holding the observed outcome.
	ResultAddrs []uint64
	// Allowed are the outcomes the RC model permits.
	Allowed [][]uint64
	// SCForbidden, when non-nil, is an outcome RC allows but
	// sequential consistency forbids.
	SCForbidden []uint64
}

// Outcome extracts the observed result vector from a final memory image.
func (l *LitmusTest) Outcome(mem map[uint64]uint64) []uint64 {
	out := make([]uint64, len(l.ResultAddrs))
	for i, a := range l.ResultAddrs {
		out[i] = mem[a]
	}
	return out
}

// LitmusTests returns the bundled litmus suite: store buffering (SB),
// message passing with and without acquire/release, and coherence
// read-read (CoRR).
func LitmusTests() []LitmusTest {
	var out []LitmusTest
	for _, l := range workload.AllLitmus() {
		out = append(out, LitmusTest{
			Workload: Workload{
				Name: l.Name, Progs: l.Progs, Inputs: l.Inputs, InitMem: l.InitMem,
			},
			ResultAddrs: l.ResultAddrs,
			Allowed:     l.Allowed,
			SCForbidden: l.SCForbidden,
		})
	}
	return out
}

// LitmusByName returns one litmus test.
func LitmusByName(name string) (LitmusTest, error) {
	for _, l := range LitmusTests() {
		if l.Name == name {
			return l, nil
		}
	}
	return LitmusTest{}, fmt.Errorf("relaxreplay: unknown litmus test %q", name)
}

// ParseProgram assembles a textual program (see internal/isa.Parse for
// the syntax):
//
//	        li   r10, 0x100
//	loop:   amoadd r3, r2, 0(r10)
//	        bne  r3, r0, loop
//	        halt
func ParseProgram(name, source string) (Program, error) {
	return isa.Parse(name, source)
}
