package relaxreplay_test

import (
	"fmt"
	"log"

	"relaxreplay"
)

// Record a two-thread handoff program and replay it with verification.
func Example() {
	producer := relaxreplay.NewProgram("producer")
	producer.Li(10, 0x100) // shared base address
	producer.Li(11, 7)
	producer.St(11, 10, 8)    // data
	producer.StRel(11, 10, 0) // release-publish flag
	producer.Halt()

	consumer := relaxreplay.NewProgram("consumer")
	consumer.Li(10, 0x100)
	consumer.Label("spin")
	consumer.LdAcq(12, 10, 0)
	consumer.Beq(12, 0, "spin")
	consumer.Ld(13, 10, 8)
	consumer.St(13, 10, 16)
	consumer.Halt()

	cfg := relaxreplay.DefaultConfig()
	cfg.Cores = 2
	rec, err := relaxreplay.Record(cfg, relaxreplay.Workload{
		Name:  "handoff",
		Progs: []relaxreplay.Program{producer.MustBuild(), consumer.MustBuild()},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rec.Replay(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("handed off:", rec.FinalMemory()[0x110])
	// Output: handed off: 7
}

// Assemble a program from text and record it on every core.
func ExampleParseProgram() {
	prog, err := relaxreplay.ParseProgram("count", `
        li   r10, 0x200
        li   r3, 0
loop:   amoadd r4, r2, 0(r10)  ; r2 is preloaded with the core count
        addi r3, r3, 1
        slti r5, r3, 10
        bne  r5, r0, loop
        halt
`)
	if err != nil {
		log.Fatal(err)
	}
	cfg := relaxreplay.DefaultConfig()
	cfg.Cores = 4
	rec, err := relaxreplay.Record(cfg, relaxreplay.Workload{
		Name:  "count",
		Progs: []relaxreplay.Program{prog, prog, prog, prog},
	})
	if err != nil {
		log.Fatal(err)
	}
	// 4 cores x 10 iterations x (+4 each) = 160.
	fmt.Println("counter:", rec.FinalMemory()[0x200])
	// Output: counter: 160
}

// Run a bundled SPLASH-2-analog kernel and check its oracle.
func ExampleBuildKernel() {
	cfg := relaxreplay.DefaultConfig()
	cfg.Cores = 4
	w, check, err := relaxreplay.BuildKernel("lu", cfg.Cores, 1)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := relaxreplay.Record(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("oracle:", check(rec.FinalMemory()) == nil)
	// Output: oracle: true
}
