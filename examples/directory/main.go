// Directory: RelaxReplay on directory coherence (paper §4.3).
//
// Under the snoopy ring every core observes every coherence
// transaction; under a directory a core only sees traffic for lines it
// caches, so the Snoop Table sees far less pressure — but loses sight
// of lines whose dirty copies get evicted, which §4.3 handles by
// self-incrementing the Snoop Table on dirty evictions. This example
// records the same workload under both protocols and compares.
package main

import (
	"fmt"
	"log"

	"relaxreplay"
)

func main() {
	for _, proto := range []struct {
		name string
		p    relaxreplay.Protocol
	}{{"snoopy ring", relaxreplay.Snoopy}, {"directory", relaxreplay.Directory}} {
		cfg := relaxreplay.DefaultConfig()
		cfg.Cores = 8
		cfg.Protocol = proto.p

		w, check, err := relaxreplay.BuildKernel("ocean", cfg.Cores, 2)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := relaxreplay.Record(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		if err := check(rec.FinalMemory()); err != nil {
			log.Fatalf("%s: oracle: %v", proto.name, err)
		}
		if _, err := rec.Replay(); err != nil {
			log.Fatalf("%s: replay diverged: %v", proto.name, err)
		}
		fmt.Printf("%-12s %8d cycles, log %7d bits, %5d reordered accesses — replay verified\n",
			proto.name, rec.Cycles(), rec.LogSizeBits(), rec.ReorderedAccesses())
	}
	fmt.Println("\nboth protocols record and replay deterministically;")
	fmt.Println("the directory's targeted invalidations reach fewer cores, and dirty")
	fmt.Println("evictions conservatively bump the Snoop Table (paper §4.3)")
}
