// Quickstart: record a SPLASH-2-analog kernel on the simulated 8-core
// release-consistent multicore, then deterministically replay it and
// verify the replay reproduced the recorded execution exactly.
package main

import (
	"fmt"
	"log"

	"relaxreplay"
)

func main() {
	// The paper's default setup: 8 cores, snoopy MESI ring,
	// RelaxReplay_Opt, 4K-instruction maximum intervals.
	cfg := relaxreplay.DefaultConfig()

	// Build the fft kernel: barrier-phased all-to-all transpose.
	w, check, err := relaxreplay.BuildKernel("fft", cfg.Cores, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Record. Every core runs out of order under release consistency;
	// the per-core recorders capture the interval log.
	rec, err := relaxreplay.Record(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %q: %d instructions in %d cycles\n",
		w.Name, rec.Instructions(), rec.Cycles())
	fmt.Printf("log size: %d bits (%.0f bits per 1K instructions)\n",
		rec.LogSizeBits(), float64(rec.LogSizeBits())*1000/float64(rec.Instructions()))
	fmt.Printf("accesses logged as reordered: %d\n", rec.ReorderedAccesses())

	// The kernel carries its own oracle: the parallel execution must
	// match the sequential model.
	if err := check(rec.FinalMemory()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload oracle: parallel result matches the sequential model")

	// Replay: patch the log, re-execute sequentially in the recorded
	// interval order, verify every register and memory word.
	rep, err := rec.Replay()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay verified: %d intervals, %.1fx the parallel recording time (OS share %.0f%%)\n",
		rep.Intervals,
		float64(rep.Timing.Total())/float64(rec.Cycles()),
		100*float64(rep.Timing.OSCycles)/float64(rep.Timing.Total()))
}
