// Anymodel: the paper's title claim in one run. The same store-
// buffering litmus test executes on RC, TSO and SC cores; the
// architectural outcome shifts exactly as each model allows, and
// RelaxReplay — without knowing which model it is recording — captures
// and replays all of them.
package main

import (
	"fmt"
	"log"

	"relaxreplay"
)

func main() {
	sb, err := relaxreplay.LitmusByName("sb")
	if err != nil {
		log.Fatal(err)
	}
	for _, mm := range []relaxreplay.MemoryModel{relaxreplay.RC, relaxreplay.TSO, relaxreplay.SC} {
		cfg := relaxreplay.DefaultConfig()
		cfg.Cores = len(sb.Progs)
		cfg.Memory = mm

		rec, err := relaxreplay.Record(cfg, sb.Workload)
		if err != nil {
			log.Fatal(err)
		}
		got := sb.Outcome(rec.FinalMemory())
		verdict := "both loads saw the other store (SC-like outcome)"
		if got[0] == 1 && got[1] == 1 {
			verdict = "both loads bypassed the stores — forbidden under SC"
		}
		if _, err := rec.Replay(); err != nil {
			log.Fatalf("%v: replay diverged: %v", mm, err)
		}
		fmt.Printf("%-4s outcome %v: %s; replay verified\n", mm, got, verdict)
	}
	fmt.Println("\nRelaxReplay recorded all three models with the same hardware —")
	fmt.Println("it relies only on write atomicity, never on the model definition (§3.6)")
}
