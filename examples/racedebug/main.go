// Racedebug: the concurrency-debugging use case that motivates RnR.
//
// Four threads increment a shared counter WITHOUT a lock (a classic
// lost-update data race). The buggy outcome depends on microarchitec-
// tural timing — exactly the kind of heisenbug that vanishes under a
// debugger. We record one buggy execution and then replay it: the
// replay reproduces the same lost updates, every time, so the bug can
// be examined deterministically.
package main

import (
	"fmt"
	"log"

	"relaxreplay"
)

const (
	counterAddr = 0x100
	iters       = 40
)

// racyProgram increments mem[counterAddr] iters times with a plain
// load/add/store — no lock, no atomic. Increments from different
// threads can interleave and be lost.
func racyProgram() relaxreplay.Program {
	b := relaxreplay.NewProgram("racy-counter")
	b.Li(10, counterAddr)
	b.Li(3, 0)
	b.Li(4, iters)
	b.Label("loop")
	b.Ld(5, 10, 0)
	b.Addi(5, 5, 1)
	b.St(5, 10, 0) // racy read-modify-write
	b.Addi(3, 3, 1)
	b.Bne(3, 4, "loop")
	b.Halt()
	return b.MustBuild()
}

func main() {
	cfg := relaxreplay.DefaultConfig()
	cfg.Cores = 4
	progs := make([]relaxreplay.Program, cfg.Cores)
	for i := range progs {
		progs[i] = racyProgram()
	}
	w := relaxreplay.Workload{Name: "racy-counter", Progs: progs}

	rec, err := relaxreplay.Record(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	final := rec.FinalMemory()[counterAddr]
	expected := uint64(cfg.Cores * iters)
	fmt.Printf("expected counter: %d\n", expected)
	fmt.Printf("recorded counter: %d (%d updates lost to the race)\n",
		final, expected-final)
	if final == expected {
		fmt.Println("(no updates lost in this timing — rerun with more cores/iters)")
	}

	// Replay the captured execution several times: the lost-update
	// pattern is now perfectly deterministic.
	for i := 1; i <= 3; i++ {
		rep, err := rec.Replay()
		if err != nil {
			log.Fatalf("replay %d diverged: %v", i, err)
		}
		fmt.Printf("replay %d: counter = %d (identical, verified against the recording)\n",
			i, rep.FinalMemory[counterAddr])
	}
	fmt.Println("the heisenbug is now reproducible under a debugger")
}
