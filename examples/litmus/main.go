// Litmus: demonstrate that the simulated machine really is
// relaxed-consistent — it produces executions sequential consistency
// forbids — and that RelaxReplay records and reproduces exactly the
// relaxed outcome that occurred.
package main

import (
	"fmt"
	"log"
	"reflect"

	"relaxreplay"
)

func main() {
	for _, l := range relaxreplay.LitmusTests() {
		cfg := relaxreplay.DefaultConfig()
		cfg.Cores = len(l.Progs)

		rec, err := relaxreplay.Record(cfg, l.Workload)
		if err != nil {
			log.Fatalf("%s: %v", l.Name, err)
		}
		got := l.Outcome(rec.FinalMemory())

		note := ""
		if l.SCForbidden != nil && reflect.DeepEqual(got, l.SCForbidden) {
			note = "  <- forbidden under SC; allowed (and observed) under RC"
		}
		fmt.Printf("%-12s outcome %v%s\n", l.Name, got, note)

		// Replay must reproduce the exact recorded outcome, including
		// the non-SC ones: that is the whole point of RelaxReplay.
		rep, err := rec.Replay()
		if err != nil {
			log.Fatalf("%s: replay diverged: %v", l.Name, err)
		}
		replayed := l.Outcome(rep.FinalMemory)
		if !reflect.DeepEqual(replayed, got) {
			log.Fatalf("%s: replayed outcome %v != recorded %v", l.Name, replayed, got)
		}
		fmt.Printf("%-12s replayed outcome matches the recording\n", "")
	}
}
