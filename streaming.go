package relaxreplay

// Streaming facade: record on one machine, journal on another.
//
// The rrnet package implements a fault-tolerant 1:N record-and-replay
// streaming service: rrd (the recorder-side agent) opens a session
// against rrproc (the central processor), streams the v3 log over a
// CRC-framed wire protocol with retry/backoff/resume, and rrproc
// multiplexes every tenant into a crash-safe append-only journal.
// This file re-exports the small surface a caller needs; the daemons
// under cmd/rrd and cmd/rrproc are thin wrappers over it.

import (
	"io"
	"net"

	"relaxreplay/internal/rrnet"
	"relaxreplay/internal/telemetry"
)

// StreamClient dials rrproc and opens sessions.
type StreamClient = rrnet.Client

// StreamClientOptions configures a StreamClient (address, chunking,
// retry budget, backpressure policy).
type StreamClientOptions = rrnet.ClientOptions

// StreamSession is one in-flight session: an io.WriteCloser that is
// natural to hand to WriteLogV3.
type StreamSession = rrnet.SessionWriter

// StreamResult summarizes a committed session.
type StreamResult = rrnet.SessionResult

// StreamServer is the rrproc side: accepts sessions, journals them.
type StreamServer = rrnet.Server

// StreamServerOptions configures a StreamServer (listen address,
// journal path, session and reorder bounds, fsync cadence).
type StreamServerOptions = rrnet.ServerOptions

// BackpressurePolicy picks what a session does when the send window
// is full: block the recorder, drop chunks (degraded commit), or
// spill them to disk.
type BackpressurePolicy = rrnet.BackpressurePolicy

// Backpressure policies.
const (
	BackpressureBlock = rrnet.Block
	BackpressureDrop  = rrnet.Drop
	BackpressureSpill = rrnet.Spill
)

// Session commit statuses (StreamResult.Status and journal verdicts).
const (
	StreamStatusOK       = rrnet.StatusOK
	StreamStatusDegraded = rrnet.StatusDegraded
	StreamStatusReject   = rrnet.StatusReject
)

// ParseBackpressure parses "block", "drop" or "spill".
func ParseBackpressure(s string) (BackpressurePolicy, error) {
	return rrnet.ParseBackpressure(s)
}

// NewStreamClient validates opts and builds a client. reg may be nil.
func NewStreamClient(opts StreamClientOptions, reg *telemetry.Registry) (*StreamClient, error) {
	return rrnet.NewClient(opts, reg)
}

// NewStreamServer opens (or recovers) the journal and builds a
// server; call Serve/Listen to accept sessions and Shutdown to drain.
func NewStreamServer(opts StreamServerOptions, reg *telemetry.Registry) (*StreamServer, error) {
	return rrnet.NewServer(opts, reg)
}

// JournalView is the recovered state of an rrproc journal.
type JournalView = rrnet.JournalView

// JournalSession is one session's recovered state inside a JournalView.
type JournalSession = rrnet.JournalSession

// ReadStreamJournal scans an rrproc journal, salvaging everything
// recoverable (torn tails and duplicated records are tolerated and
// reported, mirroring ReadLogRobust for local logs).
func ReadStreamJournal(path string) (*JournalView, error) {
	return rrnet.ReadJournal(path)
}

// WrapStreamConn attaches the injector's net.* fault points to a
// connection's write path (the chaos transport). A nil injector
// returns nc unchanged. Install it via StreamClient.Dial.
func WrapStreamConn(nc net.Conn, inj *FaultInjector) net.Conn {
	return rrnet.WrapFaultConn(nc, inj)
}

// StreamLogV3 encodes the recording as a v3 log directly onto an open
// stream session and commits it. On success the returned result says
// whether the journaled copy is byte-identical (StreamStatusOK) or
// degraded with a report. The session is consumed either way.
func (r *Recording) StreamLogV3(sw *StreamSession) (StreamResult, error) {
	if err := r.WriteLogV3(sw); err != nil {
		// Abort, not Close: committing the truncated prefix would
		// journal it as a healthy session.
		sw.Abort()
		return sw.Result(), err
	}
	err := sw.Close()
	return sw.Result(), err
}

var _ io.WriteCloser = (*StreamSession)(nil)
