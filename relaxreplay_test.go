package relaxreplay

import (
	"bytes"
	"testing"
)

func TestRecordReplayKernel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	w, check, err := BuildKernel("fft", cfg.Cores, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Record(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := check(rec.FinalMemory()); err != nil {
		t.Fatal(err)
	}
	rep, err := rec.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intervals == 0 || rep.Timing.Total() == 0 {
		t.Fatalf("degenerate replay: %+v", rep)
	}
	if rec.Instructions() == 0 || rec.LogSizeBits() == 0 || rec.Cycles() == 0 {
		t.Fatal("empty recording stats")
	}
}

func TestBaseAndOptBothSound(t *testing.T) {
	for _, v := range []Variant{Base, Opt} {
		cfg := DefaultConfig()
		cfg.Cores = 4
		cfg.Variant = v
		rec, err := Record(cfg, MustKernel("barnes", 4, 1))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if _, err := rec.Replay(); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}

func TestDirectoryProtocol(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Protocol = Directory
	rec, err := Record(cfg, MustKernel("ocean", 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Replay(); err != nil {
		t.Fatal(err)
	}
}

func TestLogSerializationRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	w := MustKernel("volrend", 2, 1)
	rec, err := Record(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayLog(log, w)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.FinalMemory()
	for a, v := range want {
		if rep.FinalMemory[a] != v {
			t.Fatalf("mem[%#x] = %d, want %d", a, rep.FinalMemory[a], v)
		}
	}
}

func TestCustomProgram(t *testing.T) {
	// Two threads hand off a value through a release/acquire flag.
	p := NewProgram("producer")
	p.Li(10, 0x100).Li(11, 7).St(11, 10, 8).StRel(11, 10, 0).Halt()
	c := NewProgram("consumer")
	c.Li(10, 0x100)
	c.Label("spin")
	c.LdAcq(12, 10, 0)
	c.Beq(12, 0, "spin")
	c.Ld(13, 10, 8)
	c.St(13, 10, 16)
	c.Halt()
	cfg := DefaultConfig()
	cfg.Cores = 2
	rec, err := Record(cfg, Workload{
		Name:  "handoff",
		Progs: []Program{p.MustBuild(), c.MustBuild()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.FinalMemory()[0x110]; got != 7 {
		t.Fatalf("handoff value = %d", got)
	}
	if _, err := rec.Replay(); err != nil {
		t.Fatal(err)
	}
}

func TestLitmusRecordedOutcomeReplays(t *testing.T) {
	for _, l := range LitmusTests() {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cores = len(l.Progs)
			rec, err := Record(cfg, l.Workload)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rec.Replay(); err != nil {
				t.Fatal(err)
			}
			got := l.Outcome(rec.FinalMemory())
			ok := false
			for _, a := range l.Allowed {
				match := true
				for i := range a {
					if a[i] != got[i] {
						match = false
					}
				}
				if match {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("outcome %v not allowed (%v)", got, l.Allowed)
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Record(Config{}, Workload{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultConfig()
	if _, err := Record(cfg, Workload{Progs: make([]Program, 3)}); err == nil {
		t.Fatal("program/core mismatch accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	// Bad recorder geometry fails fast with a descriptive error, not a
	// runtime panic mid-simulation.
	for _, mutate := range []func(*Config){
		func(c *Config) { c.TRAQSize = -1 },
		func(c *Config) { c.SnoopTableEntries = -4 },
		func(c *Config) { c.SignatureBits = -8 },
		func(c *Config) { c.Cores = -2 },
	} {
		bad := DefaultConfig()
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
		if _, err := Record(bad, MustKernel("fft", 8, 1)); err == nil {
			t.Fatal("Record accepted invalid geometry")
		}
	}
}

func TestKernelRegistryExposed(t *testing.T) {
	ks := Kernels()
	if len(ks) != 13 {
		t.Fatalf("kernels = %d", len(ks))
	}
	if _, _, err := BuildKernel("nope", 2, 1); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := LitmusByName("sb"); err != nil {
		t.Fatal(err)
	}
	if _, err := LitmusByName("nope"); err == nil {
		t.Fatal("unknown litmus accepted")
	}
}

func TestParallelReplayEstimate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.MaxIntervalInstrs = 0
	rec, err := Record(cfg, MustKernel("fft", 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	est := rec.EstimateParallelReplay()
	if est.SequentialCycles == 0 || est.ParallelCycles == 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
	if est.ParallelCycles > est.SequentialCycles {
		t.Fatal("parallel schedule slower than sequential")
	}
	if est.Speedup < 1 || est.Speedup > 4 {
		t.Fatalf("speedup %.2f out of [1, cores]", est.Speedup)
	}
}

func TestLamportOrderingPublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Ordering = Lamport
	rec, err := Record(cfg, MustKernel("barnes", 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Replay(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryModelsAllRecordAndReplay(t *testing.T) {
	// The paper's central claim: RelaxReplay records any consistency
	// model with write atomicity. Exercise RC, TSO and SC.
	for _, mm := range []MemoryModel{RC, TSO, SC} {
		t.Run(mm.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cores = 4
			cfg.Memory = mm
			w, check, err := BuildKernel("radix", 4, 1)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := Record(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			if err := check(rec.FinalMemory()); err != nil {
				t.Fatal(err)
			}
			if _, err := rec.Replay(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLitmusOutcomesAcrossModels(t *testing.T) {
	// SB's non-SC outcome must appear under RC and TSO (store
	// buffering is visible in both) but never under SC.
	sb, err := LitmusByName("sb")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		mm       MemoryModel
		sbBypass bool
	}{{RC, true}, {TSO, true}, {SC, false}} {
		cfg := DefaultConfig()
		cfg.Cores = 2
		cfg.Memory = c.mm
		rec, err := Record(cfg, sb.Workload)
		if err != nil {
			t.Fatalf("%v: %v", c.mm, err)
		}
		got := sb.Outcome(rec.FinalMemory())
		bypassed := got[0] == 1 && got[1] == 1
		if bypassed != c.sbBypass {
			t.Fatalf("%v: SB outcome %v (bypassed=%v, want %v)", c.mm, got, bypassed, c.sbBypass)
		}
		if _, err := rec.Replay(); err != nil {
			t.Fatalf("%v: %v", c.mm, err)
		}
	}

	// Unordered MP may read stale data under RC but not under TSO
	// (stores drain in order, loads bind in order) nor SC.
	mp, err := LitmusByName("mp")
	if err != nil {
		t.Fatal(err)
	}
	for _, mm := range []MemoryModel{TSO, SC} {
		cfg := DefaultConfig()
		cfg.Cores = 2
		cfg.Memory = mm
		rec, err := Record(cfg, mp.Workload)
		if err != nil {
			t.Fatalf("%v: %v", mm, err)
		}
		if got := mp.Outcome(rec.FinalMemory()); got[0] != 42 {
			t.Fatalf("%v: MP read stale data: %v", mm, got)
		}
	}
}
