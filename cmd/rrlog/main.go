// Command rrlog inspects a RelaxReplay log written by rrsim.
//
// Usage:
//
//	rrlog -log fft.rrlog [-dump] [-core 3] [-patch] [-stats]
//	      [-seek core:seq] [-verify] [-repair fixed.rrlog] [-v3]
//	      [-faults spec@seed] [-metrics report.txt] [-trace trace.json]
//
// Without -dump it prints summary statistics (per-core interval and
// entry counts, size accounting, reorder histogram, and — when the log
// carries a provenance sideband from rrsim -provenance -v3 — a
// per-core termination-cause table; rrtrace analyzes the sideband in
// depth). With -dump it prints every interval record in a readable
// form. -stats adds storage
// accounting: the on-disk size next to the log re-encoded in the v2
// and compressed v3 formats, with the v3/v2 compression ratio. -seek
// core:seq fetches a single interval through the v3 segment index
// without scanning the file (falling back to a linear scan for v1/v2
// files or a damaged index). -metrics writes the log's entry-type
// accounting as a metrics report; -trace exports the recorded interval
// timeline (reconstructed from the logged interval timestamps) as
// Chrome trace_event JSON for chrome://tracing or Perfetto.
//
// Every mode reads through the resyncing robust decoder (v3 per-core
// streams decode in parallel), so a damaged log is inspected rather
// than rejected — but damage is never silent: rrlog prints a
// structured corruption summary on stderr and exits non-zero whenever
// the log is not intact. -verify does only the integrity check (exit 0
// iff clean); -repair additionally writes the surviving frames back
// out as a clean, fully-checksummed log — in the v2 framing, or the
// compressed v3 format with -v3. -faults injects read-side faults
// (e.g. log.shortread@1) to exercise these paths.
package main

import (
	"flag"
	"fmt"
	"os"

	"relaxreplay"
	"relaxreplay/internal/provenance"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/stats"
	"relaxreplay/internal/telemetry"
)

func main() {
	logPath := flag.String("log", "", "log file written by rrsim -o")
	dump := flag.Bool("dump", false, "dump every interval record")
	onlyCore := flag.Int("core", -1, "restrict -dump to one core")
	patch := flag.Bool("patch", false, "apply the patching pass before inspecting")
	verify := flag.Bool("verify", false, "integrity-check only: report corruption, exit 0 iff the log is intact")
	repair := flag.String("repair", "", "write the surviving frames to this file as a clean log")
	repairV3 := flag.Bool("v3", false, "with -repair: write the repaired log in the compressed v3 format")
	statsFlag := flag.Bool("stats", false, "print storage statistics: encoded v2/v3 sizes and compression ratio")
	seek := flag.String("seek", "", "core:seq — fetch one interval through the v3 segment index, no full scan")
	faults := flag.String("faults", "", "inject read-side faults: point[,point...]@seed")
	var tf telemetry.Flags
	tf.Register(nil)
	flag.Parse()

	if *logPath == "" {
		fatal(fmt.Errorf("-log is required"))
	}
	inj, err := relaxreplay.ParseFaults(*faults)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*logPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var size int64
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	// An rrproc journal ("RRJL") holds many sessions' logs, not one
	// log; pointing rrlog at it is a common fleet-workflow slip that
	// deserves a road sign rather than a resync-scan corruption report.
	var magic [4]byte
	if n, _ := f.ReadAt(magic[:], 0); n == 4 && string(magic[:]) == "RRJL" {
		fatal(fmt.Errorf("%s is an rrproc journal, not a log file; list its sessions with `rrproc -journal %s -query`, then extract one with `rrproc -journal %s -export <id> -o <file>` and rerun rrlog on that", *logPath, *logPath, *logPath))
	}

	if *seek != "" {
		var core int
		var seq uint64
		if _, err := fmt.Sscanf(*seek, "%d:%d", &core, &seq); err != nil {
			fatal(fmt.Errorf("bad -seek %q (want core:seq): %v", *seek, err))
		}
		ix, err := replaylog.OpenIndexed(f, size)
		if err != nil {
			fatal(err)
		}
		if !ix.Indexed() {
			fmt.Fprintf(os.Stderr, "rrlog: no usable index (%s); serving the seek from a linear scan\n", ix.Reason())
		}
		iv, err := ix.DecodeInterval(core, seq)
		if err != nil {
			fatal(err)
		}
		printInterval(core, iv)
		return
	}

	log, rep, err := relaxreplay.ReadLogRobustParallel(inj.WrapReader(f, size))
	if err != nil {
		// Nothing salvageable: the summary is the diagnosis.
		if rep != nil {
			fmt.Fprintln(os.Stderr, "rrlog: corruption summary:")
			fmt.Fprintln(os.Stderr, rep.Summary())
		}
		fatal(err)
	}
	corrupt := !rep.Clean()
	if corrupt {
		fmt.Fprintln(os.Stderr, "rrlog: log is DAMAGED; corruption summary:")
		fmt.Fprintln(os.Stderr, rep.Summary())
	}

	if *repair != "" {
		rf, err := os.Create(*repair)
		if err != nil {
			fatal(err)
		}
		write := relaxreplay.WriteSalvagedLog
		format := "v2"
		if *repairV3 {
			write = relaxreplay.WriteSalvagedLogV3
			format = "v3"
		}
		if err := write(rf, log); err != nil {
			fatal(err)
		}
		if err := rf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("repaired: wrote %d intact interval(s) across %d core(s) to %s (%s)\n",
			countIntervals(log), len(log.Streams), *repair, format)
	}
	if *verify {
		if corrupt {
			os.Exit(1)
		}
		fmt.Println("log is intact: every frame checksummed and accounted for")
		return
	}
	if *repair != "" {
		// Repair is terminal: the salvage succeeded, so exit 0 even
		// though the input was damaged (the summary already said so).
		return
	}

	if *patch && !log.Patched {
		patched, dropped, err := log.PatchPartial()
		if err != nil {
			fatal(err)
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "rrlog: WARNING: %d store(s) unpatchable (target intervals lost)\n", dropped)
		}
		log = patched
	}
	if err := log.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "rrlog: WARNING: log fails validation:", err)
	}

	fmt.Printf("log: %d cores, variant %s, patched=%v\n", log.Cores, log.Variant, log.Patched)
	fmt.Printf("instructions: %d; uncompressed size: %d bits (%.1f bits/1K instructions)\n",
		log.Instructions(), log.SizeBits(),
		float64(log.SizeBits())*1000/float64(max64(log.Instructions(), 1)))

	if *statsFlag {
		var v2n, v3n countWriter
		if err := replaylog.Encode(&v2n, log); err != nil {
			fatal(err)
		}
		if err := replaylog.EncodeV3(&v3n, log); err != nil {
			fmt.Fprintln(os.Stderr, "rrlog: WARNING: log not v3-encodable:", err)
		} else {
			fmt.Printf("storage: on-disk %d B (format v%d); re-encoded v2 %d B, v3 %d B; compression ratio %.3f (v3/v2)\n",
				size, rep.Version, v2n.n, v3n.n, float64(v3n.n)/float64(v2n.n))
		}
	}

	if len(log.Provenance) > 0 {
		pt := stats.NewTable("provenance sideband",
			"core", "records", "conflict", "size", "final", "reorders")
		for _, cp := range log.Provenance {
			var conf, size, final, reord int
			for _, r := range cp.Records {
				switch r.Cause {
				case provenance.CauseConflict:
					conf++
				case provenance.CauseSize:
					size++
				case provenance.CauseFinal:
					final++
				}
				reord += len(r.Reorders)
			}
			pt.AddRow(fmt.Sprint(cp.Core), fmt.Sprint(len(cp.Records)),
				fmt.Sprint(conf), fmt.Sprint(size), fmt.Sprint(final), fmt.Sprint(reord))
		}
		fmt.Println()
		fmt.Println(pt)
	}

	t := stats.NewTable("per-core summary",
		"core", "intervals", "instrs", "blocks", "reord ld", "reord st", "reord amo", "dummies", "preds")
	for _, s := range log.Streams {
		var instrs uint64
		counts := map[replaylog.EntryType]int{}
		preds := 0
		for i := range s.Intervals {
			iv := &s.Intervals[i]
			instrs += iv.Instructions()
			preds += len(iv.Preds)
			for _, e := range iv.Entries {
				counts[e.Type]++
			}
		}
		t.AddRow(fmt.Sprint(s.Core), fmt.Sprint(len(s.Intervals)), fmt.Sprint(instrs),
			fmt.Sprint(counts[replaylog.InorderBlock]),
			fmt.Sprint(counts[replaylog.ReorderedLoad]),
			fmt.Sprint(counts[replaylog.ReorderedStore]+counts[replaylog.PatchedStore]),
			fmt.Sprint(counts[replaylog.ReorderedAtomic]),
			fmt.Sprint(counts[replaylog.Dummy]),
			fmt.Sprint(preds))
	}
	fmt.Println()
	fmt.Println(t)

	tel, err := tf.New(log.Cores)
	if err != nil {
		fatal(err)
	}
	if tel != nil {
		logTelemetry(tel, log)
		if err := tf.Flush(tel); err != nil {
			fatal(err)
		}
	}

	if !*dump {
		if corrupt {
			os.Exit(1)
		}
		return
	}
	for _, s := range log.Streams {
		if *onlyCore >= 0 && s.Core != *onlyCore {
			continue
		}
		for i := range s.Intervals {
			printInterval(s.Core, &s.Intervals[i])
		}
	}
	if corrupt {
		os.Exit(1)
	}
}

// printInterval renders one interval record the way -dump does; -seek
// shares it for its single-interval output.
func printInterval(core int, iv *replaylog.Interval) {
	fmt.Printf("core %d interval %d (cisn %d, ts %d", core, iv.Seq, iv.CISN, iv.Timestamp)
	for _, p := range iv.Preds {
		fmt.Printf(", after c%d/i%d", p.Core, p.Seq)
	}
	fmt.Print(")\n")
	for _, e := range iv.Entries {
		switch e.Type {
		case replaylog.InorderBlock:
			fmt.Printf("  InorderBlock      %d instructions\n", e.Size)
		case replaylog.ReorderedLoad:
			fmt.Printf("  ReorderedLoad     value=%d\n", e.Value)
		case replaylog.ReorderedStore:
			fmt.Printf("  ReorderedStore    [%#x]=%d offset=%d\n", e.Addr, e.Value, e.Offset)
		case replaylog.PatchedStore:
			fmt.Printf("  PatchedStore      [%#x]=%d\n", e.Addr, e.Value)
		case replaylog.ReorderedAtomic:
			fmt.Printf("  ReorderedAtomic   [%#x] loaded=%d stored=%d wrote=%v offset=%d\n",
				e.Addr, e.Value, e.StoreValue, e.DidWrite, e.Offset)
		case replaylog.Dummy:
			fmt.Printf("  Dummy             (skip one store)\n")
		}
	}
}

// countWriter counts bytes; -stats uses it to size re-encodings
// without holding them in memory.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

// countIntervals sums intervals across all streams.
func countIntervals(log *relaxreplay.Log) int {
	n := 0
	for _, s := range log.Streams {
		n += len(s.Intervals)
	}
	return n
}

// logTelemetry fills the registry with the log's entry-type accounting
// and, when tracing is on, reconstructs the recorded interval timeline
// from the logged interval timestamps: each interval becomes a
// complete event spanning from the core's previous interval timestamp
// to its own.
func logTelemetry(tel *telemetry.Telemetry, log *relaxreplay.Log) {
	reg := tel.Registry()
	intervals := reg.Counter("log.intervals")
	blocks := reg.Counter("log.entries.inorder_blocks")
	reordLd := reg.Counter("log.entries.reordered_loads")
	reordSt := reg.Counter("log.entries.reordered_stores")
	reordAmo := reg.Counter("log.entries.reordered_atomics")
	patchedSt := reg.Counter("log.entries.patched_stores")
	dummies := reg.Counter("log.entries.dummies")
	ivInstrs := reg.Histogram("log.interval_instrs")

	tr := tel.Tracer()
	if tr.Enabled() {
		tr.NameProcess(telemetry.PidRecord, "recorded timeline")
	}
	for _, s := range log.Streams {
		if tr.Enabled() {
			tr.NameThread(telemetry.PidRecord, s.Core, fmt.Sprintf("core %d", s.Core))
		}
		var prev uint64
		for i := range s.Intervals {
			iv := &s.Intervals[i]
			intervals.Inc(s.Core)
			ivInstrs.Observe(s.Core, iv.Instructions())
			for _, e := range iv.Entries {
				switch e.Type {
				case replaylog.InorderBlock:
					blocks.Inc(s.Core)
				case replaylog.ReorderedLoad:
					reordLd.Inc(s.Core)
				case replaylog.ReorderedStore:
					reordSt.Inc(s.Core)
				case replaylog.ReorderedAtomic:
					reordAmo.Inc(s.Core)
				case replaylog.PatchedStore:
					patchedSt.Inc(s.Core)
				case replaylog.Dummy:
					dummies.Inc(s.Core)
				}
			}
			if tr.Enabled() {
				tr.Complete(telemetry.PidRecord, s.Core, "log", "interval", prev, iv.Timestamp,
					map[string]any{"cisn": iv.CISN, "instrs": iv.Instructions(), "entries": len(iv.Entries)})
				prev = iv.Timestamp
			}
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrlog:", err)
	os.Exit(1)
}
