// Command rrd is the recorder-side streaming agent: it records a
// workload (or reads an existing log file) and streams the v3 log to
// a central rrproc over the fault-tolerant rrnet session protocol.
//
// Usage:
//
//	rrd -proc host:7070 [-session N] [-tenant name]
//	    -app fft [-cores 8] [-scale 3] [-variant opt|base]   record and stream
//	    -in fft.rrlog                                        stream an existing v3 log
//	    [-o local.rrlog]      keep a local copy of the exact streamed bytes
//	    [-queue-policy block|drop|spill] [-spill-dir DIR]
//	    [-chunk 65536] [-window 32] [-retries 8]
//	    [-backoff 50ms] [-backoff-cap 5s] [-heartbeat 2s] [-ack-stall 3s]
//	    [-faults net.drop@7]  chaos transport on the rrproc connection
//
// The agent retries with capped exponential backoff and resumes
// sessions across reconnects; what it cannot deliver under the chosen
// backpressure policy it reports rather than hides.
//
// Exit status: 0 when the journaled session is byte-identical to the
// local log, 3 when the server committed a degraded session (chunks
// shed under the drop policy), 1 on errors and rejections.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"relaxreplay"
	"relaxreplay/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var tf telemetry.Flags
	tf.Register(nil)
	proc := flag.String("proc", "", "rrproc address (host:port); required")
	session := flag.Uint64("session", 0, "session id (0 derives one from the clock)")
	tenant := flag.String("tenant", "", "tenant label recorded in the journal")
	app := flag.String("app", "fft", "workload: kernel name or litmus:<name>")
	cores := flag.Int("cores", 8, "number of simulated cores (kernels only)")
	scale := flag.Int("scale", 3, "problem-size multiplier (kernels only)")
	variant := flag.String("variant", "opt", "recorder variant: opt or base")
	in := flag.String("in", "", "stream this existing log file instead of recording")
	out := flag.String("o", "", "also write the streamed bytes to this local file")
	policy := flag.String("queue-policy", "block", "backpressure policy when the send window fills: block, drop or spill")
	spillDir := flag.String("spill-dir", "", "directory for the spill file (queue-policy spill; default: the system temp dir)")
	chunk := flag.Int("chunk", 0, "chunk size in bytes (0 = default)")
	window := flag.Int("window", 0, "send window in chunks (0 = default)")
	retries := flag.Int("retries", 0, "max consecutive retries without ack progress (0 = default)")
	backoff := flag.Duration("backoff", 0, "base retry backoff (0 = default)")
	backoffCap := flag.Duration("backoff-cap", 0, "retry backoff cap (0 = default)")
	heartbeat := flag.Duration("heartbeat", 0, "idle heartbeat interval (0 = default)")
	ackStall := flag.Duration("ack-stall", 0, "reconnect after this long without ack progress (0 = default)")
	faults := flag.String("faults", "", "inject transport faults: point[,point...]@seed (net.* points)")
	flag.Parse()

	if *proc == "" {
		fmt.Fprintln(os.Stderr, "rrd: -proc is required")
		return 1
	}

	pol, err := relaxreplay.ParseBackpressure(*policy)
	if err != nil {
		return fail(err)
	}
	dir := *spillDir
	if pol == relaxreplay.BackpressureSpill && dir == "" {
		dir = os.TempDir()
	}
	id := *session
	if id == 0 {
		id = uint64(time.Now().UnixNano())
	}

	tel, err := tf.New(*cores)
	if err != nil {
		return fail(err)
	}
	inj, err := relaxreplay.ParseFaults(*faults)
	if err != nil {
		return fail(err)
	}
	inj.SetTelemetry(tel)

	client, err := relaxreplay.NewStreamClient(relaxreplay.StreamClientOptions{
		Addr:           *proc,
		Tenant:         *tenant,
		ChunkSize:      *chunk,
		Window:         *window,
		Policy:         pol,
		SpillDir:       dir,
		MaxRetries:     *retries,
		BackoffBase:    *backoff,
		BackoffCap:     *backoffCap,
		HeartbeatEvery: *heartbeat,
		AckStall:       *ackStall,
		Seed:           id,
	}, tel.Registry())
	if err != nil {
		return fail(err)
	}
	if inj != nil {
		dial := client.Dial
		client.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			nc, err := dial(addr, timeout)
			if err != nil {
				return nil, err
			}
			return relaxreplay.WrapStreamConn(nc, inj), nil
		}
	}

	sw, err := client.OpenSession(id)
	if err != nil {
		return fail(err)
	}

	var local *os.File
	if *out != "" {
		local, err = os.Create(*out)
		if err != nil {
			return fail(err)
		}
	}

	streamErr := stream(sw, local, *in, *app, *cores, *scale, *variant)
	var closeErr error
	if streamErr != nil {
		// The producer died mid-stream: abort without committing.
		// Close would drain and commit the truncated prefix, and the
		// server — whose CRC check only covers bytes that were
		// actually streamed — would journal it as a healthy session
		// while rrd exits 1.
		sw.Abort()
	} else {
		closeErr = sw.Close()
	}
	res := sw.Result()
	if local != nil {
		if err := local.Close(); err != nil && streamErr == nil {
			streamErr = err
		}
	}

	status := statusName(res.Status)
	if streamErr != nil {
		status = "aborted"
	}
	fmt.Printf("session %d (%s): %d chunks, %d bytes, %d retries\n",
		id, status, res.Chunks, res.Bytes, res.Retries)
	if res.Spilled > 0 {
		fmt.Printf("spilled %d chunks through %s\n", res.Spilled, dir)
	}
	if err := tf.Flush(tel); err != nil {
		return fail(err)
	}
	if inj != nil {
		fmt.Printf("faults: %s\n", inj)
	}

	switch {
	case streamErr != nil:
		return fail(streamErr)
	case closeErr != nil:
		return fail(closeErr)
	case res.Status == relaxreplay.StreamStatusDegraded:
		fmt.Fprintf(os.Stderr, "rrd: session %d committed DEGRADED: %d chunks missing (%s)\n",
			id, res.Missing, res.Reason)
		return 3
	case res.Status == relaxreplay.StreamStatusReject:
		fmt.Fprintf(os.Stderr, "rrd: session %d rejected: %s\n", id, res.Reason)
		return 1
	}
	return 0
}

// stream produces the log bytes onto the session (and the optional
// local copy): either by re-streaming an existing file or by
// recording the named workload and encoding it as v3 on the fly.
func stream(sw io.Writer, local *os.File, in, app string, cores, scale int, variant string) error {
	var w io.Writer = sw
	if local != nil {
		w = io.MultiWriter(local, sw)
	}

	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = io.Copy(w, f)
		return err
	}

	cfg := relaxreplay.DefaultConfig()
	cfg.Cores = cores
	switch variant {
	case "opt":
		cfg.Variant = relaxreplay.Opt
	case "base":
		cfg.Variant = relaxreplay.Base
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}

	var wl relaxreplay.Workload
	if name, ok := strings.CutPrefix(app, "litmus:"); ok {
		l, err := relaxreplay.LitmusByName(name)
		if err != nil {
			return err
		}
		wl = l.Workload
		cfg.Cores = len(wl.Progs)
	} else {
		var err error
		wl, _, err = relaxreplay.BuildKernel(app, cfg.Cores, scale)
		if err != nil {
			return err
		}
	}

	rec, err := relaxreplay.Record(cfg, wl)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %q: %d cores, %d instructions, %d cycles\n",
		wl.Name, cfg.Cores, rec.Instructions(), rec.Cycles())
	return rec.WriteLogV3(w)
}

func statusName(s uint8) string {
	switch s {
	case relaxreplay.StreamStatusOK:
		return "identical"
	case relaxreplay.StreamStatusDegraded:
		return "degraded"
	case relaxreplay.StreamStatusReject:
		return "rejected"
	}
	return "unknown"
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "rrd: %v\n", err)
	return 1
}
