// Command rrtrace analyzes RelaxReplay logs: interval-size and
// fragmentation histograms, stall-cause attribution per core from the
// provenance sideband, top conflicting cache lines, a structural diff
// of two logs, and a merged record+replay Chrome trace.
//
// Usage:
//
//	rrtrace -log fft.rrlog                  # histograms + stalls + conflicts
//	rrtrace -log fft.rrlog -hist            # histograms only
//	rrtrace -log fft.rrlog -stalls          # termination-cause attribution only
//	rrtrace -log fft.rrlog -conflicts 10    # top conflicting lines only
//	rrtrace -log a.rrlog -diff b.rrlog      # structural diff; exit 4 when they differ
//	rrtrace -log fft.rrlog -chrome t.json -app fft [-cores 8] [-scale 3]
//
// With no mode flag, every analysis section is printed. The stall and
// conflict sections need the provenance sideband (record with rrsim
// -provenance -v3); without it they degrade to a note, never an error.
//
// -diff decodes both files (any mix of v1/v2/v3) and compares the
// decoded structure — header, per-core interval streams entry by
// entry, input streams, and provenance sidebands — so a log always
// diffs as identical to itself regardless of encoding. Differences
// are itemized and exit with status 4.
//
// -chrome merges the recorded timeline (reconstructed from the logged
// interval timestamps, plus provenance terminate/reorder instants when
// present) with a live replay of the log into one Chrome trace_event
// file: pid 0 is the recording, pid 1 the replay.
//
// Every read goes through the resyncing robust decoder; a damaged log
// is analyzed rather than rejected, with the corruption summarized on
// stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"

	"relaxreplay"
	"relaxreplay/internal/provenance"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/stats"
	"relaxreplay/internal/telemetry"
)

func main() {
	logPath := flag.String("log", "", "log file written by rrsim -o")
	hist := flag.Bool("hist", false, "print interval-size and fragmentation histograms")
	stalls := flag.Bool("stalls", false, "print per-core interval termination attribution (needs provenance)")
	conflicts := flag.Int("conflicts", 0, "print the top N conflicting cache lines (needs provenance)")
	diff := flag.String("diff", "", "structurally compare -log against this second log")
	chrome := flag.String("chrome", "", "write a merged record+replay Chrome trace to this file")
	app := flag.String("app", "", "with -chrome: workload recorded (kernel name or litmus:<name>)")
	cores := flag.Int("cores", 8, "with -chrome: core count used at recording")
	scale := flag.Int("scale", 3, "with -chrome: problem scale used at recording")
	flag.Parse()

	if *logPath == "" {
		fatal(fmt.Errorf("-log is required"))
	}
	log := loadLog(*logPath)

	if *diff != "" {
		other := loadLog(*diff)
		diverged := diffLogs(log, other)
		for _, d := range diverged {
			fmt.Println("  " + d)
		}
		fmt.Printf("diff: %d divergence(s) between %s and %s\n", len(diverged), *logPath, *diff)
		if len(diverged) > 0 {
			os.Exit(4)
		}
		return
	}
	if *chrome != "" {
		if err := writeChromeTrace(*chrome, log, *app, *cores, *scale); err != nil {
			fatal(err)
		}
		return
	}

	// No mode flag: run every analysis section.
	all := !*hist && !*stalls && *conflicts == 0
	topN := *conflicts
	if all {
		topN = 10
	}
	if all || *hist {
		printHistograms(log)
	}
	if all || *stalls {
		printStalls(log)
	}
	if all || *conflicts > 0 {
		printConflicts(log, topN)
	}
}

// loadLog reads a log through the robust parallel decoder, summarizing
// any damage on stderr instead of rejecting the file.
func loadLog(path string) *relaxreplay.Log {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	log, rep, err := relaxreplay.ReadLogRobustParallel(f)
	if err != nil {
		if rep != nil {
			fmt.Fprintln(os.Stderr, "rrtrace: corruption summary:")
			fmt.Fprintln(os.Stderr, rep.Summary())
		}
		fatal(err)
	}
	if !rep.Clean() {
		fmt.Fprintf(os.Stderr, "rrtrace: %s is damaged, analyzing what survives:\n%s\n", path, rep.Summary())
	}
	return log
}

// printHistograms renders the interval-size and fragmentation shape of
// the log: instructions per interval, InorderBlock runs per interval
// (how fragmented replay's native execution is), and reordered/patched
// entries per interval.
func printHistograms(log *relaxreplay.Log) {
	var sizeH, blocksH, reordH stats.Histogram
	for _, s := range log.Streams {
		for i := range s.Intervals {
			iv := &s.Intervals[i]
			sizeH.Observe(iv.Instructions())
			var blocks, reord uint64
			for _, e := range iv.Entries {
				if e.Type == replaylog.InorderBlock {
					blocks++
				} else {
					reord++
				}
			}
			blocksH.Observe(blocks)
			reordH.Observe(reord)
		}
	}
	section := func(title string, h *stats.Histogram) {
		t := stats.NewTable(
			fmt.Sprintf("%s: %d intervals, mean %.1f, max %d", title, h.Count(), h.Mean(), h.Max()),
			"bucket", "count", "share", "")
		h.Rows(t)
		fmt.Println(t)
	}
	section("interval size (instructions)", &sizeH)
	section("fragmentation (inorder blocks per interval)", &blocksH)
	section("reordered/patched entries per interval", &reordH)
}

// printStalls attributes every interval termination to its cause, per
// core, from the provenance sideband.
func printStalls(log *relaxreplay.Log) {
	if len(log.Provenance) == 0 {
		fmt.Println("stall attribution: log carries no provenance sideband (record with rrsim -provenance -v3)")
		fmt.Println()
		return
	}
	t := stats.NewTable("interval termination attribution (from provenance)",
		"core", "intervals", "conflict", "size", "final", "reorders", "avg traq", "max snoop")
	for _, cp := range log.Provenance {
		var conf, size, final, reord int
		var traqSum, snoopMax uint64
		for _, r := range cp.Records {
			switch r.Cause {
			case provenance.CauseConflict:
				conf++
			case provenance.CauseSize:
				size++
			case provenance.CauseFinal:
				final++
			}
			reord += len(r.Reorders)
			traqSum += uint64(r.TRAQOccupancy)
			if uint64(r.SnoopNonzero) > snoopMax {
				snoopMax = uint64(r.SnoopNonzero)
			}
		}
		avgTraq := 0.0
		if len(cp.Records) > 0 {
			avgTraq = float64(traqSum) / float64(len(cp.Records))
		}
		t.AddRow(fmt.Sprint(cp.Core), fmt.Sprint(len(cp.Records)),
			fmt.Sprint(conf), fmt.Sprint(size), fmt.Sprint(final),
			fmt.Sprint(reord), stats.F(avgTraq, 1), fmt.Sprint(snoopMax))
	}
	fmt.Println(t)
}

// printConflicts ranks the cache lines whose remote accesses terminated
// the most intervals.
func printConflicts(log *relaxreplay.Log, topN int) {
	type lineStats struct {
		line    uint64
		count   int
		writes  int
		remotes map[int32]bool
	}
	byLine := map[uint64]*lineStats{}
	for _, cp := range log.Provenance {
		for _, r := range cp.Records {
			if r.Cause != provenance.CauseConflict {
				continue
			}
			ls := byLine[r.ConflictLine]
			if ls == nil {
				ls = &lineStats{line: r.ConflictLine, remotes: map[int32]bool{}}
				byLine[r.ConflictLine] = ls
			}
			ls.count++
			if r.ConflictWrite {
				ls.writes++
			}
			if r.RemoteCore >= 0 {
				ls.remotes[r.RemoteCore] = true
			}
		}
	}
	if len(byLine) == 0 {
		if len(log.Provenance) == 0 {
			fmt.Println("conflict ranking: log carries no provenance sideband (record with rrsim -provenance -v3)")
		} else {
			fmt.Println("conflict ranking: no conflict terminations recorded")
		}
		fmt.Println()
		return
	}
	var ranked []*lineStats
	for _, ls := range byLine {
		ranked = append(ranked, ls)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].line < ranked[j].line
	})
	if len(ranked) > topN {
		ranked = ranked[:topN]
	}
	t := stats.NewTable(
		fmt.Sprintf("top %d conflicting cache lines (%d distinct)", len(ranked), len(byLine)),
		"line", "terminations", "by write", "remote cores")
	for _, ls := range ranked {
		var rs []string
		for r := range ls.remotes {
			rs = append(rs, fmt.Sprint(r))
		}
		sort.Strings(rs)
		t.AddRow(fmt.Sprintf("%#x", ls.line), fmt.Sprint(ls.count),
			fmt.Sprint(ls.writes), strings.Join(rs, ","))
	}
	fmt.Println(t)
}

// diffLogs structurally compares two decoded logs and returns one line
// per divergence (capped; the count is exact, the listing is not).
func diffLogs(a, b *relaxreplay.Log) []string {
	const maxListed = 20
	var out []string
	n := 0
	report := func(format string, args ...any) {
		if n < maxListed {
			out = append(out, fmt.Sprintf(format, args...))
		} else if n == maxListed {
			out = append(out, "... (further divergences not listed)")
		}
		n++
	}

	if a.Cores != b.Cores {
		report("header: %d cores vs %d", a.Cores, b.Cores)
	}
	if a.Variant != b.Variant {
		report("header: variant %q vs %q", a.Variant, b.Variant)
	}
	if a.Patched != b.Patched {
		report("header: patched %v vs %v", a.Patched, b.Patched)
	}
	if !reflect.DeepEqual(a.Inputs, b.Inputs) {
		report("input streams differ")
	}

	streams := func(l *relaxreplay.Log) map[int]*replaylog.CoreLog {
		m := map[int]*replaylog.CoreLog{}
		for i := range l.Streams {
			m[l.Streams[i].Core] = &l.Streams[i]
		}
		return m
	}
	sa, sb := streams(a), streams(b)
	var coreIDs []int
	for c := range sa {
		coreIDs = append(coreIDs, c)
	}
	for c := range sb {
		if _, ok := sa[c]; !ok {
			coreIDs = append(coreIDs, c)
		}
	}
	sort.Ints(coreIDs)
	for _, c := range coreIDs {
		x, y := sa[c], sb[c]
		switch {
		case x == nil:
			report("core %d: stream only in second log (%d intervals)", c, len(y.Intervals))
			continue
		case y == nil:
			report("core %d: stream only in first log (%d intervals)", c, len(x.Intervals))
			continue
		}
		if len(x.Intervals) != len(y.Intervals) {
			report("core %d: %d intervals vs %d", c, len(x.Intervals), len(y.Intervals))
		}
		limit := len(x.Intervals)
		if len(y.Intervals) < limit {
			limit = len(y.Intervals)
		}
		for i := 0; i < limit; i++ {
			if !reflect.DeepEqual(x.Intervals[i], y.Intervals[i]) {
				report("core %d interval %d (seq %d): records differ", c, i, x.Intervals[i].Seq)
			}
		}
	}

	if !reflect.DeepEqual(a.Provenance, b.Provenance) {
		report("provenance sidebands differ")
	}
	return out
}

// writeChromeTrace merges the recorded timeline (from the logged
// interval timestamps and the provenance sideband) with a live replay
// of the log into one Chrome trace_event file.
func writeChromeTrace(path string, log *relaxreplay.Log, app string, cores, scale int) error {
	if app == "" {
		return fmt.Errorf("-chrome needs -app (the recorded workload; logs do not embed programs)")
	}
	var w relaxreplay.Workload
	if name, ok := strings.CutPrefix(app, "litmus:"); ok {
		l, err := relaxreplay.LitmusByName(name)
		if err != nil {
			return err
		}
		w = l.Workload
	} else {
		var err error
		w, _, err = relaxreplay.BuildKernel(app, cores, scale)
		if err != nil {
			return err
		}
	}
	if log.Cores != len(w.Progs) {
		return fmt.Errorf("log has %d cores but workload has %d threads (check -cores/-scale)",
			log.Cores, len(w.Progs))
	}

	tel := relaxreplay.NewTelemetry(relaxreplay.TelemetryOptions{Shards: log.Cores, Trace: true})
	tr := tel.Tracer()
	tr.NameProcess(telemetry.PidRecord, "recorded timeline")

	// Record side: one complete event per interval, spanning from the
	// core's previous interval timestamp to its own, plus provenance
	// instants where the sideband has them.
	for _, s := range log.Streams {
		tr.NameThread(telemetry.PidRecord, s.Core, fmt.Sprintf("core %d", s.Core))
		var prev uint64
		for i := range s.Intervals {
			iv := &s.Intervals[i]
			tr.Complete(telemetry.PidRecord, s.Core, "log", "interval", prev, iv.Timestamp,
				map[string]any{"seq": iv.Seq, "instrs": iv.Instructions(), "entries": len(iv.Entries)})
			prev = iv.Timestamp
		}
	}
	for _, cp := range log.Provenance {
		for _, r := range cp.Records {
			args := map[string]any{"seq": r.Seq, "traq": r.TRAQOccupancy}
			if r.Cause == provenance.CauseConflict {
				args["line"] = fmt.Sprintf("%#x", r.ConflictLine)
				args["remote"] = r.RemoteCore
			}
			tr.Instant(telemetry.PidRecord, cp.Core, "provenance",
				"terminate:"+r.Cause.String(), r.Cycle, args)
			for _, ro := range r.Reorders {
				tr.Instant(telemetry.PidRecord, cp.Core, "provenance",
					"reorder:"+provenance.ReorderKindString(ro.Kind), ro.Cycle,
					map[string]any{"offset": ro.Offset})
			}
		}
	}

	// Replay side: the replayer itself emits pid-1 events into the same
	// tracer on its modeled clock. Partial mode keeps a damaged log
	// renderable; degradations are surfaced, not hidden.
	res, err := relaxreplay.ReplayLogPartialWith(log, w, tel)
	if err != nil {
		return fmt.Errorf("replay for trace export: %w", err)
	}
	for _, d := range res.Degradations {
		fmt.Fprintf(os.Stderr, "rrtrace: replay degraded: %s\n", d.String())
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: recorded timeline + replay of %d intervals\n", path, res.Intervals)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrtrace:", err)
	os.Exit(1)
}
