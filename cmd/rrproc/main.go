// Command rrproc is the central record-and-replay processor: it
// accepts concurrent rrd sessions over the rrnet protocol and
// multiplexes them into one crash-safe append-only journal with
// fsync'd segment boundaries.
//
// Usage:
//
//	rrproc -journal rr.journal [-listen :7070]
//	       [-max-sessions 64] [-reorder 64] [-fsync-bytes 1048576]
//	       [-frame-timeout 10s] [-drain 10s] [-slow 0]     serve (SIGTERM drains)
//	rrproc -journal rr.journal -query                      list recovered sessions
//	rrproc -journal rr.journal -export ID -o out.rrlog     export one session's log
//	rrproc -journal rr.journal -verify                     verify committed sessions
//
// Serve mode runs until SIGINT/SIGTERM, then drains gracefully:
// in-flight sessions get -drain to finish, the journal is barriered,
// and the process exits 0. A killed rrproc recovers on restart: the
// journal is scanned (tolerating a torn tail), sessions resume where
// their durable prefix ends, and clients re-send the difference.
//
// -query and -export run the same recovery scan offline, so they work
// on the journal of a crashed server. An exported session replays
// like any local log: rrreplay -in out.rrlog.
//
// -slow delays each chunk ack (chaos knob for backpressure tests).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"relaxreplay"
	"relaxreplay/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var tf telemetry.Flags
	tf.Register(nil)
	journal := flag.String("journal", "", "append-only journal file; required")
	listen := flag.String("listen", ":7070", "listen address (serve mode)")
	maxSessions := flag.Int("max-sessions", 0, "bound on concurrently open sessions (0 = default)")
	reorder := flag.Int("reorder", 0, "per-session out-of-order chunk buffer bound (0 = default)")
	fsyncBytes := flag.Int("fsync-bytes", 0, "journal bytes between fsync'd segment boundaries (0 = default)")
	frameTimeout := flag.Duration("frame-timeout", 0, "per-frame read/write deadline (0 = default)")
	drain := flag.Duration("drain", 0, "graceful shutdown drain budget (0 = default)")
	slow := flag.Duration("slow", 0, "delay each chunk ack by this long (chaos knob)")
	query := flag.Bool("query", false, "list the journal's sessions and exit")
	export := flag.Uint64("export", 0, "export this session id's log bytes to -o and exit")
	out := flag.String("o", "", "output file for -export")
	verify := flag.Bool("verify", false, "verify every committed session's length and CRC, then exit")
	flag.Parse()

	if *journal == "" {
		fmt.Fprintln(os.Stderr, "rrproc: -journal is required")
		return 1
	}
	if *query || *export != 0 || *verify {
		return offline(*journal, *query, *export, *out, *verify)
	}

	tel, err := tf.New(1)
	if err != nil {
		return fail(err)
	}
	srv, err := relaxreplay.NewStreamServer(relaxreplay.StreamServerOptions{
		Addr:            *listen,
		JournalPath:     *journal,
		MaxSessions:     *maxSessions,
		ReorderWindow:   *reorder,
		FrameTimeout:    *frameTimeout,
		DrainTimeout:    *drain,
		FsyncEveryBytes: *fsyncBytes,
		SlowConsumer:    *slow,
	}, tel.Registry())
	if err != nil {
		return fail(err)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		sig := <-sigc
		fmt.Printf("rrproc: %v: draining\n", sig)
		done <- srv.Shutdown()
	}()

	fmt.Printf("rrproc: serving on %s, journaling to %s\n", *listen, *journal)
	if err := srv.Listen(); err != nil {
		return fail(err)
	}
	if err := <-done; err != nil {
		return fail(err)
	}
	if err := tf.Flush(tel); err != nil {
		return fail(err)
	}
	fmt.Println("rrproc: drained")
	return 0
}

// offline runs the recovery scan without serving: -query, -export and
// -verify all operate on the journal as found on disk, torn tail and
// all.
func offline(path string, query bool, export uint64, out string, verify bool) int {
	view, err := relaxreplay.ReadStreamJournal(path)
	if err != nil {
		return fail(err)
	}

	if query {
		fmt.Printf("%-20s %-12s %-10s %8s %10s %8s\n",
			"SESSION", "TENANT", "STATUS", "CHUNKS", "BYTES", "MISSING")
		for _, id := range view.SortedIDs() {
			s := view.Sessions[id]
			fmt.Printf("%-20d %-12s %-10s %8d %10d %8d\n",
				id, s.Tenant, sessionStatus(s), s.Chunks, len(s.Data), s.Missing)
		}
		if view.SkippedBytes > 0 || view.DroppedFrames > 0 || view.TornTail || view.DupChunks > 0 {
			fmt.Printf("recovery: %d bytes skipped, %d frames dropped, %d duplicate chunks, torn tail: %v\n",
				view.SkippedBytes, view.DroppedFrames, view.DupChunks, view.TornTail)
		}
	}

	if verify {
		bad := 0
		for _, id := range view.SortedIDs() {
			s := view.Sessions[id]
			if !s.Committed {
				continue
			}
			if err := s.Verify(); err != nil {
				fmt.Fprintf(os.Stderr, "rrproc: session %d: %v\n", id, err)
				bad++
			} else {
				fmt.Printf("session %d: verified (%d bytes, crc ok)\n", id, len(s.Data))
			}
		}
		if bad > 0 {
			return 1
		}
	}

	if export != 0 {
		if out == "" {
			fmt.Fprintln(os.Stderr, "rrproc: -export requires -o")
			return 1
		}
		s := view.Sessions[export]
		if s == nil {
			return fail(fmt.Errorf("session %d not in journal", export))
		}
		if s.Status == relaxreplay.StreamStatusDegraded {
			fmt.Fprintf(os.Stderr, "rrproc: warning: session %d is degraded (%d chunks missing)\n",
				export, s.Missing)
		}
		f, err := os.Create(out)
		if err != nil {
			return fail(err)
		}
		if err := view.Export(export, f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Printf("exported session %d: %d bytes to %s\n", export, len(s.Data), out)
	}
	return 0
}

func sessionStatus(s *relaxreplay.JournalSession) string {
	if !s.Committed {
		return "open"
	}
	switch s.Status {
	case relaxreplay.StreamStatusOK:
		return "identical"
	case relaxreplay.StreamStatusDegraded:
		return "degraded"
	case relaxreplay.StreamStatusReject:
		return "rejected"
	}
	return "unknown"
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "rrproc: %v\n", err)
	return 1
}
