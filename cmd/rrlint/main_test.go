package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildRRLint compiles the CLI once per test binary into a temp dir.
func buildRRLint(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and execs the rrlint binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "rrlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runRRLint(t *testing.T, bin, dir string, args ...string) (stdout string, code int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run rrlint %v: %v", args, err)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

// TestExitCodes drives the built binary over the lint fixtures: each
// positive tree must exit 1 printing exactly the golden findings
// (correct file:line:col positions), and a tree with no findings for
// the selected check must exit 0.
func TestExitCodes(t *testing.T) {
	bin := buildRRLint(t)
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata")

	cases := []struct {
		check string
		dir   string
	}{
		{"detrand", "detrand"},
		{"maporder", "maporder"},
		{"errcheck-io", "errcheckio"},
		{"lockcopy", "lockcopy"},
		{"hotpath-alloc", "hotpath"},
		{"faultpoint", "faultpoint"},
		{"lockorder", "lockorder"},
		{"blockinglock", "blockinglock"},
		{"goroleak", "goroleak"},
		{"atomicmix", "atomicmix"},
	}
	for _, tc := range cases {
		t.Run(tc.check, func(t *testing.T) {
			dir := filepath.Join(fixtures, tc.dir)
			out, code := runRRLint(t, bin, dir, "-checks", tc.check, "./...")
			if code != 1 {
				t.Fatalf("exit code = %d, want 1; output:\n%s", code, out)
			}
			golden, err := os.ReadFile(filepath.Join(dir, "expect.golden"))
			if err != nil {
				t.Fatal(err)
			}
			if out != string(golden) {
				t.Errorf("CLI output diverges from golden\n--- got ---\n%s--- want ---\n%s", out, golden)
			}
		})
	}

	// The hotpath fixture has nothing for detrand to find: clean exit.
	out, code := runRRLint(t, bin, filepath.Join(fixtures, "hotpath"), "-checks", "detrand", "./...")
	if code != 0 || out != "" {
		t.Errorf("clean run: exit=%d output=%q, want 0 and empty", code, out)
	}
}

// TestJSONOutput checks the -json shape CI consumes.
func TestJSONOutput(t *testing.T) {
	bin := buildRRLint(t)
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "hotpath")
	out, code := runRRLint(t, bin, dir, "-json", "-checks", "hotpath-alloc", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var payload struct {
		Findings []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(payload.Findings) != 3 {
		t.Fatalf("got %d findings, want 3", len(payload.Findings))
	}
	for _, f := range payload.Findings {
		if f.Check != "hotpath-alloc" || f.File == "" || f.Line == 0 || f.Col == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

// TestCheckFlagAlias: -check is an alias of -checks and the two merge,
// so `-check lockorder -checks goroleak` runs both.
func TestCheckFlagAlias(t *testing.T) {
	bin := buildRRLint(t)
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "lockorder")
	aliased, code := runRRLint(t, bin, dir, "-check", "lockorder", "./...")
	if code != 1 {
		t.Fatalf("-check exit code = %d, want 1", code)
	}
	canonical, _ := runRRLint(t, bin, dir, "-checks", "lockorder", "./...")
	if aliased != canonical {
		t.Errorf("-check and -checks diverge\n--- -check ---\n%s--- -checks ---\n%s", aliased, canonical)
	}
	merged, code := runRRLint(t, bin, dir, "-check", "lockorder", "-checks", "lockorder", "./...")
	if code != 1 || merged != canonical {
		t.Errorf("merged flags: exit=%d\n--- got ---\n%s--- want ---\n%s", code, merged, canonical)
	}
}

// TestSARIFOutput: -sarif emits a 2.1.0 log with rrlint as the driver
// and still exits 1 on findings so CI fails while the artifact exists.
func TestSARIFOutput(t *testing.T) {
	bin := buildRRLint(t)
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "blockinglock")
	out, code := runRRLint(t, bin, dir, "-sarif", "-checks", "blockinglock", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings must fail CI even with -sarif)", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("bad SARIF JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "rrlint" {
		t.Errorf("unexpected SARIF header: %+v", log)
	}
	if len(log.Runs[0].Results) == 0 {
		t.Error("SARIF log carries no results for a fixture with findings")
	}
	for _, r := range log.Runs[0].Results {
		if r.RuleID != "blockinglock" {
			t.Errorf("result ruleId = %q, want blockinglock", r.RuleID)
		}
	}
}

// TestUnknownCheckUsage: a bad -checks value is a usage error (2), not
// a clean run.
func TestUnknownCheckUsage(t *testing.T) {
	bin := buildRRLint(t)
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "hotpath")
	if _, code := runRRLint(t, bin, dir, "-checks", "no-such-check", "./..."); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}
