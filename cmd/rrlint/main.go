// rrlint statically proves the simulator's determinism, hot-path and
// concurrency invariants: no wall clocks or global RNGs in the
// simulation packages, no map-iteration-ordered output, no discarded
// errors on the fault-injected log write path, no copied locks or
// telemetry cells, no allocation in //rrlint:hotpath functions, a
// closed fault-point vocabulary — and, through a cross-function
// call-graph engine, no mutex-order cycles (lockorder), no blocking
// I/O reachable under a lock (blockinglock), no unsupervised
// goroutines (goroleak), and no field mixing sync/atomic with plain
// access (atomicmix). It is stdlib-only (go/ast + go/types) and gates
// CI next to go vet.
//
//	rrlint [-check lockorder] [-checks detrand,maporder,...]
//	       [-json] [-sarif] [-list] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings,
// 2 usage or load failure. -sarif emits a SARIF 2.1.0 log for GitHub
// code scanning (findings still exit 1, so CI fails while the
// artifact is written). Suppress a finding with an
// `//rrlint:allow <check>` comment on (or directly above) its line;
// for the cross-function checks the comment goes at the reported
// site (the frame holding the lock, the go statement), not inside a
// callee.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"relaxreplay/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	check := flag.String("check", "", "filter to the named check(s); alias of -checks")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (GitHub code scanning)")
	list := flag.Bool("list", false, "list registered checks and exit")
	typeErrs := flag.Bool("typecheck", false, "also report type-check errors (default: syntax-tolerant)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rrlint [-check c] [-checks c1,c2] [-json] [-sarif] [-list] [packages]\n\nchecks:\n")
		for _, c := range lint.Checks() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", c.Name, c.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		os.Exit(2)
	}
	if *typeErrs {
		bad := false
		for _, pkg := range prog.Pkgs {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "rrlint: typecheck: %v\n", e)
				bad = true
			}
		}
		if bad {
			os.Exit(2)
		}
	}

	var names []string
	for _, v := range []string{*checks, *check} {
		if v != "" {
			names = append(names, strings.Split(v, ",")...)
		}
	}
	diags, err := lint.Run(prog, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		os.Exit(2)
	}

	// Positions print relative to the working directory when possible,
	// matching go vet's output shape for editors and CI annotations.
	wd, _ := os.Getwd()
	for i := range diags {
		if wd != "" {
			if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].File = rel
			}
		}
	}

	if *sarifOut {
		out, err := lint.SARIF(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(out)
		fmt.Println()
	} else if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings []lint.Diagnostic `json:"findings"`
		}{Findings: diags}); err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rrlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
