// rrlint statically proves the simulator's determinism and hot-path
// invariants: no wall clocks or global RNGs in the simulation
// packages, no map-iteration-ordered output, no discarded errors on
// the fault-injected log write path, no copied locks or telemetry
// cells, no allocation in //rrlint:hotpath functions, and a closed
// fault-point vocabulary. It is stdlib-only (go/ast + go/types) and
// gates CI next to go vet.
//
//	rrlint [-checks detrand,maporder,...] [-json] [-list] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings,
// 2 usage or load failure. Suppress a finding with an
// `//rrlint:allow <check>` comment on (or directly above) its line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"relaxreplay/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list registered checks and exit")
	typeErrs := flag.Bool("typecheck", false, "also report type-check errors (default: syntax-tolerant)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rrlint [-checks c1,c2] [-json] [-list] [packages]\n\nchecks:\n")
		for _, c := range lint.Checks() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", c.Name, c.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		os.Exit(2)
	}
	if *typeErrs {
		bad := false
		for _, pkg := range prog.Pkgs {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "rrlint: typecheck: %v\n", e)
				bad = true
			}
		}
		if bad {
			os.Exit(2)
		}
	}

	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	diags, err := lint.Run(prog, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		os.Exit(2)
	}

	// Positions print relative to the working directory when possible,
	// matching go vet's output shape for editors and CI annotations.
	wd, _ := os.Getwd()
	for i := range diags {
		if wd != "" {
			if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].File = rel
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings []lint.Diagnostic `json:"findings"`
		}{Findings: diags}); err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rrlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
