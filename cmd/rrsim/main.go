// Command rrsim records one workload under RelaxReplay and writes the
// interval log.
//
// Usage:
//
//	rrsim -app fft [-cores 8] [-scale 3] [-variant opt|base]
//	      [-interval 4k|inf] [-protocol snoopy|directory]
//	      [-o fft.rrlog] [-v3] [-provenance] [-verify] [-faults spec@seed]
//
// -provenance captures the per-interval provenance sideband (why each
// interval terminated, conflicting lines and remote cores, reorder
// instants, queue occupancy). Capture never changes the interval log;
// the sideband is persisted in -v3 files and consumed by rrtrace's
// stall/conflict attribution and rrreplay's divergence forensics.
//
// -faults injects deterministic faults (see internal/faultinject):
// interconnect and flush-crash points perturb the recording itself —
// possibly failing it loudly — and log-byte points corrupt the file
// written by -o, for exercising rrlog/rrreplay's corruption handling.
//
// The available applications are the bundled SPLASH-2-analog kernels
// (see rrsim -list) and the litmus tests (prefix "litmus:", e.g.
// "litmus:sb").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"relaxreplay"
	"relaxreplay/internal/telemetry"
)

func main() {
	var tf telemetry.Flags
	tf.Register(nil)
	app := flag.String("app", "fft", "workload: kernel name or litmus:<name>")
	files := flag.String("file", "", "run assembly file(s) instead of -app (comma-separated: one per core, or one file replicated)")
	cores := flag.Int("cores", 8, "number of simulated cores (kernels only)")
	scale := flag.Int("scale", 3, "problem-size multiplier (kernels only)")
	variant := flag.String("variant", "opt", "recorder variant: opt or base")
	interval := flag.String("interval", "4k", "max interval size: 4k or inf")
	protocol := flag.String("protocol", "snoopy", "coherence protocol: snoopy or directory")
	ordering := flag.String("ordering", "quickrec", "interval orderer: quickrec or lamport")
	model := flag.String("model", "rc", "consistency model of the cores: rc, tso or sc")
	out := flag.String("o", "", "write the serialized log to this file")
	outV3 := flag.Bool("v3", false, "write -o in the compressed, indexed v3 format (write-side fault injection applies to v2 only)")
	verify := flag.Bool("verify", false, "replay the log and verify determinism")
	prov := flag.Bool("provenance", false, "capture per-interval provenance (termination causes, conflicts, reorder instants); persisted in -v3 logs, consumed by rrtrace and forensics")
	faults := flag.String("faults", "", "inject faults: point[,point...]@seed, or default@seed")
	shards := flag.Int("shards", 1, "goroutines sharding each cycle's core phase (0/1 = serial; output is byte-identical either way)")
	list := flag.Bool("list", false, "list available workloads and exit")
	flag.Parse()

	if *list {
		fmt.Println("kernels:")
		for _, k := range relaxreplay.Kernels() {
			fmt.Printf("  %-10s %s\n", k.Name, k.Description)
		}
		fmt.Println("litmus tests (use litmus:<name>):")
		for _, l := range relaxreplay.LitmusTests() {
			fmt.Printf("  %s\n", l.Name)
		}
		return
	}

	cfg := relaxreplay.DefaultConfig()
	cfg.Cores = *cores
	cfg.Shards = *shards
	switch *variant {
	case "opt":
		cfg.Variant = relaxreplay.Opt
	case "base":
		cfg.Variant = relaxreplay.Base
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}
	switch strings.ToLower(*interval) {
	case "4k":
		cfg.MaxIntervalInstrs = 4096
	case "inf":
		cfg.MaxIntervalInstrs = 0
	default:
		fatal(fmt.Errorf("unknown interval %q", *interval))
	}
	switch *protocol {
	case "snoopy":
		cfg.Protocol = relaxreplay.Snoopy
	case "directory":
		cfg.Protocol = relaxreplay.Directory
	default:
		fatal(fmt.Errorf("unknown protocol %q", *protocol))
	}
	switch *ordering {
	case "quickrec":
		cfg.Ordering = relaxreplay.QuickRec
	case "lamport":
		cfg.Ordering = relaxreplay.Lamport
	default:
		fatal(fmt.Errorf("unknown ordering %q", *ordering))
	}
	switch *model {
	case "rc":
		cfg.Memory = relaxreplay.RC
	case "tso":
		cfg.Memory = relaxreplay.TSO
	case "sc":
		cfg.Memory = relaxreplay.SC
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}

	var w relaxreplay.Workload
	var check func(map[uint64]uint64) error
	if *files != "" {
		var err error
		w, err = loadAsmWorkload(*files, cfg.Cores)
		if err != nil {
			fatal(err)
		}
		cfg.Cores = len(w.Progs)
	} else if name, ok := strings.CutPrefix(*app, "litmus:"); ok {
		l, err := relaxreplay.LitmusByName(name)
		if err != nil {
			fatal(err)
		}
		w = l.Workload
		cfg.Cores = len(w.Progs)
	} else {
		var err error
		w, check, err = relaxreplay.BuildKernel(*app, cfg.Cores, *scale)
		if err != nil {
			fatal(err)
		}
	}

	tel, err := tf.New(cfg.Cores)
	if err != nil {
		fatal(err)
	}
	cfg.Telemetry = tel
	inj, err := relaxreplay.ParseFaults(*faults)
	if err != nil {
		fatal(err)
	}
	inj.SetTelemetry(tel)
	cfg.Faults = inj
	if *prov {
		cfg.Provenance = relaxreplay.NewProvenanceCollector()
	}

	rec, err := relaxreplay.Record(cfg, w)
	if err != nil {
		fatal(err)
	}
	if check != nil {
		if err := check(rec.FinalMemory()); err != nil {
			fatal(fmt.Errorf("workload oracle failed: %w", err))
		}
	}

	instr := rec.Instructions()
	bits := rec.LogSizeBits()
	fmt.Printf("recorded %q: %d cores, %d instructions, %d cycles\n",
		w.Name, cfg.Cores, instr, rec.Cycles())
	fmt.Printf("log: %d bits uncompressed (%.1f bits/1K instructions), %d reordered accesses\n",
		bits, float64(bits)*1000/float64(instr), rec.ReorderedAccesses())
	if *prov {
		var recs, reorders int
		for _, cp := range rec.Provenance() {
			recs += len(cp.Records)
			for _, r := range cp.Records {
				reorders += len(r.Reorders)
			}
		}
		fmt.Printf("provenance: %d interval records, %d reorder instants captured\n", recs, reorders)
		if *out != "" && !*outV3 {
			fmt.Fprintln(os.Stderr, "rrsim: note: the provenance sideband is only persisted by -v3 logs")
		}
	}

	if *verify {
		rep, err := rec.Replay()
		if err != nil {
			fatal(fmt.Errorf("replay verification FAILED: %w", err))
		}
		fmt.Printf("replay verified: %d intervals, %.1fx recording time (user %d + OS %d cycles)\n",
			rep.Intervals, float64(rep.Timing.Total())/float64(rec.Cycles()),
			rep.Timing.UserCycles, rep.Timing.OSCycles)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if *outV3 {
			if err := rec.WriteLogV3(f); err != nil {
				fatal(err)
			}
		} else {
			applied, err := rec.WriteLogWith(f, inj)
			if err != nil {
				fatal(err)
			}
			for _, a := range applied {
				fmt.Printf("fault injected into log bytes: %s\n", a)
			}
		}
		st, _ := f.Stat()
		fmt.Printf("wrote %s (%d bytes on disk)\n", *out, st.Size())
	}
	if inj != nil {
		fmt.Printf("faults: %s\n", inj)
	}

	if err := tf.Flush(tel); err != nil {
		fatal(err)
	}
}

// loadAsmWorkload assembles the given file(s): one program per core,
// or a single file replicated across cores.
func loadAsmWorkload(files string, cores int) (relaxreplay.Workload, error) {
	var progs []relaxreplay.Program
	names := strings.Split(files, ",")
	for _, f := range names {
		src, err := os.ReadFile(f)
		if err != nil {
			return relaxreplay.Workload{}, err
		}
		p, err := relaxreplay.ParseProgram(f, string(src))
		if err != nil {
			return relaxreplay.Workload{}, err
		}
		progs = append(progs, p)
	}
	if len(progs) == 1 {
		one := progs[0]
		progs = make([]relaxreplay.Program, cores)
		for i := range progs {
			progs[i] = one
		}
	}
	return relaxreplay.Workload{Name: names[0], Progs: progs}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrsim:", err)
	os.Exit(1)
}
