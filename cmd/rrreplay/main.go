// Command rrreplay deterministically replays a log written by rrsim.
// The workload binary is rebuilt from its name (logs do not embed
// programs, exactly as the paper's logs do not embed the application),
// so -app/-cores/-scale must match the recording.
//
// Usage:
//
//	rrreplay -log fft.rrlog -app fft [-cores 8] [-scale 3]
//	         [-partial] [-forensics report.json] [-faults spec@seed]
//
// -forensics writes a JSON array of structured divergence reports to
// the given path: one report per abandoned core (under -partial) or
// for the strict-mode divergence, each carrying the expected-vs-actual
// mismatch, a context window of the preceding intervals across cores,
// and — when the log carries a provenance sideband — why the diverged
// interval terminated during recording. The file is always written: a
// clean replay yields an empty array, so automation can rely on its
// existence.
//
// Strict mode (the default) reads and replays the log with every
// integrity check fatal: a corrupt frame, a truncated file or a
// divergence exits non-zero with a typed, classified error. -partial
// switches on graceful degradation: the robust decoder salvages the
// intact frames, the surviving prefix is replayed, and every
// abandoned core is itemized — the exit is still non-zero so damage
// is never mistaken for success. -faults injects read-side faults
// (e.g. log.shortread) for exercising those paths.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"relaxreplay"
	"relaxreplay/internal/telemetry"
)

func main() {
	logPath := flag.String("log", "", "log file written by rrsim -o")
	app := flag.String("app", "fft", "workload recorded: kernel name or litmus:<name>")
	cores := flag.Int("cores", 8, "core count used at recording")
	scale := flag.Int("scale", 3, "problem scale used at recording")
	partial := flag.Bool("partial", false, "graceful degradation: salvage a damaged log and replay the surviving prefix")
	forensics := flag.String("forensics", "", "write divergence forensics as a JSON array to this path (empty array when clean)")
	faults := flag.String("faults", "", "inject read-side faults: point[,point...]@seed")
	var tf telemetry.Flags
	tf.Register(nil)
	flag.Parse()

	if *logPath == "" {
		fatal(fmt.Errorf("-log is required"))
	}
	inj, err := relaxreplay.ParseFaults(*faults)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*logPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	st, _ := f.Stat()
	var size int64
	if st != nil {
		size = st.Size()
	}
	rd := inj.WrapReader(f, size)

	var log *relaxreplay.Log
	var rep *relaxreplay.CorruptionReport
	// The parallel readers decode v3 per-core streams concurrently and
	// are identical to the sequential ones on v1/v2 logs.
	if *partial {
		log, rep, err = relaxreplay.ReadLogRobustParallel(rd)
	} else {
		log, err = relaxreplay.ReadLogParallel(rd)
	}
	if err != nil {
		fatal(err)
	}
	if rep != nil && !rep.Clean() {
		fmt.Fprintf(os.Stderr, "rrreplay: log damaged, salvaged what survives:\n%s\n", rep.Summary())
	}

	var w relaxreplay.Workload
	var check func(map[uint64]uint64) error
	if name, ok := strings.CutPrefix(*app, "litmus:"); ok {
		l, err := relaxreplay.LitmusByName(name)
		if err != nil {
			fatal(err)
		}
		w = l.Workload
	} else {
		w, check, err = relaxreplay.BuildKernel(*app, *cores, *scale)
		if err != nil {
			fatal(err)
		}
	}
	if log.Cores != len(w.Progs) {
		fatal(fmt.Errorf("log has %d cores but workload has %d threads (check -cores/-scale)",
			log.Cores, len(w.Progs)))
	}

	tel, err := tf.New(log.Cores)
	if err != nil {
		fatal(err)
	}
	var res *relaxreplay.ReplayResult
	if *partial {
		res, err = relaxreplay.ReplayLogPartialWith(log, w, tel)
	} else {
		res, err = relaxreplay.ReplayLogWith(log, w, tel)
	}
	if err != nil {
		// Strict-mode divergence: write the forensic report for the one
		// divergence before failing, so the evidence survives the exit.
		var div *relaxreplay.DivergedError
		if *forensics != "" && errors.As(err, &div) {
			reports := relaxreplay.DivergenceForensics(log, []relaxreplay.Degradation{
				{Core: div.Core, Interval: div.Interval, Seq: div.Seq, Cause: div.Cause}})
			if werr := writeForensics(*forensics, reports); werr != nil {
				fmt.Fprintln(os.Stderr, "rrreplay:", werr)
			}
		}
		fatal(err)
	}
	fmt.Printf("replayed %d intervals, modeled time %d cycles (user %d + OS %d)\n",
		res.Intervals, res.Timing.Total(), res.Timing.UserCycles, res.Timing.OSCycles)
	for _, d := range res.Degradations {
		fmt.Fprintf(os.Stderr, "rrreplay: degraded: %s\n", d.String())
	}
	degraded := len(res.Degradations) > 0 || (rep != nil && !rep.Clean())
	if *forensics != "" {
		reports := relaxreplay.DivergenceForensics(log, res.Degradations)
		if len(reports) == 0 && rep != nil && !rep.Clean() {
			// Degraded purely from log damage: replay itself stayed on
			// its streams, so the damage summary is the forensic record.
			reports = append(reports, relaxreplay.DamageForensics(rep.Summary()))
		}
		if err := writeForensics(*forensics, reports); err != nil {
			fatal(err)
		}
	}
	if check != nil && !degraded {
		if err := check(res.FinalMemory); err != nil {
			fatal(fmt.Errorf("replayed memory fails the workload oracle: %w", err))
		}
		fmt.Println("replayed memory passes the workload oracle")
	}
	if err := tf.Flush(tel); err != nil {
		fatal(err)
	}
	if degraded {
		// Partial success is still reported as a failure exit so
		// automation never mistakes a salvaged replay for a clean one.
		os.Exit(3)
	}
}

// writeForensics serializes the divergence reports as a JSON array.
// The file is written even when there is nothing to report (an empty
// array), so automation can rely on its existence after any run.
func writeForensics(path string, reports []*relaxreplay.DivergenceReport) error {
	if reports == nil {
		reports = []*relaxreplay.DivergenceReport{}
	}
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rrreplay: wrote %d forensic report(s) to %s\n", len(reports), path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrreplay:", err)
	os.Exit(1)
}
