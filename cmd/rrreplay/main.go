// Command rrreplay deterministically replays a log written by rrsim.
// The workload binary is rebuilt from its name (logs do not embed
// programs, exactly as the paper's logs do not embed the application),
// so -app/-cores/-scale must match the recording.
//
// Usage:
//
//	rrreplay -log fft.rrlog -app fft [-cores 8] [-scale 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"relaxreplay"
	"relaxreplay/internal/telemetry"
)

func main() {
	logPath := flag.String("log", "", "log file written by rrsim -o")
	app := flag.String("app", "fft", "workload recorded: kernel name or litmus:<name>")
	cores := flag.Int("cores", 8, "core count used at recording")
	scale := flag.Int("scale", 3, "problem scale used at recording")
	var tf telemetry.Flags
	tf.Register(nil)
	flag.Parse()

	if *logPath == "" {
		fatal(fmt.Errorf("-log is required"))
	}
	f, err := os.Open(*logPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	log, err := relaxreplay.ReadLog(f)
	if err != nil {
		fatal(err)
	}

	var w relaxreplay.Workload
	var check func(map[uint64]uint64) error
	if name, ok := strings.CutPrefix(*app, "litmus:"); ok {
		l, err := relaxreplay.LitmusByName(name)
		if err != nil {
			fatal(err)
		}
		w = l.Workload
	} else {
		w, check, err = relaxreplay.BuildKernel(*app, *cores, *scale)
		if err != nil {
			fatal(err)
		}
	}
	if log.Cores != len(w.Progs) {
		fatal(fmt.Errorf("log has %d cores but workload has %d threads (check -cores/-scale)",
			log.Cores, len(w.Progs)))
	}

	tel, err := tf.New(log.Cores)
	if err != nil {
		fatal(err)
	}
	rep, err := relaxreplay.ReplayLogWith(log, w, tel)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d intervals, modeled time %d cycles (user %d + OS %d)\n",
		rep.Intervals, rep.Timing.Total(), rep.Timing.UserCycles, rep.Timing.OSCycles)
	if check != nil {
		if err := check(rep.FinalMemory); err != nil {
			fatal(fmt.Errorf("replayed memory fails the workload oracle: %w", err))
		}
		fmt.Println("replayed memory passes the workload oracle")
	}
	if err := tf.Flush(tel); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrreplay:", err)
	os.Exit(1)
}
