// Command rrbench regenerates the paper's evaluation tables and
// figures (Table 1, Figures 1 and 9-14) plus this repo's extension
// studies on the simulated multicore.
//
// Usage:
//
//	rrbench [-cores 8] [-scale 3] [-apps fft,lu,...] [-protocol snoopy|directory]
//	        [-fig all|table1,1,9,...] [-j N] [-noverify] [-quiet]
//	        [-faults spec@seed]
//
// -faults switches on chaos mode: after the selected figures, rrbench
// reruns the suite's workloads under a fault matrix (one isolated
// fault point per cell, plus a no-fault baseline per app) and requires
// every cell to end classified — replayed byte-identically, degraded
// with the loss itemized, rejected with a typed error, or stalled into
// a watchdog report. Any panic, hang, silent divergence or untyped
// error fails the run. -forensics PATH archives every degraded cell's
// structured divergence reports (see internal/replay.DivergenceReport)
// as one JSON document next to the matrix. -netchaos additionally runs
// the streaming chaos grid: real rrd/rrproc client-server pairs over
// localhost, crossing client backpressure policy x server behaviour x
// injected net.* transport fault, with the same every-cell-classified
// demand (see internal/experiments.NetChaosGrid).
//
// The -fig argument accepts a comma-separated subset of:
//
//	table1      architectural parameters (paper Table 1)
//	1           memory accesses performed out of program order (Figure 1)
//	9           accesses logged as reordered (Figure 9)
//	10          InorderBlock entries, Opt vs Base (Figure 10)
//	11          uncompressed log size and rate (Figure 11)
//	12          TRAQ occupancy average and distribution (Figure 12)
//	13          sequential replay time (Figure 13)
//	14          scalability with 4/8/16 cores (Figure 14)
//	parallel    parallel-replay potential of the logged edges (paper §5.4)
//	overhead    recording's execution-time overhead (paper §5.3)
//	motivation  SC-assuming chunk recorder diverging under RC (paper §2.2)
//	models      consistency-model sweep: RC, TSO, SC (extension)
//	all         everything above
//
// -j N records up to N runs concurrently (0, the default, uses
// GOMAXPROCS; -j 1 reproduces the serial harness). Output is
// deterministic regardless of -j: recordings are independent
// simulations and every table is assembled in a fixed order. Progress
// is a periodic one-line ETA summary on stderr (failures are always
// reported); -quiet silences it. Every recording is replay-verified
// against the recorded execution unless -noverify is given.
//
// -metrics writes the run's full metrics report (all simulator layers
// plus the suite's own accounting); -trace writes a Chrome trace_event
// timeline of the executed recordings; -pprof serves net/http/pprof.
//
// -benchjson PATH runs the record/encode/decode/replay pipeline
// benchmarks (the bodies of bench_pipeline_test.go plus the synthetic
// codec benchmarks) and writes the measurements as JSON — the
// committed BENCH_*.json files; schema in EXPERIMENTS.md — then exits
// without touching the figures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"relaxreplay/internal/benchjson"
	"relaxreplay/internal/coherence"
	"relaxreplay/internal/experiments"
	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/replay"
	"relaxreplay/internal/telemetry"
)

// knownFigs lists the accepted -fig names in presentation order.
// knownFigs lists the -fig names. "scaling" (the shard-scaling sweep
// over 8..64-core machines) is deliberately excluded from "all": the
// 64-core runs dwarf the paper figures.
var knownFigs = []string{
	"table1", "1", "9", "10", "11", "12", "13", "14",
	"parallel", "overhead", "motivation", "models", "scaling",
}

func main() {
	cores := flag.Int("cores", 8, "number of simulated cores")
	scale := flag.Int("scale", 3, "workload problem-size multiplier")
	apps := flag.String("apps", "", "comma-separated kernel subset (default: all)")
	protocol := flag.String("protocol", "snoopy", "coherence protocol: snoopy or directory")
	figs := flag.String("fig", "all", "figures to regenerate (comma-separated; see doc)")
	jobs := flag.Int("j", 0, "max concurrent recordings (0 = GOMAXPROCS, 1 = serial)")
	noverify := flag.Bool("noverify", false, "skip replay verification of each recording")
	quiet := flag.Bool("quiet", false, "suppress progress on stderr")
	faults := flag.String("faults", "", "chaos mode: run the fault matrix with this point[,point...]@seed spec")
	forensics := flag.String("forensics", "", "with -faults: write the chaos matrix's divergence forensics as JSON to this path")
	netchaos := flag.Bool("netchaos", false, "with -faults: also run the streaming chaos grid (client policy x server behaviour x net.* fault)")
	benchjsonPath := flag.String("benchjson", "", "run the pipeline benchmarks, write BENCH_*.json to this path, and exit")
	shards := flag.Int("shards", 1, "goroutines sharding each recording's core phase (0/1 = serial; tables are byte-identical either way)")
	var tf telemetry.Flags
	tf.Register(nil)
	flag.Parse()

	if *benchjsonPath != "" {
		f, err := os.Create(*benchjsonPath)
		if err != nil {
			fatal(err)
		}
		if err := benchjson.Write(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rrbench: wrote %s\n", *benchjsonPath)
		return
	}

	opts := experiments.DefaultOptions()
	opts.Cores = *cores
	opts.Scale = *scale
	opts.Verify = !*noverify
	opts.Parallelism = *jobs
	opts.Shards = *shards
	if *apps != "" {
		list, err := experiments.ParseApps(*apps)
		if err != nil {
			fatal(err)
		}
		opts.Apps = list
	}
	switch *protocol {
	case "snoopy":
		opts.Protocol = coherence.Snoopy
	case "directory":
		opts.Protocol = coherence.Directory
	default:
		fatal(fmt.Errorf("unknown protocol %q", *protocol))
	}
	tel, err := tf.New(*cores)
	if err != nil {
		fatal(err)
	}
	opts.Telemetry = tel
	if !*quiet {
		// The ETA line is derived from the suite's telemetry counters
		// (runs completed, mean run duration); when the user did not ask
		// for a metrics report, a private registry feeds just this line.
		etaTel := tel
		if etaTel == nil {
			etaTel = telemetry.New(telemetry.Options{Shards: *cores})
			opts.Telemetry = etaTel
		}
		reg := etaTel.Registry()
		completed := reg.Counter("suite.runs_completed")
		failed := reg.Counter("suite.runs_failed")
		runMillis := reg.Histogram("suite.run_duration_ms")
		workers := *jobs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		start := time.Now()
		lastLine := start
		opts.Progress = func(ev experiments.ProgressEvent) {
			if !ev.Done {
				return
			}
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "rrbench: %v FAILED: %v\n", ev.Spec, ev.Err)
			}
			// One summary line at most every 2 seconds (plus the final
			// converged state when the pool drains).
			if time.Since(lastLine) < 2*time.Second && ev.Completed != ev.Started {
				return
			}
			lastLine = time.Now()
			done, fails := completed.Value(), failed.Value()
			mean := runMillis.Mean() / 1e3
			pending := uint64(ev.Started) - uint64(ev.Completed)
			eta := mean * float64(pending) / float64(workers)
			line := fmt.Sprintf("rrbench: %d/%d runs done, mean %.1fs/run, ~%.0fs left (%.0fs elapsed)",
				done, ev.Started, mean, eta, time.Since(start).Seconds())
			if fails > 0 {
				line += fmt.Sprintf(", %d FAILED", fails)
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		valid := f == "all"
		for _, k := range knownFigs {
			valid = valid || f == k
		}
		if !valid {
			fatal(fmt.Errorf("unknown figure %q (known: all, %s)", f, strings.Join(knownFigs, ", ")))
		}
		want[f] = true
	}
	if len(want) == 0 {
		fatal(fmt.Errorf("-fig %q selects nothing", *figs))
	}
	all := want["all"]
	s := experiments.NewSuite(opts)

	if all || want["table1"] {
		fmt.Println(s.Table1())
	}
	show := func(name string, f func() error) {
		if all || want[name] {
			if err := f(); err != nil {
				fatal(err)
			}
		}
	}
	show("1", func() error {
		_, t, err := s.Figure1()
		return show2(t, err)
	})
	show("9", func() error {
		_, t, err := s.Figure9()
		return show2(t, err)
	})
	show("10", func() error {
		_, t, err := s.Figure10()
		return show2(t, err)
	})
	show("11", func() error {
		_, t, err := s.Figure11()
		return show2(t, err)
	})
	show("12", func() error {
		_, t, err := s.Figure12()
		if err := show2(t, err); err != nil {
			return err
		}
		reps := []string{"fft", "lu", "radix", "ocean"}
		if opts.Apps != nil {
			reps = opts.Apps
			if len(reps) > 4 {
				reps = reps[:4]
			}
		}
		h, err := s.Figure12Histograms(reps)
		return show2(h, err)
	})
	show("13", func() error {
		_, t, err := s.Figure13()
		return show2(t, err)
	})
	show("14", func() error {
		counts := []int{4, 8, 16}
		_, t, err := s.Figure14(counts)
		return show2(t, err)
	})
	show("parallel", func() error {
		_, t, err := s.ExtensionParallelReplay()
		return show2(t, err)
	})
	show("overhead", func() error {
		_, t, err := s.Section53RecordingOverhead()
		return show2(t, err)
	})
	show("motivation", func() error {
		_, t, err := s.MotivationSCRecorder()
		return show2(t, err)
	})
	show("models", func() error {
		_, t, err := s.ExtensionModelSweep()
		return show2(t, err)
	})
	// Opt-in only, never part of -fig all: the 64-core cells are far
	// heavier than any paper figure.
	if want["scaling"] {
		_, t, err := s.ExtensionShardScaling(nil, nil)
		if err := show2(t, err); err != nil {
			fatal(err)
		}
	}

	if *faults != "" {
		inj, err := faultinject.Parse(*faults)
		if err != nil {
			fatal(err)
		}
		res, cerr := s.ChaosMatrix(inj)
		if res != nil {
			fmt.Println(res.Table)
			if *forensics != "" {
				if err := writeChaosForensics(*forensics, res); err != nil {
					fatal(err)
				}
			}
		}
		if cerr != nil {
			fatal(cerr)
		}
		if *netchaos {
			nres, nerr := s.NetChaosGrid(inj)
			if nres != nil {
				fmt.Println(nres.Table)
			}
			if nerr != nil {
				fatal(nerr)
			}
		}
	}

	if err := tf.Flush(tel); err != nil {
		fatal(err)
	}
}

// writeChaosForensics archives every degraded cell's divergence
// reports as one JSON document. Always written when requested — an
// all-clean matrix yields an empty array — so CI can archive the file
// unconditionally.
func writeChaosForensics(path string, res *experiments.ChaosResult) error {
	type cellForensics struct {
		App       string                     `json:"app"`
		Point     string                     `json:"point"`
		Outcome   string                     `json:"outcome"`
		Detail    string                     `json:"detail,omitempty"`
		Forensics []*replay.DivergenceReport `json:"forensics"`
	}
	out := []cellForensics{}
	for _, c := range res.Cells {
		if len(c.Forensics) == 0 {
			continue
		}
		out = append(out, cellForensics{c.App, c.Point, c.Outcome, c.Detail, c.Forensics})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rrbench: wrote forensics for %d degraded cell(s) to %s\n", len(out), path)
	return nil
}

func show2(t fmt.Stringer, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(t)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrbench:", err)
	os.Exit(1)
}
