// Command rrbench regenerates the paper's evaluation tables and
// figures (Table 1, Figures 1 and 9-14) plus this repo's extension
// studies on the simulated multicore.
//
// Usage:
//
//	rrbench [-cores 8] [-scale 3] [-apps fft,lu,...] [-protocol snoopy|directory]
//	        [-fig all|table1,1,9,...] [-j N] [-noverify] [-quiet]
//
// The -fig argument accepts a comma-separated subset of:
//
//	table1      architectural parameters (paper Table 1)
//	1           memory accesses performed out of program order (Figure 1)
//	9           accesses logged as reordered (Figure 9)
//	10          InorderBlock entries, Opt vs Base (Figure 10)
//	11          uncompressed log size and rate (Figure 11)
//	12          TRAQ occupancy average and distribution (Figure 12)
//	13          sequential replay time (Figure 13)
//	14          scalability with 4/8/16 cores (Figure 14)
//	parallel    parallel-replay potential of the logged edges (paper §5.4)
//	overhead    recording's execution-time overhead (paper §5.3)
//	motivation  SC-assuming chunk recorder diverging under RC (paper §2.2)
//	models      consistency-model sweep: RC, TSO, SC (extension)
//	all         everything above
//
// -j N records up to N runs concurrently (0, the default, uses
// GOMAXPROCS; -j 1 reproduces the serial harness). Output is
// deterministic regardless of -j: recordings are independent
// simulations and every table is assembled in a fixed order. Progress
// is reported on stderr as recordings start and finish; -quiet
// silences it. Every recording is replay-verified against the recorded
// execution unless -noverify is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/experiments"
)

// knownFigs lists the accepted -fig names in presentation order.
var knownFigs = []string{
	"table1", "1", "9", "10", "11", "12", "13", "14",
	"parallel", "overhead", "motivation", "models",
}

func main() {
	cores := flag.Int("cores", 8, "number of simulated cores")
	scale := flag.Int("scale", 3, "workload problem-size multiplier")
	apps := flag.String("apps", "", "comma-separated kernel subset (default: all)")
	protocol := flag.String("protocol", "snoopy", "coherence protocol: snoopy or directory")
	figs := flag.String("fig", "all", "figures to regenerate (comma-separated; see doc)")
	jobs := flag.Int("j", 0, "max concurrent recordings (0 = GOMAXPROCS, 1 = serial)")
	noverify := flag.Bool("noverify", false, "skip replay verification of each recording")
	quiet := flag.Bool("quiet", false, "suppress per-run progress on stderr")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Cores = *cores
	opts.Scale = *scale
	opts.Verify = !*noverify
	opts.Parallelism = *jobs
	if *apps != "" {
		list, err := experiments.ParseApps(*apps)
		if err != nil {
			fatal(err)
		}
		opts.Apps = list
	}
	switch *protocol {
	case "snoopy":
		opts.Protocol = coherence.Snoopy
	case "directory":
		opts.Protocol = coherence.Directory
	default:
		fatal(fmt.Errorf("unknown protocol %q", *protocol))
	}
	if !*quiet {
		start := time.Now()
		opts.Progress = func(ev experiments.ProgressEvent) {
			if !ev.Done {
				fmt.Fprintf(os.Stderr, "rrbench: [%d/%d] record %v ...\n",
					ev.Completed, ev.Started, ev.Spec)
				return
			}
			status := "done"
			if ev.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "rrbench: [%d/%d] %v %s in %.1fs (%.0fs elapsed)\n",
				ev.Completed, ev.Started, ev.Spec, status,
				ev.Duration.Seconds(), time.Since(start).Seconds())
		}
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		valid := f == "all"
		for _, k := range knownFigs {
			valid = valid || f == k
		}
		if !valid {
			fatal(fmt.Errorf("unknown figure %q (known: all, %s)", f, strings.Join(knownFigs, ", ")))
		}
		want[f] = true
	}
	if len(want) == 0 {
		fatal(fmt.Errorf("-fig %q selects nothing", *figs))
	}
	all := want["all"]
	s := experiments.NewSuite(opts)

	if all || want["table1"] {
		fmt.Println(s.Table1())
	}
	show := func(name string, f func() error) {
		if all || want[name] {
			if err := f(); err != nil {
				fatal(err)
			}
		}
	}
	show("1", func() error {
		_, t, err := s.Figure1()
		return show2(t, err)
	})
	show("9", func() error {
		_, t, err := s.Figure9()
		return show2(t, err)
	})
	show("10", func() error {
		_, t, err := s.Figure10()
		return show2(t, err)
	})
	show("11", func() error {
		_, t, err := s.Figure11()
		return show2(t, err)
	})
	show("12", func() error {
		_, t, err := s.Figure12()
		if err := show2(t, err); err != nil {
			return err
		}
		reps := []string{"fft", "lu", "radix", "ocean"}
		if opts.Apps != nil {
			reps = opts.Apps
			if len(reps) > 4 {
				reps = reps[:4]
			}
		}
		h, err := s.Figure12Histograms(reps)
		return show2(h, err)
	})
	show("13", func() error {
		_, t, err := s.Figure13()
		return show2(t, err)
	})
	show("14", func() error {
		counts := []int{4, 8, 16}
		_, t, err := s.Figure14(counts)
		return show2(t, err)
	})
	show("parallel", func() error {
		_, t, err := s.ExtensionParallelReplay()
		return show2(t, err)
	})
	show("overhead", func() error {
		_, t, err := s.Section53RecordingOverhead()
		return show2(t, err)
	})
	show("motivation", func() error {
		_, t, err := s.MotivationSCRecorder()
		return show2(t, err)
	})
	show("models", func() error {
		_, t, err := s.ExtensionModelSweep()
		return show2(t, err)
	})
}

func show2(t fmt.Stringer, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(t)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrbench:", err)
	os.Exit(1)
}
