// Command rrbench regenerates the paper's evaluation tables and
// figures (Table 1, Figures 1 and 9-14) on the simulated multicore.
//
// Usage:
//
//	rrbench [-cores 8] [-scale 3] [-apps fft,lu,...] [-protocol snoopy|directory]
//	        [-fig all|table1,1,9,10,11,12,13,14] [-noverify]
//
// Every recording is replay-verified against the recorded execution
// unless -noverify is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/experiments"
)

func main() {
	cores := flag.Int("cores", 8, "number of simulated cores")
	scale := flag.Int("scale", 3, "workload problem-size multiplier")
	apps := flag.String("apps", "", "comma-separated kernel subset (default: all)")
	protocol := flag.String("protocol", "snoopy", "coherence protocol: snoopy or directory")
	figs := flag.String("fig", "all", "figures to regenerate (comma-separated)")
	noverify := flag.Bool("noverify", false, "skip replay verification of each recording")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Cores = *cores
	opts.Scale = *scale
	opts.Verify = !*noverify
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	switch *protocol {
	case "snoopy":
		opts.Protocol = coherence.Snoopy
	case "directory":
		opts.Protocol = coherence.Directory
	default:
		fatal(fmt.Errorf("unknown protocol %q", *protocol))
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	s := experiments.NewSuite(opts)

	if all || want["table1"] {
		fmt.Println(s.Table1())
	}
	show := func(name string, f func() error) {
		if all || want[name] {
			if err := f(); err != nil {
				fatal(err)
			}
		}
	}
	show("1", func() error {
		_, t, err := s.Figure1()
		return show2(t, err)
	})
	show("9", func() error {
		_, t, err := s.Figure9()
		return show2(t, err)
	})
	show("10", func() error {
		_, t, err := s.Figure10()
		return show2(t, err)
	})
	show("11", func() error {
		_, t, err := s.Figure11()
		return show2(t, err)
	})
	show("12", func() error {
		_, t, err := s.Figure12()
		if err := show2(t, err); err != nil {
			return err
		}
		reps := []string{"fft", "lu", "radix", "ocean"}
		if opts.Apps != nil {
			reps = opts.Apps
			if len(reps) > 4 {
				reps = reps[:4]
			}
		}
		h, err := s.Figure12Histograms(reps)
		return show2(h, err)
	})
	show("13", func() error {
		_, t, err := s.Figure13()
		return show2(t, err)
	})
	show("14", func() error {
		counts := []int{4, 8, 16}
		_, t, err := s.Figure14(counts)
		return show2(t, err)
	})
	show("parallel", func() error {
		_, t, err := s.ExtensionParallelReplay()
		return show2(t, err)
	})
	show("overhead", func() error {
		_, t, err := s.Section53RecordingOverhead()
		return show2(t, err)
	})
	show("motivation", func() error {
		_, t, err := s.MotivationSCRecorder()
		return show2(t, err)
	})
	show("models", func() error {
		_, t, err := s.ExtensionModelSweep()
		return show2(t, err)
	})
}

func show2(t fmt.Stringer, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(t)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrbench:", err)
	os.Exit(1)
}
