// Package coherence models the memory hierarchy of the simulated
// multicore: per-core MESI L1 caches, a shared L2 agent that is the
// transaction ordering point, and main memory, connected by the
// slotted ring from package interconnect.
//
// Two protocols are provided, selected by Config.Protocol:
//
//   - Snoopy (default, the paper's evaluation configuration): every
//     coherence transaction circulates the whole ring, so every core
//     observes every transaction — the property RelaxReplay_Opt's
//     Snoop Table relies on, and the reason its pressure grows with
//     core count (paper §5.5).
//   - Directory: the L2 home keeps exact owner/sharer state and sends
//     targeted invalidations/fetches, so a core only observes traffic
//     for lines it actually cached (paper §4.3).
//
// Both protocols provide write atomicity: a store performs only when
// its transaction has completed, i.e. after every other copy of the
// line has been invalidated. This is the property RelaxReplay's
// Observation 1 requires of the substrate.
//
// Perform events (the binding of a value to an access) are exported at
// the exact cycle they happen so the memory race recorder can stamp
// PISNs and Snoop Counts without any window between value binding and
// observation.
//
//rrlint:deterministic
package coherence

import (
	"container/heap"
	"fmt"

	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/interconnect"
	"relaxreplay/internal/telemetry"
)

// Line geometry (paper Table 1: 32-byte lines, 8-byte words).
const (
	LineSize     = 32
	WordsPerLine = LineSize / 8
	lineShift    = 5
)

// LineData is the payload of one cache line.
type LineData [WordsPerLine]uint64

// LineOf returns the line address (line number) containing addr.
func LineOf(addr uint64) uint64 { return addr >> lineShift }

// wordOf returns the word index within the line for addr.
func wordOf(addr uint64) int { return int(addr>>3) & (WordsPerLine - 1) }

// Protocol selects the coherence protocol.
type Protocol uint8

const (
	// Snoopy broadcasts every transaction around the ring (MESI).
	Snoopy Protocol = iota
	// Directory sends targeted invalidations from the L2 home (MESI).
	Directory
)

func (p Protocol) String() string {
	if p == Directory {
		return "directory"
	}
	return "snoopy"
}

// Config holds the memory system parameters (defaults per paper Table 1).
type Config struct {
	Cores    int
	Protocol Protocol

	L1Sets   int // 64KB 4-way 32B lines -> 512 sets
	L1Ways   int
	L1HitLat uint64 // L1 round trip, cycles
	L1MSHRs  int

	L2Lat      uint64 // L2 lookup latency, cycles
	L2Capacity int    // resident lines (latency model); 512KB per core
	MemLat     uint64 // additional latency for a non-resident line

	// Telemetry, when non-nil, receives the memory-system counters and
	// the MSHR occupancy histogram (metric names under "coherence.").
	// It observes only: simulation behaviour is identical without it.
	Telemetry *telemetry.Telemetry

	// Faults, when non-nil, is handed to the ring (ic.delay / ic.drop
	// points). Nil leaves the memory system fully deterministic.
	Faults *faultinject.Injector
}

// DefaultConfig returns the paper's Table 1 memory system for the
// given core count.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:      cores,
		Protocol:   Snoopy,
		L1Sets:     512,
		L1Ways:     4,
		L1HitLat:   2,
		L1MSHRs:    64,
		L2Lat:      12,
		L2Capacity: cores * 512 * 1024 / LineSize,
		MemLat:     150,
	}
}

// Kind classifies a memory operation submitted by a core.
type Kind uint8

const (
	// Load reads one word.
	Load Kind = iota
	// Store writes one word.
	Store
	// RMW atomically reads a word, applies Request.Apply, and
	// (conditionally) writes the result.
	RMW
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return "rmw"
	}
}

// Request is a memory operation submitted by a core's load/store unit.
type Request struct {
	Core int
	ID   uint64 // core-local operation id, echoed in events
	Addr uint64
	Kind Kind

	StoreVal uint64
	// Apply implements the RMW: given the old word it returns the new
	// word and whether the write takes effect (false for a failed CAS).
	Apply func(old uint64) (newVal uint64, write bool)
}

// PerformEvent reports that an access bound its value: the paper's
// "perform" event. It is visible to the recorder on the very cycle it
// happens.
type PerformEvent struct {
	Core    int
	ID      uint64
	Line    uint64
	Addr    uint64
	IsWrite bool   // store or (any) RMW
	IsRead  bool   // load or RMW
	Value   uint64 // value read (loads, RMW old value) or written (stores)
	// StoredVal/DidWrite describe the write half (stores and RMWs);
	// the recorder needs them to log reordered stores and atomics.
	StoredVal uint64
	DidWrite  bool
	Cycle     uint64
}

// Completion reports the result of an operation back to the pipeline,
// L1-hit latency (or the miss path) after the perform event.
type Completion struct {
	Core  int
	ID    uint64
	Value uint64 // load value; RMW old value; unspecified for stores
	Cycle uint64
}

// Stats aggregates memory-system counters.
type Stats struct {
	L1Hits, L1Misses   uint64
	Upgrades           uint64
	DirtyEvictions     uint64
	Transactions       uint64
	SnoopsObserved     uint64 // remote snoops delivered to cores
	CacheToCache       uint64
	L2Misses           uint64 // non-resident accesses (memory latency paid)
	RingMessages       uint64
	MSHRRejects        uint64
	InvalidationsSent  uint64 // directory mode
	StaleWritebacks    uint64 // PutM dropped at L2
	WBBufferSupplies   uint64 // data supplied from a writeback buffer
	SupersededWBEvents uint64
}

// Sub returns the counter-wise difference s - o. Both snapshots must
// come from the same system with s taken later.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		L1Hits:             s.L1Hits - o.L1Hits,
		L1Misses:           s.L1Misses - o.L1Misses,
		Upgrades:           s.Upgrades - o.Upgrades,
		DirtyEvictions:     s.DirtyEvictions - o.DirtyEvictions,
		Transactions:       s.Transactions - o.Transactions,
		SnoopsObserved:     s.SnoopsObserved - o.SnoopsObserved,
		CacheToCache:       s.CacheToCache - o.CacheToCache,
		L2Misses:           s.L2Misses - o.L2Misses,
		RingMessages:       s.RingMessages - o.RingMessages,
		MSHRRejects:        s.MSHRRejects - o.MSHRRejects,
		InvalidationsSent:  s.InvalidationsSent - o.InvalidationsSent,
		StaleWritebacks:    s.StaleWritebacks - o.StaleWritebacks,
		WBBufferSupplies:   s.WBBufferSupplies - o.WBBufferSupplies,
		SupersededWBEvents: s.SupersededWBEvents - o.SupersededWBEvents,
	}
}

// AddScaled adds n copies of the per-cycle delta d to s, mirroring
// cpu.Stats.AddScaled for the machine's idle-cycle fast-forward. An
// inert memory system has an all-zero delta, but the method stays
// field-complete so a future per-cycle counter cannot be silently
// dropped.
func (s *Stats) AddScaled(d Stats, n uint64) {
	s.L1Hits += d.L1Hits * n
	s.L1Misses += d.L1Misses * n
	s.Upgrades += d.Upgrades * n
	s.DirtyEvictions += d.DirtyEvictions * n
	s.Transactions += d.Transactions * n
	s.SnoopsObserved += d.SnoopsObserved * n
	s.CacheToCache += d.CacheToCache * n
	s.L2Misses += d.L2Misses * n
	s.RingMessages += d.RingMessages * n
	s.MSHRRejects += d.MSHRRejects * n
	s.InvalidationsSent += d.InvalidationsSent * n
	s.StaleWritebacks += d.StaleWritebacks * n
	s.WBBufferSupplies += d.WBBufferSupplies * n
	s.SupersededWBEvents += d.SupersededWBEvents * n
}

// System is the full memory hierarchy for one simulated machine.
type System struct {
	cfg   Config
	ring  *interconnect.Ring
	l1s   []*l1cache
	l2    *l2agent
	cycle uint64

	events   eventQueue
	eventSeq uint64
	// freeEvents recycles fired event boxes so the steady-state event
	// traffic allocates nothing.
	freeEvents []*event

	// work counts state mutations inside Tick (ring activity, events
	// fired). The machine's idle-cycle fast-forward treats a tick whose
	// work count did not move — here and in every core — as provably
	// inert and safe to skip.
	work uint64

	performs    []PerformEvent
	completions []Completion
	// Spare buffers for the double-buffered Drain* calls: the slice a
	// drain returns stays valid until the next drain of the same kind,
	// while new events accumulate in the other buffer.
	performsSpare    []PerformEvent
	completionsSpare []Completion

	// Core-phase staging (BeginCorePhase/EndCorePhase). While staged,
	// the submit path — which the sharded machine runs concurrently,
	// one goroutine per shard of cores — routes every touch of
	// machine-global state (the event heap, the ring, the aggregate
	// Stats) into per-core buffers that only the submitting core's
	// shard writes. The coordinator replays them at the epoch barrier
	// in core order, reproducing the serial loop's event sequence
	// numbers and ring injection order exactly.
	staged     bool
	stageStats []Stats
	stageCompl [][]stagedCompletion
	stageSends [][]interconnect.Message

	// OnPerform, when set, receives every perform event synchronously,
	// at the exact point within the cycle where the value binds. This
	// preserves the true intra-cycle order between performs and
	// observed snoops, which the recorder's PISN stamping relies on.
	// When unset, events are queued for DrainPerforms instead.
	OnPerform func(ev PerformEvent)
	// OnRemoteSnoop is invoked when core observes a coherence
	// transaction it did not originate (a passing ring snoop in snoopy
	// mode; a received Inv/Fetch in directory mode). The recorder uses
	// it for signature conflict checks and Snoop Table updates;
	// requester identifies the transaction's originating core, which
	// dependence-edge recording (parallel replay) needs.
	OnRemoteSnoop func(core int, line uint64, isWrite bool, requester int, cycle uint64)
	// OnDirtyEvict is invoked when a core writes back a dirty line. In
	// directory mode RelaxReplay_Opt must self-increment its Snoop
	// Table on this event (paper §4.3).
	OnDirtyEvict func(core int, line uint64, cycle uint64)

	// ClockOf and OnHint implement logical-clock piggybacking for
	// orderers that use Lamport-style scalar clocks instead of a
	// global physical clock (Intel MRR / Cyrus style, paper §2).
	// When set, every coherence message accumulates the clocks of the
	// cores that held the line it touches (ClockOf), and the
	// accumulated hint is delivered to the requester with the data
	// grant (OnHint). Leave nil for physical-timestamp ordering.
	ClockOf func(core int) uint64
	// OnHint delivers the accumulated clock hint with a data grant.
	OnHint func(core int, hint uint64)

	Stats Stats
	tel   memTelem
}

// memTelem holds the memory system's pre-resolved telemetry handles.
// The zero value (all nil) is the disabled state: every call is a
// no-op.
type memTelem struct {
	l1Hits        *telemetry.Counter
	l1Misses      *telemetry.Counter
	upgrades      *telemetry.Counter
	mshrRejects   *telemetry.Counter
	dirtyEvicts   *telemetry.Counter
	cacheToCache  *telemetry.Counter
	l2Misses      *telemetry.Counter
	invalidations *telemetry.Counter
	snoops        *telemetry.Counter
	wbSupplies    *telemetry.Counter
	transactions  *telemetry.Counter

	mshrOcc *telemetry.Histogram
}

// newMemTelem resolves the coherence-layer metric handles once at
// system construction, keeping the hot path free of name lookups.
func newMemTelem(t *telemetry.Telemetry) memTelem {
	reg := t.Registry()
	if reg == nil {
		return memTelem{}
	}
	return memTelem{
		l1Hits:        reg.Counter("coherence.l1.hits"),
		l1Misses:      reg.Counter("coherence.l1.misses"),
		upgrades:      reg.Counter("coherence.upgrades"),
		mshrRejects:   reg.Counter("coherence.mshr_rejects"),
		dirtyEvicts:   reg.Counter("coherence.dirty_evictions"),
		cacheToCache:  reg.Counter("coherence.cache_to_cache"),
		l2Misses:      reg.Counter("coherence.l2.misses"),
		invalidations: reg.Counter("coherence.invalidations"),
		snoops:        reg.Counter("coherence.snoops_observed"),
		wbSupplies:    reg.Counter("coherence.wb_supplies"),
		transactions:  reg.Counter("coherence.transactions"),
		mshrOcc:       reg.Histogram("coherence.mshr_occupancy"),
	}
}

// New builds a memory system. Core IDs are 0..cfg.Cores-1; the L2
// agent is ring node cfg.Cores.
func New(cfg Config) *System {
	if cfg.Cores < 1 {
		panic("coherence: need at least one core")
	}
	s := &System{
		cfg:  cfg,
		ring: interconnect.New(cfg.Cores + 1),
		tel:  newMemTelem(cfg.Telemetry),
	}
	s.ring.Faults = cfg.Faults
	s.l1s = make([]*l1cache, cfg.Cores)
	for i := range s.l1s {
		s.l1s[i] = newL1(s, i)
	}
	s.l2 = newL2(s)
	return s
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Cycle returns the current cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// MSHROccupancy returns the number of outstanding misses at core's L1,
// for the machine's cycle-sampled telemetry tracks.
func (s *System) MSHROccupancy(core int) int { return len(s.l1s[core].mshrs) }

// RingQueueDepth returns the number of messages waiting for ring
// injection across all stations.
func (s *System) RingQueueDepth() int { return s.ring.QueueDepth() }

// RingHops returns the cumulative number of message hops on the ring.
func (s *System) RingHops() uint64 { return s.ring.Hops }

// InitWord initializes memory before simulation starts.
func (s *System) InitWord(addr, val uint64) {
	e := s.l2.entry(LineOf(addr))
	e.data[wordOf(addr)] = val
}

// PeekWord returns the current coherent value of a word, looking at
// the owning cache first. It is a debugging/verification aid and does
// not perturb the simulation.
func (s *System) PeekWord(addr uint64) uint64 {
	line := LineOf(addr)
	for _, l1 := range s.l1s {
		if cl := l1.lookup(line); cl != nil && cl.state == stateM {
			return cl.data[wordOf(addr)]
		}
		if wb := l1.wbEntry(line); wb != nil && !wb.superseded {
			return wb.data[wordOf(addr)]
		}
	}
	e := s.l2.entry(line)
	return e.data[wordOf(addr)]
}

// FinalMemory returns the coherent memory image (all non-zero words)
// after the simulation has quiesced.
func (s *System) FinalMemory() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	emit := func(line uint64, data *LineData) {
		for w := 0; w < WordsPerLine; w++ {
			if data[w] != 0 {
				out[line<<lineShift+uint64(w*8)] = data[w]
			}
		}
	}
	for line, e := range s.l2.dir {
		owned := false
		for _, l1 := range s.l1s {
			if cl := l1.lookup(line); cl != nil && cl.state == stateM {
				emit(line, &cl.data)
				owned = true
				break
			}
		}
		if !owned {
			emit(line, &e.data)
		}
	}
	return out
}

// Submit hands a memory operation to the core's L1. It returns false
// when the L1 cannot accept the request this cycle (MSHRs full); the
// caller must retry. Alignment to 8 bytes is required.
func (s *System) Submit(r Request) bool {
	if r.Addr%8 != 0 {
		panic(fmt.Sprintf("coherence: unaligned access %#x", r.Addr))
	}
	if r.Kind == RMW && r.Apply == nil {
		panic("coherence: RMW without Apply")
	}
	return s.l1s[r.Core].submit(r)
}

// Busy reports whether any transaction or queued work remains.
func (s *System) Busy() bool {
	if s.ring.Busy() || len(s.events) > 0 || s.l2.busyLines > 0 {
		return true
	}
	for _, l1 := range s.l1s {
		if l1.busy() {
			return true
		}
	}
	return false
}

// Tick advances the memory system one cycle. The caller then drains
// DrainPerforms (same-cycle perform events, for the recorder) and
// DrainCompletions (pipeline notifications).
//
//rrlint:hotpath
func (s *System) Tick() {
	s.cycle++
	if s.ring.Busy() {
		// A busy ring always mutates: hops, deliveries or injections.
		s.work++
	}
	for _, d := range s.ring.Tick() {
		s.dispatch(d)
	}
	for len(s.events) > 0 && s.events[0].cycle <= s.cycle {
		ev := heap.Pop(&s.events).(*event)
		s.work++
		if ev.fn != nil {
			ev.fn()
			ev.fn = nil // release the closure before recycling
		} else {
			// Tagged completion event (see complete).
			s.completions = append(s.completions, Completion{Core: ev.core, ID: ev.id, Value: ev.value, Cycle: s.cycle}) //rrlint:allow hotpath-alloc (amortized append into reused buffer)
		}
		s.freeEvents = append(s.freeEvents, ev)
	}
	s.Stats.RingMessages = s.ring.Injected
	if s.tel.mshrOcc != nil {
		for i, l1 := range s.l1s {
			s.tel.mshrOcc.Observe(i, uint64(len(l1.mshrs)))
		}
	}
}

// WorkCount returns a monotonically increasing count of state
// mutations performed by Tick. If it does not move across a tick the
// memory system's architectural state was untouched that cycle.
func (s *System) WorkCount() uint64 { return s.work }

// NextEventCycle returns the cycle of the earliest scheduled event,
// if any. The fast-forward path uses it as a wake-up bound: with no
// ring traffic, nothing in the memory system can change before that
// cycle.
func (s *System) NextEventCycle() (uint64, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].cycle, true
}

// SkipTo advances the system clock to cycle without simulating the
// intervening ticks. The caller (the machine's fast-forward) must have
// proven the system inert: no ring traffic and no event due before
// cycle.
func (s *System) SkipTo(cycle uint64) {
	if cycle > s.cycle {
		s.cycle = cycle
	}
}

// DrainPerforms returns and clears the perform events generated this
// cycle. The returned slice is valid until the next DrainPerforms call.
func (s *System) DrainPerforms() []PerformEvent {
	out := s.performs
	s.performs = s.performsSpare[:0]
	s.performsSpare = out
	return out
}

// DrainCompletions returns and clears the completions due by this
// cycle. The returned slice is valid until the next DrainCompletions
// call.
func (s *System) DrainCompletions() []Completion {
	out := s.completions
	s.completions = s.completionsSpare[:0]
	s.completionsSpare = out
	return out
}

// stagedCompletion defers one System.complete issued during the
// sharded core phase until the epoch barrier.
type stagedCompletion struct {
	core  int
	id    uint64
	value uint64
	delay uint64
}

// BeginCorePhase enters staged mode for one cycle's core phase: until
// EndCorePhase, the submit path (the only System entry point invoked
// outside Tick) appends its cross-core effects — scheduled
// completions, ring injections, Stats increments — to per-core
// buffers instead of touching the shared structures. Each buffer is
// written only by the shard that owns its core, so the core phase is
// data-race-free without locks. Memory-phase entry points (Tick,
// receive, grant) must not run while staged.
func (s *System) BeginCorePhase() {
	if s.stageStats == nil {
		s.stageStats = make([]Stats, s.cfg.Cores)
		s.stageCompl = make([][]stagedCompletion, s.cfg.Cores)
		s.stageSends = make([][]interconnect.Message, s.cfg.Cores)
	}
	s.staged = true
}

// EndCorePhase leaves staged mode and replays the staged effects in
// core order 0..Cores-1, preserving each core's submission order.
// That is exactly the order the serial loop produces (core i ticks
// before core i+1), so event sequence numbers — and therefore every
// downstream perform, completion and snoop ordering — are identical
// to the unsharded run.
func (s *System) EndCorePhase() {
	s.staged = false
	for core := 0; core < s.cfg.Cores; core++ {
		s.Stats.AddScaled(s.stageStats[core], 1)
		s.stageStats[core] = Stats{}
		for _, sc := range s.stageCompl[core] {
			s.complete(sc.core, sc.id, sc.value, sc.delay)
		}
		s.stageCompl[core] = s.stageCompl[core][:0]
		for _, msg := range s.stageSends[core] {
			s.ring.Send(msg)
		}
		s.stageSends[core] = s.stageSends[core][:0]
	}
}

// statsFor returns the Stats sink for a submit-path increment on
// behalf of core: the shared aggregate when serial, the core's
// staging slot during a sharded core phase.
//
//rrlint:handoff
func (s *System) statsFor(core int) *Stats {
	if s.staged {
		return &s.stageStats[core]
	}
	return &s.Stats
}

// send injects a ring message on behalf of core, staging it during a
// sharded core phase (the ring's injection queues and max-depth
// counter are machine-global).
//
//rrlint:handoff
func (s *System) send(core int, msg interconnect.Message) {
	if s.staged {
		s.stageSends[core] = append(s.stageSends[core], msg)
		return
	}
	s.ring.Send(msg)
}

func (s *System) dispatch(d interconnect.Delivery) {
	if d.Node == s.cfg.Cores {
		if d.Final {
			s.l2.receive(d.Msg)
		}
		return
	}
	s.l1s[d.Node].receive(d.Msg, d.Final)
}

// at schedules an arbitrary protocol action on the machine-global
// event heap. Memory-phase only: the heap and the sequence counter
// are coordinator-owned.
//
//rrlint:coordinator
func (s *System) at(delay uint64, fn func()) {
	e := s.takeEvent()
	e.cycle = s.cycle + delay
	e.fn = fn
	heap.Push(&s.events, e)
}

// takeEvent returns a reset event box with a fresh sequence number,
// reusing a fired one when available. Coordinator-owned: the sequence
// counter and free list are machine-global.
//
//rrlint:hotpath
//rrlint:coordinator
func (s *System) takeEvent() *event {
	s.eventSeq++
	var e *event
	if n := len(s.freeEvents); n > 0 {
		e = s.freeEvents[n-1]
		s.freeEvents[n-1] = nil
		s.freeEvents = s.freeEvents[:n-1]
		*e = event{} //rrlint:allow hotpath-alloc (in-place reset of recycled box)
	} else {
		e = new(event)
	}
	e.seq = s.eventSeq
	return e
}

func (s *System) perform(ev PerformEvent) {
	ev.Cycle = s.cycle
	if s.OnPerform != nil {
		s.OnPerform(ev)
		return
	}
	s.performs = append(s.performs, ev)
}

// complete schedules a pipeline completion notification. It is the
// highest-traffic event kind, so instead of a closure it uses a tagged
// event (fn == nil) whose payload rides in the event box itself.
// During a sharded core phase the completion is staged per core and
// scheduled at the epoch barrier (same cycle, so the delay reproduces
// the identical fire cycle).
//
//rrlint:hotpath
//rrlint:handoff
func (s *System) complete(core int, id uint64, value uint64, delay uint64) {
	if s.staged {
		s.stageCompl[core] = append(s.stageCompl[core], stagedCompletion{core: core, id: id, value: value, delay: delay}) //rrlint:allow hotpath-alloc (amortized append into reused buffer)
		return
	}
	e := s.takeEvent()
	e.cycle = s.cycle + delay
	e.core, e.id, e.value = core, id, value
	heap.Push(&s.events, e)
}

func (s *System) observeSnoop(core int, line uint64, isWrite bool, requester int) {
	s.Stats.SnoopsObserved++
	s.tel.snoops.Inc(core)
	if s.OnRemoteSnoop != nil {
		s.OnRemoteSnoop(core, line, isWrite, requester, s.cycle)
	}
}

// event queue -----------------------------------------------------------

type event struct {
	cycle uint64
	seq   uint64
	// fn, when non-nil, is an arbitrary protocol action. When nil the
	// event is a tagged completion carrying its payload inline (see
	// System.complete), which keeps the hottest event kind closure-free.
	fn    func()
	core  int
	id    uint64
	value uint64
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
