package coherence

import (
	"container/list"
	"fmt"

	"relaxreplay/internal/interconnect"
)

// dirEntry is the L2 agent's per-line state. The L2 is the single
// ordering point for the line: at most one transaction is in flight
// per line, and later requests queue FIFO.
//
// The entry doubles as the backing store for the line's data (the L2
// plus memory behind it); residency in the configured L2 capacity is
// tracked separately and affects latency only.
type dirEntry struct {
	line    uint64
	data    LineData
	owner   int    // core holding M or E, -1 when none
	sharers uint64 // bitmask of cores that may hold S copies

	busy  bool
	queue []*reqMsg

	// clockHint remembers the last publisher's logical clock for this
	// line (piggyback ordering); carried on every grant.
	clockHint uint64

	// In-flight transaction state.
	req         *reqMsg
	dataReadyAt uint64
	pendingAcks int
	sharerSeen  bool
}

type l2agent struct {
	sys *System
	dir map[uint64]*dirEntry

	// Residency LRU for the latency model; a request to a non-resident
	// line pays the memory latency.
	lru      *list.List // line addrs, front = MRU
	resident map[uint64]*list.Element

	busyLines int
}

func newL2(sys *System) *l2agent {
	return &l2agent{
		sys:      sys,
		dir:      make(map[uint64]*dirEntry),
		lru:      list.New(),
		resident: make(map[uint64]*list.Element),
	}
}

func (a *l2agent) node() int { return a.sys.cfg.Cores }

func (a *l2agent) entry(line uint64) *dirEntry {
	e := a.dir[line]
	if e == nil {
		e = &dirEntry{line: line, owner: -1}
		a.dir[line] = e
	}
	return e
}

// touchResident returns the extra latency for this access (memory
// latency when the line is not L2-resident) and updates the LRU.
func (a *l2agent) touchResident(line uint64) uint64 {
	if el, ok := a.resident[line]; ok {
		a.lru.MoveToFront(el)
		return 0
	}
	a.sys.Stats.L2Misses++
	a.sys.tel.l2Misses.Inc(0)
	a.resident[line] = a.lru.PushFront(line)
	for a.lru.Len() > a.sys.cfg.L2Capacity {
		back := a.lru.Back()
		a.lru.Remove(back)
		delete(a.resident, back.Value.(uint64))
	}
	return a.sys.cfg.MemLat
}

func (a *l2agent) receive(msg interconnect.Message) {
	switch p := msg.Payload.(type) {
	case *reqMsg:
		e := a.entry(p.line)
		if e.busy {
			e.queue = append(e.queue, p)
			return
		}
		a.begin(e, p)
	case *snoopMsg:
		a.snoopReturned(p)
	case *ackMsg:
		a.ackReceived(p)
	}
}

// begin starts processing an ordered request for a free line.
func (a *l2agent) begin(e *dirEntry, p *reqMsg) {
	e.busy = true
	e.req = p
	a.busyLines++

	if p.kind == reqPutM {
		// Writebacks need no snoop: accept if the sender is still the
		// owner, else drop the stale data.
		if e.owner == p.core {
			e.data = p.data
			e.owner = -1
		} else {
			a.sys.Stats.StaleWritebacks++
		}
		if a.sys.ClockOf != nil {
			// The evicted dirty line carries the writer's clock: later
			// readers served from the L2 must order after it.
			if h := a.sys.ClockOf(p.core); h > e.clockHint {
				e.clockHint = h
			}
		}
		a.touchResident(p.line)
		a.sys.at(a.sys.cfg.L2Lat, func() {
			a.send(p.core, &putAckMsg{line: p.line})
			a.finish(e)
		})
		return
	}

	e.dataReadyAt = a.sys.cycle + a.sys.cfg.L2Lat + a.touchResident(p.line)
	e.sharerSeen = false

	if a.sys.cfg.Protocol == Snoopy {
		a.sys.ring.Send(interconnect.Message{
			Src:     a.node(),
			Dst:     a.node(),
			Visit:   true,
			Payload: &snoopMsg{kind: p.kind, line: p.line, requester: p.core},
		})
		return
	}
	a.beginDirectory(e, p)
}

// beginDirectory sends targeted invalidations/fetches per the exact
// sharer/owner state and waits for the acks.
func (a *l2agent) beginDirectory(e *dirEntry, p *reqMsg) {
	targets := e.sharers
	if e.owner >= 0 {
		targets |= 1 << uint(e.owner)
	}
	targets &^= 1 << uint(p.core)
	if p.kind == reqGetS {
		// Reads only disturb the owner (downgrade); S copies stay.
		if e.owner >= 0 && e.owner != p.core {
			targets = 1 << uint(e.owner)
		} else {
			targets = 0
		}
	}
	e.pendingAcks = 0
	for c := 0; c < a.sys.cfg.Cores; c++ {
		if targets&(1<<uint(c)) == 0 {
			continue
		}
		e.pendingAcks++
		a.sys.Stats.InvalidationsSent++
		a.sys.tel.invalidations.Inc(p.core)
		a.send(c, &invMsg{line: p.line, requester: p.core, isWrite: p.kind == reqGetM})
	}
	e.sharerSeen = e.sharers&^(1<<uint(p.core)) != 0
	if e.pendingAcks == 0 {
		a.scheduleGrant(e)
	}
}

func (a *l2agent) ackReceived(p *ackMsg) {
	e := a.entry(p.line)
	if !e.busy || e.pendingAcks == 0 {
		panic(fmt.Sprintf("coherence: unexpected ack for line %#x", p.line))
	}
	if p.hasData {
		e.data = p.data
		a.sys.Stats.CacheToCache++
		a.sys.tel.cacheToCache.Inc(p.from)
		e.dataReadyAt = a.sys.cycle
	}
	if p.clockHint > e.clockHint {
		e.clockHint = p.clockHint
	}
	e.pendingAcks--
	if e.pendingAcks == 0 {
		a.scheduleGrant(e)
	}
}

// snoopReturned completes the broadcast phase of a snoopy transaction.
func (a *l2agent) snoopReturned(p *snoopMsg) {
	e := a.entry(p.line)
	if !e.busy || e.req == nil || e.req.line != p.line {
		panic(fmt.Sprintf("coherence: stray snoop return for line %#x", p.line))
	}
	if p.hasOwner {
		e.data = p.ownerData
		e.dataReadyAt = a.sys.cycle
	}
	if p.clockHint > e.clockHint {
		e.clockHint = p.clockHint
	}
	e.sharerSeen = p.sharerSeen
	a.scheduleGrant(e)
}

// scheduleGrant sends the data grant once the data is ready and
// retires the transaction.
func (a *l2agent) scheduleGrant(e *dirEntry) {
	grant := func() {
		p := e.req
		st := stateS
		switch {
		case p.kind == reqGetM:
			st = stateM
			e.owner = p.core
			e.sharers = 0
		case !e.sharerSeen && e.owner < 0:
			st = stateE
			e.owner = p.core
			e.sharers = 0
		default:
			if e.owner >= 0 && e.owner != p.core {
				e.sharers |= 1 << uint(e.owner)
			}
			e.owner = -1
			e.sharers |= 1 << uint(p.core)
		}
		a.sys.Stats.Transactions++
		a.sys.tel.transactions.Inc(p.core)
		a.send(p.core, &dataMsg{line: p.line, data: e.data, state: st, clockHint: e.clockHint})
		a.finish(e)
	}
	if e.dataReadyAt <= a.sys.cycle {
		grant()
		return
	}
	a.sys.at(e.dataReadyAt-a.sys.cycle, grant)
}

// finish frees the line and starts the next queued request, if any.
func (a *l2agent) finish(e *dirEntry) {
	e.busy = false
	e.req = nil
	a.busyLines--
	if len(e.queue) > 0 {
		next := e.queue[0]
		copy(e.queue, e.queue[1:])
		e.queue = e.queue[:len(e.queue)-1]
		a.begin(e, next)
	}
}

func (a *l2agent) send(core int, payload any) {
	a.sys.ring.Send(interconnect.Message{Src: a.node(), Dst: core, Payload: payload})
}
