package coherence

import (
	"fmt"

	"relaxreplay/internal/interconnect"
)

// cacheLine is one L1 line.
type cacheLine struct {
	tag     uint64 // line address
	state   lineState
	data    LineData
	lastUse uint64 // LRU clock
}

// mshr tracks one outstanding miss; operations to the same line
// coalesce onto it.
type mshr struct {
	line    uint64
	wantM   bool // a store/RMW is waiting, so M is required
	issued  reqKind
	waiters []Request
}

// wbent is a writeback buffer entry: an evicted dirty line waiting for
// the L2 to order and acknowledge its PutM. The entry keeps supplying
// data to snoops until a remote write supersedes it.
type wbent struct {
	line       uint64
	data       LineData
	superseded bool
	pending    int // outstanding PutM acks for this line
}

type l1cache struct {
	sys   *System
	core  int
	sets  [][]cacheLine
	mshrs map[uint64]*mshr
	wb    map[uint64]*wbent
	clock uint64
}

func newL1(sys *System, core int) *l1cache {
	sets := make([][]cacheLine, sys.cfg.L1Sets)
	for i := range sets {
		sets[i] = make([]cacheLine, sys.cfg.L1Ways)
	}
	return &l1cache{
		sys:   sys,
		core:  core,
		sets:  sets,
		mshrs: make(map[uint64]*mshr),
		wb:    make(map[uint64]*wbent),
	}
}

func (c *l1cache) busy() bool { return len(c.mshrs) > 0 || len(c.wb) > 0 }

func (c *l1cache) set(line uint64) []cacheLine {
	return c.sets[line%uint64(len(c.sets))]
}

// lookup returns the valid line or nil.
func (c *l1cache) lookup(line uint64) *cacheLine {
	set := c.set(line)
	for i := range set {
		if set[i].state != stateI && set[i].tag == line {
			return &set[i]
		}
	}
	return nil
}

func (c *l1cache) wbEntry(line uint64) *wbent { return c.wb[line] }

func (c *l1cache) touch(cl *cacheLine) {
	c.clock++
	cl.lastUse = c.clock
}

// submit accepts one memory operation; false means "retry next cycle".
//
// submit is the one System entry point the core phase invokes, so
// under the sharded machine it runs concurrently with other cores'
// submits. Everything it touches is either owned by this core (the
// cache arrays, MSHRs, the recorder behind the perform callback) or
// funneled through the staging handoffs (statsFor, complete, send).
//
//rrlint:shardphase
func (c *l1cache) submit(r Request) bool {
	line := LineOf(r.Addr)

	// Coalesce onto an outstanding miss.
	if m := c.mshrs[line]; m != nil {
		m.waiters = append(m.waiters, r)
		if r.Kind != Load {
			m.wantM = true
		}
		return true
	}

	cl := c.lookup(line)
	switch {
	case r.Kind == Load && cl != nil:
		c.bindLoad(r, cl)
		c.sys.statsFor(c.core).L1Hits++
		c.sys.tel.l1Hits.Inc(c.core)
		return true
	case r.Kind != Load && cl != nil && (cl.state == stateM || cl.state == stateE):
		c.bindWrite(r, cl)
		c.sys.statsFor(c.core).L1Hits++
		c.sys.tel.l1Hits.Inc(c.core)
		return true
	}

	// Miss (or store hit on a shared line: upgrade).
	if len(c.mshrs) >= c.sys.cfg.L1MSHRs {
		c.sys.statsFor(c.core).MSHRRejects++
		c.sys.tel.mshrRejects.Inc(c.core)
		return false
	}
	kind := reqGetS
	if r.Kind != Load {
		kind = reqGetM
	}
	if cl != nil && kind == reqGetM {
		c.sys.statsFor(c.core).Upgrades++
		c.sys.tel.upgrades.Inc(c.core)
	} else {
		c.sys.statsFor(c.core).L1Misses++
		c.sys.tel.l1Misses.Inc(c.core)
	}
	m := &mshr{line: line, wantM: kind == reqGetM, issued: kind, waiters: []Request{r}}
	c.mshrs[line] = m
	c.request(kind, line, LineData{})
	return true
}

func (c *l1cache) request(kind reqKind, line uint64, data LineData) {
	c.sys.send(c.core, interconnect.Message{
		Src:     c.core,
		Dst:     c.sys.cfg.Cores,
		Payload: &reqMsg{kind: kind, line: line, core: c.core, data: data},
	})
}

// bindLoad reads the word, fires the perform event now, and schedules
// the pipeline completion after the L1 hit latency.
func (c *l1cache) bindLoad(r Request, cl *cacheLine) {
	c.touch(cl)
	v := cl.data[wordOf(r.Addr)]
	c.sys.perform(PerformEvent{Core: r.Core, ID: r.ID, Line: cl.tag, Addr: r.Addr, IsRead: true, Value: v})
	c.sys.complete(r.Core, r.ID, v, c.sys.cfg.L1HitLat)
}

// bindWrite applies a store or RMW to an owned (M/E) line.
func (c *l1cache) bindWrite(r Request, cl *cacheLine) {
	c.touch(cl)
	cl.state = stateM
	w := wordOf(r.Addr)
	switch r.Kind {
	case Store:
		cl.data[w] = r.StoreVal
		c.sys.perform(PerformEvent{
			Core: r.Core, ID: r.ID, Line: cl.tag, Addr: r.Addr, IsWrite: true,
			Value: r.StoreVal, StoredVal: r.StoreVal, DidWrite: true,
		})
		c.sys.complete(r.Core, r.ID, 0, c.sys.cfg.L1HitLat)
	case RMW:
		old := cl.data[w]
		newVal, write := r.Apply(old)
		if write {
			cl.data[w] = newVal
		}
		c.sys.perform(PerformEvent{
			Core: r.Core, ID: r.ID, Line: cl.tag, Addr: r.Addr, IsWrite: true, IsRead: true,
			Value: old, StoredVal: newVal, DidWrite: write,
		})
		c.sys.complete(r.Core, r.ID, old, c.sys.cfg.L1HitLat)
	default:
		panic("coherence: bindWrite on load")
	}
}

// receive handles a ring delivery at this core's station.
func (c *l1cache) receive(msg interconnect.Message, final bool) {
	switch p := msg.Payload.(type) {
	case *snoopMsg:
		if final {
			return // snoops terminate at the L2 agent, not here
		}
		if p.requester == c.core {
			return // own transaction passing by
		}
		c.sys.observeSnoop(c.core, p.line, p.kind == reqGetM, p.requester)
		data, has, held := c.snooped(p.line, p.kind == reqGetM)
		if has {
			p.ownerData, p.hasOwner = data, true
			c.sys.Stats.CacheToCache++
			c.sys.tel.cacheToCache.Inc(c.core)
		} else if held {
			p.sharerSeen = true
		}
		if c.sys.ClockOf != nil {
			// Fold this core's logical clock into the piggyback hint,
			// AFTER the snoop was observed (a conflict may just have
			// terminated an interval and advanced the clock). The fold
			// is unconditional: a core that read the line, terminated
			// the covering interval and silently evicted the line
			// still constrains the requester (write-after-read), and
			// only its clock carries that constraint.
			if h := c.sys.ClockOf(c.core); h > p.clockHint {
				p.clockHint = h
			}
		}
	case *invMsg:
		if !final {
			return
		}
		c.sys.observeSnoop(c.core, p.line, p.isWrite, p.requester)
		data, has, _ := c.snooped(p.line, p.isWrite)
		var hint uint64
		if c.sys.ClockOf != nil {
			// Unconditional for the same write-after-read reason as in
			// the snoopy path; the directory's (conservatively stale)
			// sharer set is exactly the set of cores that read the
			// line since its last write.
			hint = c.sys.ClockOf(c.core)
		}
		c.sys.ring.Send(interconnect.Message{
			Src:     c.core,
			Dst:     c.sys.cfg.Cores,
			Payload: &ackMsg{line: p.line, from: c.core, hasData: has, data: data, clockHint: hint},
		})
	case *dataMsg:
		if final {
			if c.sys.OnHint != nil {
				c.sys.OnHint(c.core, p.clockHint)
			}
			c.grant(p)
		}
	case *putAckMsg:
		if final {
			if wb := c.wb[p.line]; wb != nil {
				wb.pending--
				if wb.pending <= 0 {
					delete(c.wb, p.line)
				}
			}
		}
	}
}

// snooped applies a remote transaction for line to this cache. It
// returns the line data when this cache (or its writeback buffer) was
// the owner, plus whether the line was held at all.
func (c *l1cache) snooped(line uint64, isWrite bool) (data LineData, hasData, held bool) {
	if cl := c.lookup(line); cl != nil {
		held = true
		if cl.state == stateM {
			data, hasData = cl.data, true
		}
		if isWrite {
			cl.state = stateI
		} else if cl.state != stateS {
			cl.state = stateS
		}
		return data, hasData, held
	}
	if wb := c.wb[line]; wb != nil && !wb.superseded {
		c.sys.Stats.WBBufferSupplies++
		c.sys.tel.wbSupplies.Inc(c.core)
		if isWrite {
			wb.superseded = true
			c.sys.Stats.SupersededWBEvents++
		}
		return wb.data, true, true
	}
	return LineData{}, false, false
}

// grant installs a granted line and binds all coalesced waiters.
func (c *l1cache) grant(p *dataMsg) {
	m := c.mshrs[p.line]
	if m == nil {
		panic(fmt.Sprintf("coherence: core %d grant for line %#x without MSHR", c.core, p.line))
	}

	if m.wantM && p.state == stateS {
		// A store joined a GetS in flight and the grant is only S:
		// complete the load waiters now and upgrade for the rest.
		c.install(p.line, p.data, stateS)
		cl := c.lookup(p.line)
		rest := m.waiters[:0]
		for _, r := range m.waiters {
			if r.Kind == Load {
				c.bindLoad(r, cl)
			} else {
				rest = append(rest, r)
			}
		}
		m.waiters = rest
		m.issued = reqGetM
		c.sys.Stats.Upgrades++
		c.sys.tel.upgrades.Inc(c.core)
		c.request(reqGetM, p.line, LineData{})
		return
	}

	st := p.state
	if m.wantM {
		st = stateM // E grants upgrade silently
	}
	c.install(p.line, p.data, st)
	cl := c.lookup(p.line)
	for _, r := range m.waiters {
		if r.Kind == Load {
			c.bindLoad(r, cl)
		} else {
			c.bindWrite(r, cl)
		}
	}
	delete(c.mshrs, p.line)
}

// install places a line into the cache, evicting as needed.
func (c *l1cache) install(line uint64, data LineData, st lineState) {
	set := c.set(line)
	victim := -1
	for i := range set {
		if set[i].state != stateI && set[i].tag == line {
			victim = i // refresh in place (e.g. S copy being upgraded)
			break
		}
		if set[i].state == stateI {
			victim = i
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
		c.evict(&set[victim])
	}
	set[victim] = cacheLine{tag: line, state: st, data: data}
	c.touch(&set[victim])
}

// evict writes back a dirty victim through the writeback buffer;
// clean victims are dropped silently (MESI allows it).
func (c *l1cache) evict(cl *cacheLine) {
	if cl.state != stateM {
		return
	}
	c.sys.Stats.DirtyEvictions++
	c.sys.tel.dirtyEvicts.Inc(c.core)
	if wb := c.wb[cl.tag]; wb != nil {
		// Re-eviction before the previous PutM was acknowledged:
		// refresh the buffered data and track the extra ack.
		wb.data, wb.superseded = cl.data, false
		wb.pending++
	} else {
		c.wb[cl.tag] = &wbent{line: cl.tag, data: cl.data, pending: 1}
	}
	c.request(reqPutM, cl.tag, cl.data)
	if c.sys.OnDirtyEvict != nil {
		c.sys.OnDirtyEvict(c.core, cl.tag, c.sys.cycle)
	}
}
