package coherence

import (
	"math/rand"
	"testing"
)

// testConfig returns a small, fast configuration.
func testConfig(cores int, p Protocol) Config {
	cfg := DefaultConfig(cores)
	cfg.Protocol = p
	return cfg
}

// harness drives a System and records its events.
type harness struct {
	t           *testing.T
	sys         *System
	performs    []PerformEvent
	completions []Completion
	nextID      []uint64
}

func newHarness(t *testing.T, cfg Config) *harness {
	return &harness{t: t, sys: New(cfg), nextID: make([]uint64, cfg.Cores)}
}

func (h *harness) tick() {
	h.sys.Tick()
	h.performs = append(h.performs, h.sys.DrainPerforms()...)
	h.completions = append(h.completions, h.sys.DrainCompletions()...)
}

// submit retries until the system accepts the request, then returns its id.
func (h *harness) submit(core int, kind Kind, addr, val uint64, apply func(uint64) (uint64, bool)) uint64 {
	id := h.nextID[core]
	h.nextID[core]++
	r := Request{Core: core, ID: id, Addr: addr, Kind: kind, StoreVal: val, Apply: apply}
	for i := 0; ; i++ {
		if h.sys.Submit(r) {
			return id
		}
		if i > 100000 {
			h.t.Fatalf("submit never accepted")
		}
		h.tick()
	}
}

// drain runs until the system is idle.
func (h *harness) drain() {
	for i := 0; i < 1_000_000; i++ {
		h.tick()
		if !h.sys.Busy() {
			return
		}
	}
	h.t.Fatalf("system never quiesced")
}

// completionOf returns the completion for (core, id), fataling if missing.
func (h *harness) completionOf(core int, id uint64) Completion {
	for _, c := range h.completions {
		if c.Core == core && c.ID == id {
			return c
		}
	}
	h.t.Fatalf("no completion for core %d id %d", core, id)
	return Completion{}
}

func (h *harness) performOf(core int, id uint64) PerformEvent {
	for _, p := range h.performs {
		if p.Core == core && p.ID == id {
			return p
		}
	}
	h.t.Fatalf("no perform event for core %d id %d", core, id)
	return PerformEvent{}
}

func protocols() map[string]Protocol {
	return map[string]Protocol{"snoopy": Snoopy, "directory": Directory}
}

func TestLoadMissThenHit(t *testing.T) {
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, testConfig(2, p))
			h.sys.InitWord(0x100, 42)
			id := h.submit(0, Load, 0x100, 0, nil)
			h.drain()
			if got := h.completionOf(0, id).Value; got != 42 {
				t.Fatalf("miss load = %d, want 42", got)
			}
			missCycle := h.completionOf(0, id).Cycle
			if missCycle < 10 {
				t.Fatalf("miss completed suspiciously fast: cycle %d", missCycle)
			}
			// Second load: L1 hit, completes in exactly hit latency.
			start := h.sys.Cycle()
			id2 := h.submit(0, Load, 0x100, 0, nil)
			h.drain()
			c2 := h.completionOf(0, id2)
			if c2.Value != 42 {
				t.Fatalf("hit load = %d", c2.Value)
			}
			if lat := c2.Cycle - start; lat != h.sys.Config().L1HitLat {
				t.Fatalf("hit latency = %d, want %d", lat, h.sys.Config().L1HitLat)
			}
			if h.sys.Stats.L1Hits != 1 || h.sys.Stats.L1Misses != 1 {
				t.Fatalf("stats = %+v", h.sys.Stats)
			}
		})
	}
}

func TestStoreVisibleToOtherCore(t *testing.T) {
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, testConfig(4, p))
			h.submit(0, Store, 0x200, 7, nil)
			h.drain()
			id := h.submit(3, Load, 0x200, 0, nil)
			h.drain()
			if got := h.completionOf(3, id).Value; got != 7 {
				t.Fatalf("remote load = %d, want 7 (%s)", got, name)
			}
			if p == Snoopy && h.sys.Stats.CacheToCache == 0 {
				t.Fatalf("expected cache-to-cache supply from M owner")
			}
		})
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, testConfig(3, p))
			// Both 1 and 2 read the line (S copies).
			h.submit(1, Load, 0x300, 0, nil)
			h.submit(2, Load, 0x300, 0, nil)
			h.drain()
			// 0 writes.
			h.submit(0, Store, 0x300, 99, nil)
			h.drain()
			// Both re-read; must see 99.
			a := h.submit(1, Load, 0x300, 0, nil)
			h.drain()
			b := h.submit(2, Load, 0x300, 0, nil)
			h.drain()
			if h.completionOf(1, a).Value != 99 || h.completionOf(2, b).Value != 99 {
				t.Fatalf("stale value after invalidation (%s)", name)
			}
		})
	}
}

func TestExclusiveGrantSilentUpgrade(t *testing.T) {
	h := newHarness(t, testConfig(2, Snoopy))
	h.submit(0, Load, 0x400, 0, nil) // sole reader -> E
	h.drain()
	tx := h.sys.Stats.Transactions
	// Store to the same line must hit locally (silent E->M).
	id := h.submit(0, Store, 0x400, 5, nil)
	h.drain()
	if h.sys.Stats.Transactions != tx {
		t.Fatalf("E->M upgrade should be silent; transactions %d -> %d", tx, h.sys.Stats.Transactions)
	}
	if got := h.sys.PeekWord(0x400); got != 5 {
		t.Fatalf("PeekWord = %d", got)
	}
	_ = id
}

func TestSharedStoreUpgrades(t *testing.T) {
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, testConfig(2, p))
			h.submit(0, Load, 0x500, 0, nil)
			h.submit(1, Load, 0x500, 0, nil)
			h.drain() // both S (one may be E then downgraded)
			h.submit(0, Store, 0x500, 11, nil)
			h.drain()
			id := h.submit(1, Load, 0x500, 0, nil)
			h.drain()
			if got := h.completionOf(1, id).Value; got != 11 {
				t.Fatalf("load after upgrade = %d", got)
			}
		})
	}
}

func TestRMWAtomicIncrements(t *testing.T) {
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			const cores, per = 4, 25
			h := newHarness(t, testConfig(cores, p))
			inc := func(old uint64) (uint64, bool) { return old + 1, true }
			done := make([]int, cores)
			for !allDone(done, per) {
				for c := 0; c < cores; c++ {
					if done[c] < per {
						h.sys.Submit(Request{Core: c, ID: uint64(done[c]), Addr: 0x600, Kind: RMW, Apply: inc})
						done[c]++
					}
				}
				h.tick()
			}
			h.drain()
			if got := h.sys.PeekWord(0x600); got != cores*per {
				t.Fatalf("counter = %d, want %d (%s)", got, cores*per, name)
			}
		})
	}
}

func allDone(done []int, per int) bool {
	for _, d := range done {
		if d < per {
			return false
		}
	}
	return true
}

func TestCASFailureDoesNotWrite(t *testing.T) {
	h := newHarness(t, testConfig(1, Snoopy))
	h.sys.InitWord(0x700, 10)
	id := h.submit(0, RMW, 0x700, 0, func(old uint64) (uint64, bool) { return 99, old == 11 })
	h.drain()
	if got := h.completionOf(0, id).Value; got != 10 {
		t.Fatalf("CAS old = %d", got)
	}
	if got := h.sys.PeekWord(0x700); got != 10 {
		t.Fatalf("failed CAS wrote memory: %d", got)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := testConfig(2, Snoopy)
	cfg.L1Sets = 2 // tiny cache to force evictions
	cfg.L1Ways = 2
	h := newHarness(t, testConfig(2, Snoopy))
	h.sys = New(cfg)
	h.nextID = make([]uint64, cfg.Cores)
	// Write many distinct lines mapping to few sets.
	for i := 0; i < 16; i++ {
		h.submit(0, Store, uint64(i)*LineSize, uint64(i+1), nil)
		h.drain()
	}
	if h.sys.Stats.DirtyEvictions == 0 {
		t.Fatalf("expected dirty evictions")
	}
	// All values must survive eviction: read them back from core 1.
	for i := 0; i < 16; i++ {
		id := h.submit(1, Load, uint64(i)*LineSize, 0, nil)
		h.drain()
		if got := h.completionOf(1, id).Value; got != uint64(i+1) {
			t.Fatalf("line %d lost on eviction: %d", i, got)
		}
	}
}

func TestSnoopObserverSnoopySeesAllTraffic(t *testing.T) {
	h := newHarness(t, testConfig(4, Snoopy))
	type obs struct {
		core  int
		line  uint64
		write bool
	}
	var seen []obs
	h.sys.OnRemoteSnoop = func(core int, line uint64, w bool, _ int, _ uint64) {
		seen = append(seen, obs{core, line, w})
	}
	h.submit(0, Store, 0x800, 1, nil)
	h.drain()
	// Cores 1..3 must all have observed the GetM; core 0 must not.
	got := map[int]bool{}
	for _, o := range seen {
		if o.core == 0 {
			t.Fatalf("requester observed its own snoop")
		}
		if o.line != LineOf(0x800) || !o.write {
			t.Fatalf("bad observation %+v", o)
		}
		got[o.core] = true
	}
	for c := 1; c < 4; c++ {
		if !got[c] {
			t.Fatalf("core %d missed the snoop", c)
		}
	}
}

func TestSnoopObserverDirectoryTargetedOnly(t *testing.T) {
	h := newHarness(t, testConfig(4, Directory))
	var observers []int
	h.sys.OnRemoteSnoop = func(core int, _ uint64, _ bool, _ int, _ uint64) {
		observers = append(observers, core)
	}
	// Core 2 caches the line; core 0 writes it. Only core 2 should observe.
	h.submit(2, Load, 0x900, 0, nil)
	h.drain()
	observers = nil
	h.submit(0, Store, 0x900, 1, nil)
	h.drain()
	if len(observers) != 1 || observers[0] != 2 {
		t.Fatalf("observers = %v, want [2]", observers)
	}
}

func TestDirtyEvictCallback(t *testing.T) {
	cfg := testConfig(1, Snoopy)
	cfg.L1Sets, cfg.L1Ways = 1, 1
	h := newHarness(t, cfg)
	h.sys = New(cfg)
	h.nextID = make([]uint64, 1)
	var evicted []uint64
	h.sys.OnDirtyEvict = func(_ int, line uint64, _ uint64) { evicted = append(evicted, line) }
	h.submit(0, Store, 0, 1, nil)
	h.drain()
	h.submit(0, Store, LineSize, 2, nil) // conflicts in the 1-entry cache
	h.drain()
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestPerformPrecedesCompletion(t *testing.T) {
	h := newHarness(t, testConfig(2, Snoopy))
	id := h.submit(0, Load, 0xA00, 0, nil)
	h.drain()
	p, c := h.performOf(0, id), h.completionOf(0, id)
	if p.Cycle > c.Cycle {
		t.Fatalf("perform (%d) after completion (%d)", p.Cycle, c.Cycle)
	}
	if !p.IsRead || p.IsWrite {
		t.Fatalf("bad perform flags %+v", p)
	}
}

func TestFinalMemoryMergesOwnedLines(t *testing.T) {
	h := newHarness(t, testConfig(2, Snoopy))
	h.submit(0, Store, 0xB00, 123, nil)
	h.submit(1, Store, 0xB40, 456, nil)
	h.drain()
	mem := h.sys.FinalMemory()
	if mem[0xB00] != 123 || mem[0xB40] != 456 {
		t.Fatalf("FinalMemory = %v", mem)
	}
}

func TestMSHRBackpressure(t *testing.T) {
	cfg := testConfig(1, Snoopy)
	cfg.L1MSHRs = 2
	h := newHarness(t, cfg)
	ok := 0
	for i := 0; i < 4; i++ {
		if h.sys.Submit(Request{Core: 0, ID: uint64(i), Addr: uint64(i) * LineSize, Kind: Load}) {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("accepted %d, want 2 (MSHR limit)", ok)
	}
	if h.sys.Stats.MSHRRejects != 2 {
		t.Fatalf("rejects = %d", h.sys.Stats.MSHRRejects)
	}
	h.drain()
}

func TestUnalignedAccessPanics(t *testing.T) {
	h := newHarness(t, testConfig(1, Snoopy))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.sys.Submit(Request{Core: 0, Addr: 3, Kind: Load})
}

// TestPerLocationSerialization is the write-atomicity oracle: with
// random traffic from several cores to a handful of words, every load
// observes the most recent performed store to its word (per perform
// order), and stores to a word form a single total order.
func TestPerLocationSerialization(t *testing.T) {
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			const cores = 4
			h := newHarness(t, testConfig(cores, p))
			rng := rand.New(rand.NewSource(1234))
			addrs := []uint64{0x40, 0x48, 0x80, 0x1000}
			type op struct {
				id    uint64
				kind  Kind
				addr  uint64
				value uint64
			}
			pendingPerCore := make([]int, cores)
			ops := make(map[[2]uint64]op) // (core,id) -> op
			var issued int
			nextVal := uint64(1)
			for issued < 400 {
				for c := 0; c < cores; c++ {
					if pendingPerCore[c] >= 4 || rng.Intn(3) != 0 {
						continue
					}
					o := op{
						id:   h.nextID[c],
						addr: addrs[rng.Intn(len(addrs))],
					}
					if rng.Intn(2) == 0 {
						o.kind = Store
						o.value = nextVal
						nextVal++
					}
					r := Request{Core: c, ID: o.id, Addr: o.addr, Kind: o.kind, StoreVal: o.value}
					if h.sys.Submit(r) {
						h.nextID[c]++
						ops[[2]uint64{uint64(c), o.id}] = o
						issued++
					}
				}
				h.tick()
			}
			h.drain()

			// Replay the perform events in (cycle, arrival) order per
			// word and check that load values match the last store.
			last := map[uint64]uint64{} // word addr -> value
			for _, ev := range h.performs {
				o := ops[[2]uint64{uint64(ev.Core), ev.ID}]
				if o.kind == Store {
					last[o.addr] = o.value
					continue
				}
				if ev.Value != last[o.addr] {
					t.Fatalf("load of %#x saw %d, want %d (perform order violated)",
						o.addr, ev.Value, last[o.addr])
				}
			}
		})
	}
}

// TestDeterminism: identical request schedules produce identical
// perform event streams.
func TestDeterminism(t *testing.T) {
	run := func() []PerformEvent {
		h := newHarness(t, testConfig(4, Snoopy))
		for i := 0; i < 50; i++ {
			c := i % 4
			kind := Load
			if i%3 == 0 {
				kind = Store
			}
			h.sys.Submit(Request{Core: c, ID: uint64(i), Addr: uint64(i%7) * 8, Kind: kind, StoreVal: uint64(i)})
			h.tick()
		}
		h.drain()
		return h.performs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestL2ResidencyLatency(t *testing.T) {
	cfg := testConfig(1, Snoopy)
	cfg.L2Capacity = 1
	h := newHarness(t, cfg)
	h.sys = New(cfg)
	h.nextID = make([]uint64, 1)
	h.submit(0, Load, 0, 0, nil)
	h.drain()
	first := h.sys.Stats.L2Misses
	if first == 0 {
		t.Fatal("first touch should miss in L2")
	}
	// A different line evicts residency; re-touching the first line
	// must pay the memory latency again.
	h.submit(0, Load, LineSize, 0, nil)
	h.drain()
	h.submit(0, Load, 4096*LineSize, 0, nil) // far line, avoid L1 set reuse
	h.drain()
	if h.sys.Stats.L2Misses <= first {
		t.Fatal("expected more L2 misses after capacity eviction")
	}
}

func TestWritebackRaceSupersede(t *testing.T) {
	// Force a dirty eviction to race with a remote GetM: the evicting
	// core's writeback buffer must supply data exactly once and the
	// stale PutM must be dropped at the L2.
	cfg := testConfig(2, Snoopy)
	cfg.L1Sets, cfg.L1Ways = 1, 1
	h := newHarness(t, cfg)
	h.sys = New(cfg)
	h.nextID = make([]uint64, cfg.Cores)

	// Core 0 dirties line A, then dirties conflicting line B to evict A.
	h.submit(0, Store, 0, 7, nil)
	h.drain()
	a := h.sys.Submit(Request{Core: 0, ID: 90, Addr: LineSize, Kind: Store, StoreVal: 9})
	if !a {
		t.Fatal("submit rejected")
	}
	// Immediately have core 1 write line A while the PutM is in flight.
	b := h.sys.Submit(Request{Core: 1, ID: 91, Addr: 0, Kind: Store, StoreVal: 11})
	if !b {
		t.Fatal("submit rejected")
	}
	h.drain()
	if got := h.sys.PeekWord(0); got != 11 {
		t.Fatalf("line A = %d, want 11 (core 1's write must win)", got)
	}
	if got := h.sys.PeekWord(LineSize); got != 9 {
		t.Fatalf("line B = %d", got)
	}
	// Read everything back from core 1 to flush states.
	id := h.submit(1, Load, LineSize, 0, nil)
	h.drain()
	if h.completionOf(1, id).Value != 9 {
		t.Fatal("line B lost")
	}
}

func TestDirectoryStaleSharerAck(t *testing.T) {
	// A silently-evicted sharer must still ack invalidations.
	cfg := testConfig(2, Directory)
	cfg.L1Sets, cfg.L1Ways = 1, 1
	h := newHarness(t, cfg)
	h.sys = New(cfg)
	h.nextID = make([]uint64, cfg.Cores)

	// Core 1 reads line A (registered as sharer), then reads
	// conflicting line B, silently evicting A.
	h.submit(1, Load, 0, 0, nil)
	h.drain()
	h.submit(1, Load, LineSize, 0, nil)
	h.drain()
	// Core 0 writes line A: the directory still invalidates core 1,
	// which must ack without data. The transaction must complete.
	h.submit(0, Store, 0, 5, nil)
	h.drain()
	if got := h.sys.PeekWord(0); got != 5 {
		t.Fatalf("write never completed: %d", got)
	}
	if h.sys.Stats.InvalidationsSent == 0 {
		t.Fatal("expected an invalidation to the stale sharer")
	}
}

func TestDirectoryOwnerDowngradeOnRead(t *testing.T) {
	h := newHarness(t, testConfig(2, Directory))
	h.submit(0, Store, 0x40, 3, nil) // core 0 owns M
	h.drain()
	id := h.submit(1, Load, 0x40, 0, nil) // fetch + downgrade
	h.drain()
	if h.completionOf(1, id).Value != 3 {
		t.Fatal("downgrade lost the dirty data")
	}
	// Core 0 can still read its (now S) copy locally.
	tx := h.sys.Stats.Transactions
	id2 := h.submit(0, Load, 0x40, 0, nil)
	h.drain()
	if h.completionOf(0, id2).Value != 3 || h.sys.Stats.Transactions != tx {
		t.Fatal("S copy not retained after downgrade")
	}
}

func TestUpgradeRaceLosesCopy(t *testing.T) {
	// Both cores hold S and both upgrade: one wins, the other's
	// upgrade becomes a full miss and must still complete with the
	// winner's data visible in the per-location order.
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, testConfig(2, p))
			h.submit(0, Load, 0x80, 0, nil)
			h.submit(1, Load, 0x80, 0, nil)
			h.drain()
			// Simultaneous upgrades.
			h.sys.Submit(Request{Core: 0, ID: 50, Addr: 0x80, Kind: Store, StoreVal: 1})
			h.sys.Submit(Request{Core: 1, ID: 51, Addr: 0x80, Kind: Store, StoreVal: 2})
			h.drain()
			got := h.sys.PeekWord(0x80)
			if got != 1 && got != 2 {
				t.Fatalf("final = %d", got)
			}
			// Whoever performed last owns the final value; perform
			// events must reflect a total order.
			var order []uint64
			for _, ev := range h.performs {
				if ev.IsWrite && ev.Line == LineOf(0x80) {
					order = append(order, ev.Value)
				}
			}
			if len(order) != 2 || order[1] != got {
				t.Fatalf("perform order %v vs final %d", order, got)
			}
		})
	}
}

func TestRMWCoalescedBehindLoadMiss(t *testing.T) {
	// An RMW submitted while a GetS for the same line is in flight
	// must coalesce, upgrade, and still apply atomically.
	h := newHarness(t, testConfig(2, Snoopy))
	h.sys.InitWord(0x40, 10)
	h.sys.Submit(Request{Core: 0, ID: 1, Addr: 0x40, Kind: Load})
	h.sys.Submit(Request{Core: 0, ID: 2, Addr: 0x40, Kind: RMW,
		Apply: func(old uint64) (uint64, bool) { return old + 5, true }})
	h.drain()
	if got := h.sys.PeekWord(0x40); got != 15 {
		t.Fatalf("RMW lost: %d", got)
	}
	if h.completionOf(0, 1).Value != 10 {
		t.Fatal("load observed post-RMW value despite being older in submit order")
	}
}
