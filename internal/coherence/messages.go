package coherence

// Ring message payloads. Payloads are pointers so that circulating
// snoop messages can accumulate state (owner data, sharer sightings)
// as they pass each node.

type reqKind uint8

const (
	reqGetS reqKind = iota // read miss
	reqGetM                // write miss / upgrade
	reqPutM                // dirty writeback
)

func (k reqKind) String() string {
	switch k {
	case reqGetS:
		return "GetS"
	case reqGetM:
		return "GetM"
	default:
		return "PutM"
	}
}

// reqMsg travels core -> L2 agent and is the unit the L2 serializes.
type reqMsg struct {
	kind reqKind
	line uint64
	core int
	data LineData // PutM payload
}

// snoopMsg circulates the full ring in snoopy mode (Visit message,
// origin = L2 agent). Caches snoop it as it passes and may attach the
// owned line data.
type snoopMsg struct {
	kind      reqKind // reqGetS or reqGetM
	line      uint64
	requester int

	ownerData  LineData
	hasOwner   bool
	sharerSeen bool   // some non-requester cache held the line
	clockHint  uint64 // max logical clock of holders passed (piggyback)
}

// lineState is the MESI grant carried by dataMsg.
type lineState uint8

const (
	stateI lineState = iota
	stateS
	stateE
	stateM
)

func (s lineState) String() string {
	return [...]string{"I", "S", "E", "M"}[s]
}

// dataMsg travels L2 agent -> requester and completes a transaction.
type dataMsg struct {
	line      uint64
	data      LineData
	state     lineState
	clockHint uint64 // piggybacked ordering hint (see System.OnHint)
}

// invMsg travels L2 home -> sharer/owner in directory mode. isWrite
// distinguishes an invalidation (GetM) from a downgrade (GetS).
type invMsg struct {
	line      uint64
	requester int
	isWrite   bool
}

// ackMsg travels target -> L2 home in directory mode, optionally
// carrying the owned data.
type ackMsg struct {
	line      uint64
	from      int
	hasData   bool
	data      LineData
	clockHint uint64
}

// putAckMsg travels L2 agent -> evicting core and frees the writeback
// buffer entry.
type putAckMsg struct {
	line uint64
}
