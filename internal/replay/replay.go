// Package replay implements deterministic replay of a RelaxReplay log
// (paper §3.5). It plays the role of the paper's OS module: it
// enforces the recorded total order of intervals, executes
// InorderBlock runs "natively" (here: with the functional ISA
// interpreter), injects recorded values for reordered loads, applies
// patched reordered stores, skips dummy entries, and injects the
// recorded input log — with only an instruction-count interrupt as
// assumed hardware support.
//
// The replayer is oblivious to whether the log came from
// RelaxReplay_Base or RelaxReplay_Opt; both use the same format.
//
//rrlint:deterministic
package replay

import (
	"errors"
	"fmt"
	"sort"

	"relaxreplay/internal/isa"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/telemetry"
)

// Config holds the replay timing model (see DESIGN.md: the paper
// replays on native hardware; we replay functionally and model the
// time). All costs are in recorded-machine cycles.
type Config struct {
	// IntervalSwitchCycles models the condition-variable handoff and
	// log-read work per interval.
	IntervalSwitchCycles uint64
	// BlockInterruptCycles models programming the instruction counter
	// and taking the end-of-block synchronous interrupt (plus the
	// pipeline flush it causes).
	BlockInterruptCycles uint64
	// EntryEmulationCycles models OS emulation of one reordered
	// load/store/dummy entry.
	EntryEmulationCycles uint64
	// UserCPIFactor scales the recorded per-core CPI for native replay
	// user time (replay has no inter-core contention).
	UserCPIFactor float64

	// Telemetry, when non-nil, receives the replayer's counters and
	// per-interval trace events on the modeled replay clock (metric
	// names under "replay.", trace pid telemetry.PidReplay). It
	// observes only: replay outcomes are identical with or without it.
	Telemetry *telemetry.Telemetry

	// AllowPartial switches on graceful degradation: a core that
	// diverges from its recorded stream (typically because the log lost
	// intervals to corruption) is abandoned at that interval and
	// recorded in Result.Degradations, instead of failing the whole
	// replay with ErrDiverged. The remaining cores replay as far as
	// their streams allow.
	AllowPartial bool

	// WatchdogSteps bounds total replay work (instructions executed
	// plus entries emulated). 0 means an automatic budget derived from
	// the log's own instruction count. When exceeded, Run returns
	// *ErrStalled with a StallReport instead of looping forever on a
	// log whose lengths lie.
	WatchdogSteps uint64
}

// DefaultConfig returns the calibrated timing model. The absolute
// per-entry OS costs are scaled to this reproduction's interval
// granularity (our intervals hold tens-to-hundreds of instructions
// where the paper's hold thousands; see EXPERIMENTS.md), preserving
// the paper's replay-time shape: Opt faster than Base, INF faster
// than 4K, OS time a third to a sixth of replay for Opt logs.
func DefaultConfig() Config {
	return Config{
		IntervalSwitchCycles: 40,
		BlockInterruptCycles: 30,
		EntryEmulationCycles: 20,
		UserCPIFactor:        0.7,
	}
}

// Timing summarizes modeled replay time (paper Figure 13's
// User/OS breakdown).
type Timing struct {
	UserCycles uint64
	OSCycles   uint64
}

// Total returns the modeled sequential replay time.
func (t Timing) Total() uint64 { return t.UserCycles + t.OSCycles }

// Result is the outcome of a replay run.
type Result struct {
	FinalMemory map[uint64]uint64
	FinalRegs   [][isa.NumRegs]uint64
	Instret     []uint64
	Intervals   int
	Timing      Timing

	// Degradations lists the cores abandoned mid-replay (only under
	// Config.AllowPartial). Empty means a full-fidelity replay.
	Degradations []Degradation
}

// Degraded reports whether any core was abandoned before completing
// its recorded stream.
func (r *Result) Degraded() bool { return len(r.Degradations) > 0 }

// replTelem holds the replayer's pre-resolved telemetry handles. The
// zero value (all nil) is the disabled state: every call is a no-op.
type replTelem struct {
	intervals     *telemetry.Counter
	blocks        *telemetry.Counter
	injectedLoads *telemetry.Counter
	dummies       *telemetry.Counter
	patchedStores *telemetry.Counter
	instrs        *telemetry.Counter
	degraded      *telemetry.Counter

	tracer   *telemetry.Tracer // nil unless tracing is on
	progress []string          // per-core counter track names
	done     []uint64          // intervals replayed per core
}

// newReplTelem resolves the replay-layer metric handles once at
// construction.
func newReplTelem(t *telemetry.Telemetry, cores int) replTelem {
	reg := t.Registry()
	if reg == nil {
		return replTelem{}
	}
	rt := replTelem{
		intervals:     reg.Counter("replay.intervals"),
		blocks:        reg.Counter("replay.blocks"),
		injectedLoads: reg.Counter("replay.injected_loads"),
		dummies:       reg.Counter("replay.dummies"),
		patchedStores: reg.Counter("replay.patched_stores"),
		instrs:        reg.Counter("replay.instrs"),
		degraded:      reg.Counter("replay.degraded"),
	}
	if tr := t.Tracer(); tr != nil && tr.Enabled() {
		rt.tracer = tr
		rt.done = make([]uint64, cores)
		tr.NameProcess(telemetry.PidReplay, "replayer")
		for c := 0; c < cores; c++ {
			rt.progress = append(rt.progress, fmt.Sprintf("replayed[c%d]", c))
			tr.NameThread(telemetry.PidReplay, c, fmt.Sprintf("core %d", c))
		}
	}
	return rt
}

// Replayer replays one patched log.
type Replayer struct {
	cfg     Config
	log     *replaylog.Log
	progs   []isa.Program
	threads []*isa.Thread
	mem     *isa.FlatMemory
	// cpi is the recorded cycles-per-instruction per core, used by the
	// timing model for native user time.
	cpi []float64

	// Watchdog state: steps counts instructions executed plus entries
	// emulated; exceeding budget aborts with *ErrStalled.
	steps  uint64
	budget uint64

	tel replTelem
}

// New builds a replayer for a patched log. progs must be the recorded
// programs (replay re-executes the same binaries); initMem the same
// initial memory; cpi the recorded per-core CPI (nil for a default of
// 1.0).
func New(cfg Config, log *replaylog.Log, progs []isa.Program, initMem map[uint64]uint64, cpi []float64) (*Replayer, error) {
	if !log.Patched {
		return nil, fmt.Errorf("replay: log must be patched first (replaylog.Log.Patch)")
	}
	if err := log.Validate(); err != nil {
		return nil, fmt.Errorf("replay: invalid log: %w", err)
	}
	if len(progs) != log.Cores {
		return nil, fmt.Errorf("replay: %d programs for %d cores", len(progs), log.Cores)
	}
	r := &Replayer{
		cfg: cfg, log: log, progs: progs, mem: isa.NewFlatMemory(),
		tel: newReplTelem(cfg.Telemetry, log.Cores),
	}
	for a, v := range initMem {
		r.mem.Store(a, v)
	}
	for c := 0; c < log.Cores; c++ {
		th := &isa.Thread{Prog: progs[c]}
		th.SetReg(isa.Reg(1), uint64(c))         // machine.RegCoreID convention
		th.SetReg(isa.Reg(2), uint64(log.Cores)) // machine.RegNumCores convention
		if c < len(log.Inputs) {
			th.Inputs = log.Inputs[c]
		}
		r.threads = append(r.threads, th)
		f := 1.0
		if cpi != nil {
			f = cpi[c]
		}
		r.cpi = append(r.cpi, f)
	}
	return r, nil
}

// intervalRef orders intervals across cores.
type intervalRef struct {
	core int
	idx  int
	ts   uint64
}

// errStall is the internal signal that the step budget ran out inside
// an interval; Run converts it into *ErrStalled with a full report.
var errStall = fmt.Errorf("step budget exhausted")

// watchdogBudget derives the automatic step budget: generous slack
// over the work a truthful log demands, so only a lying log (or a
// genuine scheduler bug) can exhaust it.
func watchdogBudget(l *replaylog.Log) uint64 {
	work := l.Instructions()
	for _, s := range l.Streams {
		for i := range s.Intervals {
			work += uint64(len(s.Intervals[i].Entries))
		}
	}
	return 16*work + 4096
}

// Run replays the log sequentially in the recorded total order.
//
// Failure modes are typed: *ErrDiverged when execution stops matching
// the log (suppressed per-core into Result.Degradations under
// Config.AllowPartial), *ErrStalled when the watchdog step budget runs
// out. A degraded run still returns a Result — final state is then
// only authoritative for the cores that completed.
func (r *Replayer) Run() (*Result, error) {
	var order []intervalRef
	for _, s := range r.log.Streams {
		for i := range s.Intervals {
			order = append(order, intervalRef{core: s.Core, idx: i, ts: s.Intervals[i].Timestamp})
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].ts != order[j].ts {
			return order[i].ts < order[j].ts
		}
		if order[i].core != order[j].core {
			return order[i].core < order[j].core
		}
		return order[i].idx < order[j].idx
	})

	r.steps = 0
	r.budget = r.cfg.WatchdogSteps
	if r.budget == 0 {
		r.budget = watchdogBudget(r.log)
	}
	done := make([]int, r.log.Cores)
	abandoned := make([]bool, r.log.Cores)

	res := &Result{Intervals: len(order)}
	var userCycles float64
	for _, ref := range order {
		if ref.core < len(abandoned) && abandoned[ref.core] {
			continue
		}
		iv := &r.log.Streams[ref.core].Intervals[ref.idx]
		// The modeled replay clock (cumulative OS+user cycles) is the
		// timeline the trace events are placed on.
		start := res.Timing.OSCycles + uint64(userCycles)
		res.Timing.OSCycles += r.cfg.IntervalSwitchCycles
		if err := r.replayInterval(ref.core, iv, res, &userCycles); err != nil {
			if errors.Is(err, errStall) {
				return nil, &ErrStalled{Report: r.stallReport(ref, iv, done)}
			}
			if r.cfg.AllowPartial {
				abandoned[ref.core] = true
				res.Degradations = append(res.Degradations,
					Degradation{Core: ref.core, Interval: ref.idx, Seq: iv.Seq, Cause: err})
				r.tel.degraded.Inc(ref.core)
				continue
			}
			return nil, &ErrDiverged{Core: ref.core, Interval: ref.idx, Seq: iv.Seq, Cause: err}
		}
		if ref.core < len(done) {
			done[ref.core]++
		}
		r.tel.intervals.Inc(ref.core)
		if tr := r.tel.tracer; tr != nil {
			end := res.Timing.OSCycles + uint64(userCycles)
			tr.Complete(telemetry.PidReplay, ref.core, "replay", "interval", start, end,
				map[string]any{"cisn": iv.CISN, "ts": iv.Timestamp, "entries": len(iv.Entries)})
			r.tel.done[ref.core]++
			tr.Counter(telemetry.PidReplay, ref.core, "replay", r.tel.progress[ref.core], end, r.tel.done[ref.core])
		}
	}
	res.Timing.UserCycles = uint64(userCycles)

	for c, th := range r.threads {
		if !th.Halted && !(c < len(abandoned) && abandoned[c]) {
			cause := fmt.Errorf("did not reach HALT (pc=%d)", th.PC)
			if !r.cfg.AllowPartial {
				return nil, &ErrDiverged{Core: c, Interval: -1, Cause: cause}
			}
			res.Degradations = append(res.Degradations, Degradation{Core: c, Interval: -1, Cause: cause})
			r.tel.degraded.Inc(c)
		}
		res.FinalRegs = append(res.FinalRegs, th.Regs)
		res.Instret = append(res.Instret, th.Instret)
	}
	res.FinalMemory = r.mem.Snapshot()
	return res, nil
}

// stallReport captures where every core was when the watchdog fired,
// including a telemetry snapshot when a registry is attached.
func (r *Replayer) stallReport(ref intervalRef, iv *replaylog.Interval, done []int) *StallReport {
	rep := &StallReport{
		Steps:    r.steps,
		Budget:   r.budget,
		Core:     ref.core,
		Interval: ref.idx,
		Seq:      iv.Seq,
		Done:     done,
	}
	for _, th := range r.threads {
		rep.Halted = append(rep.Halted, th.Halted)
	}
	if reg := r.cfg.Telemetry.Registry(); reg != nil {
		rep.Metrics = reg.Snapshot()
	}
	return rep
}

func (r *Replayer) replayInterval(core int, iv *replaylog.Interval, res *Result, userCycles *float64) error {
	th := r.threads[core]
	for _, e := range iv.Entries {
		if e.Type != replaylog.InorderBlock {
			if r.steps++; r.steps > r.budget {
				return errStall
			}
		}
		switch e.Type {
		case replaylog.InorderBlock:
			// The OS programs the instruction counter and runs the
			// block natively until the synchronous interrupt.
			res.Timing.OSCycles += r.cfg.BlockInterruptCycles
			*userCycles += float64(e.Size) * r.cpi[core] * r.cfg.UserCPIFactor
			r.tel.blocks.Inc(core)
			r.tel.instrs.Add(core, uint64(e.Size))
			for i := uint32(0); i < e.Size; i++ {
				if r.steps++; r.steps > r.budget {
					return errStall
				}
				if th.Halted {
					return mismatch(
						fmt.Sprintf("%d more in-order instruction(s) in this block", e.Size-i),
						"program already at HALT",
						"block overruns HALT after %d of %d instructions", i, e.Size)
				}
				if err := th.Step(r.mem); err != nil {
					return err
				}
			}
		case replaylog.ReorderedLoad:
			// Inject the recorded value into the destination register
			// of the load (or atomic) and advance the PC.
			res.Timing.OSCycles += r.cfg.EntryEmulationCycles
			ins, err := r.instrAt(th)
			if err != nil {
				return err
			}
			if !ins.IsLoad() {
				return mismatch(
					"a load instruction (ReorderedLoad value injection)",
					fmt.Sprintf("%v", ins),
					"ReorderedLoad entry at non-load instruction %v", ins)
			}
			th.SetReg(ins.Rd, e.Value)
			th.PC++
			th.Instret++
			r.tel.injectedLoads.Inc(core)
		case replaylog.Dummy:
			// The store already executed in its perform interval.
			res.Timing.OSCycles += r.cfg.EntryEmulationCycles
			ins, err := r.instrAt(th)
			if err != nil {
				return err
			}
			if !ins.IsStore() {
				return mismatch(
					"a store instruction (performed earlier; skipped here)",
					fmt.Sprintf("%v", ins),
					"Dummy entry at non-store instruction %v", ins)
			}
			th.PC++
			th.Instret++
			r.tel.dummies.Inc(core)
		case replaylog.PatchedStore:
			// Performed here during recording; apply without touching
			// the program counter.
			res.Timing.OSCycles += r.cfg.EntryEmulationCycles
			r.mem.Store(e.Addr, e.Value)
			r.tel.patchedStores.Inc(core)
		default:
			return mismatch(
				"a patched-log entry (block, reordered load, dummy, patched store)",
				fmt.Sprintf("%v entry", e.Type),
				"unexpected entry type %v in patched log", e.Type)
		}
	}
	return nil
}

func (r *Replayer) instrAt(th *isa.Thread) (isa.Instr, error) {
	if th.Halted {
		return isa.Instr{}, fmt.Errorf("entry after HALT")
	}
	if th.PC < 0 || th.PC >= len(th.Prog.Code) {
		return isa.Instr{}, fmt.Errorf("PC %d out of range", th.PC)
	}
	return th.Prog.Code[th.PC], nil
}
