package replay

import (
	"errors"
	"testing"

	"relaxreplay/internal/isa"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/telemetry"
)

// twoCoreLog: core 0 replays cleanly; core 1's stream lies about its
// block length (as if later intervals were lost and a patched store
// never arrived), so core 1 diverges.
func twoCoreLog() *replaylog.Log {
	return &replaylog.Log{
		Cores:   2,
		Patched: true,
		Inputs:  make([][]uint64, 2),
		Streams: []replaylog.CoreLog{
			{Core: 0, Intervals: []replaylog.Interval{
				{Seq: 0, Timestamp: 10, Entries: []replaylog.Entry{{Type: replaylog.InorderBlock, Size: 6}}},
			}},
			{Core: 1, Intervals: []replaylog.Interval{
				{Seq: 0, Timestamp: 20, Entries: []replaylog.Entry{{Type: replaylog.InorderBlock, Size: 99}}},
			}},
		},
	}
}

func TestStrictReplayReturnsTypedDivergence(t *testing.T) {
	r, err := New(DefaultConfig(), twoCoreLog(), []isa.Program{prog(), prog()}, map[uint64]uint64{0x100: 42}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run()
	var div *ErrDiverged
	if !errors.As(err, &div) {
		t.Fatalf("err = %v (%T), want *ErrDiverged", err, err)
	}
	if div.Core != 1 || div.Interval != 0 || div.Seq != 0 {
		t.Fatalf("divergence at core %d interval %d seq %d, want core 1 interval 0 seq 0", div.Core, div.Interval, div.Seq)
	}
}

func TestPartialReplayDegradesDivergedCore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AllowPartial = true
	tel := telemetry.New(telemetry.Options{Shards: 2})
	cfg.Telemetry = tel
	r, err := New(cfg, twoCoreLog(), []isa.Program{prog(), prog()}, map[uint64]uint64{0x100: 42}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("partial replay failed outright: %v", err)
	}
	if !res.Degraded() || len(res.Degradations) != 1 {
		t.Fatalf("Degradations = %v", res.Degradations)
	}
	d := res.Degradations[0]
	if d.Core != 1 || d.Interval != 0 {
		t.Fatalf("degradation = %+v, want core 1 interval 0", d)
	}
	// Core 0 must be fully replayed and authoritative.
	if res.FinalRegs[0][3] != 42 || res.FinalRegs[0][5] != 47 {
		t.Fatalf("core 0 regs = %v", res.FinalRegs[0][:6])
	}
	found := false
	for _, m := range tel.Registry().Snapshot() {
		if m.Name == "replay.degraded" && m.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("replay.degraded counter not incremented")
	}
}

// A core whose tail intervals were lost stops early: under
// AllowPartial that is a degradation (did not reach HALT), not a
// failure.
func TestPartialReplayIncompleteCore(t *testing.T) {
	log := patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 2})
	cfg := DefaultConfig()
	cfg.AllowPartial = true
	r, err := New(cfg, log, []isa.Program{prog()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degradations) != 1 || res.Degradations[0].Interval != -1 {
		t.Fatalf("Degradations = %v", res.Degradations)
	}
	if res.Instret[0] != 2 {
		t.Fatalf("instret = %d, want the 2 replayed instructions", res.Instret[0])
	}
}

func TestWatchdogProducesStallReport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogSteps = 3 // the log legitimately needs 6
	tel := telemetry.New(telemetry.Options{Shards: 2})
	cfg.Telemetry = tel
	log := patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 6})
	r, err := New(cfg, log, []isa.Program{prog()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run()
	var stall *ErrStalled
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v (%T), want *ErrStalled", err, err)
	}
	rep := stall.Report
	if rep.Budget != 3 || rep.Steps != 4 || rep.Core != 0 || rep.Interval != 0 {
		t.Fatalf("stall report = %+v", rep)
	}
	if len(rep.Done) != 1 || rep.Done[0] != 0 || len(rep.Halted) != 1 || rep.Halted[0] {
		t.Fatalf("per-core state = done %v halted %v", rep.Done, rep.Halted)
	}
	if len(rep.Metrics) == 0 {
		t.Fatal("stall report has no telemetry snapshot")
	}
	if rep.String() == "" || stall.Error() == "" {
		t.Fatal("stall report does not render")
	}
	// The watchdog must also fire under AllowPartial: a stall is
	// global, not a per-core degradation.
	cfg.AllowPartial = true
	r, _ = New(cfg, log, []isa.Program{prog()}, nil, nil)
	if _, err := r.Run(); !errors.As(err, &stall) {
		t.Fatalf("AllowPartial suppressed the watchdog: %v", err)
	}
}

// The auto budget must never fire on a truthful log.
func TestWatchdogAutoBudgetAllowsHonestLogs(t *testing.T) {
	log := patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 6})
	r, err := New(DefaultConfig(), log, []isa.Program{prog()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

// End-of-run incompleteness in strict mode is a typed divergence too.
func TestStrictIncompleteIsTyped(t *testing.T) {
	log := patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 2})
	r, _ := New(DefaultConfig(), log, []isa.Program{prog()}, nil, nil)
	_, err := r.Run()
	var div *ErrDiverged
	if !errors.As(err, &div) || div.Interval != -1 || div.Core != 0 {
		t.Fatalf("err = %v", err)
	}
}
