package replay

import (
	"fmt"
	"sort"

	"relaxreplay/internal/isa"
)

// Verify checks that a replay reproduced the recorded execution: the
// final memory image, every core's final register file, and every
// core's retired instruction count must match exactly. This is the
// determinism check the whole RnR system exists to provide.
func Verify(rep *Result, recMem map[uint64]uint64, recRegs [][isa.NumRegs]uint64, recRetired []uint64) error {
	if len(rep.FinalRegs) != len(recRegs) {
		return fmt.Errorf("replay: core count mismatch: %d vs %d", len(rep.FinalRegs), len(recRegs))
	}
	for c := range recRegs {
		if rep.FinalRegs[c] != recRegs[c] {
			return fmt.Errorf("replay: core %d register file diverged:\n replay: %v\n record: %v",
				c, rep.FinalRegs[c], recRegs[c])
		}
	}
	if recRetired != nil {
		for c := range recRetired {
			if rep.Instret[c] != recRetired[c] {
				return fmt.Errorf("replay: core %d replayed %d instructions, recorded %d",
					c, rep.Instret[c], recRetired[c])
			}
		}
	}
	if err := diffMem(rep.FinalMemory, recMem); err != nil {
		return err
	}
	return nil
}

func diffMem(got, want map[uint64]uint64) error {
	var bad []string
	for a, v := range want {
		if got[a] != v {
			bad = append(bad, fmt.Sprintf("mem[%#x] = %d, recorded %d", a, got[a], v))
		}
	}
	for a, v := range got {
		if _, ok := want[a]; !ok && v != 0 {
			bad = append(bad, fmt.Sprintf("mem[%#x] = %d, recorded 0", a, v))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	if len(bad) > 8 {
		bad = append(bad[:8], fmt.Sprintf("... and %d more", len(bad)-8))
	}
	return fmt.Errorf("replay: memory diverged:\n%s", join(bad))
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n"
		}
		out += "  " + s
	}
	return out
}
