package replay

import (
	"fmt"
	"strings"

	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/telemetry"
)

// Re-exported decode sentinels, so one package's errors classify the
// whole record → decode → replay pipeline with errors.Is.
var (
	ErrCorruptFrame = replaylog.ErrCorruptFrame
	ErrTruncated    = replaylog.ErrTruncated
)

// ErrDiverged reports that replay stopped matching the recorded
// execution, localized to one interval of one core: the log said one
// thing (a load here, a store there, N more instructions) and the
// re-executed program did another. Under Config.AllowPartial the same
// condition is recorded as a Degradation instead of returned.
type ErrDiverged struct {
	Core     int
	Interval int    // index within the core's stream; -1 for the end-of-run completeness check
	Seq      uint64 // recorded interval sequence number
	Cause    error
}

func (e *ErrDiverged) Error() string {
	if e.Interval < 0 {
		// End-of-run completeness check: there is no interval (or seq)
		// to point at — the core ran out of recorded intervals first,
		// so say that instead of printing a meaningless "interval -1".
		return fmt.Sprintf("replay incomplete: core %d ran out of recorded intervals before HALT: %v", e.Core, e.Cause)
	}
	return fmt.Sprintf("replay diverged: core %d interval %d (seq %d): %v", e.Core, e.Interval, e.Seq, e.Cause)
}

// EndOfLog reports whether this divergence is the end-of-run
// completeness check (the log ended before the core reached HALT)
// rather than a mismatch inside a specific interval.
func (e *ErrDiverged) EndOfLog() bool { return e.Interval < 0 }

func (e *ErrDiverged) Unwrap() error { return e.Cause }

// Degradation records one core's divergence in a partial replay: the
// core was abandoned at this interval and the run carried on without
// it.
type Degradation struct {
	Core     int
	Interval int // index within the core's stream; -1 for end-of-run incompleteness
	Seq      uint64
	Cause    error
}

func (d Degradation) String() string {
	if d.Interval < 0 {
		return fmt.Sprintf("core %d: recorded intervals ended before HALT: %v", d.Core, d.Cause)
	}
	return fmt.Sprintf("core %d interval %d (seq %d): %v", d.Core, d.Interval, d.Seq, d.Cause)
}

// EndOfLog reports whether the degradation is the end-of-run
// completeness check rather than an in-interval mismatch.
func (d Degradation) EndOfLog() bool { return d.Interval < 0 }

// ErrStalled reports that the replay watchdog fired: the scheduler
// stopped making progress toward HALT within its step budget (a
// corrupt log can demand effectively unbounded work — e.g. a block
// size with a flipped high bit). The report says where every core was
// when the watchdog fired.
type ErrStalled struct {
	Report *StallReport
}

func (e *ErrStalled) Error() string {
	return fmt.Sprintf("replay stalled: watchdog fired after %d of %d budgeted steps at core %d interval %d",
		e.Report.Steps, e.Report.Budget, e.Report.Core, e.Report.Interval)
}

// StallReport is the structured state dump produced when the watchdog
// fires, including a snapshot of the telemetry registry (every
// replay.* counter) at the moment of the stall.
type StallReport struct {
	Steps    uint64 // steps consumed when the watchdog fired
	Budget   uint64 // the budget that was exceeded
	Core     int    // interval being replayed when it fired
	Interval int
	Seq      uint64
	Done     []int  // intervals completed per core
	Halted   []bool // which cores had reached HALT
	Metrics  []telemetry.MetricSnapshot
}

func (r *StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay stall report: %d steps (budget %d), stuck at core %d interval %d (seq %d)\n",
		r.Steps, r.Budget, r.Core, r.Interval, r.Seq)
	for c, n := range r.Done {
		state := "running"
		if r.Halted[c] {
			state = "halted"
		}
		fmt.Fprintf(&b, "  core %d: %d interval(s) replayed, %s\n", c, n, state)
	}
	for _, m := range r.Metrics {
		if m.Type == "counter" {
			fmt.Fprintf(&b, "  %s = %d\n", m.Name, m.Value)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
