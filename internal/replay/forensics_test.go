package replay

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"relaxreplay/internal/isa"
	"relaxreplay/internal/provenance"
	"relaxreplay/internal/replaylog"
)

// divergingLog builds a patched log whose first entry demands a
// ReorderedLoad injection at prog()'s LI instruction — a guaranteed
// access mismatch.
func divergingLog() *replaylog.Log {
	return patchedLog(replaylog.Entry{Type: replaylog.ReorderedLoad, Value: 1})
}

func TestAccessMismatchTyped(t *testing.T) {
	r, err := New(DefaultConfig(), divergingLog(), []isa.Program{prog()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run()
	var div *ErrDiverged
	if !errors.As(err, &div) {
		t.Fatalf("err = %v, want *ErrDiverged", err)
	}
	var mm *AccessMismatch
	if !errors.As(err, &mm) {
		t.Fatalf("cause %v does not unwrap to *AccessMismatch", div.Cause)
	}
	if !strings.Contains(mm.Expected, "load instruction") {
		t.Fatalf("Expected = %q", mm.Expected)
	}
	if mm.Actual == "" {
		t.Fatal("Actual side empty")
	}
	// The historical message text is preserved.
	if !strings.Contains(err.Error(), "non-load instruction") {
		t.Fatalf("message changed: %v", err)
	}
}

func TestBuildDivergenceReportFromDegradation(t *testing.T) {
	log := divergingLog()
	cfg := DefaultConfig()
	cfg.AllowPartial = true
	r, err := New(cfg, log, []isa.Program{prog()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The in-interval mismatch degrades the core; the end-of-run check
	// then reports the same core never reached HALT.
	if len(res.Degradations) == 0 {
		t.Fatal("no degradations")
	}
	reports := DivergenceReports(log, res.Degradations, ForensicsOptions{})
	if len(reports) != len(res.Degradations) {
		t.Fatalf("%d reports for %d degradations", len(reports), len(res.Degradations))
	}
	rep := reports[0]
	if rep.Core != 0 || rep.Interval != 0 || rep.EndOfLog {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.Cause, "non-load") {
		t.Fatalf("cause = %q", rep.Cause)
	}
	if rep.Expected == "" || rep.Actual == "" {
		t.Fatalf("mismatch sides not extracted: %+v", rep)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"core", "interval", "cause", "expected", "actual"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("JSON missing %q: %s", k, data)
		}
	}
}

func TestDivergenceReportEndOfLog(t *testing.T) {
	// The log ends two instructions in; the core never reaches HALT.
	log := patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 2})
	cfg := DefaultConfig()
	cfg.AllowPartial = true
	r, _ := New(cfg, log, []isa.Program{prog()}, nil, nil)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degradations) != 1 || !res.Degradations[0].EndOfLog() {
		t.Fatalf("degradations = %v", res.Degradations)
	}
	rep := BuildDivergenceReport(log, res.Degradations[0].Core, res.Degradations[0].Interval,
		res.Degradations[0].Seq, res.Degradations[0].Cause, ForensicsOptions{})
	if !rep.EndOfLog || rep.Interval != -1 {
		t.Fatalf("report = %+v", rep)
	}
	// End-of-log context is the core's recorded tail.
	if len(rep.Context) != 1 || rep.Context[0].Seq != 0 {
		t.Fatalf("context = %+v", rep.Context)
	}
}

// contextLog builds a two-core log with interleaved timestamps for the
// window tests: core 0 at ts 10/30/50/70, core 1 at ts 20/40/60.
func contextLog() *replaylog.Log {
	iv := func(seq, ts uint64) replaylog.Interval {
		return replaylog.Interval{Seq: seq, CISN: uint16(seq), Timestamp: ts,
			Entries: []replaylog.Entry{{Type: replaylog.InorderBlock, Size: uint32(seq + 1)}}}
	}
	return &replaylog.Log{
		Cores:   2,
		Patched: true,
		Streams: []replaylog.CoreLog{
			{Core: 0, Intervals: []replaylog.Interval{iv(0, 10), iv(1, 30), iv(2, 50), iv(3, 70)}},
			{Core: 1, Intervals: []replaylog.Interval{iv(0, 20), iv(1, 40), iv(2, 60)}},
		},
		Inputs: make([][]uint64, 2),
	}
}

func TestContextWindowOrderAndCut(t *testing.T) {
	log := contextLog()
	// Divergence at core 0 interval 2 (ts 50), window 2 per core: the
	// context is everything strictly before ts 50, newest 2 per core,
	// in replay total order.
	rep := BuildDivergenceReport(log, 0, 2, 2, fmt.Errorf("boom"), ForensicsOptions{Window: 2})
	want := []struct {
		core int
		seq  uint64
		ts   uint64
	}{{0, 0, 10}, {1, 0, 20}, {0, 1, 30}, {1, 1, 40}}
	if len(rep.Context) != len(want) {
		t.Fatalf("context = %+v", rep.Context)
	}
	for i, w := range want {
		c := rep.Context[i]
		if c.Core != w.core || c.Seq != w.seq || c.Timestamp != w.ts || c.ViaIndex {
			t.Fatalf("context[%d] = %+v, want %+v", i, c, w)
		}
		if c.Instructions == 0 || c.Entries == 0 {
			t.Fatalf("context[%d] missing shape: %+v", i, c)
		}
	}
}

func TestContextWindowDefaultDepth(t *testing.T) {
	log := contextLog()
	// Window 0 means DefaultForensicsWindow (4): the cut at ts 70 keeps
	// 3 core-0 intervals and all 3 core-1 intervals.
	rep := BuildDivergenceReport(log, 0, 3, 3, nil, ForensicsOptions{})
	if len(rep.Context) != 6 {
		t.Fatalf("context depth = %d, want 6: %+v", len(rep.Context), rep.Context)
	}
	for i := 1; i < len(rep.Context); i++ {
		if rep.Context[i-1].Timestamp > rep.Context[i].Timestamp {
			t.Fatalf("context out of order: %+v", rep.Context)
		}
	}
}

func TestContextWindowViaIndex(t *testing.T) {
	log := contextLog()
	log.Patched = false // v3 persists recorded (unpatched) logs
	var buf bytes.Buffer
	if err := replaylog.EncodeV3(&buf, log); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	ix, err := replaylog.OpenIndexed(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildDivergenceReport(log, 0, 3, 3, nil, ForensicsOptions{Window: 2, Index: ix})
	var viaIdx, inMem int
	for _, c := range rep.Context {
		if c.ViaIndex {
			if c.Core != 0 {
				t.Fatalf("indexed context for wrong core: %+v", c)
			}
			viaIdx++
		} else {
			inMem++
		}
	}
	// Diverged core's window (seqs 1, 2) resolved through the index;
	// the other core's from the in-memory stream.
	if viaIdx != 2 || inMem != 2 {
		t.Fatalf("viaIdx=%d inMem=%d: %+v", viaIdx, inMem, rep.Context)
	}
	for i := 1; i < len(rep.Context); i++ {
		if rep.Context[i-1].Timestamp > rep.Context[i].Timestamp {
			t.Fatalf("context out of order: %+v", rep.Context)
		}
	}
}

func TestDivergenceReportProvenance(t *testing.T) {
	log := contextLog()
	log.Provenance = []provenance.CoreProvenance{
		{Core: 0, Records: []provenance.Record{
			{Seq: 0, Cause: provenance.CauseSize},
			{Seq: 2, Cause: provenance.CauseConflict, ConflictLine: 0x80, RemoteCore: 1},
		}},
	}
	rep := BuildDivergenceReport(log, 0, 2, 2, nil, ForensicsOptions{Window: 1})
	if rep.Provenance == nil {
		t.Fatal("provenance not attached")
	}
	if rep.Provenance.Cause != provenance.CauseConflict || rep.Provenance.RemoteCore != 1 {
		t.Fatalf("provenance = %+v", rep.Provenance)
	}
	// A seq with no sideband record resolves to nil, not a mismatch.
	if rep := BuildDivergenceReport(log, 0, 1, 1, nil, ForensicsOptions{Window: 1}); rep.Provenance != nil {
		t.Fatalf("attached provenance for uncovered seq: %+v", rep.Provenance)
	}
	// End-of-log reports carry no interval provenance.
	if rep := BuildDivergenceReport(log, 0, -1, 0, nil, ForensicsOptions{}); rep.Provenance != nil {
		t.Fatal("end-of-log report attached provenance")
	}
}

func TestDamageReport(t *testing.T) {
	rep := DamageReport("3 corrupt frame(s), 2 store(s) unplaced")
	if rep.Core != -1 || rep.Interval != -1 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.Cause, "corrupt") {
		t.Fatalf("cause = %q", rep.Cause)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
}

// Satellite: the end-of-run completeness check renders a
// self-explanatory message instead of "interval -1 (seq 0)".
func TestEndOfLogErrorRendering(t *testing.T) {
	cause := fmt.Errorf("did not reach HALT (pc=3)")
	eol := &ErrDiverged{Core: 2, Interval: -1, Cause: cause}
	if got := eol.Error(); !strings.Contains(got, "replay incomplete") ||
		!strings.Contains(got, "core 2 ran out of recorded intervals before HALT") {
		t.Fatalf("end-of-log rendering: %q", got)
	}
	if strings.Contains(eol.Error(), "-1") {
		t.Fatalf("end-of-log rendering leaks the -1 sentinel: %q", eol.Error())
	}
	if !eol.EndOfLog() {
		t.Fatal("EndOfLog() = false for interval -1")
	}

	mid := &ErrDiverged{Core: 1, Interval: 3, Seq: 7, Cause: cause}
	if got := mid.Error(); !strings.Contains(got, "replay diverged: core 1 interval 3 (seq 7)") {
		t.Fatalf("in-interval rendering: %q", got)
	}
	if mid.EndOfLog() {
		t.Fatal("EndOfLog() = true for a real interval")
	}

	deg := Degradation{Core: 0, Interval: -1, Cause: cause}
	if got := deg.String(); !strings.Contains(got, "recorded intervals ended before HALT") {
		t.Fatalf("degradation rendering: %q", got)
	}
	if !deg.EndOfLog() || (Degradation{Interval: 2}).EndOfLog() {
		t.Fatal("Degradation.EndOfLog misclassifies")
	}
}
