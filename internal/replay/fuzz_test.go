package replay

import (
	"bytes"
	"errors"
	"testing"

	"relaxreplay/internal/isa"
	"relaxreplay/internal/replaylog"
)

// FuzzReplayPartial drives the full degraded pipeline on arbitrary
// bytes: robust-decode → partial patch → partial replay under a
// watchdog. The invariant is the chaos-matrix contract: whatever the
// bytes, the pipeline never panics and never hangs — it returns a
// result (possibly degraded) or a typed error.
func FuzzReplayPartial(f *testing.F) {
	seed := func(l *replaylog.Log) {
		var buf bytes.Buffer
		if err := replaylog.Encode(&buf, l); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 6}))
	seed(patchedLog(
		replaylog.Entry{Type: replaylog.InorderBlock, Size: 1},
		replaylog.Entry{Type: replaylog.ReorderedLoad, Value: 99},
		replaylog.Entry{Type: replaylog.InorderBlock, Size: 4},
	))
	seed(twoCoreLog())
	unpatched := &replaylog.Log{
		Cores: 1,
		Streams: []replaylog.CoreLog{{Core: 0, Intervals: []replaylog.Interval{
			{Seq: 0, Timestamp: 10, Entries: []replaylog.Entry{
				{Type: replaylog.InorderBlock, Size: 2},
				{Type: replaylog.ReorderedStore, Addr: 0x108, Value: 5, Offset: 0},
				{Type: replaylog.InorderBlock, Size: 3},
			}},
		}}},
		Inputs: make([][]uint64, 1),
	}
	seed(unpatched)

	f.Fuzz(func(t *testing.T, data []byte) {
		l, _, err := replaylog.DecodeRobust(bytes.NewReader(data))
		if err != nil {
			return
		}
		if l.Cores < 1 || l.Cores > 8 {
			return // fuzzed core counts up to MaxCores would just allocate threads
		}
		if !l.Patched {
			var derr error
			l, _, derr = l.PatchPartial()
			if derr != nil {
				return
			}
		}
		progs := make([]isa.Program, l.Cores)
		for i := range progs {
			progs[i] = prog()
		}
		for _, partial := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.AllowPartial = partial
			cfg.WatchdogSteps = 1 << 16 // bound fuzz-run work regardless of claimed sizes
			r, err := New(cfg, l, progs, nil, nil)
			if err != nil {
				continue // rejected (invalid log): a classified outcome
			}
			res, err := r.Run()
			if err == nil {
				if res == nil {
					t.Fatal("nil result with nil error")
				}
				continue
			}
			var div *ErrDiverged
			var stall *ErrStalled
			if !errors.As(err, &div) && !errors.As(err, &stall) {
				t.Fatalf("untyped replay failure: %v (%T)", err, err)
			}
			if partial && errors.As(err, &div) {
				t.Fatalf("AllowPartial leaked a divergence error: %v", err)
			}
		}
	})
}
