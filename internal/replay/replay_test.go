package replay

import (
	"strings"
	"testing"

	"relaxreplay/internal/isa"
	"relaxreplay/internal/replaylog"
)

// prog builds: ld r3,[0x100]; st r4->[0x108]; add; halt.
func prog() isa.Program {
	b := isa.NewBuilder("p")
	b.Li(isa.R(10), 0x100)
	b.Ld(isa.R(3), isa.R(10), 0)
	b.Li(isa.R(4), 5)
	b.St(isa.R(4), isa.R(10), 8)
	b.Add(isa.R(5), isa.R(3), isa.R(4))
	b.Halt()
	return b.MustBuild()
}

func patchedLog(entries ...replaylog.Entry) *replaylog.Log {
	return &replaylog.Log{
		Cores:   1,
		Patched: true,
		Streams: []replaylog.CoreLog{{Core: 0, Intervals: []replaylog.Interval{
			{Seq: 0, Timestamp: 10, Entries: entries},
		}}},
		Inputs: make([][]uint64, 1),
	}
}

func TestReplayInorderBlock(t *testing.T) {
	log := patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 6})
	r, err := New(DefaultConfig(), log, []isa.Program{prog()}, map[uint64]uint64{0x100: 42}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalRegs[0][3] != 42 || res.FinalRegs[0][5] != 47 {
		t.Fatalf("regs = %v", res.FinalRegs[0][:6])
	}
	if res.FinalMemory[0x108] != 5 {
		t.Fatalf("mem = %v", res.FinalMemory)
	}
	if res.Instret[0] != 6 {
		t.Fatalf("instret = %d", res.Instret[0])
	}
}

func TestReplayReorderedLoadInjectsValue(t *testing.T) {
	log := patchedLog(
		replaylog.Entry{Type: replaylog.InorderBlock, Size: 1},
		replaylog.Entry{Type: replaylog.ReorderedLoad, Value: 99}, // the ld
		replaylog.Entry{Type: replaylog.InorderBlock, Size: 4},
	)
	r, err := New(DefaultConfig(), log, []isa.Program{prog()}, map[uint64]uint64{0x100: 42}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The injected 99 must override the memory value 42.
	if res.FinalRegs[0][3] != 99 || res.FinalRegs[0][5] != 104 {
		t.Fatalf("regs = %v", res.FinalRegs[0][:6])
	}
}

func TestReplayDummySkipsStoreAndPatchedStoreApplies(t *testing.T) {
	log := patchedLog(
		replaylog.Entry{Type: replaylog.PatchedStore, Addr: 0x108, Value: 77},
		replaylog.Entry{Type: replaylog.InorderBlock, Size: 3},
		replaylog.Entry{Type: replaylog.Dummy}, // the st
		replaylog.Entry{Type: replaylog.InorderBlock, Size: 2},
	)
	r, err := New(DefaultConfig(), log, []isa.Program{prog()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The store instruction was skipped; the patched value stands.
	if res.FinalMemory[0x108] != 77 {
		t.Fatalf("mem[0x108] = %d", res.FinalMemory[0x108])
	}
	if res.Instret[0] != 6 {
		t.Fatalf("instret = %d (dummy must count as one instruction)", res.Instret[0])
	}
}

func TestReplayRejectsUnpatchedLog(t *testing.T) {
	log := patchedLog()
	log.Patched = false
	if _, err := New(DefaultConfig(), log, []isa.Program{prog()}, nil, nil); err == nil {
		t.Fatal("unpatched log accepted")
	}
}

func TestReplayRejectsWrongProgramCount(t *testing.T) {
	log := patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 6})
	if _, err := New(DefaultConfig(), log, nil, nil, nil); err == nil {
		t.Fatal("missing programs accepted")
	}
}

func TestReplayEntryTypeMismatch(t *testing.T) {
	// A ReorderedLoad entry pointing at a non-load instruction.
	log := patchedLog(
		replaylog.Entry{Type: replaylog.ReorderedLoad, Value: 1}, // pc0 is LI
	)
	r, err := New(DefaultConfig(), log, []isa.Program{prog()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "non-load") {
		t.Fatalf("err = %v", err)
	}

	log = patchedLog(
		replaylog.Entry{Type: replaylog.Dummy}, // pc0 is LI, not a store
	)
	r, _ = New(DefaultConfig(), log, []isa.Program{prog()}, nil, nil)
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "non-store") {
		t.Fatalf("err = %v", err)
	}
}

func TestReplayBlockOverrunsHalt(t *testing.T) {
	log := patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 99})
	r, _ := New(DefaultConfig(), log, []isa.Program{prog()}, nil, nil)
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "HALT") {
		t.Fatalf("err = %v", err)
	}
}

func TestReplayIncompleteExecution(t *testing.T) {
	log := patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 2})
	r, _ := New(DefaultConfig(), log, []isa.Program{prog()}, nil, nil)
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "HALT") {
		t.Fatalf("err = %v", err)
	}
}

func TestReplayIntervalOrderAcrossCores(t *testing.T) {
	// Core 1 writes 0x100=7 (ts 10); core 0 then reads it (ts 20):
	// the cross-core value must flow by interval order.
	reader := isa.NewBuilder("reader")
	reader.Li(isa.R(10), 0x100)
	reader.Ld(isa.R(3), isa.R(10), 0)
	reader.Halt()
	writer := isa.NewBuilder("writer")
	writer.Li(isa.R(10), 0x100)
	writer.Li(isa.R(4), 7)
	writer.St(isa.R(4), isa.R(10), 0)
	writer.Halt()
	log := &replaylog.Log{
		Cores:   2,
		Patched: true,
		Streams: []replaylog.CoreLog{
			{Core: 0, Intervals: []replaylog.Interval{
				{Seq: 0, Timestamp: 20, Entries: []replaylog.Entry{{Type: replaylog.InorderBlock, Size: 3}}},
			}},
			{Core: 1, Intervals: []replaylog.Interval{
				{Seq: 0, Timestamp: 10, Entries: []replaylog.Entry{{Type: replaylog.InorderBlock, Size: 4}}},
			}},
		},
		Inputs: make([][]uint64, 2),
	}
	r, err := New(DefaultConfig(), log, []isa.Program{reader.MustBuild(), writer.MustBuild()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalRegs[0][3] != 7 {
		t.Fatalf("reader saw %d, want 7 (interval order violated)", res.FinalRegs[0][3])
	}
}

func TestReplayTimingModel(t *testing.T) {
	cfg := Config{IntervalSwitchCycles: 100, BlockInterruptCycles: 10, EntryEmulationCycles: 1, UserCPIFactor: 2}
	log := patchedLog(
		replaylog.Entry{Type: replaylog.InorderBlock, Size: 1},
		replaylog.Entry{Type: replaylog.ReorderedLoad, Value: 99},
		replaylog.Entry{Type: replaylog.InorderBlock, Size: 4},
	)
	r, err := New(cfg, log, []isa.Program{prog()}, nil, []float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// OS: 1 interval switch (100) + 2 blocks (20) + 1 entry (1) = 121.
	if res.Timing.OSCycles != 121 {
		t.Fatalf("OS cycles = %d", res.Timing.OSCycles)
	}
	// User: 5 instructions * 1.5 CPI * 2.0 factor = 15.
	if res.Timing.UserCycles != 15 {
		t.Fatalf("user cycles = %d", res.Timing.UserCycles)
	}
	if res.Timing.Total() != 136 {
		t.Fatalf("total = %d", res.Timing.Total())
	}
}

func TestVerifyDetectsDivergence(t *testing.T) {
	rep := &Result{
		FinalMemory: map[uint64]uint64{0x10: 1},
		FinalRegs:   [][isa.NumRegs]uint64{{}},
		Instret:     []uint64{5},
	}
	regs := [][isa.NumRegs]uint64{{}}
	if err := Verify(rep, map[uint64]uint64{0x10: 1}, regs, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	if err := Verify(rep, map[uint64]uint64{0x10: 2}, regs, []uint64{5}); err == nil {
		t.Fatal("memory divergence missed")
	}
	if err := Verify(rep, map[uint64]uint64{0x10: 1, 0x20: 3}, regs, []uint64{5}); err == nil {
		t.Fatal("missing word missed")
	}
	if err := Verify(rep, map[uint64]uint64{0x10: 1}, regs, []uint64{6}); err == nil {
		t.Fatal("instret divergence missed")
	}
	badRegs := [][isa.NumRegs]uint64{{1: 9}}
	if err := Verify(rep, map[uint64]uint64{0x10: 1}, badRegs, []uint64{5}); err == nil {
		t.Fatal("register divergence missed")
	}
	if err := Verify(rep, map[uint64]uint64{0x10: 1}, nil, nil); err == nil {
		t.Fatal("core-count mismatch missed")
	}
}

func TestReplayInputInjection(t *testing.T) {
	b := isa.NewBuilder("in")
	b.In(isa.R(3)).Halt()
	log := patchedLog(replaylog.Entry{Type: replaylog.InorderBlock, Size: 2})
	log.Inputs = [][]uint64{{1234}}
	r, err := New(DefaultConfig(), log, []isa.Program{b.MustBuild()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalRegs[0][3] != 1234 {
		t.Fatalf("input not injected: %d", res.FinalRegs[0][3])
	}
}

func TestEstimateParallel(t *testing.T) {
	cfg := Config{IntervalSwitchCycles: 10, BlockInterruptCycles: 0, EntryEmulationCycles: 0, UserCPIFactor: 1}
	// Two cores, two independent intervals each, plus one dependence:
	// core1's second interval depends on core0's first.
	log := &replaylog.Log{
		Cores:   2,
		Patched: true,
		Streams: []replaylog.CoreLog{
			{Core: 0, Intervals: []replaylog.Interval{
				{Seq: 0, Timestamp: 10, Entries: []replaylog.Entry{{Type: replaylog.InorderBlock, Size: 90}}},
				{Seq: 1, Timestamp: 30, Entries: []replaylog.Entry{{Type: replaylog.InorderBlock, Size: 90}}},
			}},
			{Core: 1, Intervals: []replaylog.Interval{
				{Seq: 0, Timestamp: 20, Entries: []replaylog.Entry{{Type: replaylog.InorderBlock, Size: 90}}},
				{Seq: 1, Timestamp: 40,
					Entries: []replaylog.Entry{{Type: replaylog.InorderBlock, Size: 90}},
					Preds:   []replaylog.Pred{{Core: 0, Seq: 0}}},
			}},
		},
	}
	est := EstimateParallel(cfg, log, nil)
	// Each interval costs 100. Sequential = 400. Parallel: both cores
	// run two intervals back to back = 200 (the edge 0/0 -> 1/1 is
	// satisfied: 1/1 starts at 100, after 0/0 ends at 100).
	if est.SequentialCycles != 400 {
		t.Fatalf("sequential = %d", est.SequentialCycles)
	}
	if est.ParallelCycles != 200 {
		t.Fatalf("parallel = %d", est.ParallelCycles)
	}
	if est.Speedup() != 2 {
		t.Fatalf("speedup = %f", est.Speedup())
	}
	// Add cross dependences: 1/0 waits for 0/0, 0/1 waits for 1/0.
	// Critical path: 0/0 (100) -> 1/0 (200) -> 0/1 (300); 1/1 overlaps
	// with 0/1, so the makespan grows to 300.
	log.Streams[0].Intervals[1].Preds = []replaylog.Pred{{Core: 1, Seq: 0}}
	log.Streams[1].Intervals[0].Preds = []replaylog.Pred{{Core: 0, Seq: 0}}
	est = EstimateParallel(cfg, log, nil)
	if est.ParallelCycles != 300 {
		t.Fatalf("chained parallel = %d", est.ParallelCycles)
	}
}

// Replaying the same patched log twice must give identical results:
// the replayer itself is deterministic.
func TestReplayIdempotent(t *testing.T) {
	log := patchedLog(
		replaylog.Entry{Type: replaylog.InorderBlock, Size: 1},
		replaylog.Entry{Type: replaylog.ReorderedLoad, Value: 99},
		replaylog.Entry{Type: replaylog.InorderBlock, Size: 4},
	)
	run := func() *Result {
		r, err := New(DefaultConfig(), log, []isa.Program{prog()}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FinalRegs[0] != b.FinalRegs[0] || a.Timing != b.Timing || a.Instret[0] != b.Instret[0] {
		t.Fatal("replayer not deterministic")
	}
	for k, v := range a.FinalMemory {
		if b.FinalMemory[k] != v {
			t.Fatal("memory differs between replays")
		}
	}
}
