package replay

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"relaxreplay/internal/provenance"
	"relaxreplay/internal/replaylog"
)

// Divergence forensics: when replay stops matching the log, the bare
// error says *that* core C diverged at interval I — this file builds
// the structured report that says what the log demanded, what the
// re-executed program did instead, what the surrounding intervals
// looked like on every core, and (when the log carries a provenance
// sideband) why the diverged interval terminated during recording.

// AccessMismatch is the typed cause of an in-interval divergence: the
// log demanded one kind of access and the re-executed program
// presented another. Error() renders the same message the replayer has
// always produced; Expected/Actual carry the two sides for forensics.
type AccessMismatch struct {
	Expected string // what the log entry demanded
	Actual   string // what the re-executed program presented
	msg      string
}

func (m *AccessMismatch) Error() string { return m.msg }

// mismatch builds an AccessMismatch whose Error() is format/args —
// callers keep the historical message text exactly.
func mismatch(expected, actual, format string, args ...any) *AccessMismatch {
	return &AccessMismatch{Expected: expected, Actual: actual, msg: fmt.Sprintf(format, args...)}
}

// ContextInterval is one interval of the context window around a
// divergence: enough shape (size, entry mix, reorder count) to see
// what the neighborhood was doing without dumping entry payloads.
type ContextInterval struct {
	Core         int    `json:"core"`
	Seq          uint64 `json:"seq"`
	Timestamp    uint64 `json:"timestamp"`
	Instructions uint64 `json:"instructions"`
	Entries      int    `json:"entries"`
	Reordered    int    `json:"reordered"` // reordered/patched/dummy entries
	ViaIndex     bool   `json:"via_index,omitempty"`
}

// DivergenceReport is the structured forensic record of one replay
// divergence (or degradation).
type DivergenceReport struct {
	Core     int    `json:"core"`     // -1: damage report not tied to a core
	Interval int    `json:"interval"` // index in the core's stream; -1 for end-of-log
	Seq      uint64 `json:"seq"`
	EndOfLog bool   `json:"end_of_log,omitempty"`
	Cause    string `json:"cause"`
	Expected string `json:"expected,omitempty"`
	Actual   string `json:"actual,omitempty"`

	// Provenance is the recording-time provenance of the diverged
	// interval, when the log carries the sideband.
	Provenance *provenance.Record `json:"provenance,omitempty"`

	// Context is the window of preceding intervals across all cores, in
	// recorded total order (the order replay executes them).
	Context []ContextInterval `json:"context,omitempty"`
}

// JSON renders the report for rrreplay -forensics and friends.
func (r *DivergenceReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ForensicsOptions configures report assembly.
type ForensicsOptions struct {
	// Window is the number of preceding intervals to include per core;
	// 0 means DefaultForensicsWindow.
	Window int
	// Index, when non-nil, resolves the diverged core's window with
	// O(log n) per-interval seeks instead of the in-memory stream —
	// the path rrreplay uses against large v3 files.
	Index *replaylog.IndexedLog
}

// DefaultForensicsWindow is the per-core context depth when
// ForensicsOptions.Window is zero.
const DefaultForensicsWindow = 4

// BuildDivergenceReport assembles the forensic record for a divergence
// at (core, interval, seq) in l (the log replay ran on — patched or
// not; provenance rides through patching). interval < 0 means the
// end-of-log case. cause is the divergence cause error.
func BuildDivergenceReport(l *replaylog.Log, core, interval int, seq uint64, cause error, o ForensicsOptions) *DivergenceReport {
	window := o.Window
	if window <= 0 {
		window = DefaultForensicsWindow
	}
	r := &DivergenceReport{Core: core, Interval: interval, Seq: seq, EndOfLog: interval < 0}
	if cause != nil {
		r.Cause = cause.Error()
		var mm *AccessMismatch
		if errors.As(cause, &mm) {
			r.Expected = mm.Expected
			r.Actual = mm.Actual
		}
	}
	if l == nil {
		return r
	}
	if interval >= 0 {
		r.Provenance = findProvenance(l.Provenance, core, seq)
	}
	r.Context = contextWindow(l, core, interval, seq, window, o.Index)
	return r
}

// DivergenceReports builds one report per degradation of a partial
// replay, in degradation order.
func DivergenceReports(l *replaylog.Log, degs []Degradation, o ForensicsOptions) []*DivergenceReport {
	var out []*DivergenceReport
	for _, d := range degs {
		out = append(out, BuildDivergenceReport(l, d.Core, d.Interval, d.Seq, d.Cause, o))
	}
	return out
}

// DamageReport synthesizes a report for a degradation that has no
// replay-side divergence to point at — the log itself was damaged
// (corrupt frames, unplaceable stores) and replay merely inherited the
// loss. Core and Interval are -1.
func DamageReport(detail string) *DivergenceReport {
	return &DivergenceReport{Core: -1, Interval: -1, Cause: detail}
}

// findProvenance locates the sideband record for (core, seq).
func findProvenance(prov []provenance.CoreProvenance, core int, seq uint64) *provenance.Record {
	for i := range prov {
		if prov[i].Core != core {
			continue
		}
		recs := prov[i].Records
		j := sort.Search(len(recs), func(k int) bool { return recs[k].Seq >= seq })
		if j < len(recs) && recs[j].Seq == seq {
			out := recs[j]
			return &out
		}
		return nil
	}
	return nil
}

// contextWindow collects up to `window` intervals per core preceding
// the divergence point, in recorded total order. The diverged core's
// window is resolved through the segment index when one is supplied
// (only the covering group frames are read); every other core comes
// from the in-memory log.
func contextWindow(l *replaylog.Log, core, interval int, seq uint64, window int, ix *replaylog.IndexedLog) []ContextInterval {
	var out []ContextInterval

	// The cut point: intervals strictly before the diverged one in the
	// replay total order (ts, core, idx). For the end-of-log case there
	// is no cut — the window is each core's recorded tail.
	var cutTs uint64
	cut := func(s *replaylog.CoreLog, i int) bool { return true }
	if interval >= 0 {
		if si := streamFor(l, core); si != nil && interval < len(si.Intervals) {
			cutTs = si.Intervals[interval].Timestamp
			cut = func(s *replaylog.CoreLog, i int) bool {
				iv := &s.Intervals[i]
				if iv.Timestamp != cutTs {
					return iv.Timestamp < cutTs
				}
				if s.Core != core {
					return s.Core < core
				}
				return i < interval
			}
		}
	}

	for si := range l.Streams {
		s := &l.Streams[si]
		if s.Core == core && interval >= 0 && ix != nil {
			out = append(out, indexedWindow(s.Core, seq, window, ix)...)
			continue
		}
		// Last `window` intervals of this stream before the cut.
		var picked []int
		for i := len(s.Intervals) - 1; i >= 0 && len(picked) < window; i-- {
			if s.Core == core && i == interval {
				continue
			}
			if cut(s, i) {
				picked = append(picked, i)
			}
		}
		for k := len(picked) - 1; k >= 0; k-- {
			out = append(out, summarize(s.Core, &s.Intervals[picked[k]], false))
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Timestamp != out[j].Timestamp {
			return out[i].Timestamp < out[j].Timestamp
		}
		if out[i].Core != out[j].Core {
			return out[i].Core < out[j].Core
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// indexedWindow walks seq backwards through the segment index,
// decoding one covering group frame per interval.
func indexedWindow(core int, seq uint64, window int, ix *replaylog.IndexedLog) []ContextInterval {
	var out []ContextInterval
	for k := 1; k <= window && uint64(k) <= seq; k++ {
		iv, err := ix.DecodeInterval(core, seq-uint64(k))
		if err != nil {
			break // a gap (lost group) ends the walk
		}
		out = append(out, summarize(core, iv, true))
	}
	// Walked newest-first; restore interval order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func streamFor(l *replaylog.Log, core int) *replaylog.CoreLog {
	for si := range l.Streams {
		if l.Streams[si].Core == core {
			return &l.Streams[si]
		}
	}
	return nil
}

func summarize(core int, iv *replaylog.Interval, viaIndex bool) ContextInterval {
	c := ContextInterval{
		Core:         core,
		Seq:          iv.Seq,
		Timestamp:    iv.Timestamp,
		Instructions: iv.Instructions(),
		Entries:      len(iv.Entries),
		ViaIndex:     viaIndex,
	}
	for _, e := range iv.Entries {
		switch e.Type {
		case replaylog.ReorderedLoad, replaylog.ReorderedStore, replaylog.ReorderedAtomic,
			replaylog.PatchedStore, replaylog.Dummy:
			c.Reordered++
		}
	}
	return c
}
