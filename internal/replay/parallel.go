package replay

import (
	"sort"

	"relaxreplay/internal/replaylog"
)

// Parallel replay estimate (an extension; see DESIGN.md).
//
// The paper's evaluation replays sequentially because QuickRec's
// interval ordering is a total order, but §3.6/§5.4 note that pairing
// RelaxReplay with an orderer that records pairwise dependences (Karma,
// Cyrus) admits parallel replay. Our recorder additionally logs
// Cyrus-style dependence edges (Interval.Preds); EstimateParallel
// schedules the intervals on one logical processor per recorded core —
// an interval starts when its same-core predecessor and all its
// dependence predecessors have finished — and returns the parallel
// makespan next to the sequential replay time, using the same timing
// model. Values are still verified by the sequential replayer; this is
// a timing estimate of the parallelism the log exposes.

// ParallelEstimate compares sequential and parallel replay schedules.
type ParallelEstimate struct {
	SequentialCycles uint64
	ParallelCycles   uint64
}

// Speedup returns the parallel-replay speedup over sequential replay.
func (p ParallelEstimate) Speedup() float64 {
	if p.ParallelCycles == 0 {
		return 0
	}
	return float64(p.SequentialCycles) / float64(p.ParallelCycles)
}

// EstimateParallel computes the estimate for a (patched or unpatched)
// log under the given timing model and per-core recorded CPI.
func EstimateParallel(cfg Config, log *replaylog.Log, cpi []float64) ParallelEstimate {
	// Duration of one interval under the replay timing model.
	duration := func(core int, iv *replaylog.Interval) uint64 {
		d := cfg.IntervalSwitchCycles
		f := 1.0
		if cpi != nil && core < len(cpi) {
			f = cpi[core]
		}
		for _, e := range iv.Entries {
			switch e.Type {
			case replaylog.InorderBlock:
				d += cfg.BlockInterruptCycles
				d += uint64(float64(e.Size) * f * cfg.UserCPIFactor)
			default:
				d += cfg.EntryEmulationCycles
			}
		}
		return d
	}

	var est ParallelEstimate
	// end[core][seq] = completion time in the parallel schedule.
	end := make(map[[2]uint64]uint64)
	// Process intervals in global timestamp order: every predecessor
	// (same-core or cross-core) has a smaller termination timestamp,
	// so a single pass suffices.
	type ref struct {
		core int
		iv   *replaylog.Interval
	}
	var order []ref
	for si := range log.Streams {
		s := &log.Streams[si]
		for i := range s.Intervals {
			order = append(order, ref{core: s.Core, iv: &s.Intervals[i]})
		}
	}
	// Sort by (timestamp, core) — identical to the sequential replay
	// order.
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].iv.Timestamp != order[j].iv.Timestamp {
			return order[i].iv.Timestamp < order[j].iv.Timestamp
		}
		return order[i].core < order[j].core
	})

	for _, r := range order {
		d := duration(r.core, r.iv)
		est.SequentialCycles += d
		start := uint64(0)
		if r.iv.Seq > 0 {
			start = end[[2]uint64{uint64(r.core), r.iv.Seq - 1}]
		}
		for _, p := range r.iv.Preds {
			if e := end[[2]uint64{uint64(p.Core), p.Seq}]; e > start {
				start = e
			}
		}
		end[[2]uint64{uint64(r.core), r.iv.Seq}] = start + d
		if fin := start + d; fin > est.ParallelCycles {
			est.ParallelCycles = fin
		}
	}
	return est
}
