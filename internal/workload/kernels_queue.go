package workload

import "relaxreplay/internal/isa"

// Task-queue and lock-based kernels: barnes, cholesky, radiosity,
// radix, raytrace, volrend. They share an atomic work counter (the
// dominant SPLASH-2 self-scheduling idiom) and differ in how much
// read-only data each task touches and which shared accumulators it
// updates under locks — the axes that drive coherence traffic and
// hence interval termination and reordered-access visibility.

// emitFetchTask emits t = fetch_and_add(counter, 1) into dst and
// branches to doneLabel when t >= ntasks (held in limit).
func emitFetchTask(b *isa.Builder, counter uint64, dst, limit isa.Reg, loopTop, doneLabel string) {
	b.Label(loopTop)
	b.Li(rt2, int64(counter))
	b.Li(rt0, 1)
	b.AmoAdd(dst, rt0, rt2, 0, isa.FlagAcquire|isa.FlagRelease)
	b.Bge(dst, limit, doneLabel)
}

// Barnes: tree build with per-cell locks (scattered locked updates),
// then a read-mostly force pass over all cells.
func Barnes(cores, scale int) Workload {
	perCore := int64(8 * scale)
	bodies := int64(cores) * perCore
	const ncells = 32
	lay := NewLayout()
	bar := lay.Barrier()
	vals := lay.AllocWords(uint64(bodies))
	force := lay.AllocWords(uint64(bodies))
	// Cell: lock, count, sum — each on its own line.
	cellBase := lay.Alloc(ncells * 32)
	priv := lay.AllocWords(uint64(cores) * 64)

	r := isa.R
	b := isa.NewBuilder("barnes")
	b.Li(r(21), perCore)
	// Phase 1: insert my bodies into cells under per-cell locks.
	b.Li(r(19), 0)
	b.Label("body1")
	b.Li(r(18), perCore)
	b.Mul(r(18), RegTID, r(18))
	b.Add(r(18), r(18), r(19)) // body index m
	b.Slli(r(7), r(18), 3)
	b.Li(rt0, int64(vals))
	b.Add(r(7), r(7), rt0)
	b.Ld(r(6), r(7), 0) // v = vals[m]
	EmitCompute(b, 24)
	EmitLocalWork(b, priv, 48) // per-body local work (position integration)
	// cell = v & 7; cellAddr = cellBase + cell*32
	b.Andi(r(8), r(6), ncells-1)
	b.Slli(r(8), r(8), 5)
	b.Li(rt0, int64(cellBase))
	b.Add(r(8), r(8), rt0)
	EmitLockReg(b, r(8))
	b.Ld(r(9), r(8), 8) // count
	b.Addi(r(9), r(9), 1)
	b.St(r(9), r(8), 8)
	b.Ld(r(9), r(8), 16) // sum
	b.Add(r(9), r(9), r(6))
	b.St(r(9), r(8), 16)
	EmitUnlockReg(b, r(8))
	b.Addi(r(19), r(19), 1)
	b.Bne(r(19), r(21), "body1")
	EmitBarrier(b, bar)
	// Phase 2: force[m] = vals[m] + sum over all cells of (count + sum).
	b.Li(r(19), 0)
	b.Label("body2")
	b.Li(r(18), perCore)
	b.Mul(r(18), RegTID, r(18))
	b.Add(r(18), r(18), r(19))
	EmitCompute(b, 24)
	EmitLocalWork(b, priv, 48) // per-body local work (force integration)
	b.Li(r(6), 0)
	b.Li(r(4), 0)
	b.Label("cells")
	b.Slli(r(8), r(4), 5)
	b.Li(rt0, int64(cellBase))
	b.Add(r(8), r(8), rt0)
	b.Ld(r(9), r(8), 8)
	b.Add(r(6), r(6), r(9))
	b.Ld(r(9), r(8), 16)
	b.Add(r(6), r(6), r(9))
	b.Addi(r(4), r(4), 1)
	b.Li(r(9), ncells)
	b.Bne(r(4), r(9), "cells")
	b.Slli(r(7), r(18), 3)
	b.Li(rt0, int64(vals))
	b.Add(r(7), r(7), rt0)
	b.Ld(r(9), r(7), 0)
	b.Add(r(6), r(6), r(9))
	b.Slli(r(7), r(18), 3)
	b.Li(rt0, int64(force))
	b.Add(r(7), r(7), rt0)
	b.St(r(6), r(7), 0)
	b.Addi(r(19), r(19), 1)
	b.Bne(r(19), r(21), "body2")
	b.Halt()

	init := make(map[uint64]uint64)
	bodyVal := make([]uint64, bodies)
	for m := int64(0); m < bodies; m++ {
		bodyVal[m] = uint64(m*11%97 + 1)
		init[vals+uint64(m)*8] = bodyVal[m]
	}
	var cellCount, cellSum [ncells]uint64
	for _, v := range bodyVal {
		c := v & (ncells - 1)
		cellCount[c]++
		cellSum[c] += v
	}
	var total uint64
	for c := 0; c < ncells; c++ {
		total += cellCount[c] + cellSum[c]
	}
	check := func(mem map[uint64]uint64) error {
		for c := 0; c < ncells; c++ {
			a := cellBase + uint64(c)*32
			if err := expect(mem, a+8, cellCount[c], "barnes cell count"); err != nil {
				return err
			}
			if err := expect(mem, a+16, cellSum[c], "barnes cell sum"); err != nil {
				return err
			}
		}
		for m := int64(0); m < bodies; m++ {
			if err := expect(mem, force+uint64(m)*8, total+bodyVal[m], "barnes force"); err != nil {
				return err
			}
		}
		return nil
	}
	return Workload{Name: "barnes", Progs: spmd(cores, b.MustBuild()), InitMem: init, Check: check}
}

// taskQueueKernel is the shared skeleton: fetch tasks from an atomic
// counter; per task, read `reads` words from a read-only table with a
// task-dependent stride and write a result slot; optionally update a
// locked shared accumulator.
func taskQueueKernel(name string, cores, scale int, tableWords, reads int64,
	lockedAccums int64) Workload {
	ntasks := int64(cores) * 4 * int64(scale)
	lay := NewLayout()
	counter := lay.AllocWords(1)
	table := lay.AllocWords(uint64(tableWords))
	results := lay.AllocWords(uint64(ntasks) * 4) // line-padded result slots
	scratch := lay.AllocWords(uint64(cores) * 16) // private per-thread accumulators
	priv := lay.AllocWords(uint64(cores) * 64)    // private working set
	var accBase uint64
	if lockedAccums > 0 {
		accBase = lay.Alloc(uint64(lockedAccums) * 32) // lock + value per line
	}

	r := isa.R
	b := isa.NewBuilder(name)
	b.Li(r(3), ntasks)
	emitFetchTask(b, counter, r(4), r(3), "fetch", "done")
	// acc = sum_{j<reads} table[(t*9 + j) mod tableWords]
	b.Li(r(6), 0)
	b.Li(r(5), 0)
	b.Label("read")
	b.Li(r(7), 9)
	b.Mul(r(7), r(4), r(7))
	b.Add(r(7), r(7), r(5))
	b.Andi(r(7), r(7), tableWords-1) // tableWords is a power of two
	b.Slli(r(7), r(7), 3)
	b.Li(rt0, int64(table))
	b.Add(r(7), r(7), rt0)
	b.Ld(r(8), r(7), 0)
	b.Add(r(6), r(6), r(8))
	// Store-dense private accumulation, as real task bodies write
	// intermediate results: scratch[tid*16 + (j&15)] += value.
	b.Andi(r(10), r(5), 15)
	b.Li(r(11), 16)
	b.Mul(r(11), RegTID, r(11))
	b.Add(r(10), r(10), r(11))
	b.Slli(r(10), r(10), 3)
	b.Li(rt0, int64(scratch))
	b.Add(r(10), r(10), rt0)
	b.Ld(r(11), r(10), 0)
	b.Add(r(11), r(11), r(8))
	b.St(r(11), r(10), 0)
	b.Addi(r(5), r(5), 1)
	b.Li(r(8), reads)
	b.Bne(r(5), r(8), "read")
	// Private compute and private-memory traffic dominating the task
	// body, as in the real codes.
	EmitCompute(b, 96)
	EmitLocalWork(b, priv, 160)
	// results[t] = acc + t (slots line-padded against false sharing)
	b.Add(r(6), r(6), r(4))
	b.Slli(r(7), r(4), 5)
	b.Li(rt0, int64(results))
	b.Add(r(7), r(7), rt0)
	b.St(r(6), r(7), 0)
	if lockedAccums > 0 {
		// accum[t mod lockedAccums] += t + 1, under that slot's lock.
		b.Andi(r(8), r(4), lockedAccums-1)
		b.Slli(r(8), r(8), 5)
		b.Li(rt0, int64(accBase))
		b.Add(r(8), r(8), rt0)
		EmitLockReg(b, r(8))
		b.Ld(r(9), r(8), 8)
		b.Add(r(9), r(9), r(4))
		b.Addi(r(9), r(9), 1)
		b.St(r(9), r(8), 8)
		EmitUnlockReg(b, r(8))
	}
	b.Jmp("fetch")
	b.Label("done")
	b.Halt()

	init := make(map[uint64]uint64)
	tbl := make([]uint64, tableWords)
	for i := range tbl {
		tbl[i] = uint64(i*7 + 3)
		init[table+uint64(i)*8] = tbl[i]
	}
	check := func(mem map[uint64]uint64) error {
		accWant := make([]uint64, max64(lockedAccums, 1))
		for t := int64(0); t < ntasks; t++ {
			var sum uint64
			for j := int64(0); j < reads; j++ {
				sum += tbl[(t*9+j)&(tableWords-1)]
			}
			if err := expect(mem, results+uint64(t)*32, sum+uint64(t), name+" result"); err != nil {
				return err
			}
			if lockedAccums > 0 {
				accWant[t&(lockedAccums-1)] += uint64(t) + 1
			}
		}
		if lockedAccums > 0 {
			for a := int64(0); a < lockedAccums; a++ {
				if err := expect(mem, accBase+uint64(a)*32+8, accWant[a], name+" accum"); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return Workload{Name: name, Progs: spmd(cores, b.MustBuild()), InitMem: init, Check: check}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Cholesky: task queue over column updates with locked column
// accumulators (moderate lock contention, modest read set).
func Cholesky(cores, scale int) Workload {
	return taskQueueKernel("cholesky", cores, scale, 32, 8, 4)
}

// Raytrace: work queue over a larger read-only scene; no locks beyond
// the queue itself.
func Raytrace(cores, scale int) Workload {
	return taskQueueKernel("raytrace", cores, scale, 64, 16, 0)
}

// Radiosity: task queue whose tasks hammer a few locked patch
// accumulators (high lock contention).
func Radiosity(cores, scale int) Workload {
	return taskQueueKernel("radiosity", cores, scale, 16, 4, 8)
}

// Volrend: work counter over a read-only volume with long strides and
// purely private output (lowest sharing).
func Volrend(cores, scale int) Workload {
	return taskQueueKernel("volrend", cores, scale, 128, 24, 0)
}

// Radix: the SPLASH-2 radix sort's communication pattern: private
// histograms, atomic global histogram accumulation, a serial prefix
// phase, then an atomic-cursor scatter permutation.
func Radix(cores, scale int) Workload {
	perCore := int64(16 * scale)
	keys := int64(cores) * perCore
	const buckets = 16
	lay := NewLayout()
	bar := lay.Barrier()
	keyBase := lay.AllocWords(uint64(keys))
	lhist := lay.AllocWords(uint64(int64(cores) * buckets))
	cursor := lay.AllocWords(buckets)
	myCursor := lay.AllocWords(uint64(int64(cores) * buckets))
	out := lay.AllocWords(uint64(keys))
	priv := lay.AllocWords(uint64(cores) * 64)

	r := isa.R
	b := isa.NewBuilder("radix")
	b.Li(r(21), perCore)
	// Phase 1: private histogram of my keys.
	b.Li(r(19), 0)
	b.Label("hist")
	b.Li(r(18), perCore)
	b.Mul(r(18), RegTID, r(18))
	b.Add(r(18), r(18), r(19))
	b.Slli(r(7), r(18), 3)
	b.Li(rt0, int64(keyBase))
	b.Add(r(7), r(7), rt0)
	b.Ld(r(6), r(7), 0)
	EmitLocalWork(b, priv, 32) // digit extraction / local work
	b.Andi(r(6), r(6), buckets-1)
	// lhist[tid*buckets + digit]++
	b.Li(r(8), buckets)
	b.Mul(r(8), RegTID, r(8))
	b.Add(r(8), r(8), r(6))
	b.Slli(r(8), r(8), 3)
	b.Li(rt0, int64(lhist))
	b.Add(r(8), r(8), rt0)
	b.Ld(r(9), r(8), 0)
	b.Addi(r(9), r(9), 1)
	b.St(r(9), r(8), 0)
	b.Addi(r(19), r(19), 1)
	b.Bne(r(19), r(21), "hist")
	EmitBarrier(b, bar)
	// Phase 2: thread 0 computes bucket start cursors serially.
	b.Bne(RegTID, r(0), "skipprefix")
	b.Li(r(5), 0) // bucket
	b.Li(r(6), 0) // running total
	b.Label("pfxb")
	b.Slli(r(7), r(5), 3)
	b.Li(rt0, int64(cursor))
	b.Add(r(7), r(7), rt0)
	b.St(r(6), r(7), 0) // cursor[b] = total
	b.Li(r(4), 0)       // thread
	b.Label("pfxt")
	b.Li(r(8), buckets)
	b.Mul(r(8), r(4), r(8))
	b.Add(r(8), r(8), r(5))
	b.Slli(r(8), r(8), 3)
	b.Li(rt0, int64(lhist))
	b.Add(r(8), r(8), rt0)
	b.Ld(r(9), r(8), 0)
	b.Add(r(6), r(6), r(9))
	b.Addi(r(4), r(4), 1)
	b.Bne(r(4), RegNCores, "pfxt")
	b.Addi(r(5), r(5), 1)
	b.Li(r(8), buckets)
	b.Bne(r(5), r(8), "pfxb")
	b.Label("skipprefix")
	EmitBarrier(b, bar)
	// Phase 3: compute my private per-bucket cursors: myCursor[b] =
	// globalStart[b] + sum of earlier threads' histograms for b (the
	// real SPLASH-2 radix rank computation; no atomics needed).
	b.Li(r(5), 0) // bucket
	b.Label("rankb")
	b.Slli(r(7), r(5), 3)
	b.Li(rt0, int64(cursor))
	b.Add(r(7), r(7), rt0)
	b.Ld(r(6), r(7), 0) // global start
	b.Li(r(4), 0)       // earlier threads
	b.Label("rankt")
	b.Bge(r(4), RegTID, "rankdone")
	b.Li(r(8), buckets)
	b.Mul(r(8), r(4), r(8))
	b.Add(r(8), r(8), r(5))
	b.Slli(r(8), r(8), 3)
	b.Li(rt0, int64(lhist))
	b.Add(r(8), r(8), rt0)
	b.Ld(r(9), r(8), 0)
	b.Add(r(6), r(6), r(9))
	b.Addi(r(4), r(4), 1)
	b.Jmp("rankt")
	b.Label("rankdone")
	// myCursor[tid*buckets + b] = r6 (private slice of a padded array)
	b.Li(r(8), buckets)
	b.Mul(r(8), RegTID, r(8))
	b.Add(r(8), r(8), r(5))
	b.Slli(r(8), r(8), 3)
	b.Li(rt0, int64(myCursor))
	b.Add(r(8), r(8), rt0)
	b.St(r(6), r(8), 0)
	b.Addi(r(5), r(5), 1)
	b.Li(r(8), buckets)
	b.Bne(r(5), r(8), "rankb")
	// Scatter my keys at exactly-known positions.
	b.Li(r(19), 0)
	b.Label("scatter")
	b.Li(r(18), perCore)
	b.Mul(r(18), RegTID, r(18))
	b.Add(r(18), r(18), r(19))
	b.Slli(r(7), r(18), 3)
	b.Li(rt0, int64(keyBase))
	b.Add(r(7), r(7), rt0)
	b.Ld(r(6), r(7), 0) // key
	EmitLocalWork(b, priv, 32)
	b.Andi(r(8), r(6), buckets-1)
	// pos = myCursor[tid*buckets+digit]++
	b.Li(r(9), buckets)
	b.Mul(r(9), RegTID, r(9))
	b.Add(r(9), r(9), r(8))
	b.Slli(r(9), r(9), 3)
	b.Li(rt0, int64(myCursor))
	b.Add(r(9), r(9), rt0)
	b.Ld(r(8), r(9), 0)
	b.Addi(r(10), r(8), 1)
	b.St(r(10), r(9), 0)
	b.Slli(r(8), r(8), 3)
	b.Li(rt0, int64(out))
	b.Add(r(8), r(8), rt0)
	b.St(r(6), r(8), 0)
	b.Addi(r(19), r(19), 1)
	b.Bne(r(19), r(21), "scatter")
	b.Halt()

	init := make(map[uint64]uint64)
	keyVals := make([]uint64, keys)
	var hist [buckets]uint64
	for i := int64(0); i < keys; i++ {
		keyVals[i] = uint64((i*2654435761+12345)%4096) + 1
		init[keyBase+uint64(i)*8] = keyVals[i]
		hist[keyVals[i]&(buckets-1)]++
	}
	var starts [buckets + 1]uint64
	for bkt := 0; bkt < buckets; bkt++ {
		starts[bkt+1] = starts[bkt] + hist[bkt]
	}
	// The rank computation makes output positions exact: keys of one
	// bucket appear grouped by owning thread, in each thread's key order.
	wantOut := make([]uint64, keys)
	cursors := make([]uint64, buckets)
	copy(cursors, starts[:buckets])
	for t := int64(0); t < int64(cores); t++ {
		for i := int64(0); i < perCore; i++ {
			k := keyVals[t*perCore+i]
			d := k & (buckets - 1)
			wantOut[cursors[d]] = k
			cursors[d]++
		}
	}
	check := func(mem map[uint64]uint64) error {
		for i := int64(0); i < keys; i++ {
			if err := expect(mem, out+uint64(i)*8, wantOut[i], "radix out"); err != nil {
				return err
			}
		}
		return nil
	}
	return Workload{Name: "radix", Progs: spmd(cores, b.MustBuild()), InitMem: init, Check: check}
}
