package workload

import (
	"fmt"
	"sort"

	"relaxreplay/internal/isa"
)

// Workload is a ready-to-record multithreaded program: one program per
// core (SPMD — all cores run the same code, parameterized by the
// preloaded core-id register), initial memory, optional input streams,
// and an optional correctness oracle over the final memory image.
type Workload struct {
	Name    string
	Progs   []isa.Program
	Inputs  [][]uint64
	InitMem map[uint64]uint64
	Check   func(mem map[uint64]uint64) error
}

// spmd replicates one program across all cores.
func spmd(cores int, p isa.Program) []isa.Program {
	out := make([]isa.Program, cores)
	for i := range out {
		out[i] = p
	}
	return out
}

// Kernel is a named workload generator. Scale controls problem size;
// scale 1 targets tens of thousands of instructions across 8 cores so
// the full evaluation stays fast.
type Kernel struct {
	Name        string
	Description string
	Build       func(cores, scale int) Workload
}

// Kernels returns the SPLASH-2 analog suite in the paper's order.
func Kernels() []Kernel {
	ks := []Kernel{
		{"barnes", "tree build with per-cell locks, then read-mostly force pass", Barnes},
		{"cholesky", "task queue over column updates with per-column locks", Cholesky},
		{"fft", "barrier-phased all-to-all transpose reduction", FFT},
		{"fmm", "irregular neighbor reads with barrier-phased steps", FMM},
		{"lu", "owner-computes pivot column broadcast with barriers", LU},
		{"ocean", "row-partitioned stencil with neighbor boundary sharing", Ocean},
		{"ocean-nc", "non-contiguous ocean: round-robin rows, all boundaries shared", OceanNC},
		{"radiosity", "task queue with lock-protected patch accumulators", Radiosity},
		{"radix", "histogram + atomic scatter permutation sort", Radix},
		{"raytrace", "work queue over a read-only scene", Raytrace},
		{"volrend", "work counter over read-only volume, private output", Volrend},
		{"water", "per-step local compute with locked neighbor accumulation", Water},
		{"water-sp", "water with spatial-cell neighbor scatter", WaterSp},
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].Name < ks[j].Name })
	return ks
}

// ByName looks up a kernel.
func ByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("workload: unknown kernel %q", name)
}

// expect formats a mismatch error for Check oracles.
func expect(mem map[uint64]uint64, addr, want uint64, what string) error {
	if got := mem[addr]; got != want {
		return fmt.Errorf("workload: %s: mem[%#x] = %d, want %d", what, addr, got, want)
	}
	return nil
}
