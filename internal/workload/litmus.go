package workload

import (
	"fmt"

	"relaxreplay/internal/isa"
)

// Litmus tests: the classic relaxed-memory shapes. Each two-to-four
// thread test writes its observed registers to distinct result words,
// and Outcome extracts them. They demonstrate (and let tests assert)
// that the simulated RC machine really reorders accesses — and that
// RelaxReplay reproduces whichever outcome was recorded.

// Litmus is a named litmus workload plus the result addresses.
type Litmus struct {
	Workload
	ResultAddrs []uint64
	// Allowed are the architecturally-allowed outcomes under RC (for
	// documentation and assertions; SC would forbid some of them).
	Allowed [][]uint64
	// SCForbidden is an outcome RC permits but SC forbids, when the
	// test has one.
	SCForbidden []uint64
}

// Outcome extracts the observed result vector from a final memory image.
func (l *Litmus) Outcome(mem map[uint64]uint64) []uint64 {
	out := make([]uint64, len(l.ResultAddrs))
	for i, a := range l.ResultAddrs {
		out[i] = mem[a]
	}
	return out
}

// StoreBuffering: Dekker's pattern. Under RC both loads may bypass the
// stores and read 0,0 — impossible under SC.
func StoreBuffering() Litmus {
	lay := NewLayout()
	x := lay.AllocWords(1)
	y := lay.AllocWords(1)
	r0 := lay.AllocWords(1)
	r1 := lay.AllocWords(1)
	mk := func(name string, mine, other, res uint64) isa.Program {
		b := isa.NewBuilder(name)
		b.Li(isa.R(3), int64(mine))
		b.Li(isa.R(4), int64(other))
		b.Li(isa.R(5), 1)
		b.St(isa.R(5), isa.R(3), 0)
		b.Ld(isa.R(6), isa.R(4), 0)
		b.Li(isa.R(7), int64(res))
		b.Addi(isa.R(6), isa.R(6), 1) // bias so "read 0" is distinguishable
		b.St(isa.R(6), isa.R(7), 0)
		b.Halt()
		return b.MustBuild()
	}
	return Litmus{
		Workload: Workload{
			Name:  "sb",
			Progs: []isa.Program{mk("sb0", x, y, r0), mk("sb1", y, x, r1)},
		},
		ResultAddrs: []uint64{r0, r1},
		Allowed:     [][]uint64{{1, 1}, {1, 2}, {2, 1}, {2, 2}},
		SCForbidden: []uint64{1, 1},
	}
}

// MessagePassing without ordering: the consumer may observe the flag
// before the data under RC. With acquire/release (ordered=true) the
// stale-data outcome is forbidden.
func MessagePassing(ordered bool) Litmus {
	lay := NewLayout()
	data := lay.AllocWords(1)
	flag := lay.AllocWords(1)
	r0 := lay.AllocWords(1)
	name := "mp"
	if ordered {
		name = "mp+acqrel"
	}

	p := isa.NewBuilder(name + "-producer")
	p.Li(isa.R(3), int64(data))
	p.Li(isa.R(4), int64(flag))
	p.Li(isa.R(5), 42)
	p.St(isa.R(5), isa.R(3), 0)
	p.Li(isa.R(6), 1)
	if ordered {
		p.StRel(isa.R(6), isa.R(4), 0)
	} else {
		p.St(isa.R(6), isa.R(4), 0)
	}
	p.Halt()

	c := isa.NewBuilder(name + "-consumer")
	c.Li(isa.R(3), int64(data))
	c.Li(isa.R(4), int64(flag))
	c.Label("spin")
	if ordered {
		c.LdAcq(isa.R(5), isa.R(4), 0)
	} else {
		c.Ld(isa.R(5), isa.R(4), 0)
	}
	c.Beq(isa.R(5), isa.R(0), "spin")
	c.Ld(isa.R(6), isa.R(3), 0)
	c.Li(isa.R(7), int64(r0))
	c.St(isa.R(6), isa.R(7), 0)
	c.Halt()

	allowed := [][]uint64{{42}}
	if !ordered {
		allowed = append(allowed, []uint64{0})
	}
	return Litmus{
		Workload: Workload{
			Name:  name,
			Progs: []isa.Program{p.MustBuild(), c.MustBuild()},
		},
		ResultAddrs: []uint64{r0},
		Allowed:     allowed,
	}
}

// CoRR: coherence read-read — two loads of the same location by one
// thread must not observe values in reverse write order. All models
// (including RC) require this; the oracle asserts it.
func CoRR() Litmus {
	lay := NewLayout()
	x := lay.AllocWords(1)
	r0 := lay.AllocWords(1)
	r1 := lay.AllocWords(1)

	w := isa.NewBuilder("corr-writer")
	w.Li(isa.R(3), int64(x))
	w.Li(isa.R(4), 1)
	w.St(isa.R(4), isa.R(3), 0)
	w.Li(isa.R(4), 2)
	w.St(isa.R(4), isa.R(3), 0)
	w.Halt()

	rd := isa.NewBuilder("corr-reader")
	rd.Li(isa.R(3), int64(x))
	rd.Ld(isa.R(5), isa.R(3), 0)
	rd.Ld(isa.R(6), isa.R(3), 0)
	rd.Li(isa.R(7), int64(r0))
	rd.St(isa.R(5), isa.R(7), 0)
	rd.Li(isa.R(7), int64(r1))
	rd.St(isa.R(6), isa.R(7), 0)
	rd.Halt()

	check := func(mem map[uint64]uint64) error {
		a, b := mem[r0], mem[r1]
		if a > b {
			return fmt.Errorf("workload: CoRR violated: read %d then %d", a, b)
		}
		return nil
	}
	return Litmus{
		Workload: Workload{
			Name:  "corr",
			Progs: []isa.Program{w.MustBuild(), rd.MustBuild()},
			Check: check,
		},
		ResultAddrs: []uint64{r0, r1},
		Allowed:     [][]uint64{{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}},
	}
}

// IRIW: independent reads of independent writes. Cores 0 and 1 write x
// and y; cores 2 and 3 each read both in opposite orders (separated by
// fences so the reads stay ordered). The outcome where the readers
// disagree about the write order — r2 sees x before y while r3 sees y
// before x — requires non-atomic writes; coherence substrates with
// write atomicity (ours, and everything RelaxReplay supports) forbid it.
func IRIW() Litmus {
	lay := NewLayout()
	x := lay.AllocWords(1)
	y := lay.AllocWords(1)
	res := lay.AllocWords(4) // r2: saw-x, saw-y; r3: saw-y, saw-x

	writer := func(name string, addr uint64) isa.Program {
		b := isa.NewBuilder(name)
		b.Li(isa.R(3), int64(addr))
		b.Li(isa.R(4), 1)
		b.St(isa.R(4), isa.R(3), 0)
		b.Halt()
		return b.MustBuild()
	}
	reader := func(name string, first, second uint64, resBase uint64) isa.Program {
		b := isa.NewBuilder(name)
		b.Li(isa.R(3), int64(first))
		b.Li(isa.R(4), int64(second))
		b.Ld(isa.R(5), isa.R(3), 0)
		b.Fence()
		b.Ld(isa.R(6), isa.R(4), 0)
		b.Li(isa.R(7), int64(resBase))
		b.St(isa.R(5), isa.R(7), 0)
		b.St(isa.R(6), isa.R(7), 8)
		b.Halt()
		return b.MustBuild()
	}
	check := func(mem map[uint64]uint64) error {
		// Forbidden: reader2 saw x=1 then y=0 AND reader3 saw y=1 then x=0.
		if mem[res] == 1 && mem[res+8] == 0 && mem[res+16] == 1 && mem[res+24] == 0 {
			return fmt.Errorf("workload: IRIW: write atomicity violated (readers disagree on write order)")
		}
		return nil
	}
	return Litmus{
		Workload: Workload{
			Name: "iriw",
			Progs: []isa.Program{
				writer("iriw-wx", x), writer("iriw-wy", y),
				reader("iriw-r2", x, y, res), reader("iriw-r3", y, x, res+16),
			},
			Check: check,
		},
		ResultAddrs: []uint64{res, res + 8, res + 16, res + 24},
		Allowed: [][]uint64{
			{0, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}, {0, 0, 1, 1},
			{0, 1, 0, 0}, {0, 1, 0, 1}, {0, 1, 1, 0}, {0, 1, 1, 1},
			{1, 0, 0, 0}, {1, 0, 0, 1}, {1, 0, 1, 1},
			{1, 1, 0, 0}, {1, 1, 0, 1}, {1, 1, 1, 0}, {1, 1, 1, 1},
		},
	}
}

// WRC: write-to-read causality. Core 0 writes data; core 1 reads it
// and (release-)publishes a flag; core 2 acquires the flag and must
// then see the data — causality through two cores, guaranteed by write
// atomicity plus acquire/release.
func WRC() Litmus {
	lay := NewLayout()
	data := lay.AllocWords(1)
	flag := lay.AllocWords(1)
	res := lay.AllocWords(1)

	p0 := isa.NewBuilder("wrc-w")
	p0.Li(isa.R(3), int64(data))
	p0.Li(isa.R(4), 1)
	p0.St(isa.R(4), isa.R(3), 0)
	p0.Halt()

	p1 := isa.NewBuilder("wrc-fwd")
	p1.Li(isa.R(3), int64(data))
	p1.Li(isa.R(4), int64(flag))
	p1.Label("spin")
	p1.Ld(isa.R(5), isa.R(3), 0)
	p1.Beq(isa.R(5), isa.R(0), "spin")
	p1.Li(isa.R(6), 1)
	p1.StRel(isa.R(6), isa.R(4), 0)
	p1.Halt()

	p2 := isa.NewBuilder("wrc-r")
	p2.Li(isa.R(3), int64(data))
	p2.Li(isa.R(4), int64(flag))
	p2.Label("spin")
	p2.LdAcq(isa.R(5), isa.R(4), 0)
	p2.Beq(isa.R(5), isa.R(0), "spin")
	p2.Ld(isa.R(6), isa.R(3), 0)
	p2.Li(isa.R(7), int64(res))
	p2.St(isa.R(6), isa.R(7), 0)
	p2.Halt()

	check := func(mem map[uint64]uint64) error {
		if mem[res] != 1 {
			return fmt.Errorf("workload: WRC: causality violated (read %d, want 1)", mem[res])
		}
		return nil
	}
	return Litmus{
		Workload: Workload{
			Name:  "wrc",
			Progs: []isa.Program{p0.MustBuild(), p1.MustBuild(), p2.MustBuild()},
			Check: check,
		},
		ResultAddrs: []uint64{res},
		Allowed:     [][]uint64{{1}},
	}
}

// AllLitmus returns the litmus suite.
func AllLitmus() []Litmus {
	return []Litmus{
		StoreBuffering(), MessagePassing(false), MessagePassing(true),
		CoRR(), IRIW(), WRC(),
	}
}
