package workload

import (
	"testing"

	"relaxreplay/internal/machine"
)

// runKernel executes a workload on the simulated multicore and applies
// its oracle. These tests double as whole-simulator validation: every
// kernel's final memory must match its sequential Go model exactly.
func runKernel(t *testing.T, w Workload) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig(len(w.Progs))
	cfg.MaxCycles = 50_000_000
	m := machine.New(cfg, w.Progs, nil)
	m.InitMemory(w.InitMem)
	for i, in := range w.Inputs {
		m.SetInputs(i, in)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if w.Check != nil {
		if err := w.Check(m.FinalMemory()); err != nil {
			t.Fatalf("%s oracle: %v", w.Name, err)
		}
	}
	return m
}

func TestAllKernelsPassOracles(t *testing.T) {
	for _, k := range Kernels() {
		for _, cores := range []int{2, 4} {
			k := k
			t.Run(k.Name, func(t *testing.T) {
				runKernel(t, k.Build(cores, 1))
			})
		}
	}
}

func TestKernelsAt8CoresScale2(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			runKernel(t, k.Build(8, 2))
		})
	}
}

func TestKernelRegistry(t *testing.T) {
	ks := Kernels()
	if len(ks) != 13 {
		t.Fatalf("expected 13 kernels, got %d", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k.Name] {
			t.Fatalf("duplicate kernel %q", k.Name)
		}
		seen[k.Name] = true
		if k.Description == "" || k.Build == nil {
			t.Fatalf("kernel %q incomplete", k.Name)
		}
		w := k.Build(2, 1)
		if len(w.Progs) != 2 || w.Check == nil {
			t.Fatalf("kernel %q built a bad workload", k.Name)
		}
	}
	if _, err := ByName("fft"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestLayoutSeparation(t *testing.T) {
	l := NewLayout()
	a := l.Lock()
	b := l.Barrier()
	c := l.AllocWords(3)
	d := l.Alloc(1)
	if a/32 == b/32 || b/32 == c/32 || c/32 == d/32 && c+24 > d {
		t.Fatalf("allocations share lines: %#x %#x %#x %#x", a, b, c, d)
	}
	if d%32 != 0 {
		t.Fatalf("alloc not line aligned: %#x", d)
	}
}

func TestKernelsAreDeterministic(t *testing.T) {
	w1 := Radix(4, 1)
	w2 := Radix(4, 1)
	if len(w1.Progs[0].Code) != len(w2.Progs[0].Code) {
		t.Fatal("kernel build not deterministic")
	}
	for i := range w1.Progs[0].Code {
		if w1.Progs[0].Code[i] != w2.Progs[0].Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}
