package workload

import (
	"fmt"
	"testing"
)

func outcomeAllowed(l *Litmus, got []uint64) bool {
	for _, a := range l.Allowed {
		match := true
		for i := range a {
			if a[i] != got[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestLitmusOutcomesAllowed(t *testing.T) {
	for _, l := range AllLitmus() {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			m := runKernel(t, l.Workload)
			got := l.Outcome(m.FinalMemory())
			if !outcomeAllowed(&l, got) {
				t.Fatalf("%s: outcome %v not in allowed set %v", l.Name, got, l.Allowed)
			}
		})
	}
}

func TestStoreBufferingShowsNonSCOutcome(t *testing.T) {
	// With symmetric timing both stores sit in write buffers while the
	// loads perform: the SC-forbidden outcome appears.
	l := StoreBuffering()
	m := runKernel(t, l.Workload)
	got := l.Outcome(m.FinalMemory())
	if fmt.Sprint(got) != fmt.Sprint(l.SCForbidden) {
		t.Fatalf("expected the SC-forbidden outcome %v, got %v", l.SCForbidden, got)
	}
}

func TestOrderedMessagePassingNeverStale(t *testing.T) {
	l := MessagePassing(true)
	m := runKernel(t, l.Workload)
	if got := l.Outcome(m.FinalMemory()); got[0] != 42 {
		t.Fatalf("acquire/release MP read stale data: %v", got)
	}
}
