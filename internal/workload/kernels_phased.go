package workload

import (
	"fmt"

	"relaxreplay/internal/isa"
)

// Barrier-phased kernels: fft, lu, ocean, fmm, water. These reproduce
// the bulk-synchronous SPLASH-2 applications: local compute phases
// separated by barriers, with cross-thread reads of data produced by
// other threads in the previous phase. All are deterministic, so each
// carries an exact Go oracle over the final memory image.

// emitAddr2D computes dst = base + (row*stride + idx)*8.
// It clobbers dst and rt0; row and idx are preserved.
func emitAddr2D(b *isa.Builder, dst, row, idx isa.Reg, base uint64, stride int64) {
	b.Li(dst, stride)
	b.Mul(dst, row, dst)
	b.Add(dst, dst, idx)
	b.Slli(dst, dst, 3)
	b.Li(rt0, int64(base))
	b.Add(dst, dst, rt0)
}

// FFT: phase 1 scales each thread's row locally; phase 2 is the
// transpose: every thread reads a column across all other threads'
// rows — the all-to-all communication at the heart of FFT.
func FFT(cores, scale int) Workload {
	W := int64(32 * scale)
	lay := NewLayout()
	bar := lay.Barrier()
	data := lay.AllocWords(uint64(cores) * uint64(W))
	out := lay.AllocWords(uint64(cores) * uint64(W))

	r := isa.R
	b := isa.NewBuilder("fft")
	b.Li(r(3), W)
	// Phase 1: four local butterfly-like passes over my own row.
	b.Li(r(12), 0)
	b.Label("pass")
	b.Li(r(4), 0)
	b.Label("p1")
	emitAddr2D(b, r(7), RegTID, r(4), data, W)
	b.Ld(r(8), r(7), 0)
	b.Li(r(9), 3)
	b.Mul(r(8), r(8), r(9))
	b.Add(r(8), r(8), r(4))
	b.St(r(8), r(7), 0)
	b.Addi(r(4), r(4), 1)
	b.Bne(r(4), r(3), "p1")
	b.Addi(r(12), r(12), 1)
	b.Li(r(13), 4)
	b.Bne(r(12), r(13), "pass")
	EmitBarrier(b, bar)
	// Phase 2: out[t][i] = sum_s data[s][i] + t.
	b.Li(r(4), 0)
	b.Label("p2i")
	b.Li(r(6), 0)
	b.Li(r(5), 0)
	b.Label("p2s")
	emitAddr2D(b, r(7), r(5), r(4), data, W)
	b.Ld(r(8), r(7), 0)
	b.Add(r(6), r(6), r(8))
	b.Addi(r(5), r(5), 1)
	b.Bne(r(5), RegNCores, "p2s")
	b.Add(r(6), r(6), RegTID)
	emitAddr2D(b, r(7), RegTID, r(4), out, W)
	b.St(r(6), r(7), 0)
	b.Addi(r(4), r(4), 1)
	b.Bne(r(4), r(3), "p2i")
	EmitBarrier(b, bar)
	b.Halt()

	init := make(map[uint64]uint64)
	for s := 0; s < cores; s++ {
		for i := int64(0); i < W; i++ {
			init[data+uint64(int64(s)*W+i)*8] = uint64(s*100) + uint64(i) + 1
		}
	}
	check := func(mem map[uint64]uint64) error {
		for t := 0; t < cores; t++ {
			for i := int64(0); i < W; i++ {
				var sum uint64
				for s := 0; s < cores; s++ {
					v := uint64(s*100) + uint64(i) + 1
					for p := 0; p < 4; p++ {
						v = v*3 + uint64(i)
					}
					sum += v
				}
				if err := expect(mem, out+uint64(int64(t)*W+i)*8, sum+uint64(t), "fft out"); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return Workload{Name: "fft", Progs: spmd(cores, b.MustBuild()), InitMem: init, Check: check}
}

// LU: owner-computes pivot-column update broadcast to every thread's
// own columns, with two barriers per elimination step.
func LU(cores, scale int) Workload {
	ncols := int64(2 * cores)
	L := int64(32 * scale)
	lay := NewLayout()
	bar := lay.Barrier()
	cols := lay.AllocWords(uint64(ncols * L))

	r := isa.R
	b := isa.NewBuilder("lu")
	b.Li(r(3), ncols)
	b.Li(r(10), L)
	b.Li(r(4), 0)  // k
	b.Li(r(11), 0) // k mod ncores
	b.Label("kloop")
	b.Bne(r(11), RegTID, "skip_pivot")
	b.Li(r(6), 0)
	b.Label("pj")
	emitAddr2D(b, r(7), r(4), r(6), cols, L)
	b.Ld(r(8), r(7), 0)
	b.Slli(r(8), r(8), 1)
	b.Addi(r(8), r(8), 1)
	b.St(r(8), r(7), 0)
	b.Addi(r(6), r(6), 1)
	b.Bne(r(6), r(10), "pj")
	b.Label("skip_pivot")
	EmitBarrier(b, bar)
	// Update my columns c in (k, ncols).
	b.Addi(r(5), r(4), 1)   // c
	b.Addi(r(13), r(11), 1) // c mod ncores
	b.Bne(r(13), RegNCores, "nw0")
	b.Mov(r(13), r(0))
	b.Label("nw0")
	b.Label("cloop")
	b.Bge(r(5), r(3), "cdone")
	b.Bne(r(13), RegTID, "cnext")
	b.Li(r(6), 0)
	b.Label("uj")
	emitAddr2D(b, r(7), r(4), r(6), cols, L)
	b.Ld(r(8), r(7), 0)
	emitAddr2D(b, r(7), r(5), r(6), cols, L)
	b.Ld(r(9), r(7), 0)
	b.Add(r(9), r(9), r(8))
	b.St(r(9), r(7), 0)
	b.Addi(r(6), r(6), 1)
	b.Bne(r(6), r(10), "uj")
	b.Label("cnext")
	b.Addi(r(5), r(5), 1)
	b.Addi(r(13), r(13), 1)
	b.Bne(r(13), RegNCores, "nw1")
	b.Mov(r(13), r(0))
	b.Label("nw1")
	b.Jmp("cloop")
	b.Label("cdone")
	EmitBarrier(b, bar)
	b.Addi(r(4), r(4), 1)
	b.Addi(r(11), r(11), 1)
	b.Bne(r(11), RegNCores, "nw2")
	b.Mov(r(11), r(0))
	b.Label("nw2")
	b.Bne(r(4), r(3), "kloop")
	b.Halt()

	init := make(map[uint64]uint64)
	model := make([]uint64, ncols*L)
	for c := int64(0); c < ncols; c++ {
		for j := int64(0); j < L; j++ {
			v := uint64(c*13 + j + 1)
			init[cols+uint64(c*L+j)*8] = v
			model[c*L+j] = v
		}
	}
	// Oracle: run the elimination sequentially.
	for k := int64(0); k < ncols; k++ {
		for j := int64(0); j < L; j++ {
			model[k*L+j] = model[k*L+j]*2 + 1
		}
		for c := k + 1; c < ncols; c++ {
			for j := int64(0); j < L; j++ {
				model[c*L+j] += model[k*L+j]
			}
		}
	}
	check := func(mem map[uint64]uint64) error {
		for i, want := range model {
			if err := expect(mem, cols+uint64(i)*8, want, "lu col"); err != nil {
				return err
			}
		}
		return nil
	}
	return Workload{Name: "lu", Progs: spmd(cores, b.MustBuild()), InitMem: init, Check: check}
}

// Ocean: a row-partitioned 1D stencil iterated over barrier-separated
// timesteps; each thread reads its neighbors' boundary rows.
func Ocean(cores, scale int) Workload {
	return oceanKernel(cores, scale, false)
}

// oceanKernel builds the stencil with blocked (contiguous) or
// round-robin (non-contiguous) row ownership.
func oceanKernel(cores, scale int, roundRobin bool) Workload {
	rows := int64(2 * cores)
	W := int64(64)
	steps := int64(scale)
	lay := NewLayout()
	bar := lay.Barrier()
	gridA := lay.AllocWords(uint64(rows * W))
	gridB := lay.AllocWords(uint64(rows * W))
	priv := lay.AllocWords(uint64(cores) * 64)

	r := isa.R
	b := isa.NewBuilder("ocean")
	b.Li(r(14), int64(gridA)) // src
	b.Li(r(15), int64(gridB)) // dst
	b.Li(r(16), steps)
	b.Li(r(17), 0) // step
	b.Li(r(21), W)
	b.Li(r(22), rows)
	b.Label("step")
	b.Li(r(19), 0) // row offset 0..1
	b.Label("rowloop")
	if roundRobin {
		b.Li(r(18), int64(cores))
		b.Mul(r(18), r(19), r(18))
		b.Add(r(18), r(18), RegTID) // r = off*cores + tid
	} else {
		b.Slli(r(18), RegTID, 1)
		b.Add(r(18), r(18), r(19)) // r = 2*tid + off
	}
	b.Li(r(4), 0) // i
	b.Label("iloop")
	// sum = src[r][i] + 1
	b.Li(r(7), W)
	b.Mul(r(7), r(18), r(7))
	b.Add(r(7), r(7), r(4))
	b.Slli(r(7), r(7), 3)
	b.Add(r(7), r(7), r(14))
	b.Ld(r(6), r(7), 0)
	b.Addi(r(6), r(6), 1)
	EmitLocalWork(b, priv, 12) // per-point relaxation arithmetic
	// + src[r-1][i] when r > 0 (one row back = W words back)
	b.Beq(r(18), r(0), "noup")
	b.Li(r(9), W*8)
	b.Sub(r(9), r(7), r(9))
	b.Ld(r(8), r(9), 0)
	b.Add(r(6), r(6), r(8))
	b.Label("noup")
	// + src[r+1][i] when r < rows-1
	b.Addi(r(9), r(18), 1)
	b.Beq(r(9), r(22), "nodown")
	b.Li(r(9), W*8)
	b.Add(r(9), r(7), r(9))
	b.Ld(r(8), r(9), 0)
	b.Add(r(6), r(6), r(8))
	b.Label("nodown")
	// dst[r][i] = sum (same offset, other grid)
	b.Sub(r(7), r(7), r(14))
	b.Add(r(7), r(7), r(15))
	b.St(r(6), r(7), 0)
	b.Addi(r(4), r(4), 1)
	b.Bne(r(4), r(21), "iloop")
	b.Addi(r(19), r(19), 1)
	b.Li(r(9), 2)
	b.Bne(r(19), r(9), "rowloop")
	EmitBarrier(b, bar)
	// Swap src/dst.
	b.Mov(r(20), r(14))
	b.Mov(r(14), r(15))
	b.Mov(r(15), r(20))
	b.Addi(r(17), r(17), 1)
	b.Bne(r(17), r(16), "step")
	b.Halt()

	init := make(map[uint64]uint64)
	model := make([]uint64, rows*W)
	for i := range model {
		model[i] = uint64(i%17) + 1
		init[gridA+uint64(i)*8] = model[i]
	}
	// Oracle.
	next := make([]uint64, rows*W)
	src := model
	for s := int64(0); s < steps; s++ {
		for row := int64(0); row < rows; row++ {
			for i := int64(0); i < W; i++ {
				sum := src[row*W+i] + 1
				if row > 0 {
					sum += src[(row-1)*W+i]
				}
				if row < rows-1 {
					sum += src[(row+1)*W+i]
				}
				next[row*W+i] = sum
			}
		}
		src, next = next, src
	}
	finalBase := gridA
	if steps%2 == 1 {
		finalBase = gridB
	}
	check := func(mem map[uint64]uint64) error {
		for i, want := range src {
			if err := expect(mem, finalBase+uint64(i)*8, want, "ocean grid"); err != nil {
				return err
			}
		}
		return nil
	}
	return Workload{Name: "ocean", Progs: spmd(cores, b.MustBuild()), InitMem: init, Check: check}
}

// FMM: irregular neighbor interactions — each cell reads three
// scattered neighbor cells through an index table each timestep.
func FMM(cores, scale int) Workload {
	perCore := int64(4)
	cells := int64(cores) * perCore
	steps := int64(2 * scale)
	lay := NewLayout()
	bar := lay.Barrier()
	valA := lay.AllocWords(uint64(cells) * 4) // one line per cell
	valB := lay.AllocWords(uint64(cells) * 4)
	nbrs := lay.AllocWords(uint64(cells * 3))
	priv := lay.AllocWords(uint64(cores) * 64)

	nbrOf := func(c, j int64) int64 {
		switch j {
		case 0:
			return (c*7 + 1) % cells
		case 1:
			return (c*3 + 2) % cells
		default:
			return (c + cells - 1) % cells
		}
	}

	r := isa.R
	b := isa.NewBuilder("fmm")
	b.Li(r(14), int64(valA))
	b.Li(r(15), int64(valB))
	b.Li(r(16), steps)
	b.Li(r(17), 0)
	b.Li(r(21), perCore)
	b.Label("step")
	b.Li(r(19), 0) // cell offset within my range
	b.Label("cell")
	b.Li(r(18), perCore)
	b.Mul(r(18), RegTID, r(18))
	b.Add(r(18), r(18), r(19)) // c
	EmitCompute(b, 64)
	EmitLocalWork(b, priv, 96) // per-cell multipole arithmetic
	// acc = src[c]
	b.Slli(r(7), r(18), 5)
	b.Add(r(7), r(7), r(14))
	b.Ld(r(6), r(7), 0)
	// + src[nbr[c][j]] for j in 0..3
	b.Li(r(4), 0)
	b.Label("nbr")
	b.Li(r(8), 3)
	b.Mul(r(8), r(18), r(8))
	b.Add(r(8), r(8), r(4))
	b.Slli(r(8), r(8), 3)
	b.Li(rt0, int64(nbrs))
	b.Add(r(8), r(8), rt0)
	b.Ld(r(9), r(8), 0) // neighbor index
	b.Slli(r(9), r(9), 5)
	b.Add(r(9), r(9), r(14))
	b.Ld(r(8), r(9), 0)
	b.Add(r(6), r(6), r(8))
	b.Addi(r(4), r(4), 1)
	b.Li(r(9), 3)
	b.Bne(r(4), r(9), "nbr")
	// dst[c] = acc
	b.Slli(r(7), r(18), 5)
	b.Add(r(7), r(7), r(15))
	b.St(r(6), r(7), 0)
	b.Addi(r(19), r(19), 1)
	b.Bne(r(19), r(21), "cell")
	EmitBarrier(b, bar)
	b.Mov(r(20), r(14))
	b.Mov(r(14), r(15))
	b.Mov(r(15), r(20))
	b.Addi(r(17), r(17), 1)
	b.Bne(r(17), r(16), "step")
	b.Halt()

	init := make(map[uint64]uint64)
	model := make([]uint64, cells)
	for c := int64(0); c < cells; c++ {
		model[c] = uint64(c*c + 5)
		init[valA+uint64(c)*32] = model[c]
		for j := int64(0); j < 3; j++ {
			init[nbrs+uint64(c*3+j)*8] = uint64(nbrOf(c, j))
		}
	}
	next := make([]uint64, cells)
	src := model
	for s := int64(0); s < steps; s++ {
		for c := int64(0); c < cells; c++ {
			acc := src[c]
			for j := int64(0); j < 3; j++ {
				acc += src[nbrOf(c, j)]
			}
			next[c] = acc
		}
		src, next = next, src
	}
	finalBase := valA
	if steps%2 == 1 {
		finalBase = valB
	}
	check := func(mem map[uint64]uint64) error {
		for c, want := range src {
			if err := expect(mem, finalBase+uint64(c)*32, want, "fmm cell"); err != nil {
				return err
			}
		}
		return nil
	}
	return Workload{Name: "fmm", Progs: spmd(cores, b.MustBuild()), InitMem: init, Check: check}
}

// Water: per-step local molecule updates plus a lock-protected global
// energy accumulation and single-writer neighbor scatter.
func Water(cores, scale int) Workload {
	return waterKernel(cores, scale, false)
}

// waterKernel builds the molecule kernel; spatial selects the
// water-spatial neighbor mapping (stride by a cell width) instead of
// the next-molecule mapping. Both are bijections, so each accumulator
// slot keeps a single writer.
func waterKernel(cores, scale int, spatial bool) Workload {
	perCore := int64(8)
	mols := int64(cores) * perCore
	steps := int64(scale + 1)
	lay := NewLayout()
	bar := lay.Barrier()
	elock := lay.Lock()
	energy := lay.AllocWords(1)
	vals := lay.AllocWords(uint64(mols))
	acc := lay.AllocWords(uint64(mols) * 4) // line-padded
	pos := lay.AllocWords(uint64(mols) * 4) // per-molecule state vector
	priv := lay.AllocWords(uint64(cores) * 64)

	r := isa.R
	b := isa.NewBuilder("water")
	b.Li(r(16), steps)
	b.Li(r(17), 0)
	b.Li(r(21), perCore)
	b.Li(r(22), mols)
	b.Label("step")
	b.Li(r(10), 0) // local energy accumulator for this step
	b.Li(r(19), 0)
	b.Label("mol")
	b.Li(r(18), perCore)
	b.Mul(r(18), RegTID, r(18))
	b.Add(r(18), r(18), r(19)) // m
	// v = vals[m]*2 + m; vals[m] = v
	b.Slli(r(7), r(18), 3)
	b.Li(rt0, int64(vals))
	b.Add(r(7), r(7), rt0)
	b.Ld(r(6), r(7), 0)
	b.Slli(r(6), r(6), 1)
	b.Add(r(6), r(6), r(18))
	b.St(r(6), r(7), 0)
	EmitCompute(b, 32)
	EmitLocalWork(b, priv, 48) // intra-molecule force arithmetic
	// Update the molecule's private state vector (store-dense compute).
	b.Slli(r(8), r(18), 5) // m*4 words = m*32 bytes
	b.Li(rt0, int64(pos))
	b.Add(r(8), r(8), rt0)
	b.Li(r(4), 0)
	b.Label("posk")
	b.Ld(r(9), r(8), 0)
	b.Slli(r(9), r(9), 1)
	b.Add(r(9), r(9), r(6))
	b.St(r(9), r(8), 0)
	b.Addi(r(8), r(8), 8)
	b.Addi(r(4), r(4), 1)
	b.Li(r(9), 4)
	b.Bne(r(4), r(9), "posk")
	b.Add(r(10), r(10), r(6)) // defer the global reduction to step end
	// acc[neighbor(m)] += v (a bijection: single writer per slot).
	if spatial {
		b.Addi(r(8), r(18), 5) // stride by the spatial cell width
	} else {
		b.Addi(r(8), r(18), 1)
	}
	b.Blt(r(8), r(22), "nowrap")
	b.Sub(r(8), r(8), r(22))
	b.Label("nowrap")
	b.Slli(r(8), r(8), 5)
	b.Li(rt0, int64(acc))
	b.Add(r(8), r(8), rt0)
	b.Ld(r(9), r(8), 0)
	b.Add(r(9), r(9), r(6))
	b.St(r(9), r(8), 0)
	b.Addi(r(19), r(19), 1)
	b.Bne(r(19), r(21), "mol")
	// Global energy reduction: once per thread per step, under a lock.
	EmitLock(b, elock)
	b.Li(r(8), int64(energy))
	b.Ld(r(9), r(8), 0)
	b.Add(r(9), r(9), r(10))
	b.St(r(9), r(8), 0)
	EmitUnlock(b, elock)
	EmitBarrier(b, bar)
	b.Addi(r(17), r(17), 1)
	b.Bne(r(17), r(16), "step")
	b.Halt()

	init := make(map[uint64]uint64)
	model := make([]uint64, mols)
	for m := int64(0); m < mols; m++ {
		model[m] = uint64(m%9 + 1)
		init[vals+uint64(m)*8] = model[m]
	}
	var wantEnergy uint64
	wantAcc := make([]uint64, mols)
	wantPos := make([]uint64, mols*4)
	for s := int64(0); s < steps; s++ {
		for m := int64(0); m < mols; m++ {
			v := model[m]*2 + uint64(m)
			model[m] = v
			for k := int64(0); k < 4; k++ {
				wantPos[m*4+k] = wantPos[m*4+k]*2 + v
			}
			wantEnergy += v
			nbr := (m + 1) % mols
			if spatial {
				nbr = (m + 5) % mols
			}
			wantAcc[nbr] += v
		}
	}
	check := func(mem map[uint64]uint64) error {
		if err := expect(mem, energy, wantEnergy, "water energy"); err != nil {
			return err
		}
		for m := int64(0); m < mols; m++ {
			if err := expect(mem, vals+uint64(m)*8, model[m], "water val"); err != nil {
				return err
			}
			if err := expect(mem, acc+uint64(m)*32, wantAcc[m], "water acc"); err != nil {
				return err
			}
			for k := int64(0); k < 4; k++ {
				if err := expect(mem, pos+uint64(m*4+k)*8, wantPos[m*4+k], "water pos"); err != nil {
					return err
				}
			}
		}
		if got := mem[elock]; got != 0 {
			return fmt.Errorf("workload: water: energy lock left held")
		}
		return nil
	}
	return Workload{Name: "water", Progs: spmd(cores, b.MustBuild()), InitMem: init, Check: check}
}

// OceanNC is the non-contiguous ocean variant: rows are assigned
// round-robin instead of in blocks, so every row boundary is shared
// between different threads — the layout the SPLASH-2 paper uses to
// show partitioning effects on communication.
func OceanNC(cores, scale int) Workload {
	w := oceanKernel(cores, scale, true)
	w.Name = "ocean-nc"
	return w
}

// WaterSp is the water-spatial variant: the neighbor-scatter target is
// the molecule's spatial cell neighbor (a strided mapping) rather than
// the next molecule, spreading the single-writer slots differently
// across lines.
func WaterSp(cores, scale int) Workload {
	w := waterKernel(cores, scale, true)
	w.Name = "water-sp"
	return w
}
