package workload

import (
	"fmt"
	"testing"

	"relaxreplay/internal/isa"
)

// TestBarrierRounds: every thread increments a per-round slot between
// barriers; a barrier bug (a thread racing a round ahead) would let
// increments from different rounds interleave and corrupt the counts.
func TestBarrierRounds(t *testing.T) {
	const cores, rounds = 4, 6
	lay := NewLayout()
	bar := lay.Barrier()
	slots := lay.AllocWords(rounds)

	b := isa.NewBuilder("barrier-rounds")
	b.Li(isa.R(3), 0) // round
	b.Li(isa.R(4), rounds)
	b.Label("round")
	// slot[round] += 1 + current value of slot[round-1]*0 (read it to
	// create cross-round visibility requirements).
	b.Slli(isa.R(7), isa.R(3), 3)
	b.Li(isa.R(8), int64(slots))
	b.Add(isa.R(7), isa.R(7), isa.R(8))
	EmitLock(b, lay.next+0x100) // a scratch lock far from other data
	b.Ld(isa.R(9), isa.R(7), 0)
	b.Addi(isa.R(9), isa.R(9), 1)
	b.St(isa.R(9), isa.R(7), 0)
	EmitUnlock(b, lay.next+0x100)
	EmitBarrier(b, bar)
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Bne(isa.R(3), isa.R(4), "round")
	b.Halt()

	w := Workload{Name: "barrier-rounds", Progs: spmd(cores, b.MustBuild())}
	m := runKernel(t, w)
	for r := 0; r < rounds; r++ {
		if got := m.FinalMemory()[slots+uint64(r)*8]; got != cores {
			t.Fatalf("round %d slot = %d, want %d", r, got, cores)
		}
	}
}

// TestLockMutualExclusion: unprotected read-modify-write under the
// runtime lock must never lose updates, at any contention level.
func TestLockMutualExclusion(t *testing.T) {
	for _, cores := range []int{2, 4, 8} {
		t.Run(fmt.Sprint(cores), func(t *testing.T) {
			const iters = 20
			lay := NewLayout()
			lock := lay.Lock()
			ctr := lay.AllocWords(1)
			b := isa.NewBuilder("mutex")
			b.Li(isa.R(3), 0)
			b.Li(isa.R(4), iters)
			b.Label("loop")
			EmitLock(b, lock)
			b.Li(isa.R(7), int64(ctr))
			b.Ld(isa.R(8), isa.R(7), 0)
			b.Addi(isa.R(8), isa.R(8), 1)
			b.St(isa.R(8), isa.R(7), 0)
			EmitUnlock(b, lock)
			b.Addi(isa.R(3), isa.R(3), 1)
			b.Bne(isa.R(3), isa.R(4), "loop")
			b.Halt()
			m := runKernel(t, Workload{Name: "mutex", Progs: spmd(cores, b.MustBuild())})
			if got := m.FinalMemory()[ctr]; got != uint64(cores*iters) {
				t.Fatalf("counter = %d, want %d", got, cores*iters)
			}
			if got := m.FinalMemory()[lock]; got != 0 {
				t.Fatalf("lock left held: %d", got)
			}
		})
	}
}

// TestLockRegMutualExclusion exercises the register-addressed variant.
func TestLockRegMutualExclusion(t *testing.T) {
	lay := NewLayout()
	lockBase := lay.Alloc(4 * 32) // 4 line-separated locks
	ctrs := lay.AllocWords(4)
	b := isa.NewBuilder("mutexreg")
	b.Li(isa.R(3), 0)
	b.Li(isa.R(4), 16)
	b.Label("loop")
	b.Andi(isa.R(5), isa.R(3), 3) // lock index
	b.Slli(isa.R(6), isa.R(5), 5)
	b.Li(isa.R(7), int64(lockBase))
	b.Add(isa.R(6), isa.R(6), isa.R(7))
	EmitLockReg(b, isa.R(6))
	b.Slli(isa.R(8), isa.R(5), 3)
	b.Li(isa.R(7), int64(ctrs))
	b.Add(isa.R(8), isa.R(8), isa.R(7))
	b.Ld(isa.R(9), isa.R(8), 0)
	b.Addi(isa.R(9), isa.R(9), 1)
	b.St(isa.R(9), isa.R(8), 0)
	EmitUnlockReg(b, isa.R(6))
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Bne(isa.R(3), isa.R(4), "loop")
	b.Halt()
	m := runKernel(t, Workload{Name: "mutexreg", Progs: spmd(3, b.MustBuild())})
	var total uint64
	for i := 0; i < 4; i++ {
		total += m.FinalMemory()[ctrs+uint64(i)*8]
	}
	if total != 3*16 {
		t.Fatalf("total = %d, want 48", total)
	}
}

// TestEmitLocalWorkIsPrivate: two cores running local work must not
// disturb each other's slices.
func TestEmitLocalWorkIsPrivate(t *testing.T) {
	lay := NewLayout()
	priv := lay.AllocWords(2 * 64)
	b := isa.NewBuilder("localwork")
	EmitLocalWork(b, priv, 40)
	b.Halt()
	m := runKernel(t, Workload{Name: "localwork", Progs: spmd(2, b.MustBuild())})
	// Both cores' slices must hold identical values (same program,
	// disjoint memory): compare word for word.
	for w := uint64(0); w < 8; w++ {
		a := m.FinalMemory()[priv+w*8]
		c := m.FinalMemory()[priv+512+w*8]
		if a != c {
			t.Fatalf("word %d: core0=%d core1=%d (interference)", w, a, c)
		}
	}
}

func TestUniqLabelsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		l := uniq("x")
		if seen[l] {
			t.Fatalf("duplicate label %q", l)
		}
		seen[l] = true
	}
}
