// Package workload provides the benchmark programs the evaluation
// runs: a synchronization runtime (spinlocks and sense-reversing
// barriers built from the ISA's atomics and acquire/release
// operations), kernels that reproduce the sharing and synchronization
// patterns of the SPLASH-2 applications the paper evaluates (see
// DESIGN.md for the substitution argument), and the classic
// relaxed-memory litmus tests.
package workload

import (
	"fmt"
	"sync/atomic"

	"relaxreplay/internal/isa"
)

// Register conventions. The machine preloads R1 = core id and
// R2 = core count; the runtime helpers scratch R24-R29 and kernels use
// R3-R23 freely.
const (
	RegTID    = isa.Reg(1)
	RegNCores = isa.Reg(2)

	rt0 = isa.Reg(24)
	rt1 = isa.Reg(25)
	rt2 = isa.Reg(26)
	rt3 = isa.Reg(27)
)

// Layout is a bump allocator for the shared address space, keeping
// unrelated structures on separate cache lines.
type Layout struct{ next uint64 }

// NewLayout starts allocation at a fixed base.
func NewLayout() *Layout { return &Layout{next: 0x1000} }

// Alloc reserves n bytes aligned to a cache line and returns the base.
func (l *Layout) Alloc(n uint64) uint64 {
	const line = 32
	l.next = (l.next + line - 1) &^ (line - 1)
	base := l.next
	l.next += n
	return base
}

// AllocWords reserves n 8-byte words.
func (l *Layout) AllocWords(n uint64) uint64 { return l.Alloc(n * 8) }

// Lock reserves a one-line spinlock and returns its address.
func (l *Layout) Lock() uint64 { return l.Alloc(8) }

// Barrier reserves a barrier (count word + generation word).
func (l *Layout) Barrier() uint64 { return l.Alloc(16) }

// label produces unique labels for inlined runtime code.
var labelCounter atomic.Int64

func uniq(prefix string) string {
	return fmt.Sprintf("%s.%d", prefix, labelCounter.Add(1))
}

// emitBackoff emits a short delay loop used while spinning, so that
// spin-waiting does not hammer the memory system (and does not swamp
// the workload's memory-instruction mix), as real spinlock
// implementations do. Scratches reg.
func emitBackoff(b *isa.Builder, reg isa.Reg, iters int64) {
	top := uniq("bo")
	b.Li(reg, iters)
	b.Label(top)
	b.Addi(reg, reg, -1)
	b.Bne(reg, isa.R(0), top)
}

// EmitLock emits a test-and-test-and-set acquisition (with backoff) of
// the spinlock at address lock. Scratches rt0-rt3.
func EmitLock(b *isa.Builder, lock uint64) {
	top := uniq("lk")
	retry := uniq("lk.retry")
	b.Li(rt2, int64(lock))
	b.Jmp(top)
	b.Label(retry)
	emitBackoff(b, rt3, 12)
	b.Label(top)
	b.Ld(rt0, rt2, 0) // test before test-and-set
	b.Bne(rt0, isa.R(0), retry)
	b.Li(rt1, 1)
	b.Mov(rt0, isa.R(0))
	b.Cas(rt0, rt1, rt2, 0, isa.FlagAcquire)
	b.Bne(rt0, isa.R(0), retry)
}

// EmitUnlock emits the release of the spinlock at address lock.
func EmitUnlock(b *isa.Builder, lock uint64) {
	b.Li(rt2, int64(lock))
	b.StRel(isa.R(0), rt2, 0)
}

// EmitBarrier emits a centralized sense-reversing barrier over the
// two-word barrier at address bar (count at +0, generation at +8).
// Scratches rt0-rt3.
func EmitBarrier(b *isa.Builder, bar uint64) {
	wait := uniq("bar.wait")
	spin := uniq("bar.spin")
	done := uniq("bar.done")
	b.Li(rt3, int64(bar))
	b.Ld(rt2, rt3, 8) // my generation (ordered before the add: the
	// atomic executes non-speculatively at the ROB head)
	b.Li(rt0, 1)
	b.AmoAdd(rt1, rt0, rt3, 0, isa.FlagAcquire|isa.FlagRelease)
	b.Addi(rt1, rt1, 1)
	b.Bne(rt1, RegNCores, wait)
	// Last arriver: reset the count, then publish the new generation.
	b.St(isa.R(0), rt3, 0)
	b.Addi(rt2, rt2, 1)
	b.StRel(rt2, rt3, 8)
	b.Jmp(done)
	b.Label(wait)
	b.Label(spin)
	b.LdAcq(rt0, rt3, 8)
	b.Bne(rt0, rt2, done)
	emitBackoff(b, rt0, 12)
	b.Jmp(spin)
	b.Label(done)
}

// EmitAtomicAdd emits an unconditional fetch-and-add of reg to the
// word at address addr. Scratches rt2.
func EmitAtomicAdd(b *isa.Builder, addr uint64, val isa.Reg, old isa.Reg) {
	b.Li(rt2, int64(addr))
	b.AmoAdd(old, val, rt2, 0, isa.FlagAcquire|isa.FlagRelease)
}

// EmitLockReg acquires the spinlock whose address is in reg addr
// (which must not be rt0, rt1 or rt3). Scratches rt0, rt1 and rt3.
func EmitLockReg(b *isa.Builder, addr isa.Reg) {
	top := uniq("lkr")
	retry := uniq("lkr.retry")
	b.Jmp(top)
	b.Label(retry)
	emitBackoff(b, rt3, 12)
	b.Label(top)
	b.Ld(rt0, addr, 0)
	b.Bne(rt0, isa.R(0), retry)
	b.Li(rt1, 1)
	b.Mov(rt0, isa.R(0))
	b.Cas(rt0, rt1, addr, 0, isa.FlagAcquire)
	b.Bne(rt0, isa.R(0), retry)
}

// EmitUnlockReg releases the spinlock whose address is in reg addr.
func EmitUnlockReg(b *isa.Builder, addr isa.Reg) {
	b.StRel(isa.R(0), addr, 0)
}

// EmitCompute emits a private ALU delay loop of 3*iters instructions,
// standing in for the local computation that dominates real SPLASH-2
// phases between shared-memory interactions. Scratches rt3.
func EmitCompute(b *isa.Builder, iters int64) {
	top := uniq("cmp")
	b.Li(rt3, iters)
	b.Label(top)
	b.Addi(rt3, rt3, -1)
	b.Bne(rt3, isa.R(0), top)
}

// EmitLocalWork emits a private memory-compute loop: iters iterations
// of a load-modify-store over the calling thread's 8-word slice of the
// scratch area at priv (which must hold at least 64*8 bytes per core).
// This models the private-data traffic that dominates real SPLASH-2
// execution between shared-memory interactions; the accesses hit the
// local L1 after warmup and cause no coherence traffic. Each iteration
// is 7 instructions, 2 of them memory accesses. Scratches rt0-rt3.
func EmitLocalWork(b *isa.Builder, priv uint64, iters int64) {
	top := uniq("lw")
	b.Li(rt0, 512)
	b.Mul(rt0, RegTID, rt0)
	b.Li(rt1, int64(priv))
	b.Add(rt0, rt0, rt1) // my private base
	b.Li(rt3, iters)
	b.Label(top)
	b.Andi(rt1, rt3, 7)
	b.Slli(rt1, rt1, 3)
	b.Add(rt1, rt1, rt0)
	b.Ld(rt2, rt1, 0)
	b.Add(rt2, rt2, rt3)
	b.St(rt2, rt1, 0)
	b.Addi(rt3, rt3, -1)
	b.Bne(rt3, isa.R(0), top)
}
