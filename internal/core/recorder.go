// Package core implements RelaxReplay's memory race recorder — the
// paper's primary contribution. One Recorder attaches to each core and
// observes it through the cpu.Hooks interface plus the memory system's
// perform/snoop events. Its centerpiece is the post-completion
// in-order counting step: every memory instruction flows through the
// Tracking Queue (TRAQ) in program order; at the TRAQ head its
// Performance Interval Sequence Number (PISN, stamped when the access
// performed) is compared with the Current Interval Sequence Number
// (CISN). Matching numbers — or, in RelaxReplay_Opt, an unchanged
// Snoop Table count — let the perform event be logically moved to the
// counting point and folded into an InorderBlock; otherwise the access
// is logged as reordered with enough state to replay it (paper §3.3).
//
//rrlint:deterministic
package core

import (
	"fmt"

	"relaxreplay/internal/bloom"
	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/isa"
	"relaxreplay/internal/provenance"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/telemetry"
)

// Variant selects between the paper's two designs.
type Variant uint8

const (
	// Base has no Snoop Table: any access whose perform and counting
	// events fall in different intervals is logged as reordered.
	Base Variant = iota
	// Opt adds the Snoop Table, declaring such an access in order when
	// no conflicting transaction was observed in between.
	Opt
)

func (v Variant) String() string {
	if v == Opt {
		return "opt"
	}
	return "base"
}

// Config holds the recorder parameters (defaults per paper Table 1).
type Config struct {
	Variant Variant

	TRAQSize          int
	MaxIntervalInstrs uint64 // 0 = unbounded (the paper's INF)
	CountPerCycle     int    // TRAQ drain bandwidth
	NMICap            int    // NMI field capacity (4 bits -> 15)

	SnoopArrays  int // Snoop Table geometry (Opt only)
	SnoopEntries int

	// LogBufferBytes models the per-core log buffer (paper Table 1:
	// 8 cache lines); Stats.LogBufferFlushes counts write-backs of a
	// full buffer to memory.
	LogBufferBytes int

	SigArrays int // interval signature geometry
	SigBits   int
	SigSeed   uint64

	// Ordering selects the interval-ordering mechanism paired with
	// RelaxReplay's event tracking (paper §3.6, Figure 7).
	Ordering OrderingScheme

	// UnsafeDisablePinning turns off the same-address pinning
	// soundness fix (DESIGN.md §6) so tests can demonstrate the replay
	// divergence it prevents. Never set in real use.
	UnsafeDisablePinning bool

	// AssumeSC makes the recorder behave like a conventional SC
	// chunk-based recorder (paper §2.2): every access is counted as in
	// order, with no reorder detection at all. Such a log CANNOT
	// faithfully capture relaxed-consistency executions; it exists so
	// the motivation experiment can demonstrate the resulting replay
	// divergence.
	AssumeSC bool

	// Faults, when non-nil, arms the recorder-side fault points — today
	// flush.crash, which makes the session "crash" while flushing one
	// core's log at finalize, losing that stream's tail intervals. Nil
	// keeps recording fully deterministic.
	Faults *faultinject.Injector

	// Telemetry, when non-nil, receives the recorder's counters, the
	// chunk-size/NMI histograms and the interval-lifetime trace events
	// (metric names under "core.", trace category "core"). It observes
	// only: recorded logs are identical with or without it.
	Telemetry *telemetry.Telemetry

	// Provenance, when non-nil, captures the flight-recorder sideband:
	// per-interval termination causes, conflicting line/remote core,
	// reorder instants and occupancy at termination. Like Telemetry it
	// observes only — interval streams are byte-identical with or
	// without it — but the sideband rides into v3 log files.
	Provenance *provenance.Collector
}

// DefaultConfig returns the paper's Table 1 recorder configuration for
// the given variant with 4K-instruction maximum intervals.
func DefaultConfig(v Variant) Config {
	return Config{
		Variant:           v,
		TRAQSize:          176,
		MaxIntervalInstrs: 4096,
		CountPerCycle:     2,
		NMICap:            15,
		SnoopArrays:       2,
		SnoopEntries:      64,
		LogBufferBytes:    8 * 32,
		SigArrays:         bloom.DefaultArrays,
		SigBits:           bloom.DefaultBits,
		SigSeed:           0x5eed,
	}
}

// Validate checks the structural invariants the recorder depends on,
// returning a descriptive error for the first violation. NewRecorder
// and NewSession call it, so a bad Config surfaces as an error instead
// of a runtime panic deep in the pipeline (NMICap = 0, for example,
// used to crash Halted with an integer divide by zero and to wedge
// DispatchInstr's filler-spill loop).
func (c Config) Validate() error {
	switch {
	case c.TRAQSize < 1:
		return fmt.Errorf("core: config: TRAQSize = %d, need at least 1 TRAQ entry", c.TRAQSize)
	case c.CountPerCycle < 1:
		return fmt.Errorf("core: config: CountPerCycle = %d, need at least 1 (TRAQ would never drain)", c.CountPerCycle)
	case c.NMICap < 1:
		return fmt.Errorf("core: config: NMICap = %d, need at least 1 non-memory instruction per NMI field", c.NMICap)
	case c.LogBufferBytes < 0:
		return fmt.Errorf("core: config: LogBufferBytes = %d, must be non-negative", c.LogBufferBytes)
	case c.SigArrays < 1 || c.SigBits < 1:
		return fmt.Errorf("core: config: signature geometry %dx%d bits, need at least 1x1", c.SigArrays, c.SigBits)
	}
	if c.Variant == Opt && (c.SnoopArrays < 1 || c.SnoopEntries < 1) {
		return fmt.Errorf("core: config: Snoop Table geometry %dx%d, Opt needs at least 1x1",
			c.SnoopArrays, c.SnoopEntries)
	}
	return nil
}

// pendingPred is a dependence edge awaiting attachment to its interval.
type pendingPred struct {
	seq  uint64
	pred replaylog.Pred
}

// OrderingScheme names an interval orderer implementation.
type OrderingScheme uint8

const (
	// OrderingQuickRec orders intervals by a globally-consistent
	// physical timestamp (the paper's evaluated configuration).
	OrderingQuickRec OrderingScheme = iota
	// OrderingLamport orders intervals by piggybacked scalar logical
	// clocks (Intel MRR / Cyrus style).
	OrderingLamport
)

func (o OrderingScheme) String() string {
	if o == OrderingLamport {
		return "lamport"
	}
	return "quickrec"
}

type entryKind uint8

const (
	kindLoad entryKind = iota
	kindStore
	kindAtomic
	kindFiller
)

// traqEntry is one TRAQ slot (paper Figure 6(b)).
type traqEntry struct {
	seq  uint64
	kind entryKind
	nmi  int // non-memory instructions preceding this one
	// nmiSeqs are the sequence numbers of those instructions, kept so
	// that a squash of this entry can restore the survivors to the
	// pending list.
	nmiSeqs []uint64

	line uint64
	addr uint64

	loadVal  uint64
	storeVal uint64
	didWrite bool

	pisn      uint64
	performed bool
	snoopCnt  SnoopCount
	// pinned/pinISN forbid the RelaxReplay_Opt move for this entry
	// beyond interval pinISN: a younger same-address store performed
	// in interval pinISN while this access was still waiting to be
	// counted. If this entry were moved into an interval after
	// pinISN while that store is logged reordered (patched to the end
	// of pinISN), the store would overtake this access at replay.
	// See the "same-address pinning" note in DESIGN.md; this is a
	// soundness condition the paper does not discuss, found by
	// systematic replay verification.
	pinned bool
	pinISN uint64
}

// Stats aggregates recorder counters for the evaluation.
type Stats struct {
	Dispatched uint64 // instructions seen (including squashed)
	Counted    uint64 // instructions counted (retired path)
	MemCounted uint64 // memory instructions counted

	ReorderedLoads   uint64
	ReorderedStores  uint64
	ReorderedAtomics uint64
	OptMoves         uint64 // cross-interval moves proven safe by the Snoop Table
	BaseSameInterval uint64 // PISN == CISN at counting
	PinnedReorders   uint64 // moves forbidden by same-address pinning

	Intervals            uint64
	LogBufferFlushes     uint64
	ConflictTerminations uint64
	SizeTerminations     uint64
	InorderBlocks        uint64
	SnoopsObserved       uint64
	TRAQOccupancySum     uint64 // per-cycle sum, for the Figure 12 average
	TRAQSamples          uint64
	TRAQOccupancyHist    [20]uint64 // bins of 10 entries, Figure 12(b)
	TRAQPeak             int
	SquashedEntries      uint64
	DirtyEvictIncrements uint64
}

// Sub returns the counter-wise difference s - o. Both snapshots must
// come from the same recorder with s taken later. TRAQPeak, a running
// maximum rather than an accumulator, subtracts to zero across any
// stretch in which no entry was pushed.
func (s Stats) Sub(o Stats) Stats {
	d := Stats{
		Dispatched:           s.Dispatched - o.Dispatched,
		Counted:              s.Counted - o.Counted,
		MemCounted:           s.MemCounted - o.MemCounted,
		ReorderedLoads:       s.ReorderedLoads - o.ReorderedLoads,
		ReorderedStores:      s.ReorderedStores - o.ReorderedStores,
		ReorderedAtomics:     s.ReorderedAtomics - o.ReorderedAtomics,
		OptMoves:             s.OptMoves - o.OptMoves,
		BaseSameInterval:     s.BaseSameInterval - o.BaseSameInterval,
		PinnedReorders:       s.PinnedReorders - o.PinnedReorders,
		Intervals:            s.Intervals - o.Intervals,
		LogBufferFlushes:     s.LogBufferFlushes - o.LogBufferFlushes,
		ConflictTerminations: s.ConflictTerminations - o.ConflictTerminations,
		SizeTerminations:     s.SizeTerminations - o.SizeTerminations,
		InorderBlocks:        s.InorderBlocks - o.InorderBlocks,
		SnoopsObserved:       s.SnoopsObserved - o.SnoopsObserved,
		TRAQOccupancySum:     s.TRAQOccupancySum - o.TRAQOccupancySum,
		TRAQSamples:          s.TRAQSamples - o.TRAQSamples,
		TRAQPeak:             s.TRAQPeak - o.TRAQPeak,
		SquashedEntries:      s.SquashedEntries - o.SquashedEntries,
		DirtyEvictIncrements: s.DirtyEvictIncrements - o.DirtyEvictIncrements,
	}
	for i := range d.TRAQOccupancyHist {
		d.TRAQOccupancyHist[i] = s.TRAQOccupancyHist[i] - o.TRAQOccupancyHist[i]
	}
	return d
}

// AddScaled adds n copies of the per-cycle delta d to s, mirroring
// cpu.Stats.AddScaled for the session's idle-cycle fast-forward: an
// idle recorder still advances its occupancy statistics every tick,
// and n skipped ticks contribute exactly n deltas. TRAQPeak has a zero
// delta across idle ticks, so scaling leaves the maximum intact.
func (s *Stats) AddScaled(d Stats, n uint64) {
	s.Dispatched += d.Dispatched * n
	s.Counted += d.Counted * n
	s.MemCounted += d.MemCounted * n
	s.ReorderedLoads += d.ReorderedLoads * n
	s.ReorderedStores += d.ReorderedStores * n
	s.ReorderedAtomics += d.ReorderedAtomics * n
	s.OptMoves += d.OptMoves * n
	s.BaseSameInterval += d.BaseSameInterval * n
	s.PinnedReorders += d.PinnedReorders * n
	s.Intervals += d.Intervals * n
	s.LogBufferFlushes += d.LogBufferFlushes * n
	s.ConflictTerminations += d.ConflictTerminations * n
	s.SizeTerminations += d.SizeTerminations * n
	s.InorderBlocks += d.InorderBlocks * n
	s.SnoopsObserved += d.SnoopsObserved * n
	s.TRAQOccupancySum += d.TRAQOccupancySum * n
	s.TRAQSamples += d.TRAQSamples * n
	s.TRAQPeak += d.TRAQPeak * int(n)
	s.SquashedEntries += d.SquashedEntries * n
	s.DirtyEvictIncrements += d.DirtyEvictIncrements * n
	for i := range s.TRAQOccupancyHist {
		s.TRAQOccupancyHist[i] += d.TRAQOccupancyHist[i] * n
	}
}

// recTelem holds the recorder's pre-resolved telemetry handles. The
// zero value (all nil) is the disabled state: every call is a no-op.
type recTelem struct {
	intervals     *telemetry.Counter
	termConflict  *telemetry.Counter
	termSize      *telemetry.Counter
	optMoves      *telemetry.Counter
	pinned        *telemetry.Counter
	sameInterval  *telemetry.Counter
	reordLoads    *telemetry.Counter
	reordStores   *telemetry.Counter
	reordAtomics  *telemetry.Counter
	inorderBlocks *telemetry.Counter
	logFlushes    *telemetry.Counter
	snoopEvicts   *telemetry.Counter
	scReads       *telemetry.Counter
	clockSyncs    *telemetry.Counter

	chunkSize *telemetry.Histogram
	nmiUsage  *telemetry.Histogram
	traqOcc   *telemetry.Histogram

	tracer *telemetry.Tracer // nil unless tracing is on
}

// newRecTelem resolves the recorder-layer metric handles once at
// construction, keeping the counting stage free of name lookups.
func newRecTelem(t *telemetry.Telemetry) recTelem {
	reg := t.Registry()
	if reg == nil {
		return recTelem{}
	}
	rt := recTelem{
		intervals:     reg.Counter("core.intervals"),
		termConflict:  reg.Counter("core.terminations.conflict"),
		termSize:      reg.Counter("core.terminations.size"),
		optMoves:      reg.Counter("core.opt_moves"),
		pinned:        reg.Counter("core.pinned_reorders"),
		sameInterval:  reg.Counter("core.same_interval"),
		reordLoads:    reg.Counter("core.reordered.loads"),
		reordStores:   reg.Counter("core.reordered.stores"),
		reordAtomics:  reg.Counter("core.reordered.atomics"),
		inorderBlocks: reg.Counter("core.inorder_blocks"),
		logFlushes:    reg.Counter("core.log_buffer_flushes"),
		snoopEvicts:   reg.Counter("core.snooptable_evicts"),
		scReads:       reg.Counter("core.sc_field_reads"),
		clockSyncs:    reg.Counter("core.orderer.clock_syncs"),
		chunkSize:     reg.Histogram("core.chunk_size"),
		nmiUsage:      reg.Histogram("core.nmi_usage"),
		traqOcc:       reg.Histogram("core.traq_occupancy"),
	}
	if tr := t.Tracer(); tr != nil && tr.Enabled() {
		rt.tracer = tr
	}
	return rt
}

// Recorder is the per-core Memory Race Recorder.
type Recorder struct {
	core int
	cfg  Config

	orderer Orderer
	snoop   *SnoopTable

	traq    []*traqEntry
	bySeq   map[uint64]*traqEntry
	pending []uint64 // seqs of uncommitted non-memory dispatches
	// freeEntries recycles counted/squashed TRAQ entries (and their
	// nmiSeqs backing arrays): the per-dispatch allocation was a top
	// contributor on the record path's heap profile.
	freeEntries []*traqEntry

	cisn       uint64
	curBlock   uint32
	curCounted uint64 // instructions counted in the current interval

	retiredUpTo uint64 // highest retired sequence number
	anyRetired  bool

	logBufBits int // bits accumulated toward the next buffer flush

	intervals    []replaylog.Interval
	entries      []replaylog.Entry
	pendingPreds []pendingPred
	finalized    bool

	tel recTelem
	// prov captures the provenance sideband; nil (the default) makes
	// every capture call a no-op.
	prov *provenance.CoreRecorder
	// remoteFrom is the requesting core of the coherence transaction
	// currently being observed (-1 outside ObserveRemoteFrom), so a
	// conflict termination can attribute the conflict to its source.
	remoteFrom int
	// intervalStartCycle is the cycle the current interval opened, for
	// the interval-lifetime trace events.
	intervalStartCycle uint64

	Stats Stats
}

// NewRecorder builds a recorder for the given core, rejecting invalid
// configurations (see Config.Validate). A nil orderer selects the
// default QuickRec orderer from cfg's signature geometry.
func NewRecorder(core int, cfg Config, orderer Orderer) (*Recorder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if orderer == nil {
		if cfg.Ordering == OrderingLamport {
			orderer = NewLamportOrderer(cfg.SigArrays, cfg.SigBits, cfg.SigSeed)
		} else {
			orderer = NewQuickRecOrderer(cfg.SigArrays, cfg.SigBits, cfg.SigSeed)
		}
	}
	r := &Recorder{
		core:       core,
		cfg:        cfg,
		orderer:    orderer,
		bySeq:      make(map[uint64]*traqEntry),
		tel:        newRecTelem(cfg.Telemetry),
		prov:       cfg.Provenance.Core(core),
		remoteFrom: -1,
	}
	if cfg.Variant == Opt {
		r.snoop = NewSnoopTable(cfg.SnoopArrays, cfg.SnoopEntries)
	}
	return r, nil
}

// Busy reports whether uncounted work remains in the TRAQ.
func (r *Recorder) Busy() bool { return len(r.traq) > 0 }

// Occupancy returns the current number of TRAQ entries in use.
func (r *Recorder) Occupancy() int { return len(r.traq) }

// DispatchInstr implements cpu.Hooks.DispatchInstr: memory
// instructions allocate a TRAQ entry (stalling dispatch when full);
// non-memory instructions accumulate toward the next entry's NMI
// field, spilling filler entries when they exceed the field's capacity
// (paper §4.1).
//rrlint:hotpath
func (r *Recorder) DispatchInstr(seq uint64, ins isa.Instr) bool {
	if !ins.IsMem() {
		if len(r.pending) >= r.cfg.NMICap {
			if len(r.traq) >= r.cfg.TRAQSize {
				return false
			}
			r.push(r.takeEntry(r.pending[len(r.pending)-1], kindFiller, r.pending))
			r.pending = r.pending[:0]
		}
		r.pending = append(r.pending, seq)
		r.Stats.Dispatched++
		return true
	}
	if len(r.traq) >= r.cfg.TRAQSize {
		return false
	}
	kind := kindLoad
	switch {
	case ins.IsAtomic():
		kind = kindAtomic
	case ins.Op == isa.ST:
		kind = kindStore
	}
	e := r.takeEntry(seq, kind, r.pending)
	r.push(e)
	r.pending = r.pending[:0]
	r.bySeq[seq] = e
	r.Stats.Dispatched++
	return true
}

// takeEntry returns a zeroed TRAQ entry for seq with the pending NMI
// sequence numbers copied in, reusing a drained entry (and its nmiSeqs
// backing array) when one is free.
func (r *Recorder) takeEntry(seq uint64, kind entryKind, nmiSeqs []uint64) *traqEntry {
	n := len(r.freeEntries)
	if n == 0 {
		return &traqEntry{
			seq: seq, kind: kind, nmi: len(nmiSeqs),
			nmiSeqs: append([]uint64(nil), nmiSeqs...),
		}
	}
	e := r.freeEntries[n-1]
	r.freeEntries[n-1] = nil
	r.freeEntries = r.freeEntries[:n-1]
	ns := e.nmiSeqs[:0]
	*e = traqEntry{seq: seq, kind: kind, nmi: len(nmiSeqs)}
	e.nmiSeqs = append(ns, nmiSeqs...)
	return e
}

// freeEntry recycles a TRAQ entry that has left both the queue and the
// bySeq index.
//
//rrlint:hotpath
func (r *Recorder) freeEntry(e *traqEntry) {
	r.freeEntries = append(r.freeEntries, e)
}

// push appends a TRAQ entry; callers have already checked capacity.
//
//rrlint:hotpath
func (r *Recorder) push(e *traqEntry) {
	r.traq = append(r.traq, e)
	if len(r.traq) > r.Stats.TRAQPeak {
		r.Stats.TRAQPeak = len(r.traq)
	}
}

// Perform stamps a TRAQ entry at the access's perform event: the
// current CISN becomes its PISN, the Snoop Table counters are saved,
// the value is retained for possible reordered logging, and the line
// is inserted into the interval signatures (QuickRec inserts at
// perform time).
//
//rrlint:hotpath
//rrlint:shardphase
func (r *Recorder) Perform(seq uint64, addr uint64, isRead, isWrite bool, value, storedVal uint64, didWrite bool) {
	e := r.bySeq[seq]
	if e == nil {
		return // squashed wrong-path access
	}
	line := addr >> 5
	e.performed = true
	e.pisn = r.cisn
	e.addr = addr
	e.line = line
	if isRead {
		e.loadVal = value
	}
	e.storeVal = storedVal
	e.didWrite = didWrite
	if r.snoop != nil {
		e.snoopCnt = r.snoop.Read(line)
		r.tel.scReads.Inc(r.core)
	}
	if isWrite {
		// Pin older uncounted same-address entries: their perform
		// events may not move past this interval (where this store,
		// if logged reordered, will be patched to).
		for _, o := range r.traq {
			if o.seq >= seq {
				break
			}
			if o.kind != kindFiller && o.performed && o.addr == addr && !o.pinned {
				// Keep the EARLIEST pinning store's interval: any
				// later pinning store patches no earlier than it.
				o.pinned = true
				o.pinISN = r.cisn
			}
		}
	}
	r.orderer.NotePerform(line, isRead, isWrite)
}

// RetireInstr implements cpu.Hooks.RetireInstr. Retirement is in
// program order, so a single high-water mark tells whether any
// instruction (and hence any TRAQ entry, including fillers) has
// retired.
//
//rrlint:hotpath
func (r *Recorder) RetireInstr(seq uint64, isMem bool) {
	r.retiredUpTo = seq
	r.anyRetired = true
}

func (r *Recorder) isRetired(seq uint64) bool {
	return r.anyRetired && r.retiredUpTo >= seq
}

// Squash implements cpu.Hooks.Squash: TRAQ entries and pending
// non-memory dispatches from fromSeq on are discarded, mirroring the
// ROB flush (paper §4.1).
func (r *Recorder) Squash(fromSeq uint64) {
	for len(r.pending) > 0 && r.pending[len(r.pending)-1] >= fromSeq {
		r.pending = r.pending[:len(r.pending)-1]
	}
	var restored []uint64
	for len(r.traq) > 0 {
		last := r.traq[len(r.traq)-1]
		if last.seq < fromSeq {
			break
		}
		// Surviving non-memory instructions folded into this entry's
		// NMI field go back to the pending list.
		var keep []uint64
		for _, s := range last.nmiSeqs {
			if s < fromSeq {
				keep = append(keep, s)
			}
		}
		restored = append(keep, restored...)
		delete(r.bySeq, last.seq)
		r.traq[len(r.traq)-1] = nil
		r.traq = r.traq[:len(r.traq)-1]
		r.Stats.SquashedEntries++
		r.freeEntry(last)
	}
	if len(restored) > 0 {
		r.pending = append(restored, r.pending...)
	}
	// If the restore overflowed the NMI capacity, re-spill into filler
	// entries (space exists: the squash just freed TRAQ slots).
	for len(r.pending) > r.cfg.NMICap {
		if len(r.traq) >= r.cfg.TRAQSize {
			panic("core: no TRAQ space to re-spill restored NMI instructions")
		}
		r.push(r.takeEntry(r.pending[r.cfg.NMICap-1], kindFiller, r.pending[:r.cfg.NMICap]))
		r.pending = append(r.pending[:0], r.pending[r.cfg.NMICap:]...)
	}
}

// ObserveRemote handles a coherence transaction from another core: the
// Snoop Table counts it, and a signature conflict terminates the
// current interval. It reports whether a termination happened and the
// sequence number of the terminated interval, which dependence-edge
// recording (parallel replay, paper §5.4) uses.
func (r *Recorder) ObserveRemote(line uint64, isWrite bool, cycle uint64) (terminated bool, seq uint64) {
	r.Stats.SnoopsObserved++
	if r.snoop != nil {
		r.snoop.Observe(line)
	}
	if r.orderer.ConflictsRemote(line, isWrite) {
		r.Stats.ConflictTerminations++
		r.tel.termConflict.Inc(r.core)
		if tr := r.tel.tracer; tr != nil {
			tr.Instant(telemetry.PidRecord, r.core, "core", "conflict-termination", cycle,
				map[string]any{"line": line, "write": isWrite, "cisn": r.cisn})
		}
		seq = r.cisn
		r.prov.NoteConflict(line, isWrite, r.remoteFrom)
		r.terminate(cycle, provenance.CauseConflict)
		return true, seq
	}
	return false, 0
}

// ObserveRemoteFrom is ObserveRemote with the requesting core made
// explicit, so a conflict termination's provenance can name the remote
// core. requester may be -1 when unknown; behavior is otherwise
// identical to ObserveRemote.
func (r *Recorder) ObserveRemoteFrom(line uint64, isWrite bool, requester int, cycle uint64) (terminated bool, seq uint64) {
	r.remoteFrom = requester
	terminated, seq = r.ObserveRemote(line, isWrite, cycle)
	r.remoteFrom = -1
	return terminated, seq
}

// CurrentISN returns the current interval sequence number.
func (r *Recorder) CurrentISN() uint64 { return r.cisn }

// OrdererClock returns the orderer's logical clock, or 0 when the
// orderer is physically timestamped.
func (r *Recorder) OrdererClock() uint64 {
	if c, ok := r.orderer.(interface{ Clock() uint64 }); ok {
		return c.Clock()
	}
	return 0
}

// SyncClock raises a logical-clock orderer to at least hint; no-op for
// physically-timestamped orderers.
func (r *Recorder) SyncClock(hint uint64) {
	if s, ok := r.orderer.(interface{ Sync(uint64) }); ok {
		s.Sync(hint)
		r.tel.clockSyncs.Inc(r.core)
	}
}

// AddPred records a cross-core dependence predecessor for the interval
// with the given sequence number (an extension over the paper's
// QuickRec pairing: explicit edges enable parallel replay à la Cyrus).
// Intervals not yet terminated accumulate their edges lazily.
func (r *Recorder) AddPred(seq uint64, pred replaylog.Pred) {
	r.pendingPreds = append(r.pendingPreds, pendingPred{seq: seq, pred: pred})
}

// DirtyEvict handles a dirty-line writeback at the given cycle. Under
// directory coherence the cache loses the ability to observe
// transactions on the evicted line, so the Snoop Table self-increments
// to conservatively declare in-flight accesses to it reordered (paper
// §4.3). Under the snoopy protocol all transactions remain visible and
// no action is needed.
func (r *Recorder) DirtyEvict(line uint64, directory bool, cycle uint64) {
	if directory && r.snoop != nil {
		r.snoop.Observe(line)
		r.Stats.DirtyEvictIncrements++
		r.tel.snoopEvicts.Inc(r.core)
		if tr := r.tel.tracer; tr != nil {
			tr.Instant(telemetry.PidRecord, r.core, "core", "snooptable-evict", cycle,
				map[string]any{"line": line})
		}
	}
}

// terminate closes the current interval: the running InorderBlock is
// flushed and an IntervalFrame with the orderer's timestamp is logged.
// cause feeds the provenance sideband only.
func (r *Recorder) terminate(cycle uint64, cause provenance.Cause) {
	r.flushBlock()
	if r.prov != nil {
		// Snapshot occupancy only when capture is on: Nonzero walks the
		// Snoop-Table counters and must cost nothing on the default path.
		sn := 0
		if r.snoop != nil {
			sn = r.snoop.Nonzero()
		}
		r.prov.NoteTerminate(r.cisn, cause, len(r.traq), sn, cycle)
	}
	r.tel.chunkSize.Observe(r.core, r.curCounted)
	r.tel.intervals.Inc(r.core)
	if tr := r.tel.tracer; tr != nil {
		tr.Complete(telemetry.PidRecord, r.core, "core", "interval", r.intervalStartCycle, cycle,
			map[string]any{"cisn": r.cisn, "instrs": r.curCounted, "entries": len(r.entries)})
	}
	r.intervals = append(r.intervals, replaylog.Interval{
		Seq:       r.cisn,
		CISN:      uint16(r.cisn),
		Timestamp: r.orderer.Timestamp(cycle),
		Entries:   r.entries,
	})
	// The next interval's entries continue in the spare capacity of the
	// same backing array (the frozen interval's window is never written
	// again; downstream Patch/PatchPartial copy before mutating). A
	// nearly-full chunk starts fresh so tiny appends don't immediately
	// reallocate.
	rest := r.entries[len(r.entries):]
	if cap(rest) < 16 {
		rest = make([]replaylog.Entry, 0, 256)
	}
	r.entries = rest
	r.cisn++
	r.curCounted = 0
	r.intervalStartCycle = cycle
	r.orderer.Reset()
	r.Stats.Intervals++
}

func (r *Recorder) flushBlock() {
	if r.curBlock == 0 {
		return
	}
	r.logEntry(replaylog.Entry{Type: replaylog.InorderBlock, Size: r.curBlock})
	r.Stats.InorderBlocks++
	r.tel.inorderBlocks.Inc(r.core)
	r.curBlock = 0
}

// logEntry appends an entry to the current interval record and models
// the hardware log buffer: a full buffer writes back to memory.
func (r *Recorder) logEntry(e replaylog.Entry) {
	r.entries = append(r.entries, e)
	if r.cfg.LogBufferBytes <= 0 {
		return
	}
	r.logBufBits += e.Bits()
	for r.logBufBits >= r.cfg.LogBufferBytes*8 {
		r.logBufBits -= r.cfg.LogBufferBytes * 8
		r.Stats.LogBufferFlushes++
		r.tel.logFlushes.Inc(r.core)
	}
}

// Tick runs the counting stage: up to CountPerCycle TRAQ entries drain
// from the head once they are both performed and retired, in program
// order. It also samples TRAQ occupancy for Figure 12.
//
//rrlint:hotpath
//rrlint:shardphase
func (r *Recorder) Tick(cycle uint64) {
	r.Stats.TRAQOccupancySum += uint64(len(r.traq))
	r.Stats.TRAQSamples++
	bin := len(r.traq) / 10
	if bin >= len(r.Stats.TRAQOccupancyHist) {
		bin = len(r.Stats.TRAQOccupancyHist) - 1
	}
	r.Stats.TRAQOccupancyHist[bin]++
	r.tel.traqOcc.Observe(r.core, uint64(len(r.traq)))

	// The drained prefix is shifted out after the loop rather than
	// re-sliced away per entry, so the queue keeps its backing array
	// and push stops allocating.
	pop := 0
	for n := 0; n < r.cfg.CountPerCycle && pop < len(r.traq); n++ {
		e := r.traq[pop]
		if e.kind == kindFiller {
			if !r.isRetired(e.seq) {
				break // the filler's instructions have not retired yet
			}
			r.count(e, cycle)
			pop++
			r.freeEntry(e)
			continue
		}
		if !e.performed || !r.isRetired(e.seq) {
			break // counting is in order: wait for the head
		}
		r.count(e, cycle)
		pop++
		delete(r.bySeq, e.seq)
		r.freeEntry(e)
	}
	if pop > 0 {
		m := copy(r.traq, r.traq[pop:])
		clear(r.traq[m:len(r.traq)])
		r.traq = r.traq[:m]
	}
}

// count processes one entry at the TRAQ head (the paper's Counting
// event) and decides in-order vs reordered.
func (r *Recorder) count(e *traqEntry, cycle uint64) {
	if e.kind == kindFiller {
		r.curBlock += uint32(e.nmi)
		r.curCounted += uint64(e.nmi)
		r.Stats.Counted += uint64(e.nmi)
		r.checkSize(cycle)
		return
	}

	r.Stats.Counted += uint64(e.nmi) + 1
	r.Stats.MemCounted++
	r.curCounted += uint64(e.nmi) + 1
	r.tel.nmiUsage.Observe(r.core, uint64(e.nmi))

	inOrder := e.pisn == r.cisn || r.cfg.AssumeSC
	if inOrder {
		r.Stats.BaseSameInterval++
		r.tel.sameInterval.Inc(r.core)
	} else if e.pinned && r.cisn > e.pinISN && !r.cfg.UnsafeDisablePinning {
		r.Stats.PinnedReorders++
		r.tel.pinned.Inc(r.core)
	} else if r.cfg.Variant == Opt && !r.snoop.Conflicts(e.line, e.snoopCnt) {
		// No conflicting transaction observed between perform and
		// counting: move the perform event to the counting point. The
		// access now logically performs in this interval, so its line
		// re-enters the current signatures (paper §4.2).
		inOrder = true
		r.Stats.OptMoves++
		r.tel.optMoves.Inc(r.core)
		r.orderer.NotePerform(e.line, e.kind != kindStore, e.kind != kindLoad)
	}

	if inOrder {
		r.curBlock += uint32(e.nmi) + 1
		r.checkSize(cycle)
		return
	}

	// Reordered: flush the preceding in-order run (including this
	// instruction's NMI prefix) and log a reordered entry.
	r.curBlock += uint32(e.nmi)
	r.flushBlock()
	offset := r.cisn - e.pisn
	if offset > 0xffff {
		// CISN is 16 bits in hardware; structurally impossible here
		// because the TRAQ depth bounds perform-to-count distance, but
		// keep the log well-formed if configs get exotic.
		panic(fmt.Sprintf("core: interval offset %d overflows 16 bits", offset))
	}
	var kind string
	var provKind uint8
	switch e.kind {
	case kindLoad:
		r.logEntry(replaylog.Entry{Type: replaylog.ReorderedLoad, Value: e.loadVal})
		r.Stats.ReorderedLoads++
		r.tel.reordLoads.Inc(r.core)
		kind, provKind = "load", provenance.ReorderLoad
	case kindStore:
		r.logEntry(replaylog.Entry{
			Type: replaylog.ReorderedStore, Addr: e.addr, Value: e.storeVal, Offset: uint16(offset),
		})
		r.Stats.ReorderedStores++
		r.tel.reordStores.Inc(r.core)
		kind, provKind = "store", provenance.ReorderStore
	case kindAtomic:
		r.logEntry(replaylog.Entry{
			Type: replaylog.ReorderedAtomic, Addr: e.addr, Value: e.loadVal,
			StoreValue: e.storeVal, DidWrite: e.didWrite, Offset: uint16(offset),
		})
		r.Stats.ReorderedAtomics++
		r.tel.reordAtomics.Inc(r.core)
		kind, provKind = "atomic", provenance.ReorderAtomic
	}
	r.prov.NoteReorder(provKind, uint16(offset), cycle)
	if tr := r.tel.tracer; tr != nil {
		tr.Instant(telemetry.PidRecord, r.core, "core", "reorder", cycle,
			map[string]any{"kind": kind, "offset": offset, "pisn": e.pisn, "cisn": r.cisn})
	}
	r.checkSize(cycle)
}

func (r *Recorder) checkSize(cycle uint64) {
	if r.cfg.MaxIntervalInstrs > 0 && r.curCounted >= r.cfg.MaxIntervalInstrs {
		r.Stats.SizeTerminations++
		r.terminate(cycle, provenance.CauseSize)
	}
}

// Halted implements cpu.Hooks.Halted. The trailing non-memory
// instructions (tracked in r.pending) are folded into a final
// InorderBlock at Finalize; the argument cross-checks the core's view
// (spilled filler entries account for any difference in multiples of
// the NMI capacity).
func (r *Recorder) Halted(trailingInstrs int) {
	diff := trailingInstrs - len(r.pending)
	if diff < 0 || diff%r.cfg.NMICap != 0 {
		panic(fmt.Sprintf("core %d: recorder sees %d trailing instructions, core retired %d",
			r.core, len(r.pending), trailingInstrs))
	}
}

// Finalize flushes trailing state and returns the core's interval
// stream. The TRAQ must have drained (machine kept ticking until idle).
func (r *Recorder) Finalize(cycle uint64) (replaylog.CoreLog, error) {
	if r.finalized {
		return replaylog.CoreLog{}, fmt.Errorf("core %d: recorder already finalized", r.core)
	}
	if len(r.traq) > 0 {
		return replaylog.CoreLog{}, fmt.Errorf("core %d: %d TRAQ entries never counted", r.core, len(r.traq))
	}
	r.finalized = true
	// Trailing non-memory instructions (including HALT) form the last
	// InorderBlock so the replayer executes through the HALT.
	r.curBlock += uint32(len(r.pending))
	r.curCounted += uint64(len(r.pending))
	r.Stats.Counted += uint64(len(r.pending))
	r.pending = nil
	r.terminate(cycle, provenance.CauseFinal)
	for _, pp := range r.pendingPreds {
		if pp.seq < uint64(len(r.intervals)) {
			iv := &r.intervals[pp.seq]
			iv.Preds = append(iv.Preds, pp.pred)
		}
	}
	return replaylog.CoreLog{Core: r.core, Intervals: r.intervals}, nil
}
