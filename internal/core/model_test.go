package core

import (
	"bytes"
	"math/rand"
	"testing"

	"relaxreplay/internal/isa"
	"relaxreplay/internal/replaylog"
)

// Model-based property test: drive a Recorder with randomized but
// legal hook-event sequences (dispatch in order; perform after
// dispatch; retire in order after perform for loads; squashes from a
// random point; remote snoops at random) and check global invariants:
//
//  1. No panics, ever.
//  2. Every retired instruction is accounted in the log exactly once.
//  3. Reordered entries' offsets stay within the interval count.
//  4. The finalized log validates and patches.
type modelDriver struct {
	rng *rand.Rand
	r   *Recorder

	nextSeq  uint64
	inFlight []modelOp // dispatched, not yet retired/squashed
	retired  uint64
	cycle    uint64
}

type modelOp struct {
	seq       uint64
	ins       isa.Instr
	performed bool
}

func (d *modelDriver) step() {
	d.cycle++
	switch d.rng.Intn(10) {
	case 0, 1, 2: // dispatch a few instructions
		for i := 0; i < d.rng.Intn(4)+1; i++ {
			d.dispatch()
		}
	case 3, 4: // perform the oldest unperformed memory ops
		for i := range d.inFlight {
			op := &d.inFlight[i]
			if op.ins.IsMem() && !op.performed {
				addr := uint64(d.rng.Intn(16)) * 8
				d.r.Perform(op.seq, addr, op.ins.IsLoad(), op.ins.IsStore(),
					d.rng.Uint64()%100, d.rng.Uint64()%100, op.ins.IsStore())
				op.performed = true
				if d.rng.Intn(2) == 0 {
					break
				}
			}
		}
	case 5, 6: // retire the head run if eligible
		for len(d.inFlight) > 0 {
			op := d.inFlight[0]
			if op.ins.IsMem() && !op.performed {
				break
			}
			d.r.RetireInstr(op.seq, op.ins.IsMem())
			d.inFlight = d.inFlight[1:]
			d.retired++
			if d.rng.Intn(3) == 0 {
				break
			}
		}
	case 7: // remote snoop
		d.r.ObserveRemote(uint64(d.rng.Intn(16)), d.rng.Intn(2) == 0, d.cycle)
	case 8: // squash a suffix of the in-flight window
		if len(d.inFlight) > 0 {
			cut := d.rng.Intn(len(d.inFlight))
			d.r.Squash(d.inFlight[cut].seq)
			d.inFlight = d.inFlight[:cut]
		}
	case 9: // counting ticks
		for i := 0; i < d.rng.Intn(4)+1; i++ {
			d.r.Tick(d.cycle)
		}
	}
}

func (d *modelDriver) dispatch() {
	var ins isa.Instr
	switch d.rng.Intn(5) {
	case 0:
		ins = isa.Instr{Op: isa.LD, Rd: 3, Rs1: 1}
	case 1:
		ins = isa.Instr{Op: isa.ST, Rs1: 1, Rs2: 2}
	case 2:
		ins = isa.Instr{Op: isa.AMOADD, Rd: 3, Rs1: 1, Rs2: 2}
	default:
		ins = isa.Instr{Op: isa.ADD, Rd: 3, Rs1: 1, Rs2: 2}
	}
	if !d.r.DispatchInstr(d.nextSeq, ins) {
		return // TRAQ full: retry later
	}
	d.inFlight = append(d.inFlight, modelOp{seq: d.nextSeq, ins: ins})
	d.nextSeq++
}

func (d *modelDriver) finish(t *testing.T) replaylog.CoreLog {
	t.Helper()
	// Drain: perform and retire everything left, then count it all.
	for i := range d.inFlight {
		op := &d.inFlight[i]
		if op.ins.IsMem() && !op.performed {
			d.r.Perform(op.seq, 8, op.ins.IsLoad(), op.ins.IsStore(), 1, 2, op.ins.IsStore())
		}
		d.r.RetireInstr(op.seq, op.ins.IsMem())
		d.retired++
	}
	d.inFlight = nil
	for i := 0; i < 10000 && d.r.Busy(); i++ {
		d.cycle++
		d.r.Tick(d.cycle)
	}
	if d.r.Busy() {
		t.Fatal("TRAQ never drained")
	}
	cl, err := d.r.Finalize(d.cycle)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestRecorderModelProperties(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, variant := range []Variant{Base, Opt} {
			cfg := DefaultConfig(variant)
			cfg.TRAQSize = 16
			cfg.MaxIntervalInstrs = uint64([]int{0, 8, 64}[seed%3])
			d := &modelDriver{rng: rand.New(rand.NewSource(seed)), r: mustRecorder(cfg, nil)}
			for i := 0; i < 600; i++ {
				d.step()
			}
			cl := d.finish(t)

			// Invariant 2: exact instruction accounting.
			var logged uint64
			for i := range cl.Intervals {
				logged += cl.Intervals[i].Instructions()
			}
			if logged != d.retired {
				t.Fatalf("seed %d %v: log accounts %d instructions, retired %d",
					seed, variant, logged, d.retired)
			}

			// Invariants 3 & 4: structurally valid, patchable log.
			log := &replaylog.Log{Cores: 1, Streams: []replaylog.CoreLog{cl},
				Inputs: make([][]uint64, 1), Variant: variant.String()}
			if err := log.Validate(); err != nil {
				t.Fatalf("seed %d %v: %v", seed, variant, err)
			}
			if _, err := log.Patch(); err != nil {
				t.Fatalf("seed %d %v: patch: %v", seed, variant, err)
			}
		}
	}
}

// Fuzz-ish: randomly corrupted serialized logs must error, not panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	cfg := DefaultConfig(Base)
	d := &modelDriver{rng: rand.New(rand.NewSource(7)), r: mustRecorder(cfg, nil)}
	for i := 0; i < 300; i++ {
		d.step()
	}
	cl := d.finish(t)
	log := &replaylog.Log{Cores: 1, Streams: []replaylog.CoreLog{cl}, Inputs: make([][]uint64, 1)}

	var buf bytes.Buffer
	if err := replaylog.Encode(&buf, log); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), data...)
		for k := 0; k < rng.Intn(4)+1; k++ {
			switch rng.Intn(3) {
			case 0: // flip a byte
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			case 1: // truncate
				mut = mut[:rng.Intn(len(mut))]
			case 2: // append junk
				mut = append(mut, byte(rng.Intn(256)))
			}
			if len(mut) == 0 {
				break
			}
		}
		// Must not panic; errors (or a still-valid decode for benign
		// mutations) are both acceptable.
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decode panicked on corrupted input: %v", p)
				}
			}()
			l, err := replaylog.Decode(bytes.NewReader(mut))
			if err == nil {
				_ = l.Validate()
			}
		}()
	}
}
