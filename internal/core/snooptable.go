package core

// SnoopTable is RelaxReplay_Opt's conflict-detection structure (paper
// §4.2, Figure 8): per array, a bank of wrap-around counters indexed
// by a hash of the line address. Every observed coherence transaction
// increments one counter per array; an access whose counters all
// changed between its perform and counting events is declared
// reordered. Using multiple arrays with different hash functions makes
// "only some counters changed" attributable to aliasing, so such
// accesses are safely declared in order.
//
// The structure is conservative: it can only over-report conflicts
// (aliasing false positives), never miss one, as long as the counters
// cannot wrap all the way around between a perform and its counting —
// which the paper's 16-bit sizing guarantees in practice and the TRAQ
// depth bounds structurally.
type SnoopTable struct {
	counters [][]uint16
	seeds    []uint64
}

// SnoopCount is the per-access saved counter vector (the TRAQ entry's
// Snoop Count field, 4 bytes in the paper's 2-array configuration).
type SnoopCount [maxSnoopArrays]uint16

const maxSnoopArrays = 4

// NewSnoopTable builds a table of `arrays` banks of `entries` counters.
func NewSnoopTable(arrays, entries int) *SnoopTable {
	if arrays < 1 || arrays > maxSnoopArrays || entries < 1 || entries&(entries-1) != 0 {
		panic("core: snoop table needs 1..4 arrays and a power-of-two entry count")
	}
	t := &SnoopTable{
		counters: make([][]uint16, arrays),
		seeds:    make([]uint64, arrays),
	}
	for a := range t.counters {
		t.counters[a] = make([]uint16, entries)
		t.seeds[a] = 0x9e3779b97f4a7c15 * uint64(a+1)
	}
	return t
}

func (t *SnoopTable) index(a int, line uint64) int {
	h := (line ^ t.seeds[a]) * 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= t.seeds[a] | 1
	h ^= h >> 29
	return int(h) & (len(t.counters[a]) - 1)
}

// Observe records a coherence transaction on line (incrementing one
// counter per array; wrap-around is fine).
func (t *SnoopTable) Observe(line uint64) {
	for a := range t.counters {
		t.counters[a][t.index(a, line)]++
	}
}

// Read returns the current counter vector for line, saved into the
// TRAQ entry at perform time.
func (t *SnoopTable) Read(line uint64) SnoopCount {
	var c SnoopCount
	for a := range t.counters {
		c[a] = t.counters[a][t.index(a, line)]
	}
	return c
}

// Conflicts reports whether the line may have been the target of a
// transaction since saved was read: true only when every counter
// changed (fewer changes are attributed to aliasing, per the paper).
func (t *SnoopTable) Conflicts(line uint64, saved SnoopCount) bool {
	for a := range t.counters {
		if t.counters[a][t.index(a, line)] == saved[a] {
			return false
		}
	}
	return true
}

// Nonzero counts counters that have observed at least one transaction
// since construction — the occupancy figure the provenance sideband
// snapshots at interval termination. It walks every counter, so it is
// called only when provenance capture is enabled.
func (t *SnoopTable) Nonzero() int {
	n := 0
	for a := range t.counters {
		for _, c := range t.counters[a] {
			if c != 0 {
				n++
			}
		}
	}
	return n
}

// SizeBytes returns the hardware cost of the table.
func (t *SnoopTable) SizeBytes() int {
	n := 0
	for a := range t.counters {
		n += 2 * len(t.counters[a])
	}
	return n
}
