package core

import (
	"bytes"
	"reflect"
	"testing"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/machine"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/workload"
)

// The idle-cycle fast-forward (machine.Run / Session.Run) skips
// stretches in which provably nothing happens. Its correctness
// contract is total invisibility: cycle counts, every statistics
// counter, and the encoded log must be byte-identical to the fully
// ticked run. These tests flip machine.Config.NoFastForward on the
// same workloads and compare everything.

// recordFF records w with or without fast-forward and returns the
// result plus the number of cycles the machine skipped.
func recordFF(t *testing.T, w Workload, cores int, noFF bool) (*Result, uint64) {
	t.Helper()
	mcfg := machineConfig(cores, coherence.Snoopy)
	mcfg.NoFastForward = noFF
	s, err := NewSession(mcfg, DefaultConfig(Opt), w)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return res, s.M.FastForwardedCycles()
}

func encodeLog(t *testing.T, l *replaylog.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := replaylog.Encode(&buf, l); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestFastForwardInvisible(t *testing.T) {
	var cases []struct {
		name  string
		w     Workload
		cores int
	}
	for _, l := range workload.AllLitmus() {
		cases = append(cases, struct {
			name  string
			w     Workload
			cores int
		}{l.Name, Workload{Name: l.Name, Progs: l.Progs, Inputs: l.Inputs, InitMem: l.InitMem}, len(l.Progs)})
	}
	fft := workload.FFT(4, 1)
	cases = append(cases, struct {
		name  string
		w     Workload
		cores int
	}{"fft", Workload{Name: fft.Name, Progs: fft.Progs, Inputs: fft.Inputs, InitMem: fft.InitMem}, 4})

	var totalSkipped uint64
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ticked, skT := recordFF(t, tc.w, tc.cores, true)
			if skT != 0 {
				t.Fatalf("NoFastForward run skipped %d cycles", skT)
			}
			ffed, skipped := recordFF(t, tc.w, tc.cores, false)
			totalSkipped += skipped

			if ticked.Cycles != ffed.Cycles {
				t.Errorf("cycles: ticked %d, fast-forwarded %d", ticked.Cycles, ffed.Cycles)
			}
			if !bytes.Equal(encodeLog(t, ticked.Log), encodeLog(t, ffed.Log)) {
				t.Error("encoded logs differ between ticked and fast-forwarded runs")
			}
			if !reflect.DeepEqual(ticked.CoreStats, ffed.CoreStats) {
				t.Errorf("core stats differ:\nticked: %+v\nffed:   %+v", ticked.CoreStats, ffed.CoreStats)
			}
			if !reflect.DeepEqual(ticked.RecStats, ffed.RecStats) {
				t.Errorf("recorder stats differ:\nticked: %+v\nffed:   %+v", ticked.RecStats, ffed.RecStats)
			}
			if !reflect.DeepEqual(ticked.MemStats, ffed.MemStats) {
				t.Errorf("memory stats differ:\nticked: %+v\nffed:   %+v", ticked.MemStats, ffed.MemStats)
			}
			if !reflect.DeepEqual(ticked.FinalMemory, ffed.FinalMemory) {
				t.Error("final memory differs")
			}
		})
	}
	// The optimization must actually engage somewhere, or this test
	// proves nothing. Memory-latency stalls (150-cycle round trips with
	// every core blocked) guarantee idle stretches in these workloads.
	if totalSkipped == 0 {
		t.Error("fast-forward never skipped a cycle across any workload")
	}
}

// A deadlocked workload must produce the same StallError and the same
// statistics with and without fast-forward: the skip-to-MaxCycles path
// replays the per-cycle stall tallies rather than dropping them.
func TestFastForwardDeadlockEquivalence(t *testing.T) {
	run := func(noFF bool) (*machine.StallError, *Session) {
		mcfg := machineConfig(2, coherence.Snoopy)
		mcfg.MaxCycles = 20_000
		mcfg.NoFastForward = noFF
		s, err := NewSession(mcfg, DefaultConfig(Base), spinlockWorkload(2, 2))
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		// Pre-acquire the lock (0x100) so every core spins on CAS
		// forever: retries with memory-latency gaps between them, so
		// fast-forward repeatedly skips the waiting stretches all the
		// way to the cycle budget.
		s.M.InitMemory(map[uint64]uint64{0x100: 1})
		_, err = s.Run()
		st, ok := err.(*machine.StallError)
		if !ok {
			t.Fatalf("Run = %v, want *machine.StallError", err)
		}
		return st, s
	}
	ticked, st := run(true)
	ffed, sf := run(false)
	if ticked.Cycles != ffed.Cycles {
		t.Errorf("stall cycles: ticked %d, fast-forwarded %d", ticked.Cycles, ffed.Cycles)
	}
	for i := range st.M.Cores {
		if st.M.Cores[i].Stats != sf.M.Cores[i].Stats {
			t.Errorf("core %d stats differ at stall:\nticked: %+v\nffed:   %+v",
				i, st.M.Cores[i].Stats, sf.M.Cores[i].Stats)
		}
	}
}
