package core

import (
	"strings"
	"testing"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/isa"
	"relaxreplay/internal/replaylog"
)

// testRecorder returns a small recorder for direct unit testing.
func testRecorder(v Variant) *Recorder {
	cfg := DefaultConfig(v)
	cfg.TRAQSize = 8
	cfg.MaxIntervalInstrs = 0
	return mustRecorder(cfg, nil)
}

// mustRecorder builds a recorder from a config the test knows is valid.
func mustRecorder(cfg Config, o Orderer) *Recorder {
	r, err := NewRecorder(0, cfg, o)
	if err != nil {
		panic(err)
	}
	return r
}

var (
	ldIns  = isa.Instr{Op: isa.LD, Rd: 3, Rs1: 1}
	stIns  = isa.Instr{Op: isa.ST, Rs1: 1, Rs2: 2}
	amoIns = isa.Instr{Op: isa.AMOADD, Rd: 3, Rs1: 1, Rs2: 2}
	aluIns = isa.Instr{Op: isa.ADD, Rd: 3, Rs1: 1, Rs2: 2}
)

// drive pushes a full in-order lifecycle for one memory instruction.
func drive(r *Recorder, seq uint64, ins isa.Instr, addr uint64) {
	r.DispatchInstr(seq, ins)
	r.Perform(seq, addr, ins.IsLoad(), ins.IsStore(), 7, 9, ins.IsStore())
	r.RetireInstr(seq, true)
}

func finalize(t *testing.T, r *Recorder, cycle uint64) replaylog.CoreLog {
	t.Helper()
	for i := 0; i < 100 && r.Busy(); i++ {
		r.Tick(cycle)
	}
	if r.Busy() {
		t.Fatal("TRAQ never drained")
	}
	cl, err := r.Finalize(cycle)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestTRAQFullStallsDispatch(t *testing.T) {
	r := testRecorder(Base)
	for i := uint64(0); i < 8; i++ {
		if !r.DispatchInstr(i, ldIns) {
			t.Fatalf("dispatch %d rejected below capacity", i)
		}
	}
	if r.DispatchInstr(8, ldIns) {
		t.Fatal("dispatch accepted with a full TRAQ")
	}
	if r.Occupancy() != 8 {
		t.Fatalf("occupancy = %d", r.Occupancy())
	}
}

func TestInorderCountingProducesOneBlock(t *testing.T) {
	r := testRecorder(Base)
	for i := uint64(0); i < 5; i++ {
		drive(r, i, ldIns, 0x100)
		r.Tick(uint64(10 + i))
	}
	cl := finalize(t, r, 100)
	if len(cl.Intervals) != 1 {
		t.Fatalf("intervals = %d", len(cl.Intervals))
	}
	es := cl.Intervals[0].Entries
	if len(es) != 1 || es[0].Type != replaylog.InorderBlock || es[0].Size != 5 {
		t.Fatalf("entries = %+v", es)
	}
}

func TestNMIAccountingAndFillers(t *testing.T) {
	r := testRecorder(Base)
	seq := uint64(0)
	// 20 non-memory instructions: one filler (15) + 5 pending.
	for i := 0; i < 20; i++ {
		if !r.DispatchInstr(seq, aluIns) {
			t.Fatal("non-mem dispatch rejected")
		}
		r.RetireInstr(seq, false)
		seq++
	}
	drive(r, seq, ldIns, 0x40)
	seq++
	cl := finalize(t, r, 50)
	// Total instructions: 20 non-mem + 1 load = 21 in one block.
	if got := cl.Intervals[0].Instructions(); got != 21 {
		t.Fatalf("interval instructions = %d", got)
	}
}

func TestConflictTerminatesInterval(t *testing.T) {
	r := testRecorder(Base)
	drive(r, 0, stIns, 0x200) // write 0x200 -> write signature
	r.Tick(5)
	r.Tick(6)
	// A remote read of the same line conflicts.
	r.ObserveRemote(0x200>>5, false, 20)
	if r.Stats.ConflictTerminations != 1 {
		t.Fatalf("terminations = %d", r.Stats.ConflictTerminations)
	}
	// A remote read of an unrelated line does not.
	r.ObserveRemote(0x4000>>5, false, 21)
	if r.Stats.ConflictTerminations != 1 {
		t.Fatal("unrelated line terminated the interval")
	}
	drive(r, 1, ldIns, 0x300)
	cl := finalize(t, r, 60)
	if len(cl.Intervals) != 2 {
		t.Fatalf("intervals = %d", len(cl.Intervals))
	}
	if cl.Intervals[0].Timestamp != 20 {
		t.Fatalf("terminated interval timestamp = %d", cl.Intervals[0].Timestamp)
	}
}

func TestRemoteWriteConflictsWithReadSignature(t *testing.T) {
	r := testRecorder(Base)
	drive(r, 0, ldIns, 0x200)
	r.Tick(5)
	r.ObserveRemote(0x200>>5, false, 10) // remote READ vs our read: no conflict
	if r.Stats.ConflictTerminations != 0 {
		t.Fatal("read-read terminated the interval")
	}
	r.ObserveRemote(0x200>>5, true, 11) // remote WRITE vs our read: conflict
	if r.Stats.ConflictTerminations != 1 {
		t.Fatal("write-after-read missed")
	}
	finalize(t, r, 60)
}

func TestBaseReordersAcrossIntervals(t *testing.T) {
	r := testRecorder(Base)
	// Load performs in interval 0...
	r.DispatchInstr(0, ldIns)
	r.Perform(0, 0x100, true, false, 42, 0, false)
	// ...then a conflicting snoop on an unrelated line we also read.
	r.DispatchInstr(1, ldIns)
	r.Perform(1, 0x900, true, false, 5, 0, false)
	r.ObserveRemote(0x900>>5, true, 10) // terminates interval 0
	r.RetireInstr(0, true)
	r.RetireInstr(1, true)
	cl := finalize(t, r, 50)
	if r.Stats.ReorderedLoads != 2 {
		t.Fatalf("reordered loads = %d (both crossed the boundary)", r.Stats.ReorderedLoads)
	}
	// The reordered load entries carry the recorded values.
	var vals []uint64
	for _, iv := range cl.Intervals {
		for _, e := range iv.Entries {
			if e.Type == replaylog.ReorderedLoad {
				vals = append(vals, e.Value)
			}
		}
	}
	if len(vals) != 2 || vals[0] != 42 || vals[1] != 5 {
		t.Fatalf("reordered values = %v", vals)
	}
}

func TestOptMovesUnobservedAccess(t *testing.T) {
	r := testRecorder(Opt)
	r.DispatchInstr(0, ldIns)
	r.Perform(0, 0x100, true, false, 42, 0, false)
	// Unrelated conflict terminates the interval...
	r.DispatchInstr(1, stIns)
	r.Perform(1, 0x900, false, true, 0, 1, true)
	r.ObserveRemote(0x900>>5, false, 10)
	r.RetireInstr(0, true)
	r.RetireInstr(1, true)
	// ...but nothing touched line 0x100, so Opt moves the load.
	cl := finalize(t, r, 50)
	if r.Stats.OptMoves == 0 {
		t.Fatal("expected an Opt move")
	}
	if r.Stats.ReorderedLoads != 0 {
		t.Fatalf("reordered loads = %d", r.Stats.ReorderedLoads)
	}
	_ = cl
}

func TestOptDetectsTrueConflict(t *testing.T) {
	r := testRecorder(Opt)
	r.DispatchInstr(0, ldIns)
	r.Perform(0, 0x100, true, false, 42, 0, false)
	// A remote write to the LOADED line arrives before counting.
	r.ObserveRemote(0x100>>5, true, 10) // also terminates (read sig)
	r.RetireInstr(0, true)
	finalize(t, r, 50)
	if r.Stats.ReorderedLoads != 1 {
		t.Fatalf("reordered loads = %d, want 1 (true conflict)", r.Stats.ReorderedLoads)
	}
	if r.Stats.OptMoves != 0 {
		t.Fatal("conflicting access must not be moved")
	}
}

func TestReorderedStoreEntryAndOffset(t *testing.T) {
	r := testRecorder(Base)
	r.DispatchInstr(0, stIns)
	r.Perform(0, 0x108, false, true, 0, 77, true)
	// Two unrelated terminations -> offset 2.
	r.DispatchInstr(1, ldIns)
	r.Perform(1, 0x900, true, false, 1, 0, false)
	r.ObserveRemote(0x900>>5, true, 10)
	r.DispatchInstr(2, ldIns)
	r.Perform(2, 0xA00, true, false, 1, 0, false)
	r.ObserveRemote(0xA00>>5, true, 12)
	for i := uint64(0); i < 3; i++ {
		r.RetireInstr(i, true)
	}
	cl := finalize(t, r, 50)
	var st *replaylog.Entry
	for i := range cl.Intervals {
		for j := range cl.Intervals[i].Entries {
			if cl.Intervals[i].Entries[j].Type == replaylog.ReorderedStore {
				st = &cl.Intervals[i].Entries[j]
			}
		}
	}
	if st == nil {
		t.Fatal("no ReorderedStore entry")
	}
	if st.Addr != 0x108 || st.Value != 77 || st.Offset != 2 {
		t.Fatalf("store entry = %+v", st)
	}
}

func TestReorderedAtomicEntry(t *testing.T) {
	r := testRecorder(Base)
	r.DispatchInstr(0, amoIns)
	r.Perform(0, 0x108, true, true, 5, 6, true)
	r.DispatchInstr(1, ldIns)
	r.Perform(1, 0x900, true, false, 1, 0, false)
	r.ObserveRemote(0x900>>5, true, 10)
	r.RetireInstr(0, true)
	r.RetireInstr(1, true)
	cl := finalize(t, r, 50)
	found := false
	for _, iv := range cl.Intervals {
		for _, e := range iv.Entries {
			if e.Type == replaylog.ReorderedAtomic {
				found = true
				if e.Value != 5 || e.StoreValue != 6 || !e.DidWrite || e.Offset != 1 {
					t.Fatalf("atomic entry = %+v", e)
				}
			}
		}
	}
	if !found {
		t.Fatal("no ReorderedAtomic entry")
	}
	if r.Stats.ReorderedAtomics != 1 {
		t.Fatalf("stats = %+v", r.Stats)
	}
}

func TestSquashRestoresPendingNMI(t *testing.T) {
	r := testRecorder(Base)
	// Two surviving non-mem instructions...
	r.DispatchInstr(0, aluIns)
	r.DispatchInstr(1, aluIns)
	// ...consumed by a wrong-path store that then gets squashed.
	r.DispatchInstr(2, stIns)
	r.DispatchInstr(3, aluIns) // wrong path too
	r.Squash(2)
	// The survivors must be restored: a correct-path load now carries
	// NMI = 2.
	drive(r, 4, ldIns, 0x40)
	r.RetireInstr(0, false)
	r.RetireInstr(1, false)
	r.RetireInstr(4, true)
	cl := finalize(t, r, 50)
	if got := cl.Intervals[0].Instructions(); got != 3 {
		t.Fatalf("instructions = %d, want 3 (2 ALU + 1 load)", got)
	}
	if r.Stats.SquashedEntries != 1 {
		t.Fatalf("squashed entries = %d", r.Stats.SquashedEntries)
	}
}

func TestSquashedFillerRestoredPartially(t *testing.T) {
	cfg := DefaultConfig(Base)
	cfg.NMICap = 4
	cfg.MaxIntervalInstrs = 0
	r := mustRecorder(cfg, nil)
	// 5 non-mem: filler spills at the 5th (holding seqs 0-3).
	for i := uint64(0); i < 5; i++ {
		r.DispatchInstr(i, aluIns)
	}
	if r.Occupancy() != 1 {
		t.Fatalf("fillers = %d", r.Occupancy())
	}
	// Squash from seq 2: the filler (holding 0..3) must be replaced by
	// pending survivors {0,1}; seq 4 dies too.
	r.Squash(2)
	if r.Occupancy() != 0 {
		t.Fatalf("occupancy after squash = %d", r.Occupancy())
	}
	drive(r, 5, ldIns, 0x40)
	for _, s := range []uint64{0, 1} {
		r.RetireInstr(s, false)
	}
	r.RetireInstr(5, true)
	cl := finalize(t, r, 50)
	if got := cl.Intervals[0].Instructions(); got != 3 {
		t.Fatalf("instructions = %d, want 3", got)
	}
}

func TestMaxIntervalSizeTerminates(t *testing.T) {
	cfg := DefaultConfig(Base)
	cfg.MaxIntervalInstrs = 4
	r := mustRecorder(cfg, nil)
	for i := uint64(0); i < 8; i++ {
		drive(r, i, ldIns, 0x100+8*i)
		r.Tick(uint64(i))
	}
	cl := finalize(t, r, 100)
	if r.Stats.SizeTerminations < 2 {
		t.Fatalf("size terminations = %d", r.Stats.SizeTerminations)
	}
	for _, iv := range cl.Intervals[:len(cl.Intervals)-1] {
		if n := iv.Instructions(); n != 4 {
			t.Fatalf("interval holds %d instructions, want 4", n)
		}
	}
}

func TestCountingRequiresRetirement(t *testing.T) {
	r := testRecorder(Base)
	r.DispatchInstr(0, ldIns)
	r.Perform(0, 0x100, true, false, 1, 0, false)
	r.Tick(1)
	if !r.Busy() {
		t.Fatal("unretired access counted")
	}
	r.RetireInstr(0, true)
	r.Tick(2)
	if r.Busy() {
		t.Fatal("retired+performed access not counted")
	}
}

func TestCountingBandwidthLimit(t *testing.T) {
	r := testRecorder(Base)
	for i := uint64(0); i < 6; i++ {
		drive(r, i, ldIns, 0x100)
	}
	r.Tick(1)
	if got := r.Occupancy(); got != 4 {
		t.Fatalf("occupancy after one tick = %d, want 4 (2/cycle)", got)
	}
	finalize(t, r, 50)
}

func TestDirtyEvictIncrementsSnoopTableInDirectoryMode(t *testing.T) {
	r := testRecorder(Opt)
	r.DispatchInstr(0, ldIns)
	r.Perform(0, 0x100, true, false, 1, 0, false)
	// Terminate so PISN != CISN at counting.
	r.DispatchInstr(1, stIns)
	r.Perform(1, 0x900, false, true, 0, 1, true)
	r.ObserveRemote(0x900>>5, false, 5)
	// Directory-mode dirty eviction of the loaded line: the Snoop
	// Table self-increments, so the load must be declared reordered.
	r.DirtyEvict(0x100>>5, true, 0)
	if r.Stats.DirtyEvictIncrements != 1 {
		t.Fatal("dirty eviction not counted")
	}
	r.RetireInstr(0, true)
	r.RetireInstr(1, true)
	finalize(t, r, 50)
	if r.Stats.ReorderedLoads != 1 {
		t.Fatalf("reordered = %d; dirty eviction must pessimize the move", r.Stats.ReorderedLoads)
	}
}

func TestDirtyEvictIgnoredInSnoopyMode(t *testing.T) {
	r := testRecorder(Opt)
	r.DirtyEvict(0x100>>5, false, 0)
	if r.Stats.DirtyEvictIncrements != 0 {
		t.Fatal("snoopy mode must not self-increment")
	}
}

func TestPinningForbidsMove(t *testing.T) {
	r := testRecorder(Opt)
	// Older load performs...
	r.DispatchInstr(0, ldIns)
	r.Perform(0, 0x100, true, false, 42, 0, false)
	// ...a younger same-address store performs (pins the load)...
	r.DispatchInstr(1, stIns)
	r.Perform(1, 0x100, false, true, 0, 9, true)
	// ...and an unrelated conflict moves the interval on.
	r.DispatchInstr(2, ldIns)
	r.Perform(2, 0x900, true, false, 0, 0, false)
	r.ObserveRemote(0x900>>5, true, 10)
	for i := uint64(0); i < 3; i++ {
		r.RetireInstr(i, true)
	}
	finalize(t, r, 50)
	if r.Stats.PinnedReorders == 0 {
		t.Fatal("pinned access was moved")
	}
}

func TestFinalizeChecks(t *testing.T) {
	r := testRecorder(Base)
	r.DispatchInstr(0, ldIns) // never performs
	if _, err := r.Finalize(10); err == nil || !strings.Contains(err.Error(), "never counted") {
		t.Fatalf("err = %v", err)
	}
	r2 := testRecorder(Base)
	if _, err := r2.Finalize(10); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Finalize(10); err == nil {
		t.Fatal("double finalize accepted")
	}
}

func TestHaltedCrossCheck(t *testing.T) {
	r := testRecorder(Base)
	r.DispatchInstr(0, aluIns)
	r.RetireInstr(0, false)
	r.Halted(1) // matches
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched trailing count not caught")
		}
	}()
	r.Halted(2) // recorder has 1 pending, diff=1 not a multiple of 15
}

func TestPerformOnSquashedSeqIgnored(t *testing.T) {
	r := testRecorder(Base)
	r.DispatchInstr(0, ldIns)
	r.Squash(0)
	r.Perform(0, 0x100, true, false, 1, 0, false) // stale event
	if r.Busy() {
		t.Fatal("squashed entry still live")
	}
}

func TestConfigValidateRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero NMICap", func(c *Config) { c.NMICap = 0 }},
		{"negative NMICap", func(c *Config) { c.NMICap = -3 }},
		{"zero TRAQ", func(c *Config) { c.TRAQSize = 0 }},
		{"zero count bandwidth", func(c *Config) { c.CountPerCycle = 0 }},
		{"negative log buffer", func(c *Config) { c.LogBufferBytes = -1 }},
		{"zero signature bits", func(c *Config) { c.SigBits = 0 }},
		{"zero signature arrays", func(c *Config) { c.SigArrays = 0 }},
		{"zero snoop entries (Opt)", func(c *Config) { c.SnoopEntries = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(Opt)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
		if _, err := NewRecorder(0, cfg, nil); err == nil {
			t.Errorf("%s: NewRecorder accepted bad config", tc.name)
		}
		if _, err := NewSession(machineConfig(2, coherence.Snoopy), cfg, spinlockWorkload(2, 2)); err == nil {
			t.Errorf("%s: NewSession accepted bad config", tc.name)
		}
		if _, err := Record(machineConfig(2, coherence.Snoopy), cfg, spinlockWorkload(2, 2)); err == nil {
			t.Errorf("%s: Record accepted bad config", tc.name)
		}
	}
	// NMICap = 0 used to panic with an integer divide by zero in
	// Halted; the error path must never reach that code.
	cfg := DefaultConfig(Base)
	cfg.NMICap = 0
	if _, err := Record(machineConfig(2, coherence.Snoopy), cfg, spinlockWorkload(2, 2)); err == nil {
		t.Fatal("Record ran with NMICap = 0")
	}
}

func TestConfigValidateAcceptsDefaultsAndBaseWithoutSnoop(t *testing.T) {
	for _, v := range []Variant{Base, Opt} {
		if err := DefaultConfig(v).Validate(); err != nil {
			t.Fatalf("default %v config invalid: %v", v, err)
		}
	}
	// Base never touches the Snoop Table, so its geometry may be zero.
	cfg := DefaultConfig(Base)
	cfg.SnoopArrays, cfg.SnoopEntries = 0, 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Base config without snoop table rejected: %v", err)
	}
}
