package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/isa"
	"relaxreplay/internal/machine"
	"relaxreplay/internal/workload"
)

// The sharded run loop's correctness contract is the same total
// invisibility the fast-forward promises: machine.Config.Shards is a
// throughput knob that must not change one byte of the recorded log
// or one count in any statistic. These tests record the same
// workloads serially and sharded and compare everything.

// recordShards records w with the given shard count and returns the
// result.
func recordShards(t *testing.T, w Workload, cores, shards int) *Result {
	t.Helper()
	mcfg := machineConfig(cores, coherence.Snoopy)
	mcfg.Shards = shards
	s, err := NewSession(mcfg, DefaultConfig(Opt), w)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("record (shards=%d): %v", shards, err)
	}
	return res
}

func TestShardDeterminism(t *testing.T) {
	var cases []struct {
		name  string
		w     Workload
		cores int
	}
	for _, l := range workload.AllLitmus() {
		cases = append(cases, struct {
			name  string
			w     Workload
			cores int
		}{l.Name, Workload{Name: l.Name, Progs: l.Progs, Inputs: l.Inputs, InitMem: l.InitMem}, len(l.Progs)})
	}
	fft := workload.FFT(4, 1)
	cases = append(cases, struct {
		name  string
		w     Workload
		cores int
	}{"fft", Workload{Name: fft.Name, Progs: fft.Progs, Inputs: fft.Inputs, InitMem: fft.InitMem}, 4})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := recordShards(t, tc.w, tc.cores, 1)
			for _, shards := range []int{2, 4} {
				if shards > tc.cores {
					continue
				}
				sharded := recordShards(t, tc.w, tc.cores, shards)
				if serial.Cycles != sharded.Cycles {
					t.Errorf("shards=%d: cycles %d, serial %d", shards, sharded.Cycles, serial.Cycles)
				}
				if !bytes.Equal(encodeLog(t, serial.Log), encodeLog(t, sharded.Log)) {
					t.Errorf("shards=%d: encoded log differs from serial", shards)
				}
				if !reflect.DeepEqual(serial.CoreStats, sharded.CoreStats) {
					t.Errorf("shards=%d: core stats differ:\n serial:  %+v\n sharded: %+v", shards, serial.CoreStats, sharded.CoreStats)
				}
				if !reflect.DeepEqual(serial.RecStats, sharded.RecStats) {
					t.Errorf("shards=%d: recorder stats differ:\n serial:  %+v\n sharded: %+v", shards, serial.RecStats, sharded.RecStats)
				}
				if !reflect.DeepEqual(serial.MemStats, sharded.MemStats) {
					t.Errorf("shards=%d: memory stats differ:\n serial:  %+v\n sharded: %+v", shards, serial.MemStats, sharded.MemStats)
				}
				if !reflect.DeepEqual(serial.FinalMemory, sharded.FinalMemory) {
					t.Errorf("shards=%d: final memory differs", shards)
				}
			}
		})
	}
}

// TestShardDeterminismHighContention drives the epoch barrier with the
// nastiest sharing pattern the workload library has — a CAS spinlock
// every core fights over — across several shard counts, including ones
// that split the contending cores mid-range. Run under -race this is
// also the data-race hammer for the staged submit path.
func TestShardDeterminismHighContention(t *testing.T) {
	const cores = 4
	w := spinlockWorkload(cores, 40)
	serial := recordShards(t, w, cores, 1)
	for _, shards := range []int{2, 3, 4} {
		sharded := recordShards(t, w, cores, shards)
		if serial.Cycles != sharded.Cycles {
			t.Errorf("shards=%d: cycles %d, serial %d", shards, sharded.Cycles, serial.Cycles)
		}
		if !bytes.Equal(encodeLog(t, serial.Log), encodeLog(t, sharded.Log)) {
			t.Errorf("shards=%d: encoded log differs from serial", shards)
		}
		if !reflect.DeepEqual(serial.RecStats, sharded.RecStats) {
			t.Errorf("shards=%d: recorder stats differ", shards)
		}
	}
}

// TestShardFastForwardCompose proves the two run-loop optimizations
// compose: a sharded, fast-forwarded run still matches the fully
// ticked serial run byte for byte.
func TestShardFastForwardCompose(t *testing.T) {
	fft := workload.FFT(4, 1)
	w := Workload{Name: fft.Name, Progs: fft.Progs, Inputs: fft.Inputs, InitMem: fft.InitMem}

	mcfg := machineConfig(4, coherence.Snoopy)
	mcfg.NoFastForward = true
	s, err := NewSession(mcfg, DefaultConfig(Opt), w)
	if err != nil {
		t.Fatal(err)
	}
	ticked, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	mcfg2 := machineConfig(4, coherence.Snoopy)
	mcfg2.Shards = 2
	s2, err := NewSession(mcfg2, DefaultConfig(Opt), w)
	if err != nil {
		t.Fatal(err)
	}
	both, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s2.M.FastForwardedCycles() == 0 {
		t.Error("fast-forward never engaged under sharding; the composition test proves nothing")
	}
	if ticked.Cycles != both.Cycles {
		t.Errorf("cycles: ticked serial %d, sharded+ff %d", ticked.Cycles, both.Cycles)
	}
	if !bytes.Equal(encodeLog(t, ticked.Log), encodeLog(t, both.Log)) {
		t.Error("encoded logs differ between ticked-serial and sharded+fast-forwarded runs")
	}
}

// TestProbeTickErrorSessionLoop is the session-level half of the
// probe-tick regression (see machine.TestProbeTickErrorNotSwallowed):
// a core error landing on the fast-forward probe tick must surface
// from Session.Run at its true cycle and must not be masked as a
// *StallError when it coincides with the MaxCycles boundary.
func TestProbeTickErrorSessionLoop(t *testing.T) {
	b := isa.NewBuilder("probe-err")
	b.Li(isa.R(3), 7)
	b.Mul(isa.R(3), isa.R(3), isa.R(3))
	b.In(isa.R(4))
	b.Halt()
	prog := b.MustBuild()
	w := Workload{Name: "probe-err", Progs: []isa.Program{prog}}

	record := func(lat, maxCycles uint64, noFF bool) (uint64, error) {
		mcfg := machineConfig(1, coherence.Snoopy)
		mcfg.CPU.MulLat = lat
		mcfg.NoFastForward = noFF
		if maxCycles != 0 {
			mcfg.MaxCycles = maxCycles
		}
		s, err := NewSession(mcfg, DefaultConfig(Opt), w)
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Run()
		return s.M.Cycle(), err
	}

	for lat := uint64(1); lat <= 30; lat++ {
		tickedCycle, errTicked := record(lat, 0, true)
		if !errors.Is(errTicked, isa.ErrOutOfInput) {
			t.Fatalf("lat=%d: ticked: got %v, want ErrOutOfInput", lat, errTicked)
		}
		ffCycle, errFF := record(lat, 0, false)
		if !errors.Is(errFF, isa.ErrOutOfInput) {
			t.Errorf("lat=%d: fast-forwarded: got %v, want ErrOutOfInput", lat, errFF)
		}
		if ffCycle != tickedCycle {
			t.Errorf("lat=%d: error at cycle %d fast-forwarded, %d ticked", lat, ffCycle, tickedCycle)
		}
		_, errPinned := record(lat, tickedCycle, false)
		var stall *machine.StallError
		if errors.As(errPinned, &stall) {
			t.Errorf("lat=%d: core error at the MaxCycles boundary masked as %v", lat, errPinned)
		} else if !errors.Is(errPinned, isa.ErrOutOfInput) {
			t.Errorf("lat=%d: pinned: got %v, want ErrOutOfInput", lat, errPinned)
		}
	}
}
