package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSnoopTableDetectsTransaction(t *testing.T) {
	st := NewSnoopTable(2, 64)
	line := uint64(0x123)
	saved := st.Read(line)
	if st.Conflicts(line, saved) {
		t.Fatal("conflict before any transaction")
	}
	st.Observe(line)
	if !st.Conflicts(line, saved) {
		t.Fatal("transaction on the same line missed")
	}
}

// Property: the Snoop Table is conservative — a transaction on the
// exact line is ALWAYS detected (no false negatives), regardless of
// interleaved other-line traffic.
func TestSnoopTableNoFalseNegatives(t *testing.T) {
	f := func(line uint64, noise []uint64) bool {
		st := NewSnoopTable(2, 64)
		saved := st.Read(line)
		for _, n := range noise {
			st.Observe(n)
		}
		st.Observe(line)
		return st.Conflicts(line, saved)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopTableAliasingTolerance(t *testing.T) {
	// A single unrelated transaction can change at most one counter of
	// a different line per array; only if ALL arrays' counters change
	// is the access declared reordered. With one noise transaction the
	// false positive requires a double alias — measure that it is rare.
	rng := rand.New(rand.NewSource(1))
	falsePositives := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		st := NewSnoopTable(2, 64)
		line := rng.Uint64() >> 5
		noise := rng.Uint64() >> 5
		if noise == line {
			continue
		}
		saved := st.Read(line)
		st.Observe(noise)
		if st.Conflicts(line, saved) {
			falsePositives++
		}
	}
	if rate := float64(falsePositives) / trials; rate > 0.002 {
		t.Fatalf("double-alias rate %.4f too high", rate)
	}
}

func TestSnoopTableWrapAround(t *testing.T) {
	st := NewSnoopTable(2, 8)
	line := uint64(7)
	saved := st.Read(line)
	// 65536 observations of the same line wrap the 16-bit counters
	// exactly back; the paper sizes counters so this cannot happen
	// within one perform-to-count window, but the structure tolerates it.
	for i := 0; i < 65536; i++ {
		st.Observe(line)
	}
	if st.Conflicts(line, saved) {
		t.Fatal("expected exact wrap to hide the count (documented limit)")
	}
	st.Observe(line)
	if !st.Conflicts(line, saved) {
		t.Fatal("one more observation must be visible")
	}
}

func TestSnoopTableSize(t *testing.T) {
	// Paper: 2 arrays x 64 entries x 16 bits = 256 bytes.
	if got := NewSnoopTable(2, 64).SizeBytes(); got != 256 {
		t.Fatalf("size = %d bytes", got)
	}
}

func TestSnoopTableGeometryValidation(t *testing.T) {
	for _, bad := range []struct{ a, e int }{{0, 64}, {5, 64}, {2, 63}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("geometry %v accepted", bad)
				}
			}()
			NewSnoopTable(bad.a, bad.e)
		}()
	}
}

func TestQuickRecOrderer(t *testing.T) {
	q := NewQuickRecOrderer(4, 256, 1)
	q.NotePerform(0x10, true, false) // read
	q.NotePerform(0x20, false, true) // write

	if q.ConflictsRemote(0x10, false) {
		t.Fatal("remote read vs local read conflicts")
	}
	if !q.ConflictsRemote(0x10, true) {
		t.Fatal("remote write vs local read missed")
	}
	if !q.ConflictsRemote(0x20, false) {
		t.Fatal("remote read vs local write missed")
	}
	if !q.ConflictsRemote(0x20, true) {
		t.Fatal("remote write vs local write missed")
	}
	if q.ConflictsRemote(0x999, true) {
		t.Fatal("unrelated line conflicts")
	}

	q.Reset()
	if q.ConflictsRemote(0x20, true) {
		t.Fatal("reset did not clear signatures")
	}
	if q.Timestamp(1234) != 1234 {
		t.Fatal("QuickRec timestamp is the global cycle")
	}
}

func TestRecorderUsesCustomOrderer(t *testing.T) {
	// An orderer that conflicts on everything: every remote snoop
	// terminates the interval.
	r := mustRecorder(DefaultConfig(Base), conflictAll{})
	r.ObserveRemote(1, false, 5)
	r.ObserveRemote(2, false, 6)
	if r.Stats.ConflictTerminations != 2 {
		t.Fatalf("terminations = %d", r.Stats.ConflictTerminations)
	}
}

type conflictAll struct{}

func (conflictAll) NotePerform(uint64, bool, bool)    {}
func (conflictAll) ConflictsRemote(uint64, bool) bool { return true }
func (conflictAll) Timestamp(c uint64) uint64         { return c }
func (conflictAll) Reset()                            {}
