package core

import "relaxreplay/internal/bloom"

// Orderer is the interval-creation-and-ordering half of the Memory
// Race Recorder (the left side of paper Figure 6(a)). RelaxReplay's
// event-tracking hardware is deliberately independent of it: any
// chunk-based MRR proposal's ordering mechanism can sit behind this
// interface (paper §3.6, Figure 7).
//
// An Orderer decides when an incoming coherence transaction conflicts
// with the current interval (terminating it) and supplies the ordering
// information logged in each IntervalFrame.
type Orderer interface {
	// NotePerform records a performed access of the current interval
	// (the QuickRec design inserts its line address into the read or
	// write signature).
	NotePerform(line uint64, isRead, isWrite bool)
	// ConflictsRemote reports whether an observed remote transaction
	// conflicts with the current interval, in which case the recorder
	// terminates the interval.
	ConflictsRemote(line uint64, isWrite bool) bool
	// Timestamp returns the interval-ordering key logged in the
	// IntervalFrame when the interval terminates at the given cycle.
	Timestamp(cycle uint64) uint64
	// Reset clears per-interval state when a new interval starts.
	Reset()
}

// QuickRecOrderer implements the QuickRec scheme the paper evaluates
// with: per-interval read/write Bloom signatures checked against
// snooped transactions, and a globally-consistent scalar timestamp (the
// global cycle count) that totally orders intervals across cores.
type QuickRecOrderer struct {
	read, write *bloom.Signature
}

// NewQuickRecOrderer builds the orderer with the given signature
// geometry (the paper uses 4x256-bit signatures, bloom.NewDefault).
func NewQuickRecOrderer(arrays, bits int, seed uint64) *QuickRecOrderer {
	return &QuickRecOrderer{
		read:  bloom.NewSignature(arrays, bits, seed),
		write: bloom.NewSignature(arrays, bits, seed+1),
	}
}

// NotePerform inserts the line into the read and/or write signature.
func (q *QuickRecOrderer) NotePerform(line uint64, isRead, isWrite bool) {
	if isRead {
		q.read.Insert(line)
	}
	if isWrite {
		q.write.Insert(line)
	}
}

// ConflictsRemote checks a remote transaction against the signatures:
// a remote write conflicts with local reads and writes; a remote read
// conflicts with local writes.
func (q *QuickRecOrderer) ConflictsRemote(line uint64, isWrite bool) bool {
	if q.write.MayContain(line) {
		return true
	}
	return isWrite && q.read.MayContain(line)
}

// Timestamp returns the global cycle count: QuickRec's
// globally-consistent scalar clock.
func (q *QuickRecOrderer) Timestamp(cycle uint64) uint64 { return cycle }

// Reset clears both signatures.
func (q *QuickRecOrderer) Reset() {
	q.read.Clear()
	q.write.Clear()
}

// LamportOrderer orders intervals with piggybacked scalar logical
// clocks instead of a globally-consistent physical clock — the
// ordering style of Intel MRR / Cyrus, where ordering information
// rides on coherence messages. It demonstrates the paper's §3.6
// claim: RelaxReplay's event tracking composes with any chunk-ordering
// mechanism.
//
// Conflict detection reuses the QuickRec signatures; the timestamp of
// a terminating interval is the next value of a per-core Lamport
// clock, and the coherence substrate folds holders' clocks into every
// data grant (see coherence.System.ClockOf/OnHint), so any interval
// that depends on another — even transitively through an eviction or
// the shared L2 — gets a strictly larger timestamp.
type LamportOrderer struct {
	sigs  *QuickRecOrderer
	clock uint64
}

// NewLamportOrderer builds the orderer with the given signature geometry.
func NewLamportOrderer(arrays, bits int, seed uint64) *LamportOrderer {
	return &LamportOrderer{sigs: NewQuickRecOrderer(arrays, bits, seed)}
}

// NotePerform inserts into the signatures.
func (l *LamportOrderer) NotePerform(line uint64, isRead, isWrite bool) {
	l.sigs.NotePerform(line, isRead, isWrite)
}

// ConflictsRemote checks the signatures.
func (l *LamportOrderer) ConflictsRemote(line uint64, isWrite bool) bool {
	return l.sigs.ConflictsRemote(line, isWrite)
}

// Timestamp advances and returns the logical clock; the physical cycle
// is ignored.
func (l *LamportOrderer) Timestamp(uint64) uint64 {
	l.clock++
	return l.clock
}

// Reset clears the signatures (the clock persists across intervals).
func (l *LamportOrderer) Reset() { l.sigs.Reset() }

// Clock returns the current logical clock (folded into coherence
// messages by the recording session).
func (l *LamportOrderer) Clock() uint64 { return l.clock }

// Sync raises the clock to at least hint (called when a data grant
// carrying a piggybacked hint arrives).
func (l *LamportOrderer) Sync(hint uint64) {
	if hint > l.clock {
		l.clock = hint
	}
}
