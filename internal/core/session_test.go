package core

import (
	"fmt"
	"math/rand"
	"testing"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/cpu"
	"relaxreplay/internal/isa"
	"relaxreplay/internal/machine"
	"relaxreplay/internal/replay"
	"relaxreplay/internal/workload"
)

// roundTrip records w, patches the log, replays it, and verifies the
// replay reproduced the recorded execution exactly.
func roundTrip(t *testing.T, mcfg machine.Config, rcfg Config, w Workload) (*Result, *replay.Result) {
	t.Helper()
	res, err := Record(mcfg, rcfg, w)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	patched, err := res.Log.Patch()
	if err != nil {
		t.Fatalf("patch: %v", err)
	}
	rp, err := replay.New(replay.DefaultConfig(), patched, w.Progs, w.InitMem, nil)
	if err != nil {
		t.Fatalf("replayer: %v", err)
	}
	rep, err := rp.Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	retired := make([]uint64, len(res.CoreStats))
	for i, s := range res.CoreStats {
		retired[i] = s.Retired
	}
	if err := replay.Verify(rep, res.FinalMemory, res.FinalRegs, retired); err != nil {
		t.Fatal(err)
	}
	return res, rep
}

// configs returns the recording configurations exercised by the
// soundness tests.
func configs() map[string]Config {
	c4kBase := DefaultConfig(Base)
	c4kOpt := DefaultConfig(Opt)
	infBase := DefaultConfig(Base)
	infBase.MaxIntervalInstrs = 0
	infOpt := DefaultConfig(Opt)
	infOpt.MaxIntervalInstrs = 0
	tiny := DefaultConfig(Base)
	tiny.MaxIntervalInstrs = 64
	tiny.TRAQSize = 32
	tinyOpt := DefaultConfig(Opt)
	tinyOpt.MaxIntervalInstrs = 64
	tinyOpt.TRAQSize = 32
	return map[string]Config{
		"base-4k":   c4kBase,
		"opt-4k":    c4kOpt,
		"base-inf":  infBase,
		"opt-inf":   infOpt,
		"base-tiny": tiny,
		"opt-tiny":  tinyOpt,
	}
}

func machineConfig(cores int, p coherence.Protocol) machine.Config {
	mcfg := machine.DefaultConfig(cores)
	mcfg.Mem.Protocol = p
	mcfg.MaxCycles = 20_000_000
	return mcfg
}

// spinlockWorkload: N cores increment a shared counter under a CAS
// spinlock. High contention, atomics, acquire/release.
func spinlockWorkload(cores int, iters int64) Workload {
	b := isa.NewBuilder("spinlock")
	b.Li(isa.R(10), 0x100) // lock
	b.Li(isa.R(11), 0x200) // counter
	b.Li(isa.R(3), 0)
	b.Li(isa.R(4), iters)
	b.Li(isa.R(5), 1)
	b.Label("loop")
	b.Label("acquire")
	b.Mov(isa.R(6), isa.R(0))
	b.Cas(isa.R(6), isa.R(5), isa.R(10), 0, isa.FlagAcquire)
	b.Bne(isa.R(6), isa.R(0), "acquire")
	b.Ld(isa.R(7), isa.R(11), 0)
	b.Addi(isa.R(7), isa.R(7), 1)
	b.St(isa.R(7), isa.R(11), 0)
	b.StRel(isa.R(0), isa.R(10), 0)
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Bne(isa.R(3), isa.R(4), "loop")
	b.Halt()
	prog := b.MustBuild()
	progs := make([]isa.Program, cores)
	for i := range progs {
		progs[i] = prog
	}
	return Workload{Name: "spinlock", Progs: progs}
}

// racyWorkload: every core runs a random bounded program hammering a
// small shared address pool — loads, stores and atomics race freely.
func racyWorkload(cores int, seed int64) Workload {
	progs := make([]isa.Program, cores)
	for c := range progs {
		rng := rand.New(rand.NewSource(seed*1000 + int64(c)))
		progs[c] = racyProgram(rng, fmt.Sprintf("racy%d", c))
	}
	return Workload{Name: "racy", Progs: progs}
}

func racyProgram(rng *rand.Rand, name string) isa.Program {
	b := isa.NewBuilder(name)
	b.Li(isa.R(20), 0x1000) // shared pool base (a few lines)
	regs := []isa.Reg{3, 4, 5, 6, 7, 8}
	for i, r := range regs {
		b.Li(r, int64(rng.Intn(90)+i))
	}
	skips := 0
	loops := rng.Intn(2) + 1
	for l := 0; l < loops; l++ {
		cnt := isa.R(21 + l)
		label := fmt.Sprintf("%s-l%d", name, l)
		b.Li(cnt, int64(rng.Intn(8)+3))
		b.Label(label)
		for i := 0; i < rng.Intn(15)+6; i++ {
			rd := regs[rng.Intn(len(regs))]
			rs1 := regs[rng.Intn(len(regs))]
			rs2 := regs[rng.Intn(len(regs))]
			off := int64(rng.Intn(12)) * 8
			switch rng.Intn(12) {
			case 0, 1, 2:
				b.Ld(rd, isa.R(20), off)
			case 3, 4:
				b.St(rs1, isa.R(20), off)
			case 5:
				b.AmoAdd(rd, rs1, isa.R(20), off, 0)
			case 6:
				b.AmoSwap(rd, rs1, isa.R(20), off, isa.FlagAcquire|isa.FlagRelease)
			case 7:
				b.Add(rd, rs1, rs2)
			case 8:
				b.Xor(rd, rs1, rs2)
			case 9:
				b.Fence()
			case 10:
				skips++
				skip := fmt.Sprintf("%s-s%d", label, skips)
				b.Blt(rd, rs1, skip)
				b.Mul(rd, rs1, rs2)
				b.Label(skip)
			case 11:
				b.LdAcq(rd, isa.R(20), off)
			}
		}
		b.Addi(cnt, cnt, -1)
		b.Bne(cnt, isa.R(0), label)
	}
	b.Halt()
	return b.MustBuild()
}

// messageWorkload: release/release publication chain across 3 cores.
func messageWorkload() Workload {
	p0 := isa.NewBuilder("p0")
	p0.Li(isa.R(3), 0x100).Li(isa.R(4), 0x200).Li(isa.R(5), 41)
	p0.Addi(isa.R(5), isa.R(5), 1)
	p0.St(isa.R(5), isa.R(4), 0)
	p0.Li(isa.R(6), 1)
	p0.StRel(isa.R(6), isa.R(3), 0)
	p0.Halt()

	p1 := isa.NewBuilder("p1")
	p1.Li(isa.R(3), 0x100).Li(isa.R(4), 0x200)
	p1.Label("spin")
	p1.LdAcq(isa.R(5), isa.R(3), 0)
	p1.Beq(isa.R(5), isa.R(0), "spin")
	p1.Ld(isa.R(6), isa.R(4), 0)
	p1.Addi(isa.R(6), isa.R(6), 1)
	p1.St(isa.R(6), isa.R(4), 8)
	p1.Li(isa.R(7), 1)
	p1.StRel(isa.R(7), isa.R(3), 8)
	p1.Halt()

	p2 := isa.NewBuilder("p2")
	p2.Li(isa.R(3), 0x100).Li(isa.R(4), 0x200)
	p2.Label("spin")
	p2.LdAcq(isa.R(5), isa.R(3), 8)
	p2.Beq(isa.R(5), isa.R(0), "spin")
	p2.Ld(isa.R(6), isa.R(4), 8)
	p2.St(isa.R(6), isa.R(4), 16)
	p2.Halt()

	return Workload{
		Name:  "message",
		Progs: []isa.Program{p0.MustBuild(), p1.MustBuild(), p2.MustBuild()},
	}
}

func TestRnRSpinlockAllConfigs(t *testing.T) {
	for name, rcfg := range configs() {
		for _, proto := range []coherence.Protocol{coherence.Snoopy, coherence.Directory} {
			t.Run(fmt.Sprintf("%s/%s", name, proto), func(t *testing.T) {
				res, _ := roundTrip(t, machineConfig(4, proto), rcfg, spinlockWorkload(4, 30))
				if got := res.FinalMemory[0x200]; got != 120 {
					t.Fatalf("counter = %d, want 120", got)
				}
			})
		}
	}
}

func TestRnRMessagePassing(t *testing.T) {
	for name, rcfg := range configs() {
		t.Run(name, func(t *testing.T) {
			res, _ := roundTrip(t, machineConfig(3, coherence.Snoopy), rcfg, messageWorkload())
			if got := res.FinalMemory[0x210]; got != 43 {
				t.Fatalf("published value = %d, want 43", got)
			}
		})
	}
}

func TestRnRRacyPrograms(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		for name, rcfg := range configs() {
			proto := coherence.Snoopy
			if seed%2 == 1 {
				proto = coherence.Directory
			}
			t.Run(fmt.Sprintf("seed%d/%s/%s", seed, name, proto), func(t *testing.T) {
				roundTrip(t, machineConfig(4, proto), rcfg, racyWorkload(4, int64(seed)))
			})
		}
	}
}

func TestRnRWithInputs(t *testing.T) {
	b := isa.NewBuilder("inputs")
	b.In(isa.R(3))
	b.In(isa.R(4))
	b.Add(isa.R(5), isa.R(3), isa.R(4))
	b.Li(isa.R(6), 0x300)
	b.St(isa.R(5), isa.R(6), 0)
	b.Halt()
	w := Workload{
		Name:   "inputs",
		Progs:  []isa.Program{b.MustBuild()},
		Inputs: [][]uint64{{100, 23}},
	}
	res, _ := roundTrip(t, machineConfig(1, coherence.Snoopy), DefaultConfig(Opt), w)
	if res.FinalMemory[0x300] != 123 {
		t.Fatalf("memory = %v", res.FinalMemory)
	}
}

func TestOptProducesFewerReorderedAndSmallerLogs(t *testing.T) {
	w := spinlockWorkload(4, 40)
	mcfg := machineConfig(4, coherence.Snoopy)

	tiny := DefaultConfig(Base)
	tiny.MaxIntervalInstrs = 256
	base, err := Record(mcfg, tiny, w)
	if err != nil {
		t.Fatal(err)
	}
	tinyOpt := tiny
	tinyOpt.Variant = Opt
	opt, err := Record(mcfg, tinyOpt, w)
	if err != nil {
		t.Fatal(err)
	}

	reordered := func(r *Result) (n uint64) {
		for _, s := range r.RecStats {
			n += s.ReorderedLoads + s.ReorderedStores + s.ReorderedAtomics
		}
		return n
	}
	if reordered(opt) > reordered(base) {
		t.Fatalf("Opt reordered %d > Base %d", reordered(opt), reordered(base))
	}
	if opt.Log.SizeBits() > base.Log.SizeBits() {
		t.Fatalf("Opt log %d bits > Base log %d bits", opt.Log.SizeBits(), base.Log.SizeBits())
	}
}

func TestRecordingIsDeterministic(t *testing.T) {
	w := racyWorkload(4, 7)
	mcfg := machineConfig(4, coherence.Snoopy)
	a, err := Record(mcfg, DefaultConfig(Opt), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(mcfg, DefaultConfig(Opt), w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Log.SizeBits() != b.Log.SizeBits() {
		t.Fatalf("recording not deterministic: %d/%d cycles, %d/%d bits",
			a.Cycles, b.Cycles, a.Log.SizeBits(), b.Log.SizeBits())
	}
}

func TestInstructionAccounting(t *testing.T) {
	// Every retired instruction must be accounted for in the log
	// exactly once (InorderBlock sizes + reordered entries).
	w := racyWorkload(4, 3)
	res, err := Record(machineConfig(4, coherence.Snoopy), DefaultConfig(Base), w)
	if err != nil {
		t.Fatal(err)
	}
	var retired uint64
	for _, s := range res.CoreStats {
		retired += s.Retired
	}
	if got := res.Log.Instructions(); got != retired {
		t.Fatalf("log accounts %d instructions, cores retired %d", got, retired)
	}
}

// TestRnRLamportOrdering runs the soundness round trip with the
// Lamport (piggybacked logical clock) interval orderer instead of
// QuickRec's physical timestamps, proving the paper's §3.6 claim that
// RelaxReplay's event tracking composes with other chunk-ordering
// mechanisms.
func TestRnRLamportOrdering(t *testing.T) {
	for name, rcfg := range configs() {
		rcfg.Ordering = OrderingLamport
		for _, proto := range []coherence.Protocol{coherence.Snoopy, coherence.Directory} {
			t.Run(fmt.Sprintf("%s/%s", name, proto), func(t *testing.T) {
				roundTrip(t, machineConfig(4, proto), rcfg, spinlockWorkload(4, 25))
			})
		}
	}
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		rcfg := DefaultConfig(Opt)
		rcfg.Ordering = OrderingLamport
		if seed%2 == 1 {
			rcfg.Variant = Base
			rcfg.MaxIntervalInstrs = 0
		}
		proto := coherence.Snoopy
		if seed%3 == 2 {
			proto = coherence.Directory
		}
		t.Run(fmt.Sprintf("racy%d", seed), func(t *testing.T) {
			roundTrip(t, machineConfig(4, proto), rcfg, racyWorkload(4, int64(seed)+100))
		})
	}
}

func TestLamportTimestampsAreLogical(t *testing.T) {
	rcfg := DefaultConfig(Opt)
	rcfg.Ordering = OrderingLamport
	res, err := Record(machineConfig(4, coherence.Snoopy), rcfg, spinlockWorkload(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Logical timestamps are small dense integers, not cycle counts.
	maxTS := uint64(0)
	for _, s := range res.Log.Streams {
		for _, iv := range s.Intervals {
			if iv.Timestamp > maxTS {
				maxTS = iv.Timestamp
			}
		}
	}
	if maxTS == 0 || maxTS >= res.Cycles {
		t.Fatalf("timestamps do not look logical: max %d vs %d cycles", maxTS, res.Cycles)
	}
}

// TestPinningIsLoadBearing demonstrates the same-address pinning fix
// (DESIGN.md §6): with pinning disabled, a recorded execution exists
// whose replay diverges. The workload and seed are deterministic, so
// this reproduces reliably.
func TestPinningIsLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// Private read-modify-write chains interleaved with unrelated
	// conflict terminations trigger the hazard: an older load moves
	// across an interval while its younger same-address store is
	// patched behind it. The ocean kernel at this size is the original
	// deterministic reproducer.
	broken := 0
	for _, app := range []string{"ocean", "radix", "water", "lu"} {
		k, err := workload.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		kw := k.Build(8, 3)
		w := Workload{Name: kw.Name, Progs: kw.Progs, Inputs: kw.Inputs, InitMem: kw.InitMem}
		rcfg := DefaultConfig(Opt)
		rcfg.UnsafeDisablePinning = true
		res, err := Record(machineConfig(8, coherence.Snoopy), rcfg, w)
		if err != nil {
			t.Fatal(err)
		}
		patched, err := res.Log.Patch()
		if err != nil {
			continue // patch itself may fail; that's also a divergence
		}
		rp, err := replay.New(replay.DefaultConfig(), patched, w.Progs, w.InitMem, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rp.Run()
		if err != nil {
			broken++
			continue
		}
		retired := make([]uint64, len(res.CoreStats))
		for i, s := range res.CoreStats {
			retired[i] = s.Retired
		}
		if replay.Verify(rep, res.FinalMemory, res.FinalRegs, retired) != nil {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("disabling pinning never diverged; is the hazard gone or the test too weak?")
	}
}

// TestRnRAcrossMemoryModels runs the soundness round trip with TSO and
// SC cores: the paper's claim is that RelaxReplay handles any model
// with write atomicity.
func TestRnRAcrossMemoryModels(t *testing.T) {
	for _, model := range []cpu.MemModel{cpu.TSO, cpu.SC} {
		for name, rcfg := range configs() {
			t.Run(fmt.Sprintf("%v/%s", model, name), func(t *testing.T) {
				mcfg := machineConfig(4, coherence.Snoopy)
				mcfg.CPU.Model = model
				roundTrip(t, mcfg, rcfg, spinlockWorkload(4, 20))
			})
		}
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("%v/racy%d", model, seed), func(t *testing.T) {
				mcfg := machineConfig(4, coherence.Snoopy)
				mcfg.CPU.Model = model
				roundTrip(t, mcfg, DefaultConfig(Opt), racyWorkload(4, seed+900))
			})
		}
	}
}
