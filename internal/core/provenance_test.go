package core

import (
	"bytes"
	"reflect"
	"testing"

	"relaxreplay/internal/provenance"
	"relaxreplay/internal/replaylog"
)

// TestProvenanceCaptureObservesOnly: recording with a provenance
// collector must leave the interval log byte-identical to recording
// without one, and the captured sideband must be consistent with the
// streams and the recorder stats.
func TestProvenanceCaptureObservesOnly(t *testing.T) {
	mcfg := machineConfig(2, 0)
	w := racyWorkload(2, 42)

	rcfg := configs()["opt-tiny"]
	plain, err := Record(mcfg, rcfg, w)
	if err != nil {
		t.Fatal(err)
	}

	rcfgProv := rcfg
	rcfgProv.Provenance = provenance.NewCollector()
	traced, err := Record(mcfg, rcfgProv, w)
	if err != nil {
		t.Fatal(err)
	}

	// The interval log itself is unchanged: v2 encodings (which never
	// carry the sideband) must be byte-identical.
	var a, b bytes.Buffer
	if err := replaylog.Encode(&a, plain.Log); err != nil {
		t.Fatal(err)
	}
	if err := replaylog.Encode(&b, traced.Log); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("provenance capture changed the recorded log")
	}
	if plain.Log.Provenance != nil {
		t.Fatal("recording without a collector attached provenance")
	}

	// Sideband consistency: one record per terminated interval, seqs
	// aligned with the stream, causes reconciling with the stats.
	if len(traced.Log.Provenance) != len(traced.Log.Streams) {
		t.Fatalf("provenance covers %d cores, streams cover %d",
			len(traced.Log.Provenance), len(traced.Log.Streams))
	}
	var conflicts, sizes, finals, reorders uint64
	for i, cp := range traced.Log.Provenance {
		stream := traced.Log.Streams[i]
		if cp.Core != stream.Core {
			t.Fatalf("provenance core %d misaligned with stream core %d", cp.Core, stream.Core)
		}
		if len(cp.Records) != len(stream.Intervals) {
			t.Fatalf("core %d: %d provenance records for %d intervals",
				cp.Core, len(cp.Records), len(stream.Intervals))
		}
		for j, r := range cp.Records {
			if r.Seq != stream.Intervals[j].Seq {
				t.Fatalf("core %d record %d: seq %d != interval seq %d",
					cp.Core, j, r.Seq, stream.Intervals[j].Seq)
			}
			switch r.Cause {
			case provenance.CauseConflict:
				conflicts++
				if r.RemoteCore < 0 || int(r.RemoteCore) >= len(traced.Log.Streams) {
					t.Fatalf("core %d seq %d: conflict termination with remote core %d",
						cp.Core, r.Seq, r.RemoteCore)
				}
			case provenance.CauseSize:
				sizes++
			case provenance.CauseFinal:
				finals++
				if j != len(cp.Records)-1 {
					t.Fatalf("core %d: final termination at record %d of %d", cp.Core, j, len(cp.Records))
				}
			default:
				t.Fatalf("core %d seq %d: unexpected cause %v", cp.Core, r.Seq, r.Cause)
			}
			reorders += uint64(len(r.Reorders))
		}
	}
	var wantConf, wantSize, wantReord uint64
	for _, s := range traced.RecStats {
		wantConf += s.ConflictTerminations
		wantSize += s.SizeTerminations
		wantReord += s.ReorderedLoads + s.ReorderedStores + s.ReorderedAtomics
	}
	if conflicts != wantConf || sizes != wantSize {
		t.Fatalf("cause counts conflict=%d size=%d, stats say %d/%d", conflicts, sizes, wantConf, wantSize)
	}
	if finals != uint64(len(traced.Log.Streams)) {
		t.Fatalf("%d final terminations for %d cores", finals, len(traced.Log.Streams))
	}
	if reorders != wantReord {
		t.Fatalf("%d reorder instants, stats say %d reordered accesses", reorders, wantReord)
	}
	if conflicts == 0 || reorders == 0 {
		t.Fatal("workload produced no conflicts/reorders; test exercises nothing")
	}

	// And the sideband itself is deterministic across identical runs.
	rcfgProv2 := rcfg
	rcfgProv2.Provenance = provenance.NewCollector()
	again, err := Record(mcfg, rcfgProv2, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Log.Provenance, traced.Log.Provenance) {
		t.Fatal("provenance sideband differs between identical recordings")
	}
}
