package core

import (
	"fmt"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/cpu"
	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/isa"
	"relaxreplay/internal/machine"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/telemetry"
)

// Workload is a multithreaded program plus its environment: one
// program per core, optional external input streams (the OS input
// log), and initial memory contents.
type Workload struct {
	Name    string
	Progs   []isa.Program
	Inputs  [][]uint64
	InitMem map[uint64]uint64
}

// Result is the outcome of a recording run.
type Result struct {
	Log    *replaylog.Log
	Cycles uint64

	CoreStats []cpu.Stats
	RecStats  []Stats
	MemStats  coherence.Stats

	// FinalMemory and FinalRegs capture the recorded execution's
	// architectural outcome, used to verify deterministic replay.
	FinalMemory map[uint64]uint64
	FinalRegs   [][isa.NumRegs]uint64
}

// Session wires per-core Recorders into a machine: the full
// RelaxReplay recording system.
type Session struct {
	M         *machine.Machine
	Recorders []*Recorder
	workload  Workload
	rcfg      Config

	samp recSampler
}

// recSampler drives the recorder-side cycle-sampled trace tracks
// (TRAQ occupancy and CISN per core). The zero value is disabled.
type recSampler struct {
	every  uint64
	tracer *telemetry.Tracer

	traq, cisn []string
}

func newRecSampler(t *telemetry.Telemetry, cores int) recSampler {
	tr := t.Tracer()
	if tr == nil || !tr.Enabled() || t.SampleEvery() == 0 {
		return recSampler{}
	}
	s := recSampler{every: t.SampleEvery(), tracer: tr}
	for c := 0; c < cores; c++ {
		s.traq = append(s.traq, fmt.Sprintf("traq[c%d]", c))
		s.cisn = append(s.cisn, fmt.Sprintf("cisn[c%d]", c))
	}
	return s
}

// sample emits one point on the recorder trace tracks.
func (s *Session) sample(cycle uint64) {
	if s.samp.every == 0 {
		return
	}
	tr := s.samp.tracer
	for i, r := range s.Recorders {
		tr.Counter(telemetry.PidRecord, i, "core", s.samp.traq[i], cycle, uint64(r.Occupancy()))
		tr.Counter(telemetry.PidRecord, i, "core", s.samp.cisn[i], cycle, r.CurrentISN())
	}
}

// NewSession builds a recording session for the workload. An invalid
// recorder configuration is reported here (see Config.Validate)
// instead of panicking mid-run.
func NewSession(mcfg machine.Config, rcfg Config, w Workload) (*Session, error) {
	if err := rcfg.Validate(); err != nil {
		return nil, err
	}
	// Either config may carry the telemetry instance; share it so one
	// wiring point covers both the machine and the recorders.
	if rcfg.Telemetry == nil {
		rcfg.Telemetry = mcfg.Telemetry
	}
	if mcfg.Telemetry == nil {
		mcfg.Telemetry = rcfg.Telemetry
	}
	recs := make([]*Recorder, mcfg.Cores)
	for i := range recs {
		r, err := NewRecorder(i, rcfg, nil)
		if err != nil {
			return nil, err
		}
		recs[i] = r
	}
	hookFor := func(i int) cpu.Hooks {
		r := recs[i]
		return cpu.Hooks{
			DispatchInstr: r.DispatchInstr,
			RetireInstr:   r.RetireInstr,
			LocalPerform: func(seq, addr, value uint64) {
				r.Perform(seq, addr, true, false, value, 0, false)
			},
			Squash: r.Squash,
			Halted: r.Halted,
		}
	}
	m := machine.New(mcfg, w.Progs, hookFor)
	// The recorder tick rides the machine's core phase, so a sharded
	// run keeps each recorder on the shard that owns its core.
	m.ExtraTick = func(core int, cycle uint64) { recs[core].Tick(cycle) }
	m.InitMemory(w.InitMem)
	for i, in := range w.Inputs {
		m.SetInputs(i, in)
	}
	m.PerformSink = func(ev coherence.PerformEvent) {
		recs[ev.Core].Perform(ev.ID, ev.Addr, ev.IsRead, ev.IsWrite, ev.Value, ev.StoredVal, ev.DidWrite)
	}
	directory := mcfg.Mem.Protocol == coherence.Directory
	m.Sys.OnRemoteSnoop = func(c int, line uint64, isWrite bool, requester int, cycle uint64) {
		terminated, seq := recs[c].ObserveRemoteFrom(line, isWrite, requester, cycle)
		if terminated && requester >= 0 && requester < len(recs) {
			// Cyrus-style dependence edge: the terminated interval of
			// core c must replay before the requester's interval that
			// will contain the conflicting access (its current one or
			// a later one; later intervals follow by program order).
			recs[requester].AddPred(recs[requester].CurrentISN(),
				replaylog.Pred{Core: c, Seq: seq})
		}
	}
	m.Sys.OnDirtyEvict = func(c int, line uint64, cycle uint64) {
		recs[c].DirtyEvict(line, directory, cycle)
	}
	if rcfg.Ordering == OrderingLamport {
		m.Sys.ClockOf = func(c int) uint64 { return recs[c].OrdererClock() }
		m.Sys.OnHint = func(c int, hint uint64) { recs[c].SyncClock(hint) }
	}
	return &Session{
		M: m, Recorders: recs, workload: w, rcfg: rcfg,
		samp: newRecSampler(rcfg.Telemetry, mcfg.Cores),
	}, nil
}

// Run records the workload to completion and returns the log.
//
// The cycle loop itself is machine.RunWith — one shared driver for
// the bare machine and the recording session — parameterized here
// with the recorder side: TRAQ drain keeps the loop alive after the
// machine quiesces, recorder work counters join the fast-forward's
// frozen-tick test, and recorder statistics snapshots ride the idle
// delta replay. Like machine.Run, idle stretches are skipped when
// fast-forward is enabled (see machine.Config.NoFastForward) and the
// result — recorded logs and all statistics — is bit-identical to
// the fully ticked run. Config.Shards likewise changes nothing
// observable: the recorders tick on the shard owning their core, and
// the logs stay byte-identical to the serial loop.
func (s *Session) Run() (*Result, error) {
	m := s.M
	recSnap := make([]Stats, len(s.Recorders))
	err := m.RunWith(machine.Driver{
		ExtraBusy: func() bool {
			for _, r := range s.Recorders {
				if r.Busy() {
					return true
				}
			}
			return false
		},
		// Every entry drained from a TRAQ bumps Stats.Counted, so a
		// tick across which this sum is frozen also left every
		// recorder's architectural state untouched (only its
		// per-cycle occupancy statistics moved).
		ExtraWork: func() uint64 {
			var w uint64
			for _, r := range s.Recorders {
				w += r.Stats.Counted
			}
			return w
		},
		EndCycle: func(cycle uint64) {
			if s.samp.every != 0 && cycle%s.samp.every == 0 {
				s.sample(cycle)
			}
		},
		CaptureExtra: func() {
			for i, r := range s.Recorders {
				recSnap[i] = r.Stats
			}
		},
		ReplayExtra: func(n uint64) {
			for i, r := range s.Recorders {
				r.Stats.AddScaled(r.Stats.Sub(recSnap[i]), n)
			}
		},
		// Close every sampled track at the exact end of the run.
		FinalSample: func() {
			m.SampleTelemetry()
			s.sample(m.Cycle())
		},
		// Recorder-side fault points observe individual cycles, so
		// fault injection disables fast-forward here even when the
		// machine config alone would allow it.
		DisableFF: s.rcfg.Faults != nil,
		WrapErr: func(core int, err error) error {
			return fmt.Errorf("core: recording: core %d: %w", core, err)
		},
	})
	if err != nil {
		return nil, err
	}

	log := &replaylog.Log{
		Cores:   m.Config().Cores,
		Variant: s.rcfg.Variant.String(),
		Inputs:  s.workload.Inputs,
	}
	if log.Inputs == nil {
		log.Inputs = make([][]uint64, m.Config().Cores)
	}
	res := &Result{
		Log:         log,
		Cycles:      m.Cycle(),
		MemStats:    m.Sys.Stats,
		FinalMemory: m.FinalMemory(),
	}
	for i, r := range s.Recorders {
		stream, err := r.Finalize(m.Cycle())
		if err != nil {
			return nil, err
		}
		// flush.crash: the session dies mid-flush of this core's stream,
		// losing its tail intervals. Downstream must surface the loss as
		// a classified failure, never replay silently wrong.
		if s.rcfg.Faults.Fire(faultinject.FlushCrash) && len(stream.Intervals) > 0 {
			keep := int(s.rcfg.Faults.Rand(faultinject.FlushCrash, uint64(len(stream.Intervals))))
			stream.Intervals = stream.Intervals[:keep]
		}
		log.Streams = append(log.Streams, stream)
		res.CoreStats = append(res.CoreStats, m.Cores[i].Stats)
		res.RecStats = append(res.RecStats, r.Stats)
		res.FinalRegs = append(res.FinalRegs, m.Cores[i].ArchRegs())
	}
	if err := log.Validate(); err != nil {
		return nil, fmt.Errorf("core: recorded log invalid: %w", err)
	}
	// Attach the provenance sideband after the streams are final: the
	// snapshot describes everything the recorders terminated, including
	// any tail a flush.crash fault truncated out of the streams — the
	// forensic record of what was lost.
	log.Provenance = s.rcfg.Provenance.Snapshot()
	return res, nil
}

// Record is the one-call convenience wrapper: build a session and run it.
func Record(mcfg machine.Config, rcfg Config, w Workload) (*Result, error) {
	s, err := NewSession(mcfg, rcfg, w)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
