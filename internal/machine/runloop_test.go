package machine

import (
	"errors"
	"reflect"
	"testing"

	"relaxreplay/internal/isa"
	"relaxreplay/internal/workload"
)

// probeProg builds the probe-tick error workload: a long-latency MUL
// chain keeps the single core frozen (no architectural state moves
// while the multiplier grinds), so the fast-forward enters its
// frozen-tick/probe-tick sequence; the IN behind it has no input
// stream, so the moment it reaches the ROB head the core raises
// isa.ErrOutOfInput. Scanning the MUL latency slides the error cycle
// across the fast-forward's internal phases until it lands exactly on
// the probe tick.
func probeProg(chain int) isa.Program {
	b := isa.NewBuilder("probe-err")
	b.Li(isa.R(3), 7)
	for i := 0; i < chain; i++ {
		b.Mul(isa.R(3), isa.R(3), isa.R(3))
	}
	b.In(isa.R(4))
	b.Halt()
	return b.MustBuild()
}

// TestProbeTickErrorNotSwallowed is the regression test for the
// fast-forward probe-tick bug: the probe Step() in the old machine.Run
// and Session.Run loops never checked core errors, so an error raised
// exactly on the probe tick was detected one cycle late — and when
// that probe tick was also the MaxCycles boundary, the next iteration
// hit the budget check first and masked the real error as a
// *StallError. The scan over MUL latencies guarantees some
// configuration lands the error on a probe tick; for every
// configuration the fast-forwarded run must report the same error at
// the same cycle as the fully ticked run, including when MaxCycles is
// pinned to exactly the error cycle.
func TestProbeTickErrorNotSwallowed(t *testing.T) {
	landed := false
	for chain := 1; chain <= 3; chain++ {
		prog := probeProg(chain)
		for lat := uint64(1); lat <= 30; lat++ {
			build := func(noFF bool, maxCycles uint64) *Machine {
				cfg := DefaultConfig(1)
				cfg.CPU.MulLat = lat
				cfg.NoFastForward = noFF
				if maxCycles != 0 {
					cfg.MaxCycles = maxCycles
				}
				return New(cfg, []isa.Program{prog}, nil)
			}

			ticked := build(true, 0)
			errTicked := ticked.Run()
			if !errors.Is(errTicked, isa.ErrOutOfInput) {
				t.Fatalf("chain=%d lat=%d: ticked run: got %v, want ErrOutOfInput", chain, lat, errTicked)
			}
			errCycle := ticked.Cycle()

			ffed := build(false, 0)
			errFF := ffed.Run()
			if !errors.Is(errFF, isa.ErrOutOfInput) {
				t.Errorf("chain=%d lat=%d: fast-forwarded run: got %v, want ErrOutOfInput", chain, lat, errFF)
			}
			if ffed.Cycle() != errCycle {
				t.Errorf("chain=%d lat=%d: error detected at cycle %d fast-forwarded, %d ticked",
					chain, lat, ffed.Cycle(), errCycle)
			}
			if ffed.FastForwardedCycles() > 0 {
				landed = true
			}

			// MaxCycles pinned to the error cycle: the core error must
			// win over the budget, never be masked as a stall.
			pinned := build(false, errCycle)
			errPinned := pinned.Run()
			var stall *StallError
			if errors.As(errPinned, &stall) {
				t.Errorf("chain=%d lat=%d: core error at the MaxCycles boundary masked as %v", chain, lat, errPinned)
			} else if !errors.Is(errPinned, isa.ErrOutOfInput) {
				t.Errorf("chain=%d lat=%d: pinned run: got %v, want ErrOutOfInput", chain, lat, errPinned)
			}
		}
	}
	if !landed {
		t.Error("no scanned configuration engaged fast-forward before the error; the scan proves nothing")
	}
}

// TestShardedRunMatchesSerial pins the sharding contract at the bare-
// machine level: identical cycle count, statistics and final memory
// for every shard count, including ones that do not divide the core
// count evenly and ones clamped to it.
func TestShardedRunMatchesSerial(t *testing.T) {
	k := workload.FFT(4, 1)
	runWith := func(shards int) *Machine {
		cfg := DefaultConfig(len(k.Progs))
		cfg.Shards = shards
		m := New(cfg, k.Progs, nil)
		m.InitMemory(k.InitMem)
		for i, in := range k.Inputs {
			m.SetInputs(i, in)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return m
	}
	serial := runWith(1)
	for _, shards := range []int{2, 3, 4, 64} {
		m := runWith(shards)
		if m.Cycle() != serial.Cycle() {
			t.Errorf("shards=%d: %d cycles, serial %d", shards, m.Cycle(), serial.Cycle())
		}
		for i := range m.Cores {
			if m.Cores[i].Stats != serial.Cores[i].Stats {
				t.Errorf("shards=%d: core %d stats diverge:\n sharded: %+v\n serial:  %+v",
					shards, i, m.Cores[i].Stats, serial.Cores[i].Stats)
			}
		}
		if m.Sys.Stats != serial.Sys.Stats {
			t.Errorf("shards=%d: memory stats diverge:\n sharded: %+v\n serial:  %+v",
				shards, m.Sys.Stats, serial.Sys.Stats)
		}
		if !reflect.DeepEqual(m.FinalMemory(), serial.FinalMemory()) {
			t.Errorf("shards=%d: final memory diverges from serial", shards)
		}
	}
}

// TestShardedStallReport: a deadlocked sharded run must produce the
// same *StallError (same cycle budget) as the serial loop, proving the
// epoch driver handles the stall exit with workers still parked.
func TestShardedStallReport(t *testing.T) {
	// A spin on a memory word nobody writes: livelock by construction.
	b := isa.NewBuilder("spin")
	b.Li(isa.R(3), 0x100)
	b.Label("loop")
	b.Ld(isa.R(4), isa.R(3), 0)
	b.Beq(isa.R(4), isa.R(0), "loop")
	b.Halt()
	prog := b.MustBuild()
	for _, shards := range []int{1, 2} {
		cfg := DefaultConfig(2)
		cfg.Shards = shards
		cfg.MaxCycles = 5_000
		m := New(cfg, []isa.Program{prog, prog}, nil)
		err := m.Run()
		var stall *StallError
		if !errors.As(err, &stall) {
			t.Fatalf("shards=%d: got %v, want *StallError", shards, err)
		}
		if stall.Cycles != cfg.MaxCycles {
			t.Errorf("shards=%d: stall at %d, want %d", shards, stall.Cycles, cfg.MaxCycles)
		}
	}
}
