// Package machine assembles the simulated multicore: out-of-order
// cores (package cpu) on top of the coherent memory hierarchy (package
// coherence), advanced in lockstep on a single global cycle clock. The
// global clock is also the globally-consistent timestamp source that
// the QuickRec-style interval orderer uses (paper §4.1).
//
//rrlint:deterministic
package machine

import (
	"fmt"
	"strings"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/cpu"
	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/isa"
	"relaxreplay/internal/telemetry"
)

// Register conventions for programs started by the machine.
const (
	// RegCoreID is preloaded with the core's id.
	RegCoreID = isa.Reg(1)
	// RegNumCores is preloaded with the number of cores.
	RegNumCores = isa.Reg(2)
)

// Config describes a machine.
type Config struct {
	Cores     int
	CPU       cpu.Config
	Mem       coherence.Config
	MaxCycles uint64

	// Telemetry, when non-nil, is propagated to the CPU and memory
	// configurations and drives the machine's cycle-sampled trace
	// tracks (ROB/LSQ/MSHR occupancy, ring queue depth). It observes
	// only: simulation behaviour is identical with or without it.
	Telemetry *telemetry.Telemetry

	// Faults, when non-nil, is propagated to the memory system's
	// interconnect (ic.delay / ic.drop points). A dropped coherence
	// message typically surfaces as a *StallError from Run — that loud,
	// classifiable failure is the intended behaviour under fault
	// injection. Nil keeps the machine fully deterministic.
	Faults *faultinject.Injector

	// NoFastForward disables the idle-cycle fast-forward (see Run).
	// Fast-forward never changes observable behaviour — cycle counts,
	// statistics and recorded logs are identical either way, which the
	// determinism regression tests prove by flipping this switch — so
	// the flag exists for those tests and for debugging.
	NoFastForward bool

	// Shards spreads the per-cycle core phase (pipeline tick + L1
	// submits + recorder tick) over this many goroutines, each owning a
	// contiguous range of cores, with an epoch barrier at every cycle
	// boundary. Sharding never changes observable behaviour: cycle
	// counts, statistics and recorded logs are byte-identical to the
	// serial loop (see DESIGN.md §19). 0 or 1 means serial; values
	// above Cores are clamped. Telemetry tracing forces serial, since
	// the tracer's event stream is not shard-safe.
	Shards int
}

// DefaultConfig returns the paper's Table 1 machine with the given
// number of cores (the paper default is 8).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:     cores,
		CPU:       cpu.DefaultConfig(),
		Mem:       coherence.DefaultConfig(cores),
		MaxCycles: 500_000_000,
	}
}

// Machine is one simulated multicore.
type Machine struct {
	cfg   Config
	Sys   *coherence.System
	Cores []*cpu.Core
	cycle uint64

	// PerformSink, when set, receives every memory-system perform
	// event after the owning core has processed it. The memory race
	// recorder uses it to stamp PISNs at the true perform time.
	PerformSink func(ev coherence.PerformEvent)

	// ExtraTick, when set, runs for every core right after that core's
	// pipeline tick, inside the core phase (so on the owning shard when
	// sharded). The recording session hangs the per-core recorder tick
	// here; it must touch only state owned by that core.
	ExtraTick func(core int, cycle uint64)

	ffSkipped uint64 // cycles skipped by fast-forward (see SkipTo)

	pool *shardPool // non-nil only inside a sharded RunWith

	samp sampler
}

// sampler drives the cycle-sampled telemetry counter tracks. The zero
// value (every == 0) is the disabled state. Track names are
// precomputed so the per-sample path does not format strings; they
// carry the core id (e.g. "rob[c3]") because Chrome keys counter
// tracks by (pid, name).
type sampler struct {
	every  uint64
	tracer *telemetry.Tracer

	rob, lsq, wb, mshr []string
}

func newSampler(t *telemetry.Telemetry, cores int) sampler {
	tr := t.Tracer()
	if tr == nil || !tr.Enabled() || t.SampleEvery() == 0 {
		return sampler{}
	}
	s := sampler{every: t.SampleEvery(), tracer: tr}
	for c := 0; c < cores; c++ {
		s.rob = append(s.rob, fmt.Sprintf("rob[c%d]", c))
		s.lsq = append(s.lsq, fmt.Sprintf("lsq[c%d]", c))
		s.wb = append(s.wb, fmt.Sprintf("wb[c%d]", c))
		s.mshr = append(s.mshr, fmt.Sprintf("mshr[c%d]", c))
	}
	tr.NameProcess(telemetry.PidRecord, "record machine")
	for c := 0; c < cores; c++ {
		tr.NameThread(telemetry.PidRecord, c, fmt.Sprintf("core %d", c))
	}
	return s
}

// New builds a machine running progs[i] on core i. hookFor, which may
// be nil, supplies the recorder's observation hooks for each core.
func New(cfg Config, progs []isa.Program, hookFor func(core int) cpu.Hooks) *Machine {
	if len(progs) != cfg.Cores {
		panic(fmt.Sprintf("machine: %d programs for %d cores", len(progs), cfg.Cores))
	}
	cfg.Mem.Cores = cfg.Cores
	if cfg.Telemetry != nil {
		cfg.CPU.Telemetry = cfg.Telemetry
		cfg.Mem.Telemetry = cfg.Telemetry
	}
	if cfg.Faults != nil {
		cfg.Mem.Faults = cfg.Faults
	}
	m := &Machine{cfg: cfg, Sys: coherence.New(cfg.Mem), samp: newSampler(cfg.Telemetry, cfg.Cores)}
	m.Sys.OnPerform = func(ev coherence.PerformEvent) {
		// Synchronous routing preserves the true intra-cycle order of
		// performs and snoops, which the recorder relies on.
		m.Cores[ev.Core].HandlePerform(ev)
		if m.PerformSink != nil {
			m.PerformSink(ev)
		}
	}
	m.Cores = make([]*cpu.Core, cfg.Cores)
	for i := range m.Cores {
		var hooks cpu.Hooks
		if hookFor != nil {
			hooks = hookFor(i)
		}
		m.Cores[i] = cpu.New(i, cfg.CPU, progs[i], m.Sys, hooks)
		m.Cores[i].SetReg(RegCoreID, uint64(i))
		m.Cores[i].SetReg(RegNumCores, uint64(cfg.Cores))
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Cycle returns the current global cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// InitMemory preloads memory words before the run.
func (m *Machine) InitMemory(words map[uint64]uint64) {
	for a, v := range words {
		m.Sys.InitWord(a, v)
	}
}

// SetInputs provides core's external input stream (consumed by IN).
func (m *Machine) SetInputs(core int, in []uint64) { m.Cores[core].SetInputs(in) }

// Step advances the machine one cycle. Inside a sharded RunWith the
// core phase fans out to the shard workers; otherwise the cores tick
// in order on the calling goroutine.
func (m *Machine) Step() {
	if m.pool != nil {
		m.stepSharded()
		return
	}
	m.cycle++
	m.Sys.Tick()
	for _, ev := range m.Sys.DrainCompletions() {
		m.Cores[ev.Core].HandleCompletion(ev)
	}
	for i, c := range m.Cores {
		c.Tick(m.cycle)
		if m.ExtraTick != nil {
			m.ExtraTick(i, m.cycle)
		}
	}
	if m.samp.every != 0 && m.cycle%m.samp.every == 0 {
		m.SampleTelemetry()
	}
}

// SampleTelemetry emits one point on every cycle-sampled trace track
// (ROB/LSQ/write-buffer/MSHR occupancy per core, ring queue depth).
// Step calls it every Telemetry.SampleEvery cycles; callers may invoke
// it directly to close the tracks at the exact end of a run. It is a
// no-op when tracing is disabled.
func (m *Machine) SampleTelemetry() {
	if m.samp.every == 0 {
		return
	}
	tr, cyc := m.samp.tracer, m.cycle
	for i, c := range m.Cores {
		rob, lsq, wb := c.Occupancy()
		tr.Counter(telemetry.PidRecord, i, "cpu", m.samp.rob[i], cyc, uint64(rob))
		tr.Counter(telemetry.PidRecord, i, "cpu", m.samp.lsq[i], cyc, uint64(lsq))
		tr.Counter(telemetry.PidRecord, i, "cpu", m.samp.wb[i], cyc, uint64(wb))
		tr.Counter(telemetry.PidRecord, i, "coherence", m.samp.mshr[i], cyc, uint64(m.Sys.MSHROccupancy(i)))
	}
	tr.Counter(telemetry.PidRecord, 0, "interconnect", "ring.queue", cyc, uint64(m.Sys.RingQueueDepth()))
	tr.Counter(telemetry.PidRecord, 0, "interconnect", "ring.hops", cyc, m.Sys.RingHops())
}

// WorkCount sums the state-mutation counters of every core and the
// memory system. A tick across which it does not move touched no
// architectural state: only the clock and per-cycle statistics (stall
// tallies, occupancy sums) advanced. When sharded, the per-core sums
// come from the per-shard aggregates the workers computed at the last
// epoch barrier, so the coordinator's check stays O(shards).
func (m *Machine) WorkCount() uint64 {
	w := m.Sys.WorkCount()
	if p := m.pool; p != nil {
		for _, sw := range p.work {
			w += sw
		}
		return w
	}
	for _, c := range m.Cores {
		w += c.WorkCount()
	}
	return w
}

// FastForwardEnabled reports whether Run (and the recording session)
// may skip provably idle cycles. Telemetry and fault injection both
// observe individual cycles, so either disables the optimization, as
// does the explicit Config.NoFastForward switch.
func (m *Machine) FastForwardEnabled() bool {
	return m.cfg.Telemetry == nil && m.cfg.Faults == nil && !m.cfg.NoFastForward
}

// NextWakeCycle returns the earliest future cycle at which a frozen
// machine can make progress: the soonest in-flight execution result or
// fetch-stall expiry on any core, or the soonest scheduled memory
// event. ok is false when nothing is pending anywhere — the machine is
// deadlocked and only MaxCycles will end the run.
func (m *Machine) NextWakeCycle() (wake uint64, ok bool) {
	if p := m.pool; p != nil {
		for w := range p.wake {
			if p.wakeOK[w] && (!ok || p.wake[w] < wake) {
				wake, ok = p.wake[w], true
			}
		}
	} else {
		for _, c := range m.Cores {
			if t, o := c.NextWake(); o && (!ok || t < wake) {
				wake, ok = t, true
			}
		}
	}
	if t, o := m.Sys.NextEventCycle(); o && (!ok || t < wake) {
		wake, ok = t, true
	}
	return wake, ok
}

// StatsSnapshot captures every per-core and memory-system counter, so
// a fast-forward can replay the per-cycle statistics delta of skipped
// idle cycles exactly.
type StatsSnapshot struct {
	Cores []cpu.Stats
	Sys   coherence.Stats
}

// CaptureStats records the current counters into s, reusing its
// backing storage.
func (m *Machine) CaptureStats(s *StatsSnapshot) {
	if cap(s.Cores) < len(m.Cores) {
		s.Cores = make([]cpu.Stats, len(m.Cores))
	}
	s.Cores = s.Cores[:len(m.Cores)]
	for i, c := range m.Cores {
		s.Cores[i] = c.Stats
	}
	s.Sys = m.Sys.Stats
}

// ReplayIdleDelta adds n copies of (current counters - s) to the live
// statistics. During a provably idle stretch every counter moves by
// the same amount each cycle, so the one-cycle delta times the skipped
// cycle count reproduces exactly what ticking would have accumulated.
func (m *Machine) ReplayIdleDelta(s *StatsSnapshot, n uint64) {
	for i, c := range m.Cores {
		c.Stats.AddScaled(c.Stats.Sub(s.Cores[i]), n)
	}
	m.Sys.Stats.AddScaled(m.Sys.Stats.Sub(s.Sys), n)
}

// SkipTo advances the global clock (and the memory system's) to cycle
// without simulating the intervening ticks. The caller must have
// proven the machine idle through cycle and replayed the statistics
// delta first.
func (m *Machine) SkipTo(cycle uint64) {
	if cycle > m.cycle {
		m.ffSkipped += cycle - m.cycle
		m.cycle = cycle
		m.Sys.SkipTo(cycle)
	}
}

// FastForwardedCycles returns the total number of cycles skipped by
// fast-forward, for tests that need to prove the optimization actually
// engaged.
func (m *Machine) FastForwardedCycles() uint64 { return m.ffSkipped }

// Done reports whether every core has halted and drained and the
// memory system is idle.
func (m *Machine) Done() bool {
	for _, c := range m.Cores {
		if !c.Quiesced() {
			return false
		}
	}
	return !m.Sys.Busy()
}

// StallError reports that the machine exceeded MaxCycles without
// completing — a deadlocked workload, or (under fault injection) a
// coherence transaction killed by a dropped ring message. Cores holds
// a per-core pipeline/stall snapshot naming the stuck core.
type StallError struct {
	Cycles uint64   // the MaxCycles budget that elapsed
	Cores  []string // per-core pipeline state and stall counters
}

func (e *StallError) Error() string {
	return fmt.Sprintf("machine: exceeded %d cycles (deadlock?): [%s]", e.Cycles, strings.Join(e.Cores, ", "))
}

// Run steps the machine to completion. It fails on a core error (e.g.
// input exhaustion) or with *StallError when MaxCycles elapse without
// completion, which almost always indicates a deadlocked workload
// (e.g. a spinlock never released).
//
// When FastForwardEnabled, Run skips provably idle stretches: after
// two consecutive ticks in which no core and no memory-system
// component mutated state (WorkCount frozen), nothing can change
// before the earliest pending wake-up (NextWakeCycle), so the clock
// jumps there directly while the per-cycle statistics delta — measured
// over the second frozen tick — is replayed for every skipped cycle.
// The result is bit-identical to ticking: same cycle counts, same
// statistics, same recorded logs, just without simulating cycles in
// which nothing happens.
//
// Run is RunWith with an empty Driver; the recording session layers
// its recorder hooks on the same loop (see Driver).
func (m *Machine) Run() error {
	return m.RunWith(Driver{})
}

// CoreSnapshots exposes the per-core stall snapshot for callers that
// build their own StallError (the recording session shares the
// machine's cycle budget).
func (m *Machine) CoreSnapshots() []string { return m.snapshotCores() }

// snapshotCores describes each core's pipeline state plus its final
// telemetry counters (retired and stall counts), so a deadlock report
// shows which core stopped making progress and what it stalled on.
func (m *Machine) snapshotCores() []string {
	out := make([]string, len(m.Cores))
	for i, c := range m.Cores {
		st := c.Stats
		out[i] = fmt.Sprintf("%s retired=%d mem=%d stalls[rob=%d lsq=%d traq=%d wb=%d]",
			c.String(), st.Retired, st.MemRetired,
			st.DispatchStallROB, st.DispatchStallLSQ, st.DispatchStallTRAQ, st.RetireStallWB)
	}
	return out
}

// FinalMemory returns the coherent memory image after Run.
func (m *Machine) FinalMemory() map[uint64]uint64 { return m.Sys.FinalMemory() }

// TotalRetired sums retired instructions over all cores.
func (m *Machine) TotalRetired() uint64 {
	var n uint64
	for _, c := range m.Cores {
		n += c.Stats.Retired
	}
	return n
}
