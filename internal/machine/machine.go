// Package machine assembles the simulated multicore: out-of-order
// cores (package cpu) on top of the coherent memory hierarchy (package
// coherence), advanced in lockstep on a single global cycle clock. The
// global clock is also the globally-consistent timestamp source that
// the QuickRec-style interval orderer uses (paper §4.1).
package machine

import (
	"fmt"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/cpu"
	"relaxreplay/internal/isa"
)

// Register conventions for programs started by the machine.
const (
	// RegCoreID is preloaded with the core's id.
	RegCoreID = isa.Reg(1)
	// RegNumCores is preloaded with the number of cores.
	RegNumCores = isa.Reg(2)
)

// Config describes a machine.
type Config struct {
	Cores     int
	CPU       cpu.Config
	Mem       coherence.Config
	MaxCycles uint64
}

// DefaultConfig returns the paper's Table 1 machine with the given
// number of cores (the paper default is 8).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:     cores,
		CPU:       cpu.DefaultConfig(),
		Mem:       coherence.DefaultConfig(cores),
		MaxCycles: 500_000_000,
	}
}

// Machine is one simulated multicore.
type Machine struct {
	cfg   Config
	Sys   *coherence.System
	Cores []*cpu.Core
	cycle uint64

	// PerformSink, when set, receives every memory-system perform
	// event after the owning core has processed it. The memory race
	// recorder uses it to stamp PISNs at the true perform time.
	PerformSink func(ev coherence.PerformEvent)
}

// New builds a machine running progs[i] on core i. hookFor, which may
// be nil, supplies the recorder's observation hooks for each core.
func New(cfg Config, progs []isa.Program, hookFor func(core int) cpu.Hooks) *Machine {
	if len(progs) != cfg.Cores {
		panic(fmt.Sprintf("machine: %d programs for %d cores", len(progs), cfg.Cores))
	}
	cfg.Mem.Cores = cfg.Cores
	m := &Machine{cfg: cfg, Sys: coherence.New(cfg.Mem)}
	m.Sys.OnPerform = func(ev coherence.PerformEvent) {
		// Synchronous routing preserves the true intra-cycle order of
		// performs and snoops, which the recorder relies on.
		m.Cores[ev.Core].HandlePerform(ev)
		if m.PerformSink != nil {
			m.PerformSink(ev)
		}
	}
	m.Cores = make([]*cpu.Core, cfg.Cores)
	for i := range m.Cores {
		var hooks cpu.Hooks
		if hookFor != nil {
			hooks = hookFor(i)
		}
		m.Cores[i] = cpu.New(i, cfg.CPU, progs[i], m.Sys, hooks)
		m.Cores[i].SetReg(RegCoreID, uint64(i))
		m.Cores[i].SetReg(RegNumCores, uint64(cfg.Cores))
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Cycle returns the current global cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// InitMemory preloads memory words before the run.
func (m *Machine) InitMemory(words map[uint64]uint64) {
	for a, v := range words {
		m.Sys.InitWord(a, v)
	}
}

// SetInputs provides core's external input stream (consumed by IN).
func (m *Machine) SetInputs(core int, in []uint64) { m.Cores[core].SetInputs(in) }

// Step advances the machine one cycle.
func (m *Machine) Step() {
	m.cycle++
	m.Sys.Tick()
	for _, ev := range m.Sys.DrainCompletions() {
		m.Cores[ev.Core].HandleCompletion(ev)
	}
	for _, c := range m.Cores {
		c.Tick(m.cycle)
	}
}

// Done reports whether every core has halted and drained and the
// memory system is idle.
func (m *Machine) Done() bool {
	for _, c := range m.Cores {
		if !c.Quiesced() {
			return false
		}
	}
	return !m.Sys.Busy()
}

// Run steps the machine to completion. It fails on a core error (e.g.
// input exhaustion) or when MaxCycles elapse without completion, which
// almost always indicates a deadlocked workload (e.g. a spinlock never
// released).
func (m *Machine) Run() error {
	for !m.Done() {
		if m.cycle >= m.cfg.MaxCycles {
			return fmt.Errorf("machine: exceeded %d cycles (deadlock?): %v", m.cfg.MaxCycles, m.describeCores())
		}
		m.Step()
		for _, c := range m.Cores {
			if err := c.Err(); err != nil {
				return fmt.Errorf("machine: core %d: %w", c.ID(), err)
			}
		}
	}
	return nil
}

func (m *Machine) describeCores() []string {
	out := make([]string, len(m.Cores))
	for i, c := range m.Cores {
		out[i] = c.String()
	}
	return out
}

// FinalMemory returns the coherent memory image after Run.
func (m *Machine) FinalMemory() map[uint64]uint64 { return m.Sys.FinalMemory() }

// TotalRetired sums retired instructions over all cores.
func (m *Machine) TotalRetired() uint64 {
	var n uint64
	for _, c := range m.Cores {
		n += c.Stats.Retired
	}
	return n
}
