package machine

import (
	"sync"

	"relaxreplay/internal/coherence"
)

// shardPool runs the per-cycle core phase across worker goroutines,
// each owning a contiguous range of cores (pipeline + L1 submit path +
// recorder via ExtraTick). The coordinator (the goroutine inside
// RunWith) runs the memory phase of every cycle serially, then signals
// the workers and blocks until all have finished their cores — a full
// barrier per cycle. The channel handoffs give the epoch its
// happens-before edges: everything a worker wrote before its done-send
// is visible to the coordinator, and everything the coordinator wrote
// before the start-send is visible to the workers. Between epochs the
// workers are parked, so the coordinator may read and write any core
// state directly (Done, CaptureStats, ReplayIdleDelta, the Driver
// hooks) without synchronization.
type shardPool struct {
	lo, hi []int           // core range [lo[w], hi[w]) owned by worker w
	start  []chan struct{} // per-worker epoch kickoff
	done   chan struct{}   // shared completion funnel
	wg     sync.WaitGroup

	// compl holds the cycle's drained completions; workers filter it
	// for their own cores (completions are core-local to handle).
	compl []coherence.Completion

	// Per-shard aggregates, written by worker w at the end of each
	// epoch and folded by WorkCount/NextWakeCycle on the coordinator,
	// so the fast-forward's per-cycle frozen check does not re-walk
	// every core serially.
	work   []uint64
	wake   []uint64
	wakeOK []bool
}

// effectiveShards resolves Config.Shards: clamped to the core count,
// ≤1 means serial, and telemetry tracing forces serial (the tracer's
// buffer is not shard-safe; counters would be, but a traced run is
// for observation, not throughput).
func (m *Machine) effectiveShards() int {
	n := m.cfg.Shards
	if n > m.cfg.Cores {
		n = m.cfg.Cores
	}
	if m.cfg.Telemetry != nil {
		n = 1
	}
	return n
}

// startShards launches the worker pool when the configuration asks
// for a sharded run. Idempotent; serial configurations are a no-op.
func (m *Machine) startShards() {
	n := m.effectiveShards()
	if n <= 1 || m.pool != nil {
		return
	}
	p := &shardPool{
		lo:     make([]int, n),
		hi:     make([]int, n),
		start:  make([]chan struct{}, n),
		done:   make(chan struct{}, n),
		work:   make([]uint64, n),
		wake:   make([]uint64, n),
		wakeOK: make([]bool, n),
	}
	for w := 0; w < n; w++ {
		p.lo[w] = w * m.cfg.Cores / n
		p.hi[w] = (w + 1) * m.cfg.Cores / n
		p.start[w] = make(chan struct{}, 1)
		// Seed the aggregates from the current state so WorkCount and
		// NextWakeCycle answer correctly before the first epoch (the
		// machine may have been stepped serially already).
		for i := p.lo[w]; i < p.hi[w]; i++ {
			c := m.Cores[i]
			p.work[w] += c.WorkCount()
			if t, o := c.NextWake(); o && (!p.wakeOK[w] || t < p.wake[w]) {
				p.wake[w], p.wakeOK[w] = t, true
			}
		}
	}
	m.pool = p
	for w := 0; w < n; w++ {
		p.wg.Add(1)
		go m.shardWorker(p, w)
	}
}

// stopShards shuts the pool down and returns the machine to serial
// stepping. Safe to call when no pool is running.
func (m *Machine) stopShards() {
	p := m.pool
	if p == nil {
		return
	}
	for _, ch := range p.start {
		close(ch)
	}
	p.wg.Wait()
	m.pool = nil
}

// shardWorker is worker w's epoch loop: on each start signal it
// handles its cores' completions, ticks its cores (and their
// recorders via ExtraTick), refreshes its per-shard aggregates, and
// reports the barrier. It exits when startShards's channel is closed
// by stopShards, which then joins it via the WaitGroup.
//
// Everything touched here is owned by this worker's cores: pipeline
// state, L1 state (the submit path stages its cross-core effects —
// see coherence.BeginCorePhase), recorder state. The only shared
// reads are immutable-for-the-epoch coordinator writes (m.cycle,
// p.compl) sequenced by the start-channel handoff.
//
//rrlint:shardphase
func (m *Machine) shardWorker(p *shardPool, w int) {
	defer p.wg.Done()
	lo, hi := p.lo[w], p.hi[w]
	for range p.start[w] {
		cycle := m.cycle
		for _, ev := range p.compl {
			if ev.Core >= lo && ev.Core < hi {
				m.Cores[ev.Core].HandleCompletion(ev)
			}
		}
		var work uint64
		var wake uint64
		var wakeOK bool
		for i := lo; i < hi; i++ {
			c := m.Cores[i]
			c.Tick(cycle)
			if m.ExtraTick != nil {
				m.ExtraTick(i, cycle)
			}
			work += c.WorkCount()
			if t, o := c.NextWake(); o && (!wakeOK || t < wake) {
				wake, wakeOK = t, true
			}
		}
		p.work[w], p.wake[w], p.wakeOK[w] = work, wake, wakeOK
		p.done <- struct{}{}
	}
}

// stepSharded is one epoch: the serial memory phase, a fanned-out
// core phase, and the staged-effect flush that makes the cycle's
// event ordering byte-identical to the serial loop.
func (m *Machine) stepSharded() {
	p := m.pool
	m.cycle++
	m.Sys.Tick()
	p.compl = m.Sys.DrainCompletions()
	m.Sys.BeginCorePhase()
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	for range p.start {
		<-p.done
	}
	m.Sys.EndCorePhase()
	if m.samp.every != 0 && m.cycle%m.samp.every == 0 {
		m.SampleTelemetry()
	}
}
