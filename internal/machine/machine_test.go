package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"relaxreplay/internal/cpu"
	"relaxreplay/internal/isa"
)

// run builds and runs a machine over the given programs.
func run(t *testing.T, progs []isa.Program, init map[uint64]uint64) *Machine {
	t.Helper()
	cfg := DefaultConfig(len(progs))
	cfg.MaxCycles = 10_000_000
	m := New(cfg, progs, nil)
	m.InitMemory(init)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

// runReference executes prog on the in-order interpreter with the
// machine's register conventions.
func runReference(t *testing.T, prog isa.Program, init map[uint64]uint64, core, cores int) (*isa.Thread, *isa.FlatMemory) {
	t.Helper()
	mem := isa.NewFlatMemory()
	for a, v := range init {
		mem.Store(a, v)
	}
	th := &isa.Thread{Prog: prog}
	th.SetReg(RegCoreID, uint64(core))
	th.SetReg(RegNumCores, uint64(cores))
	if err := th.Run(mem, 10_000_000); err != nil {
		t.Fatal(err)
	}
	return th, mem
}

// expectMatch compares the OOO machine against the in-order reference
// for a single-core program.
func expectMatch(t *testing.T, prog isa.Program, init map[uint64]uint64) *Machine {
	t.Helper()
	m := run(t, []isa.Program{prog}, init)
	th, mem := runReference(t, prog, init, 0, 1)
	if got, want := m.Cores[0].ArchRegs(), th.Regs; got != want {
		t.Fatalf("register mismatch:\n ooo: %v\n ref: %v", got, want)
	}
	gotMem := m.FinalMemory()
	wantMem := mem.Snapshot()
	if len(gotMem) != len(wantMem) {
		t.Fatalf("memory mismatch:\n ooo: %v\n ref: %v", gotMem, wantMem)
	}
	for a, v := range wantMem {
		if gotMem[a] != v {
			t.Fatalf("mem[%#x] = %d, want %d", a, gotMem[a], v)
		}
	}
	if got, want := m.Cores[0].Stats.Retired, th.Instret; got != want {
		t.Fatalf("retired %d instructions, reference executed %d", got, want)
	}
	return m
}

func TestALULoop(t *testing.T) {
	b := isa.NewBuilder("sum100")
	b.Li(isa.R(3), 0).Li(isa.R(4), 1).Li(isa.R(5), 101)
	b.Label("loop")
	b.Add(isa.R(3), isa.R(3), isa.R(4))
	b.Addi(isa.R(4), isa.R(4), 1)
	b.Bne(isa.R(4), isa.R(5), "loop")
	b.Halt()
	expectMatch(t, b.MustBuild(), nil)
}

func TestLoadStoreSingleCore(t *testing.T) {
	b := isa.NewBuilder("memops")
	b.Li(isa.R(3), 0x1000)
	b.Li(isa.R(4), 0).Li(isa.R(5), 16)
	b.Label("loop")
	b.Slli(isa.R(6), isa.R(4), 3)
	b.Add(isa.R(6), isa.R(3), isa.R(6))
	b.Mul(isa.R(7), isa.R(4), isa.R(4))
	b.St(isa.R(7), isa.R(6), 0)
	b.Ld(isa.R(8), isa.R(6), 0)
	b.Add(isa.R(9), isa.R(9), isa.R(8))
	b.Addi(isa.R(4), isa.R(4), 1)
	b.Bne(isa.R(4), isa.R(5), "loop")
	b.Halt()
	expectMatch(t, b.MustBuild(), nil)
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A store immediately followed by a load of the same address: the
	// load must forward and still be architecturally correct.
	b := isa.NewBuilder("fwd")
	b.Li(isa.R(3), 0x2000)
	b.Li(isa.R(4), 77)
	b.St(isa.R(4), isa.R(3), 0)
	b.Ld(isa.R(5), isa.R(3), 0)
	b.Addi(isa.R(5), isa.R(5), 1)
	b.St(isa.R(5), isa.R(3), 8)
	b.Ld(isa.R(6), isa.R(3), 8)
	b.Halt()
	m := expectMatch(t, b.MustBuild(), nil)
	if m.Cores[0].Stats.Forwards == 0 {
		t.Fatal("expected store-to-load forwarding")
	}
}

func TestBranchMispredicts(t *testing.T) {
	// Data-dependent alternating branches defeat the 2-bit predictor.
	b := isa.NewBuilder("zigzag")
	b.Li(isa.R(3), 0)  // i
	b.Li(isa.R(4), 64) // n
	b.Li(isa.R(7), 0)  // acc
	b.Label("loop")
	b.Andi(isa.R(5), isa.R(3), 1)
	b.Beq(isa.R(5), isa.R(0), "even")
	b.Addi(isa.R(7), isa.R(7), 3)
	b.Jmp("next")
	b.Label("even")
	b.Addi(isa.R(7), isa.R(7), 5)
	b.Label("next")
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Bne(isa.R(3), isa.R(4), "loop")
	b.Halt()
	m := expectMatch(t, b.MustBuild(), nil)
	if m.Cores[0].Stats.Mispredicts == 0 {
		t.Fatal("expected mispredicts from alternating branch")
	}
	if m.Cores[0].Stats.SquashedUops == 0 {
		t.Fatal("expected wrong-path squashes")
	}
}

func TestAtomicsAndFence(t *testing.T) {
	b := isa.NewBuilder("atomics")
	b.Li(isa.R(3), 0x3000)
	b.Li(isa.R(4), 5)
	b.AmoAdd(isa.R(5), isa.R(4), isa.R(3), 0, 0) // mem=5, r5=0
	b.Fence()
	b.AmoSwap(isa.R(6), isa.R(4), isa.R(3), 8, 0) // mem[8]=5, r6=0
	b.Mov(isa.R(7), isa.R(0))
	b.Cas(isa.R(7), isa.R(4), isa.R(3), 16, 0) // success: mem[16]=5
	b.Li(isa.R(8), 9)
	b.Cas(isa.R(8), isa.R(4), isa.R(3), 16, 0) // fail (mem=5 != 9): r8=5
	b.Halt()
	expectMatch(t, b.MustBuild(), nil)
}

func TestInputs(t *testing.T) {
	b := isa.NewBuilder("in")
	b.In(isa.R(3)).In(isa.R(4)).Add(isa.R(5), isa.R(3), isa.R(4)).Halt()
	prog := b.MustBuild()
	cfg := DefaultConfig(1)
	m := New(cfg, []isa.Program{prog}, nil)
	m.SetInputs(0, []uint64{30, 12})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Cores[0].ArchRegs()[5]; got != 42 {
		t.Fatalf("r5 = %d", got)
	}
}

func TestInputExhaustion(t *testing.T) {
	b := isa.NewBuilder("in2")
	b.In(isa.R(3)).Halt()
	m := New(DefaultConfig(1), []isa.Program{b.MustBuild()}, nil)
	if err := m.Run(); err == nil {
		t.Fatal("expected input exhaustion error")
	}
}

// spinlockProgram increments a shared counter `iters` times under a
// CAS spinlock. lockAddr and ctrAddr must be on different lines.
func spinlockProgram(lockAddr, ctrAddr uint64, iters int64) isa.Program {
	b := isa.NewBuilder("spinlock")
	b.Li(isa.R(10), int64(lockAddr))
	b.Li(isa.R(11), int64(ctrAddr))
	b.Li(isa.R(3), 0) // i
	b.Li(isa.R(4), iters)
	b.Li(isa.R(5), 1) // lock value
	b.Label("loop")
	b.Label("acquire")
	b.Mov(isa.R(6), isa.R(0)) // expected 0
	b.Cas(isa.R(6), isa.R(5), isa.R(10), 0, isa.FlagAcquire)
	b.Bne(isa.R(6), isa.R(0), "acquire")
	// Critical section.
	b.Ld(isa.R(7), isa.R(11), 0)
	b.Addi(isa.R(7), isa.R(7), 1)
	b.St(isa.R(7), isa.R(11), 0)
	// Release.
	b.StRel(isa.R(0), isa.R(10), 0)
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Bne(isa.R(3), isa.R(4), "loop")
	b.Halt()
	return b.MustBuild()
}

func TestSpinlockCounter(t *testing.T) {
	const cores, iters = 4, 50
	progs := make([]isa.Program, cores)
	for i := range progs {
		progs[i] = spinlockProgram(0x100, 0x200, iters)
	}
	m := run(t, progs, nil)
	if got := m.FinalMemory()[0x200]; got != cores*iters {
		t.Fatalf("counter = %d, want %d", got, cores*iters)
	}
	if got := m.FinalMemory()[0x100]; got != 0 {
		t.Fatalf("lock left held: %d", got)
	}
}

func TestMessagePassingAcquireRelease(t *testing.T) {
	// Producer: data = 42; flag =rel 1.
	p := isa.NewBuilder("producer")
	p.Li(isa.R(3), 0x100) // flag
	p.Li(isa.R(4), 0x200) // data
	p.Li(isa.R(5), 42)
	p.St(isa.R(5), isa.R(4), 0)
	p.StRel(isa.R(6), isa.R(3), 8) // dummy release to exercise multiple WB entries
	p.Li(isa.R(7), 1)
	p.StRel(isa.R(7), isa.R(3), 0)
	p.Halt()
	// Consumer: spin on flag (acquire), then read data.
	c := isa.NewBuilder("consumer")
	c.Li(isa.R(3), 0x100)
	c.Li(isa.R(4), 0x200)
	c.Label("spin")
	c.LdAcq(isa.R(5), isa.R(3), 0)
	c.Beq(isa.R(5), isa.R(0), "spin")
	c.Ld(isa.R(6), isa.R(4), 0)
	c.St(isa.R(6), isa.R(4), 8) // publish result at 0x208
	c.Halt()
	m := run(t, []isa.Program{p.MustBuild(), c.MustBuild()}, nil)
	if got := m.FinalMemory()[0x208]; got != 42 {
		t.Fatalf("consumer read %d, want 42", got)
	}
}

func TestStoreBufferingLitmusShowsRelaxation(t *testing.T) {
	// Classic SB litmus: both cores store then load the other's
	// location. Under RC with write buffers, both loads can (and with
	// this timing, do) read 0 — an execution impossible under SC.
	mk := func(mine, other uint64) isa.Program {
		b := isa.NewBuilder("sb")
		b.Li(isa.R(3), int64(mine))
		b.Li(isa.R(4), int64(other))
		b.Li(isa.R(5), 1)
		b.St(isa.R(5), isa.R(3), 0)
		b.Ld(isa.R(6), isa.R(4), 0)
		b.St(isa.R(6), isa.R(3), 8) // publish what we read
		b.Halt()
		return b.MustBuild()
	}
	m := run(t, []isa.Program{mk(0x100, 0x200), mk(0x200, 0x100)}, nil)
	r0 := m.FinalMemory()[0x108]
	r1 := m.FinalMemory()[0x208]
	if r0 != 0 || r1 != 0 {
		t.Fatalf("expected both loads to bypass the stores (r0=%d r1=%d)", r0, r1)
	}
}

func TestOOOPerformHappens(t *testing.T) {
	// A cache-missing load followed by independent hitting loads: the
	// later loads perform while the miss is pending.
	b := isa.NewBuilder("ooo")
	b.Li(isa.R(3), 0x1000)
	b.Li(isa.R(4), 0x8000) // far line (cold miss)
	for i := 0; i < 8; i++ {
		b.Ld(isa.R(5), isa.R(3), int64(i*8)) // warm the near lines
	}
	b.Ld(isa.R(6), isa.R(4), 0) // cold miss
	for i := 0; i < 8; i++ {
		b.Ld(isa.R(7), isa.R(3), int64(i*8)) // these hit and perform early
	}
	b.Halt()
	m := run(t, []isa.Program{b.MustBuild()}, nil)
	if m.Cores[0].Stats.OOOLoads == 0 {
		t.Fatal("expected out-of-order load performs")
	}
}

func TestDeterminism(t *testing.T) {
	progs := []isa.Program{
		spinlockProgram(0x100, 0x200, 20),
		spinlockProgram(0x100, 0x200, 20),
		spinlockProgram(0x100, 0x200, 20),
	}
	run1 := run(t, progs, nil)
	run2 := run(t, progs, nil)
	if run1.Cycle() != run2.Cycle() {
		t.Fatalf("cycle counts differ: %d vs %d", run1.Cycle(), run2.Cycle())
	}
	for i := range run1.Cores {
		if run1.Cores[i].Stats != run2.Cores[i].Stats {
			t.Fatalf("core %d stats differ", i)
		}
	}
}

// randomProgram builds a random but guaranteed-terminating program:
// straight-line ALU/memory blocks wrapped in bounded counted loops.
func randomProgram(rng *rand.Rand, name string) isa.Program {
	b := isa.NewBuilder(name)
	b.Li(isa.R(20), 0x4000) // memory base
	skipN := 0
	regs := []isa.Reg{3, 4, 5, 6, 7, 8, 9}
	for i, r := range regs {
		b.Li(r, int64(rng.Intn(100)-50)*int64(i+1))
	}
	loops := rng.Intn(3) + 1
	for l := 0; l < loops; l++ {
		cnt := isa.R(21 + l)
		label := name + "-loop" + string(rune('a'+l))
		b.Li(cnt, int64(rng.Intn(6)+2))
		b.Label(label)
		body := rng.Intn(12) + 4
		for i := 0; i < body; i++ {
			rd := regs[rng.Intn(len(regs))]
			rs1 := regs[rng.Intn(len(regs))]
			rs2 := regs[rng.Intn(len(regs))]
			switch rng.Intn(10) {
			case 0, 1:
				b.Add(rd, rs1, rs2)
			case 2:
				b.Sub(rd, rs1, rs2)
			case 3:
				b.Xor(rd, rs1, rs2)
			case 4:
				b.Mul(rd, rs1, rs2)
			case 5:
				b.Slti(rd, rs1, int64(rng.Intn(64)))
			case 6, 7: // store then sometimes load
				off := int64(rng.Intn(16)) * 8
				b.St(rs1, isa.R(20), off)
				if rng.Intn(2) == 0 {
					b.Ld(rd, isa.R(20), off)
				}
			case 8:
				off := int64(rng.Intn(16)) * 8
				b.Ld(rd, isa.R(20), off)
			case 9: // data-dependent skip
				skipN++
				skip := fmt.Sprintf("%s-skip%d", label, skipN)
				b.Beq(rd, rs1, skip)
				b.Addi(rd, rd, 1)
				b.Label(skip)
			}
		}
		b.Addi(cnt, cnt, -1)
		b.Bne(cnt, isa.R(0), label)
	}
	b.Halt()
	return b.MustBuild()
}

// TestDifferentialRandomPrograms checks the OOO core against the
// in-order reference for many random single-core programs.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for s := 0; s < seeds; s++ {
		rng := rand.New(rand.NewSource(int64(s) + 1))
		prog := randomProgram(rng, "rand")
		t.Run(prog.Name, func(t *testing.T) {
			expectMatch(t, prog, nil)
		})
	}
}

// TestDifferentialRandomConfigs fuzzes machine configurations (cache
// geometry, latencies, widths) against the in-order reference: the
// architectural result must be invariant to microarchitecture.
func TestDifferentialRandomConfigs(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for s := 0; s < seeds; s++ {
		rng := rand.New(rand.NewSource(int64(s) + 777))
		prog := randomProgram(rng, "cfgfuzz")
		cfg := DefaultConfig(1)
		cfg.MaxCycles = 10_000_000
		cfg.CPU.ROBSize = []int{8, 32, 176}[rng.Intn(3)]
		cfg.CPU.IssueWidth = 1 + rng.Intn(4)
		cfg.CPU.LdStUnits = 1 + rng.Intn(2)
		cfg.CPU.LSQSize = []int{4, 16, 128}[rng.Intn(3)]
		cfg.CPU.WBSize = 1 + rng.Intn(16)
		cfg.CPU.MispredictPenalty = uint64(rng.Intn(20))
		cfg.CPU.MulLat = 1 + uint64(rng.Intn(5))
		cfg.Mem.L1Sets = []int{1, 4, 512}[rng.Intn(3)]
		cfg.Mem.L1Ways = 1 + rng.Intn(4)
		cfg.Mem.L1MSHRs = 1 + rng.Intn(8)
		cfg.Mem.L2Lat = uint64(rng.Intn(30))
		cfg.Mem.MemLat = uint64(rng.Intn(300))
		cfg.Mem.L2Capacity = 1 + rng.Intn(1000)

		m := New(cfg, []isa.Program{prog}, nil)
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v (cfg %+v)", s, err, cfg.CPU)
		}
		th, mem := runReference(t, prog, nil, 0, 1)
		if m.Cores[0].ArchRegs() != th.Regs {
			t.Fatalf("seed %d: registers diverge under cfg %+v", s, cfg.CPU)
		}
		gotMem := m.FinalMemory()
		for a, v := range mem.Snapshot() {
			if gotMem[a] != v {
				t.Fatalf("seed %d: mem[%#x] = %d, want %d", s, a, gotMem[a], v)
			}
		}
	}
}

// TestMulticoreKernelUnderStressConfigs runs a lock-based workload on
// deliberately tiny structures: correctness must be configuration-
// independent even at 1-entry caches and single-issue cores.
func TestMulticoreKernelUnderStressConfigs(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.MaxCycles = 30_000_000
	cfg.CPU.ROBSize = 8
	cfg.CPU.IssueWidth = 1
	cfg.CPU.LSQSize = 4
	cfg.CPU.WBSize = 1
	cfg.Mem.L1Sets, cfg.Mem.L1Ways = 1, 1
	cfg.Mem.L1MSHRs = 1
	progs := []isa.Program{
		spinlockProgram(0x100, 0x200, 15),
		spinlockProgram(0x100, 0x200, 15),
		spinlockProgram(0x100, 0x200, 15),
	}
	m := New(cfg, progs, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.FinalMemory()[0x200]; got != 45 {
		t.Fatalf("counter = %d, want 45", got)
	}
}

// TestDifferentialModels: the consistency model must not change
// single-threaded architectural results.
func TestDifferentialModels(t *testing.T) {
	for s := 0; s < 8; s++ {
		rng := rand.New(rand.NewSource(int64(s) + 4242))
		prog := randomProgram(rng, "modelfuzz")
		for _, model := range []cpu.MemModel{cpu.RC, cpu.TSO, cpu.SC} {
			cfg := DefaultConfig(1)
			cfg.CPU.Model = model
			m := New(cfg, []isa.Program{prog}, nil)
			if err := m.Run(); err != nil {
				t.Fatalf("seed %d %v: %v", s, model, err)
			}
			th, _ := runReference(t, prog, nil, 0, 1)
			if m.Cores[0].ArchRegs() != th.Regs {
				t.Fatalf("seed %d: %v diverges from reference", s, model)
			}
		}
	}
}

// TestKernelsUnderTSOAndSC: multicore kernels keep their oracles under
// stricter models.
func TestKernelsUnderTSOAndSC(t *testing.T) {
	progs := []isa.Program{
		spinlockProgram(0x100, 0x200, 25),
		spinlockProgram(0x100, 0x200, 25),
	}
	for _, model := range []cpu.MemModel{cpu.TSO, cpu.SC} {
		cfg := DefaultConfig(2)
		cfg.CPU.Model = model
		m := New(cfg, progs, nil)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if got := m.FinalMemory()[0x200]; got != 50 {
			t.Fatalf("%v: counter = %d", model, got)
		}
	}
}
