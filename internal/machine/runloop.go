package machine

import "fmt"

// Driver customizes the shared run loop (RunWith) without duplicating
// it. machine.Run uses the zero Driver; the recording session layers
// its recorder state on top through these hooks. The machine.Run /
// Session.Run pair used to be two hand-copied loops that drifted (the
// session grew recorder snapshots and a fault guard the machine
// lacked, and both lost core errors raised on the fast-forward probe
// tick); RunWith is the single implementation both now share.
//
// Every hook may be nil. The hooks run on the coordinator goroutine,
// between epochs, so they may freely read core and recorder state
// even when the run is sharded.
type Driver struct {
	// ExtraBusy keeps the loop running after the machine quiesces
	// while out-of-machine state (recorder TRAQs) still drains.
	ExtraBusy func() bool

	// ExtraWork extends WorkCount with out-of-machine mutation
	// counters, so the frozen-tick test also proves that state idle.
	ExtraWork func() uint64

	// EndCycle runs after every stepped cycle (not on fast-forwarded
	// ones), e.g. for cycle-sampled recorder telemetry.
	EndCycle func(cycle uint64)

	// CaptureExtra / ReplayExtra bracket the fast-forward statistics
	// replay for out-of-machine counters: CaptureExtra snapshots them
	// before the probe tick, ReplayExtra(n) adds n copies of the
	// per-cycle delta when n cycles are skipped.
	CaptureExtra func()
	ReplayExtra  func(n uint64)

	// FinalSample closes cycle-sampled tracks at the exact end of the
	// run (completion or stall). Nil means Machine.SampleTelemetry.
	FinalSample func()

	// DisableFF forces the fully ticked loop even when the machine
	// itself would allow fast-forward (the session disables it under
	// fault injection, whose recorder-side fault points observe
	// individual cycles).
	DisableFF bool

	// WrapErr decorates a core error. Nil means the plain
	// "machine: core %d" prefix.
	WrapErr func(core int, err error) error
}

// RunWith steps the machine to completion under the driver's hooks.
// See Run for the fast-forward contract. When Config.Shards > 1 the
// core phase of every cycle fans out across the shard workers; the
// loop below runs on the coordinator and observes identical state
// either way.
func (m *Machine) RunWith(d Driver) error {
	m.startShards()
	defer m.stopShards()

	work := func() uint64 {
		w := m.WorkCount()
		if d.ExtraWork != nil {
			w += d.ExtraWork()
		}
		return w
	}
	done := func() bool {
		return m.Done() && (d.ExtraBusy == nil || !d.ExtraBusy())
	}
	finish := func() {
		if d.FinalSample != nil {
			d.FinalSample()
			return
		}
		m.SampleTelemetry()
	}
	step := func() error {
		m.Step()
		if d.EndCycle != nil {
			d.EndCycle(m.cycle)
		}
		for _, c := range m.Cores {
			if err := c.Err(); err != nil {
				if d.WrapErr != nil {
					return d.WrapErr(c.ID(), err)
				}
				return fmt.Errorf("machine: core %d: %w", c.ID(), err)
			}
		}
		return nil
	}

	ff := m.FastForwardEnabled() && !d.DisableFF
	prev := work()
	var snap StatsSnapshot
	for !done() {
		if m.cycle >= m.cfg.MaxCycles {
			finish()
			return &StallError{Cycles: m.cfg.MaxCycles, Cores: m.snapshotCores()}
		}
		if err := step(); err != nil {
			return err
		}
		if !ff {
			continue
		}
		w := work()
		if w != prev || m.cycle >= m.cfg.MaxCycles {
			prev = w
			continue
		}
		// Frozen tick observed. Measure the per-cycle statistics delta
		// over one more tick; if that one is frozen too, skip ahead.
		// The probe tick is a full Step and can surface a core error
		// (e.g. input exhaustion on a woken IN) exactly like any other
		// cycle — step checks it, so the error is reported at its true
		// cycle instead of one tick late or, at the MaxCycles boundary,
		// masked by a *StallError.
		m.CaptureStats(&snap)
		if d.CaptureExtra != nil {
			d.CaptureExtra()
		}
		if err := step(); err != nil {
			return err
		}
		if w2 := work(); w2 != w {
			prev = w2
			continue
		}
		target := m.cfg.MaxCycles
		if wake, ok := m.NextWakeCycle(); ok && wake-1 < target {
			// Resume ticking at wake-1 so the next Step lands exactly
			// on the wake cycle.
			target = wake - 1
		}
		if target > m.cycle {
			n := target - m.cycle
			m.ReplayIdleDelta(&snap, n)
			if d.ReplayExtra != nil {
				d.ReplayExtra(n)
			}
			m.SkipTo(target)
		}
		prev = w
	}
	finish()
	return nil
}
