// Package stats provides the small numeric and table-rendering
// helpers the experiment harness uses to print paper-style tables.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a fixed-width text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// SortRows orders the data rows lexicographically, first column first
// (missing cells sort before empty strings' equals — a shorter row
// precedes a longer one with the same prefix). Callers that assemble
// rows from map-derived or concurrently produced sources sort at the
// source so a rendered table is byte-identical across runs; the sort
// is stable, so rows with equal keys keep their insertion order.
func (t *Table) SortRows() {
	sort.SliceStable(t.rows, func(i, j int) bool {
		a, b := t.rows[i], t.rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, w := range width {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", w, c) // left-align the label column
			} else {
				fmt.Fprintf(&b, "  %*s", w, c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	// A table with no columns has total = 0; render an empty separator
	// instead of handing strings.Repeat a negative count.
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a fraction as a percentage.
func Pct(v float64, prec int) string { return fmt.Sprintf("%.*f%%", prec, v*100) }

// Mean returns the arithmetic mean (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Histogram is a power-of-2 bucketed histogram of non-negative
// integer observations: bucket 0 holds value 0, bucket 1 holds 1,
// bucket k (k >= 2) holds [2^(k-1), 2^k - 1]. Interval sizes and gap
// lengths span orders of magnitude; log buckets keep the table short
// while preserving the shape.
type Histogram struct {
	buckets []uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe adds one observation.
func (h *Histogram) Observe(v uint64) {
	b := 0
	for x := v; x > 0; x >>= 1 {
		b++
	}
	// b is now bit-length: 0 for v=0, 1 for v=1, k for [2^(k-1), 2^k-1].
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// BucketLabel renders bucket b's value range: "0", "1", "2-3", "4-7", ...
func BucketLabel(b int) string {
	if b <= 1 {
		return fmt.Sprintf("%d", b)
	}
	lo := uint64(1) << (b - 1)
	return fmt.Sprintf("%d-%d", lo, lo*2-1)
}

// Rows appends one table row per non-empty leading range of buckets:
// label, count, percentage, and a proportional bar. Trailing empty
// buckets are not rendered.
func (h *Histogram) Rows(t *Table) {
	if h.count == 0 {
		return
	}
	var peak uint64
	for _, n := range h.buckets {
		if n > peak {
			peak = n
		}
	}
	for b, n := range h.buckets {
		bar := ""
		if n > 0 {
			w := int(n * 40 / peak)
			if w == 0 {
				w = 1
			}
			bar = strings.Repeat("#", w)
		}
		t.AddRow(BucketLabel(b), fmt.Sprintf("%d", n), Pct(float64(n)/float64(h.count), 1), bar)
	}
}
