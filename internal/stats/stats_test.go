package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "app", "value")
	tb.AddRow("fft", "12.5")
	tb.AddRow("longname", "3")
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "app") || !strings.Contains(lines[1], "value") {
		t.Fatalf("bad header: %q", lines[1])
	}
	if !strings.Contains(lines[3], "fft") {
		t.Fatalf("bad row: %q", lines[3])
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if out := tb.String(); !strings.Contains(out, "only") {
		t.Fatalf("short row lost:\n%s", out)
	}
}

func TestFormatting(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatal(F(1.23456, 2))
	}
	if Pct(0.1234, 1) != "12.3%" {
		t.Fatal(Pct(0.1234, 1))
	}
}

func TestMeanAndRatio(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of nothing")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("ratio")
	}
}

func TestZeroColumnTableRenders(t *testing.T) {
	empty := NewTable("no columns")
	if got := empty.String(); got != "no columns\n\n\n" {
		t.Fatalf("zero-column render = %q", got)
	}
	// Rows added to a zero-column table must not panic either.
	empty.AddRow()
	_ = empty.String()

	untitled := NewTable("")
	_ = untitled.String()
}

func TestSortRows(t *testing.T) {
	tb := NewTable("", "app", "fault", "n")
	tb.AddRow("lu", "ic.drop", "1")
	tb.AddRow("fft", "ic.drop", "2")
	tb.AddRow("fft", "baseline", "3")
	tb.AddRow("lu")
	tb.SortRows()
	sorted := NewTable("", "app", "fault", "n")
	sorted.AddRow("fft", "baseline", "3")
	sorted.AddRow("fft", "ic.drop", "2")
	sorted.AddRow("lu") // shorter row sorts before its longer extensions
	sorted.AddRow("lu", "ic.drop", "1")
	if got, want := tb.String(), sorted.String(); got != want {
		t.Errorf("sorted render:\n%s\nwant:\n%s", got, want)
	}
}

// SortRows is stable: rows with equal keys keep insertion order.
func TestSortRowsStable(t *testing.T) {
	tb := NewTable("", "k", "v")
	tb.AddRow("a", "first")
	tb.AddRow("a", "second")
	tb.AddRow("a", "third")
	tb.SortRows()
	want := tb.String()
	tb.SortRows()
	if tb.String() != want {
		t.Error("second SortRows changed the order of equal-keyed rows")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, v := range []uint64{0, 1, 1, 2, 3, 4, 7, 8, 100} {
		h.Observe(v)
	}
	if h.Count() != 9 || h.Sum() != 126 || h.Max() != 100 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if h.Mean() != 14 {
		t.Fatalf("mean = %f", h.Mean())
	}
	// Bucket boundaries: 0 | 1 | 2-3 | 4-7 | 8-15 | ... | 64-127.
	want := map[string]string{"0": "1", "1": "2", "2-3": "2", "4-7": "2", "8-15": "1", "64-127": "1"}
	tb := NewTable("", "bucket", "n", "pct", "")
	h.Rows(tb)
	out := tb.String()
	for label, n := range want {
		if !strings.Contains(out, label) {
			t.Fatalf("missing bucket %q:\n%s", label, out)
		}
		_ = n
	}
	if tb.Rows() != 8 { // buckets 0..7 (64-127 is bit-length 7)
		t.Fatalf("rows = %d:\n%s", tb.Rows(), out)
	}
}

func TestBucketLabel(t *testing.T) {
	for b, want := range []string{"0", "1", "2-3", "4-7", "8-15", "16-31"} {
		if got := BucketLabel(b); got != want {
			t.Fatalf("BucketLabel(%d) = %q, want %q", b, got, want)
		}
	}
}

// An empty histogram adds no rows; a single-bucket histogram renders a
// full-width bar.
func TestHistogramRowsEdges(t *testing.T) {
	tb := NewTable("", "bucket", "n", "pct", "")
	(&Histogram{}).Rows(tb)
	if tb.Rows() != 0 {
		t.Fatal("empty histogram rendered rows")
	}
	var h Histogram
	h.Observe(5)
	h.Rows(tb)
	if tb.Rows() != 4 { // buckets 0, 1, 2-3, 4-7
		t.Fatalf("rows = %d", tb.Rows())
	}
	if !strings.Contains(tb.String(), strings.Repeat("#", 40)) {
		t.Fatalf("peak bucket bar not full width:\n%s", tb.String())
	}
}
