// Package cpu models the out-of-order superscalar cores of the
// simulated multicore (paper Table 1: 4-issue, 176-entry ROB, 128-entry
// load/store queue, 2 load/store units) executing the release-consistent
// (RC) memory model.
//
// The core dispatches in order along the predicted path (2-bit branch
// predictor, real wrong-path dispatch with squash on mispredict),
// issues out of order through a dataflow wakeup network, performs loads
// as soon as their address and ordering constraints allow, retires in
// order, and drains retired stores from a write buffer that completes
// out of order — so both load-load, load-store and store-store
// reordering occur, as RC permits.
//
// RC ordering rules implemented:
//   - FENCE: younger memory operations do not issue until every older
//     memory operation has performed.
//   - Acquire loads: younger memory operations do not perform before
//     the acquire performs.
//   - Release stores: do not merge with memory until every older
//     memory operation has performed.
//   - Atomics (AMO/CAS): execute non-speculatively at the ROB head
//     with acquire+release semantics.
//   - Per-address ordering (coherence): same-address accesses from one
//     core perform in program order; store-to-load forwarding serves a
//     load from the youngest older store to the same address.
//
// The memory race recorder observes the core through Hooks; the core
// itself knows nothing about recording.
//
//rrlint:deterministic
package cpu

import (
	"relaxreplay/internal/coherence"
	"relaxreplay/internal/isa"
	"relaxreplay/internal/telemetry"
)

// MemModel selects the memory consistency model the core implements.
// RelaxReplay records correctly under any of them (the paper's
// central claim); the default — and the paper's evaluation target —
// is release consistency.
type MemModel uint8

const (
	// RC is release consistency: loads and stores reorder freely
	// except across acquire/release/fence and same-address pairs.
	RC MemModel = iota
	// TSO is total store ordering: loads bind in program order and
	// stores drain FIFO one at a time, but loads still bypass pending
	// stores (the store buffer is the only visible reordering).
	TSO
	// SC is sequential consistency: every memory operation waits for
	// all older memory operations to perform.
	SC
)

func (m MemModel) String() string {
	switch m {
	case TSO:
		return "tso"
	case SC:
		return "sc"
	}
	return "rc"
}

// Config holds the core parameters (defaults per paper Table 1).
type Config struct {
	Model      MemModel
	ROBSize    int
	IssueWidth int
	LdStUnits  int
	LSQSize    int
	WBSize     int // write buffer entries

	ALULat            uint64
	MulLat            uint64
	MispredictPenalty uint64
	PredictorBits     int // 2-bit counter table of 1<<bits entries

	// Telemetry, when non-nil, receives the core's counters and the
	// ROB occupancy histogram (metric names under "cpu."). It observes
	// only: simulation behaviour is identical with or without it.
	Telemetry *telemetry.Telemetry
}

// DefaultConfig returns the paper's core configuration.
func DefaultConfig() Config {
	return Config{
		ROBSize:           176,
		IssueWidth:        4,
		LdStUnits:         2,
		LSQSize:           128,
		WBSize:            16,
		ALULat:            1,
		MulLat:            3,
		MispredictPenalty: 6,
		PredictorBits:     10,
	}
}

// MemPort is the core's view of the memory hierarchy.
type MemPort interface {
	Submit(coherence.Request) bool
}

// Hooks let the memory race recorder observe the core. All hooks are
// optional.
type Hooks struct {
	// DispatchInstr is called for every instruction entering the ROB
	// (including wrong-path instructions that may later be squashed).
	// Returning false stalls dispatch this cycle (e.g. TRAQ full).
	DispatchInstr func(seq uint64, ins isa.Instr) bool
	// RetireInstr is called for every retired instruction, in program
	// order. The recorder uses it to gate counting of memory entries
	// and NMI filler entries on retirement.
	RetireInstr func(seq uint64, isMem bool)
	// LocalPerform is called when a load binds its value by
	// store-to-load forwarding (no coherence perform event exists).
	LocalPerform func(seq uint64, addr uint64, value uint64)
	// Squash is called when all instructions with sequence >= fromSeq
	// are squashed (branch mispredict).
	Squash func(fromSeq uint64)
	// Halted is called once when the core retires HALT; trailingInstrs
	// is the number of instructions (including HALT) retired since the
	// last memory-access instruction.
	Halted func(trailingInstrs int)
}

// Stats aggregates per-core counters.
type Stats struct {
	Cycles         uint64
	Retired        uint64
	MemRetired     uint64
	LoadsRetired   uint64
	StoresRetired  uint64
	AtomicsRetired uint64

	// OOOLoads/OOOStores count retired memory instructions that
	// performed while an older memory instruction was still pending
	// (paper Figure 1).
	OOOLoads  uint64
	OOOStores uint64

	Mispredicts     uint64
	BranchesRetired uint64
	SquashedUops    uint64
	Forwards        uint64

	DispatchStallROB  uint64
	DispatchStallLSQ  uint64
	DispatchStallTRAQ uint64
	RetireStallWB     uint64
}

// Sub returns the counter-wise difference s - o. Both snapshots must
// come from the same core with s taken later, so every field of s is
// >= the corresponding field of o.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Cycles:            s.Cycles - o.Cycles,
		Retired:           s.Retired - o.Retired,
		MemRetired:        s.MemRetired - o.MemRetired,
		LoadsRetired:      s.LoadsRetired - o.LoadsRetired,
		StoresRetired:     s.StoresRetired - o.StoresRetired,
		AtomicsRetired:    s.AtomicsRetired - o.AtomicsRetired,
		OOOLoads:          s.OOOLoads - o.OOOLoads,
		OOOStores:         s.OOOStores - o.OOOStores,
		Mispredicts:       s.Mispredicts - o.Mispredicts,
		BranchesRetired:   s.BranchesRetired - o.BranchesRetired,
		SquashedUops:      s.SquashedUops - o.SquashedUops,
		Forwards:          s.Forwards - o.Forwards,
		DispatchStallROB:  s.DispatchStallROB - o.DispatchStallROB,
		DispatchStallLSQ:  s.DispatchStallLSQ - o.DispatchStallLSQ,
		DispatchStallTRAQ: s.DispatchStallTRAQ - o.DispatchStallTRAQ,
		RetireStallWB:     s.RetireStallWB - o.RetireStallWB,
	}
}

// AddScaled adds n copies of the per-cycle delta d to s. The machine's
// idle-cycle fast-forward uses it to account skipped cycles: during a
// provably idle stretch each per-cycle counter (cycles, stall tallies)
// advances by the same amount every cycle, so n ticks contribute
// exactly n deltas.
func (s *Stats) AddScaled(d Stats, n uint64) {
	s.Cycles += d.Cycles * n
	s.Retired += d.Retired * n
	s.MemRetired += d.MemRetired * n
	s.LoadsRetired += d.LoadsRetired * n
	s.StoresRetired += d.StoresRetired * n
	s.AtomicsRetired += d.AtomicsRetired * n
	s.OOOLoads += d.OOOLoads * n
	s.OOOStores += d.OOOStores * n
	s.Mispredicts += d.Mispredicts * n
	s.BranchesRetired += d.BranchesRetired * n
	s.SquashedUops += d.SquashedUops * n
	s.Forwards += d.Forwards * n
	s.DispatchStallROB += d.DispatchStallROB * n
	s.DispatchStallLSQ += d.DispatchStallLSQ * n
	s.DispatchStallTRAQ += d.DispatchStallTRAQ * n
	s.RetireStallWB += d.RetireStallWB * n
}

type uopState uint8

const (
	uopWaiting uopState = iota // sources not ready
	uopReady                   // ready to issue
	uopIssued                  // executing / access outstanding
	uopDone                    // result available
)

// uop is one in-flight instruction.
type uop struct {
	seq uint64
	pc  int
	ins isa.Instr

	// Dataflow.
	srcOwner   [3]*uop // rs1, rs2, rd-as-source; nil = value present
	srcVal     [3]uint64
	pendingSrc int
	waiters    []*uop

	state  uopState
	val    uint64 // result: ALU value, load value, RMW old value
	doneAt uint64 // cycle the result becomes available

	addr      uint64
	addrKnown bool

	performed    bool
	performCycle uint64
	oooPerform   bool // performed while an older mem op was pending

	predictedTaken bool
	squashed       bool
	forwarded      bool
}

func (u *uop) isMem() bool { return u.ins.IsMem() }

// wbEntry is a retired store waiting in the write buffer.
type wbEntry struct {
	u      *uop
	issued bool
}

// coreTelem holds the core's pre-resolved telemetry handles. The zero
// value (all nil) is the disabled state: every call is a no-op.
type coreTelem struct {
	cycles     *telemetry.Counter
	retired    *telemetry.Counter
	memRetired *telemetry.Counter
	issuedALU  *telemetry.Counter
	issuedMem  *telemetry.Counter
	mispredict *telemetry.Counter
	squashed   *telemetry.Counter
	forwards   *telemetry.Counter

	stallROB  *telemetry.Counter
	stallLSQ  *telemetry.Counter
	stallTRAQ *telemetry.Counter
	stallWB   *telemetry.Counter

	robOcc *telemetry.Histogram
	lsqOcc *telemetry.Histogram
}

// newCoreTelem resolves the cpu-layer metric handles once at core
// construction, keeping the hot path free of name lookups.
func newCoreTelem(t *telemetry.Telemetry) coreTelem {
	reg := t.Registry()
	if reg == nil {
		return coreTelem{}
	}
	return coreTelem{
		cycles:     reg.Counter("cpu.cycles"),
		retired:    reg.Counter("cpu.retired"),
		memRetired: reg.Counter("cpu.retired.mem"),
		issuedALU:  reg.Counter("cpu.issued.alu"),
		issuedMem:  reg.Counter("cpu.issued.mem"),
		mispredict: reg.Counter("cpu.mispredicts"),
		squashed:   reg.Counter("cpu.squashed_uops"),
		forwards:   reg.Counter("cpu.forwards"),
		stallROB:   reg.Counter("cpu.stall.dispatch_rob"),
		stallLSQ:   reg.Counter("cpu.stall.dispatch_lsq"),
		stallTRAQ:  reg.Counter("cpu.stall.dispatch_traq"),
		stallWB:    reg.Counter("cpu.stall.retire_wb"),
		robOcc:     reg.Histogram("cpu.rob_occupancy"),
		lsqOcc:     reg.Histogram("cpu.lsq_occupancy"),
	}
}
