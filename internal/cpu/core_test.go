package cpu

import (
	"testing"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/isa"
)

// magicMem is a MemPort that serves every request from a flat memory
// after a fixed delay, letting the pipeline be tested in isolation.
type magicMem struct {
	lat          uint64
	words        map[uint64]uint64
	pending      []pendingReq
	submits      []coherence.Request
	submitCycles []uint64
	reject       int // reject the next N submits (MSHR-full modeling)
	cycle        uint64
}

type pendingReq struct {
	due uint64
	req coherence.Request
}

func newMagicMem(lat uint64) *magicMem {
	return &magicMem{lat: lat, words: make(map[uint64]uint64)}
}

func (m *magicMem) Submit(r coherence.Request) bool {
	if m.reject > 0 {
		m.reject--
		return false
	}
	m.submits = append(m.submits, r)
	m.submitCycles = append(m.submitCycles, m.cycle)
	m.pending = append(m.pending, pendingReq{due: m.cycle + m.lat, req: r})
	return true
}

// tick advances one cycle and delivers due responses to the core.
func (m *magicMem) tick(c *Core) {
	m.cycle++
	kept := m.pending[:0]
	for _, p := range m.pending {
		if p.due > m.cycle {
			kept = append(kept, p)
			continue
		}
		r := p.req
		var value uint64
		switch r.Kind {
		case coherence.Load:
			value = m.words[r.Addr]
		case coherence.Store:
			m.words[r.Addr] = r.StoreVal
			value = r.StoreVal
		case coherence.RMW:
			old := m.words[r.Addr]
			if nv, w := r.Apply(old); w {
				m.words[r.Addr] = nv
			}
			value = old
		}
		ev := coherence.PerformEvent{
			Core: r.Core, ID: r.ID, Line: coherence.LineOf(r.Addr), Addr: r.Addr,
			IsWrite: r.Kind != coherence.Load, IsRead: r.Kind != coherence.Store,
			Value: value, Cycle: m.cycle,
		}
		c.HandlePerform(ev)
		c.HandleCompletion(coherence.Completion{Core: r.Core, ID: r.ID, Value: value, Cycle: m.cycle})
	}
	m.pending = kept
	c.Tick(m.cycle)
}

// run executes prog to completion on a single test core.
func run(t *testing.T, prog isa.Program, lat uint64, hooks Hooks) (*Core, *magicMem) {
	t.Helper()
	mem := newMagicMem(lat)
	c := New(0, DefaultConfig(), prog, mem, hooks)
	for i := 0; i < 200000; i++ {
		mem.tick(c)
		if c.Quiesced() {
			return c, mem
		}
	}
	t.Fatalf("core never quiesced: %v", c)
	return nil, nil
}

func TestPipelineBasicALU(t *testing.T) {
	b := isa.NewBuilder("alu")
	b.Li(isa.R(3), 6).Li(isa.R(4), 7).Mul(isa.R(5), isa.R(3), isa.R(4)).Halt()
	c, _ := run(t, b.MustBuild(), 3, Hooks{})
	if c.ArchRegs()[5] != 42 {
		t.Fatalf("r5 = %d", c.ArchRegs()[5])
	}
	if c.Stats.Retired != 4 {
		t.Fatalf("retired = %d", c.Stats.Retired)
	}
}

func TestLoadLatencyOverlap(t *testing.T) {
	// Two independent loads should overlap: total time well under 2x latency.
	b := isa.NewBuilder("mlp")
	b.Li(isa.R(10), 0x100)
	b.Ld(isa.R(3), isa.R(10), 0)
	b.Ld(isa.R(4), isa.R(10), 64)
	b.Halt()
	c, _ := run(t, b.MustBuild(), 50, Hooks{})
	if c.Stats.Cycles > 80 {
		t.Fatalf("loads did not overlap: %d cycles", c.Stats.Cycles)
	}
}

func TestStoreToLoadForwardingPriority(t *testing.T) {
	// Two stores to the same address; the load must forward from the
	// YOUNGEST older one.
	b := isa.NewBuilder("fwd2")
	b.Li(isa.R(10), 0x100)
	b.Li(isa.R(3), 1)
	b.St(isa.R(3), isa.R(10), 0)
	b.Li(isa.R(4), 2)
	b.St(isa.R(4), isa.R(10), 0)
	b.Ld(isa.R(5), isa.R(10), 0)
	b.Halt()
	c, _ := run(t, b.MustBuild(), 30, Hooks{})
	if c.ArchRegs()[5] != 2 {
		t.Fatalf("forwarded %d, want 2", c.ArchRegs()[5])
	}
	if c.Stats.Forwards == 0 {
		t.Fatal("expected forwarding")
	}
}

func TestWriteBufferDrainsSameAddressInOrder(t *testing.T) {
	b := isa.NewBuilder("waw")
	b.Li(isa.R(10), 0x100)
	b.Li(isa.R(3), 1)
	b.St(isa.R(3), isa.R(10), 0)
	b.Li(isa.R(4), 2)
	b.St(isa.R(4), isa.R(10), 0)
	b.Halt()
	_, mem := run(t, b.MustBuild(), 20, Hooks{})
	if mem.words[0x100] != 2 {
		t.Fatalf("final = %d, want 2 (program order)", mem.words[0x100])
	}
}

func TestFenceOrdersMemory(t *testing.T) {
	// Without the fence the load to an independent address could
	// perform before the store drains; with the fence it must not.
	b := isa.NewBuilder("fence")
	b.Li(isa.R(10), 0x100)
	b.Li(isa.R(3), 1)
	b.St(isa.R(3), isa.R(10), 0)
	b.Fence()
	b.Ld(isa.R(4), isa.R(10), 64)
	b.Halt()
	hooks := Hooks{}
	var order []uint64
	hooks.RetireInstr = func(seq uint64, isMem bool) {
		if isMem {
			order = append(order, seq)
		}
	}
	c, mem := run(t, b.MustBuild(), 20, hooks)
	_ = c
	// The load (last submit) must have been submitted after the store
	// completed (fence blocks it).
	if len(mem.submits) != 2 {
		t.Fatalf("submits = %d", len(mem.submits))
	}
	if mem.submits[0].Kind != coherence.Store || mem.submits[1].Kind != coherence.Load {
		t.Fatalf("submit order: %v then %v", mem.submits[0].Kind, mem.submits[1].Kind)
	}
}

func TestLoadBypassesStoreWithoutFence(t *testing.T) {
	b := isa.NewBuilder("nofence")
	b.Li(isa.R(10), 0x100)
	b.Li(isa.R(3), 1)
	b.St(isa.R(3), isa.R(10), 0)
	b.Ld(isa.R(4), isa.R(10), 64)
	b.Halt()
	c, mem := run(t, b.MustBuild(), 20, Hooks{})
	// The independent load is submitted BEFORE the store drains (the
	// store waits for retirement; the load issues immediately).
	if mem.submits[0].Kind != coherence.Load {
		t.Fatal("load did not bypass the buffered store")
	}
	if c.Stats.OOOLoads == 0 && c.Stats.OOOStores == 0 {
		t.Fatal("no out-of-order perform recorded")
	}
}

func TestSquashRestoresRenameState(t *testing.T) {
	// A data-dependent branch that alternates defeats the predictor;
	// register state must survive squashes.
	b := isa.NewBuilder("squash")
	b.Li(isa.R(3), 0)
	b.Li(isa.R(4), 32)
	b.Li(isa.R(5), 0)
	b.Label("loop")
	b.Andi(isa.R(6), isa.R(3), 1)
	b.Beq(isa.R(6), isa.R(0), "skip")
	b.Addi(isa.R(5), isa.R(5), 10)
	b.Label("skip")
	b.Addi(isa.R(5), isa.R(5), 1)
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Bne(isa.R(3), isa.R(4), "loop")
	b.Halt()
	c, _ := run(t, b.MustBuild(), 5, Hooks{})
	if c.Stats.Mispredicts == 0 {
		t.Fatal("expected mispredicts")
	}
	if got := c.ArchRegs()[5]; got != 16*10+32 {
		t.Fatalf("r5 = %d, want %d", got, 16*10+32)
	}
}

func TestSquashHookAndWrongPathMemOps(t *testing.T) {
	var squashes int
	var dispatched, retired int
	hooks := Hooks{
		DispatchInstr: func(seq uint64, ins isa.Instr) bool { dispatched++; return true },
		RetireInstr:   func(seq uint64, isMem bool) { retired++ },
		Squash:        func(fromSeq uint64) { squashes++ },
	}
	b := isa.NewBuilder("wrongpath")
	b.Li(isa.R(10), 0x100)
	b.Li(isa.R(3), 0)
	b.Li(isa.R(4), 16)
	b.Label("loop")
	b.Andi(isa.R(6), isa.R(3), 1)
	b.Beq(isa.R(6), isa.R(0), "even")
	b.Ld(isa.R(7), isa.R(10), 0) // memory on one path only
	b.Label("even")
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Bne(isa.R(3), isa.R(4), "loop")
	b.Halt()
	c, _ := run(t, b.MustBuild(), 10, hooks)
	if squashes == 0 || c.Stats.SquashedUops == 0 {
		t.Fatal("expected squashes")
	}
	if dispatched <= retired {
		t.Fatalf("dispatched %d should exceed retired %d (wrong path)", dispatched, retired)
	}
	if uint64(retired) != c.Stats.Retired {
		t.Fatalf("retire hook count %d != stats %d", retired, c.Stats.Retired)
	}
}

func TestTRAQStallHook(t *testing.T) {
	// A hook that rejects dispatch for a while: the core must retry
	// and eventually finish.
	budget := 0
	hooks := Hooks{
		DispatchInstr: func(seq uint64, ins isa.Instr) bool {
			budget++
			return budget%3 != 0 // reject every third attempt
		},
	}
	b := isa.NewBuilder("stall")
	b.Li(isa.R(3), 5).Addi(isa.R(3), isa.R(3), 1).Halt()
	c, _ := run(t, b.MustBuild(), 5, hooks)
	if c.ArchRegs()[3] != 6 {
		t.Fatalf("r3 = %d", c.ArchRegs()[3])
	}
	if c.Stats.DispatchStallTRAQ == 0 {
		t.Fatal("expected TRAQ stalls")
	}
}

func TestMSHRRejectRetries(t *testing.T) {
	b := isa.NewBuilder("retry")
	b.Li(isa.R(10), 0x100)
	b.Ld(isa.R(3), isa.R(10), 0)
	b.Halt()
	mem := newMagicMem(5)
	mem.words[0x100] = 9
	mem.reject = 4
	c := New(0, DefaultConfig(), b.MustBuild(), mem, Hooks{})
	for i := 0; i < 10000 && !c.Quiesced(); i++ {
		mem.tick(c)
	}
	if c.ArchRegs()[3] != 9 {
		t.Fatalf("r3 = %d", c.ArchRegs()[3])
	}
}

func TestAtomicExecutesAtHeadNonSpeculatively(t *testing.T) {
	var submitsAtRetireGap int
	b := isa.NewBuilder("amo")
	b.Li(isa.R(10), 0x100)
	b.Li(isa.R(3), 5)
	b.AmoAdd(isa.R(4), isa.R(3), isa.R(10), 0, isa.FlagAcquire|isa.FlagRelease)
	b.Ld(isa.R(5), isa.R(10), 0)
	b.Halt()
	c, mem := run(t, b.MustBuild(), 10, Hooks{})
	_ = submitsAtRetireGap
	if c.ArchRegs()[4] != 0 || c.ArchRegs()[5] != 5 {
		t.Fatalf("r4=%d r5=%d", c.ArchRegs()[4], c.ArchRegs()[5])
	}
	// The RMW must be submitted before the younger load (full fence).
	if mem.submits[0].Kind != coherence.RMW {
		t.Fatalf("first submit = %v", mem.submits[0].Kind)
	}
}

func TestReleaseStoreWaitsForOlderStores(t *testing.T) {
	b := isa.NewBuilder("rel")
	b.Li(isa.R(10), 0x100)
	b.Li(isa.R(3), 1)
	b.St(isa.R(3), isa.R(10), 0) // plain
	b.Li(isa.R(4), 2)
	b.StRel(isa.R(4), isa.R(10), 64) // release: must drain after
	b.Halt()
	_, mem := run(t, b.MustBuild(), 25, Hooks{})
	if len(mem.submits) != 2 || mem.submits[0].Addr != 0x100 || mem.submits[1].Addr != 0x140 {
		t.Fatalf("submits = %+v", mem.submits)
	}
	// The release must be submitted only after the first performed:
	// with latency 25, submit cycle gap must exceed it.
	if gap := mem.pendingGap(); gap >= 0 && gap < 25 {
		t.Fatalf("release drained %d cycles after plain store; want >= latency", gap)
	}
}

// pendingGap is a helper recording the submit-cycle distance between
// the first two requests (approximated by due-time difference).
func (m *magicMem) pendingGap() int64 {
	if len(m.submitCycles) < 2 {
		return -1
	}
	return int64(m.submitCycles[1]) - int64(m.submitCycles[0])
}

func TestHaltedHookTrailingCount(t *testing.T) {
	var trailing int
	hooks := Hooks{Halted: func(n int) { trailing = n }}
	b := isa.NewBuilder("trail")
	b.Li(isa.R(10), 0x100)
	b.St(isa.R(10), isa.R(10), 0)
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Halt()
	run(t, b.MustBuild(), 5, hooks)
	if trailing != 3 {
		t.Fatalf("trailing = %d, want 3 (2 addi + halt)", trailing)
	}
}

func TestLocalPerformHookOnForward(t *testing.T) {
	var forwarded []uint64
	hooks := Hooks{LocalPerform: func(seq uint64, addr, value uint64) {
		forwarded = append(forwarded, value)
	}}
	b := isa.NewBuilder("fwdhook")
	b.Li(isa.R(10), 0x100)
	b.Li(isa.R(3), 77)
	b.St(isa.R(3), isa.R(10), 0)
	b.Ld(isa.R(4), isa.R(10), 0)
	b.Halt()
	run(t, b.MustBuild(), 30, hooks)
	if len(forwarded) != 1 || forwarded[0] != 77 {
		t.Fatalf("forwarded = %v", forwarded)
	}
}

func TestStructuralStalls(t *testing.T) {
	// A tiny core must still execute correctly, accumulating stalls.
	cfg := DefaultConfig()
	cfg.ROBSize = 4
	cfg.LSQSize = 2
	cfg.WBSize = 1
	b := isa.NewBuilder("stalls")
	b.Li(isa.R(10), 0x100)
	for i := 0; i < 12; i++ {
		b.St(isa.R(10), isa.R(10), int64(i*8))
		b.Ld(isa.R(3), isa.R(10), int64(i*8))
	}
	b.Halt()
	mem := newMagicMem(10)
	c := New(0, cfg, b.MustBuild(), mem, Hooks{})
	for i := 0; i < 100000 && !c.Quiesced(); i++ {
		mem.tick(c)
	}
	if !c.Quiesced() {
		t.Fatal("never finished")
	}
	if c.Stats.DispatchStallROB == 0 && c.Stats.DispatchStallLSQ == 0 {
		t.Fatal("expected structural stalls on a tiny core")
	}
	if c.Stats.Retired != 26 {
		t.Fatalf("retired = %d", c.Stats.Retired)
	}
}

func TestWriteBufferFullStallsRetire(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WBSize = 1
	b := isa.NewBuilder("wbfull")
	b.Li(isa.R(10), 0x100)
	for i := 0; i < 6; i++ {
		b.St(isa.R(10), isa.R(10), int64(i*64))
	}
	b.Halt()
	mem := newMagicMem(40) // slow stores keep the WB occupied
	c := New(0, cfg, b.MustBuild(), mem, Hooks{})
	for i := 0; i < 100000 && !c.Quiesced(); i++ {
		mem.tick(c)
	}
	if c.Stats.RetireStallWB == 0 {
		t.Fatal("expected write-buffer retire stalls")
	}
	for i := 0; i < 6; i++ {
		if mem.words[uint64(0x100+i*64)] != 0x100 {
			t.Fatalf("store %d lost", i)
		}
	}
}

func TestCASAtHead(t *testing.T) {
	b := isa.NewBuilder("cas")
	b.Li(isa.R(10), 0x100)
	b.Li(isa.R(3), 7) // expected (wrong)
	b.Li(isa.R(4), 9) // new
	b.Cas(isa.R(3), isa.R(4), isa.R(10), 0, isa.FlagAcquire)
	b.Mov(isa.R(5), isa.R(3)) // r5 = old value (0)
	b.Halt()
	mem := newMagicMem(5)
	c := New(0, DefaultConfig(), b.MustBuild(), mem, Hooks{})
	for i := 0; i < 100000 && !c.Quiesced(); i++ {
		mem.tick(c)
	}
	if c.ArchRegs()[5] != 0 {
		t.Fatalf("CAS old = %d", c.ArchRegs()[5])
	}
	if mem.words[0x100] != 0 {
		t.Fatalf("failed CAS wrote: %d", mem.words[0x100])
	}
}
