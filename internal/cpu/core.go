package cpu

import (
	"fmt"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/isa"
)

// Core is one simulated out-of-order core.
type Core struct {
	id    int
	cfg   Config
	prog  isa.Program
	mem   MemPort
	hooks Hooks

	cycle   uint64
	pc      int
	nextSeq uint64

	fetchStallUntil uint64
	haltSeq         int64 // seq of a dispatched HALT, -1 when none
	halted          bool
	err             error

	archRegs [isa.NumRegs]uint64
	regOwner [isa.NumRegs]*uop

	rob       []*uop
	lsq       []*uop // memory ops and fences, program order
	wb        []wbEntry
	readyALU  []*uop
	executing []*uop
	bySeq     map[uint64]*uop

	// execScratch is the spare buffer completeExecuting swaps with
	// executing each cycle, so the per-cycle rebuild allocates nothing.
	execScratch []*uop
	// freeUops recycles retired (never squashed) uops; see allocUop.
	freeUops []*uop
	// work counts state changes; see WorkCount.
	work uint64

	predictor []uint8

	inputs []uint64
	inPos  int

	nonMemSinceMemRetire int

	tel   coreTelem
	Stats Stats
}

// New builds a core executing prog against mem. Initial register state
// can be set with SetReg before the first Tick.
func New(id int, cfg Config, prog isa.Program, mem MemPort, hooks Hooks) *Core {
	c := &Core{
		id:        id,
		cfg:       cfg,
		prog:      prog,
		mem:       mem,
		hooks:     hooks,
		haltSeq:   -1,
		bySeq:     make(map[uint64]*uop),
		predictor: make([]uint8, 1<<cfg.PredictorBits),
		tel:       newCoreTelem(cfg.Telemetry),
	}
	for i := range c.predictor {
		c.predictor[i] = 2 // weakly taken
	}
	return c
}

// SetReg initializes an architectural register (e.g. the thread id).
func (c *Core) SetReg(r isa.Reg, v uint64) {
	if r != 0 {
		c.archRegs[r] = v
	}
}

// SetInputs provides the external input stream consumed by IN.
func (c *Core) SetInputs(in []uint64) { c.inputs = in }

// Halted reports whether the core has retired HALT.
func (c *Core) Halted() bool { return c.halted }

// Err returns the execution error, if any (e.g. input exhaustion).
func (c *Core) Err() error { return c.err }

// Quiesced reports whether the core has no in-flight work left.
func (c *Core) Quiesced() bool {
	return c.halted && len(c.rob) == 0 && len(c.wb) == 0
}

// ArchRegs returns the architectural register file (valid once halted).
func (c *Core) ArchRegs() [isa.NumRegs]uint64 { return c.archRegs }

// ID returns the core id.
func (c *Core) ID() int { return c.id }

// HandlePerform delivers a memory-system perform event: the access
// bound its value this cycle. It may be called synchronously from
// inside a Submit, so it must not mutate the pipeline queues; a
// performed write-buffer store is swept out by drainWB.
//
//rrlint:shardphase
func (c *Core) HandlePerform(ev coherence.PerformEvent) {
	u := c.bySeq[ev.ID]
	if u == nil {
		return // squashed wrong-path access
	}
	c.markPerformed(u, ev.Cycle)
}

// HandleCompletion delivers the pipeline notification for a load, RMW
// or store submitted to the memory system.
//
//rrlint:shardphase
func (c *Core) HandleCompletion(ev coherence.Completion) {
	u := c.bySeq[ev.ID]
	if u == nil || u.state == uopDone {
		return // squashed, or a store (already finished via perform)
	}
	if u.ins.Op == isa.ST {
		return
	}
	c.finish(u, ev.Value)
}

// markPerformed records the perform event and whether it was out of
// program order (an older memory op still pending), for Figure 1.
//
//rrlint:hotpath
func (c *Core) markPerformed(u *uop, cycle uint64) {
	if u.performed {
		return
	}
	c.work++
	u.performed = true
	u.performCycle = cycle
	u.oooPerform = c.olderMemPending(u.seq)
	// Stores perform after retirement (from the write buffer), so
	// their Figure 1 accounting happens here; loads are counted when
	// they retire (wrong-path loads must not count).
	if u.ins.Op == isa.ST && u.oooPerform {
		c.Stats.OOOStores++
	}
}

// olderMemPending reports whether any memory op older than seq has not
// performed yet.
func (c *Core) olderMemPending(seq uint64) bool {
	for _, e := range c.wb {
		if e.u.seq < seq && !e.u.performed {
			return true
		}
	}
	for _, u := range c.lsq {
		if u.seq >= seq {
			break
		}
		if u.isMem() && !u.performed {
			return true
		}
	}
	return false
}

// finish completes a uop's execution: the result is available and
// waiting consumers wake.
//
//rrlint:hotpath
func (c *Core) finish(u *uop, val uint64) {
	c.work++
	u.val = val
	u.state = uopDone
	for _, w := range u.waiters {
		if w.squashed {
			continue
		}
		for i := range w.srcOwner {
			if w.srcOwner[i] == u {
				w.srcOwner[i] = nil
				w.srcVal[i] = val
				w.pendingSrc--
			}
		}
		if w.pendingSrc == 0 && w.state == uopWaiting && c.wantsALUQueue(w) {
			c.pushReady(w)
		}
	}
	u.waiters = u.waiters[:0] // keep the backing array for reuse
}

// wantsALUQueue reports whether the uop issues through the ALU ready
// queue (memory ops, fences, IN and RMW are handled elsewhere).
func (c *Core) wantsALUQueue(u *uop) bool {
	switch u.ins.Op {
	case isa.LD, isa.FENCE, isa.IN, isa.AMOADD, isa.AMOSWAP, isa.CAS, isa.HALT, isa.NOP, isa.JMP:
		return false
	}
	return true
}

//rrlint:hotpath
func (c *Core) pushReady(u *uop) {
	c.work++
	u.state = uopReady
	// Open-coded binary search: sort.Search's closure would allocate
	// its environment on this per-wakeup path.
	lo, hi := 0, len(c.readyALU)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.readyALU[mid].seq > u.seq {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	c.readyALU = append(c.readyALU, nil)
	copy(c.readyALU[lo+1:], c.readyALU[lo:])
	c.readyALU[lo] = u
}

// Tick advances the core one cycle. The machine must deliver this
// cycle's perform and completion events before calling Tick. Under the
// sharded run loop Tick runs on a shard worker, so everything it
// reaches must be core-local or a coherence staging handoff.
//
//rrlint:shardphase
func (c *Core) Tick(cycle uint64) {
	c.cycle = cycle
	if c.err != nil || c.Quiesced() {
		return
	}
	c.Stats.Cycles++
	c.tel.cycles.Inc(c.id)
	c.tel.robOcc.Observe(c.id, uint64(len(c.rob)))
	c.tel.lsqOcc.Observe(c.id, uint64(len(c.lsq)))
	c.completeExecuting()
	c.retire()
	c.issueMem()
	c.issueALU()
	c.dispatch()
}

// completeExecuting finishes ALU-class uops whose latency elapsed.
// Executing a branch may squash (which rewrites c.executing), so the
// walk runs over a detached snapshot. The snapshot and the rebuilt
// queue ping-pong between two persistent buffers, so the per-cycle
// rebuild never allocates.
//
//rrlint:hotpath
func (c *Core) completeExecuting() {
	snapshot := c.executing
	c.executing = c.execScratch[:0]
	for _, u := range snapshot {
		if u.squashed {
			continue
		}
		if u.doneAt > c.cycle {
			c.executing = append(c.executing, u)
			continue
		}
		c.execute(u)
	}
	c.execScratch = snapshot[:0]
}

// execute applies the architectural semantics of an ALU-class uop.
func (c *Core) execute(u *uop) {
	ins := u.ins
	switch {
	case ins.Op == isa.IN || u.forwarded:
		c.finish(u, u.val) // value already bound
	case ins.IsBranch():
		taken := isa.BranchTaken(ins, u.srcVal[0], u.srcVal[1])
		c.trainPredictor(u.pc, taken)
		c.finish(u, 0)
		if taken != u.predictedTaken {
			c.Stats.Mispredicts++
			c.tel.mispredict.Inc(c.id)
			c.mispredict(u, taken)
		}
	case ins.Op == isa.ST:
		u.addr = isa.EffAddr(ins, u.srcVal[0])
		u.addrKnown = true
		c.finish(u, u.srcVal[1]) // val holds the store data
	default:
		c.finish(u, isa.EvalALU(ins, u.srcVal[0], u.srcVal[1]))
	}
}

// mispredict squashes the wrong path and redirects fetch.
func (c *Core) mispredict(u *uop, taken bool) {
	c.squashAfter(u.seq)
	if taken {
		c.pc = int(u.ins.Imm)
	} else {
		c.pc = u.pc + 1
	}
	c.fetchStallUntil = c.cycle + c.cfg.MispredictPenalty
}

// squashAfter removes every uop with seq > after from the pipeline.
func (c *Core) squashAfter(after uint64) {
	c.work++
	cut := len(c.rob)
	for cut > 0 && c.rob[cut-1].seq > after {
		u := c.rob[cut-1]
		u.squashed = true
		delete(c.bySeq, u.seq)
		c.Stats.SquashedUops++
		c.tel.squashed.Inc(c.id)
		cut--
	}
	if cut == len(c.rob) {
		return
	}
	c.rob = c.rob[:cut]

	keepUops := func(s []*uop) []*uop {
		out := s[:0]
		for _, u := range s {
			if !u.squashed {
				out = append(out, u)
			}
		}
		return out
	}
	c.lsq = keepUops(c.lsq)
	c.readyALU = keepUops(c.readyALU)
	c.executing = keepUops(c.executing)

	// Rebuild the rename table from the surviving ROB.
	for r := range c.regOwner {
		c.regOwner[r] = nil
	}
	for _, u := range c.rob {
		if u.ins.WritesReg() {
			c.regOwner[u.ins.Rd] = u
		}
	}
	if c.haltSeq > int64(after) {
		c.haltSeq = -1
	}
	if c.hooks.Squash != nil {
		c.hooks.Squash(after + 1)
	}
}

func (c *Core) predictorIdx(pc int) int { return pc & (len(c.predictor) - 1) }

func (c *Core) predictTaken(pc int) bool { return c.predictor[c.predictorIdx(pc)] >= 2 }

func (c *Core) trainPredictor(pc int, taken bool) {
	i := c.predictorIdx(pc)
	if taken {
		if c.predictor[i] < 3 {
			c.predictor[i]++
		}
	} else if c.predictor[i] > 0 {
		c.predictor[i]--
	}
}

// retire commits up to IssueWidth instructions in program order.
func (c *Core) retire() {
	for n := 0; n < c.cfg.IssueWidth && len(c.rob) > 0; n++ {
		u := c.rob[0]
		switch {
		case u.ins.Op == isa.ST:
			if u.state != uopDone {
				return
			}
			if len(c.wb) >= c.cfg.WBSize {
				c.Stats.RetireStallWB++
				c.tel.stallWB.Inc(c.id)
				return
			}
			c.wb = append(c.wb, wbEntry{u: u})
			// Stays in bySeq until the write buffer drains it.
		case u.ins.IsMem(): // loads, atomics
			if u.state != uopDone || !u.performed {
				return
			}
		case u.ins.Op == isa.FENCE:
			if !c.fenceDone(u) {
				return
			}
		case u.ins.Op == isa.HALT:
			c.work++
			c.halted = true
			c.Stats.Retired++
			c.tel.retired.Inc(c.id)
			c.nonMemSinceMemRetire++
			c.rob = c.rob[1:]
			delete(c.bySeq, u.seq)
			if c.hooks.RetireInstr != nil {
				c.hooks.RetireInstr(u.seq, false)
			}
			if c.hooks.Halted != nil {
				c.hooks.Halted(c.nonMemSinceMemRetire)
			}
			c.freeUop(u)
			return
		default:
			if u.state != uopDone {
				return
			}
		}

		c.work++
		if u.ins.WritesReg() {
			c.archRegs[u.ins.Rd] = u.val
		}
		if u.ins.WritesReg() && c.regOwner[u.ins.Rd] == u {
			c.regOwner[u.ins.Rd] = nil
		}
		c.rob = c.rob[1:]
		if len(c.lsq) > 0 && c.lsq[0] == u {
			c.lsq = c.lsq[1:]
		}
		if u.ins.Op != isa.ST {
			delete(c.bySeq, u.seq)
		}

		c.Stats.Retired++
		c.tel.retired.Inc(c.id)
		if c.hooks.RetireInstr != nil {
			c.hooks.RetireInstr(u.seq, u.ins.IsMem())
		}
		if u.ins.IsMem() {
			c.Stats.MemRetired++
			c.tel.memRetired.Inc(c.id)
			c.nonMemSinceMemRetire = 0
			switch {
			case u.ins.IsAtomic():
				c.Stats.AtomicsRetired++
			case u.ins.Op == isa.LD:
				c.Stats.LoadsRetired++
			default:
				c.Stats.StoresRetired++
			}
			if u.oooPerform && u.ins.Op == isa.LD {
				c.Stats.OOOLoads++
			}
		} else {
			c.nonMemSinceMemRetire++
			if u.ins.IsBranch() {
				c.Stats.BranchesRetired++
			}
		}
		if u.ins.Op != isa.ST {
			// Fully committed and unlinked from every queue: recycle.
			// Stores recycle later, when the write buffer drains them.
			c.freeUop(u)
		}
	}
}

// fenceDone reports whether every memory op older than the fence has
// performed. The fence is at the ROB head, so all older loads/atomics
// have retired (hence performed); only write buffer entries remain.
func (c *Core) fenceDone(u *uop) bool {
	for _, e := range c.wb {
		if e.u.seq < u.seq && !e.u.performed {
			return false
		}
	}
	return true
}

// issueMem issues loads, drains the write buffer, and launches
// non-speculative head operations (RMW, IN), sharing the load/store
// unit bandwidth.
func (c *Core) issueMem() {
	budget := c.cfg.LdStUnits
	c.issueHeadOps(&budget)
	c.issueLoads(&budget)
	c.drainWB(&budget)
}

// issueHeadOps launches RMW and IN at the ROB head.
func (c *Core) issueHeadOps(budget *int) {
	if len(c.rob) == 0 || *budget == 0 {
		return
	}
	u := c.rob[0]
	switch {
	case u.ins.IsAtomic() && u.state == uopWaiting && u.pendingSrc == 0:
		// Atomics act as a full fence: wait for the write buffer.
		if len(c.wb) > 0 {
			return
		}
		u.addr = isa.EffAddr(u.ins, u.srcVal[0])
		u.addrKnown = true
		ins, rs2, rd := u.ins, u.srcVal[1], u.srcVal[2]
		ok := c.mem.Submit(coherence.Request{
			Core: c.id, ID: u.seq, Addr: u.addr, Kind: coherence.RMW,
			Apply: func(old uint64) (uint64, bool) { return isa.AmoApply(ins, old, rs2, rd) },
		})
		if ok {
			c.work++
			u.state = uopIssued
			c.tel.issuedMem.Inc(c.id)
			*budget--
		}
	case u.ins.Op == isa.IN && u.state == uopWaiting:
		c.work++
		if c.inPos >= len(c.inputs) {
			c.err = isa.ErrOutOfInput
			return
		}
		v := c.inputs[c.inPos]
		c.inPos++
		u.state = uopIssued
		u.doneAt = c.cycle + 1
		u.val = v
		c.executing = append(c.executing, u)
	}
}

// issueLoads walks the LSQ in program order issuing ready loads,
// enforcing the RC ordering rules.
func (c *Core) issueLoads(budget *int) {
	storeAddrUnknown := false
	for _, u := range c.lsq {
		if *budget == 0 {
			return
		}
		ins := u.ins
		switch {
		case ins.Op == isa.FENCE:
			if !c.lsqFenceDone(u) {
				return // blocks all younger memory ops
			}
			continue
		case ins.IsAtomic():
			if !u.performed {
				return // full-fence semantics
			}
			continue
		case ins.Op == isa.ST:
			// Opportunistic address generation so younger loads can
			// disambiguate without waiting for the store data.
			if !u.addrKnown && u.srcOwner[0] == nil {
				c.work++
				u.addr = isa.EffAddr(ins, u.srcVal[0])
				u.addrKnown = true
			}
			if !u.addrKnown {
				storeAddrUnknown = true
			}
			continue
		}
		// Load.
		acquire := ins.Flags&isa.FlagAcquire != 0
		if u.state == uopWaiting && !u.performed {
			c.tryIssueLoad(u, storeAddrUnknown, budget)
		}
		if acquire && !u.performed {
			return // acquire blocks all younger memory ops
		}
		if c.cfg.Model != RC && !u.performed {
			// TSO and SC bind loads in program order: nothing younger
			// may issue past an unperformed load.
			return
		}
	}
}

// tryIssueLoad attempts to bind or launch one waiting load.
func (c *Core) tryIssueLoad(u *uop, storeAddrUnknown bool, budget *int) {
	if u.srcOwner[0] != nil {
		return // address operand not ready
	}
	if !u.addrKnown {
		c.work++
		u.addr = isa.EffAddr(u.ins, u.srcVal[0])
		u.addrKnown = true
	}
	if storeAddrUnknown {
		return // conservative: an older store address is unknown
	}
	if c.cfg.Model == SC && c.olderMemPending(u.seq) {
		return // SC: in-order perform of every memory operation
	}
	val, found, blocked := c.forwardSource(u)
	if blocked {
		return
	}
	if found {
		// Store-to-load forwarding from the write buffer or an
		// unretired older store.
		c.Stats.Forwards++
		c.tel.forwards.Inc(c.id)
		u.forwarded = true
		c.markPerformed(u, c.cycle)
		u.state = uopIssued
		u.doneAt = c.cycle + 1
		u.val = val
		c.executing = append(c.executing, u)
		if c.hooks.LocalPerform != nil {
			c.hooks.LocalPerform(u.seq, u.addr, val)
		}
		*budget--
		return
	}
	if !c.mem.Submit(coherence.Request{Core: c.id, ID: u.seq, Addr: u.addr, Kind: coherence.Load}) {
		*budget = 0 // MSHRs full; retry next cycle
		return
	}
	c.work++
	u.state = uopIssued
	c.tel.issuedMem.Inc(c.id)
	*budget--
}

// lsqFenceDone reports whether a fence still inside the LSQ has all
// older memory operations performed (including unretired ones).
func (c *Core) lsqFenceDone(f *uop) bool {
	for _, e := range c.wb {
		if e.u.seq < f.seq && !e.u.performed {
			return false
		}
	}
	for _, u := range c.lsq {
		if u.seq >= f.seq {
			break
		}
		if u.isMem() && !u.performed {
			return false
		}
	}
	return true
}

// forwardSource finds the youngest older store to the same address. It
// returns (value, true, false) to forward, (0, false, true) if the
// load must wait (matching store's data not ready, or an older
// same-address load is still pending), and (0, false, false) to access
// memory.
func (c *Core) forwardSource(ld *uop) (val uint64, found, blocked bool) {
	// Unretired stores and older loads, youngest first.
	for i := len(c.lsq) - 1; i >= 0; i-- {
		u := c.lsq[i]
		if u.seq >= ld.seq {
			continue
		}
		switch u.ins.Op {
		case isa.ST:
			if !u.addrKnown || u.addr != ld.addr {
				continue
			}
			if u.srcOwner[1] == nil {
				return u.srcVal[1], true, false // data ready: forward
			}
			return 0, false, true // same-address store, data pending
		case isa.LD:
			if u.addrKnown && u.addr == ld.addr && !u.performed {
				return 0, false, true // same-address load order (coherence)
			}
		}
	}
	// Write buffer, youngest first.
	for i := len(c.wb) - 1; i >= 0; i-- {
		e := c.wb[i]
		if e.u.seq < ld.seq && e.u.addr == ld.addr {
			return e.u.val, true, false
		}
	}
	return 0, false, false
}

// drainWB issues retired stores to memory. RC lets them complete out
// of order; release stores wait until they are the only unperformed
// memory operation.
func (c *Core) drainWB(budget *int) {
	// Sweep out stores whose perform event arrived.
	kept := c.wb[:0]
	for _, e := range c.wb {
		if e.u.performed {
			c.work++
			delete(c.bySeq, e.u.seq)
			c.freeUop(e.u)
			continue
		}
		kept = append(kept, e)
	}
	c.wb = kept

	for i := range c.wb {
		e := &c.wb[i]
		if *budget == 0 {
			return
		}
		if e.issued {
			continue
		}
		u := e.u
		if c.cfg.Model != RC && i != 0 {
			// TSO/SC: the store buffer drains strictly FIFO, one
			// outstanding store at a time.
			return
		}
		if u.ins.Flags&isa.FlagRelease != 0 {
			// All older stores must have performed (older loads have:
			// they retired before this store did).
			if i != 0 {
				return
			}
		}
		if c.cfg.Model == SC && c.olderMemPending(u.seq) {
			return // SC: no store-load reordering either
		}
		// Same-address stores perform in program order.
		blocked := false
		for j := 0; j < i; j++ {
			if c.wb[j].u.addr == u.addr && !c.wb[j].u.performed {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		if !c.mem.Submit(coherence.Request{
			Core: c.id, ID: u.seq, Addr: u.addr, Kind: coherence.Store, StoreVal: u.val,
		}) {
			return
		}
		c.work++
		e.issued = true
		c.tel.issuedMem.Inc(c.id)
		*budget--
	}
}

// issueALU starts execution of ready ALU-class uops. The consumed
// prefix is shifted out rather than re-sliced away, so the queue keeps
// its backing array and pushReady's insertion stops allocating.
//
//rrlint:hotpath
func (c *Core) issueALU() {
	n, pop := 0, 0
	for pop < len(c.readyALU) && n < c.cfg.IssueWidth {
		u := c.readyALU[pop]
		pop++
		c.work++
		if u.squashed {
			continue
		}
		lat := c.cfg.ALULat
		if u.ins.Op == isa.MUL {
			lat = c.cfg.MulLat
		}
		u.state = uopIssued
		u.doneAt = c.cycle + lat
		c.executing = append(c.executing, u)
		c.tel.issuedALU.Inc(c.id)
		n++
	}
	if pop > 0 {
		m := copy(c.readyALU, c.readyALU[pop:])
		clear(c.readyALU[m:len(c.readyALU)])
		c.readyALU = c.readyALU[:m]
	}
}

// dispatch brings up to IssueWidth instructions into the ROB along the
// predicted path.
func (c *Core) dispatch() {
	if c.halted || c.haltSeq >= 0 || c.cycle < c.fetchStallUntil {
		return
	}
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if c.pc < 0 || c.pc >= len(c.prog.Code) {
			return // off the end: wrong path, wait for squash
		}
		if len(c.rob) >= c.cfg.ROBSize {
			c.Stats.DispatchStallROB++
			c.tel.stallROB.Inc(c.id)
			return
		}
		ins := c.prog.Code[c.pc]
		if (ins.IsMem() || ins.Op == isa.FENCE) && len(c.lsq) >= c.cfg.LSQSize {
			c.Stats.DispatchStallLSQ++
			c.tel.stallLSQ.Inc(c.id)
			return
		}
		seq := c.nextSeq
		if c.hooks.DispatchInstr != nil && !c.hooks.DispatchInstr(seq, ins) {
			c.Stats.DispatchStallTRAQ++
			c.tel.stallTRAQ.Inc(c.id)
			return
		}
		c.nextSeq++
		c.work++
		u := c.allocUop(seq, c.pc, ins)
		c.captureSources(u)
		if ins.WritesReg() {
			c.regOwner[ins.Rd] = u
		}
		c.rob = append(c.rob, u)
		c.bySeq[seq] = u

		switch {
		case ins.Op == isa.NOP:
			u.state = uopDone
			c.pc++
		case ins.Op == isa.JMP:
			u.state = uopDone
			c.pc = int(ins.Imm)
		case ins.Op == isa.HALT:
			u.state = uopDone
			c.haltSeq = int64(seq)
			return
		case ins.IsBranch():
			u.predictedTaken = c.predictTaken(c.pc)
			if u.predictedTaken {
				c.pc = int(ins.Imm)
			} else {
				c.pc++
			}
			if u.pendingSrc == 0 {
				c.pushReady(u)
			}
		case ins.IsMem() || ins.Op == isa.FENCE:
			c.lsq = append(c.lsq, u)
			if ins.Op == isa.LD && u.pendingSrc == 0 {
				u.addr = isa.EffAddr(ins, u.srcVal[0])
				u.addrKnown = true
			}
			if ins.Op == isa.ST && u.pendingSrc == 0 {
				c.pushReady(u)
			}
			c.pc++
		case ins.Op == isa.IN:
			c.pc++
		default: // ALU
			if u.pendingSrc == 0 {
				c.pushReady(u)
			}
			c.pc++
		}
	}
}

// captureSources resolves or subscribes to the uop's register sources.
// The per-operand work lives in captureSource, a method rather than a
// closure: the closure environment was the record path's second-largest
// heap contributor.
//
//rrlint:hotpath
func (c *Core) captureSources(u *uop) {
	if u.ins.ReadsRs1() {
		c.captureSource(u, 0, u.ins.Rs1)
	}
	if u.ins.ReadsRs2() {
		c.captureSource(u, 1, u.ins.Rs2)
	}
	if u.ins.ReadsRd() {
		c.captureSource(u, 2, u.ins.Rd)
	}
}

//rrlint:hotpath
func (c *Core) captureSource(u *uop, idx int, r isa.Reg) {
	owner := c.regOwner[r]
	switch {
	case r == 0 || owner == nil:
		u.srcVal[idx] = c.archRegs[r]
	case owner.state == uopDone:
		u.srcVal[idx] = owner.val
	default:
		u.srcOwner[idx] = owner
		owner.waiters = append(owner.waiters, u)
		u.pendingSrc++
	}
}

// allocUop returns a fresh uop, reusing a retired one when possible:
// the per-instruction heap allocation was the record path's largest
// contributor. The recycled uop's waiter slice keeps its backing array.
func (c *Core) allocUop(seq uint64, pc int, ins isa.Instr) *uop {
	n := len(c.freeUops)
	if n == 0 {
		return &uop{seq: seq, pc: pc, ins: ins}
	}
	u := c.freeUops[n-1]
	c.freeUops[n-1] = nil
	c.freeUops = c.freeUops[:n-1]
	w := u.waiters
	*u = uop{seq: seq, pc: pc, ins: ins}
	u.waiters = w[:0]
	return u
}

// freeUop recycles a committed uop. Callers guarantee no live
// reference remains: not in any queue, not in bySeq, not a register
// owner, waiter list already drained by finish. Squashed uops are
// never recycled — wrong-path uops can linger in the waiter lists of
// their still-executing source owners.
//
//rrlint:hotpath
func (c *Core) freeUop(u *uop) {
	if u.squashed {
		return
	}
	c.freeUops = append(c.freeUops, u)
}

// Occupancy returns the current ROB, LSQ and write-buffer occupancy,
// for the machine's cycle-sampled telemetry tracks.
func (c *Core) Occupancy() (rob, lsq, wb int) {
	return len(c.rob), len(c.lsq), len(c.wb)
}

// WorkCount returns a monotonically increasing count of pipeline state
// changes (dispatches, wakeups, issues, completions, retires, squash
// and write-buffer activity). Two equal readings bracketing a Tick
// prove the tick changed nothing but per-cycle statistics — the
// machine's idle-cycle fast-forward builds on exactly that guarantee,
// so every Core mutation site must bump the counter.
func (c *Core) WorkCount() uint64 { return c.work }

// NextWake returns the earliest future cycle at which this core can
// make progress with no external stimulus: the earliest in-flight
// completion, or the end of a mispredict fetch stall. ok is false when
// no time-based wakeup exists (the core is quiesced, faulted, or
// waiting solely on the memory system). Only meaningful right after a
// zero-work tick; extra early wakeups are harmless, missed ones are
// not.
func (c *Core) NextWake() (cycle uint64, ok bool) {
	if c.err != nil || c.Quiesced() {
		return 0, false
	}
	for _, u := range c.executing {
		if !ok || u.doneAt < cycle {
			cycle, ok = u.doneAt, true
		}
	}
	if !c.halted && c.haltSeq < 0 && c.fetchStallUntil > c.cycle {
		if !ok || c.fetchStallUntil < cycle {
			cycle, ok = c.fetchStallUntil, true
		}
	}
	return cycle, ok
}

// String summarizes the core state for debugging.
func (c *Core) String() string {
	return fmt.Sprintf("core %d pc=%d rob=%d lsq=%d wb=%d halted=%v",
		c.id, c.pc, len(c.rob), len(c.lsq), len(c.wb), c.halted)
}
