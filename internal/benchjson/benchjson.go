// Package benchjson runs the repo's pipeline benchmarks outside `go
// test` and renders the measurements as the BENCH_*.json schema
// (documented in EXPERIMENTS.md). cmd/rrbench's -benchjson flag is the
// entry point; the benchmark bodies mirror bench_pipeline_test.go and
// internal/replaylog's encode benchmark so both report the same
// numbers.
package benchjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"relaxreplay"
	"relaxreplay/internal/replaylog"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations,omitempty"`

	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`

	// CyclesPerSec reports simulated cycles per wall-clock second
	// (recording benchmarks only).
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// LogBytesPerSec reports encoded log bytes produced or consumed per
	// wall-clock second (encode/decode benchmarks only).
	LogBytesPerSec float64 `json:"log_bytes_per_sec,omitempty"`
	// CompressionRatio reports encoded-v3 bytes over encoded-v2 bytes
	// for the same log (encode-v3 benchmark only; < 1.0 means v3 is
	// smaller).
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
}

// Report is the top-level BENCH_*.json document.
type Report struct {
	Schema   string `json:"schema"`
	GoOS     string `json:"goos"`
	GoArch   string `json:"goarch"`
	Workload string `json:"workload"`

	// HostCPUs is runtime.NumCPU() on the measuring host. The sharded
	// record benchmarks (record-shardsN) only show speedup when
	// HostCPUs > 1; on a single-CPU host they measure the epoch
	// barrier's overhead instead.
	HostCPUs int `json:"host_cpus"`

	// Results are the live measurements from this run.
	Results []Result `json:"results"`

	// BaselinePrePR pins the same benchmarks measured immediately
	// before the zero-alloc record/encode pass, so the file itself
	// documents the improvement (the acceptance bar was a >=50%
	// allocs/op reduction on the encode hot loop: 4137 -> single
	// digits).
	BaselinePrePR []Result `json:"baseline_pre_pr"`
}

// baselinePrePR: measured on the commit preceding the zero-alloc pass,
// same benchmark bodies, same machine class as CI.
var baselinePrePR = []Result{
	{Name: "record", NsPerOp: 9809363, BytesPerOp: 5535848, AllocsPerOp: 74510, CyclesPerSec: 196038},
	{Name: "encode", NsPerOp: 4943, AllocsPerOp: 67},
	{Name: "decode", NsPerOp: 9373, AllocsPerOp: 91},
	{Name: "replay", NsPerOp: 210206, AllocsPerOp: 81},
	{Name: "encode-synthetic", NsPerOp: 329755, BytesPerOp: 37408, AllocsPerOp: 4137},
	{Name: "decode-synthetic", NsPerOp: 835939, AllocsPerOp: 6932},
	{Name: "patch-synthetic", NsPerOp: 285371, AllocsPerOp: 2882},
}

// syntheticLog mirrors internal/replaylog's benchLog: a realistically
// shaped 8-core log (mostly InorderBlocks, some reordered accesses and
// cross-core dependence edges).
func syntheticLog(cores, intervalsPerCore int) *replaylog.Log {
	l := &replaylog.Log{Cores: cores, Variant: "opt"}
	for c := 0; c < cores; c++ {
		l.Inputs = append(l.Inputs, []uint64{uint64(c), uint64(c) * 7, uint64(c) * 13})
		s := replaylog.CoreLog{Core: c}
		for i := 0; i < intervalsPerCore; i++ {
			iv := replaylog.Interval{
				Seq:       uint64(i + 1),
				CISN:      uint16(i + 1),
				Timestamp: uint64(c + i*cores),
			}
			iv.Entries = append(iv.Entries,
				replaylog.Entry{Type: replaylog.InorderBlock, Size: uint32(40 + i%17)},
				replaylog.Entry{Type: replaylog.ReorderedLoad, Value: uint64(i) * 3},
				replaylog.Entry{Type: replaylog.InorderBlock, Size: uint32(10 + i%5)},
			)
			if i%3 == 0 {
				iv.Entries = append(iv.Entries,
					replaylog.Entry{Type: replaylog.ReorderedStore, Addr: uint64(0x1000 + i*8), Value: uint64(i), Offset: uint16(i % 4)})
			}
			if i%5 == 0 {
				iv.Entries = append(iv.Entries,
					replaylog.Entry{Type: replaylog.ReorderedAtomic, Addr: uint64(0x2000 + i*8), Value: uint64(i), StoreValue: uint64(i + 1), DidWrite: true})
			}
			if i%4 == 1 && cores > 1 {
				iv.Preds = append(iv.Preds, replaylog.Pred{Core: (c + 1) % cores, Seq: uint64(i)})
			}
			s.Intervals = append(s.Intervals, iv)
		}
		l.Streams = append(l.Streams, s)
	}
	return l
}

// convert flattens a testing.BenchmarkResult into the JSON schema.
func convert(name string, r testing.BenchmarkResult) Result {
	out := Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if cps, ok := r.Extra["cycles/s"]; ok {
		out.CyclesPerSec = cps
	}
	if r.Bytes > 0 && r.T > 0 {
		out.LogBytesPerSec = float64(r.Bytes) * float64(r.N) / r.T.Seconds()
	}
	return out
}

// Run executes every pipeline benchmark once (testing.Benchmark
// semantics: auto-scaled iteration counts) and returns the report.
func Run() (*Report, error) {
	cfg := relaxreplay.DefaultConfig()
	cfg.Cores = 4
	w := relaxreplay.MustKernel("fft", cfg.Cores, 1)
	rec, err := relaxreplay.Record(cfg, w)
	if err != nil {
		return nil, err
	}
	var encoded bytes.Buffer
	if err := rec.WriteLog(&encoded); err != nil {
		return nil, err
	}

	rep := &Report{
		Schema:        "relaxreplay-bench/1",
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		Workload:      "fft, 4 cores, scale 1 (pipeline); synthetic 8x256 log (codec)",
		HostCPUs:      runtime.NumCPU(),
		BaselinePrePR: baselinePrePR,
	}
	add := func(name string, res testing.BenchmarkResult) {
		rep.Results = append(rep.Results, convert(name, res))
	}

	add("record", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			r, err := relaxreplay.Record(cfg, w)
			if err != nil {
				b.Fatal(err)
			}
			cycles += r.Cycles()
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}))

	// Sharded record: same workload, core phase fanned out across
	// epoch-synchronized workers. Byte-identical output by contract
	// (core.TestShardDeterminism), so this measures pure wall-clock;
	// interpret against HostCPUs.
	for _, shards := range []int{2, 4} {
		scfg := cfg
		scfg.Shards = shards
		add(fmt.Sprintf("record-shards%d", shards), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				r, err := relaxreplay.Record(scfg, w)
				if err != nil {
					b.Fatal(err)
				}
				cycles += r.Cycles()
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
		}))
	}

	add("encode", testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(encoded.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rec.WriteLog(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}))

	add("decode", testing.Benchmark(func(b *testing.B) {
		data := encoded.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relaxreplay.ReadLog(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	add("replay", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rec.Replay(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	synth := syntheticLog(8, 256)
	var synthBuf bytes.Buffer
	if err := replaylog.Encode(&synthBuf, synth); err != nil {
		return nil, err
	}

	add("encode-synthetic", testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(synthBuf.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := replaylog.Encode(io.Discard, synth); err != nil {
				b.Fatal(err)
			}
		}
	}))

	add("decode-synthetic", testing.Benchmark(func(b *testing.B) {
		data := synthBuf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := replaylog.Decode(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	add("patch-synthetic", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := synth.Patch(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// v3 codec: compressed group frames + segment index (encode), and
	// the per-core parallel decode path rrreplay uses.
	var v3Buf bytes.Buffer
	if err := replaylog.EncodeV3(&v3Buf, synth); err != nil {
		return nil, err
	}

	add("encode-v3-synthetic", testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(v3Buf.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := replaylog.EncodeV3(io.Discard, synth); err != nil {
				b.Fatal(err)
			}
		}
	}))
	// Pin the size win next to the speed numbers: v3 bytes over v2
	// bytes for the identical log.
	rep.Results[len(rep.Results)-1].CompressionRatio = float64(v3Buf.Len()) / float64(synthBuf.Len())

	add("decode-v3-synthetic", testing.Benchmark(func(b *testing.B) {
		data := v3Buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := replaylog.Decode(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	add("decode-v3-parallel-synthetic", testing.Benchmark(func(b *testing.B) {
		data := v3Buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := replaylog.DecodeParallel(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	return rep, nil
}

// Write runs the benchmarks and writes the indented JSON document.
func Write(w io.Writer) error {
	rep, err := Run()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
