package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"relaxreplay/internal/core"
	"relaxreplay/internal/machine"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/stats"
	"relaxreplay/internal/workload"
)

// Extension: shard scaling -------------------------------------------------

// ScalingRow reports one (machine size, shard count) cell of the
// within-run parallelism sweep.
type ScalingRow struct {
	Cores     int
	Shards    int
	Cycles    uint64  // simulated cycles (identical across shard counts)
	WallSec   float64 // wall-clock recording time
	CyclesSec float64 // simulated cycles per wall-clock second
	Speedup   float64 // vs the 1-shard run of the same machine size
}

// ExtensionShardScaling sweeps machine.Config.Shards over machines
// beyond the paper's 8 cores (default 8/16/32/64) and measures
// recording throughput in simulated cycles per wall-clock second.
// Every cell records the same FFT workload fresh — the suite cache is
// deliberately bypassed, both because Shards is not a cache dimension
// (it cannot change results) and because a cached result has no
// wall-clock time. Each sharded run's encoded log and cycle count are
// checked byte-identical against the serial run of the same machine,
// so the sweep doubles as a large-machine determinism test.
//
// Wall-clock numbers are only meaningful relative to the host: the
// table header records GOMAXPROCS and the CPU count, and speedups on
// a single-CPU host (like the CI container) hover at or below 1.0 —
// the barrier overhead with no parallelism to pay for it.
func (s *Suite) ExtensionShardScaling(coreCounts, shardCounts []int) ([]ScalingRow, *stats.Table, error) {
	if coreCounts == nil {
		coreCounts = []int{8, 16, 32, 64}
	}
	if shardCounts == nil {
		shardCounts = []int{1, 2, 4, 8}
	}
	t := stats.NewTable(fmt.Sprintf("Extension: within-run shard scaling (fft, GOMAXPROCS=%d, NumCPU=%d)",
		runtime.GOMAXPROCS(0), runtime.NumCPU()),
		"cores", "shards", "sim cycles", "wall s", "cycles/s", "speedup")
	var rows []ScalingRow
	for _, nc := range coreCounts {
		var baseLog []byte
		var baseRate float64
		for _, sh := range shardCounts {
			if sh > nc {
				continue
			}
			res, wall, err := s.recordScalingCell(nc, sh)
			if err != nil {
				return nil, nil, fmt.Errorf("scaling %d cores / %d shards: %w", nc, sh, err)
			}
			var buf bytes.Buffer
			if err := replaylog.Encode(&buf, res.Log); err != nil {
				return nil, nil, err
			}
			enc := buf.Bytes()
			if baseLog == nil {
				baseLog = enc
			} else if !bytes.Equal(baseLog, enc) {
				return nil, nil, fmt.Errorf("scaling %d cores: %d-shard log differs from serial (determinism violation)", nc, sh)
			}
			row := ScalingRow{
				Cores: nc, Shards: sh, Cycles: res.Cycles,
				WallSec:   wall.Seconds(),
				CyclesSec: float64(res.Cycles) / wall.Seconds(),
			}
			if baseRate == 0 {
				baseRate = row.CyclesSec
			}
			row.Speedup = row.CyclesSec / baseRate
			rows = append(rows, row)
			t.AddRow(fmt.Sprint(nc), fmt.Sprint(sh), fmt.Sprint(row.Cycles),
				stats.F(row.WallSec, 2), stats.F(row.CyclesSec, 0), stats.F(row.Speedup, 2)+"x")
		}
	}
	return rows, t, nil
}

// recordScalingCell runs one fresh (uncached) fft recording and times it.
func (s *Suite) recordScalingCell(cores, shards int) (*core.Result, time.Duration, error) {
	k := workload.FFT(cores, s.opts.Scale)
	mcfg := machine.DefaultConfig(cores)
	mcfg.Mem.Protocol = s.opts.Protocol
	mcfg.Shards = shards
	rcfg := core.DefaultConfig(core.Opt)
	start := time.Now()
	res, err := core.Record(mcfg, rcfg, core.Workload{
		Name: k.Name, Progs: k.Progs, Inputs: k.Inputs, InitMem: k.InitMem,
	})
	return res, time.Since(start), err
}
