package experiments

import (
	"bytes"
	"testing"

	"relaxreplay/internal/core"
	"relaxreplay/internal/replaylog"
)

// The suite promises that its results do not depend on how the
// recordings were executed: serially, through the -j worker pool, or
// with the machine's idle-cycle fast-forward disabled. This regression
// runs the same spec set all three ways and demands byte-identical
// encoded logs and identical cycle counts.
func TestSuiteExecutionModeDeterminism(t *testing.T) {
	specs := []Spec{
		{App: "fft", Variant: core.Opt, Mode: I4K, Cores: 2},
		{App: "lu", Variant: core.Opt, Mode: I4K, Cores: 2},
		{App: "fft", Variant: core.Base, Mode: INF, Cores: 2},
	}
	base := Options{Cores: 2, Scale: 1, Verify: false, ClockGHz: 2.0}

	run := func(name string, opts Options) (map[string][]byte, map[string]uint64) {
		t.Helper()
		s := NewSuite(opts)
		if err := s.RecordAll(specs); err != nil {
			t.Fatalf("%s: RecordAll: %v", name, err)
		}
		logs := make(map[string][]byte, len(specs))
		cycles := make(map[string]uint64, len(specs))
		for _, sp := range specs {
			r, err := s.Record(sp.App, sp.Variant, sp.Mode, sp.Cores)
			if err != nil {
				t.Fatalf("%s: %v: %v", name, sp, err)
			}
			var buf bytes.Buffer
			if err := replaylog.Encode(&buf, r.Res.Log); err != nil {
				t.Fatalf("%s: encode %v: %v", name, sp, err)
			}
			logs[sp.String()] = buf.Bytes()
			cycles[sp.String()] = r.Res.Cycles
		}
		return logs, cycles
	}

	serialOpts := base
	serialOpts.Parallelism = 1
	serialLogs, serialCycles := run("serial", serialOpts)

	jOpts := base
	jOpts.Parallelism = 4
	jLogs, jCycles := run("-j4", jOpts)

	tickedOpts := base
	tickedOpts.Parallelism = 1
	tickedOpts.NoFastForward = true
	tickedLogs, tickedCycles := run("no-fast-forward", tickedOpts)

	for _, sp := range specs {
		k := sp.String()
		if serialCycles[k] != jCycles[k] || serialCycles[k] != tickedCycles[k] {
			t.Errorf("%s: cycles diverge: serial=%d -j4=%d ticked=%d",
				k, serialCycles[k], jCycles[k], tickedCycles[k])
		}
		if !bytes.Equal(serialLogs[k], jLogs[k]) {
			t.Errorf("%s: encoded log differs between serial and -j4 runs", k)
		}
		if !bytes.Equal(serialLogs[k], tickedLogs[k]) {
			t.Errorf("%s: encoded log differs between fast-forward and ticked runs", k)
		}
	}
}
