package experiments

import (
	"bytes"
	"testing"

	"relaxreplay/internal/core"
	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/replaylog"
)

// Options.Shards must be invisible in every suite output: the sharded
// run loop is a throughput knob, not an execution mode. These tests
// run a spec sample and a chaos-matrix sample serially and sharded
// and demand byte-identical logs and tables.

func TestSuiteShardDeterminism(t *testing.T) {
	specs := []Spec{
		{App: "fft", Variant: core.Opt, Mode: I4K, Cores: 4},
		{App: "lu", Variant: core.Opt, Mode: I4K, Cores: 4},
		{App: "radix", Variant: core.Base, Mode: INF, Cores: 4},
	}
	run := func(shards int) map[string][]byte {
		t.Helper()
		opts := Options{Cores: 4, Scale: 1, Verify: false, ClockGHz: 2.0, Parallelism: 1, Shards: shards}
		s := NewSuite(opts)
		if err := s.RecordAll(specs); err != nil {
			t.Fatalf("shards=%d: RecordAll: %v", shards, err)
		}
		logs := make(map[string][]byte, len(specs))
		for _, sp := range specs {
			r, err := s.Record(sp.App, sp.Variant, sp.Mode, sp.Cores)
			if err != nil {
				t.Fatalf("shards=%d: %v: %v", shards, sp, err)
			}
			var buf bytes.Buffer
			if err := replaylog.Encode(&buf, r.Res.Log); err != nil {
				t.Fatalf("shards=%d: encode %v: %v", shards, sp, err)
			}
			logs[sp.String()] = buf.Bytes()
		}
		return logs
	}
	serial := run(1)
	for _, shards := range []int{2, 4} {
		sharded := run(shards)
		for _, sp := range specs {
			if !bytes.Equal(serial[sp.String()], sharded[sp.String()]) {
				t.Errorf("%v: encoded log differs between serial and %d-shard runs", sp, shards)
			}
		}
	}
}

// TestShardScalingSmall drives the scaling sweep at a size CI can
// afford. The driver itself asserts byte-identical logs across shard
// counts; here we pin the row shape and that simulated cycle counts
// are shard-invariant.
func TestShardScalingSmall(t *testing.T) {
	opts := Options{Cores: 4, Scale: 1, ClockGHz: 2.0}
	s := NewSuite(opts)
	rows, table, err := s.ExtensionShardScaling([]int{2, 4}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 machine sizes x 2 shard counts)", len(rows))
	}
	cycles := map[int]uint64{}
	for _, r := range rows {
		if r.CyclesSec <= 0 {
			t.Errorf("%d cores / %d shards: non-positive throughput %f", r.Cores, r.Shards, r.CyclesSec)
		}
		if want, seen := cycles[r.Cores]; seen && want != r.Cycles {
			t.Errorf("%d cores: simulated cycles vary with shard count: %d vs %d", r.Cores, r.Cycles, want)
		}
		cycles[r.Cores] = r.Cycles
	}
}

// TestChaosShardDeterminism samples the fault matrix sharded: the
// fault points all fire in the memory phase (interconnect) or at
// finalize, so a sharded chaos cell must classify exactly like the
// serial one, table and all.
func TestChaosShardDeterminism(t *testing.T) {
	render := func(shards int) string {
		opts := DefaultOptions()
		opts.Cores = 2
		opts.Scale = 1
		opts.Apps = []string{"fft"}
		opts.Shards = shards
		s := NewSuite(opts)
		inj, err := faultinject.Parse("default@1")
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.ChaosMatrix(inj)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res.Table.String()
	}
	serial := render(1)
	sharded := render(2)
	if serial != sharded {
		t.Errorf("chaos table diverged between serial and sharded runs:\n--- serial ---\n%s--- sharded ---\n%s", serial, sharded)
	}
}
