package experiments

import (
	"testing"

	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/telemetry"
)

// chaosSuite keeps chaos tests fast: 2 cores, tiny scale, two apps
// with different sharing patterns.
func chaosSuite(tel *telemetry.Telemetry) *Suite {
	opts := DefaultOptions()
	opts.Cores = 2
	opts.Scale = 1
	opts.Apps = []string{"fft", "lu"}
	opts.Telemetry = tel
	return NewSuite(opts)
}

// The acceptance gate: the full default fault matrix completes with
// every cell classified into an allowed outcome — no panics, no
// hangs, no silent divergence, no untyped errors.
func TestChaosMatrixClassifiesEveryCell(t *testing.T) {
	tel := telemetry.New(telemetry.Options{Shards: 2})
	s := chaosSuite(tel)
	inj, err := faultinject.Parse("default@1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ChaosMatrix(inj)
	if err != nil {
		if res != nil {
			t.Log("\n" + res.Table.String())
		}
		t.Fatal(err)
	}
	// net.* points belong to NetChaosGrid, not the file-based matrix.
	wantCells := len(s.Apps()) * (1 + len(faultinject.Points()) - len(faultinject.NetPoints()))
	if len(res.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(res.Cells), wantCells)
	}
	outcomes := map[string]int{}
	for _, c := range res.Cells {
		if c.Outcome == "" {
			t.Fatalf("cell %s/%s has no outcome", c.App, c.Point)
		}
		if ForbiddenOutcome(c.Outcome) {
			t.Fatalf("forbidden outcome %s at %s/%s: %s", c.Outcome, c.App, c.Point, c.Detail)
		}
		outcomes[c.Outcome]++
		// Every degraded cell carries forensics; no other cell does.
		if c.Outcome == OutcomeDegraded {
			if len(c.Forensics) == 0 {
				t.Fatalf("degraded cell %s/%s has no forensics", c.App, c.Point)
			}
			for _, rep := range c.Forensics {
				if rep.Cause == "" {
					t.Fatalf("cell %s/%s: forensic report with empty cause: %+v", c.App, c.Point, rep)
				}
				if _, err := rep.JSON(); err != nil {
					t.Fatalf("cell %s/%s: forensics not serializable: %v", c.App, c.Point, err)
				}
			}
		} else if c.Forensics != nil {
			t.Fatalf("non-degraded cell %s/%s (%s) carries forensics", c.App, c.Point, c.Outcome)
		}
		if c.Point == chaosBaseline {
			if c.Outcome != OutcomeIdentical {
				t.Fatalf("baseline cell %s = %s (%s)", c.App, c.Outcome, c.Detail)
			}
		} else if c.Fired == 0 {
			t.Errorf("cell %s/%s fired no faults", c.App, c.Point)
		}
	}
	// The matrix must actually exercise the degradation machinery, not
	// just reject everything (or survive everything).
	if outcomes[OutcomeDegraded] == 0 && outcomes[OutcomeRejected] == 0 {
		t.Fatalf("no cell degraded or rejected: %v", outcomes)
	}
	if res.Table.Rows() != wantCells {
		t.Fatalf("table rows = %d, want %d", res.Table.Rows(), wantCells)
	}
	// Chaos observability: the injector counters must have flowed into
	// telemetry.
	var injected, degraded uint64
	for _, m := range tel.Registry().Snapshot() {
		switch m.Name {
		case "faults.injected":
			injected = m.Value
		case "replay.degraded":
			degraded = m.Value
		}
	}
	if injected == 0 {
		t.Fatal("faults.injected counter never incremented")
	}
	if outcomes[OutcomeDegraded] > 0 && degraded == 0 {
		t.Fatal("replay.degraded counter never incremented despite degraded cells")
	}
}

func TestChaosMatrixNeedsInjector(t *testing.T) {
	if _, err := chaosSuite(nil).ChaosMatrix(nil); err == nil {
		t.Fatal("nil injector accepted")
	}
}

func TestForbiddenOutcome(t *testing.T) {
	for _, o := range []string{OutcomeIdentical, OutcomeDegraded, OutcomeRejected,
		OutcomeRecordStall, OutcomeReplayStall} {
		if ForbiddenOutcome(o) {
			t.Fatalf("%s should be allowed", o)
		}
	}
	for _, o := range []string{OutcomePanic, OutcomeSilent, OutcomeError, "", "bogus"} {
		if !ForbiddenOutcome(o) {
			t.Fatalf("%s should be forbidden", o)
		}
	}
}

// With fault injection disabled, an instrumented suite must emit
// byte-identical logs and tables: the nil-injector pipeline is the
// production pipeline.
func TestSuiteTablesUnchangedByDisabledInjector(t *testing.T) {
	a, _, err := smallSuite().Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// A second suite with telemetry attached (the chaos-instrumented
	// configuration) but no injector anywhere.
	opts := DefaultOptions()
	opts.Cores = 4
	opts.Scale = 1
	opts.Apps = []string{"fft", "volrend", "barnes"}
	opts.Telemetry = telemetry.New(telemetry.Options{Shards: 2})
	b, _, err := NewSuite(opts).Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestChaosTableStableAcrossRuns asserts the chaos table renders
// byte-identically across two independent runs of the same spec: the
// rows are sorted at the source (stats.Table.SortRows), so neither
// worker-pool completion order nor map iteration anywhere upstream
// can leak into the output.
func TestChaosTableStableAcrossRuns(t *testing.T) {
	render := func() string {
		s := chaosSuite(telemetry.New(telemetry.Options{Shards: 2}))
		inj, err := faultinject.Parse("default@1")
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.ChaosMatrix(inj)
		if err != nil {
			t.Fatal(err)
		}
		return res.Table.String()
	}
	first := render()
	second := render()
	if first != second {
		t.Errorf("chaos table diverged across identical runs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}
