package experiments

import (
	"bytes"
	"strings"
	"testing"

	"relaxreplay/internal/core"
	"relaxreplay/internal/replaylog"
)

// smallSuite keeps experiment tests fast: 4 cores, a 3-app subset,
// verification ON (every recording in these tests is replay-verified).
func smallSuite() *Suite {
	opts := DefaultOptions()
	opts.Cores = 4
	opts.Scale = 1
	opts.Apps = []string{"fft", "volrend", "barnes"}
	return NewSuite(opts)
}

func TestRunCaching(t *testing.T) {
	s := smallSuite()
	a, err := s.Record("fft", core.Opt, I4K, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Record("fft", core.Opt, I4K, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical runs not cached")
	}
	c, err := s.Record("fft", core.Base, I4K, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different configs shared a cache entry")
	}
}

func TestUnknownAppFails(t *testing.T) {
	s := smallSuite()
	if _, err := s.Record("nope", core.Opt, I4K, 4); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestFigure1Invariants(t *testing.T) {
	s := smallSuite()
	rows, table, err := s.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 3 apps + average
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OOOLoads < 0 || r.OOOLoads > 1 || r.OOOStores < 0 || r.OOOStores > 1 {
			t.Fatalf("fraction out of range: %+v", r)
		}
	}
	if rows[len(rows)-1].App != "average" {
		t.Fatal("missing average row")
	}
	if !strings.Contains(table.String(), "Figure 1") {
		t.Fatal("table title missing")
	}
}

func TestFigure9Invariants(t *testing.T) {
	s := smallSuite()
	rows, _, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper's headline shape: Opt never logs more reordered
		// accesses than Base at the same interval size, and larger
		// intervals never increase Base's reordered fraction.
		if r.Opt4K > r.Base4K+1e-9 {
			t.Fatalf("%s: Opt4K %.4f > Base4K %.4f", r.App, r.Opt4K, r.Base4K)
		}
		if r.OptINF > r.BaseINF+1e-9 {
			t.Fatalf("%s: OptINF > BaseINF", r.App)
		}
		if r.BaseINF > r.Base4K+1e-9 {
			t.Fatalf("%s: BaseINF %.4f > Base4K %.4f", r.App, r.BaseINF, r.Base4K)
		}
	}
}

func TestFigure10And11Invariants(t *testing.T) {
	s := smallSuite()
	rows10, _, err := s.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows10[:len(rows10)-1] {
		if r.Opt4K > r.Base4K || r.OptINF > r.BaseINF {
			t.Fatalf("%s: Opt produced more InorderBlocks than Base", r.App)
		}
	}
	rows11, _, err := s.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows11[:len(rows11)-1] {
		if r.Opt4KBits > r.Base4KBits+1e-9 || r.OptINFBits > r.BaseINFBits+1e-9 {
			t.Fatalf("%s: Opt log larger than Base log", r.App)
		}
		if r.Opt4KMBps <= 0 {
			t.Fatalf("%s: nonpositive log rate", r.App)
		}
		// Every config must report a compressed v3 footprint.
		for _, v3B := range []float64{r.Base4KV3B, r.Opt4KV3B, r.BaseINFV3B, r.OptINFV3B} {
			if v3B <= 0 {
				t.Fatalf("%s: missing v3 bytes/1K", r.App)
			}
		}
	}
}

// TestV3CompressionRatio pins the storage win the v3 format exists
// for: on a real recording the compressed encoding is strictly
// smaller than the v2 encoding of the same log (ratio in (0,1)).
func TestV3CompressionRatio(t *testing.T) {
	s := smallSuite()
	run, err := s.Record("fft", core.Base, I4K, 4)
	if err != nil {
		t.Fatal(err)
	}
	var v2, v3 bytes.Buffer
	if err := replaylog.Encode(&v2, run.Res.Log); err != nil {
		t.Fatal(err)
	}
	if err := replaylog.EncodeV3(&v3, run.Res.Log); err != nil {
		t.Fatal(err)
	}
	ratio := float64(v3.Len()) / float64(v2.Len())
	if !(ratio > 0 && ratio < 1) {
		t.Fatalf("v3/v2 compression ratio %.3f not in (0,1) (v3 %d B, v2 %d B)",
			ratio, v3.Len(), v2.Len())
	}
	// And the figure metric agrees with an independent re-encode.
	want := float64(v3.Len()) * 1000 / float64(run.Instructions())
	if got := run.V3BytesPer1K(); got != want {
		t.Fatalf("V3BytesPer1K = %v, want %v", got, want)
	}
}

func TestFigure12Invariants(t *testing.T) {
	s := smallSuite()
	rows, _, err := s.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Average < 0 || r.Average > 176 {
			t.Fatalf("%s: occupancy %f out of range", r.App, r.Average)
		}
		var sum float64
		for _, f := range r.Histogram {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: histogram sums to %f", r.App, sum)
		}
	}
	if _, err := s.Figure12Histograms([]string{"fft"}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure13Invariants(t *testing.T) {
	s := smallSuite()
	rows, _, err := s.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NormTotal <= 1 {
			t.Fatalf("%s %v/%v: sequential replay faster than parallel recording (%.2fx)",
				r.App, r.Variant, r.Mode, r.NormTotal)
		}
		if diff := r.NormTotal - (r.NormUser + r.NormOS); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s: user+OS != total", r.App)
		}
	}
}

func TestFigure14Invariants(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 1
	opts.Apps = []string{"volrend"}
	s := NewSuite(opts)
	rows, _, err := s.Figure14([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 configs x 2 core counts
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LogMBps <= 0 {
			t.Fatalf("nonpositive log rate: %+v", r)
		}
	}
}

func TestTable1Mentions(t *testing.T) {
	s := smallSuite()
	out := s.Table1().String()
	for _, want := range []string{"176", "MESI", "Bloom", "snoop table", "64KB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestSection53Overhead(t *testing.T) {
	s := smallSuite()
	rows, _, err := s.Section53RecordingOverhead()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper §5.3: recording overhead is negligible (TRAQ stalls
		// under 0.3% of execution). Allow a little slack.
		if r.OverheadPct > 0.02 {
			t.Fatalf("%s: recording overhead %.2f%% not negligible", r.App, r.OverheadPct*100)
		}
		if r.TRAQStallPct > 0.02 {
			t.Fatalf("%s: TRAQ stall fraction %.2f%%", r.App, r.TRAQStallPct*100)
		}
	}
}

func TestMotivationSCRecorderDiverges(t *testing.T) {
	s := smallSuite()
	rows, _, err := s.MotivationSCRecorder()
	if err != nil {
		t.Fatal(err)
	}
	diverged := 0
	for _, r := range rows {
		if r.Diverged {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("SC-assuming recorder replayed RC executions faithfully — motivation demo broken")
	}
}

func TestExtensionParallelReplay(t *testing.T) {
	s := smallSuite()
	rows, _, err := s.ExtensionParallelReplay()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup < 1-1e-9 || r.Speedup > float64(s.Options().Cores)+1e-9 {
			t.Fatalf("%s/%v: speedup %.2f out of range", r.App, r.Variant, r.Speedup)
		}
		if r.ParNorm > r.SeqNorm+1e-9 {
			t.Fatalf("%s/%v: parallel slower than sequential", r.App, r.Variant)
		}
	}
}
