package experiments

import (
	"bytes"
	"net"
	"path/filepath"
	"testing"
	"time"

	"relaxreplay/internal/core"
	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/rrnet"
	"relaxreplay/internal/telemetry"
)

// The streaming acceptance gate: the full policy x server x fault
// grid completes with every cell classified into an allowed outcome —
// no hangs (the per-cell watchdog converts those into loud failures),
// no silent divergence between what the client committed and what the
// journal holds.
func TestNetChaosGridClassifiesEveryCell(t *testing.T) {
	tel := telemetry.New(telemetry.Options{Shards: 2})
	s := chaosSuite(tel)
	inj, err := faultinject.Parse("default@7")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.NetChaosGrid(inj)
	if err != nil {
		if res != nil {
			t.Log("\n" + res.Table.String())
		}
		t.Fatal(err)
	}
	wantCells := len(NetChaosPolicies) * len(NetChaosServers) * (1 + len(faultinject.NetPoints()))
	if len(res.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(res.Cells), wantCells)
	}
	outcomes := map[string]int{}
	fired := uint64(0)
	for _, c := range res.Cells {
		if c.Outcome == "" {
			t.Fatalf("cell %s/%s/%s has no outcome", c.Policy, c.Server, c.Fault)
		}
		if ForbiddenOutcome(c.Outcome) {
			t.Fatalf("forbidden outcome %s at %s/%s/%s: %s",
				c.Outcome, c.Policy, c.Server, c.Fault, c.Detail)
		}
		outcomes[c.Outcome]++
		fired += c.Fired
	}
	// The happy diagonal must hold: every baseline cell on a steady
	// server commits byte-identical regardless of policy.
	for _, c := range res.Cells {
		if c.Server == "steady" && c.Fault == chaosBaseline && c.Outcome != OutcomeIdentical {
			t.Errorf("steady/baseline/%s = %s (%s), want %s",
				c.Policy, c.Outcome, c.Detail, OutcomeIdentical)
		}
	}
	if outcomes[OutcomeIdentical] == 0 {
		t.Fatal("no cell committed identical — the grid proved nothing")
	}
	if fired == 0 {
		t.Fatal("no transport fault fired anywhere — the fault axis is dead")
	}
	t.Logf("outcomes: %v, %d transport faults fired", outcomes, fired)
}

// The end-to-end byte-identity acceptance: a real recording streamed
// through the client/server pair — under transport faults that force
// retries — journals byte-identical to the local WriteLogV3 output,
// and the journal export round-trips through the v3 decoder.
func TestStreamedSessionMatchesLocalLog(t *testing.T) {
	tel := telemetry.New(telemetry.Options{Shards: 2})
	s := chaosSuite(tel)
	run, err := s.record(Spec{App: "fft", Variant: core.Opt, Mode: I4K, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if err := replaylog.EncodeV3(&local, run.Res.Log); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	srv, err := rrnet.NewServer(rrnet.ServerOptions{
		Addr:        "127.0.0.1:0",
		JournalPath: filepath.Join(dir, "journal"),
	}, tel.Registry())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // ends at shutdown
	defer shutdownQuiet(srv)

	inj := faultinject.New(3, faultinject.NetReset)
	inj.ArmWithin(faultinject.NetReset, 4)
	client, err := rrnet.NewClient(rrnet.ClientOptions{
		Addr:        ln.Addr().String(),
		Tenant:      "acceptance",
		ChunkSize:   1 << 10,
		BackoffBase: 2 * time.Millisecond,
		BackoffCap:  50 * time.Millisecond,
	}, tel.Registry())
	if err != nil {
		t.Fatal(err)
	}
	base := client.Dial
	client.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		nc, err := base(addr, timeout)
		if err != nil {
			return nil, err
		}
		return rrnet.WrapFaultConn(nc, inj), nil
	}

	sw, err := client.OpenSession(4242)
	if err != nil {
		t.Fatal(err)
	}
	if err := replaylog.EncodeV3(sw, run.Res.Log); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sw.Result().Status; got != rrnet.StatusOK {
		t.Fatalf("status = %d, want OK (%s)", got, sw.Result().Reason)
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	view, err := rrnet.ReadJournal(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	sess := view.Sessions[4242]
	if sess == nil {
		t.Fatal("session 4242 not journaled")
	}
	if !bytes.Equal(sess.Data, local.Bytes()) {
		t.Fatalf("journaled bytes differ from local WriteLogV3 output: %d vs %d bytes",
			len(sess.Data), local.Len())
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}

	// The exported bytes must round-trip the v3 decoder: streamed
	// sessions replay exactly like locally-written logs.
	var export bytes.Buffer
	if err := view.Export(4242, &export); err != nil {
		t.Fatal(err)
	}
	l, err := replaylog.Decode(bytes.NewReader(export.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := l.Cores, run.Res.Log.Cores; got != want {
		t.Fatalf("decoded %d cores, want %d", got, want)
	}
	if fired := inj.Counts()[faultinject.NetReset]; fired == 0 {
		t.Fatal("net.reset never fired — the retry path was not exercised")
	}
}
