// Package experiments regenerates every table and figure of the
// paper's evaluation (§5): one driver per figure, each returning both
// structured data (consumed by the benchmarks and tests) and a
// rendered table (printed by cmd/rrbench). Recording runs are cached
// and shared across figures, and — unless disabled — every recording
// is verified by patching, replaying and comparing against the
// recorded execution, plus the workload's own correctness oracle.
//
// Recordings are independent simulations, so the suite runs them
// concurrently: Record is safe for any number of goroutines (duplicate
// requests for the same key share one execution), and each figure
// driver first warms the cache through a bounded worker pool
// (Options.Parallelism workers) before assembling its table serially.
// Results are deterministic regardless of parallelism — the same
// recordings produce byte-identical logs and the tables are built in a
// fixed order.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/core"
	"relaxreplay/internal/machine"
	"relaxreplay/internal/replay"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/telemetry"
	"relaxreplay/internal/workload"
)

// Options configures a Suite.
type Options struct {
	Cores    int
	Scale    int // workload problem-size multiplier
	Protocol coherence.Protocol
	Apps     []string // nil = all kernels
	Verify   bool     // replay-verify every recording
	ClockGHz float64  // for MB/s conversions (paper: 2 GHz)

	// Parallelism bounds how many recordings execute concurrently in
	// RecordAll and the figure drivers' cache-warming pass. 0 selects
	// GOMAXPROCS; 1 runs fully serially (the pre-parallel harness).
	Parallelism int

	// Progress, when non-nil, receives one event as each cache-miss
	// recording starts and one when it finishes. Callbacks are
	// serialized; they may write to a terminal without interleaving.
	Progress func(ProgressEvent)

	// Telemetry, when non-nil, instruments every recording and replay
	// the suite executes, plus the suite's own run accounting
	// ("suite.runs_started", "suite.runs_completed",
	// "suite.run_duration_ms"). nil means zero overhead; tables and
	// logs are byte-identical either way.
	Telemetry *telemetry.Telemetry

	// NoFastForward disables the machine's idle-cycle fast-forward for
	// every recording (see machine.Config.NoFastForward). Results are
	// byte-identical either way; the determinism regression tests flip
	// this switch to prove it.
	NoFastForward bool

	// Shards spreads each recording's per-cycle core phase over this
	// many goroutines (see machine.Config.Shards). Results are
	// byte-identical either way; the shard-determinism regression
	// tests flip this switch to prove it.
	Shards int
}

// DefaultOptions mirrors the paper's default setup: 8 cores, snoopy
// ring, all SPLASH-2 analog kernels, 2 GHz.
func DefaultOptions() Options {
	return Options{Cores: 8, Scale: 3, Verify: true, ClockGHz: 2.0}
}

// IntervalMode selects the paper's two maximum-interval-size settings.
type IntervalMode bool

const (
	// I4K limits intervals to 4K instructions (replay-parallelism
	// oriented recorders).
	I4K IntervalMode = false
	// INF leaves intervals unbounded (sequential-replay oriented
	// recorders such as CoreRacer/QuickRec).
	INF IntervalMode = true
)

func (m IntervalMode) String() string {
	if m == INF {
		return "INF"
	}
	return "4K"
}

// Spec identifies one recording in the suite's (app, variant,
// interval-mode, core-count) cross-product.
type Spec struct {
	App     string
	Variant core.Variant
	Mode    IntervalMode
	Cores   int
}

func (sp Spec) String() string {
	return fmt.Sprintf("%s/%v/%v/p%d", sp.App, sp.Variant, sp.Mode, sp.Cores)
}

// ProgressEvent reports the lifecycle of one executed (cache-miss)
// recording. Started and Completed are suite-wide execution counts at
// the time of the event, so "[Completed/Started]" reads as a live
// progress ratio that converges when the pool drains.
type ProgressEvent struct {
	Spec      Spec
	Done      bool          // false: the run just started; true: it finished
	Err       error         // only set when Done
	Duration  time.Duration // only set when Done
	Started   int
	Completed int
}

// Run is one cached recording (plus its replay, once computed).
type Run struct {
	App     string
	Variant core.Variant
	Mode    IntervalMode
	Cores   int

	W   workload.Workload
	Res *core.Result

	repMu  sync.Mutex
	rep    *replay.Result
	repErr error

	v3Once  sync.Once
	v3Bytes int64
}

// cacheEntry is the singleflight slot for one Spec: the first
// requester executes the recording, everyone else blocks on done.
type cacheEntry struct {
	done chan struct{}
	run  *Run
	err  error
}

// Suite caches recording runs across figures. All methods are safe for
// concurrent use.
type Suite struct {
	opts Options

	mu    sync.Mutex
	cache map[Spec]*cacheEntry

	progMu    sync.Mutex
	started   int
	completed int

	tel suiteTelem
}

// suiteTelem holds the suite's run-accounting metric handles (the
// source of rrbench's ETA line). The zero value is the disabled state.
type suiteTelem struct {
	started   *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	runMillis *telemetry.Histogram
}

func newSuiteTelem(t *telemetry.Telemetry) suiteTelem {
	reg := t.Registry()
	if reg == nil {
		return suiteTelem{}
	}
	return suiteTelem{
		started:   reg.Counter("suite.runs_started"),
		completed: reg.Counter("suite.runs_completed"),
		failed:    reg.Counter("suite.runs_failed"),
		runMillis: reg.Histogram("suite.run_duration_ms"),
	}
}

// NewSuite builds a suite.
func NewSuite(opts Options) *Suite {
	if opts.Cores == 0 {
		opts.Cores = 8
	}
	if opts.Scale == 0 {
		opts.Scale = 3
	}
	if opts.ClockGHz == 0 {
		opts.ClockGHz = 2.0
	}
	return &Suite{opts: opts, cache: make(map[Spec]*cacheEntry), tel: newSuiteTelem(opts.Telemetry)}
}

// Apps returns the kernel names the suite runs.
func (s *Suite) Apps() []string {
	if s.opts.Apps != nil {
		return s.opts.Apps
	}
	var names []string
	for _, k := range workload.Kernels() {
		names = append(names, k.Name)
	}
	return names
}

// Options returns the suite options.
func (s *Suite) Options() Options { return s.opts }

// ParseApps splits a comma-separated kernel list, trims whitespace,
// drops empty entries, and validates every name against the known
// kernels, so "fft, lu" works and a typo fails up front with the
// catalogue in the error.
func ParseApps(csv string) ([]string, error) {
	var out []string
	for _, a := range strings.Split(csv, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if _, err := workload.ByName(a); err != nil {
			var known []string
			for _, k := range workload.Kernels() {
				known = append(known, k.Name)
			}
			return nil, fmt.Errorf("experiments: unknown kernel %q (known: %s)",
				a, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: app list %q names no kernels", csv)
	}
	return out, nil
}

// parallelism resolves Options.Parallelism to a worker count.
func (s *Suite) parallelism() int {
	if s.opts.Parallelism > 0 {
		return s.opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Record returns the cached recording for (app, variant, mode, cores),
// running it on first use. Concurrent callers requesting the same key
// share a single execution.
func (s *Suite) Record(app string, v core.Variant, mode IntervalMode, cores int) (*Run, error) {
	return s.record(Spec{App: app, Variant: v, Mode: mode, Cores: cores})
}

func (s *Suite) record(spec Spec) (*Run, error) {
	s.mu.Lock()
	if e, ok := s.cache[spec]; ok {
		s.mu.Unlock()
		<-e.done
		return e.run, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	s.cache[spec] = e
	s.mu.Unlock()

	s.noteStart(spec)
	begin := time.Now()
	e.run, e.err = s.execute(spec)
	close(e.done)
	s.noteDone(spec, e.err, time.Since(begin))
	return e.run, e.err
}

// execute performs one recording (and, with Verify on, its oracle
// check and replay verification). It touches no Suite state, so any
// number of executions may run concurrently.
func (s *Suite) execute(spec Spec) (*Run, error) {
	k, err := workload.ByName(spec.App)
	if err != nil {
		return nil, err
	}
	w := k.Build(spec.Cores, s.opts.Scale)
	rcfg := core.DefaultConfig(spec.Variant)
	if spec.Mode == INF {
		rcfg.MaxIntervalInstrs = 0
	}
	mcfg := machine.DefaultConfig(spec.Cores)
	mcfg.Mem.Protocol = s.opts.Protocol
	mcfg.Telemetry = s.opts.Telemetry
	mcfg.NoFastForward = s.opts.NoFastForward
	mcfg.Shards = s.opts.Shards
	rcfg.Telemetry = s.opts.Telemetry
	res, err := core.Record(mcfg, rcfg, core.Workload{
		Name: w.Name, Progs: w.Progs, Inputs: w.Inputs, InitMem: w.InitMem,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%v/%v: %w", spec.App, spec.Variant, spec.Mode, err)
	}
	run := &Run{App: spec.App, Variant: spec.Variant, Mode: spec.Mode, Cores: spec.Cores, W: w, Res: res}
	if s.opts.Verify {
		if w.Check != nil {
			if err := w.Check(res.FinalMemory); err != nil {
				return nil, fmt.Errorf("experiments: %s oracle: %w", spec.App, err)
			}
		}
		if _, err := s.Replay(run); err != nil {
			return nil, err
		}
	}
	return run, nil
}

func (s *Suite) noteStart(spec Spec) {
	s.tel.started.Inc(0)
	if s.opts.Progress == nil {
		return
	}
	s.progMu.Lock()
	defer s.progMu.Unlock()
	s.started++
	s.opts.Progress(ProgressEvent{Spec: spec, Started: s.started, Completed: s.completed})
}

func (s *Suite) noteDone(spec Spec, err error, d time.Duration) {
	s.tel.completed.Inc(0)
	if err != nil {
		s.tel.failed.Inc(0)
	}
	s.tel.runMillis.Observe(0, uint64(d.Milliseconds()))
	if s.opts.Progress == nil {
		return
	}
	s.progMu.Lock()
	defer s.progMu.Unlock()
	s.completed++
	s.opts.Progress(ProgressEvent{
		Spec: spec, Done: true, Err: err, Duration: d,
		Started: s.started, Completed: s.completed,
	})
}

// RecordAll pre-records every spec through a worker pool of
// Options.Parallelism goroutines, deduplicating against the cache (and
// within the list). All specs are attempted; the first error in spec
// order is returned.
func (s *Suite) RecordAll(specs []Spec) error {
	seen := make(map[Spec]bool, len(specs))
	todo := make([]Spec, 0, len(specs))
	for _, sp := range specs {
		if !seen[sp] {
			seen[sp] = true
			todo = append(todo, sp)
		}
	}
	_, err := parmap(s, len(todo), func(i int) (*Run, error) { return s.record(todo[i]) })
	return err
}

// parmap applies f to 0..n-1 on the suite's worker pool and returns
// the results in index order, so callers assemble deterministic output
// from possibly-concurrent work. All indices run even after a failure;
// the first error by index wins (matching what a serial loop reports).
func parmap[T any](s *Suite, n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	workers := s.parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			var err error
			if out[i], err = f(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// crossApps builds the suite-apps × configs cross-product at one core
// count — the warm set most figures need.
func (s *Suite) crossApps(cores int, cfgs ...vmCfg) []Spec {
	var specs []Spec
	for _, app := range s.Apps() {
		for _, c := range cfgs {
			specs = append(specs, Spec{App: app, Variant: c.v, Mode: c.m, Cores: cores})
		}
	}
	return specs
}

// vmCfg is a (variant, interval-mode) pair.
type vmCfg struct {
	v core.Variant
	m IntervalMode
}

// allCfgs is the paper's full 2x2 recording matrix.
var allCfgs = []vmCfg{{core.Base, I4K}, {core.Opt, I4K}, {core.Base, INF}, {core.Opt, INF}}

// Replay patches, replays and verifies a recording, returning the
// (cached) replay result with its modeled timing. Safe for concurrent
// callers; the replay executes once and the outcome is memoized.
func (s *Suite) Replay(run *Run) (*replay.Result, error) {
	run.repMu.Lock()
	defer run.repMu.Unlock()
	if run.rep != nil || run.repErr != nil {
		return run.rep, run.repErr
	}
	run.rep, run.repErr = s.replayRun(run)
	return run.rep, run.repErr
}

func (s *Suite) replayRun(run *Run) (*replay.Result, error) {
	patched, err := run.Res.Log.Patch()
	if err != nil {
		return nil, fmt.Errorf("experiments: patch %s: %w", run.App, err)
	}
	cpi := make([]float64, run.Cores)
	for c, st := range run.Res.CoreStats {
		if st.Retired > 0 {
			cpi[c] = float64(st.Cycles) / float64(st.Retired)
		} else {
			cpi[c] = 1
		}
	}
	rpcfg := replay.DefaultConfig()
	rpcfg.Telemetry = s.opts.Telemetry
	rp, err := replay.New(rpcfg, patched, run.W.Progs, run.W.InitMem, cpi)
	if err != nil {
		return nil, err
	}
	rep, err := rp.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: replay %s/%v/%v: %w", run.App, run.Variant, run.Mode, err)
	}
	retired := make([]uint64, run.Cores)
	for c, st := range run.Res.CoreStats {
		retired[c] = st.Retired
	}
	if err := replay.Verify(rep, run.Res.FinalMemory, run.Res.FinalRegs, retired); err != nil {
		return nil, fmt.Errorf("experiments: %s/%v/%v: %w", run.App, run.Variant, run.Mode, err)
	}
	return rep, nil
}

// Aggregate metrics over a run --------------------------------------------

// Instructions returns the total retired instruction count.
func (r *Run) Instructions() uint64 {
	var n uint64
	for _, st := range r.Res.CoreStats {
		n += st.Retired
	}
	return n
}

// MemInstructions returns the total retired memory instructions.
func (r *Run) MemInstructions() uint64 {
	var n uint64
	for _, st := range r.Res.CoreStats {
		n += st.MemRetired
	}
	return n
}

// ReorderedFraction returns reordered accesses / memory instructions.
func (r *Run) ReorderedFraction() float64 {
	var re uint64
	for _, st := range r.Res.RecStats {
		re += st.ReorderedLoads + st.ReorderedStores + st.ReorderedAtomics
	}
	m := r.MemInstructions()
	if m == 0 {
		return 0
	}
	return float64(re) / float64(m)
}

// OOOFractions returns the fraction of memory instructions performed
// out of program order, split into loads and stores (Figure 1).
func (r *Run) OOOFractions() (loads, stores float64) {
	var l, st, m uint64
	for _, cs := range r.Res.CoreStats {
		l += cs.OOOLoads
		st += cs.OOOStores
		m += cs.MemRetired
	}
	if m == 0 {
		return 0, 0
	}
	return float64(l) / float64(m), float64(st) / float64(m)
}

// InorderBlocks returns the total number of InorderBlock entries.
func (r *Run) InorderBlocks() uint64 {
	var n uint64
	for _, st := range r.Res.RecStats {
		n += st.InorderBlocks
	}
	return n
}

// BitsPer1K returns uncompressed log bits per 1000 instructions.
func (r *Run) BitsPer1K() float64 {
	n := r.Instructions()
	if n == 0 {
		return 0
	}
	return float64(r.Res.Log.SizeBits()) * 1000 / float64(n)
}

// V3BytesPer1K returns the on-disk (format v3: delta/varint +
// deflate) log bytes per 1000 instructions, the storage companion to
// BitsPer1K's architectural Figure-11 metric. The encoding is
// memoized per Run; an unencodable log reports 0.
func (r *Run) V3BytesPer1K() float64 {
	n := r.Instructions()
	if n == 0 {
		return 0
	}
	r.v3Once.Do(func() {
		var cw byteCounter
		if err := replaylog.EncodeV3(&cw, r.Res.Log); err == nil {
			r.v3Bytes = cw.n
		}
	})
	return float64(r.v3Bytes) * 1000 / float64(n)
}

// byteCounter counts without buffering so V3BytesPer1K never holds a
// second copy of the log.
type byteCounter struct{ n int64 }

func (c *byteCounter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// LogRateMBps returns the logging bandwidth at the given clock.
func (r *Run) LogRateMBps(clockGHz float64) float64 {
	if r.Res.Cycles == 0 {
		return 0
	}
	bytes := float64(r.Res.Log.SizeBits()) / 8
	seconds := float64(r.Res.Cycles) / (clockGHz * 1e9)
	return bytes / seconds / 1e6
}

// TRAQAverage returns the mean TRAQ occupancy across cores.
func (r *Run) TRAQAverage() float64 {
	var sum, samples uint64
	for _, st := range r.Res.RecStats {
		sum += st.TRAQOccupancySum
		samples += st.TRAQSamples
	}
	if samples == 0 {
		return 0
	}
	return float64(sum) / float64(samples)
}

// TRAQHistogram returns the occupancy distribution (bins of 10
// entries) as fractions of all samples.
func (r *Run) TRAQHistogram() []float64 {
	var hist [20]uint64
	var total uint64
	for _, st := range r.Res.RecStats {
		for i, v := range st.TRAQOccupancyHist {
			hist[i] += v
			total += v
		}
	}
	out := make([]float64, len(hist))
	if total == 0 {
		return out
	}
	for i, v := range hist {
		out[i] = float64(v) / float64(total)
	}
	return out
}
