// Package experiments regenerates every table and figure of the
// paper's evaluation (§5): one driver per figure, each returning both
// structured data (consumed by the benchmarks and tests) and a
// rendered table (printed by cmd/rrbench). Recording runs are cached
// and shared across figures, and — unless disabled — every recording
// is verified by patching, replaying and comparing against the
// recorded execution, plus the workload's own correctness oracle.
package experiments

import (
	"fmt"

	"relaxreplay/internal/coherence"
	"relaxreplay/internal/core"
	"relaxreplay/internal/machine"
	"relaxreplay/internal/replay"
	"relaxreplay/internal/workload"
)

// Options configures a Suite.
type Options struct {
	Cores    int
	Scale    int // workload problem-size multiplier
	Protocol coherence.Protocol
	Apps     []string // nil = all kernels
	Verify   bool     // replay-verify every recording
	ClockGHz float64  // for MB/s conversions (paper: 2 GHz)
}

// DefaultOptions mirrors the paper's default setup: 8 cores, snoopy
// ring, all SPLASH-2 analog kernels, 2 GHz.
func DefaultOptions() Options {
	return Options{Cores: 8, Scale: 3, Verify: true, ClockGHz: 2.0}
}

// IntervalMode selects the paper's two maximum-interval-size settings.
type IntervalMode bool

const (
	// I4K limits intervals to 4K instructions (replay-parallelism
	// oriented recorders).
	I4K IntervalMode = false
	// INF leaves intervals unbounded (sequential-replay oriented
	// recorders such as CoreRacer/QuickRec).
	INF IntervalMode = true
)

func (m IntervalMode) String() string {
	if m == INF {
		return "INF"
	}
	return "4K"
}

// Run is one cached recording (plus its replay, once computed).
type Run struct {
	App     string
	Variant core.Variant
	Mode    IntervalMode
	Cores   int

	W   workload.Workload
	Res *core.Result

	rep *replay.Result
}

type runKey struct {
	app     string
	variant core.Variant
	mode    IntervalMode
	cores   int
}

// Suite caches recording runs across figures.
type Suite struct {
	opts  Options
	cache map[runKey]*Run
}

// NewSuite builds a suite.
func NewSuite(opts Options) *Suite {
	if opts.Cores == 0 {
		opts.Cores = 8
	}
	if opts.Scale == 0 {
		opts.Scale = 3
	}
	if opts.ClockGHz == 0 {
		opts.ClockGHz = 2.0
	}
	return &Suite{opts: opts, cache: make(map[runKey]*Run)}
}

// Apps returns the kernel names the suite runs.
func (s *Suite) Apps() []string {
	if s.opts.Apps != nil {
		return s.opts.Apps
	}
	var names []string
	for _, k := range workload.Kernels() {
		names = append(names, k.Name)
	}
	return names
}

// Options returns the suite options.
func (s *Suite) Options() Options { return s.opts }

// Record returns the cached recording for (app, variant, mode, cores),
// running it on first use.
func (s *Suite) Record(app string, v core.Variant, mode IntervalMode, cores int) (*Run, error) {
	key := runKey{app, v, mode, cores}
	if r, ok := s.cache[key]; ok {
		return r, nil
	}
	k, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	w := k.Build(cores, s.opts.Scale)
	rcfg := core.DefaultConfig(v)
	if mode == INF {
		rcfg.MaxIntervalInstrs = 0
	}
	mcfg := machine.DefaultConfig(cores)
	mcfg.Mem.Protocol = s.opts.Protocol
	res, err := core.Record(mcfg, rcfg, core.Workload{
		Name: w.Name, Progs: w.Progs, Inputs: w.Inputs, InitMem: w.InitMem,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%v/%v: %w", app, v, mode, err)
	}
	run := &Run{App: app, Variant: v, Mode: mode, Cores: cores, W: w, Res: res}
	if s.opts.Verify {
		if w.Check != nil {
			if err := w.Check(res.FinalMemory); err != nil {
				return nil, fmt.Errorf("experiments: %s oracle: %w", app, err)
			}
		}
		if _, err := s.Replay(run); err != nil {
			return nil, err
		}
	}
	s.cache[key] = run
	return run, nil
}

// Replay patches, replays and verifies a recording, returning the
// (cached) replay result with its modeled timing.
func (s *Suite) Replay(run *Run) (*replay.Result, error) {
	if run.rep != nil {
		return run.rep, nil
	}
	patched, err := run.Res.Log.Patch()
	if err != nil {
		return nil, fmt.Errorf("experiments: patch %s: %w", run.App, err)
	}
	cpi := make([]float64, run.Cores)
	for c, st := range run.Res.CoreStats {
		if st.Retired > 0 {
			cpi[c] = float64(st.Cycles) / float64(st.Retired)
		} else {
			cpi[c] = 1
		}
	}
	rp, err := replay.New(replay.DefaultConfig(), patched, run.W.Progs, run.W.InitMem, cpi)
	if err != nil {
		return nil, err
	}
	rep, err := rp.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: replay %s/%v/%v: %w", run.App, run.Variant, run.Mode, err)
	}
	retired := make([]uint64, run.Cores)
	for c, st := range run.Res.CoreStats {
		retired[c] = st.Retired
	}
	if err := replay.Verify(rep, run.Res.FinalMemory, run.Res.FinalRegs, retired); err != nil {
		return nil, fmt.Errorf("experiments: %s/%v/%v: %w", run.App, run.Variant, run.Mode, err)
	}
	run.rep = rep
	return rep, nil
}

// Aggregate metrics over a run --------------------------------------------

// Instructions returns the total retired instruction count.
func (r *Run) Instructions() uint64 {
	var n uint64
	for _, st := range r.Res.CoreStats {
		n += st.Retired
	}
	return n
}

// MemInstructions returns the total retired memory instructions.
func (r *Run) MemInstructions() uint64 {
	var n uint64
	for _, st := range r.Res.CoreStats {
		n += st.MemRetired
	}
	return n
}

// ReorderedFraction returns reordered accesses / memory instructions.
func (r *Run) ReorderedFraction() float64 {
	var re uint64
	for _, st := range r.Res.RecStats {
		re += st.ReorderedLoads + st.ReorderedStores + st.ReorderedAtomics
	}
	m := r.MemInstructions()
	if m == 0 {
		return 0
	}
	return float64(re) / float64(m)
}

// OOOFractions returns the fraction of memory instructions performed
// out of program order, split into loads and stores (Figure 1).
func (r *Run) OOOFractions() (loads, stores float64) {
	var l, st, m uint64
	for _, cs := range r.Res.CoreStats {
		l += cs.OOOLoads
		st += cs.OOOStores
		m += cs.MemRetired
	}
	if m == 0 {
		return 0, 0
	}
	return float64(l) / float64(m), float64(st) / float64(m)
}

// InorderBlocks returns the total number of InorderBlock entries.
func (r *Run) InorderBlocks() uint64 {
	var n uint64
	for _, st := range r.Res.RecStats {
		n += st.InorderBlocks
	}
	return n
}

// BitsPer1K returns uncompressed log bits per 1000 instructions.
func (r *Run) BitsPer1K() float64 {
	n := r.Instructions()
	if n == 0 {
		return 0
	}
	return float64(r.Res.Log.SizeBits()) * 1000 / float64(n)
}

// LogRateMBps returns the logging bandwidth at the given clock.
func (r *Run) LogRateMBps(clockGHz float64) float64 {
	if r.Res.Cycles == 0 {
		return 0
	}
	bytes := float64(r.Res.Log.SizeBits()) / 8
	seconds := float64(r.Res.Cycles) / (clockGHz * 1e9)
	return bytes / seconds / 1e6
}

// TRAQAverage returns the mean TRAQ occupancy across cores.
func (r *Run) TRAQAverage() float64 {
	var sum, samples uint64
	for _, st := range r.Res.RecStats {
		sum += st.TRAQOccupancySum
		samples += st.TRAQSamples
	}
	if samples == 0 {
		return 0
	}
	return float64(sum) / float64(samples)
}

// TRAQHistogram returns the occupancy distribution (bins of 10
// entries) as fractions of all samples.
func (r *Run) TRAQHistogram() []float64 {
	var hist [20]uint64
	var total uint64
	for _, st := range r.Res.RecStats {
		for i, v := range st.TRAQOccupancyHist {
			hist[i] += v
			total += v
		}
	}
	out := make([]float64, len(hist))
	if total == 0 {
		return out
	}
	for i, v := range hist {
		out[i] = float64(v) / float64(total)
	}
	return out
}
