package experiments

import (
	"fmt"
	"strings"

	"relaxreplay/internal/core"
	"relaxreplay/internal/cpu"
	"relaxreplay/internal/machine"
	"relaxreplay/internal/replay"
	"relaxreplay/internal/stats"
	"relaxreplay/internal/workload"
)

// Figure 1 -----------------------------------------------------------------

// Fig1Row reports the fraction of memory instructions performed out of
// program order for one application.
type Fig1Row struct {
	App       string
	OOOLoads  float64
	OOOStores float64
}

// Figure1 reproduces paper Figure 1: the fraction of memory-access
// instructions performed out of program order (paper average: 59%
// loads, 3% stores).
func (s *Suite) Figure1() ([]Fig1Row, *stats.Table, error) {
	if err := s.RecordAll(s.crossApps(s.opts.Cores, vmCfg{core.Base, INF})); err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 1: memory accesses performed out of program order",
		"app", "OOO loads", "OOO stores", "total OOO")
	var rows []Fig1Row
	var ls, ss []float64
	for _, app := range s.Apps() {
		run, err := s.Record(app, core.Base, INF, s.opts.Cores)
		if err != nil {
			return nil, nil, err
		}
		l, st := run.OOOFractions()
		rows = append(rows, Fig1Row{App: app, OOOLoads: l, OOOStores: st})
		ls, ss = append(ls, l), append(ss, st)
		t.AddRow(app, stats.Pct(l, 1), stats.Pct(st, 1), stats.Pct(l+st, 1))
	}
	rows = append(rows, Fig1Row{App: "average", OOOLoads: stats.Mean(ls), OOOStores: stats.Mean(ss)})
	t.AddRow("average", stats.Pct(stats.Mean(ls), 1), stats.Pct(stats.Mean(ss), 1),
		stats.Pct(stats.Mean(ls)+stats.Mean(ss), 1))
	return rows, t, nil
}

// Figure 9 -----------------------------------------------------------------

// Fig9Row reports reordered-access fractions for one application.
type Fig9Row struct {
	App             string
	Base4K, Opt4K   float64
	BaseINF, OptINF float64
}

// Figure9 reproduces paper Figure 9: the fraction of memory accesses
// logged as reordered (paper averages: Base 1.7%/0.17% for 4K/INF;
// Opt 0.03% for both).
func (s *Suite) Figure9() ([]Fig9Row, *stats.Table, error) {
	if err := s.RecordAll(s.crossApps(s.opts.Cores, allCfgs...)); err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 9: accesses logged as reordered (% of memory instructions)",
		"app", "Base 4K", "Opt 4K", "Base INF", "Opt INF")
	var rows []Fig9Row
	avg := Fig9Row{App: "average"}
	for _, app := range s.Apps() {
		row := Fig9Row{App: app}
		for _, cfg := range []struct {
			v    core.Variant
			m    IntervalMode
			dest *float64
			acc  *float64
		}{
			{core.Base, I4K, &row.Base4K, &avg.Base4K},
			{core.Opt, I4K, &row.Opt4K, &avg.Opt4K},
			{core.Base, INF, &row.BaseINF, &avg.BaseINF},
			{core.Opt, INF, &row.OptINF, &avg.OptINF},
		} {
			run, err := s.Record(app, cfg.v, cfg.m, s.opts.Cores)
			if err != nil {
				return nil, nil, err
			}
			*cfg.dest = run.ReorderedFraction()
			*cfg.acc += *cfg.dest
		}
		rows = append(rows, row)
		t.AddRow(app, stats.Pct(row.Base4K, 3), stats.Pct(row.Opt4K, 3),
			stats.Pct(row.BaseINF, 3), stats.Pct(row.OptINF, 3))
	}
	n := float64(len(s.Apps()))
	avg.Base4K, avg.Opt4K, avg.BaseINF, avg.OptINF = avg.Base4K/n, avg.Opt4K/n, avg.BaseINF/n, avg.OptINF/n
	rows = append(rows, avg)
	t.AddRow("average", stats.Pct(avg.Base4K, 3), stats.Pct(avg.Opt4K, 3),
		stats.Pct(avg.BaseINF, 3), stats.Pct(avg.OptINF, 3))
	return rows, t, nil
}

// Figure 10 ----------------------------------------------------------------

// Fig10Row reports InorderBlock counts normalized to RelaxReplay_Base.
type Fig10Row struct {
	App             string
	Opt4KNorm       float64
	OptINFNorm      float64
	Base4K, BaseINF uint64
	Opt4K, OptINF   uint64
}

// Figure10 reproduces paper Figure 10: the number of InorderBlock
// entries, normalized to Base (paper averages: 13% at 4K, 48% at INF).
func (s *Suite) Figure10() ([]Fig10Row, *stats.Table, error) {
	if err := s.RecordAll(s.crossApps(s.opts.Cores, allCfgs...)); err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 10: InorderBlock entries, Opt normalized to Base",
		"app", "Base 4K", "Opt 4K", "Opt/Base 4K", "Base INF", "Opt INF", "Opt/Base INF")
	var rows []Fig10Row
	var n4, ninf []float64
	for _, app := range s.Apps() {
		row := Fig10Row{App: app}
		for _, cfg := range []struct {
			v    core.Variant
			m    IntervalMode
			dest *uint64
		}{
			{core.Base, I4K, &row.Base4K},
			{core.Opt, I4K, &row.Opt4K},
			{core.Base, INF, &row.BaseINF},
			{core.Opt, INF, &row.OptINF},
		} {
			run, err := s.Record(app, cfg.v, cfg.m, s.opts.Cores)
			if err != nil {
				return nil, nil, err
			}
			*cfg.dest = run.InorderBlocks()
		}
		row.Opt4KNorm = stats.Ratio(float64(row.Opt4K), float64(row.Base4K))
		row.OptINFNorm = stats.Ratio(float64(row.OptINF), float64(row.BaseINF))
		n4 = append(n4, row.Opt4KNorm)
		ninf = append(ninf, row.OptINFNorm)
		rows = append(rows, row)
		t.AddRow(app, fmt.Sprint(row.Base4K), fmt.Sprint(row.Opt4K), stats.Pct(row.Opt4KNorm, 0),
			fmt.Sprint(row.BaseINF), fmt.Sprint(row.OptINF), stats.Pct(row.OptINFNorm, 0))
	}
	rows = append(rows, Fig10Row{App: "average", Opt4KNorm: stats.Mean(n4), OptINFNorm: stats.Mean(ninf)})
	t.AddRow("average", "", "", stats.Pct(stats.Mean(n4), 0), "", "", stats.Pct(stats.Mean(ninf), 0))
	return rows, t, nil
}

// Figure 11 ----------------------------------------------------------------

// Fig11Row reports log sizes for one application.
type Fig11Row struct {
	App                                            string
	Base4KBits, Opt4KBits, BaseINFBits, OptINFBits float64 // bits / 1K instructions
	Base4KMBps, Opt4KMBps, BaseINFMBps, OptINFMBps float64
	// Compressed on-disk (format v3) bytes / 1K instructions, shown
	// next to the paper's uncompressed architectural metric above.
	Base4KV3B, Opt4KV3B, BaseINFV3B, OptINFV3B float64
}

// Figure11 reproduces paper Figure 11: uncompressed log size in bits
// per 1K instructions (paper averages: Base 360/42, Opt 22/12 for
// 4K/INF) and the derived log generation rates in MB/s (paper: Base
// 840/90, Opt 48/25).
func (s *Suite) Figure11() ([]Fig11Row, *stats.Table, error) {
	if err := s.RecordAll(s.crossApps(s.opts.Cores, allCfgs...)); err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 11: uncompressed log size (bits / 1K instructions)",
		"app", "Base 4K", "Opt 4K", "Base INF", "Opt INF")
	var rows []Fig11Row
	avg := Fig11Row{App: "average"}
	for _, app := range s.Apps() {
		row := Fig11Row{App: app}
		for _, cfg := range []struct {
			v              core.Variant
			m              IntervalMode
			bits, rate, v3 *float64
		}{
			{core.Base, I4K, &row.Base4KBits, &row.Base4KMBps, &row.Base4KV3B},
			{core.Opt, I4K, &row.Opt4KBits, &row.Opt4KMBps, &row.Opt4KV3B},
			{core.Base, INF, &row.BaseINFBits, &row.BaseINFMBps, &row.BaseINFV3B},
			{core.Opt, INF, &row.OptINFBits, &row.OptINFMBps, &row.OptINFV3B},
		} {
			run, err := s.Record(app, cfg.v, cfg.m, s.opts.Cores)
			if err != nil {
				return nil, nil, err
			}
			*cfg.bits = run.BitsPer1K()
			*cfg.rate = run.LogRateMBps(s.opts.ClockGHz)
			*cfg.v3 = run.V3BytesPer1K()
		}
		avg.Base4KBits += row.Base4KBits
		avg.Opt4KBits += row.Opt4KBits
		avg.BaseINFBits += row.BaseINFBits
		avg.OptINFBits += row.OptINFBits
		avg.Base4KMBps += row.Base4KMBps
		avg.Opt4KMBps += row.Opt4KMBps
		avg.BaseINFMBps += row.BaseINFMBps
		avg.OptINFMBps += row.OptINFMBps
		avg.Base4KV3B += row.Base4KV3B
		avg.Opt4KV3B += row.Opt4KV3B
		avg.BaseINFV3B += row.BaseINFV3B
		avg.OptINFV3B += row.OptINFV3B
		rows = append(rows, row)
		t.AddRow(app, stats.F(row.Base4KBits, 0), stats.F(row.Opt4KBits, 0),
			stats.F(row.BaseINFBits, 0), stats.F(row.OptINFBits, 0))
	}
	n := float64(len(s.Apps()))
	avg.Base4KBits /= n
	avg.Opt4KBits /= n
	avg.BaseINFBits /= n
	avg.OptINFBits /= n
	avg.Base4KMBps /= n
	avg.Opt4KMBps /= n
	avg.BaseINFMBps /= n
	avg.OptINFMBps /= n
	avg.Base4KV3B /= n
	avg.Opt4KV3B /= n
	avg.BaseINFV3B /= n
	avg.OptINFV3B /= n
	rows = append(rows, avg)
	t.AddRow("average", stats.F(avg.Base4KBits, 0), stats.F(avg.Opt4KBits, 0),
		stats.F(avg.BaseINFBits, 0), stats.F(avg.OptINFBits, 0))
	t.AddRow("MB/s @2GHz", stats.F(avg.Base4KMBps, 1), stats.F(avg.Opt4KMBps, 1),
		stats.F(avg.BaseINFMBps, 1), stats.F(avg.OptINFMBps, 1))
	t.AddRow("v3 B/1K", stats.F(avg.Base4KV3B, 1), stats.F(avg.Opt4KV3B, 1),
		stats.F(avg.BaseINFV3B, 1), stats.F(avg.OptINFV3B, 1))
	return rows, t, nil
}

// Figure 12 ----------------------------------------------------------------

// Fig12Row reports TRAQ occupancy for one application.
type Fig12Row struct {
	App       string
	Average   float64
	Histogram []float64 // bins of 10 entries, fraction of samples
}

// Figure12 reproduces paper Figure 12: average TRAQ occupancy per
// application (paper: below 64 everywhere) and, for four
// representative applications, the occupancy distribution in bins of
// 10 entries.
func (s *Suite) Figure12() ([]Fig12Row, *stats.Table, error) {
	if err := s.RecordAll(s.crossApps(s.opts.Cores, vmCfg{core.Opt, I4K})); err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 12(a): average TRAQ entries in use (of 176)", "app", "avg occupancy")
	var rows []Fig12Row
	var avgs []float64
	for _, app := range s.Apps() {
		run, err := s.Record(app, core.Opt, I4K, s.opts.Cores)
		if err != nil {
			return nil, nil, err
		}
		row := Fig12Row{App: app, Average: run.TRAQAverage(), Histogram: run.TRAQHistogram()}
		rows = append(rows, row)
		avgs = append(avgs, row.Average)
		t.AddRow(app, stats.F(row.Average, 1))
	}
	t.AddRow("average", stats.F(stats.Mean(avgs), 1))
	return rows, t, nil
}

// Figure12Histograms renders the Figure 12(b) distributions for the
// chosen applications.
func (s *Suite) Figure12Histograms(apps []string) (*stats.Table, error) {
	var specs []Spec
	for _, app := range apps {
		specs = append(specs, Spec{App: app, Variant: core.Opt, Mode: I4K, Cores: s.opts.Cores})
	}
	if err := s.RecordAll(specs); err != nil {
		return nil, err
	}
	cols := []string{"bin"}
	var hists [][]float64
	for _, app := range apps {
		run, err := s.Record(app, core.Opt, I4K, s.opts.Cores)
		if err != nil {
			return nil, err
		}
		cols = append(cols, app)
		hists = append(hists, run.TRAQHistogram())
	}
	t := stats.NewTable("Figure 12(b): TRAQ occupancy distribution (fraction of cycles)", cols...)
	for bin := 0; bin < 20; bin++ {
		label := fmt.Sprintf("%d-%d", bin*10, bin*10+9)
		if bin == 19 {
			label = "190+"
		}
		cells := []string{label}
		nonzero := false
		for _, h := range hists {
			cells = append(cells, stats.Pct(h[bin], 1))
			if h[bin] > 0.0005 {
				nonzero = true
			}
		}
		if nonzero {
			t.AddRow(cells...)
		}
	}
	return t, nil
}

// Figure 13 ----------------------------------------------------------------

// Fig13Row reports replay time normalized to parallel recording time.
type Fig13Row struct {
	App     string
	Variant core.Variant
	Mode    IntervalMode

	NormTotal float64 // replay cycles / recording cycles
	NormUser  float64
	NormOS    float64
}

// Figure13 reproduces paper Figure 13: sequential replay time with Opt
// and Base logs, normalized to the parallel recording time, broken
// into user and OS cycles (paper averages: Opt 8.5x/6.7x for 4K/INF;
// Base 26.2x/8.6x).
func (s *Suite) Figure13() ([]Fig13Row, *stats.Table, error) {
	// Warm both the recordings and their replay memos (with Verify off
	// the replays would otherwise run serially below).
	specs := s.crossApps(s.opts.Cores, allCfgs...)
	if _, err := parmap(s, len(specs), func(i int) (*replay.Result, error) {
		run, err := s.record(specs[i])
		if err != nil {
			return nil, err
		}
		return s.Replay(run)
	}); err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 13: sequential replay time (normalized to parallel recording)",
		"app", "Opt 4K", "(OS%)", "Base 4K", "(OS%)", "Opt INF", "(OS%)", "Base INF", "(OS%)")
	var rows []Fig13Row
	type agg struct{ tot, os []float64 }
	// Keyed by the (variant, mode) pair itself: a comparable struct key
	// cannot collide the way a formatted string key could, and the hot
	// aggregation loop stops formatting strings entirely.
	aggs := map[vmCfg]*agg{}
	cfgs := []vmCfg{{core.Opt, I4K}, {core.Base, I4K}, {core.Opt, INF}, {core.Base, INF}}
	for _, app := range s.Apps() {
		cells := []string{app}
		for _, cfg := range cfgs {
			run, err := s.Record(app, cfg.v, cfg.m, s.opts.Cores)
			if err != nil {
				return nil, nil, err
			}
			rep, err := s.Replay(run)
			if err != nil {
				return nil, nil, err
			}
			rec := float64(run.Res.Cycles)
			row := Fig13Row{
				App: app, Variant: cfg.v, Mode: cfg.m,
				NormTotal: float64(rep.Timing.Total()) / rec,
				NormUser:  float64(rep.Timing.UserCycles) / rec,
				NormOS:    float64(rep.Timing.OSCycles) / rec,
			}
			rows = append(rows, row)
			if aggs[cfg] == nil {
				aggs[cfg] = &agg{}
			}
			aggs[cfg].tot = append(aggs[cfg].tot, row.NormTotal)
			aggs[cfg].os = append(aggs[cfg].os, stats.Ratio(row.NormOS, row.NormTotal))
			cells = append(cells, stats.F(row.NormTotal, 1)+"x",
				stats.Pct(stats.Ratio(row.NormOS, row.NormTotal), 0))
		}
		t.AddRow(cells...)
	}
	cells := []string{"average"}
	for _, cfg := range cfgs {
		a := aggs[cfg]
		cells = append(cells, stats.F(stats.Mean(a.tot), 1)+"x", stats.Pct(stats.Mean(a.os), 0))
	}
	t.AddRow(cells...)
	return rows, t, nil
}

// Figure 14 ----------------------------------------------------------------

// Fig14Row reports scalability metrics at one core count.
type Fig14Row struct {
	Cores   int
	Variant core.Variant
	Mode    IntervalMode

	ReorderedPct float64 // average across apps
	LogMBps      float64
}

// Figure14 reproduces paper Figure 14: how the reordered fraction (a)
// and the log generation rate (b) scale with 4, 8 and 16 cores.
func (s *Suite) Figure14(coreCounts []int) ([]Fig14Row, *stats.Table, error) {
	if coreCounts == nil {
		coreCounts = []int{4, 8, 16}
	}
	var specs []Spec
	for _, nc := range coreCounts {
		specs = append(specs, s.crossApps(nc, allCfgs...)...)
	}
	if err := s.RecordAll(specs); err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 14: scalability with core count (averages across apps)",
		"config", "P4 reord", "P8 reord", "P16 reord", "P4 MB/s", "P8 MB/s", "P16 MB/s")
	cfgs := []vmCfg{{core.Base, I4K}, {core.Opt, I4K}, {core.Base, INF}, {core.Opt, INF}}
	var rows []Fig14Row
	for _, cfg := range cfgs {
		var reord, rate []string
		for _, nc := range coreCounts {
			var rs, ms []float64
			for _, app := range s.Apps() {
				run, err := s.Record(app, cfg.v, cfg.m, nc)
				if err != nil {
					return nil, nil, err
				}
				rs = append(rs, run.ReorderedFraction())
				ms = append(ms, run.LogRateMBps(s.opts.ClockGHz))
			}
			row := Fig14Row{Cores: nc, Variant: cfg.v, Mode: cfg.m,
				ReorderedPct: stats.Mean(rs), LogMBps: stats.Mean(ms)}
			rows = append(rows, row)
			reord = append(reord, stats.Pct(row.ReorderedPct, 3))
			rate = append(rate, stats.F(row.LogMBps, 1))
		}
		cells := append([]string{fmt.Sprintf("%v %v", cfg.v, cfg.m)}, reord...)
		cells = append(cells, rate...)
		t.AddRow(cells...)
	}
	return rows, t, nil
}

// Table 1 ------------------------------------------------------------------

// Table1 renders the architectural parameters actually used by the
// simulator, mirroring paper Table 1.
func (s *Suite) Table1() *stats.Table {
	mcfg := machine.DefaultConfig(s.opts.Cores)
	ccfg := cpu.DefaultConfig()
	rcfg := core.DefaultConfig(core.Opt)
	t := stats.NewTable("Table 1: architectural parameters", "parameter", "value")
	add := func(k, v string) { t.AddRow(k, v) }
	add("multicore", fmt.Sprintf("ring-based, MESI %s protocol, %d cores", mcfg.Mem.Protocol, s.opts.Cores))
	add("core", fmt.Sprintf("%d-way out-of-order superscalar @ %.0f GHz", ccfg.IssueWidth, s.opts.ClockGHz))
	add("ROB / Ld-St units / LSQ", fmt.Sprintf("%d entries / %d / %d entries", ccfg.ROBSize, ccfg.LdStUnits, ccfg.LSQSize))
	add("L1 cache", fmt.Sprintf("private, %d sets x %d ways x 32B lines (%dKB), %d MSHRs, %d-cycle round trip",
		mcfg.Mem.L1Sets, mcfg.Mem.L1Ways, mcfg.Mem.L1Sets*mcfg.Mem.L1Ways*32/1024, mcfg.Mem.L1MSHRs, mcfg.Mem.L1HitLat))
	add("L2 cache", fmt.Sprintf("shared, 512KB per core, %d-cycle lookup", mcfg.Mem.L2Lat))
	add("memory", fmt.Sprintf("%d-cycle round trip from L2", mcfg.Mem.MemLat))
	add("read & write sigs", fmt.Sprintf("each: %dx%d-bit Bloom filters, H3 hash", rcfg.SigArrays, rcfg.SigBits))
	add("TRAQ", fmt.Sprintf("%d entries, %d counted/cycle", rcfg.TRAQSize, rcfg.CountPerCycle))
	add("snoop table", fmt.Sprintf("%d arrays x %d entries x 16-bit counters", rcfg.SnoopArrays, rcfg.SnoopEntries))
	add("CISN / NMI field", fmt.Sprintf("16 bits / %d max", rcfg.NMICap))
	add("max interval", "4K instructions or unbounded (INF)")
	return t
}

// Extension: parallel replay potential --------------------------------------

// ParRow reports the parallel-replay estimate for one application.
type ParRow struct {
	App     string
	Variant core.Variant

	SeqNorm         float64 // sequential replay / recording time
	ParNorm         float64 // parallel replay / recording time
	Speedup         float64
	EdgesPer1KInstr float64
}

// ExtensionParallelReplay estimates the replay parallelism the logged
// Cyrus-style dependence edges expose (paper §5.4 expects "substantially
// faster replay" from parallel-replay-capable orderers; this quantifies
// it on our logs). INF intervals are used, as in the paper's sequential
// baseline.
func (s *Suite) ExtensionParallelReplay() ([]ParRow, *stats.Table, error) {
	if err := s.RecordAll(s.crossApps(s.opts.Cores,
		vmCfg{core.Opt, INF}, vmCfg{core.Base, INF})); err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Extension: parallel replay potential (INF intervals)",
		"app", "variant", "seq replay", "par replay", "speedup", "edges/1K instr")
	var rows []ParRow
	for _, app := range s.Apps() {
		for _, v := range []core.Variant{core.Opt, core.Base} {
			run, err := s.Record(app, v, INF, s.opts.Cores)
			if err != nil {
				return nil, nil, err
			}
			cpi := make([]float64, run.Cores)
			for c, st := range run.Res.CoreStats {
				if st.Retired > 0 {
					cpi[c] = float64(st.Cycles) / float64(st.Retired)
				} else {
					cpi[c] = 1
				}
			}
			est := replay.EstimateParallel(replay.DefaultConfig(), run.Res.Log, cpi)
			edges := 0
			for _, st := range run.Res.Log.Streams {
				for _, iv := range st.Intervals {
					edges += len(iv.Preds)
				}
			}
			rec := float64(run.Res.Cycles)
			row := ParRow{
				App: app, Variant: v,
				SeqNorm:         float64(est.SequentialCycles) / rec,
				ParNorm:         float64(est.ParallelCycles) / rec,
				Speedup:         est.Speedup(),
				EdgesPer1KInstr: float64(edges) * 1000 / float64(run.Instructions()),
			}
			rows = append(rows, row)
			t.AddRow(app, v.String(), stats.F(row.SeqNorm, 1)+"x", stats.F(row.ParNorm, 1)+"x",
				stats.F(row.Speedup, 2), stats.F(row.EdgesPer1KInstr, 1))
		}
	}
	return rows, t, nil
}

// Section 5.3: recording overhead ---------------------------------------------

// OverheadRow reports recording's execution-time cost for one app.
type OverheadRow struct {
	App          string
	PlainCycles  uint64 // same machine, no recorder attached
	RecordCycles uint64 // with RelaxReplay_Opt recording
	OverheadPct  float64
	TRAQStallPct float64 // dispatch stalls due to a full TRAQ
}

// Section53RecordingOverhead reproduces the paper's §5.3 claim: the
// execution overhead of recording is negligible. The only timing
// coupling between the recorder and the core is TRAQ-full dispatch
// stall (log-write bus contention is not modeled; the paper shows the
// Opt log rate is a trivial fraction of memory bandwidth, see Figure
// 11). We run each workload with and without the recorder and compare
// cycle counts.
func (s *Suite) Section53RecordingOverhead() ([]OverheadRow, *stats.Table, error) {
	apps := s.Apps()
	if err := s.RecordAll(s.crossApps(s.opts.Cores, vmCfg{core.Opt, I4K})); err != nil {
		return nil, nil, err
	}
	rows, err := parmap(s, len(apps), func(i int) (OverheadRow, error) {
		app := apps[i]
		run, err := s.Record(app, core.Opt, I4K, s.opts.Cores)
		if err != nil {
			return OverheadRow{}, err
		}
		// The same workload on the same machine without a recorder.
		mcfg := machine.DefaultConfig(s.opts.Cores)
		mcfg.Mem.Protocol = s.opts.Protocol
		m := machine.New(mcfg, run.W.Progs, nil)
		m.InitMemory(run.W.InitMem)
		for i, in := range run.W.Inputs {
			m.SetInputs(i, in)
		}
		if err := m.Run(); err != nil {
			return OverheadRow{}, err
		}
		var stall, cycles uint64
		for _, cs := range run.Res.CoreStats {
			stall += cs.DispatchStallTRAQ
			cycles += cs.Cycles
		}
		return OverheadRow{
			App:          app,
			PlainCycles:  m.Cycle(),
			RecordCycles: run.Res.Cycles,
			OverheadPct:  stats.Ratio(float64(run.Res.Cycles)-float64(m.Cycle()), float64(m.Cycle())),
			TRAQStallPct: stats.Ratio(float64(stall), float64(cycles)),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Section 5.3: recording overhead (RelaxReplay_Opt, 4K intervals)",
		"app", "no recorder", "recording", "overhead", "TRAQ stalls")
	var ovs, stalls []float64
	for _, row := range rows {
		ovs = append(ovs, row.OverheadPct)
		stalls = append(stalls, row.TRAQStallPct)
		t.AddRow(row.App, fmt.Sprint(row.PlainCycles), fmt.Sprint(row.RecordCycles),
			stats.Pct(row.OverheadPct, 2), stats.Pct(row.TRAQStallPct, 2))
	}
	t.AddRow("average", "", "", stats.Pct(stats.Mean(ovs), 2), stats.Pct(stats.Mean(stalls), 2))
	return rows, t, nil
}

// Motivation: SC recorders cannot capture RC executions ----------------------

// SCNaiveRow reports whether an SC-assuming chunk recorder's log
// replays the recorded RC execution faithfully.
type SCNaiveRow struct {
	App      string
	Diverged bool
	Detail   string
}

// MotivationSCRecorder demonstrates the paper's §2.2 motivation: a
// conventional chunk-based recorder that assumes accesses reach the
// coherence subsystem in program order (SC) silently mis-records
// relaxed-consistency executions. We record each workload with reorder
// detection disabled and attempt a verified replay; divergence is the
// expected outcome wherever reordering was visible.
func (s *Suite) MotivationSCRecorder() ([]SCNaiveRow, *stats.Table, error) {
	apps := s.Apps()
	rows, err := parmap(s, len(apps), func(i int) (SCNaiveRow, error) {
		app := apps[i]
		k, err := workload.ByName(app)
		if err != nil {
			return SCNaiveRow{}, err
		}
		w := k.Build(s.opts.Cores, s.opts.Scale)
		rcfg := core.DefaultConfig(core.Base)
		rcfg.AssumeSC = true
		mcfg := machine.DefaultConfig(s.opts.Cores)
		mcfg.Mem.Protocol = s.opts.Protocol
		res, err := core.Record(mcfg, rcfg, core.Workload{
			Name: w.Name, Progs: w.Progs, Inputs: w.Inputs, InitMem: w.InitMem,
		})
		if err != nil {
			return SCNaiveRow{}, err
		}
		row := SCNaiveRow{App: app}
		row.Diverged, row.Detail = scReplayDiverges(res, w)
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Motivation (paper §2.2): SC-assuming chunk recorder under RC",
		"app", "verified replay", "detail")
	diverged := 0
	for _, row := range rows {
		status := "ok (no visible reorder)"
		if row.Diverged {
			diverged++
			status = "DIVERGED"
		}
		t.AddRow(row.App, status, row.Detail)
	}
	t.AddRow("", fmt.Sprintf("%d/%d apps diverge", diverged, len(apps)), "")
	return rows, t, nil
}

func scReplayDiverges(res *core.Result, w workload.Workload) (bool, string) {
	patched, err := res.Log.Patch()
	if err != nil {
		return true, trim(err)
	}
	rp, err := replay.New(replay.DefaultConfig(), patched, w.Progs, w.InitMem, nil)
	if err != nil {
		return true, trim(err)
	}
	rep, err := rp.Run()
	if err != nil {
		// Value divergence often derails control flow structurally.
		return true, trim(err)
	}
	retired := make([]uint64, len(res.CoreStats))
	for c, st := range res.CoreStats {
		retired[c] = st.Retired
	}
	if err := replay.Verify(rep, res.FinalMemory, res.FinalRegs, retired); err != nil {
		return true, trim(err)
	}
	return false, ""
}

func trim(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return s
}

// Extension: consistency-model sweep -----------------------------------------

// ModelRow reports recording metrics under one consistency model.
type ModelRow struct {
	Model        cpu.MemModel
	OOOLoadsPct  float64 // Figure 1 metric, averaged over apps
	ReorderedPct float64 // Figure 9 metric (Opt, 4K), averaged
	BitsPer1K    float64
}

// ExtensionModelSweep records the suite under RC, TSO and SC cores —
// the paper's central claim is that RelaxReplay handles any
// consistency model with write atomicity; the reorder-dependent
// metrics should shrink as the model tightens, and every recording
// must still replay exactly (verification stays on).
func (s *Suite) ExtensionModelSweep() ([]ModelRow, *stats.Table, error) {
	t := stats.NewTable("Extension: consistency-model sweep (RelaxReplay_Opt, 4K intervals)",
		"model", "OOO loads", "reordered", "bits/1K")
	var rows []ModelRow
	apps := s.Apps()
	for _, model := range []cpu.MemModel{cpu.RC, cpu.TSO, cpu.SC} {
		type appMetrics struct{ ooo, reord, bits float64 }
		ms, err := parmap(s, len(apps), func(i int) (appMetrics, error) {
			k, err := workload.ByName(apps[i])
			if err != nil {
				return appMetrics{}, err
			}
			w := k.Build(s.opts.Cores, s.opts.Scale)
			mcfg := machine.DefaultConfig(s.opts.Cores)
			mcfg.Mem.Protocol = s.opts.Protocol
			mcfg.CPU.Model = model
			res, err := core.Record(mcfg, core.DefaultConfig(core.Opt), core.Workload{
				Name: w.Name, Progs: w.Progs, Inputs: w.Inputs, InitMem: w.InitMem,
			})
			if err != nil {
				return appMetrics{}, err
			}
			run := &Run{App: apps[i], Cores: s.opts.Cores, W: w, Res: res}
			if s.opts.Verify {
				if _, err := s.Replay(run); err != nil {
					return appMetrics{}, err
				}
			}
			l, _ := run.OOOFractions()
			return appMetrics{ooo: l, reord: run.ReorderedFraction(), bits: run.BitsPer1K()}, nil
		})
		if err != nil {
			return nil, nil, err
		}
		var ooo, reord, bits []float64
		for _, m := range ms {
			ooo = append(ooo, m.ooo)
			reord = append(reord, m.reord)
			bits = append(bits, m.bits)
		}
		row := ModelRow{Model: model, OOOLoadsPct: stats.Mean(ooo),
			ReorderedPct: stats.Mean(reord), BitsPer1K: stats.Mean(bits)}
		rows = append(rows, row)
		t.AddRow(model.String(), stats.Pct(row.OOOLoadsPct, 1),
			stats.Pct(row.ReorderedPct, 3), stats.F(row.BitsPer1K, 0))
	}
	return rows, t, nil
}
