package experiments

import (
	"testing"

	"relaxreplay/internal/core"
)

// Regression for the Figure 13/14 aggregation key. It used to be
// fmt.Sprintf("%v/%v", variant, mode), which silently merges any two
// configurations whose rendered names happen to collide (and pays a
// string format per aggregated sample). The key is now the vmCfg value
// pair itself: two distinct configurations can never compare equal, so
// their aggregates can never merge.
func TestAggregationKeysNeverMerge(t *testing.T) {
	seen := map[vmCfg]int{}
	for i, c := range allCfgs {
		if prev, dup := seen[c]; dup {
			t.Fatalf("configs %d and %d map to the same aggregation key %+v", prev, i, c)
		}
		seen[c] = i
	}
	if len(seen) != len(allCfgs) {
		t.Fatalf("%d configs produced %d distinct keys", len(allCfgs), len(seen))
	}

	// Pairs differing in exactly one field stay distinct.
	base4k := vmCfg{core.Base, I4K}
	if base4k == (vmCfg{core.Base, INF}) {
		t.Fatal("keys differing only in interval mode compare equal")
	}
	if base4k == (vmCfg{core.Opt, I4K}) {
		t.Fatal("keys differing only in variant compare equal")
	}
}
