package experiments

import (
	"fmt"
	"os"
	"testing"

	"relaxreplay/internal/core"
)

// TestDiagnostics prints recorder internals per app (not an assertion
// test; opt in with RR_DIAG=1 and -v to inspect).
func TestDiagnostics(t *testing.T) {
	if os.Getenv("RR_DIAG") == "" {
		t.Skip("diagnostic only; set RR_DIAG=1 to run")
	}
	s := NewSuite(DefaultOptions())
	for _, app := range s.Apps() {
		run, err := s.Record(app, core.Opt, INF, 8)
		if err != nil {
			t.Fatal(err)
		}
		var rs core.Stats
		for _, st := range run.Res.RecStats {
			rs.ConflictTerminations += st.ConflictTerminations
			rs.SizeTerminations += st.SizeTerminations
			rs.OptMoves += st.OptMoves
			rs.ReorderedLoads += st.ReorderedLoads + st.ReorderedStores + st.ReorderedAtomics
			rs.PinnedReorders += st.PinnedReorders
			rs.SnoopsObserved += st.SnoopsObserved
			rs.MemCounted += st.MemCounted
			rs.BaseSameInterval += st.BaseSameInterval
		}
		cross := rs.OptMoves + rs.ReorderedLoads + rs.PinnedReorders
		fmt.Printf("%-10s cyc=%-8d mem=%-8d snoops/corecycle=%.4f  term(conf=%d) cross=%d moved=%d reord=%d pinned=%d saveRate=%.2f\n",
			app, run.Res.Cycles, rs.MemCounted,
			float64(rs.SnoopsObserved)/float64(run.Res.Cycles)/8,
			rs.ConflictTerminations, cross, rs.OptMoves, rs.ReorderedLoads, rs.PinnedReorders,
			float64(rs.OptMoves)/float64(max(cross, 1)))
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
