package experiments

import (
	"bytes"
	"testing"

	"relaxreplay/internal/core"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/telemetry"
)

// Telemetry observes; it must never steer. A recording made with full
// instrumentation (metrics + tracing) must produce a byte-identical
// encoded log and byte-identical figure tables compared to an
// uninstrumented run.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	base := DefaultOptions()
	base.Cores = 4
	base.Scale = 1
	base.Apps = []string{"fft"}
	plain := NewSuite(base)

	instr := base
	instr.Telemetry = telemetry.New(telemetry.Options{Shards: base.Cores, Trace: true})
	traced := NewSuite(instr)

	ra, err := plain.Record("fft", core.Opt, I4K, base.Cores)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := traced.Record("fft", core.Opt, I4K, base.Cores)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := replaylog.Encode(&ba, ra.Res.Log); err != nil {
		t.Fatal(err)
	}
	if err := replaylog.Encode(&bb, rb.Res.Log); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("encoded log differs with telemetry enabled (%d vs %d bytes)", ba.Len(), bb.Len())
	}

	_, ta, err := plain.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	_, tb, err := traced.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if ta.String() != tb.String() {
		t.Fatalf("Figure 9 table differs with telemetry enabled:\n--- plain ---\n%s\n--- traced ---\n%s", ta, tb)
	}

	// The instrumented side must actually have observed the work.
	reg := instr.Telemetry.Registry()
	if reg.Counter("suite.runs_completed").Value() == 0 {
		t.Fatal("instrumented suite recorded no completed runs")
	}
	if reg.Counter("cpu.retired").Value() == 0 {
		t.Fatal("instrumented suite retired no instructions")
	}
}

// A parallel suite shares one sharded registry across workers; under
// -race this verifies the instrumentation layer is data-race free end
// to end, not just in the registry microbenchmarks.
func TestTelemetryParallelSuiteRace(t *testing.T) {
	opts := DefaultOptions()
	opts.Cores = 4
	opts.Scale = 1
	opts.Apps = []string{"fft", "volrend", "barnes"}
	opts.Parallelism = 3
	opts.Telemetry = telemetry.New(telemetry.Options{Shards: opts.Cores, Trace: true})
	s := NewSuite(opts)

	specs := s.crossApps(opts.Cores, vmCfg{core.Opt, I4K}, vmCfg{core.Base, I4K})
	if err := s.RecordAll(specs); err != nil {
		t.Fatal(err)
	}
	reg := opts.Telemetry.Registry()
	if got := reg.Counter("suite.runs_completed").Value(); got != uint64(len(specs)) {
		t.Fatalf("suite.runs_completed = %d, want %d", got, len(specs))
	}
	if reg.Histogram("suite.run_duration_ms").Count() != uint64(len(specs)) {
		t.Fatal("suite.run_duration_ms missing observations")
	}
	if len(opts.Telemetry.Tracer().Events()) == 0 {
		t.Fatal("parallel tracing produced no events")
	}
}
