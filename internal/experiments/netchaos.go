// Net chaos grid: the streaming analog of ChaosMatrix. Every cell
// runs a real client/server pair over localhost TCP — a recorder-side
// session streaming a known payload into an rrproc-style journal —
// under one combination of client backpressure policy, server
// behaviour, and injected transport fault. The demand is the same as
// the file-based matrix: every cell ends classified (identical,
// degraded-with-report, or rejected), never hung and never silently
// divergent. A journaled session that claims success must be
// byte-identical to what the client streamed.
package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/rrnet"
	"relaxreplay/internal/stats"
)

// Net chaos grid dimensions.
var (
	// NetChaosPolicies are the client backpressure policies under test.
	NetChaosPolicies = []rrnet.BackpressurePolicy{rrnet.Block, rrnet.Drop, rrnet.Spill}
	// NetChaosServers are the server behaviours: a healthy server, a
	// slow consumer (acks delayed so the client window fills), and a
	// mid-stream restart (graceful-but-forced shutdown, then a new
	// server recovering the same journal on a new port).
	NetChaosServers = []string{"steady", "slow", "restart"}
)

// netChaosFaults is the transport fault axis: no fault plus every
// registered net.* point.
func netChaosFaults() []string {
	out := []string{chaosBaseline}
	for _, p := range faultinject.NetPoints() {
		out = append(out, string(p))
	}
	return out
}

// netChaosWatchdog bounds one cell. A cell that exceeds it is
// reported as a forbidden hang instead of wedging the grid.
const netChaosWatchdog = 30 * time.Second

// netChaosPayload is the per-cell stream size: enough chunks that
// one-shot faults land mid-stream and slow-consumer cells overflow
// the send window.
const netChaosPayload = 48 << 10

// NetChaosCell is one (policy, server, fault) cell of the grid.
type NetChaosCell struct {
	Policy  string
	Server  string
	Fault   string // net.* point name, or "baseline"
	Outcome string // one of the Outcome* classes
	Fired   uint64 // transport faults actually injected
	Retries int    // client reconnect attempts
	Detail  string
}

// NetChaosResult is the full grid plus its rendered table.
type NetChaosResult struct {
	Cells []NetChaosCell
	Table *stats.Table
}

// Forbidden returns the cells with forbidden outcomes.
func (r *NetChaosResult) Forbidden() []NetChaosCell {
	var out []NetChaosCell
	for _, c := range r.Cells {
		if ForbiddenOutcome(c.Outcome) {
			out = append(out, c)
		}
	}
	return out
}

// NetChaosGrid runs the full policy x server x fault grid and
// classifies each cell. Like ChaosMatrix it returns the assembled
// grid alongside a non-nil error when any cell lands in a forbidden
// class.
func (s *Suite) NetChaosGrid(inj *faultinject.Injector) (*NetChaosResult, error) {
	if inj == nil {
		return nil, fmt.Errorf("experiments: net chaos needs an enabled fault injector (-faults spec@seed)")
	}
	type spec struct {
		policy rrnet.BackpressurePolicy
		server string
		fault  string
	}
	var specs []spec
	for _, pol := range NetChaosPolicies {
		for _, srv := range NetChaosServers {
			for _, f := range netChaosFaults() {
				specs = append(specs, spec{pol, srv, f})
			}
		}
	}

	cells, err := parmap(s, len(specs), func(i int) (NetChaosCell, error) {
		sp := specs[i]
		return s.netChaosCell(sp.policy, sp.server, sp.fault, inj), nil
	})
	if err != nil {
		return nil, err
	}

	t := stats.NewTable(
		fmt.Sprintf("Net chaos grid: %d policies x %d servers x %d faults",
			len(NetChaosPolicies), len(NetChaosServers), len(netChaosFaults())),
		"policy", "server", "fault", "outcome", "fired", "retries", "detail")
	for _, c := range cells {
		t.AddRow(c.Policy, c.Server, c.Fault, c.Outcome,
			fmt.Sprintf("%d", c.Fired), fmt.Sprintf("%d", c.Retries), c.Detail)
	}
	t.SortRows()
	res := &NetChaosResult{Cells: cells, Table: t}
	if bad := res.Forbidden(); len(bad) > 0 {
		var names []string
		for _, c := range bad {
			names = append(names, fmt.Sprintf("%s/%s/%s=%s", c.Policy, c.Server, c.Fault, c.Outcome))
		}
		return res, fmt.Errorf("experiments: net chaos grid: %d forbidden outcome(s): %s",
			len(bad), strings.Join(names, ", "))
	}
	return res, nil
}

// netChaosCell runs one cell under a watchdog. A hang is a forbidden
// outcome, not a wedged grid (the stuck goroutine is abandoned — the
// cell already failed).
func (s *Suite) netChaosCell(pol rrnet.BackpressurePolicy, server, fault string, inj *faultinject.Injector) NetChaosCell {
	cell := NetChaosCell{Policy: pol.String(), Server: server, Fault: fault}
	done := make(chan NetChaosCell, 1)
	//rrlint:allow goroleak -- watchdog cell: abandoned on timeout by design so one hung cell cannot stall the suite
	go func() {
		defer func() {
			if r := recover(); r != nil {
				cell.Outcome = OutcomePanic
				cell.Detail = chaosDetail(fmt.Sprint(r))
				done <- cell
			}
		}()
		done <- s.netChaosCellBody(cell, pol, server, fault, inj)
	}()
	select {
	case c := <-done:
		return c
	case <-time.After(netChaosWatchdog):
		cell.Outcome = OutcomeError
		cell.Detail = fmt.Sprintf("watchdog: cell still running after %v", netChaosWatchdog)
		return cell
	}
}

// netChaosCellBody classifies one cell. The named return matters: the
// deferred fault-count fold must land in the value the caller sees.
func (s *Suite) netChaosCellBody(cell NetChaosCell, pol rrnet.BackpressurePolicy, server, fault string, inj *faultinject.Injector) (out NetChaosCell) {
	dir, err := os.MkdirTemp("", "rr-netchaos-*")
	if err != nil {
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail(err.Error())
		return cell
	}
	defer os.RemoveAll(dir)

	label := cell.Policy + "/" + cell.Server + "/" + cell.Fault
	payload := netChaosBytes(label, netChaosPayload)

	// Server side. The restart orchestration retargets addr mid-stream,
	// so the client dials through the atomic.
	sopts := rrnet.ServerOptions{
		Addr:            "127.0.0.1:0",
		JournalPath:     filepath.Join(dir, "journal"),
		ReorderWindow:   16,
		FrameTimeout:    2 * time.Second,
		DrainTimeout:    200 * time.Millisecond,
		FsyncEveryBytes: 8 << 10,
	}
	if server == "slow" {
		sopts.SlowConsumer = 2 * time.Millisecond
	}
	srv, ln, err := netChaosServe(sopts, s)
	if err != nil {
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail(err.Error())
		return cell
	}
	var addr atomic.Value
	addr.Store(ln.Addr().String())
	var current atomic.Pointer[rrnet.Server]
	current.Store(srv)
	defer func() { shutdownQuiet(current.Load()) }()

	restartDone := make(chan struct{})
	if server == "restart" {
		go func() {
			defer close(restartDone)
			time.Sleep(25 * time.Millisecond)
			shutdownQuiet(current.Load())
			srv2, ln2, err := netChaosServe(sopts, s)
			if err != nil {
				return // the client's retries will exhaust loudly
			}
			addr.Store(ln2.Addr().String())
			current.Store(srv2)
		}()
	} else {
		close(restartDone)
	}

	// Client side: one isolated fault per cell on a per-cell
	// deterministic stream, armed early enough to land mid-stream.
	var cinj *faultinject.Injector
	if fault != chaosBaseline {
		cinj = inj.Restrict(label, faultinject.Point(fault))
		cinj.SetTelemetry(s.opts.Telemetry)
		cinj.ArmWithin(faultinject.Point(fault), 24)
	}
	defer func() {
		for _, n := range cinj.Counts() {
			out.Fired += n
		}
	}()

	copts := rrnet.ClientOptions{
		Addr:           ln.Addr().String(),
		Tenant:         "chaos",
		ChunkSize:      1 << 10,
		Window:         4,
		Policy:         pol,
		SpillDir:       dir,
		MaxRetries:     12,
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     50 * time.Millisecond,
		DialTimeout:    time.Second,
		FrameTimeout:   2 * time.Second,
		HeartbeatEvery: 50 * time.Millisecond,
		AckStall:       250 * time.Millisecond,
		Seed:           netChaosSeed(label),
	}
	client, err := rrnet.NewClient(copts, s.opts.Telemetry.Registry())
	if err != nil {
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail(err.Error())
		return cell
	}
	client.Dial = func(_ string, timeout time.Duration) (net.Conn, error) {
		nc, err := net.DialTimeout("tcp", addr.Load().(string), timeout)
		if err != nil {
			return nil, err
		}
		return rrnet.WrapFaultConn(nc, cinj), nil
	}

	id := netChaosSeed(label) | 1
	sw, err := client.OpenSession(id)
	if err != nil {
		return classifyNetError(cell, err)
	}
	_, werr := sw.Write(payload)
	cerr := sw.Close()
	res := sw.Result()
	cell.Retries = res.Retries
	if werr != nil {
		return classifyNetError(cell, werr)
	}
	if cerr != nil {
		return classifyNetError(cell, cerr)
	}

	// Wait out the restart swap, then close the journal and audit it:
	// the on-disk truth decides the outcome, not the client's word.
	<-restartDone
	shutdownQuiet(current.Load())
	view, err := rrnet.ReadJournal(sopts.JournalPath)
	if err != nil {
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail("journal: " + err.Error())
		return cell
	}
	sess := view.Sessions[id]
	if sess == nil || !sess.Committed {
		cell.Outcome = OutcomeError
		cell.Detail = "client reported success but the journal holds no committed session"
		return cell
	}

	switch {
	case res.Status == rrnet.StatusOK:
		if sess.Status != rrnet.StatusOK || !bytes.Equal(sess.Data, payload) {
			cell.Outcome = OutcomeSilent
			cell.Detail = fmt.Sprintf("client says identical; journal has status %d, %d/%d bytes",
				sess.Status, len(sess.Data), len(payload))
			return cell
		}
		cell.Outcome = OutcomeIdentical
		cell.Detail = fmt.Sprintf("%d bytes journaled", len(sess.Data))
	case res.Status == rrnet.StatusDegraded:
		if sess.Status != rrnet.StatusDegraded || sess.Missing == 0 {
			cell.Outcome = OutcomeSilent
			cell.Detail = "degraded commit without a journaled loss report"
			return cell
		}
		cell.Outcome = OutcomeDegraded
		cell.Detail = fmt.Sprintf("%d chunks shed and reported", sess.Missing)
	default:
		cell.Outcome = OutcomeRejected
		cell.Detail = chaosDetail(res.Reason)
	}
	return cell
}

// classifyNetError maps a session failure to its outcome class: typed
// rrnet failures are loud, classified rejections; anything untyped is
// forbidden.
func classifyNetError(cell NetChaosCell, err error) NetChaosCell {
	switch {
	case errors.Is(err, rrnet.ErrRejected), errors.Is(err, rrnet.ErrRetriesExhausted):
		cell.Outcome = OutcomeRejected
		cell.Detail = chaosDetail(err.Error())
	default:
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail(err.Error())
	}
	return cell
}

// netChaosServe builds a server on an ephemeral port and serves it on
// a goroutine.
func netChaosServe(opts rrnet.ServerOptions, s *Suite) (*rrnet.Server, net.Listener, error) {
	srv, err := rrnet.NewServer(opts, s.opts.Telemetry.Registry())
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		shutdownQuiet(srv)
		return nil, nil, err
	}
	//rrlint:allow goroleak -- serve loop terminates when shutdownQuiet closes the listener
	go func() {
		//rrlint:allow errcheck-io -- serve loop ends at shutdown; its error has no consumer here
		_ = srv.Serve(ln)
	}()
	return srv, ln, nil
}

func shutdownQuiet(srv *rrnet.Server) {
	if srv != nil {
		//rrlint:allow errcheck-io -- teardown of a cell whose outcome is already decided
		_ = srv.Shutdown()
	}
}

// netChaosBytes builds the deterministic per-cell payload.
func netChaosBytes(label string, n int) []byte {
	x := netChaosSeed(label)
	out := make([]byte, n)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// netChaosSeed hashes a cell label into a deterministic seed (FNV-1a).
func netChaosSeed(label string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}
