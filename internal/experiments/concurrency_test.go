package experiments

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"relaxreplay/internal/core"
	"relaxreplay/internal/replaylog"
)

// hammerSpecs is a small mixed key set: duplicates within it exercise
// the singleflight path, distinct keys the worker pool.
func hammerSpecs(cores int) []Spec {
	return []Spec{
		{App: "fft", Variant: core.Opt, Mode: I4K, Cores: cores},
		{App: "fft", Variant: core.Base, Mode: INF, Cores: cores},
		{App: "volrend", Variant: core.Opt, Mode: I4K, Cores: cores},
	}
}

// TestDeterminismSerialVsParallel is the regression test for the
// concurrent suite: recording the same workloads through the serial
// harness (Parallelism = 1) and through the worker pool (Parallelism =
// 4) must produce byte-identical encoded logs and equal recorder
// statistics. Replay verification stays on, so both paths also prove
// RnR soundness.
func TestDeterminismSerialVsParallel(t *testing.T) {
	specs := hammerSpecs(2)
	capture := func(parallelism int) (map[Spec][]byte, map[Spec][]core.Stats) {
		opts := DefaultOptions()
		opts.Cores = 2
		opts.Scale = 1
		opts.Apps = []string{"fft", "volrend"}
		opts.Parallelism = parallelism
		s := NewSuite(opts)
		if err := s.RecordAll(specs); err != nil {
			t.Fatal(err)
		}
		logs := make(map[Spec][]byte)
		stats := make(map[Spec][]core.Stats)
		for _, sp := range specs {
			run, err := s.Record(sp.App, sp.Variant, sp.Mode, sp.Cores)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := replaylog.Encode(&buf, run.Res.Log); err != nil {
				t.Fatal(err)
			}
			logs[sp] = buf.Bytes()
			stats[sp] = run.Res.RecStats
		}
		return logs, stats
	}
	serialLogs, serialStats := capture(1)
	parLogs, parStats := capture(4)
	for _, sp := range specs {
		if !bytes.Equal(serialLogs[sp], parLogs[sp]) {
			t.Errorf("%v: encoded log differs between serial and parallel recording (%d vs %d bytes)",
				sp, len(serialLogs[sp]), len(parLogs[sp]))
		}
		if !reflect.DeepEqual(serialStats[sp], parStats[sp]) {
			t.Errorf("%v: recorder stats differ between serial and parallel recording", sp)
		}
	}
}

// TestSuiteRecordConcurrentHammer drives Suite.Record from many
// goroutines for the same and different keys simultaneously (run under
// -race in CI). Every caller must observe the one cached *Run per key.
func TestSuiteRecordConcurrentHammer(t *testing.T) {
	opts := DefaultOptions()
	opts.Cores = 2
	opts.Scale = 1
	opts.Verify = false // determinism test above covers verification
	s := NewSuite(opts)
	specs := hammerSpecs(2)

	const goroutines = 16
	got := make([][]*Run, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				for _, sp := range specs {
					run, err := s.Record(sp.App, sp.Variant, sp.Mode, sp.Cores)
					if err != nil {
						t.Error(err)
						return
					}
					got[g] = append(got[g], run)
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if len(got[g]) != len(got[0]) {
			t.Fatalf("goroutine %d saw %d runs, want %d", g, len(got[g]), len(got[0]))
		}
		for i := range got[g] {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d run %d: distinct *Run for the same key (singleflight broken)", g, i)
			}
		}
	}
}

// TestConcurrentReplayMemoized hammers Suite.Replay for one run from
// many goroutines: the replay must execute once and every caller must
// see the same memoized result.
func TestConcurrentReplayMemoized(t *testing.T) {
	opts := DefaultOptions()
	opts.Cores = 2
	opts.Scale = 1
	opts.Verify = false
	s := NewSuite(opts)
	run, err := s.Record("fft", core.Opt, I4K, 2)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	reps := make([]any, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rep, err := s.Replay(run)
			if err != nil {
				t.Error(err)
				return
			}
			reps[g] = rep
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if reps[g] != reps[0] {
			t.Fatal("Replay returned distinct results for the same run")
		}
	}
}

// TestRecordAllProgressAndDedup checks that RecordAll deduplicates
// (duplicate specs cause no extra executions) and that progress events
// pair up: one start and one done per executed recording, serialized.
func TestRecordAllProgressAndDedup(t *testing.T) {
	var mu sync.Mutex
	starts, dones := 0, 0
	opts := DefaultOptions()
	opts.Cores = 2
	opts.Scale = 1
	opts.Verify = false
	opts.Parallelism = 4
	opts.Progress = func(ev ProgressEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Done {
			dones++
			if ev.Err != nil {
				t.Errorf("%v: %v", ev.Spec, ev.Err)
			}
		} else {
			starts++
		}
		if ev.Completed > ev.Started {
			t.Errorf("progress counters inverted: %d completed of %d started", ev.Completed, ev.Started)
		}
	}
	s := NewSuite(opts)
	specs := append(hammerSpecs(2), hammerSpecs(2)...) // every key twice
	if err := s.RecordAll(specs); err != nil {
		t.Fatal(err)
	}
	unique := len(hammerSpecs(2))
	if starts != unique || dones != unique {
		t.Fatalf("progress events = %d starts / %d dones, want %d each (dedup broken?)",
			starts, dones, unique)
	}
	// A second RecordAll is fully cached: no new executions.
	if err := s.RecordAll(specs); err != nil {
		t.Fatal(err)
	}
	if starts != unique || dones != unique {
		t.Fatalf("cached RecordAll re-executed runs: %d starts", starts)
	}
}

// TestRecordAllPropagatesFirstError ensures a failing spec surfaces
// (in spec order) while valid specs still record.
func TestRecordAllPropagatesFirstError(t *testing.T) {
	opts := DefaultOptions()
	opts.Cores = 2
	opts.Scale = 1
	opts.Verify = false
	opts.Parallelism = 4
	s := NewSuite(opts)
	specs := []Spec{
		{App: "fft", Variant: core.Opt, Mode: I4K, Cores: 2},
		{App: "no-such-kernel", Variant: core.Opt, Mode: I4K, Cores: 2},
	}
	if err := s.RecordAll(specs); err == nil {
		t.Fatal("RecordAll accepted an unknown kernel")
	}
	if _, err := s.Record("fft", core.Opt, I4K, 2); err != nil {
		t.Fatalf("valid spec poisoned by sibling failure: %v", err)
	}
}

func TestParseApps(t *testing.T) {
	got, err := ParseApps(" fft , lu ,,volrend ")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fft", "lu", "volrend"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseApps = %v, want %v", got, want)
	}
	if _, err := ParseApps("fft,nope"); err == nil {
		t.Fatal("unknown kernel accepted")
	} else if !bytes.Contains([]byte(err.Error()), []byte("barnes")) {
		t.Fatalf("error does not list known kernels: %v", err)
	}
	if _, err := ParseApps(" , ,"); err == nil {
		t.Fatal("empty app list accepted")
	}
}
