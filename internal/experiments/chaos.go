// Chaos mode: rerun a figure's workloads under a matrix of injected
// faults and demand that every cell ends in one of the allowed,
// classified outcomes — a byte-identical replay, an explicitly
// degraded partial replay, or a typed loud failure. Anything else
// (a panic, a hang, a clean-looking replay of a corrupted log that
// silently diverges) fails the matrix: the whole point of the
// robustness exercise is that corruption is never survived silently.
package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"relaxreplay/internal/core"
	"relaxreplay/internal/faultinject"
	"relaxreplay/internal/machine"
	"relaxreplay/internal/replay"
	"relaxreplay/internal/replaylog"
	"relaxreplay/internal/stats"
)

// Chaos outcome classes. The first five are the allowed terminal
// states; everything else is forbidden and fails ChaosMatrix.
const (
	// OutcomeIdentical: the log decoded cleanly and replay reproduced
	// the recorded final memory, registers and instruction counts.
	OutcomeIdentical = "replayed-identical"
	// OutcomeDegraded: corruption was detected, quarantined, and the
	// surviving prefix replayed with the loss explicitly reported.
	OutcomeDegraded = "degraded-partial"
	// OutcomeRejected: the pipeline refused the input with a typed
	// error (ErrCorruptFrame / ErrTruncated / invalid-log rejection).
	OutcomeRejected = "corrupt-rejected"
	// OutcomeRecordStall: the fault wedged the recorded machine and the
	// cycle watchdog converted the hang into *machine.StallError.
	OutcomeRecordStall = "record-stalled"
	// OutcomeReplayStall: the replay watchdog converted a replay hang
	// into *replay.ErrStalled.
	OutcomeReplayStall = "replay-stalled"

	// Forbidden outcomes.
	OutcomePanic  = "PANIC"              // a handler panicked
	OutcomeSilent = "SILENT-DIVERGENCE"  // clean pipeline, wrong answer
	OutcomeError  = "UNCLASSIFIED-ERROR" // an untyped failure leaked out
)

// ForbiddenOutcome reports whether an outcome class fails the matrix.
func ForbiddenOutcome(o string) bool {
	switch o {
	case OutcomeIdentical, OutcomeDegraded, OutcomeRejected,
		OutcomeRecordStall, OutcomeReplayStall:
		return false
	}
	return true
}

// chaosBaseline is the pseudo-point for the no-fault control cell.
const chaosBaseline = "baseline"

// recordSidePoints are the faults that perturb the recording machine
// itself (vs. the encoded log bytes) and therefore need a fresh,
// uncached recording run.
var recordSidePoints = map[faultinject.Point]bool{
	faultinject.ICDelay:    true,
	faultinject.ICDrop:     true,
	faultinject.FlushCrash: true,
}

// DefaultChaosApps is the workload subset chaos mode exercises when
// the suite has no explicit app list: enough variety (FFT's regular
// reordering, LU's sharing, radix's scatter, ocean's neighbours)
// without rerunning the whole catalogue per fault point.
var DefaultChaosApps = []string{"fft", "lu", "radix", "ocean"}

// ChaosCell is one (app, fault point) cell of the matrix.
type ChaosCell struct {
	App     string
	Point   string // fault point name, or "baseline"
	Outcome string // one of the Outcome* classes
	Fired   uint64 // faults actually injected in this cell
	Detail  string // one-line cause / degradation description

	// Forensics carries one structured divergence report per replay
	// degradation of a degraded cell (a DamageReport when the cell
	// degraded purely from log damage, with no per-core divergence to
	// point at). Nil for non-degraded cells.
	Forensics []*replay.DivergenceReport
}

// ChaosResult is the full matrix plus its rendered table.
type ChaosResult struct {
	Cells []ChaosCell
	Table *stats.Table
}

// Forbidden returns the cells with forbidden outcomes.
func (r *ChaosResult) Forbidden() []ChaosCell {
	var out []ChaosCell
	for _, c := range r.Cells {
		if ForbiddenOutcome(c.Outcome) {
			out = append(out, c)
		}
	}
	return out
}

// ChaosMatrix runs every chaos app against the injector's enabled
// fault points (one isolated point per cell, plus a no-fault baseline
// per app) and classifies each cell. It returns the assembled matrix
// and a non-nil error when any cell lands in a forbidden class; the
// result is returned alongside the error so callers can still print
// the table.
func (s *Suite) ChaosMatrix(inj *faultinject.Injector) (*ChaosResult, error) {
	if inj == nil {
		return nil, fmt.Errorf("experiments: chaos mode needs an enabled fault injector (-faults spec@seed)")
	}
	var points []faultinject.Point
	for _, p := range faultinject.Points() {
		// net.* points only fire inside the streaming transport; in this
		// file-based matrix they would produce all-baseline cells. They
		// get their own grid: NetChaosGrid.
		if faultinject.IsNetPoint(p) {
			continue
		}
		if inj.Enabled(p) {
			points = append(points, p)
		}
	}
	apps := s.opts.Apps
	if len(apps) == 0 {
		apps = DefaultChaosApps
	}

	type cellSpec struct {
		app   string
		point string
	}
	var specs []cellSpec
	for _, app := range apps {
		specs = append(specs, cellSpec{app, chaosBaseline})
		for _, p := range points {
			specs = append(specs, cellSpec{app, string(p)})
		}
	}

	cells, err := parmap(s, len(specs), func(i int) (ChaosCell, error) {
		return s.chaosCell(specs[i].app, specs[i].point, inj), nil
	})
	if err != nil {
		return nil, err
	}

	t := stats.NewTable(
		fmt.Sprintf("Chaos matrix: fault injection across %d apps x %d points",
			len(apps), len(points)),
		"app", "fault", "outcome", "fired", "detail")
	for _, c := range cells {
		t.AddRow(c.App, c.Point, c.Outcome, fmt.Sprintf("%d", c.Fired), c.Detail)
	}
	// Cells arrive in parmap's completion-independent index order, but
	// sort anyway: the table's contract is byte-identical output across
	// runs regardless of how the rows were produced.
	t.SortRows()
	res := &ChaosResult{Cells: cells, Table: t}
	if bad := res.Forbidden(); len(bad) > 0 {
		var names []string
		for _, c := range bad {
			names = append(names, fmt.Sprintf("%s/%s=%s", c.App, c.Point, c.Outcome))
		}
		return res, fmt.Errorf("experiments: chaos matrix: %d forbidden outcome(s): %s",
			len(bad), strings.Join(names, ", "))
	}
	return res, nil
}

// chaosCell classifies one cell. It never panics out (a panic becomes
// the forbidden OutcomePanic class) and never returns an empty
// outcome.
func (s *Suite) chaosCell(app, point string, inj *faultinject.Injector) (cell ChaosCell) {
	cell = ChaosCell{App: app, Point: point}
	var cinj *faultinject.Injector
	defer func() {
		for _, n := range cinj.Counts() {
			cell.Fired += n
		}
		if r := recover(); r != nil {
			cell.Outcome = OutcomePanic
			cell.Detail = chaosDetail(fmt.Sprint(r))
		}
	}()

	// The clean baseline recording anchors every cell: it supplies the
	// reference final state, the cycle budget for faulted reruns, and
	// (for log faults) the log bytes to corrupt.
	base, err := s.record(Spec{App: app, Variant: core.Opt, Mode: I4K, Cores: s.opts.Cores})
	if err != nil {
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail("baseline: " + err.Error())
		return cell
	}

	if point == chaosBaseline {
		return s.chaosBaselineCell(cell, base)
	}

	// One isolated fault per cell, on a per-cell deterministic stream:
	// the cell's label (not scheduling order) decides where it lands.
	cinj = inj.Restrict(app+"/"+point, faultinject.Point(point))
	cinj.SetTelemetry(s.opts.Telemetry)

	res := base.Res
	if recordSidePoints[faultinject.Point(point)] {
		res, err = s.chaosRecord(base, cinj)
		if err != nil {
			var stall *machine.StallError
			if errors.As(err, &stall) {
				cell.Outcome = OutcomeRecordStall
				cell.Detail = chaosDetail(fmt.Sprintf("after %d cycles", stall.Cycles))
			} else {
				cell.Outcome = OutcomeError
				cell.Detail = chaosDetail("record: " + err.Error())
			}
			return cell
		}
	}

	// Encode under the injector (dupframe), corrupt the bytes (bitflip
	// / truncate / shortwrite), read through the injector (shortread):
	// the same hostile pipeline rrlog and replay face in the field.
	var buf bytes.Buffer
	if err := replaylog.EncodeWith(&buf, res.Log, cinj); err != nil {
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail("encode: " + err.Error())
		return cell
	}
	data, _ := cinj.Corrupt(buf.Bytes())
	l, rep, err := replaylog.DecodeRobust(cinj.WrapReader(bytes.NewReader(data), int64(len(data))))
	if err != nil {
		cell.Outcome = OutcomeRejected
		cell.Detail = chaosDetail(err.Error())
		return cell
	}
	if reg := s.opts.Telemetry.Registry(); reg != nil && rep.Dropped > 0 {
		reg.Counter("replaylog.frames_dropped").Add(0, uint64(rep.Dropped))
	}
	patched, unplaced, err := l.PatchPartial()
	if err != nil {
		cell.Outcome = OutcomeRejected
		cell.Detail = chaosDetail("patch: " + err.Error())
		return cell
	}

	rpcfg := replay.DefaultConfig()
	rpcfg.AllowPartial = true
	rpcfg.Telemetry = s.opts.Telemetry
	rp, err := replay.New(rpcfg, patched, base.W.Progs, base.W.InitMem, nil)
	if err != nil {
		cell.Outcome = OutcomeRejected
		cell.Detail = chaosDetail(err.Error())
		return cell
	}
	rres, err := rp.Run()
	if err != nil {
		var stall *replay.ErrStalled
		if errors.As(err, &stall) {
			cell.Outcome = OutcomeReplayStall
			cell.Detail = chaosDetail(fmt.Sprintf("steps %d/%d at core %d",
				stall.Report.Steps, stall.Report.Budget, stall.Report.Core))
		} else {
			cell.Outcome = OutcomeError
			cell.Detail = chaosDetail("replay: " + err.Error())
		}
		return cell
	}

	retired := make([]uint64, len(res.CoreStats))
	for c, st := range res.CoreStats {
		retired[c] = st.Retired
	}
	verr := replay.Verify(rres, res.FinalMemory, res.FinalRegs, retired)
	degraded := rres.Degraded() || !rep.Clean() || unplaced > 0
	switch {
	case degraded:
		// Loss happened and was reported. The replay's outcome is only
		// authoritative for undegraded cores, so a verify mismatch here
		// is expected, not silent.
		cell.Outcome = OutcomeDegraded
		cell.Detail = chaosDetail(chaosDegradeDetail(rep, unplaced, rres))
		cell.Forensics = replay.DivergenceReports(patched, rres.Degradations, replay.ForensicsOptions{})
		if len(cell.Forensics) == 0 {
			// Degraded purely from log damage (dropped frames, unplaced
			// stores): no per-core divergence exists, so attach the damage
			// summary as the forensic record instead.
			cell.Forensics = append(cell.Forensics,
				replay.DamageReport(chaosDegradeDetail(rep, unplaced, rres)))
		}
	case verr != nil:
		cell.Outcome = OutcomeSilent
		cell.Detail = chaosDetail(verr.Error())
	default:
		cell.Outcome = OutcomeIdentical
	}
	return cell
}

// chaosBaselineCell is the no-fault control: the v2 encoder with a
// nil/disabled injector must be byte-identical to plain Encode (run to
// run and path to path), and the cached replay must verify.
func (s *Suite) chaosBaselineCell(cell ChaosCell, base *Run) ChaosCell {
	var plain, with1, with2 bytes.Buffer
	if err := replaylog.Encode(&plain, base.Res.Log); err != nil {
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail(err.Error())
		return cell
	}
	if err := replaylog.EncodeWith(&with1, base.Res.Log, nil); err != nil {
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail(err.Error())
		return cell
	}
	if err := replaylog.EncodeWith(&with2, base.Res.Log, nil); err != nil {
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail(err.Error())
		return cell
	}
	if !bytes.Equal(plain.Bytes(), with1.Bytes()) || !bytes.Equal(with1.Bytes(), with2.Bytes()) {
		cell.Outcome = OutcomeError
		cell.Detail = "encode not byte-identical with faults disabled"
		return cell
	}
	if _, err := s.Replay(base); err != nil {
		cell.Outcome = OutcomeError
		cell.Detail = chaosDetail(err.Error())
		return cell
	}
	cell.Outcome = OutcomeIdentical
	cell.Detail = fmt.Sprintf("%d log bytes", plain.Len())
	return cell
}

// chaosRecord reruns a recording with the cell's injector wired into
// the machine (interconnect faults) and the recording session (flush
// crash). The cycle budget is bounded off the clean baseline so a
// wedged machine surfaces as *machine.StallError in seconds, not the
// half-billion-cycle default.
func (s *Suite) chaosRecord(base *Run, cinj *faultinject.Injector) (*core.Result, error) {
	rcfg := core.DefaultConfig(base.Variant)
	rcfg.Faults = cinj
	// ic.drop is consulted once per injected ring message; arming it
	// within the baseline's message count guarantees the drop lands
	// inside the run rather than beyond it (the faulted run injects
	// the same messages as the baseline up to the drop point).
	cinj.ArmWithin(faultinject.ICDrop, base.Res.MemStats.RingMessages)
	mcfg := machine.DefaultConfig(base.Cores)
	mcfg.Mem.Protocol = s.opts.Protocol
	mcfg.MaxCycles = base.Res.Cycles*20 + 100_000
	mcfg.Faults = cinj
	mcfg.Shards = s.opts.Shards
	return core.Record(mcfg, rcfg, core.Workload{
		Name: base.W.Name, Progs: base.W.Progs, Inputs: base.W.Inputs, InitMem: base.W.InitMem,
	})
}

// chaosDegradeDetail summarizes what was lost and what survived.
func chaosDegradeDetail(rep *replaylog.CorruptionReport, unplaced int, rres *replay.Result) string {
	var parts []string
	if rep != nil && !rep.Clean() {
		parts = append(parts, rep.Summary())
	}
	if unplaced > 0 {
		parts = append(parts, fmt.Sprintf("%d stores unpatchable", unplaced))
	}
	for _, d := range rres.Degradations {
		parts = append(parts, d.String())
	}
	if len(parts) == 0 {
		parts = append(parts, "degraded")
	}
	return strings.Join(parts, "; ")
}

// chaosDetail clips a detail string to one table-friendly line.
func chaosDetail(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	const max = 90
	if len(s) > max {
		s = s[:max-3] + "..."
	}
	return s
}
