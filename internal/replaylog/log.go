// Package replaylog defines RelaxReplay's interval log: the entry
// types of paper Figure 6(c), per-core interval streams ordered by the
// QuickRec-style global timestamp, the recorded input log, the
// off-line "patching" pass that moves reordered stores back to the
// interval where they performed (paper §3.3.2), and a binary
// serialization.
//
// Log sizes are accounted in uncompressed bits using the paper's field
// widths, which is what Figure 11 reports.
//
//rrlint:deterministic
package replaylog

import (
	"fmt"

	"relaxreplay/internal/provenance"
)

// EntryType discriminates log record entries.
type EntryType uint8

const (
	// InorderBlock: a run of Size consecutive instructions (memory and
	// non-memory alike) to be replayed natively in program order.
	InorderBlock EntryType = iota
	// ReorderedLoad: the next instruction in program order is a load
	// whose recorded Value must be injected instead of accessing memory.
	ReorderedLoad
	// ReorderedStore: a store counted here but performed Offset
	// intervals earlier; patching moves it there. Pre-patch only.
	ReorderedStore
	// ReorderedAtomic: an atomic RMW counted here but performed Offset
	// intervals earlier. Value is the loaded (old) value, StoreValue
	// the value written (if DidWrite). Pre-patch only; patching splits
	// it into a PatchedStore plus a ReorderedLoad-like entry. This is
	// an extension over the paper, which does not discuss atomics.
	ReorderedAtomic
	// PatchedStore: a reordered store moved (by patching) to the end
	// of the interval where it performed. The replayer applies the
	// write without advancing the program counter. Post-patch only.
	PatchedStore
	// Dummy: placeholder left at the counting position of a patched
	// store; the replayer skips one instruction. Post-patch only.
	Dummy
	// IntervalFrame terminates an interval record, carrying the CISN
	// and the global timestamp used to order intervals across cores.
	IntervalFrame
)

func (t EntryType) String() string {
	switch t {
	case InorderBlock:
		return "InorderBlock"
	case ReorderedLoad:
		return "ReorderedLoad"
	case ReorderedStore:
		return "ReorderedStore"
	case ReorderedAtomic:
		return "ReorderedAtomic"
	case PatchedStore:
		return "PatchedStore"
	case Dummy:
		return "Dummy"
	case IntervalFrame:
		return "IntervalFrame"
	}
	return fmt.Sprintf("EntryType(%d)", uint8(t))
}

// Entry is one log record entry. Fields are used per type.
type Entry struct {
	Type EntryType

	Size       uint32 // InorderBlock: instruction count
	Value      uint64 // ReorderedLoad/Atomic: loaded value; (Patched)Store: stored value
	Addr       uint64 // (Patched)Store / Atomic: byte address
	StoreValue uint64 // Atomic: value written
	DidWrite   bool   // Atomic: whether the write took effect (CAS)
	Offset     uint16 // Store/Atomic: intervals since the perform
}

// Paper field widths in bits (Figure 6(c) plus our atomic extension).
const (
	typeBits  = 3 // the paper uses 2; we carry one more type
	sizeBits  = 32
	valueBits = 64
	addrBits  = 64
	offBits   = 16
	cisnBits  = 16
	tsBits    = 64
)

// Bits returns the uncompressed size of the entry in bits, as
// accounted by Figure 11.
func (e Entry) Bits() int {
	switch e.Type {
	case InorderBlock:
		return typeBits + sizeBits
	case ReorderedLoad:
		return typeBits + valueBits
	case ReorderedStore, PatchedStore:
		return typeBits + addrBits + valueBits + offBits
	case ReorderedAtomic:
		return typeBits + addrBits + 2*valueBits + offBits + 1
	case Dummy:
		return typeBits
	case IntervalFrame:
		return typeBits + cisnBits + tsBits
	}
	return 0
}

// Pred names a predecessor interval on another core: the dependence
// edges a Cyrus-style orderer records to enable parallel replay. The
// QuickRec total order (Timestamp) already subsumes them for
// sequential replay; they exist for the parallel-replay estimate.
type Pred struct {
	Core int
	Seq  uint64
}

// Interval is one interval's record: its entries followed (logically)
// by the IntervalFrame information.
type Interval struct {
	Seq       uint64 // full-precision interval sequence number
	CISN      uint16 // the logged 16-bit CISN (Seq mod 2^16)
	Timestamp uint64 // global cycle at termination; total order key
	Entries   []Entry
	Preds     []Pred // cross-core dependence edges (parallel replay)
}

// Instructions returns the number of instructions replayed by this
// interval (patched stores replay no instruction).
func (iv *Interval) Instructions() uint64 {
	var n uint64
	for _, e := range iv.Entries {
		switch e.Type {
		case InorderBlock:
			n += uint64(e.Size)
		case ReorderedLoad, ReorderedAtomic, ReorderedStore, Dummy:
			n++
		}
	}
	return n
}

// CoreLog is the interval stream of one core.
type CoreLog struct {
	Core      int
	Intervals []Interval
}

// Log is a complete RelaxReplay recording.
type Log struct {
	Cores   int
	Variant string // "base" or "opt" (informational; replay is oblivious)
	Patched bool

	Streams []CoreLog
	// Inputs is the recorded input log (per core), replayed into IN.
	Inputs [][]uint64

	// Provenance is the optional flight-recorder sideband: per-core
	// interval termination causes, conflict lines, reorder instants and
	// occupancy snapshots, captured when recording ran with a
	// provenance collector. Purely observational — replay ignores it —
	// and persisted only by EncodeV3 (FrameProvenance frames); v1/v2
	// encoders drop it, keeping those formats byte-identical to
	// pre-provenance recordings.
	Provenance []provenance.CoreProvenance
}

// SizeBits returns the total uncompressed log size in bits.
func (l *Log) SizeBits() int {
	n := 0
	for _, s := range l.Streams {
		for _, iv := range s.Intervals {
			n += int(typeBits + cisnBits + tsBits) // the IntervalFrame
			for _, e := range iv.Entries {
				n += e.Bits()
			}
		}
	}
	return n
}

// CountEntries returns the total number of entries of the given type.
func (l *Log) CountEntries(t EntryType) int {
	n := 0
	for _, s := range l.Streams {
		for _, iv := range s.Intervals {
			for _, e := range iv.Entries {
				if e.Type == t {
					n++
				}
			}
		}
	}
	return n
}

// Instructions returns the total instruction count across all cores.
func (l *Log) Instructions() uint64 {
	var n uint64
	for _, s := range l.Streams {
		for i := range s.Intervals {
			n += s.Intervals[i].Instructions()
		}
	}
	return n
}

// Patch performs the off-line patching pass (paper §3.3.2): every
// ReorderedStore (and the store half of every ReorderedAtomic) is
// moved to the end of the interval that is Offset positions earlier —
// the interval where the store performed — leaving a Dummy (or a
// ReorderedLoad carrying the atomic's loaded value) at the counting
// position. The result is a new Log ready for replay; the input is not
// modified.
func (l *Log) Patch() (*Log, error) {
	if l.Patched {
		return nil, fmt.Errorf("replaylog: log already patched")
	}
	out := &Log{
		Cores:      l.Cores,
		Variant:    l.Variant,
		Patched:    true,
		Streams:    make([]CoreLog, len(l.Streams)),
		Inputs:     l.Inputs,
		Provenance: l.Provenance,
	}
	for ci, s := range l.Streams {
		ns := CoreLog{Core: s.Core, Intervals: make([]Interval, len(s.Intervals))}
		for i, iv := range s.Intervals {
			ns.Intervals[i] = Interval{Seq: iv.Seq, CISN: iv.CISN, Timestamp: iv.Timestamp}
			ns.Intervals[i].Entries = append([]Entry(nil), iv.Entries...)
			ns.Intervals[i].Preds = iv.Preds
		}
		for i := range ns.Intervals {
			iv := &ns.Intervals[i]
			for j, e := range iv.Entries {
				switch e.Type {
				case ReorderedStore, ReorderedAtomic:
					target := i - int(e.Offset)
					if target < 0 {
						return nil, fmt.Errorf("replaylog: core %d interval %d: offset %d reaches before the log", s.Core, i, e.Offset)
					}
					if e.Type == ReorderedStore {
						iv.Entries[j] = Entry{Type: Dummy}
					} else {
						iv.Entries[j] = Entry{Type: ReorderedLoad, Value: e.Value}
						if !e.DidWrite {
							// Failed CAS: nothing to patch; the value
							// injection above replays it completely.
							continue
						}
					}
					ns.Intervals[target].Entries = append(ns.Intervals[target].Entries,
						Entry{Type: PatchedStore, Addr: e.Addr, Value: valueForPatch(e), Offset: e.Offset})
				}
			}
		}
		out.Streams[ci] = ns
	}
	return out, nil
}

// PatchPartial is Patch for logs that lost intervals (a robust decode
// of a damaged stream): store movement targets intervals by sequence
// number rather than slice index, so a gap in the middle of a stream
// does not shift every later offset onto the wrong interval. A store
// whose target interval was lost cannot be placed anywhere; it is
// dropped (its counting-position placeholder is still written) and
// counted in the returned total. PatchPartial never fails on gaps —
// only on a log that is already patched.
func (l *Log) PatchPartial() (*Log, int, error) {
	if l.Patched {
		return nil, 0, fmt.Errorf("replaylog: log already patched")
	}
	dropped := 0
	out := &Log{
		Cores:      l.Cores,
		Variant:    l.Variant,
		Patched:    true,
		Streams:    make([]CoreLog, len(l.Streams)),
		Inputs:     l.Inputs,
		Provenance: l.Provenance,
	}
	for ci, s := range l.Streams {
		ns := CoreLog{Core: s.Core, Intervals: make([]Interval, len(s.Intervals))}
		bySeq := make(map[uint64]int, len(s.Intervals))
		for i, iv := range s.Intervals {
			ns.Intervals[i] = Interval{Seq: iv.Seq, CISN: iv.CISN, Timestamp: iv.Timestamp}
			ns.Intervals[i].Entries = append([]Entry(nil), iv.Entries...)
			ns.Intervals[i].Preds = iv.Preds
			bySeq[iv.Seq] = i
		}
		for i := range ns.Intervals {
			iv := &ns.Intervals[i]
			for j, e := range iv.Entries {
				switch e.Type {
				case ReorderedStore, ReorderedAtomic:
					if e.Type == ReorderedStore {
						iv.Entries[j] = Entry{Type: Dummy}
					} else {
						iv.Entries[j] = Entry{Type: ReorderedLoad, Value: e.Value}
						if !e.DidWrite {
							continue
						}
					}
					// Guard before subtracting: a wrapped iv.Seq-Offset
					// key could alias a real (huge) sequence number and
					// graft the store onto an unrelated interval.
					if uint64(e.Offset) > iv.Seq {
						dropped++ // offset reaches before the log start
						continue
					}
					target, ok := bySeq[iv.Seq-uint64(e.Offset)]
					if !ok {
						dropped++ // target interval was lost with the corruption
						continue
					}
					ns.Intervals[target].Entries = append(ns.Intervals[target].Entries,
						Entry{Type: PatchedStore, Addr: e.Addr, Value: valueForPatch(e), Offset: e.Offset})
				}
			}
		}
		out.Streams[ci] = ns
	}
	return out, dropped, nil
}

func valueForPatch(e Entry) uint64 {
	if e.Type == ReorderedAtomic {
		return e.StoreValue
	}
	return e.Value
}

// Validate checks structural well-formedness: monotone timestamps per
// core, consistent CISNs, no post-patch types in an unpatched log and
// vice versa.
func (l *Log) Validate() error {
	for _, s := range l.Streams {
		var lastTS uint64
		for i, iv := range s.Intervals {
			if iv.Timestamp < lastTS {
				return fmt.Errorf("replaylog: core %d interval %d: timestamp %d < %d", s.Core, i, iv.Timestamp, lastTS)
			}
			lastTS = iv.Timestamp
			if iv.CISN != uint16(iv.Seq) {
				return fmt.Errorf("replaylog: core %d interval %d: CISN %d != Seq %d mod 2^16", s.Core, i, iv.CISN, iv.Seq)
			}
			for _, e := range iv.Entries {
				switch e.Type {
				case ReorderedStore, ReorderedAtomic:
					if l.Patched {
						return fmt.Errorf("replaylog: core %d: %v entry in patched log", s.Core, e.Type)
					}
					if uint64(e.Offset) > iv.Seq {
						return fmt.Errorf("replaylog: core %d: offset %d exceeds interval seq %d", s.Core, e.Offset, iv.Seq)
					}
				case PatchedStore, Dummy:
					if !l.Patched {
						return fmt.Errorf("replaylog: core %d: %v entry in unpatched log", s.Core, e.Type)
					}
				case InorderBlock:
					if e.Size == 0 {
						return fmt.Errorf("replaylog: core %d: empty InorderBlock", s.Core)
					}
				case IntervalFrame:
					return fmt.Errorf("replaylog: core %d: explicit IntervalFrame entry", s.Core)
				}
			}
		}
	}
	return nil
}
