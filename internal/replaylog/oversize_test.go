package replaylog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// The encoder's wire format stores every count in a fixed-width field
// (variant length in a u16, frame length and element counts in u32s).
// An input exceeding a field — or exceeding the decoder's clamps,
// which are tighter — must be rejected with ErrOversizeFrame before
// any byte is written, never silently truncated into a frame that
// checksums clean but decodes to the wrong log.

func TestEncodeRejectsOversizeVariant(t *testing.T) {
	l := sampleLog()
	l.Variant = strings.Repeat("x", MaxVariantLen+1)
	var buf bytes.Buffer
	err := Encode(&buf, l)
	if !errors.Is(err, ErrOversizeFrame) {
		t.Fatalf("Encode(oversize variant) = %v, want ErrOversizeFrame", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("encoder wrote %d bytes before rejecting the log", buf.Len())
	}
}

func TestEncodeRejectsOversizeCounts(t *testing.T) {
	cases := []struct {
		name string
		mut  func(l *Log)
	}{
		{"core count", func(l *Log) { l.Cores = MaxCores + 1 }},
		{"negative core count", func(l *Log) { l.Cores = -1 }},
		{"input stream count", func(l *Log) { l.Inputs = make([][]uint64, MaxCores+1) }},
		{"stream core id", func(l *Log) { l.Streams[0].Core = MaxCores }},
		{"negative stream core", func(l *Log) { l.Streams[0].Core = -3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := sampleLog()
			tc.mut(l)
			var buf bytes.Buffer
			err := Encode(&buf, l)
			if !errors.Is(err, ErrOversizeFrame) {
				t.Fatalf("Encode = %v, want ErrOversizeFrame", err)
			}
			if buf.Len() != 0 {
				t.Fatalf("encoder wrote %d bytes before rejecting the log", buf.Len())
			}
		})
	}
}

// The frame count the encoder accumulates is published in the end
// frame and consumed by decodeV2's truncation check: regression test
// for both directions (correct value on a clean log, detection when a
// whole frame vanishes without leaving corrupt bytes behind).
func TestFrameCountTrailer(t *testing.T) {
	data := encodeBytes(t, sampleLog())
	frames := scanFrames(t, data)
	endFrame := frames[len(frames)-1]
	if endFrame.typ != FrameEnd {
		t.Fatalf("last frame is %v, want end", endFrame.typ)
	}
	payload := data[endFrame.start+9 : endFrame.end-4]
	got := binary.LittleEndian.Uint32(payload)
	if want := uint32(len(frames) - 1); got != want {
		t.Fatalf("end frame declares %d frames, want %d (all frames preceding it)", got, want)
	}

	// Splice out one inputs frame entirely. Stream frames still declare
	// their interval counts, so only the end frame's count can notice
	// this loss; the decode must report truncation.
	var cut frameSpan
	for _, f := range frames {
		if f.typ == FrameInputs {
			cut = f
			break
		}
	}
	if cut.end == 0 {
		t.Fatal("no inputs frame in sample log")
	}
	spliced := append(append([]byte(nil), data[:cut.start]...), data[cut.end:]...)
	_, rep, err := DecodeRobust(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatalf("decode of log missing a whole frame: report %+v, want Truncated", rep)
	}
}
