package replaylog

import (
	"fmt"

	"relaxreplay/internal/provenance"
)

// FrameProvenance codec (see format.go for the wire layout). The
// sideband is persisted only by the v3 encoder; one frame per core,
// written after the interval group frames and before the index footer
// so the segment-index spans are unaffected. The payload leads with a
// version byte: a decoder that sees a version it does not know skips
// the frame cleanly (counted, not reported), which is how future
// payload revisions stay backward-salvageable.

// provVersion is the current FrameProvenance payload version.
const provVersion = 1

// provMinRecordLen / provMinReorderLen are the smallest possible wire
// sizes of one record / one reorder instant; count fields are checked
// against the bytes that back them before any allocation.
const (
	provMinRecordLen  = 9
	provMinReorderLen = 3
)

// encodeProvenanceFrames writes one FrameProvenance frame per entry of
// l.Provenance. Caller guarantees fw/p are the shared encode scratch.
func encodeProvenanceFrames(fw *frameWriter, p *payload, l *Log) error {
	for i := range l.Provenance {
		cp := &l.Provenance[i]
		if cp.Core < 0 || cp.Core >= MaxCores {
			return fmt.Errorf("%w: provenance core %d (limit %d)", ErrOversizeFrame, cp.Core, MaxCores)
		}
		if len(cp.Records) > MaxIntervalsPerCore {
			return fmt.Errorf("%w: core %d has %d provenance records (limit %d)", ErrOversizeFrame, cp.Core, len(cp.Records), MaxIntervalsPerCore)
		}
		p.Reset()
		p.u8(provVersion)
		p.uvarint(uint64(cp.Core))
		p.uvarint(uint64(len(cp.Records)))
		for ri := range cp.Records {
			r := &cp.Records[ri]
			if len(r.Reorders) > MaxEntriesPerInterval {
				return fmt.Errorf("%w: core %d provenance seq %d has %d reorders (limit %d)", ErrOversizeFrame, cp.Core, r.Seq, len(r.Reorders), MaxEntriesPerInterval)
			}
			p.uvarint(r.Seq)
			p.u8(uint8(r.Cause))
			p.uvarint(r.Cycle)
			p.uvarint(uint64(r.TRAQOccupancy))
			p.uvarint(uint64(r.SnoopNonzero))
			p.uvarint(r.ConflictLine)
			w := uint8(0)
			if r.ConflictWrite {
				w = 1
			}
			p.u8(w)
			p.svarint(int64(r.RemoteCore))
			p.uvarint(uint64(len(r.Reorders)))
			for j := range r.Reorders {
				re := &r.Reorders[j]
				p.u8(re.Kind)
				p.uvarint(uint64(re.Offset))
				p.uvarint(re.Cycle)
			}
		}
		fw.frame(FrameProvenance, p.Bytes())
	}
	return nil
}

// decodeProvenanceBody parses a FrameProvenance payload *after* the
// leading version byte was read and matched. A non-empty reason means
// the frame is structurally corrupt and is dropped whole (the frame is
// the unit of loss, like a group frame).
func decodeProvenanceBody(br *byteReader) (core int, recs []provenance.Record, reason string) {
	c := br.uvarint()
	count := br.uvarint()
	if br.short {
		return 0, nil, "short provenance frame"
	}
	if c >= MaxCores {
		return 0, nil, fmt.Sprintf("core %d exceeds limit", c)
	}
	if count > MaxIntervalsPerCore || int(count)*provMinRecordLen > br.remaining() {
		return 0, nil, fmt.Sprintf("record count %d exceeds frame", count)
	}
	recs = make([]provenance.Record, 0, count)
	for i := uint64(0); i < count; i++ {
		var r provenance.Record
		r.Seq = br.uvarint()
		r.Cause = provenance.Cause(br.u8())
		r.Cycle = br.uvarint()
		traq := br.uvarint()
		snoop := br.uvarint()
		r.ConflictLine = br.uvarint()
		r.ConflictWrite = br.u8() != 0
		remote := br.svarint()
		nre := br.uvarint()
		if br.short {
			return 0, nil, "short provenance record"
		}
		if traq > 1<<32-1 || snoop > 1<<32-1 {
			return 0, nil, "provenance occupancy overflows u32"
		}
		if remote < -1 || remote >= MaxCores {
			return 0, nil, fmt.Sprintf("bad provenance remote core %d", remote)
		}
		if nre > MaxEntriesPerInterval || int(nre)*provMinReorderLen > br.remaining() {
			return 0, nil, fmt.Sprintf("reorder count %d exceeds frame", nre)
		}
		r.TRAQOccupancy = uint32(traq)
		r.SnoopNonzero = uint32(snoop)
		r.RemoteCore = int32(remote)
		if nre > 0 {
			r.Reorders = make([]provenance.Reorder, 0, nre)
			for j := uint64(0); j < nre; j++ {
				kind := br.u8()
				off := br.uvarint()
				cyc := br.uvarint()
				if br.short {
					return 0, nil, "short reorder instant"
				}
				if off > 1<<16-1 {
					return 0, nil, "reorder offset overflows u16"
				}
				r.Reorders = append(r.Reorders, provenance.Reorder{Kind: kind, Offset: uint16(off), Cycle: cyc})
			}
		}
		recs = append(recs, r)
	}
	if br.remaining() != 0 {
		return 0, nil, "trailing bytes in provenance frame"
	}
	return int(c), recs, ""
}

// attachProvenance merges one decoded provenance frame into the log,
// concatenating records when a core appears in more than one frame so
// the in-memory form is canonical regardless of frame layout.
func attachProvenance(l *Log, core int, recs []provenance.Record) {
	for i := range l.Provenance {
		if l.Provenance[i].Core == core {
			l.Provenance[i].Records = append(l.Provenance[i].Records, recs...)
			return
		}
	}
	l.Provenance = append(l.Provenance, provenance.CoreProvenance{Core: core, Records: recs})
}
