package replaylog

import (
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
)

// On-disk format v2 (see DESIGN.md "Log format v2" for the frame
// diagram). The file is a fixed preamble followed by a sequence of
// independently-checksummed frames:
//
//	file  := magic "RRLG" | version u16 (LE) | frame*
//	frame := sync 0xF5 'R' 'F' '2'
//	       | type u8 | length u32 (LE, payload bytes)
//	       | payload
//	       | crc32c u32 (LE, over type|length|payload)
//
// Frame payloads (all integers little-endian):
//
//	header   (1): cores u32 | patched u8 | ninputs u32 | vlen u16 | variant
//	inputs   (2): core u32 | count u32 | count × u64
//	stream   (3): core u32 | intervals u32
//	interval (4): core u32 | seq u64 | timestamp u64 | nent u32 | npred u32
//	              | entries (v1 entry encoding) | preds (core u32, seq u64 each)
//	end      (5): frames u32 (number of preceding frames)
//
// One interval per frame is the unit of loss: a corrupt frame costs
// one interval, never the log. The sync word lets the decoder resync
// after arbitrary corruption; the CRC makes acceptance explicit; the
// stream frames declare expected interval counts so truncation is
// detected even when the end frame is lost; the end frame detects
// clean-tail truncation. Version 1 files (no framing, no checksums)
// still decode.

// On-disk format v3 (see DESIGN.md "Log format v3") keeps the same
// preamble and the same sync/type/length/CRC32C framing, so the
// resyncing salvage machinery is shared, and replaces the per-interval
// frames with compressed *group* frames plus a seekable index footer:
//
//	file  := magic "RRLG" | version u16 = 3 | frame* | index | end
//	group (6): flags u8 | core uvarint | body (raw, or flate when flags&1)
//	index (7): nspans uvarint | span*
//	span  := core uvarint | firstSeq uvarint | lastSeq-firstSeq uvarint
//	       | offset uvarint | length uvarint
//	end   (5): frames u32 | index offset u64 (LE; byte offset of the
//	           index frame's sync word from the start of the file)
//
// A v3 file may additionally carry one provenance frame per core,
// written between the group frames and the index footer:
//
//	provenance (8): ver u8 = 1 | core uvarint | count uvarint | record*
//	record := seq uvarint | cause u8 | cycle uvarint | traq uvarint
//	        | snoop uvarint | conflictLine uvarint | conflictWrite u8
//	        | remoteCore svarint | nreorders uvarint | reorder*
//	reorder := kind u8 | offset uvarint | cycle uvarint
//
// The frame is observational sideband: decoders that predate it (and
// the v2 decoder, which never sees it written) skip it via the normal
// resync path, and a future payload version is skipped cleanly by
// matching on the leading version byte.
//
// A group body holds up to V3Options.GroupSize consecutive intervals
// of one core, delta-encoded: the first interval carries absolute
// Seq/Timestamp varints, later ones carry (strictly positive) Seq
// deltas and (non-negative) Timestamp deltas; store/atomic addresses
// are zigzag deltas against the previous address in the group; every
// other entry field is a varint. The group frame is the unit of loss —
// a corrupt frame costs at most GroupSize intervals — and is
// self-contained, so the robust decoder salvages frame by frame and
// OpenIndexed decodes one group without touching the rest of the file.
// The index footer is advisory: destroying it (or the end frame) only
// costs the O(log n) seek; linear decode recovers everything else.

// FrameType discriminates v2/v3 frames.
type FrameType uint8

const (
	FrameInvalid  FrameType = 0
	FrameHeader   FrameType = 1
	FrameInputs   FrameType = 2
	FrameStream   FrameType = 3
	FrameInterval FrameType = 4
	FrameEnd      FrameType = 5
	// FrameIvGroup is a v3 compressed interval-group frame.
	FrameIvGroup FrameType = 6
	// FrameIndex is the v3 segment-index footer frame.
	FrameIndex FrameType = 7
	// FrameProvenance is a v3 per-core interval-provenance sideband
	// frame (termination causes, conflict lines, reorder instants);
	// see provenance.go for the payload layout. Self-contained and
	// CRC32C-framed like every other frame, so DecodeRobust salvages
	// it independently and pre-provenance decoders resync past it.
	FrameProvenance FrameType = 8
)

func (t FrameType) String() string {
	switch t {
	case FrameHeader:
		return "header"
	case FrameInputs:
		return "inputs"
	case FrameStream:
		return "stream"
	case FrameInterval:
		return "interval"
	case FrameEnd:
		return "end"
	case FrameIvGroup:
		return "group"
	case FrameIndex:
		return "index"
	case FrameProvenance:
		return "provenance"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

var frameSync = [4]byte{0xF5, 'R', 'F', '2'}

// Decode limits: every length or count field read from untrusted bytes
// is clamped against these maxima before any allocation, so a hostile
// header can claim gigabytes but never allocate them.
const (
	// MaxFrameLen bounds a single v2 frame payload (64 MiB).
	MaxFrameLen = 1 << 26
	// MaxVariantLen bounds the variant string ("base"/"opt" in practice).
	MaxVariantLen = 1 << 10
	// MaxCores bounds core counts and per-core table sizes.
	MaxCores = 1 << 16
	// MaxInputLen bounds one core's recorded input stream (v1 decode).
	MaxInputLen = 1 << 24
	// MaxIntervalsPerCore bounds one core's interval count (v1 decode).
	MaxIntervalsPerCore = 1 << 24
	// MaxEntriesPerInterval bounds one interval's entry count.
	MaxEntriesPerInterval = 1 << 22
	// MaxPredsPerInterval bounds one interval's dependence-edge count.
	MaxPredsPerInterval = 1 << 20
	// MaxGroupIntervals bounds one v3 group frame's interval count.
	MaxGroupIntervals = 1 << 16
	// MaxIndexSpans bounds the v3 index footer's span count.
	MaxIndexSpans = 1 << 24
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed decode errors. Callers classify with errors.Is.
var (
	// ErrCorruptFrame reports that one or more frames failed their
	// checksum or structural checks and were dropped.
	ErrCorruptFrame = errors.New("replaylog: corrupt frame")
	// ErrTruncated reports that the stream ended before the log did.
	ErrTruncated = errors.New("replaylog: log truncated")
	// ErrOversizeFrame reports that an encoder input exceeds one of the
	// format clamps above (frame payload, count field, or variant
	// string). The fixed-width wire fields would silently truncate such
	// a value into a corrupt-but-checksummed frame, so the encoder
	// refuses to write it instead.
	ErrOversizeFrame = errors.New("replaylog: oversize frame")
)

// FrameError describes one dropped frame.
type FrameError struct {
	Offset int64     // byte offset of the frame's sync word in the stream
	Type   FrameType // claimed frame type (FrameInvalid when unreadable)
	Core   int       // owning core for inputs/stream/interval frames; -1 unknown
	Seq    uint64    // interval sequence number (interval frames; meaningful with Core >= 0)
	Reason string
}

func (e FrameError) String() string {
	loc := ""
	if e.Core >= 0 {
		loc = fmt.Sprintf(" core %d", e.Core)
		if e.Type == FrameInterval {
			loc += fmt.Sprintf(" interval %d", e.Seq)
		}
	}
	return fmt.Sprintf("offset %d: %s frame%s: %s", e.Offset, e.Type, loc, e.Reason)
}

// maxReportedFrames caps the FrameError list so a shredded multi-
// megabyte log cannot balloon the report; Dropped keeps the true count.
const maxReportedFrames = 64

// CorruptionReport is the structured outcome of a robust decode: what
// was dropped, skipped, or found missing. The zero value means a clean
// decode.
type CorruptionReport struct {
	Version int // format version that was decoded (1 or 2)

	// Frames lists dropped frames (capped at maxReportedFrames);
	// Dropped is the uncapped count.
	Frames  []FrameError
	Dropped int

	// DupFrames counts duplicate or out-of-order interval frames that
	// were discarded (the surviving copy is intact).
	DupFrames int

	// BytesSkipped counts bytes the resync scan had to discard.
	BytesSkipped int64

	// MissingIntervals counts intervals a stream frame declared but
	// the decoder never recovered.
	MissingIntervals int

	// Truncated is set when the stream ended mid-frame, the end frame
	// was missing, or (v1) the stream ended mid-structure.
	Truncated bool

	// HeaderLost is set when no header frame survived; Cores/Variant/
	// Patched on the returned Log are then inferred from the frames
	// that did.
	HeaderLost bool
}

// note records a dropped frame.
func (r *CorruptionReport) note(e FrameError) {
	r.Dropped++
	if len(r.Frames) < maxReportedFrames {
		r.Frames = append(r.Frames, e)
	}
}

// Clean reports whether the decode recovered everything.
func (r *CorruptionReport) Clean() bool {
	return r == nil || (r.Dropped == 0 && r.DupFrames == 0 && r.BytesSkipped == 0 &&
		r.MissingIntervals == 0 && !r.Truncated && !r.HeaderLost)
}

// Err returns nil for a clean report, or a typed error (ErrCorruptFrame
// or ErrTruncated, matchable with errors.Is) summarizing the damage.
func (r *CorruptionReport) Err() error {
	if r.Clean() {
		return nil
	}
	if r.Dropped > 0 || r.DupFrames > 0 || r.BytesSkipped > 0 || r.HeaderLost {
		return fmt.Errorf("%w: %s", ErrCorruptFrame, r.oneLine())
	}
	return fmt.Errorf("%w: %s", ErrTruncated, r.oneLine())
}

func (r *CorruptionReport) oneLine() string {
	var parts []string
	if r.Dropped > 0 {
		parts = append(parts, fmt.Sprintf("%d frame(s) dropped", r.Dropped))
	}
	if r.DupFrames > 0 {
		parts = append(parts, fmt.Sprintf("%d duplicate frame(s)", r.DupFrames))
	}
	if r.BytesSkipped > 0 {
		parts = append(parts, fmt.Sprintf("%d byte(s) skipped", r.BytesSkipped))
	}
	if r.MissingIntervals > 0 {
		parts = append(parts, fmt.Sprintf("%d interval(s) missing", r.MissingIntervals))
	}
	if r.HeaderLost {
		parts = append(parts, "header lost")
	}
	if r.Truncated {
		parts = append(parts, "truncated")
	}
	return strings.Join(parts, ", ")
}

// Summary renders the report as a multi-line human-readable block
// (what rrlog prints on a bad log).
func (r *CorruptionReport) Summary() string {
	if r.Clean() {
		return "log is clean: no corruption detected"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "log corruption detected (format v%d): %s\n", r.Version, r.oneLine())
	for _, f := range r.Frames {
		fmt.Fprintf(&b, "  dropped %s\n", f)
	}
	if r.Dropped > len(r.Frames) {
		fmt.Fprintf(&b, "  ... and %d more dropped frame(s)\n", r.Dropped-len(r.Frames))
	}
	if r.Truncated {
		b.WriteString("  stream truncated before the end-of-log frame\n")
	}
	if r.HeaderLost {
		b.WriteString("  header frame lost; cores/variant inferred from surviving frames\n")
	}
	return strings.TrimRight(b.String(), "\n")
}
