package replaylog

import (
	"bytes"
	"io"
	"testing"
)

// benchLog builds a synthetic but realistically-shaped log: mostly
// InorderBlock entries with a sprinkling of reordered accesses and
// cross-core dependence edges, mirroring what an Opt recording of a
// SPLASH kernel produces.
func benchLog(cores, intervalsPerCore int) *Log {
	l := &Log{Cores: cores, Variant: "opt"}
	for c := 0; c < cores; c++ {
		l.Inputs = append(l.Inputs, []uint64{uint64(c), uint64(c) * 7, uint64(c) * 13})
		s := CoreLog{Core: c}
		for i := 0; i < intervalsPerCore; i++ {
			iv := Interval{
				Seq:       uint64(i + 1),
				CISN:      uint16(i + 1),
				Timestamp: uint64(c + i*cores),
			}
			iv.Entries = append(iv.Entries,
				Entry{Type: InorderBlock, Size: uint32(40 + i%17)},
				Entry{Type: ReorderedLoad, Value: uint64(i) * 3},
				Entry{Type: InorderBlock, Size: uint32(10 + i%5)},
			)
			if i%3 == 0 {
				iv.Entries = append(iv.Entries,
					Entry{Type: ReorderedStore, Addr: uint64(0x1000 + i*8), Value: uint64(i), Offset: uint16(i % 4)})
			}
			if i%5 == 0 {
				iv.Entries = append(iv.Entries,
					Entry{Type: ReorderedAtomic, Addr: uint64(0x2000 + i*8), Value: uint64(i), StoreValue: uint64(i + 1), Offset: 0, DidWrite: true})
			}
			if i%4 == 1 && cores > 1 {
				iv.Preds = append(iv.Preds, Pred{Core: (c + 1) % cores, Seq: uint64(i)})
			}
			s.Intervals = append(s.Intervals, iv)
		}
		l.Streams = append(l.Streams, s)
	}
	return l
}

// BenchmarkEncode measures the v2 encoder hot loop (the acceptance
// metric of record for allocs/op: see BENCH_5.json).
func BenchmarkEncode(b *testing.B) {
	l := benchLog(8, 256)
	var buf bytes.Buffer
	if err := Encode(&buf, l); err != nil {
		b.Fatal(err)
	}
	bytesPerOp := buf.Len()
	b.SetBytes(int64(bytesPerOp))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Encode(io.Discard, l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures the strict v2 decode path on a clean log.
func BenchmarkDecode(b *testing.B) {
	l := benchLog(8, 256)
	var buf bytes.Buffer
	if err := Encode(&buf, l); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeRobust measures the resyncing decoder on a log with a
// corrupt frame in the middle, the graceful-degradation hot path.
func BenchmarkDecodeRobust(b *testing.B) {
	l := benchLog(8, 256)
	var buf bytes.Buffer
	if err := Encode(&buf, l); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF // one flipped byte mid-stream
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRobust(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatch measures the off-line patching pass (paper §3.3.2).
func BenchmarkPatch(b *testing.B) {
	l := benchLog(8, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Patch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeV3 measures the compressed v3 encoder (delta/varint
// group bodies plus the flate stage) on the same synthetic log.
func BenchmarkEncodeV3(b *testing.B) {
	l := benchLog(8, 256)
	var buf bytes.Buffer
	if err := EncodeV3(&buf, l); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeV3(io.Discard, l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeV3 measures the sequential v3 decode.
func BenchmarkDecodeV3(b *testing.B) {
	l := benchLog(8, 256)
	var buf bytes.Buffer
	if err := EncodeV3(&buf, l); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRobust(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeV3Parallel measures the per-core parallel v3 decode
// (the rrreplay read path) on the same bytes as BenchmarkDecodeV3.
func BenchmarkDecodeV3Parallel(b *testing.B) {
	l := benchLog(8, 256)
	var buf bytes.Buffer
	if err := EncodeV3(&buf, l); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeParallel(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeInterval measures one indexed seek (end frame +
// index footer + one group frame) against the full-scan alternative
// the index replaces.
func BenchmarkDecodeInterval(b *testing.B) {
	l := benchLog(8, 256)
	var buf bytes.Buffer
	if err := EncodeV3(&buf, l); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	ix, err := OpenIndexed(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		b.Fatal(err)
	}
	if !ix.Indexed() {
		b.Fatalf("index not live: %s", ix.Reason())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.DecodeInterval(i%8, uint64(i%256)+1); err != nil {
			b.Fatal(err)
		}
	}
}
