package replaylog

import (
	"bytes"
	"testing"
)

// Regression: the CRC-mismatch resync path must count every byte it
// skips. Before the fix the first byte after a bad checksum was
// consumed by pos++ without touching BytesSkipped, so the report
// under-counted by one per corrupted frame.
func TestBytesSkippedExactOnCRCMismatch(t *testing.T) {
	run := func(t *testing.T, data []byte) {
		frames := scanFrames(t, data)
		var iv frameSpan
		found := false
		for _, f := range frames {
			if f.typ == FrameInterval || f.typ == FrameIvGroup {
				iv = f
				found = true
				break
			}
		}
		if !found {
			t.Fatal("no interval/group frame")
		}
		bad := append([]byte(nil), data...)
		bad[iv.end-5] ^= 0xFF // last payload byte: CRC now fails

		_, rep, err := DecodeRobust(bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Dropped != 1 {
			t.Fatalf("Dropped = %d, want 1 (%+v)", rep.Dropped, rep.Frames)
		}
		// The resync walks every byte from the bad frame's sync word to
		// the next frame's sync word: exactly the frame's length.
		if want := int64(iv.end - iv.start); rep.BytesSkipped != want {
			t.Fatalf("BytesSkipped = %d, want %d", rep.BytesSkipped, want)
		}
	}
	t.Run("v2", func(t *testing.T) { run(t, encodeBytes(t, sampleLog())) })
	t.Run("v3", func(t *testing.T) { run(t, encodeV3Bytes(t, sampleLog(), V3Options{})) })
}

// Regression: PatchPartial must check Offset > Seq before computing
// the bySeq key. Before the fix, iv.Seq-uint64(e.Offset) wrapped and
// could alias a real high sequence number, grafting the store onto an
// unrelated interval before the guard dropped... nothing.
func TestPatchPartialOffsetUnderflow(t *testing.T) {
	// Seq 1 with Offset 3 wraps to 2^64-2; an interval with exactly
	// that sequence number is the collision target.
	var collider uint64 = 1<<64 - 2
	l := &Log{
		Cores: 1,
		Streams: []CoreLog{{Core: 0, Intervals: []Interval{
			{Seq: 1, CISN: 1, Timestamp: 10, Entries: []Entry{
				{Type: ReorderedStore, Addr: 0x40, Value: 99, Offset: 3},
			}},
			{Seq: collider, CISN: uint16(collider), Timestamp: 20, Entries: []Entry{
				{Type: InorderBlock, Size: 1},
			}},
		}}},
	}
	p, dropped, err := l.PatchPartial()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	for _, e := range p.Streams[0].Intervals[1].Entries {
		if e.Type == PatchedStore {
			t.Fatalf("store with wrapped offset grafted onto colliding interval %d", collider)
		}
	}
	if p.Streams[0].Intervals[0].Entries[0].Type != Dummy {
		t.Fatal("counting position not dummied")
	}
}

// Regression for the collapsed failed-CAS branches: a ReorderedAtomic
// with DidWrite=false must patch to a pure value injection — no
// PatchedStore anywhere — under both Patch and PatchPartial.
func TestFailedCASPatchesToValueInjectionOnly(t *testing.T) {
	mk := func() *Log {
		return &Log{
			Cores: 1,
			Streams: []CoreLog{{Core: 0, Intervals: []Interval{
				{Seq: 0, Timestamp: 1, Entries: []Entry{{Type: InorderBlock, Size: 4}}},
				{Seq: 1, Timestamp: 2, Entries: []Entry{
					{Type: ReorderedAtomic, Addr: 8, Value: 9, StoreValue: 10, DidWrite: false, Offset: 1},
				}},
			}}},
		}
	}
	check := func(t *testing.T, p *Log) {
		t.Helper()
		for _, iv := range p.Streams[0].Intervals {
			for _, e := range iv.Entries {
				if e.Type == PatchedStore {
					t.Fatalf("failed CAS emitted a PatchedStore: %+v", e)
				}
			}
		}
		got := p.Streams[0].Intervals[1].Entries[0]
		if got.Type != ReorderedLoad || got.Value != 9 {
			t.Fatalf("counting slot = %+v, want ReorderedLoad value 9", got)
		}
	}
	t.Run("Patch", func(t *testing.T) {
		p, err := mk().Patch()
		if err != nil {
			t.Fatal(err)
		}
		check(t, p)
	})
	t.Run("PatchPartial", func(t *testing.T) {
		p, dropped, err := mk().PatchPartial()
		if err != nil {
			t.Fatal(err)
		}
		if dropped != 0 {
			t.Fatalf("dropped = %d, want 0", dropped)
		}
		check(t, p)
	})
}

// Table test pinning inferHeader's rules for header-lost logs.
func TestInferHeaderRules(t *testing.T) {
	stream := func(core int, types ...EntryType) CoreLog {
		var es []Entry
		for _, ty := range types {
			e := Entry{Type: ty}
			if ty == InorderBlock {
				e.Size = 1
			}
			es = append(es, e)
		}
		return CoreLog{Core: core, Intervals: []Interval{{Entries: es}}}
	}
	cases := []struct {
		name        string
		log         *Log
		wantCores   int
		wantPatched bool
	}{
		{
			name:      "patched-store-implies-patched",
			log:       &Log{Streams: []CoreLog{stream(0, InorderBlock, PatchedStore)}},
			wantCores: 1, wantPatched: true,
		},
		{
			name:      "dummy-implies-patched",
			log:       &Log{Streams: []CoreLog{stream(2, Dummy)}},
			wantCores: 3, wantPatched: true,
		},
		{
			name:      "reordered-store-implies-unpatched",
			log:       &Log{Streams: []CoreLog{stream(0, ReorderedStore)}},
			wantCores: 1, wantPatched: false,
		},
		{
			name:      "reordered-atomic-implies-unpatched",
			log:       &Log{Streams: []CoreLog{stream(1, InorderBlock, ReorderedAtomic)}},
			wantCores: 2, wantPatched: false,
		},
		{
			// Only InorderBlock/ReorderedLoad survive: either variant
			// could have produced them; inference defaults to unpatched.
			name:      "ambiguous-defaults-to-unpatched",
			log:       &Log{Streams: []CoreLog{stream(0, InorderBlock, ReorderedLoad)}},
			wantCores: 1, wantPatched: false,
		},
		{
			// First decisive entry wins even with later decisive
			// entries on other cores appearing earlier in core order.
			name: "first-decisive-entry-wins",
			log: &Log{Streams: []CoreLog{
				stream(0, InorderBlock, ReorderedLoad),
				stream(1, PatchedStore),
			}},
			wantCores: 2, wantPatched: true,
		},
		{
			name:      "inputs-extend-core-count",
			log:       &Log{Inputs: [][]uint64{nil, nil, nil, {1}}, Streams: []CoreLog{stream(0, InorderBlock)}},
			wantCores: 4, wantPatched: false,
		},
		{
			name:      "empty-log",
			log:       &Log{},
			wantCores: 0, wantPatched: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inferHeader(tc.log)
			if tc.log.Cores != tc.wantCores {
				t.Errorf("Cores = %d, want %d", tc.log.Cores, tc.wantCores)
			}
			if tc.log.Patched != tc.wantPatched {
				t.Errorf("Patched = %v, want %v", tc.log.Patched, tc.wantPatched)
			}
		})
	}
}
