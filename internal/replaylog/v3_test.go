package replaylog

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func encodeV3Bytes(t *testing.T, l *Log, opts V3Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeV3With(&buf, l, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// genLog builds a deterministic multi-group log: `cores` streams of
// `n` intervals with a mix of every encodable entry type.
func genLog(cores, n int) *Log {
	rng := rand.New(rand.NewSource(7))
	l := &Log{Cores: cores, Variant: "opt", Inputs: make([][]uint64, cores)}
	for c := 0; c < cores; c++ {
		l.Inputs[c] = []uint64{uint64(c), uint64(c) * 3}
		s := CoreLog{Core: c}
		ts := uint64(0)
		for i := 0; i < n; i++ {
			ts += uint64(rng.Intn(500) + 1)
			iv := Interval{Seq: uint64(i), CISN: uint16(i), Timestamp: ts}
			iv.Entries = append(iv.Entries, Entry{Type: InorderBlock, Size: uint32(rng.Intn(200) + 1)})
			switch i % 4 {
			case 0:
				iv.Entries = append(iv.Entries, Entry{Type: ReorderedLoad, Value: rng.Uint64()})
			case 1:
				iv.Entries = append(iv.Entries, Entry{Type: ReorderedStore, Addr: 0x10000 + uint64(rng.Intn(1<<12))*8, Value: rng.Uint64(), Offset: uint16(rng.Intn(i + 1))})
			case 2:
				iv.Entries = append(iv.Entries, Entry{
					Type: ReorderedAtomic, Addr: 0x10000 + uint64(rng.Intn(1<<12))*8, Value: rng.Uint64(),
					StoreValue: rng.Uint64(), DidWrite: rng.Intn(2) == 0, Offset: uint16(rng.Intn(i + 1)),
				})
			}
			if i%7 == 0 && c > 0 {
				iv.Preds = append(iv.Preds, Pred{Core: c - 1, Seq: uint64(i)})
			}
			s.Intervals = append(s.Intervals, iv)
		}
		l.Streams = append(l.Streams, s)
	}
	return l
}

func TestEncodeV3RoundTrip(t *testing.T) {
	l := sampleLog()
	data := encodeV3Bytes(t, l, V3Options{})
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", l, got)
	}
	// v3 encoding is deterministic: same log, same bytes.
	if !bytes.Equal(data, encodeV3Bytes(t, l, V3Options{})) {
		t.Fatal("EncodeV3 is not deterministic")
	}
	_, rep, err := DecodeRobust(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 3 || !rep.Clean() {
		t.Fatalf("clean v3 decode reported %+v", rep)
	}
}

func TestEncodeV3OptionsRoundTrip(t *testing.T) {
	big := genLog(3, 100)
	for _, opts := range []V3Options{
		{},
		{GroupSize: 1},
		{GroupSize: 7},
		{GroupSize: 1 << 20}, // clamped
		{NoCompress: true},
		{GroupSize: 3, NoCompress: true},
	} {
		data := encodeV3Bytes(t, big, opts)
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if !reflect.DeepEqual(big, got) {
			t.Fatalf("opts %+v: round trip mismatch", opts)
		}
	}
}

// Property: v3 round-trips random structurally-valid logs.
func TestEncodeV3Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLog(rng)
		var buf bytes.Buffer
		if err := EncodeV3(&buf, l); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(l, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeV3RejectsUnordered(t *testing.T) {
	l := sampleLog()
	l.Streams[0].Intervals[1].Seq = 0 // duplicate of interval 0
	var buf bytes.Buffer
	if err := EncodeV3(&buf, l); err == nil {
		t.Fatal("non-increasing Seq accepted")
	}
	l = sampleLog()
	l.Streams[0].Intervals[1].Timestamp = 1 // below interval 0's 100
	if err := EncodeV3(&buf, l); err == nil {
		t.Fatal("decreasing Timestamp accepted")
	}
}

func TestV3Compresses(t *testing.T) {
	l := genLog(4, 200)
	v2 := encodeBytes(t, l)
	v3 := encodeV3Bytes(t, l, V3Options{})
	if len(v3) >= len(v2) {
		t.Fatalf("v3 (%d B) not smaller than v2 (%d B)", len(v3), len(v2))
	}
	t.Logf("v2 %d B, v3 %d B, ratio %.3f", len(v2), len(v3), float64(len(v3))/float64(len(v2)))
}

// corrupted frame + destroyed index footer: the robust decoder loses
// exactly the damaged group and nothing else.
func TestV3SalvageCorruptGroupAndLostIndex(t *testing.T) {
	l := genLog(3, 64)
	data := encodeV3Bytes(t, l, V3Options{GroupSize: 8})
	frames := scanFrames(t, data)
	var groups []frameSpan
	var index, end frameSpan
	for _, f := range frames {
		switch f.typ {
		case FrameIvGroup:
			groups = append(groups, f)
		case FrameIndex:
			index = f
		case FrameEnd:
			end = f
		}
	}
	if wantGroups := 3 * 8; len(groups) != wantGroups {
		t.Fatalf("got %d group frames, want %d", len(groups), wantGroups)
	}

	// Flip one payload byte in the 4th group frame (core 0, seqs
	// 24..31) and shred the index footer and end frame.
	bad := append([]byte(nil), data...)
	bad[groups[3].end-5] ^= 0xFF
	for i := index.start; i < end.end; i++ {
		bad[i] = 0xAA
	}

	got, rep, err := DecodeRobust(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 1 || len(rep.Frames) != 1 {
		t.Fatalf("Dropped = %d, Frames = %v", rep.Dropped, rep.Frames)
	}
	if fe := rep.Frames[0]; fe.Type != FrameIvGroup || fe.Core != 0 {
		t.Fatalf("dropped frame misattributed: %+v", fe)
	}
	if !rep.Truncated {
		t.Error("destroyed end frame not reported as truncation")
	}
	if rep.MissingIntervals != 8 {
		t.Errorf("MissingIntervals = %d, want 8", rep.MissingIntervals)
	}
	// Core 0 lost exactly seqs 24..31; cores 1 and 2 are whole.
	want := map[uint64]bool{}
	for _, iv := range l.Streams[0].Intervals {
		if iv.Seq < 24 || iv.Seq > 31 {
			want[iv.Seq] = true
		}
	}
	gotSeqs := map[uint64]bool{}
	for _, iv := range got.Streams[0].Intervals {
		gotSeqs[iv.Seq] = true
	}
	if !reflect.DeepEqual(want, gotSeqs) {
		t.Errorf("core 0 recovered seqs %v, want %v", gotSeqs, want)
	}
	for c := 1; c < 3; c++ {
		if !reflect.DeepEqual(l.Streams[c], got.Streams[c]) {
			t.Errorf("core %d stream not fully recovered", c)
		}
	}
}

// DecodeParallel must be DecodeRobust, bit for bit, on clean and
// damaged streams alike — log and report both.
func TestDecodeParallelMatchesRobust(t *testing.T) {
	l := genLog(4, 64)
	clean := encodeV3Bytes(t, l, V3Options{GroupSize: 8})

	corrupt := append([]byte(nil), clean...)
	frames := scanFrames(t, clean)
	n := 0
	for _, f := range frames {
		if f.typ == FrameIvGroup {
			n++
			if n%5 == 0 {
				corrupt[f.start+10] ^= 0x55
			}
		}
	}
	truncated := clean[:len(clean)*2/3]

	for name, data := range map[string][]byte{"clean": clean, "corrupt": corrupt, "truncated": truncated} {
		gotR, repR, errR := DecodeRobust(bytes.NewReader(data))
		gotP, repP, errP := DecodeParallel(bytes.NewReader(data))
		if (errR == nil) != (errP == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", name, errR, errP)
		}
		if !reflect.DeepEqual(gotR, gotP) {
			t.Errorf("%s: logs differ between robust and parallel decode", name)
		}
		if !reflect.DeepEqual(repR, repP) {
			t.Errorf("%s: reports differ:\nrobust:   %+v\nparallel: %+v", name, repR, repP)
		}
	}
}

func TestOpenIndexedSeeks(t *testing.T) {
	l := genLog(3, 50)
	data := encodeV3Bytes(t, l, V3Options{GroupSize: 8})
	ix, err := OpenIndexed(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Indexed() {
		t.Fatalf("index not live: %s", ix.Reason())
	}
	if want := 3 * 7; ix.Spans() != want { // ceil(50/8) = 7 groups per core
		t.Fatalf("Spans = %d, want %d", ix.Spans(), want)
	}
	for _, s := range l.Streams {
		for i := range s.Intervals {
			want := &s.Intervals[i]
			got, err := ix.DecodeInterval(s.Core, want.Seq)
			if err != nil {
				t.Fatalf("core %d seq %d: %v", s.Core, want.Seq, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("core %d seq %d: mismatch\nwant %+v\n got %+v", s.Core, want.Seq, want, got)
			}
		}
	}
	if _, err := ix.DecodeInterval(0, 999); err == nil {
		t.Error("absent seq found")
	}
	if _, err := ix.DecodeInterval(17, 0); err == nil {
		t.Error("absent core found")
	}
}

func TestOpenIndexedFallsBack(t *testing.T) {
	l := genLog(2, 40)
	data := encodeV3Bytes(t, l, V3Options{GroupSize: 8})
	frames := scanFrames(t, data)

	check := func(t *testing.T, ix *IndexedLog) {
		t.Helper()
		for _, s := range l.Streams {
			for i := range s.Intervals {
				want := &s.Intervals[i]
				got, err := ix.DecodeInterval(s.Core, want.Seq)
				if err != nil {
					t.Fatalf("core %d seq %d: %v", s.Core, want.Seq, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("core %d seq %d mismatch", s.Core, want.Seq)
				}
			}
		}
	}

	t.Run("v2-file", func(t *testing.T) {
		v2 := encodeBytes(t, l)
		ix, err := OpenIndexed(bytes.NewReader(v2), int64(len(v2)))
		if err != nil {
			t.Fatal(err)
		}
		if ix.Indexed() {
			t.Fatal("v2 file claims an index")
		}
		check(t, ix)
	})

	t.Run("destroyed-end-frame", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		for _, f := range frames {
			if f.typ == FrameEnd {
				bad[f.start] = 0x00 // break the sync word
			}
		}
		ix, err := OpenIndexed(bytes.NewReader(bad), int64(len(bad)))
		if err != nil {
			t.Fatal(err)
		}
		if ix.Indexed() {
			t.Fatal("damaged end frame but index still live")
		}
		check(t, ix)
	})

	t.Run("corrupt-index-frame", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		for _, f := range frames {
			if f.typ == FrameIndex {
				bad[f.start+12] ^= 0xFF
			}
		}
		ix, err := OpenIndexed(bytes.NewReader(bad), int64(len(bad)))
		if err != nil {
			t.Fatal(err)
		}
		if ix.Indexed() {
			t.Fatal("corrupt index frame but index still live")
		}
		check(t, ix)
	})

	t.Run("corrupt-group-degrades-lookup", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		var first frameSpan
		for _, f := range frames {
			if f.typ == FrameIvGroup {
				first = f
				break
			}
		}
		bad[first.end-5] ^= 0xFF
		ix, err := OpenIndexed(bytes.NewReader(bad), int64(len(bad)))
		if err != nil {
			t.Fatal(err)
		}
		if !ix.Indexed() {
			t.Fatalf("index should still be live: %s", ix.Reason())
		}
		// Seqs 0..7 of core 0 live in the shredded group: the seek hits
		// damage, degrades to the linear fallback, and the fallback
		// (like DecodeRobust) has lost them too.
		if _, err := ix.DecodeInterval(0, 0); err == nil {
			t.Error("interval in corrupt group served anyway")
		}
		// Everything outside the damaged group still seeks fine.
		got, err := ix.DecodeInterval(0, 12)
		if err != nil || got.Seq != 12 {
			t.Fatalf("seek outside damage: %+v, %v", got, err)
		}
	})
}

// v1 and v2 logs must keep decoding through the same entry points the
// v3 work touched.
func TestOldVersionsStillDecode(t *testing.T) {
	l := sampleLog()

	var v1 bytes.Buffer
	if err := EncodeV1(&v1, l); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, got) {
		t.Fatal("v1 round trip broken")
	}

	v2 := encodeBytes(t, l)
	for name, dec := range map[string]func(*bytes.Reader) (*Log, *CorruptionReport, error){
		"robust":   func(r *bytes.Reader) (*Log, *CorruptionReport, error) { return DecodeRobust(r) },
		"parallel": func(r *bytes.Reader) (*Log, *CorruptionReport, error) { return DecodeParallel(r) },
	} {
		got, rep, err := dec(bytes.NewReader(v2))
		if err != nil || !rep.Clean() || rep.Version != 2 {
			t.Fatalf("%s: v2 decode err=%v rep=%+v", name, err, rep)
		}
		if !reflect.DeepEqual(l, got) {
			t.Fatalf("%s: v2 round trip broken", name)
		}
	}
}
