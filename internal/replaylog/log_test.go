package replaylog

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleLog() *Log {
	return &Log{
		Cores:   2,
		Variant: "opt",
		Inputs:  [][]uint64{{1, 2, 3}, nil},
		Streams: []CoreLog{
			{Core: 0, Intervals: []Interval{
				{Seq: 0, CISN: 0, Timestamp: 100, Entries: []Entry{
					{Type: InorderBlock, Size: 10},
				}},
				{Seq: 1, CISN: 1, Timestamp: 200, Entries: []Entry{
					{Type: InorderBlock, Size: 3},
					{Type: ReorderedLoad, Value: 42},
					{Type: InorderBlock, Size: 2},
					{Type: ReorderedStore, Addr: 0x100, Value: 7, Offset: 1},
					{Type: InorderBlock, Size: 4},
				}},
			}},
			{Core: 1, Intervals: []Interval{
				{Seq: 0, CISN: 0, Timestamp: 150, Entries: []Entry{
					{Type: InorderBlock, Size: 20},
					{Type: ReorderedAtomic, Addr: 0x200, Value: 5, StoreValue: 6, DidWrite: true, Offset: 0},
				}},
			}},
		},
	}
}

func TestValidate(t *testing.T) {
	l := sampleLog()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadLogs(t *testing.T) {
	bad := sampleLog()
	bad.Streams[0].Intervals[1].Timestamp = 50 // non-monotone
	if bad.Validate() == nil {
		t.Error("non-monotone timestamps accepted")
	}

	bad = sampleLog()
	bad.Streams[0].Intervals[1].Entries[0].Size = 0
	if bad.Validate() == nil {
		t.Error("empty InorderBlock accepted")
	}

	bad = sampleLog()
	bad.Streams[0].Intervals[0].Entries = []Entry{{Type: Dummy}}
	if bad.Validate() == nil {
		t.Error("Dummy in unpatched log accepted")
	}

	bad = sampleLog()
	bad.Streams[0].Intervals[1].Entries[3].Offset = 5 // reaches before log start
	if bad.Validate() == nil {
		t.Error("out-of-range offset accepted")
	}
}

func TestPatchMovesStores(t *testing.T) {
	l := sampleLog()
	p, err := l.Patch()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The reordered store from interval 1 must now be a PatchedStore
	// at the end of interval 0, with a Dummy left behind.
	iv0 := p.Streams[0].Intervals[0]
	last := iv0.Entries[len(iv0.Entries)-1]
	if last.Type != PatchedStore || last.Addr != 0x100 || last.Value != 7 {
		t.Fatalf("interval 0 tail = %+v", last)
	}
	if p.Streams[0].Intervals[1].Entries[3].Type != Dummy {
		t.Fatalf("counting position not dummied: %+v", p.Streams[0].Intervals[1].Entries[3])
	}
	// The atomic (offset 0) patches into its own interval: a
	// ReorderedLoad at the counting slot plus a PatchedStore at the end.
	iv := p.Streams[1].Intervals[0]
	if iv.Entries[1].Type != ReorderedLoad || iv.Entries[1].Value != 5 {
		t.Fatalf("atomic counting slot = %+v", iv.Entries[1])
	}
	tail := iv.Entries[len(iv.Entries)-1]
	if tail.Type != PatchedStore || tail.Value != 6 || tail.Addr != 0x200 {
		t.Fatalf("atomic store slot = %+v", tail)
	}
	// Original must be untouched.
	if l.Patched || l.Streams[0].Intervals[1].Entries[3].Type != ReorderedStore {
		t.Fatal("Patch mutated its input")
	}
	// Double patch is an error.
	if _, err := p.Patch(); err == nil {
		t.Fatal("double patch accepted")
	}
}

func TestPatchFailedCAS(t *testing.T) {
	l := &Log{
		Cores: 1,
		Streams: []CoreLog{{Core: 0, Intervals: []Interval{
			{Seq: 0, Timestamp: 1, Entries: []Entry{
				{Type: ReorderedAtomic, Addr: 8, Value: 9, DidWrite: false, Offset: 0},
			}},
		}}},
	}
	p, err := l.Patch()
	if err != nil {
		t.Fatal(err)
	}
	es := p.Streams[0].Intervals[0].Entries
	if len(es) != 1 || es[0].Type != ReorderedLoad || es[0].Value != 9 {
		t.Fatalf("failed CAS should become a pure value injection: %+v", es)
	}
}

func TestInstructionsCount(t *testing.T) {
	l := sampleLog()
	// Core 0: 10 + (3+1+2+1+4) = 21; core 1: 20 + 1 = 21.
	if got := l.Instructions(); got != 42 {
		t.Fatalf("Instructions = %d", got)
	}
	p, _ := l.Patch()
	// Patching preserves replayed instruction counts (PatchedStore
	// replays no instruction; Dummy replays the skipped one).
	if got := p.Instructions(); got != 42 {
		t.Fatalf("patched Instructions = %d", got)
	}
}

func TestBitsAccounting(t *testing.T) {
	checks := map[EntryType]int{
		InorderBlock:    3 + 32,
		ReorderedLoad:   3 + 64,
		ReorderedStore:  3 + 64 + 64 + 16,
		PatchedStore:    3 + 64 + 64 + 16,
		ReorderedAtomic: 3 + 64 + 128 + 16 + 1,
		Dummy:           3,
	}
	for ty, want := range checks {
		if got := (Entry{Type: ty}).Bits(); got != want {
			t.Errorf("%v bits = %d, want %d", ty, got, want)
		}
	}
	l := &Log{Streams: []CoreLog{{Intervals: []Interval{{Entries: []Entry{{Type: InorderBlock, Size: 5}}}}}}}
	if got := l.SizeBits(); got != (3+32)+(3+16+64) {
		t.Fatalf("SizeBits = %d", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := Encode(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", l, got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Decode(bytes.NewReader([]byte("RRLG\x09\x00"))); err == nil {
		t.Fatal("bad version accepted")
	}
}

// Property: encode/decode round-trips random structurally-valid logs.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLog(rng)
		var buf bytes.Buffer
		if err := Encode(&buf, l); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(l, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func randomLog(rng *rand.Rand) *Log {
	cores := rng.Intn(4) + 1
	l := &Log{Cores: cores, Variant: "base", Inputs: make([][]uint64, cores)}
	for c := 0; c < cores; c++ {
		for i := rng.Intn(4); i > 0; i-- {
			l.Inputs[c] = append(l.Inputs[c], rng.Uint64())
		}
		s := CoreLog{Core: c}
		ts := uint64(0)
		for i := 0; i < rng.Intn(5); i++ {
			ts += uint64(rng.Intn(1000))
			iv := Interval{Seq: uint64(i), CISN: uint16(i), Timestamp: ts}
			for j := 0; j < rng.Intn(6); j++ {
				switch rng.Intn(4) {
				case 0:
					iv.Entries = append(iv.Entries, Entry{Type: InorderBlock, Size: uint32(rng.Intn(1000) + 1)})
				case 1:
					iv.Entries = append(iv.Entries, Entry{Type: ReorderedLoad, Value: rng.Uint64()})
				case 2:
					iv.Entries = append(iv.Entries, Entry{Type: ReorderedStore, Addr: rng.Uint64() &^ 7, Value: rng.Uint64(), Offset: uint16(rng.Intn(i + 1))})
				case 3:
					iv.Entries = append(iv.Entries, Entry{
						Type: ReorderedAtomic, Addr: rng.Uint64() &^ 7, Value: rng.Uint64(),
						StoreValue: rng.Uint64(), DidWrite: rng.Intn(2) == 0, Offset: uint16(rng.Intn(i + 1)),
					})
				}
			}
			s.Intervals = append(s.Intervals, iv)
		}
		l.Streams = append(l.Streams, s)
	}
	return l
}

// Property: patching never changes the replayed instruction count and
// always yields a valid log.
func TestPatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLog(rng)
		if l.Validate() != nil {
			return true // generator made something invalid; skip
		}
		p, err := l.Patch()
		if err != nil {
			return false
		}
		return p.Validate() == nil && p.Instructions() == l.Instructions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
