package replaylog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"

	"relaxreplay/internal/faultinject"
)

func encodeBytes(t *testing.T, l *Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, l); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// frameSpan locates each frame in an encoded v2 stream: [start, end)
// byte offsets plus the claimed type.
type frameSpan struct {
	typ        FrameType
	start, end int
}

func scanFrames(t *testing.T, data []byte) []frameSpan {
	t.Helper()
	var out []frameSpan
	pos := 6
	for pos+13 <= len(data) {
		if !bytes.Equal(data[pos:pos+4], frameSync[:]) {
			t.Fatalf("lost framing at offset %d", pos)
		}
		length := int(binary.LittleEndian.Uint32(data[pos+5 : pos+9]))
		end := pos + 9 + length + 4
		out = append(out, frameSpan{typ: FrameType(data[pos+4]), start: pos, end: end})
		pos = end
	}
	return out
}

func TestV2FrameLayout(t *testing.T) {
	data := encodeBytes(t, sampleLog())
	frames := scanFrames(t, data)
	var types []FrameType
	for _, f := range frames {
		types = append(types, f.typ)
	}
	want := []FrameType{FrameHeader, FrameInputs, FrameInputs,
		FrameStream, FrameInterval, FrameInterval, FrameStream, FrameInterval, FrameEnd}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("frame sequence = %v, want %v", types, want)
	}
	if frames[len(frames)-1].end != len(data) {
		t.Fatalf("trailing bytes after end frame")
	}
}

// Corrupting any single byte of any frame must decode with a non-clean
// report that names the damaged frame (or, for header-region damage,
// accounts for the bytes as skipped) — and must never lose more than
// that one frame.
func TestCorruptEachFrameEachRegion(t *testing.T) {
	orig := sampleLog()
	clean := encodeBytes(t, orig)
	frames := scanFrames(t, clean)
	total := 0
	for _, s := range orig.Streams {
		total += len(s.Intervals)
	}

	regions := []struct {
		name   string
		offset func(f frameSpan) int // byte to flip
	}{
		{"frame-header", func(f frameSpan) int { return f.start + 4 }}, // type byte
		{"length", func(f frameSpan) int { return f.start + 5 }},
		{"body", func(f frameSpan) int { return f.start + 9 }},
		{"crc", func(f frameSpan) int { return f.end - 2 }},
	}
	for _, f := range frames {
		for _, reg := range regions {
			name := fmt.Sprintf("%s/%s", f.typ, reg.name)
			t.Run(name, func(t *testing.T) {
				data := append([]byte(nil), clean...)
				off := reg.offset(f)
				if off >= f.end { // zero-length payloads have no body byte
					t.Skip("frame too short for region")
				}
				data[off] ^= 0x40
				l, rep, err := DecodeRobust(bytes.NewReader(data))
				if err != nil {
					t.Fatalf("DecodeRobust hard-failed: %v", err)
				}
				if rep.Clean() {
					t.Fatalf("corruption at %s went undetected", name)
				}
				if errors.Is(rep.Err(), ErrCorruptFrame) == false && errors.Is(rep.Err(), ErrTruncated) == false {
					t.Fatalf("Err() = %v, not a typed corruption error", rep.Err())
				}
				// At most one frame's content may be lost.
				got := 0
				for _, s := range l.Streams {
					got += len(s.Intervals)
				}
				minIntervals := total
				if f.typ == FrameInterval {
					minIntervals = total - 1
				}
				if got < minIntervals {
					t.Fatalf("lost %d intervals to a single corrupt %s frame", total-got, f.typ)
				}
				// Body/CRC corruption keeps the frame header readable, so
				// the report must name the frame.
				if reg.name == "body" || reg.name == "crc" {
					if len(rep.Frames) != 1 {
						t.Fatalf("report names %d frames, want 1: %+v", len(rep.Frames), rep.Frames)
					}
					fe := rep.Frames[0]
					if fe.Type != f.typ {
						t.Fatalf("report names a %s frame, corrupted a %s frame", fe.Type, f.typ)
					}
					if f.typ == FrameInterval || f.typ == FrameStream || f.typ == FrameInputs {
						if fe.Core < 0 && reg.name == "crc" {
							t.Errorf("report did not recover the owning core: %+v", fe)
						}
					}
				}
				// Strict Decode must reject the same bytes.
				if _, err := Decode(bytes.NewReader(data)); err == nil {
					t.Fatal("strict Decode accepted corrupt bytes")
				}
			})
		}
	}
}

// An interval frame named in the report must carry the right core and
// sequence number.
func TestCorruptionReportNamesInterval(t *testing.T) {
	clean := encodeBytes(t, sampleLog())
	frames := scanFrames(t, clean)
	// Second interval of core 0 (Seq 1): frame index 5 per TestV2FrameLayout.
	f := frames[5]
	data := append([]byte(nil), clean...)
	data[f.end-1] ^= 0xFF // CRC byte
	_, rep, err := DecodeRobust(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Frames) != 1 {
		t.Fatalf("%d frame errors, want 1", len(rep.Frames))
	}
	fe := rep.Frames[0]
	if fe.Type != FrameInterval || fe.Core != 0 || fe.Seq != 1 {
		t.Fatalf("report = %+v, want interval frame core 0 seq 1", fe)
	}
	if rep.MissingIntervals != 1 {
		t.Fatalf("MissingIntervals = %d, want 1 (stream frame declared 2)", rep.MissingIntervals)
	}
}

func TestTruncatedTail(t *testing.T) {
	clean := encodeBytes(t, sampleLog())
	for _, cut := range []int{1, 5, 13, len(clean) / 2} {
		data := clean[:len(clean)-cut]
		l, rep, err := DecodeRobust(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !rep.Truncated {
			t.Fatalf("cut %d: truncation undetected", cut)
		}
		if !errors.Is(rep.Err(), ErrTruncated) && !errors.Is(rep.Err(), ErrCorruptFrame) {
			t.Fatalf("cut %d: Err() = %v", cut, rep.Err())
		}
		if l.Cores != 2 || l.Variant != "opt" {
			t.Fatalf("cut %d: header fields lost: %+v", cut, l)
		}
	}
}

func TestHeaderLostIsInferred(t *testing.T) {
	clean := encodeBytes(t, sampleLog())
	frames := scanFrames(t, clean)
	data := append([]byte(nil), clean...)
	data[frames[0].start+10] ^= 1 // header frame body
	l, rep, err := DecodeRobust(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HeaderLost {
		t.Fatal("HeaderLost not set")
	}
	if l.Cores != 2 {
		t.Fatalf("inferred Cores = %d, want 2", l.Cores)
	}
}

func TestDuplicatedFrameIsDropped(t *testing.T) {
	orig := sampleLog()
	inj := faultinject.New(21, faultinject.LogDupFrame)
	var buf bytes.Buffer
	if err := EncodeWith(&buf, orig, inj); err != nil {
		t.Fatal(err)
	}
	if inj.Counts()[faultinject.LogDupFrame] != 1 {
		t.Fatalf("dupframe fired %d times", inj.Counts()[faultinject.LogDupFrame])
	}
	l, rep, err := DecodeRobust(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DupFrames != 1 {
		t.Fatalf("DupFrames = %d, want 1", rep.DupFrames)
	}
	if rep.Dropped != 0 || rep.Truncated {
		t.Fatalf("dup frame misclassified: %+v", rep)
	}
	if !reflect.DeepEqual(l, orig) {
		t.Fatal("log with duplicated frame did not decode back to the original")
	}
}

// EncodeWith(nil) must be byte-identical to Encode, and an injector
// with no armed points must not change the bytes either.
func TestEncodeWithDisabledInjectorIsByteIdentical(t *testing.T) {
	orig := sampleLog()
	plain := encodeBytes(t, orig)
	var with bytes.Buffer
	if err := EncodeWith(&with, orig, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, with.Bytes()) {
		t.Fatal("EncodeWith(nil) differs from Encode")
	}
	with.Reset()
	inj := faultinject.New(3, faultinject.ICDrop) // no log points armed
	if err := EncodeWith(&with, orig, inj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, with.Bytes()) {
		t.Fatal("EncodeWith(injector without log points) differs from Encode")
	}
}

// Hostile headers: huge claimed counts must error out without huge
// allocations (run under -test.timeout this would OOM/hang before the
// clamps existed).
func TestHostileHeaders(t *testing.T) {
	u16 := func(v uint16) []byte { b := make([]byte, 2); binary.LittleEndian.PutUint16(b, v); return b }
	u32 := func(v uint32) []byte { b := make([]byte, 4); binary.LittleEndian.PutUint32(b, v); return b }
	u64 := func(v uint64) []byte { b := make([]byte, 8); binary.LittleEndian.PutUint64(b, v); return b }
	cat := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }
	v1 := func(parts ...[]byte) []byte {
		return cat(append([][]byte{[]byte("RRLG"), u16(1)}, parts...)...)
	}
	cases := map[string][]byte{
		// v1: variant length 0xFFFF with no bytes behind it.
		"v1-vlen": v1(u32(2), []byte{0}, u16(0xFFFF)),
		// v1: 4 billion input streams.
		"v1-inputs": v1(u32(2), []byte{0}, u16(0), u32(0xFFFFFFFF)),
		// v1: one input stream claiming 4 billion values.
		"v1-input-count": v1(u32(2), []byte{0}, u16(0), u32(1), u32(0xFFFFFFFF)),
		// v1: 4 billion streams.
		"v1-streams": v1(u32(2), []byte{0}, u16(0), u32(0), u32(0xFFFFFFFF)),
		// v1: stream with 4 billion intervals.
		"v1-intervals": v1(u32(2), []byte{0}, u16(0), u32(0), u32(1), u32(0), u32(0xFFFFFFFF)),
		// v1: interval with 4 billion entries.
		"v1-entries": v1(u32(2), []byte{0}, u16(0), u32(0), u32(1), u32(0), u32(1),
			u64(0), u64(0), u32(0xFFFFFFFF), u32(0)),
		// v1: interval with 4 billion preds.
		"v1-preds": v1(u32(2), []byte{0}, u16(0), u32(0), u32(1), u32(0), u32(1),
			u64(0), u64(0), u32(0), u32(0xFFFFFFFF)),
	}
	// v2: a header frame claiming 2^32-1 cores, with a *valid* CRC so
	// only the clamp can reject it.
	hostile := cat(u32(0xFFFFFFFF), []byte{1}, u32(0xFFFFFFFF), u16(0xFFFF))
	body := cat([]byte{byte(FrameHeader)}, u32(uint32(len(hostile))), hostile)
	crc := crc32.Checksum(body, castagnoli)
	cases["v2-header"] = cat([]byte("RRLG"), u16(2), frameSync[:], body, u32(crc))

	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Decode(bytes.NewReader(data)); err == nil {
				t.Fatal("strict Decode accepted a hostile header")
			}
			// DecodeRobust must also survive (and not allocate wildly —
			// enforced by this completing instantly under -timeout).
			_, rep, err := DecodeRobust(bytes.NewReader(data))
			if err == nil && rep.Clean() {
				t.Fatal("robust decode called hostile bytes clean")
			}
		})
	}
}

// v1 files still decode, and a v1-decoded log re-encodes in v2
// byte-identically to encoding the original (the satellite round-trip
// requirement).
func TestV1DecodeAndReencode(t *testing.T) {
	orig := sampleLog()
	var v1buf bytes.Buffer
	if err := EncodeV1(&v1buf, orig); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(v1buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, orig) {
		t.Fatal("v1 round-trip mismatch")
	}
	if !bytes.Equal(encodeBytes(t, dec), encodeBytes(t, orig)) {
		t.Fatal("v2 re-encode of a v1-decoded log is not byte-identical")
	}
}

func TestV1TruncatedKeepsPrefix(t *testing.T) {
	orig := sampleLog()
	var buf bytes.Buffer
	if err := EncodeV1(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-10]
	l, rep, err := DecodeRobust(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.Version != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if l.Cores != 2 || len(l.Streams) == 0 {
		t.Fatalf("v1 partial decode kept nothing: %+v", l)
	}
	if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("strict v1 decode of truncated log: %v", err)
	}
}

func TestPatchPartial(t *testing.T) {
	l := &Log{
		Cores: 1,
		Streams: []CoreLog{{Core: 0, Intervals: []Interval{
			// Interval 0 (Seq 0) was lost to corruption; Seq 1's store
			// performed there (offset 1) and can no longer be patched.
			{Seq: 1, CISN: 1, Timestamp: 100, Entries: []Entry{
				{Type: InorderBlock, Size: 1},
				{Type: ReorderedStore, Addr: 0x10, Value: 9, Offset: 1},
			}},
			{Seq: 2, CISN: 2, Timestamp: 200, Entries: []Entry{
				{Type: InorderBlock, Size: 1},
				{Type: ReorderedStore, Addr: 0x20, Value: 8, Offset: 1},
			}},
		}}},
	}
	if _, err := l.Patch(); err == nil {
		t.Fatal("index-based Patch should fail on a gapped log")
	}
	p, dropped, err := l.PatchPartial()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (Seq 1's target is gone)", dropped)
	}
	iv0 := p.Streams[0].Intervals[0]
	last := iv0.Entries[len(iv0.Entries)-1]
	if last.Type != PatchedStore || last.Addr != 0x20 {
		t.Fatalf("Seq 2's store not patched into Seq 1: %+v", iv0.Entries)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// PatchPartial on an intact log must agree exactly with Patch.
func TestPatchPartialMatchesPatchOnCleanLog(t *testing.T) {
	orig := sampleLog()
	a, err := orig.Patch()
	if err != nil {
		t.Fatal(err)
	}
	b, dropped, err := orig.PatchPartial()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d on a clean log", dropped)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PatchPartial diverges from Patch on a clean log")
	}
}
