package replaylog

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to both decoders. Invariants:
// DecodeRobust never panics, never hard-fails on well-prefixed input,
// and anything it calls clean must re-encode and decode to the same
// log; strict Decode must agree with the report's verdict.
func FuzzDecode(f *testing.F) {
	seed := func(l *Log) {
		var v2, v1 bytes.Buffer
		if err := Encode(&v2, l); err != nil {
			f.Fatal(err)
		}
		if err := EncodeV1(&v1, l); err != nil {
			f.Fatal(err)
		}
		f.Add(v2.Bytes())
		f.Add(v1.Bytes())
	}
	seed(sampleLog())
	seed(&Log{Cores: 1, Variant: "base", Streams: []CoreLog{{Core: 0}}})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		seed(randomLog(rng))
	}
	f.Add([]byte("RRLG"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, rep, err := DecodeRobust(bytes.NewReader(data))
		if err != nil {
			if l != nil || rep != nil {
				t.Fatal("hard failure returned a partial result")
			}
			return
		}
		if l == nil || rep == nil {
			t.Fatal("soft path returned nil log or report")
		}
		strict, serr := Decode(bytes.NewReader(data))
		if rep.Clean() != (serr == nil) {
			t.Fatalf("strict Decode err=%v but report clean=%v", serr, rep.Clean())
		}
		if rep.Clean() {
			if !reflect.DeepEqual(strict, l) {
				t.Fatal("strict and robust decode disagree on clean input")
			}
			// v1 is laxer than v2 (duplicate stream cores, non-monotone
			// seqs decode clean), so only v2 input round-trips losslessly.
			if rep.Version != 2 {
				return
			}
			var re bytes.Buffer
			if err := Encode(&re, l); err != nil {
				t.Fatalf("clean decode does not re-encode: %v", err)
			}
			l2, rep2, err := DecodeRobust(bytes.NewReader(re.Bytes()))
			if err != nil || !rep2.Clean() {
				t.Fatalf("re-encoded clean log is not clean: %v %+v", err, rep2)
			}
			if !reflect.DeepEqual(l, l2) {
				t.Fatal("re-encode round trip changed the log")
			}
		}
	})
}
