package replaylog

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to both decoders. Invariants:
// DecodeRobust never panics, never hard-fails on well-prefixed input,
// and anything it calls clean must re-encode and decode to the same
// log; strict Decode must agree with the report's verdict.
func FuzzDecode(f *testing.F) {
	seed := func(l *Log) {
		var v2, v1 bytes.Buffer
		if err := Encode(&v2, l); err != nil {
			f.Fatal(err)
		}
		if err := EncodeV1(&v1, l); err != nil {
			f.Fatal(err)
		}
		f.Add(v2.Bytes())
		f.Add(v1.Bytes())
	}
	seed(sampleLog())
	seed(&Log{Cores: 1, Variant: "base", Streams: []CoreLog{{Core: 0}}})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		seed(randomLog(rng))
	}
	// v3 input is safe here too: the re-encode branch below only fires
	// on Version 2, and the shared invariants must hold on every format.
	var v3 bytes.Buffer
	if err := EncodeV3(&v3, sampleLog()); err != nil {
		f.Fatal(err)
	}
	f.Add(v3.Bytes())
	f.Add([]byte("RRLG"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, rep, err := DecodeRobust(bytes.NewReader(data))
		if err != nil {
			if l != nil || rep != nil {
				t.Fatal("hard failure returned a partial result")
			}
			return
		}
		if l == nil || rep == nil {
			t.Fatal("soft path returned nil log or report")
		}
		strict, serr := Decode(bytes.NewReader(data))
		if rep.Clean() != (serr == nil) {
			t.Fatalf("strict Decode err=%v but report clean=%v", serr, rep.Clean())
		}
		if rep.Clean() {
			if !reflect.DeepEqual(strict, l) {
				t.Fatal("strict and robust decode disagree on clean input")
			}
			// v1 is laxer than v2 (duplicate stream cores, non-monotone
			// seqs decode clean), so only v2 input round-trips losslessly.
			if rep.Version != 2 {
				return
			}
			var re bytes.Buffer
			if err := Encode(&re, l); err != nil {
				t.Fatalf("clean decode does not re-encode: %v", err)
			}
			l2, rep2, err := DecodeRobust(bytes.NewReader(re.Bytes()))
			if err != nil || !rep2.Clean() {
				t.Fatalf("re-encoded clean log is not clean: %v %+v", err, rep2)
			}
			if !reflect.DeepEqual(l, l2) {
				t.Fatal("re-encode round trip changed the log")
			}
		}
	})
}

// FuzzDecodeV3 targets the v3 pipeline: group frames, deflate bodies,
// the segment index and the parallel per-core decoder. Invariants:
// DecodeRobust never panics; DecodeParallel returns the identical log
// AND report on every input; and a clean v3 decode re-encodes with
// EncodeV3 losslessly (clean v3 enforces the per-core seq/timestamp
// monotonicity EncodeV3 demands, so re-encoding must never fail).
func FuzzDecodeV3(f *testing.F) {
	seed := func(l *Log, opts V3Options) []byte {
		var buf bytes.Buffer
		if err := EncodeV3With(&buf, l, opts); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		return buf.Bytes()
	}
	clean := seed(sampleLog(), V3Options{})
	seed(sampleLog(), V3Options{NoCompress: true})
	seed(sampleLog(), V3Options{GroupSize: 1})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3; i++ {
		seed(randomLog(rng), V3Options{})
	}
	// Damaged variants: a flipped payload byte (CRC salvage path), a
	// truncated tail (lost index footer), and a bare preamble.
	flipped := append([]byte(nil), clean...)
	if len(flipped) > 40 {
		flipped[len(flipped)-40] ^= 0xFF
	}
	f.Add(flipped)
	f.Add(clean[:len(clean)*2/3])
	f.Add([]byte{'R', 'R', 'L', 'G', 3, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, rep, err := DecodeRobust(bytes.NewReader(data))
		pl, prep, perr := DecodeParallel(bytes.NewReader(data))
		if (err == nil) != (perr == nil) {
			t.Fatalf("robust err=%v but parallel err=%v", err, perr)
		}
		if err != nil {
			if l != nil || rep != nil {
				t.Fatal("hard failure returned a partial result")
			}
			return
		}
		if !reflect.DeepEqual(l, pl) || !reflect.DeepEqual(rep, prep) {
			t.Fatal("parallel decode disagrees with robust decode")
		}
		if rep.Clean() && rep.Version == 3 {
			var re bytes.Buffer
			if err := EncodeV3(&re, l); err != nil {
				t.Fatalf("clean v3 decode does not re-encode: %v", err)
			}
			l2, rep2, err := DecodeRobust(bytes.NewReader(re.Bytes()))
			if err != nil || !rep2.Clean() {
				t.Fatalf("re-encoded clean v3 log is not clean: %v %+v", err, rep2)
			}
			if !reflect.DeepEqual(l, l2) {
				t.Fatal("v3 re-encode round trip changed the log")
			}
		}
	})
}

// FuzzDecodeProvenance targets the FrameProvenance codec: the sideband
// payload parser, its version gate, and the frame-is-the-unit-of-loss
// salvage rule. Invariants: DecodeRobust never panics and DecodeParallel
// agrees exactly; every decoded record respects the wire limits the
// parser promises to enforce; and a clean v3 decode re-encodes with
// EncodeV3 losslessly, sideband included.
func FuzzDecodeProvenance(f *testing.F) {
	clean := func() []byte {
		var buf bytes.Buffer
		if err := EncodeV3(&buf, provSampleLog()); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(clean)
	// A sideband-free v3 log keeps the fuzzer honest about the absent case.
	var bare bytes.Buffer
	if err := EncodeV3(&bare, sampleLog()); err != nil {
		f.Fatal(err)
	}
	f.Add(bare.Bytes())
	// Damaged variants aimed at the provenance frame specifically: a
	// flipped payload byte (CRC drop), an unknown payload version with a
	// recomputed CRC (clean skip), and a truncated tail.
	if start, end := findFrame(clean, FrameProvenance); start >= 0 {
		flipped := append([]byte(nil), clean...)
		flipped[start+9+2] ^= 0xFF
		f.Add(flipped)
		future := append([]byte(nil), clean...)
		future[start+9] = provVersion + 7
		reframe(future, start, end)
		f.Add(future)
		f.Add(clean[:end-2])
	}
	f.Add([]byte{'R', 'R', 'L', 'G', 3, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, rep, err := DecodeRobust(bytes.NewReader(data))
		pl, prep, perr := DecodeParallel(bytes.NewReader(data))
		if (err == nil) != (perr == nil) {
			t.Fatalf("robust err=%v but parallel err=%v", err, perr)
		}
		if err != nil {
			if l != nil || rep != nil {
				t.Fatal("hard failure returned a partial result")
			}
			return
		}
		if !reflect.DeepEqual(l, pl) || !reflect.DeepEqual(rep, prep) {
			t.Fatal("parallel decode disagrees with robust decode")
		}
		for _, cp := range l.Provenance {
			if cp.Core < 0 || cp.Core >= MaxCores {
				t.Fatalf("decoded provenance core %d out of range", cp.Core)
			}
			if len(cp.Records) > MaxIntervalsPerCore {
				t.Fatalf("core %d decoded %d provenance records (limit %d)",
					cp.Core, len(cp.Records), MaxIntervalsPerCore)
			}
			for _, r := range cp.Records {
				if r.RemoteCore < -1 || int(r.RemoteCore) >= MaxCores {
					t.Fatalf("decoded remote core %d out of range", r.RemoteCore)
				}
				if len(r.Reorders) > MaxEntriesPerInterval {
					t.Fatalf("seq %d decoded %d reorders (limit %d)",
						r.Seq, len(r.Reorders), MaxEntriesPerInterval)
				}
			}
		}
		if rep.Clean() && rep.Version == 3 {
			var re bytes.Buffer
			if err := EncodeV3(&re, l); err != nil {
				t.Fatalf("clean v3 decode does not re-encode: %v", err)
			}
			l2, rep2, err := DecodeRobust(bytes.NewReader(re.Bytes()))
			if err != nil || !rep2.Clean() {
				t.Fatalf("re-encoded clean v3 log is not clean: %v %+v", err, rep2)
			}
			if !reflect.DeepEqual(l, l2) {
				t.Fatal("v3 re-encode round trip dropped or changed the sideband")
			}
		}
	})
}
