package replaylog

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"relaxreplay/internal/provenance"
)

// provSampleLog returns sampleLog with a plausible provenance sideband
// attached: one stream per core, causes and conflict details varied.
func provSampleLog() *Log {
	l := sampleLog()
	l.Provenance = []provenance.CoreProvenance{
		{Core: 0, Records: []provenance.Record{
			{Seq: 0, Cause: provenance.CauseSize, Cycle: 90, TRAQOccupancy: 3, SnoopNonzero: 1, RemoteCore: -1},
			{Seq: 1, Cause: provenance.CauseConflict, Cycle: 195, TRAQOccupancy: 7, SnoopNonzero: 2,
				ConflictLine: 0x2000 >> 5, ConflictWrite: true, RemoteCore: 1,
				Reorders: []provenance.Reorder{
					{Kind: provenance.ReorderLoad, Offset: 1, Cycle: 150},
					{Kind: provenance.ReorderStore, Offset: 1, Cycle: 160},
				}},
		}},
		{Core: 1, Records: []provenance.Record{
			{Seq: 0, Cause: provenance.CauseFinal, Cycle: 170, TRAQOccupancy: 1, RemoteCore: -1,
				Reorders: []provenance.Reorder{{Kind: provenance.ReorderAtomic, Offset: 2, Cycle: 140}}},
		}},
	}
	return l
}

// findFrame scans encoded bytes for the first frame of the given type
// and returns the offset of its sync word, its end offset, or -1.
func findFrame(data []byte, want FrameType) (start, end int) {
	for pos := 0; pos+frameOverhead <= len(data); {
		if !bytes.Equal(data[pos:pos+4], frameSync[:]) {
			pos++
			continue
		}
		typ := FrameType(data[pos+4])
		length := binary.LittleEndian.Uint32(data[pos+5 : pos+9])
		e := pos + 9 + int(length) + 4
		if e > len(data) {
			pos++
			continue
		}
		if typ == want {
			return pos, e
		}
		pos = e
	}
	return -1, -1
}

// reframe recomputes the CRC of the frame at [start,end) in place,
// after a test mutated its payload deliberately.
func reframe(data []byte, start, end int) {
	body := data[start+4 : end-4]
	binary.LittleEndian.PutUint32(data[end-4:end], crc32.Checksum(body, castagnoli))
}

// TestProvenanceV3RoundTrip: the sideband survives an encode/decode
// cycle exactly, through both the robust and the parallel decoder.
func TestProvenanceV3RoundTrip(t *testing.T) {
	l := provSampleLog()
	var buf bytes.Buffer
	if err := EncodeV3(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, rep, err := DecodeRobust(bytes.NewReader(buf.Bytes()))
	if err != nil || !rep.Clean() {
		t.Fatalf("decode: err=%v report=%+v", err, rep)
	}
	if !reflect.DeepEqual(got.Provenance, l.Provenance) {
		t.Fatalf("provenance changed:\n got %+v\nwant %+v", got.Provenance, l.Provenance)
	}
	pgot, prep, perr := DecodeParallel(bytes.NewReader(buf.Bytes()))
	if perr != nil || !reflect.DeepEqual(pgot, got) || !reflect.DeepEqual(prep, rep) {
		t.Fatalf("parallel decode disagrees: err=%v", perr)
	}
}

// TestProvenanceDoesNotChangeV2OrPlainV3: the v2 encoder ignores the
// sideband entirely, and a log without provenance encodes to v3 bytes
// containing no FrameProvenance — the byte-identity guarantees that
// keep pre-provenance comparisons and baselines valid.
func TestProvenanceDoesNotChangeV2OrPlainV3(t *testing.T) {
	with := provSampleLog()
	without := sampleLog()

	var v2with, v2without bytes.Buffer
	if err := Encode(&v2with, with); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&v2without, without); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v2with.Bytes(), v2without.Bytes()) {
		t.Fatal("v2 encoding changed when provenance was attached")
	}

	var v3 bytes.Buffer
	if err := EncodeV3(&v3, without); err != nil {
		t.Fatal(err)
	}
	if s, _ := findFrame(v3.Bytes()[preambleLen:], FrameProvenance); s >= 0 {
		t.Fatal("v3 encoding of a provenance-free log contains a FrameProvenance")
	}
}

// TestProvenanceUnknownVersionSkippedCleanly: a frame with a future
// payload version is skipped without a corruption report — the decode
// stays clean and simply carries no sideband.
func TestProvenanceUnknownVersionSkippedCleanly(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeV3(&buf, provSampleLog()); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	patched := 0
	for off := 0; ; {
		s, e := findFrame(data[off:], FrameProvenance)
		if s < 0 {
			break
		}
		s, e = s+off, e+off
		if data[s+9] != provVersion {
			t.Fatalf("unexpected payload version %d", data[s+9])
		}
		data[s+9] = provVersion + 41
		reframe(data, s, e)
		patched++
		off = e
	}
	if patched == 0 {
		t.Fatal("no provenance frames found")
	}
	got, rep, err := DecodeRobust(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("future-version frames should skip cleanly, report: %s", rep.Summary())
	}
	if got.Provenance != nil {
		t.Fatalf("future-version frames should carry no sideband, got %+v", got.Provenance)
	}
	if !reflect.DeepEqual(got.Streams, sampleLog().Streams) {
		t.Fatal("interval streams changed")
	}
}

// TestProvenanceSurvivesGroupCorruption: DecodeRobust salvages the
// sideband independently — shredding a group frame loses intervals,
// never the provenance.
func TestProvenanceSurvivesGroupCorruption(t *testing.T) {
	l := provSampleLog()
	var buf bytes.Buffer
	if err := EncodeV3(&buf, l); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	s, e := findFrame(data, FrameIvGroup)
	if s < 0 {
		t.Fatal("no group frame found")
	}
	data[(s+9+e-4)/2] ^= 0xFF // corrupt the group payload, CRC now fails
	got, rep, err := DecodeRobust(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("corrupted group decoded clean")
	}
	if !reflect.DeepEqual(got.Provenance, l.Provenance) {
		t.Fatalf("provenance lost with the group frame:\n got %+v\nwant %+v", got.Provenance, l.Provenance)
	}
}

// TestProvenanceCorruptFrameDropsSidebandOnly: the converse — a
// corrupt provenance frame costs the sideband record set of that frame
// and nothing else.
func TestProvenanceCorruptFrameDropsSidebandOnly(t *testing.T) {
	l := provSampleLog()
	var buf bytes.Buffer
	if err := EncodeV3(&buf, l); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	s, e := findFrame(data, FrameProvenance)
	if s < 0 {
		t.Fatal("no provenance frame found")
	}
	data[(s+9+e-4)/2] ^= 0xFF
	got, rep, err := DecodeRobust(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("corrupted provenance frame decoded clean")
	}
	if !reflect.DeepEqual(got.Streams, l.Streams) {
		t.Fatal("interval streams were damaged by a provenance-frame corruption")
	}
	if len(got.Provenance) >= len(l.Provenance) {
		t.Fatalf("corrupt provenance frame was not dropped: %+v", got.Provenance)
	}
}

// TestProvenanceDuplicateCoreFramesConcatenate: the decoder merges
// multiple frames for one core in file order, so the in-memory form is
// canonical regardless of how an encoder split the stream.
func TestProvenanceDuplicateCoreFramesConcatenate(t *testing.T) {
	l := sampleLog()
	recs := provSampleLog().Provenance[0].Records
	l.Provenance = []provenance.CoreProvenance{
		{Core: 0, Records: recs[:1]},
		{Core: 0, Records: recs[1:]},
	}
	var buf bytes.Buffer
	if err := EncodeV3(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, rep, err := DecodeRobust(bytes.NewReader(buf.Bytes()))
	if err != nil || !rep.Clean() {
		t.Fatalf("decode: err=%v report=%+v", err, rep)
	}
	if len(got.Provenance) != 1 || got.Provenance[0].Core != 0 {
		t.Fatalf("frames did not merge: %+v", got.Provenance)
	}
	if !reflect.DeepEqual(got.Provenance[0].Records, recs) {
		t.Fatalf("merged records wrong:\n got %+v\nwant %+v", got.Provenance[0].Records, recs)
	}
}

// TestProvenanceEncodeClamps: encoder refuses out-of-clamp sidebands
// the same way it refuses oversize frames.
func TestProvenanceEncodeClamps(t *testing.T) {
	l := sampleLog()
	l.Provenance = []provenance.CoreProvenance{{Core: MaxCores}}
	var buf bytes.Buffer
	if err := EncodeV3(&buf, l); err == nil {
		t.Fatal("core out of range encoded")
	}
}

// TestProvenancePatchCarriesSideband: patching preserves the sideband
// so replay-time forensics can reach it on the patched log.
func TestProvenancePatchCarriesSideband(t *testing.T) {
	l := provSampleLog()
	p, err := l.Patch()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Provenance, l.Provenance) {
		t.Fatal("Patch dropped the provenance sideband")
	}
	pp, _, err := l.PatchPartial()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pp.Provenance, l.Provenance) {
		t.Fatal("PatchPartial dropped the provenance sideband")
	}
}
