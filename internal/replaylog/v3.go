package replaylog

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"sync"
)

// Format v3 encoder and decoder (see format.go for the wire layout).
// v3 trades the v2 one-interval-per-frame layout for delta/varint
// compressed group frames plus a seekable index footer: smaller files,
// O(log n) interval seeks via OpenIndexed, and a per-core decode that
// parallelizes. Encode keeps writing v2 by default — v3 is opt-in via
// EncodeV3 so byte-identical determinism comparisons against existing
// logs stay valid.

// DefaultGroupSize is the number of intervals per v3 group frame when
// V3Options.GroupSize is zero. The group is the unit of loss under
// corruption and the unit of work for an indexed seek, so the default
// balances compression context against salvage granularity.
const DefaultGroupSize = 64

// flagFlate marks a group frame whose body went through the flate
// stage. Remaining flag bits are reserved and must be zero.
const flagFlate = 1 << 0

// V3Options configures EncodeV3With. The zero value is the default
// encoding: DefaultGroupSize intervals per group, flate enabled.
type V3Options struct {
	// GroupSize is the number of consecutive intervals per group
	// frame; 0 means DefaultGroupSize. Values above MaxGroupIntervals
	// are clamped.
	GroupSize int
	// NoCompress disables the per-frame flate stage; bodies are
	// written delta/varint-encoded but raw. Useful when the caller
	// compresses at a higher layer or wants cheaper encodes.
	NoCompress bool
}

// ErrUnordered reports a log that v3 cannot represent: group delta
// encoding requires each core's intervals to have strictly increasing
// Seq and non-decreasing Timestamp (which Validate already demands of
// well-formed logs).
var ErrUnordered = errors.New("replaylog: v3 requires per-core ordered intervals")

// errV3EntryType is pre-declared so the hotpath encoder can fail
// without calling fmt.
var errV3EntryType = errors.New("replaylog: cannot encode entry type in v3 group")

// uvarint appends an unsigned varint.
func (p *payload) uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	p.Write(b[:n])
}

// svarint appends a zigzag-encoded signed varint.
func (p *payload) svarint(v int64) {
	p.uvarint(uint64(v<<1) ^ uint64(v>>63))
}

// EncodeV3 writes the log to w in format v3 with default options.
func EncodeV3(w io.Writer, l *Log) error { return EncodeV3With(w, l, V3Options{}) }

// EncodeV3With writes the log to w in format v3. The output is
// deterministic: the same log and options always produce the same
// bytes. Returns ErrUnordered if any core's intervals are not
// strictly increasing in Seq or decrease in Timestamp, and
// ErrOversizeFrame under the same count clamps as Encode.
func EncodeV3With(w io.Writer, l *Log, opts V3Options) error {
	if err := checkEncodeCounts(l); err != nil {
		return err
	}
	for si := range l.Streams {
		s := &l.Streams[si]
		for i := 1; i < len(s.Intervals); i++ {
			if s.Intervals[i].Seq <= s.Intervals[i-1].Seq {
				return fmt.Errorf("%w: core %d seq %d after %d", ErrUnordered, s.Core, s.Intervals[i].Seq, s.Intervals[i-1].Seq)
			}
			if s.Intervals[i].Timestamp < s.Intervals[i-1].Timestamp {
				return fmt.Errorf("%w: core %d timestamp %d after %d", ErrUnordered, s.Core, s.Intervals[i].Timestamp, s.Intervals[i-1].Timestamp)
			}
		}
	}
	gs := opts.GroupSize
	if gs <= 0 {
		gs = DefaultGroupSize
	}
	if gs > MaxGroupIntervals {
		gs = MaxGroupIntervals
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], formatV3)
	if _, err := bw.Write(ver[:]); err != nil {
		return err
	}
	fw := &frameWriter{w: bw}

	var p payload
	patched := uint8(0)
	if l.Patched {
		patched = 1
	}
	p.u32(uint32(l.Cores))
	p.u8(patched)
	p.u32(uint32(len(l.Inputs)))
	p.u16(uint16(len(l.Variant)))
	p.WriteString(l.Variant)
	fw.frame(FrameHeader, p.Bytes())

	for c, in := range l.Inputs {
		p.Reset()
		p.u32(uint32(c))
		p.u32(uint32(len(in)))
		for _, v := range in {
			p.u64(v)
		}
		fw.frame(FrameInputs, p.Bytes())
	}

	enc := newV3Encoder(opts.NoCompress)
	defer enc.release()
	var spans []IndexSpan
	for si := range l.Streams {
		s := &l.Streams[si]
		p.Reset()
		p.u32(uint32(s.Core))
		p.u32(uint32(len(s.Intervals)))
		fw.frame(FrameStream, p.Bytes())
		for i := 0; i < len(s.Intervals); i += gs {
			j := i + gs
			if j > len(s.Intervals) {
				j = len(s.Intervals)
			}
			group := s.Intervals[i:j]
			frame, err := enc.groupFrame(s.Core, group)
			if err != nil {
				return err
			}
			off := preambleLen + fw.off
			fw.frame(FrameIvGroup, frame)
			spans = append(spans, IndexSpan{
				Core:     s.Core,
				FirstSeq: group[0].Seq,
				LastSeq:  group[len(group)-1].Seq,
				Offset:   off,
				Length:   frameOverhead + len(frame),
			})
		}
	}

	// Provenance sideband, when present: after the interval groups so
	// the index spans above are unaffected, before the index so a
	// tail-truncated file loses the advisory frames first.
	if err := encodeProvenanceFrames(fw, &p, l); err != nil {
		return err
	}

	if len(spans) > MaxIndexSpans {
		return fmt.Errorf("%w: %d index spans (limit %d)", ErrOversizeFrame, len(spans), MaxIndexSpans)
	}
	indexOff := preambleLen + fw.off
	p.Reset()
	p.uvarint(uint64(len(spans)))
	for _, sp := range spans {
		p.uvarint(uint64(sp.Core))
		p.uvarint(sp.FirstSeq)
		p.uvarint(sp.LastSeq - sp.FirstSeq)
		p.uvarint(uint64(sp.Offset))
		p.uvarint(uint64(sp.Length))
	}
	fw.frame(FrameIndex, p.Bytes())

	p.Reset()
	p.u32(fw.count)
	p.u64(uint64(indexOff))
	fw.frame(FrameEnd, p.Bytes())
	if fw.err != nil {
		return fw.err
	}
	return bw.Flush()
}

// Wire geometry shared by the encoder, the linear decoder, and the
// indexed reader.
const (
	preambleLen   = 6  // magic + version
	frameOverhead = 13 // sync(4) + type(1) + length(4) + crc(4)
	// endFrameLen is the total size of a v3 end frame: overhead plus
	// the frames u32 and index-offset u64. OpenIndexed reads exactly
	// this many bytes off the file tail.
	endFrameLen = frameOverhead + 12
)

// v3encoder holds the reusable buffers of the group-frame pipeline so
// steady-state encoding allocates nothing per frame.
type v3encoder struct {
	body       payload      // delta/varint group body
	comp       bytes.Buffer // flate output
	frame      payload      // flags | core | body
	fl         *flate.Writer
	noCompress bool
}

// v3encPool recycles encoders across EncodeV3 calls: the flate writer
// alone holds several hundred KiB of window state that would otherwise
// be reallocated per encode.
var v3encPool sync.Pool

func newV3Encoder(noCompress bool) *v3encoder {
	if v, ok := v3encPool.Get().(*v3encoder); ok {
		v.noCompress = noCompress
		return v
	}
	enc := &v3encoder{noCompress: noCompress}
	// DefaultCompression: group frames are written once and read many
	// times; spend encode cycles on ratio.
	enc.fl, _ = flate.NewWriter(&enc.comp, flate.DefaultCompression)
	return enc
}

func (enc *v3encoder) release() { v3encPool.Put(enc) }

// groupFrame builds one FrameIvGroup payload for a core's interval
// run. The returned slice is valid until the next call.
func (enc *v3encoder) groupFrame(core int, group []Interval) ([]byte, error) {
	enc.body.Reset()
	if err := enc.groupBody(group); err != nil {
		return nil, err
	}
	flags := uint8(0)
	body := enc.body.Bytes()
	if !enc.noCompress {
		enc.comp.Reset()
		enc.fl.Reset(&enc.comp)
		if _, err := enc.fl.Write(body); err != nil {
			return nil, err
		}
		if err := enc.fl.Close(); err != nil {
			return nil, err
		}
		// The compressed form must earn its flag: incompressible
		// bodies (tiny groups, high-entropy values) stay raw.
		if enc.comp.Len() < len(body) {
			flags |= flagFlate
			body = enc.comp.Bytes()
		}
	}
	enc.frame.Reset()
	enc.frame.u8(flags)
	enc.frame.uvarint(uint64(core))
	enc.frame.Write(body)
	return enc.frame.Bytes(), nil
}

// groupBody delta/varint-encodes one group of intervals into enc.body.
// This is the encoder's per-interval path, the v3 analogue of the v2
// frame loop.
//
//rrlint:hotpath
func (enc *v3encoder) groupBody(group []Interval) error {
	p := &enc.body
	p.uvarint(uint64(len(group)))
	p.uvarint(group[0].Seq)
	p.uvarint(group[0].Timestamp)
	prevSeq, prevTs := group[0].Seq, group[0].Timestamp
	prevAddr := uint64(0)
	for i := range group {
		iv := &group[i]
		if i > 0 {
			p.uvarint(iv.Seq - prevSeq)
			p.uvarint(iv.Timestamp - prevTs)
			prevSeq, prevTs = iv.Seq, iv.Timestamp
		}
		p.uvarint(uint64(len(iv.Entries)))
		p.uvarint(uint64(len(iv.Preds)))
		for j := range iv.Entries {
			e := &iv.Entries[j]
			p.u8(uint8(e.Type))
			switch e.Type {
			case InorderBlock:
				p.uvarint(uint64(e.Size))
			case ReorderedLoad:
				p.uvarint(e.Value)
			case ReorderedStore, PatchedStore:
				p.svarint(int64(e.Addr - prevAddr))
				prevAddr = e.Addr
				p.uvarint(e.Value)
				p.uvarint(uint64(e.Offset))
			case ReorderedAtomic:
				p.svarint(int64(e.Addr - prevAddr))
				prevAddr = e.Addr
				p.uvarint(e.Value)
				p.uvarint(e.StoreValue)
				p.uvarint(uint64(e.Offset))
				w := uint8(0)
				if e.DidWrite {
					w = 1
				}
				p.u8(w)
			case Dummy:
			default:
				return errV3EntryType
			}
		}
		for j := range iv.Preds {
			p.uvarint(uint64(iv.Preds[j].Core))
			p.uvarint(iv.Preds[j].Seq)
		}
	}
	return nil
}

// groupRef is one CRC-verified group frame awaiting body decode: the
// scan pass reads only the plaintext flags/core prefix, so the
// (possibly compressed) body can be decoded per core in parallel.
type groupRef struct {
	off   int64 // frame sync-word offset in the file (for error reports)
	flags uint8
	body  []byte // subslice of the input; not yet decompressed
}

// v3coreResult is one core's decode output, assembled independently of
// goroutine scheduling so the merge is deterministic.
type v3coreResult struct {
	ivs     []Interval
	errs    []FrameError // capped at maxReportedFrames
	dropped int          // uncapped count behind errs
	dups    int
}

func (r *v3coreResult) drop(fe FrameError) {
	r.dropped++
	if len(r.errs) < maxReportedFrames {
		r.errs = append(r.errs, fe)
	}
}

// decodeV3 scans the framed v3 format. Like decodeV2 it resyncs past
// corruption and drops only what fails its CRC or structural checks;
// group bodies additionally decode per core, fanned out over at most
// `workers` goroutines. The result is identical for every workers
// value: the scan pass is sequential, each core's groups decode in
// file order, and the merge follows first-appearance core order with
// frame errors re-sorted by file offset.
func decodeV3(data []byte, workers int) (*Log, *CorruptionReport, error) {
	rep := &CorruptionReport{Version: 3}
	l := &Log{}
	headerSeen := false
	type streamState struct {
		idx      int // index into l.Streams
		declared int // interval count from the stream frame; -1 unknown
		refs     []groupRef
	}
	streams := map[int]*streamState{}
	inputSeen := map[int]bool{}
	stream := func(core int) *streamState {
		st := streams[core]
		if st == nil {
			st = &streamState{idx: len(l.Streams), declared: -1}
			streams[core] = st
			l.Streams = append(l.Streams, CoreLog{Core: core})
		}
		return st
	}

	pos, encountered, sawEnd := 0, 0, false
	endCount := uint32(0)
	for pos+frameOverhead <= len(data) {
		if !bytes.Equal(data[pos:pos+4], frameSync[:]) {
			pos++
			rep.BytesSkipped++
			continue
		}
		typ := FrameType(data[pos+4])
		length := binary.LittleEndian.Uint32(data[pos+5 : pos+9])
		end := pos + 9 + int(length) + 4
		if typ < FrameHeader || typ > FrameProvenance || length > MaxFrameLen || end > len(data) {
			pos++
			rep.BytesSkipped++
			continue
		}
		body := data[pos+4 : end-4]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[end-4:end]) {
			fe := FrameError{Offset: int64(pos + preambleLen), Type: typ, Core: -1, Reason: "crc mismatch"}
			nameFrame(&fe, typ, data[pos+9:end-4])
			rep.note(fe)
			encountered++
			pos++
			rep.BytesSkipped++
			continue
		}
		encountered++
		br := &byteReader{data: data[pos+9 : end-4]}
		drop := func(reason string) {
			fe := FrameError{Offset: int64(pos + preambleLen), Type: typ, Core: -1, Reason: reason}
			nameFrame(&fe, typ, br.data)
			rep.note(fe)
		}
		switch typ {
		case FrameHeader:
			cores := br.u32()
			patched := br.u8()
			ninputs := br.u32()
			vlen := br.u16()
			switch {
			case br.short:
				drop("short header")
			case cores > MaxCores:
				drop(fmt.Sprintf("core count %d exceeds limit %d", cores, MaxCores))
			case ninputs > MaxCores:
				drop(fmt.Sprintf("input-stream count %d exceeds limit %d", ninputs, MaxCores))
			case vlen > MaxVariantLen || int(vlen) > br.remaining():
				drop(fmt.Sprintf("variant length %d exceeds frame", vlen))
			case headerSeen:
				rep.DupFrames++
			default:
				headerSeen = true
				l.Cores = int(cores)
				l.Patched = patched != 0
				l.Variant = string(br.take(int(vlen)))
				if ninputs > 0 {
					l.Inputs = make([][]uint64, ninputs)
				}
			}
		case FrameInputs:
			core := br.u32()
			count := br.u32()
			switch {
			case br.short:
				drop("short inputs frame")
			case core >= MaxCores:
				drop(fmt.Sprintf("core %d exceeds limit", core))
			case int(count)*8 > br.remaining():
				drop(fmt.Sprintf("input count %d exceeds frame", count))
			case inputSeen[int(core)]:
				rep.DupFrames++
			default:
				inputSeen[int(core)] = true
				for int(core) >= len(l.Inputs) {
					l.Inputs = append(l.Inputs, nil)
				}
				var in []uint64
				for j := uint32(0); j < count; j++ {
					in = append(in, br.u64())
				}
				l.Inputs[core] = in
			}
		case FrameStream:
			core := br.u32()
			nivs := br.u32()
			switch {
			case br.short:
				drop("short stream frame")
			case core >= MaxCores:
				drop(fmt.Sprintf("core %d exceeds limit", core))
			case nivs > MaxIntervalsPerCore:
				drop(fmt.Sprintf("interval count %d exceeds limit", nivs))
			case streams[int(core)] != nil && streams[int(core)].declared >= 0:
				rep.DupFrames++
			default:
				stream(int(core)).declared = int(nivs)
			}
		case FrameInterval:
			// v3 streams carry group frames; a bare v2 interval frame
			// here is stray bytes from another format.
			drop("v2 interval frame in v3 stream")
		case FrameIvGroup:
			flags := br.u8()
			core := br.uvarint()
			switch {
			case br.short:
				drop("short group frame")
			case core >= MaxCores:
				drop(fmt.Sprintf("core %d exceeds limit", core))
			case flags&^flagFlate != 0:
				drop(fmt.Sprintf("unknown group flags %#x", flags))
			default:
				st := stream(int(core))
				st.refs = append(st.refs, groupRef{
					off:   int64(pos + preambleLen),
					flags: flags,
					body:  br.data[br.pos:],
				})
			}
		case FrameIndex:
			// Advisory footer for OpenIndexed; the linear decoder has
			// no use for it beyond counting the frame.
		case FrameProvenance:
			ver := br.u8()
			switch {
			case br.short:
				drop("short provenance frame")
			case ver != provVersion:
				// A future payload revision: already counted as an
				// encountered frame, skipped without a report so the
				// decode stays clean.
			default:
				core, recs, reason := decodeProvenanceBody(br)
				if reason != "" {
					drop(reason)
				} else {
					attachProvenance(l, core, recs)
				}
			}
		case FrameEnd:
			n := br.u32() // the trailing index offset is OpenIndexed's
			switch {
			case br.short:
				drop("short end frame")
			case sawEnd:
				rep.DupFrames++
			default:
				sawEnd = true
				endCount = n
			}
		}
		pos = end
	}

	if !sawEnd {
		rep.Truncated = true
	} else {
		// encountered counts the end frame itself; endCount does not.
		if encountered-1 < int(endCount) {
			rep.Truncated = true // whole frames vanished without a trace
		}
		if pos < len(data) {
			rep.BytesSkipped += int64(len(data) - pos)
		}
	}

	// Per-core body decode. Order within a core is file order; cores
	// are independent, so they can run concurrently.
	type coreJob struct {
		idx  int
		core int
		refs []groupRef
	}
	var jobs []coreJob
	for core, st := range streams {
		jobs = append(jobs, coreJob{idx: st.idx, core: core, refs: st.refs})
	}
	// Each job writes only its own results slot, but spawn in stream
	// order anyway so scheduling (and any future tracing) is stable.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].idx < jobs[j].idx })
	results := make([]v3coreResult, len(l.Streams))
	if workers > 1 && len(jobs) > 1 {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, jb := range jobs {
			wg.Add(1)
			go func(jb coreJob) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[jb.idx] = decodeCoreGroups(jb.core, jb.refs)
			}(jb)
		}
		wg.Wait()
	} else {
		for _, jb := range jobs {
			results[jb.idx] = decodeCoreGroups(jb.core, jb.refs)
		}
	}

	var groupErrs []FrameError
	groupDropped := 0
	for idx := range results {
		res := &results[idx]
		l.Streams[idx].Intervals = res.ivs
		rep.DupFrames += res.dups
		groupErrs = append(groupErrs, res.errs...)
		groupDropped += res.dropped
	}
	if groupDropped > 0 {
		merged := make([]FrameError, 0, len(rep.Frames)+len(groupErrs))
		merged = append(merged, rep.Frames...)
		merged = append(merged, groupErrs...)
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].Offset < merged[j].Offset })
		if len(merged) > maxReportedFrames {
			merged = merged[:maxReportedFrames]
		}
		rep.Frames = merged
		rep.Dropped += groupDropped
	}

	for _, st := range streams {
		if st.declared >= 0 {
			if got := len(l.Streams[st.idx].Intervals); got < st.declared {
				rep.MissingIntervals += st.declared - got
			}
		}
	}
	if !headerSeen {
		rep.HeaderLost = true
		inferHeader(l)
	}
	return l, rep, nil
}

// decodeCoreGroups decodes one core's group frames in file order,
// enforcing cross-group Seq/Timestamp monotonicity the same way
// decodeV2 drops duplicate or out-of-order interval frames.
func decodeCoreGroups(core int, refs []groupRef) v3coreResult {
	var res v3coreResult
	var lastSeq, lastTs uint64
	have := false
	for _, ref := range refs {
		body := ref.body
		if ref.flags&flagFlate != 0 {
			out, ok := inflateBody(body)
			if !ok {
				res.drop(FrameError{Offset: ref.off, Type: FrameIvGroup, Core: core, Reason: "corrupt flate body"})
				continue
			}
			body = out
		}
		ivs, reason := decodeGroupBody(body)
		if reason != "" {
			res.drop(FrameError{Offset: ref.off, Type: FrameIvGroup, Core: core, Reason: reason})
			continue
		}
		if have && ivs[0].Seq <= lastSeq {
			res.dups++
			continue
		}
		if have && ivs[0].Timestamp < lastTs {
			res.drop(FrameError{Offset: ref.off, Type: FrameIvGroup, Core: core, Reason: "timestamp regression across groups"})
			continue
		}
		res.ivs = append(res.ivs, ivs...)
		lastSeq = ivs[len(ivs)-1].Seq
		lastTs = ivs[len(ivs)-1].Timestamp
		have = true
	}
	return res
}

// inflateBody decompresses a flate group body, bounded by MaxFrameLen
// so a decompression bomb cannot out-allocate the clamps.
func inflateBody(src []byte) ([]byte, bool) {
	fr := flate.NewReader(bytes.NewReader(src))
	defer fr.Close()
	var out bytes.Buffer
	n, err := io.Copy(&out, io.LimitReader(fr, MaxFrameLen+1))
	if err != nil || n > MaxFrameLen {
		return nil, false
	}
	return out.Bytes(), true
}

// decodeGroupBody parses one decompressed group body into intervals.
// A non-empty reason means the body is structurally corrupt and the
// whole group is the unit of loss.
func decodeGroupBody(body []byte) ([]Interval, string) {
	br := &byteReader{data: body}
	count := br.uvarint()
	if br.short || count == 0 || count > MaxGroupIntervals {
		return nil, "bad group interval count"
	}
	seq := br.uvarint()
	ts := br.uvarint()
	if br.short {
		return nil, "short group header"
	}
	// Each interval costs at least two body bytes (nent+npred), so the
	// claimed count cannot out-allocate the bytes that back it.
	capHint := int(count)
	if capHint > br.remaining()/2+1 {
		capHint = br.remaining()/2 + 1
	}
	ivs := make([]Interval, 0, capHint)
	prevAddr := uint64(0)
	for i := 0; i < int(count); i++ {
		if i > 0 {
			sd := br.uvarint()
			td := br.uvarint()
			if br.short {
				return nil, "short group body"
			}
			if sd == 0 {
				return nil, "zero seq delta"
			}
			if seq+sd < seq {
				return nil, "seq overflow"
			}
			seq += sd
			if ts+td < ts {
				return nil, "timestamp overflow"
			}
			ts += td
		}
		nent := br.uvarint()
		npred := br.uvarint()
		if br.short ||
			nent > MaxEntriesPerInterval || int(nent) > br.remaining() ||
			npred > MaxPredsPerInterval || int(npred)*2 > br.remaining() {
			return nil, "bad interval counts"
		}
		iv := Interval{Seq: seq, CISN: uint16(seq), Timestamp: ts}
		for j := uint64(0); j < nent; j++ {
			e, ok := br.entryV3(&prevAddr)
			if !ok {
				return nil, "corrupt entry"
			}
			iv.Entries = append(iv.Entries, e)
		}
		for j := uint64(0); j < npred; j++ {
			pc := br.uvarint()
			ps := br.uvarint()
			if br.short || pc >= MaxCores {
				return nil, "corrupt pred"
			}
			iv.Preds = append(iv.Preds, Pred{Core: int(pc), Seq: ps})
		}
		ivs = append(ivs, iv)
	}
	if br.remaining() != 0 {
		return nil, "trailing bytes in group"
	}
	return ivs, ""
}

// entryV3 decodes one varint-encoded entry; the bool is false on a
// short read, unknown type, or a field that overflows its Log width.
func (b *byteReader) entryV3(prevAddr *uint64) (Entry, bool) {
	var e Entry
	e.Type = EntryType(b.u8())
	switch e.Type {
	case InorderBlock:
		v := b.uvarint()
		if v > math.MaxUint32 {
			return e, false
		}
		e.Size = uint32(v)
	case ReorderedLoad:
		e.Value = b.uvarint()
	case ReorderedStore, PatchedStore:
		e.Addr = *prevAddr + uint64(b.svarint())
		*prevAddr = e.Addr
		e.Value = b.uvarint()
		off := b.uvarint()
		if off > math.MaxUint16 {
			return e, false
		}
		e.Offset = uint16(off)
	case ReorderedAtomic:
		e.Addr = *prevAddr + uint64(b.svarint())
		*prevAddr = e.Addr
		e.Value = b.uvarint()
		e.StoreValue = b.uvarint()
		off := b.uvarint()
		if off > math.MaxUint16 {
			return e, false
		}
		e.Offset = uint16(off)
		e.DidWrite = b.u8() != 0
	case Dummy:
	default:
		return e, false
	}
	return e, !b.short
}
