package replaylog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
)

// Indexed access to v3 logs: OpenIndexed reads only the end frame and
// the index footer (a few KiB), after which DecodeInterval seeks one
// group frame per lookup — O(log n) in the span table plus one group
// decode — instead of scanning the whole file. The index is advisory:
// if the footer, the end frame, or a sought group frame is damaged, or
// the file predates v3, the reader degrades to one full DecodeRobust
// pass and serves every lookup from memory.

// IndexSpan locates one group frame: the closed interval-sequence
// range [FirstSeq, LastSeq] that core's frame covers and where its
// bytes live in the file.
type IndexSpan struct {
	Core     int
	FirstSeq uint64
	LastSeq  uint64
	Offset   int64 // byte offset of the frame's sync word in the file
	Length   int   // whole-frame length including sync/header/crc
}

// ErrNoInterval reports a (core, seq) pair the log does not contain.
var ErrNoInterval = errors.New("replaylog: no such interval")

// IndexedLog is a random-access view of an encoded log. Safe for
// concurrent use.
type IndexedLog struct {
	r    io.ReaderAt
	size int64

	spans   map[int][]IndexSpan // per-core, sorted by FirstSeq; nil in fallback mode
	reason  string              // why the index path is unavailable ("" when indexed)
	spanCnt int

	// Fallback: one full robust decode, lazily, serving every lookup
	// (and any lookup the indexed path could not complete).
	fullOnce sync.Once
	full     *Log
	fullRep  *CorruptionReport
	fullErr  error
}

// OpenIndexed prepares random access over an encoded log of the given
// size. It reads the preamble and, for v3 files, the end frame and
// index footer; interval data is not touched until DecodeInterval.
// Damage to the footer is not an error — the reader just loses the
// seek path (see Indexed) and falls back to a linear scan.
func OpenIndexed(r io.ReaderAt, size int64) (*IndexedLog, error) {
	ix := &IndexedLog{r: r, size: size}
	var pre [preambleLen]byte
	if _, err := r.ReadAt(pre[:], 0); err != nil {
		return nil, fmt.Errorf("replaylog: reading preamble: %w", err)
	}
	if [4]byte(pre[:4]) != magic {
		return nil, fmt.Errorf("replaylog: bad magic %q", pre[:4])
	}
	switch version := binary.LittleEndian.Uint16(pre[4:6]); version {
	case formatV1, formatV2:
		ix.reason = fmt.Sprintf("format v%d has no index", version)
		return ix, nil
	case formatV3:
	default:
		return nil, fmt.Errorf("replaylog: unsupported version %d", version)
	}
	if reason := ix.loadIndex(); reason != "" {
		ix.reason = reason
		ix.spans = nil
	}
	return ix, nil
}

// loadIndex parses the end frame and index footer, returning a
// non-empty reason on any damage (which triggers fallback mode).
func (ix *IndexedLog) loadIndex() string {
	if ix.size < preambleLen+endFrameLen {
		return "file too short for an end frame"
	}
	var tail [endFrameLen]byte
	if _, err := ix.r.ReadAt(tail[:], ix.size-endFrameLen); err != nil {
		return "end frame unreadable"
	}
	if !bytes.Equal(tail[:4], frameSync[:]) ||
		FrameType(tail[4]) != FrameEnd ||
		binary.LittleEndian.Uint32(tail[5:9]) != endFrameLen-frameOverhead {
		return "end frame damaged"
	}
	if crc32.Checksum(tail[4:endFrameLen-4], castagnoli) !=
		binary.LittleEndian.Uint32(tail[endFrameLen-4:]) {
		return "end frame crc mismatch"
	}
	indexOff := int64(binary.LittleEndian.Uint64(tail[13:21]))
	if indexOff < preambleLen || indexOff+frameOverhead > ix.size-endFrameLen+frameOverhead {
		return "index offset out of range"
	}
	var hdr [9]byte
	if _, err := ix.r.ReadAt(hdr[:], indexOff); err != nil {
		return "index frame unreadable"
	}
	if !bytes.Equal(hdr[:4], frameSync[:]) || FrameType(hdr[4]) != FrameIndex {
		return "index frame damaged"
	}
	length := binary.LittleEndian.Uint32(hdr[5:9])
	if length > MaxFrameLen || indexOff+9+int64(length)+4 > ix.size {
		return "index frame length out of range"
	}
	buf := make([]byte, 1+4+int(length)+4)
	if _, err := ix.r.ReadAt(buf, indexOff+4); err != nil {
		return "index frame unreadable"
	}
	if crc32.Checksum(buf[:len(buf)-4], castagnoli) !=
		binary.LittleEndian.Uint32(buf[len(buf)-4:]) {
		return "index frame crc mismatch"
	}

	br := &byteReader{data: buf[5 : len(buf)-4]}
	nspans := br.uvarint()
	if br.short || nspans > MaxIndexSpans {
		return "bad span count"
	}
	spans := map[int][]IndexSpan{}
	total := 0
	for i := uint64(0); i < nspans; i++ {
		core := br.uvarint()
		firstSeq := br.uvarint()
		seqRange := br.uvarint()
		off := br.uvarint()
		flen := br.uvarint()
		if br.short {
			return "short span table"
		}
		sp := IndexSpan{
			Core:     int(core),
			FirstSeq: firstSeq,
			LastSeq:  firstSeq + seqRange,
			Offset:   int64(off),
			Length:   int(flen),
		}
		if core >= MaxCores || sp.LastSeq < sp.FirstSeq ||
			sp.Offset < preambleLen || sp.Length < frameOverhead ||
			sp.Offset+int64(sp.Length) > ix.size {
			return "span out of range"
		}
		prev := spans[sp.Core]
		if len(prev) > 0 && sp.FirstSeq <= prev[len(prev)-1].LastSeq {
			return "span table out of order"
		}
		spans[sp.Core] = append(prev, sp)
		total++
	}
	if br.remaining() != 0 {
		return "trailing bytes in span table"
	}
	ix.spans = spans
	ix.spanCnt = total
	return ""
}

// Indexed reports whether the seek path is live; when false, Reason
// says why and every lookup is served by one cached linear scan.
func (ix *IndexedLog) Indexed() bool { return ix.spans != nil }

// Reason explains a false Indexed result.
func (ix *IndexedLog) Reason() string { return ix.reason }

// Spans returns the number of group-frame spans in the index (0 in
// fallback mode).
func (ix *IndexedLog) Spans() int { return ix.spanCnt }

// DecodeInterval returns core's interval with the given sequence
// number, reading and decoding only the one group frame that covers
// it when the index is live. Damage discovered on the seek path
// (a group frame that no longer matches its checksum, say) silently
// degrades that lookup to the linear-scan fallback, which salvages
// like DecodeRobust. Returns ErrNoInterval when the log has no such
// interval. The returned Interval shares no state with the reader on
// the indexed path; on the fallback path it aliases the cached log.
func (ix *IndexedLog) DecodeInterval(core int, seq uint64) (*Interval, error) {
	if ix.spans != nil {
		spans := ix.spans[core]
		i := sort.Search(len(spans), func(i int) bool { return spans[i].LastSeq >= seq })
		if i >= len(spans) || spans[i].FirstSeq > seq {
			// A live index is a complete map of the encoder's output:
			// the interval is absent, not unlocatable.
			return nil, fmt.Errorf("%w: core %d seq %d", ErrNoInterval, core, seq)
		}
		if iv, ok := ix.readGroupInterval(spans[i], seq); ok {
			if iv == nil {
				return nil, fmt.Errorf("%w: core %d seq %d", ErrNoInterval, core, seq)
			}
			return iv, nil
		}
		// The span pointed at damaged bytes: degrade gracefully.
	}
	return ix.fallbackInterval(core, seq)
}

// readGroupInterval fetches one group frame and extracts the interval
// with the given seq. ok=false means the frame was damaged and the
// caller should fall back; (nil, true) means the frame is intact but
// holds no such seq.
func (ix *IndexedLog) readGroupInterval(sp IndexSpan, seq uint64) (*Interval, bool) {
	buf := make([]byte, sp.Length)
	if _, err := ix.r.ReadAt(buf, sp.Offset); err != nil {
		return nil, false
	}
	if !bytes.Equal(buf[:4], frameSync[:]) ||
		FrameType(buf[4]) != FrameIvGroup ||
		int(binary.LittleEndian.Uint32(buf[5:9])) != sp.Length-frameOverhead {
		return nil, false
	}
	if crc32.Checksum(buf[4:len(buf)-4], castagnoli) !=
		binary.LittleEndian.Uint32(buf[len(buf)-4:]) {
		return nil, false
	}
	br := &byteReader{data: buf[9 : len(buf)-4]}
	flags := br.u8()
	core := br.uvarint()
	if br.short || int(core) != sp.Core || flags&^flagFlate != 0 {
		return nil, false
	}
	body := br.data[br.pos:]
	if flags&flagFlate != 0 {
		out, ok := inflateBody(body)
		if !ok {
			return nil, false
		}
		body = out
	}
	ivs, reason := decodeGroupBody(body)
	if reason != "" {
		return nil, false
	}
	j := sort.Search(len(ivs), func(i int) bool { return ivs[i].Seq >= seq })
	if j >= len(ivs) || ivs[j].Seq != seq {
		return nil, true
	}
	return &ivs[j], true
}

// fallbackInterval serves a lookup from one cached full decode.
func (ix *IndexedLog) fallbackInterval(core int, seq uint64) (*Interval, error) {
	l, _, err := ix.fullDecode()
	if err != nil {
		return nil, err
	}
	for si := range l.Streams {
		s := &l.Streams[si]
		if s.Core != core {
			continue
		}
		j := sort.Search(len(s.Intervals), func(i int) bool { return s.Intervals[i].Seq >= seq })
		if j < len(s.Intervals) && s.Intervals[j].Seq == seq {
			return &s.Intervals[j], nil
		}
	}
	return nil, fmt.Errorf("%w: core %d seq %d", ErrNoInterval, core, seq)
}

// fullDecode runs (once) the linear robust decode behind the fallback
// path and returns the cached result thereafter.
func (ix *IndexedLog) fullDecode() (*Log, *CorruptionReport, error) {
	ix.fullOnce.Do(func() {
		ix.full, ix.fullRep, ix.fullErr = DecodeRobust(io.NewSectionReader(ix.r, 0, ix.size))
	})
	return ix.full, ix.fullRep, ix.fullErr
}
