package replaylog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialization of a Log. The on-disk format is byte-aligned
// and therefore larger than the uncompressed-bit accounting used for
// Figure 11; SizeBits remains the metric of record.

var magic = [4]byte{'R', 'R', 'L', 'G'}

const formatVersion = 1

// Encode writes the log to w.
func Encode(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	put := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	patched := uint8(0)
	if l.Patched {
		patched = 1
	}
	if err := put(uint16(formatVersion), uint32(l.Cores), patched, uint16(len(l.Variant))); err != nil {
		return err
	}
	if _, err := bw.WriteString(l.Variant); err != nil {
		return err
	}
	if err := put(uint32(len(l.Inputs))); err != nil {
		return err
	}
	for _, in := range l.Inputs {
		if err := put(uint32(len(in))); err != nil {
			return err
		}
		for _, v := range in {
			if err := put(v); err != nil {
				return err
			}
		}
	}
	if err := put(uint32(len(l.Streams))); err != nil {
		return err
	}
	for _, s := range l.Streams {
		if err := put(uint32(s.Core), uint32(len(s.Intervals))); err != nil {
			return err
		}
		for _, iv := range s.Intervals {
			if err := put(iv.Seq, iv.Timestamp, uint32(len(iv.Entries)), uint32(len(iv.Preds))); err != nil {
				return err
			}
			for _, e := range iv.Entries {
				if err := encodeEntry(put, e); err != nil {
					return err
				}
			}
			for _, p := range iv.Preds {
				if err := put(uint32(p.Core), p.Seq); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

func encodeEntry(put func(...any) error, e Entry) error {
	if err := put(uint8(e.Type)); err != nil {
		return err
	}
	switch e.Type {
	case InorderBlock:
		return put(e.Size)
	case ReorderedLoad:
		return put(e.Value)
	case ReorderedStore, PatchedStore:
		return put(e.Addr, e.Value, e.Offset)
	case ReorderedAtomic:
		w := uint8(0)
		if e.DidWrite {
			w = 1
		}
		return put(e.Addr, e.Value, e.StoreValue, e.Offset, w)
	case Dummy:
		return nil
	}
	return fmt.Errorf("replaylog: cannot encode entry type %v", e.Type)
}

// Decode reads a log written by Encode.
func Decode(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("replaylog: bad magic %q", m)
	}
	get := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	var version uint16
	var cores uint32
	var patched uint8
	var vlen uint16
	if err := get(&version, &cores, &patched, &vlen); err != nil {
		return nil, err
	}
	if version != formatVersion {
		return nil, fmt.Errorf("replaylog: unsupported version %d", version)
	}
	vbuf := make([]byte, vlen)
	if _, err := io.ReadFull(br, vbuf); err != nil {
		return nil, err
	}
	l := &Log{Cores: int(cores), Patched: patched != 0, Variant: string(vbuf)}

	var nin uint32
	if err := get(&nin); err != nil {
		return nil, err
	}
	// Counts are read from untrusted input: never pre-allocate the
	// full declared size (a corrupted count must fail at EOF, not OOM).
	l.Inputs = make([][]uint64, 0, capAt(int(nin)))
	for i := uint32(0); i < nin; i++ {
		var n uint32
		if err := get(&n); err != nil {
			return nil, err
		}
		var in []uint64
		for j := uint32(0); j < n; j++ {
			var v uint64
			if err := get(&v); err != nil {
				return nil, err
			}
			in = append(in, v)
		}
		l.Inputs = append(l.Inputs, in)
	}

	var nstreams uint32
	if err := get(&nstreams); err != nil {
		return nil, err
	}
	l.Streams = make([]CoreLog, 0, capAt(int(nstreams)))
	for si := uint32(0); si < nstreams; si++ {
		var core, nivs uint32
		if err := get(&core, &nivs); err != nil {
			return nil, err
		}
		s := CoreLog{Core: int(core)}
		for i := uint32(0); i < nivs; i++ {
			var iv Interval
			var nent, npred uint32
			if err := get(&iv.Seq, &iv.Timestamp, &nent, &npred); err != nil {
				return nil, err
			}
			iv.CISN = uint16(iv.Seq)
			for j := uint32(0); j < nent; j++ {
				var e Entry
				if err := decodeEntry(get, &e); err != nil {
					return nil, err
				}
				iv.Entries = append(iv.Entries, e)
			}
			for j := uint32(0); j < npred; j++ {
				var pc uint32
				var p Pred
				if err := get(&pc, &p.Seq); err != nil {
					return nil, err
				}
				p.Core = int(pc)
				iv.Preds = append(iv.Preds, p)
			}
			s.Intervals = append(s.Intervals, iv)
		}
		l.Streams = append(l.Streams, s)
	}
	return l, nil
}

// capAt bounds speculative pre-allocation for untrusted counts.
func capAt(n int) int {
	if n > 1024 {
		return 1024
	}
	return n
}

func decodeEntry(get func(...any) error, e *Entry) error {
	var t uint8
	if err := get(&t); err != nil {
		return err
	}
	e.Type = EntryType(t)
	switch e.Type {
	case InorderBlock:
		return get(&e.Size)
	case ReorderedLoad:
		return get(&e.Value)
	case ReorderedStore, PatchedStore:
		return get(&e.Addr, &e.Value, &e.Offset)
	case ReorderedAtomic:
		var w uint8
		if err := get(&e.Addr, &e.Value, &e.StoreValue, &e.Offset, &w); err != nil {
			return err
		}
		e.DidWrite = w != 0
		return nil
	case Dummy:
		return nil
	}
	return fmt.Errorf("replaylog: cannot decode entry type %d", t)
}
