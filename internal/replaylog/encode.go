package replaylog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"

	"relaxreplay/internal/faultinject"
)

// Binary serialization of a Log. The on-disk format is byte-aligned
// and therefore larger than the uncompressed-bit accounting used for
// Figure 11; SizeBits remains the metric of record. Format v2 (see
// format.go and DESIGN.md) wraps everything in CRC32C-checked frames;
// Decode still reads v1 files written before the framing existed.

var magic = [4]byte{'R', 'R', 'L', 'G'}

const (
	formatV1 = 1
	formatV2 = 2
	formatV3 = 3
)

// payload is a little-endian frame-payload builder.
type payload struct{ bytes.Buffer }

func (p *payload) u8(v uint8)   { p.WriteByte(v) }
func (p *payload) u16(v uint16) { var b [2]byte; binary.LittleEndian.PutUint16(b[:], v); p.Write(b[:]) }
func (p *payload) u32(v uint32) { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); p.Write(b[:]) }
func (p *payload) u64(v uint64) { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); p.Write(b[:]) }

func (p *payload) entry(e Entry) error {
	p.u8(uint8(e.Type))
	switch e.Type {
	case InorderBlock:
		p.u32(e.Size)
	case ReorderedLoad:
		p.u64(e.Value)
	case ReorderedStore, PatchedStore:
		p.u64(e.Addr)
		p.u64(e.Value)
		p.u16(e.Offset)
	case ReorderedAtomic:
		p.u64(e.Addr)
		p.u64(e.Value)
		p.u64(e.StoreValue)
		p.u16(e.Offset)
		w := uint8(0)
		if e.DidWrite {
			w = 1
		}
		p.u8(w)
	case Dummy:
	default:
		return fmt.Errorf("replaylog: cannot encode entry type %v", e.Type)
	}
	return nil
}

// frameWriter emits checksummed v2/v3 frames. count is the running
// frame total that the end frame publishes so the decoders can detect
// whole frames vanishing without a trace; off is the byte offset of
// the next frame from the start of the file (the v3 encoder reads it
// to build the segment index). The header/trailer scratch arrays
// live in the struct: stack-local arrays would escape through the
// io.Writer call inside bufio.Writer and turn every frame into two
// heap allocations (this is the encoder's per-interval path).
type frameWriter struct {
	w     *bufio.Writer
	count uint32
	off   int64
	err   error
	hdr   [9]byte
	tail  [4]byte
}

// frame writes one checksummed frame, refusing payloads the u32 length
// field (clamped far tighter by MaxFrameLen) could not represent.
//
//rrlint:hotpath
func (fw *frameWriter) frame(t FrameType, body []byte) {
	if fw.err != nil {
		return
	}
	if len(body) > MaxFrameLen {
		fw.err = fmt.Errorf("%w: %v frame payload is %d bytes (limit %d)", ErrOversizeFrame, t, len(body), MaxFrameLen) //rrlint:allow hotpath-alloc (terminal error path)
		return
	}
	copy(fw.hdr[:4], frameSync[:])
	fw.hdr[4] = uint8(t)
	binary.LittleEndian.PutUint32(fw.hdr[5:], uint32(len(body)))
	crc := crc32.Update(0, castagnoli, fw.hdr[4:])
	crc = crc32.Update(crc, castagnoli, body)
	binary.LittleEndian.PutUint32(fw.tail[:], crc)
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		fw.err = err
		return
	}
	if _, err := fw.w.Write(body); err != nil {
		fw.err = err
		return
	}
	if _, err := fw.w.Write(fw.tail[:]); err != nil {
		fw.err = err
		return
	}
	fw.count++
	fw.off += int64(len(fw.hdr) + len(body) + len(fw.tail))
}

// Encode writes the log to w in format v2.
func Encode(w io.Writer, l *Log) error { return EncodeWith(w, l, nil) }

// EncodeWith is Encode with a fault injector attached: the
// log.dupframe point, when armed, makes the encoder emit one interval
// frame twice (the duplicated-frame fault the robust decoder must
// absorb). A nil injector encodes byte-identically to Encode.
func EncodeWith(w io.Writer, l *Log, inj *faultinject.Injector) error {
	if err := checkEncodeCounts(l); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], formatV2)
	if _, err := bw.Write(ver[:]); err != nil {
		return err
	}
	fw := &frameWriter{w: bw}

	var p payload
	patched := uint8(0)
	if l.Patched {
		patched = 1
	}
	p.u32(uint32(l.Cores))
	p.u8(patched)
	p.u32(uint32(len(l.Inputs)))
	p.u16(uint16(len(l.Variant)))
	p.WriteString(l.Variant)
	fw.frame(FrameHeader, p.Bytes())

	for c, in := range l.Inputs {
		p.Reset()
		p.u32(uint32(c))
		p.u32(uint32(len(in)))
		for _, v := range in {
			p.u64(v)
		}
		fw.frame(FrameInputs, p.Bytes())
	}

	total := uint64(0)
	for _, s := range l.Streams {
		total += uint64(len(s.Intervals))
	}
	inj.ArmWithin(faultinject.LogDupFrame, total)

	for _, s := range l.Streams {
		p.Reset()
		p.u32(uint32(s.Core))
		p.u32(uint32(len(s.Intervals)))
		fw.frame(FrameStream, p.Bytes())
		for i := range s.Intervals {
			iv := &s.Intervals[i]
			p.Reset()
			p.u32(uint32(s.Core))
			p.u64(iv.Seq)
			p.u64(iv.Timestamp)
			p.u32(uint32(len(iv.Entries)))
			p.u32(uint32(len(iv.Preds)))
			for _, e := range iv.Entries {
				if err := p.entry(e); err != nil {
					return err
				}
			}
			for _, pr := range iv.Preds {
				p.u32(uint32(pr.Core))
				p.u64(pr.Seq)
			}
			fw.frame(FrameInterval, p.Bytes())
			if inj.Fire(faultinject.LogDupFrame) {
				fw.frame(FrameInterval, p.Bytes())
			}
		}
	}

	p.Reset()
	p.u32(fw.count)
	fw.frame(FrameEnd, p.Bytes())
	if fw.err != nil {
		return fw.err
	}
	return bw.Flush()
}

// checkEncodeCounts rejects, before a single byte is written, every
// count the fixed-width wire fields (and the decoder's clamps, which
// are far tighter) could not round-trip. Without these guards an
// oversize value — e.g. a variant string longer than the u16 length
// field — would be silently truncated into a corrupt-but-checksummed
// frame that decodes to the wrong log.
func checkEncodeCounts(l *Log) error {
	if l.Cores < 0 || l.Cores > MaxCores {
		return fmt.Errorf("%w: core count %d (limit %d)", ErrOversizeFrame, l.Cores, MaxCores)
	}
	if len(l.Inputs) > MaxCores {
		return fmt.Errorf("%w: %d input streams (limit %d)", ErrOversizeFrame, len(l.Inputs), MaxCores)
	}
	if len(l.Variant) > MaxVariantLen {
		return fmt.Errorf("%w: variant string is %d bytes (limit %d)", ErrOversizeFrame, len(l.Variant), MaxVariantLen)
	}
	for c, in := range l.Inputs {
		if len(in) > MaxInputLen {
			return fmt.Errorf("%w: core %d input stream has %d entries (limit %d)", ErrOversizeFrame, c, len(in), MaxInputLen)
		}
	}
	for si := range l.Streams {
		s := &l.Streams[si]
		if s.Core < 0 || s.Core >= MaxCores {
			return fmt.Errorf("%w: stream core %d (limit %d)", ErrOversizeFrame, s.Core, MaxCores)
		}
		if len(s.Intervals) > MaxIntervalsPerCore {
			return fmt.Errorf("%w: core %d has %d intervals (limit %d)", ErrOversizeFrame, s.Core, len(s.Intervals), MaxIntervalsPerCore)
		}
		for i := range s.Intervals {
			iv := &s.Intervals[i]
			if len(iv.Entries) > MaxEntriesPerInterval {
				return fmt.Errorf("%w: core %d interval %d has %d entries (limit %d)", ErrOversizeFrame, s.Core, iv.Seq, len(iv.Entries), MaxEntriesPerInterval)
			}
			if len(iv.Preds) > MaxPredsPerInterval {
				return fmt.Errorf("%w: core %d interval %d has %d preds (limit %d)", ErrOversizeFrame, s.Core, iv.Seq, len(iv.Preds), MaxPredsPerInterval)
			}
		}
	}
	return nil
}

// EncodeV1 writes the pre-framing format, kept so tests can exercise
// the v1 decode path against freshly-written v1 bytes (and as an
// escape hatch for tooling that needs the old layout).
func EncodeV1(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	put := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	patched := uint8(0)
	if l.Patched {
		patched = 1
	}
	if err := put(uint16(formatV1), uint32(l.Cores), patched, uint16(len(l.Variant))); err != nil {
		return err
	}
	if _, err := bw.WriteString(l.Variant); err != nil {
		return err
	}
	if err := put(uint32(len(l.Inputs))); err != nil {
		return err
	}
	for _, in := range l.Inputs {
		if err := put(uint32(len(in))); err != nil {
			return err
		}
		for _, v := range in {
			if err := put(v); err != nil {
				return err
			}
		}
	}
	if err := put(uint32(len(l.Streams))); err != nil {
		return err
	}
	for _, s := range l.Streams {
		if err := put(uint32(s.Core), uint32(len(s.Intervals))); err != nil {
			return err
		}
		for _, iv := range s.Intervals {
			if err := put(iv.Seq, iv.Timestamp, uint32(len(iv.Entries)), uint32(len(iv.Preds))); err != nil {
				return err
			}
			var p payload
			for _, e := range iv.Entries {
				if err := p.entry(e); err != nil {
					return err
				}
			}
			if _, err := bw.Write(p.Bytes()); err != nil {
				return err
			}
			for _, pr := range iv.Preds {
				if err := put(uint32(pr.Core), pr.Seq); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Decode reads a log written by Encode (v2) or EncodeV1, failing on
// any corruption or truncation with a typed error (ErrCorruptFrame /
// ErrTruncated for v2). Use DecodeRobust to recover what a damaged
// stream still holds.
func Decode(r io.Reader) (*Log, error) {
	l, rep, err := DecodeRobust(r)
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// DecodeRobust reads a possibly-damaged log: it verifies every frame
// checksum, resynchronizes past corruption, drops duplicate frames,
// enforces the format's allocation clamps, and returns whatever
// decoded cleanly together with a CorruptionReport describing what
// did not. The error is non-nil only when nothing was recoverable
// (unreadable source, bad magic, unknown version).
func DecodeRobust(r io.Reader) (*Log, *CorruptionReport, error) {
	return decodeReader(r, 1)
}

// DecodeParallel is DecodeRobust with the v3 per-core decode fanned
// out across GOMAXPROCS goroutines: after one sequential scan pass
// partitions the frames, each core's group frames decompress and
// decode concurrently, and the merge is deterministic — the returned
// log and report are identical to DecodeRobust's on the same bytes.
// v1/v2 streams have no per-core partitioning and decode sequentially.
func DecodeParallel(r io.Reader) (*Log, *CorruptionReport, error) {
	return decodeReader(r, runtime.GOMAXPROCS(0))
}

func decodeReader(r io.Reader, workers int) (*Log, *CorruptionReport, error) {
	data, err := io.ReadAll(r)
	if err != nil && len(data) == 0 {
		return nil, nil, err
	}
	// A short read behind us is damage in front of us: decode what
	// arrived; the report will show the loss.
	if len(data) < 6 {
		return nil, nil, fmt.Errorf("%w: %d-byte stream (no header)", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, nil, fmt.Errorf("replaylog: bad magic %q", data[:4])
	}
	switch version := binary.LittleEndian.Uint16(data[4:6]); version {
	case formatV1:
		return decodeV1(data[6:])
	case formatV2:
		return decodeV2(data[6:])
	case formatV3:
		return decodeV3(data[6:], workers)
	default:
		return nil, nil, fmt.Errorf("replaylog: unsupported version %d", version)
	}
}

// byteReader is a bounds-checked little-endian cursor over untrusted
// bytes. Reads past the end set short and return zero values.
type byteReader struct {
	data  []byte
	pos   int
	short bool
}

func (b *byteReader) remaining() int { return len(b.data) - b.pos }

func (b *byteReader) take(n int) []byte {
	if b.remaining() < n {
		b.short = true
		b.pos = len(b.data)
		return nil
	}
	out := b.data[b.pos : b.pos+n]
	b.pos += n
	return out
}

func (b *byteReader) u8() uint8 {
	s := b.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (b *byteReader) u16() uint16 {
	s := b.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (b *byteReader) u32() uint32 {
	s := b.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (b *byteReader) u64() uint64 {
	s := b.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// uvarint reads an unsigned varint (v3 fields). A malformed or
// overlong encoding sets short, like any other truncated read.
func (b *byteReader) uvarint() uint64 {
	v, n := binary.Uvarint(b.data[b.pos:])
	if n <= 0 {
		b.short = true
		b.pos = len(b.data)
		return 0
	}
	b.pos += n
	return v
}

// svarint reads a zigzag-encoded signed varint (v3 address deltas).
func (b *byteReader) svarint() int64 {
	u := b.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// entry decodes one log entry; the bool is false on a short or
// unknown-type read.
func (b *byteReader) entry() (Entry, bool) {
	var e Entry
	e.Type = EntryType(b.u8())
	switch e.Type {
	case InorderBlock:
		e.Size = b.u32()
	case ReorderedLoad:
		e.Value = b.u64()
	case ReorderedStore, PatchedStore:
		e.Addr = b.u64()
		e.Value = b.u64()
		e.Offset = b.u16()
	case ReorderedAtomic:
		e.Addr = b.u64()
		e.Value = b.u64()
		e.StoreValue = b.u64()
		e.Offset = b.u16()
		e.DidWrite = b.u8() != 0
	case Dummy:
	default:
		return e, false
	}
	return e, !b.short
}

// decodeV2 scans the framed format. pre-condition: data starts right
// after the 6-byte preamble.
func decodeV2(data []byte) (*Log, *CorruptionReport, error) {
	rep := &CorruptionReport{Version: 2}
	l := &Log{}
	headerSeen := false
	type streamState struct {
		idx      int // index into l.Streams
		declared int // interval count from the stream frame; -1 unknown
		lastSeq  uint64
		hasSeq   bool
	}
	streams := map[int]*streamState{}
	inputSeen := map[int]bool{}
	stream := func(core int) *streamState {
		st := streams[core]
		if st == nil {
			st = &streamState{idx: len(l.Streams), declared: -1}
			streams[core] = st
			l.Streams = append(l.Streams, CoreLog{Core: core})
		}
		return st
	}

	const minFrame = 13 // sync(4) + type(1) + length(4) + crc(4)
	pos, encountered, sawEnd := 0, 0, false
	endCount := uint32(0)
	for pos+minFrame <= len(data) {
		if !bytes.Equal(data[pos:pos+4], frameSync[:]) {
			pos++
			rep.BytesSkipped++
			continue
		}
		typ := FrameType(data[pos+4])
		length := binary.LittleEndian.Uint32(data[pos+5 : pos+9])
		end := pos + 9 + int(length) + 4
		if typ < FrameHeader || typ > FrameEnd || length > MaxFrameLen || end > len(data) {
			// Corrupt type/length (or a false sync inside a payload):
			// not a frame boundary we can trust. Resync byte by byte.
			pos++
			rep.BytesSkipped++
			continue
		}
		body := data[pos+4 : end-4]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[end-4:end]) {
			fe := FrameError{Offset: int64(pos + 6), Type: typ, Core: -1, Reason: "crc mismatch"}
			nameFrame(&fe, typ, data[pos+9:end-4])
			rep.note(fe)
			encountered++
			// The length field is part of what failed the checksum, so
			// the claimed frame end cannot be trusted either: resync.
			pos++
			rep.BytesSkipped++
			continue
		}
		encountered++
		br := &byteReader{data: data[pos+9 : end-4]}
		drop := func(reason string) {
			fe := FrameError{Offset: int64(pos + 6), Type: typ, Core: -1, Reason: reason}
			nameFrame(&fe, typ, br.data)
			rep.note(fe)
		}
		switch typ {
		case FrameHeader:
			cores := br.u32()
			patched := br.u8()
			ninputs := br.u32()
			vlen := br.u16()
			switch {
			case br.short:
				drop("short header")
			case cores > MaxCores:
				drop(fmt.Sprintf("core count %d exceeds limit %d", cores, MaxCores))
			case ninputs > MaxCores:
				drop(fmt.Sprintf("input-stream count %d exceeds limit %d", ninputs, MaxCores))
			case vlen > MaxVariantLen || int(vlen) > br.remaining():
				drop(fmt.Sprintf("variant length %d exceeds frame", vlen))
			case headerSeen:
				rep.DupFrames++
			default:
				headerSeen = true
				l.Cores = int(cores)
				l.Patched = patched != 0
				l.Variant = string(br.take(int(vlen)))
				if ninputs > 0 {
					l.Inputs = make([][]uint64, ninputs)
				}
			}
		case FrameInputs:
			core := br.u32()
			count := br.u32()
			switch {
			case br.short:
				drop("short inputs frame")
			case core >= MaxCores:
				drop(fmt.Sprintf("core %d exceeds limit", core))
			case int(count)*8 > br.remaining():
				drop(fmt.Sprintf("input count %d exceeds frame", count))
			case inputSeen[int(core)]:
				rep.DupFrames++
			default:
				inputSeen[int(core)] = true
				for int(core) >= len(l.Inputs) {
					l.Inputs = append(l.Inputs, nil)
				}
				var in []uint64
				for j := uint32(0); j < count; j++ {
					in = append(in, br.u64())
				}
				l.Inputs[core] = in
			}
		case FrameStream:
			core := br.u32()
			nivs := br.u32()
			switch {
			case br.short:
				drop("short stream frame")
			case core >= MaxCores:
				drop(fmt.Sprintf("core %d exceeds limit", core))
			case nivs > MaxIntervalsPerCore:
				drop(fmt.Sprintf("interval count %d exceeds limit", nivs))
			case streams[int(core)] != nil && streams[int(core)].declared >= 0:
				rep.DupFrames++
			default:
				stream(int(core)).declared = int(nivs)
			}
		case FrameInterval:
			core := br.u32()
			seq := br.u64()
			ts := br.u64()
			nent := br.u32()
			npred := br.u32()
			if br.short || core >= MaxCores ||
				nent > MaxEntriesPerInterval || int(nent) > br.remaining() ||
				npred > MaxPredsPerInterval {
				drop("corrupt interval frame header")
				break
			}
			iv := Interval{Seq: seq, CISN: uint16(seq), Timestamp: ts}
			ok := true
			for j := uint32(0); j < nent && ok; j++ {
				var e Entry
				e, ok = br.entry()
				if ok {
					iv.Entries = append(iv.Entries, e)
				}
			}
			if !ok || int(npred)*12 > br.remaining() {
				drop("corrupt interval entries")
				break
			}
			for j := uint32(0); j < npred; j++ {
				iv.Preds = append(iv.Preds, Pred{Core: int(br.u32()), Seq: br.u64()})
			}
			if br.remaining() != 0 {
				drop(fmt.Sprintf("%d trailing bytes in interval frame", br.remaining()))
				break
			}
			st := stream(int(core))
			if st.hasSeq && seq <= st.lastSeq {
				rep.DupFrames++
				break
			}
			st.hasSeq, st.lastSeq = true, seq
			l.Streams[st.idx].Intervals = append(l.Streams[st.idx].Intervals, iv)
		case FrameEnd:
			n := br.u32()
			switch {
			case br.short:
				drop("short end frame")
			case sawEnd:
				rep.DupFrames++
			default:
				sawEnd = true
				endCount = n
			}
		}
		pos = end
	}

	if !sawEnd {
		rep.Truncated = true
	} else {
		// encountered counts the end frame itself; endCount does not.
		if encountered-1 < int(endCount) {
			rep.Truncated = true // whole frames vanished without a trace
		}
		if pos < len(data) {
			rep.BytesSkipped += int64(len(data) - pos)
		}
	}
	for core, st := range streams {
		if st.declared >= 0 {
			if got := len(l.Streams[st.idx].Intervals); got < st.declared {
				rep.MissingIntervals += st.declared - got
			}
		}
		_ = core
	}
	if !headerSeen {
		rep.HeaderLost = true
		inferHeader(l)
	}
	return l, rep, nil
}

// nameFrame extracts best-effort identity (core, interval seq) from a
// frame payload whose checksum failed or whose body did not parse, so
// the report can say *which* frame was lost.
func nameFrame(fe *FrameError, typ FrameType, body []byte) {
	br := &byteReader{data: body}
	switch typ {
	case FrameInputs, FrameStream, FrameInterval:
		core := br.u32()
		if !br.short && core < MaxCores {
			fe.Core = int(core)
		}
		if typ == FrameInterval {
			seq := br.u64()
			if !br.short {
				fe.Seq = seq
			}
		}
	case FrameIvGroup:
		br.u8() // flags
		core := br.uvarint()
		if !br.short && core < MaxCores {
			fe.Core = int(core)
		}
	case FrameProvenance:
		br.u8() // version
		core := br.uvarint()
		if !br.short && core < MaxCores {
			fe.Core = int(core)
		}
	}
}

// inferHeader reconstructs the header-carried fields of a log whose
// header frame was lost, from the frames that survived.
func inferHeader(l *Log) {
	maxCore := -1
	for _, s := range l.Streams {
		if s.Core > maxCore {
			maxCore = s.Core
		}
	}
	for c := range l.Inputs {
		if c > maxCore {
			maxCore = c
		}
	}
	l.Cores = maxCore + 1
	for _, s := range l.Streams {
		for _, iv := range s.Intervals {
			for _, e := range iv.Entries {
				switch e.Type {
				case PatchedStore, Dummy:
					l.Patched = true
					return
				case ReorderedStore, ReorderedAtomic:
					return // definitely unpatched
				}
			}
		}
	}
}

// decodeV1 parses the pre-framing format, committing each fully-
// parsed structure so a torn v1 stream still yields its intact
// prefix. Every count field is clamped before use.
func decodeV1(data []byte) (*Log, *CorruptionReport, error) {
	rep := &CorruptionReport{Version: 1}
	l := &Log{}
	br := &byteReader{data: data}
	fail := func(reason string) (*Log, *CorruptionReport, error) {
		if br.short {
			rep.Truncated = true
		} else {
			rep.note(FrameError{Offset: int64(6 + br.pos), Type: FrameInvalid, Core: -1, Reason: reason})
		}
		return l, rep, nil
	}

	cores := br.u32()
	patched := br.u8()
	vlen := br.u16()
	if br.short {
		return fail("short header")
	}
	if cores > MaxCores {
		return fail(fmt.Sprintf("core count %d exceeds limit %d", cores, MaxCores))
	}
	if vlen > MaxVariantLen {
		return fail(fmt.Sprintf("variant length %d exceeds limit %d", vlen, MaxVariantLen))
	}
	vb := br.take(int(vlen))
	if br.short {
		return fail("short variant")
	}
	l.Cores = int(cores)
	l.Patched = patched != 0
	l.Variant = string(vb)

	nin := br.u32()
	if br.short {
		return fail("missing input table")
	}
	if nin > MaxCores {
		return fail(fmt.Sprintf("input-stream count %d exceeds limit %d", nin, MaxCores))
	}
	for i := uint32(0); i < nin; i++ {
		n := br.u32()
		if br.short {
			return fail("short input stream")
		}
		if n > MaxInputLen {
			return fail(fmt.Sprintf("input count %d exceeds limit %d", n, MaxInputLen))
		}
		if int(n)*8 > br.remaining() {
			br.short = true
			return fail("short input stream")
		}
		var in []uint64
		for j := uint32(0); j < n; j++ {
			in = append(in, br.u64())
		}
		if br.short {
			return fail("short input stream")
		}
		l.Inputs = append(l.Inputs, in)
	}

	nstreams := br.u32()
	if br.short {
		return fail("missing stream table")
	}
	if nstreams > MaxCores {
		return fail(fmt.Sprintf("stream count %d exceeds limit %d", nstreams, MaxCores))
	}
	for si := uint32(0); si < nstreams; si++ {
		core := br.u32()
		nivs := br.u32()
		if br.short {
			return fail("short stream header")
		}
		if nivs > MaxIntervalsPerCore {
			return fail(fmt.Sprintf("interval count %d exceeds limit %d", nivs, MaxIntervalsPerCore))
		}
		if int(nivs)*24 > br.remaining() { // 24 B = minimum encoded interval
			br.short = true
			return fail("short stream")
		}
		s := CoreLog{Core: int(core)}
		// Commit the stream now so intact intervals survive a torn tail.
		l.Streams = append(l.Streams, s)
		cur := &l.Streams[len(l.Streams)-1]
		for i := uint32(0); i < nivs; i++ {
			var iv Interval
			iv.Seq = br.u64()
			iv.Timestamp = br.u64()
			nent := br.u32()
			npred := br.u32()
			if br.short {
				return fail("short interval header")
			}
			if nent > MaxEntriesPerInterval {
				return fail(fmt.Sprintf("entry count %d exceeds limit %d", nent, MaxEntriesPerInterval))
			}
			if npred > MaxPredsPerInterval {
				return fail(fmt.Sprintf("pred count %d exceeds limit %d", npred, MaxPredsPerInterval))
			}
			if int(nent) > br.remaining() || int(npred)*12 > br.remaining() {
				br.short = true
				return fail("short interval")
			}
			iv.CISN = uint16(iv.Seq)
			for j := uint32(0); j < nent; j++ {
				e, ok := br.entry()
				if !ok {
					if br.short {
						return fail("short entry")
					}
					return fail(fmt.Sprintf("unknown entry type %d", e.Type))
				}
				iv.Entries = append(iv.Entries, e)
			}
			for j := uint32(0); j < npred; j++ {
				iv.Preds = append(iv.Preds, Pred{Core: int(br.u32()), Seq: br.u64()})
			}
			if br.short {
				return fail("short preds")
			}
			cur.Intervals = append(cur.Intervals, iv)
		}
	}
	return l, rep, nil
}
