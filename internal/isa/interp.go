package isa

import "fmt"

// Memory is the data memory interface used by the functional
// interpreter. Implementations must handle naturally-aligned 8-byte
// words addressed by byte address.
type Memory interface {
	Load(addr uint64) uint64
	Store(addr uint64, val uint64)
}

// Thread is the architectural state of one hardware thread, executed
// functionally and in order. It is used as the golden reference model
// in tests and as the "native execution" engine inside the replayer.
type Thread struct {
	Prog   Program
	PC     int
	Regs   [NumRegs]uint64
	Inputs []uint64 // external input stream consumed by IN
	InPos  int
	Halted bool

	// Instret counts retired instructions.
	Instret uint64
}

// SetReg writes a register, preserving the R0-is-zero invariant.
func (t *Thread) SetReg(r Reg, v uint64) {
	if r != 0 {
		t.Regs[r] = v
	}
}

// ErrOutOfInput is returned by Step when IN runs past the input stream.
var ErrOutOfInput = fmt.Errorf("isa: IN executed past end of input stream")

// Step executes one instruction against mem. It returns an error on a
// PC out of range or input exhaustion; a halted thread is a no-op.
func (t *Thread) Step(mem Memory) error {
	if t.Halted {
		return nil
	}
	if t.PC < 0 || t.PC >= len(t.Prog.Code) {
		return fmt.Errorf("isa: PC %d out of range [0,%d)", t.PC, len(t.Prog.Code))
	}
	ins := t.Prog.Code[t.PC]
	next := t.PC + 1
	switch {
	case ins.Op == NOP || ins.Op == FENCE:
		// No architectural effect in the in-order model.
	case ins.Op == HALT:
		t.Halted = true
	case ins.Op == IN:
		if t.InPos >= len(t.Inputs) {
			return ErrOutOfInput
		}
		t.SetReg(ins.Rd, t.Inputs[t.InPos])
		t.InPos++
	case ins.Op == JMP:
		next = int(ins.Imm)
	case ins.IsBranch():
		if BranchTaken(ins, t.Regs[ins.Rs1], t.Regs[ins.Rs2]) {
			next = int(ins.Imm)
		}
	case ins.Op == LD:
		t.SetReg(ins.Rd, mem.Load(EffAddr(ins, t.Regs[ins.Rs1])))
	case ins.Op == ST:
		mem.Store(EffAddr(ins, t.Regs[ins.Rs1]), t.Regs[ins.Rs2])
	case ins.IsAtomic():
		addr := EffAddr(ins, t.Regs[ins.Rs1])
		old := mem.Load(addr)
		newVal, write := AmoApply(ins, old, t.Regs[ins.Rs2], t.Regs[ins.Rd])
		if write {
			mem.Store(addr, newVal)
		}
		t.SetReg(ins.Rd, old)
	default:
		t.SetReg(ins.Rd, EvalALU(ins, t.Regs[ins.Rs1], t.Regs[ins.Rs2]))
	}
	t.PC = next
	t.Instret++
	return nil
}

// Run steps the thread until it halts or maxSteps is exceeded.
func (t *Thread) Run(mem Memory, maxSteps uint64) error {
	for !t.Halted {
		if t.Instret >= maxSteps {
			return fmt.Errorf("isa: thread %q exceeded %d steps", t.Prog.Name, maxSteps)
		}
		if err := t.Step(mem); err != nil {
			return err
		}
	}
	return nil
}

// FlatMemory is a simple word-granular memory backed by a map; the
// zero value is ready to use. It is the reference memory for tests and
// the replayer.
type FlatMemory struct {
	words map[uint64]uint64
}

// NewFlatMemory returns an empty FlatMemory.
func NewFlatMemory() *FlatMemory { return &FlatMemory{words: make(map[uint64]uint64)} }

// Load returns the word at addr (zero if never written).
func (m *FlatMemory) Load(addr uint64) uint64 { return m.words[align(addr)] }

// Store writes the word at addr.
func (m *FlatMemory) Store(addr uint64, val uint64) { m.words[align(addr)] = val }

// Snapshot returns a copy of all non-zero words.
func (m *FlatMemory) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m.words))
	for a, v := range m.words {
		if v != 0 {
			out[a] = v
		}
	}
	return out
}

func align(addr uint64) uint64 { return addr &^ (WordSize - 1) }
