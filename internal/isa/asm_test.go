package isa

import (
	"strings"
	"testing"
)

func TestParseRoundTripsBuilder(t *testing.T) {
	src := `
; sum 1..10 into r3
        li   r1, 1
        li   r2, 11
        li   r3, 0
loop:   add  r3, r3, r1
        addi r1, r1, 1
        bne  r1, r2, loop
        halt
`
	p, err := Parse("sum", src)
	if err != nil {
		t.Fatal(err)
	}
	th := &Thread{Prog: p}
	if err := th.Run(NewFlatMemory(), 1000); err != nil {
		t.Fatal(err)
	}
	if th.Regs[3] != 55 {
		t.Fatalf("sum = %d", th.Regs[3])
	}
}

func TestParseAllForms(t *testing.T) {
	src := `
start:
    nop
    li      r10, 0x100
    mov     r11, r10
    ld      r3, 8(r10)
    ld.acq  r4, 0(r10)
    st      r3, 16(r10)
    st.rel  r3, 24(r10)
    add     r5, r3, r4
    sub     r5, r5, r4
    mul     r5, r5, r4
    and     r5, r5, r4
    or      r5, r5, r4
    xor     r5, r5, r4
    sll     r5, r5, r4
    srl     r5, r5, r4
    slt     r5, r5, r4
    sltu    r5, r5, r4
    addi    r5, r5, -1
    andi    r5, r5, 0xF
    ori     r5, r5, 1
    xori    r5, r5, 2
    slli    r5, r5, 3
    srli    r5, r5, 3
    slti    r5, r5, 10
    amoadd  r6, r4, 0(r10)
    amoswap.acq r6, r4, 0(r10)
    cas.acq.rel r6, r4, 0(r10)
    fence
    in      r7
    beq     r3, r0, end
    bne     r3, r0, end
    blt     r3, r0, end
    bge     r3, r0, end
    jmp     end
end: halt   ; label with instruction on same line
`
	p, err := Parse("forms", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 35 {
		t.Fatalf("instructions = %d", len(p.Code))
	}
	// Spot-check flags and addressing.
	find := func(op Op) Instr {
		for _, ins := range p.Code {
			if ins.Op == op {
				return ins
			}
		}
		t.Fatalf("no %v emitted", op)
		return Instr{}
	}
	if ld := p.Code[3]; ld.Op != LD || ld.Imm != 8 || ld.Rs1 != 10 || ld.Rd != 3 {
		t.Fatalf("ld = %+v", ld)
	}
	if acq := p.Code[4]; acq.Flags != FlagAcquire {
		t.Fatalf("ld.acq flags = %v", acq.Flags)
	}
	if rel := p.Code[6]; rel.Flags != FlagRelease || rel.Op != ST {
		t.Fatalf("st.rel = %+v", rel)
	}
	if cas := find(CAS); cas.Flags != FlagAcquire|FlagRelease {
		t.Fatalf("cas flags = %v", cas.Flags)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "frobnicate r1",
		"bad register":     "li rx, 5",
		"reg out of range": "li r32, 5",
		"bad immediate":    "li r1, banana",
		"operand count":    "add r1, r2",
		"bad mem operand":  "ld r1, r2",
		"bad suffix":       "ld.wat r1, 0(r2)",
		"flags on alu":     "add.acq r1, r2, r3",
		"bad label char":   "bad!label: nop",
		"undefined target": "jmp nowhere",
		"bad jump target":  "jmp no where",
	}
	for what, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("%s: %q accepted", what, src)
		}
	}
}

func TestParseErrorsIncludeLineNumbers(t *testing.T) {
	_, err := Parse("lined", "nop\nnop\nbogus r1\n")
	if err == nil || !strings.Contains(err.Error(), "lined:3") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseCommentStyles(t *testing.T) {
	p, err := Parse("comments", `
nop ; semicolon
nop # hash
nop // slashes
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 4 {
		t.Fatalf("instructions = %d", len(p.Code))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("bad", "bogus")
}

// Property-ish: String() output of supported instructions reparses to
// the same instruction (for the subset whose String form is assembly).
func TestDisasmReassembles(t *testing.T) {
	b := NewBuilder("x")
	b.Li(R(3), -5)
	b.Addi(R(4), R(3), 7)
	b.Ld(R(5), R(4), 16)
	b.StRel(R(5), R(4), 24)
	b.AmoAdd(R(6), R(5), R(4), 0, FlagAcquire|FlagRelease)
	b.Fence()
	b.Halt()
	p := b.MustBuild()
	for _, ins := range p.Code {
		src := ins.String()
		// Branches/jumps print absolute targets (@n), not labels; skip.
		if strings.Contains(src, "@") {
			continue
		}
		// amoadd prints "amoadd.acq.rel r6, r5, 0(r4)" — parseable.
		q, err := Parse("re", src)
		if err != nil {
			t.Fatalf("%q does not reassemble: %v", src, err)
		}
		if len(q.Code) != 1 || q.Code[0] != ins {
			t.Fatalf("%q reassembled to %+v, want %+v", src, q.Code[0], ins)
		}
	}
}
