package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisterHelper(t *testing.T) {
	if R(5) != Reg(5) {
		t.Fatalf("R(5) = %d", R(5))
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("R(32) did not panic")
		}
	}()
	R(NumRegs)
}

func TestInstrPredicates(t *testing.T) {
	cases := []struct {
		ins                          Instr
		mem, load, store, atomic, br bool
	}{
		{Instr{Op: LD}, true, true, false, false, false},
		{Instr{Op: ST}, true, false, true, false, false},
		{Instr{Op: AMOADD}, true, true, true, true, false},
		{Instr{Op: AMOSWAP}, true, true, true, true, false},
		{Instr{Op: CAS}, true, true, true, true, false},
		{Instr{Op: ADD}, false, false, false, false, false},
		{Instr{Op: BEQ}, false, false, false, false, true},
		{Instr{Op: FENCE}, false, false, false, false, false},
		{Instr{Op: JMP}, false, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.ins.IsMem(); got != c.mem {
			t.Errorf("%v IsMem = %v", c.ins.Op, got)
		}
		if got := c.ins.IsLoad(); got != c.load {
			t.Errorf("%v IsLoad = %v", c.ins.Op, got)
		}
		if got := c.ins.IsStore(); got != c.store {
			t.Errorf("%v IsStore = %v", c.ins.Op, got)
		}
		if got := c.ins.IsAtomic(); got != c.atomic {
			t.Errorf("%v IsAtomic = %v", c.ins.Op, got)
		}
		if got := c.ins.IsBranch(); got != c.br {
			t.Errorf("%v IsBranch = %v", c.ins.Op, got)
		}
	}
}

func TestWritesReg(t *testing.T) {
	if (Instr{Op: ADD, Rd: 0}).WritesReg() {
		t.Errorf("write to R0 should not count")
	}
	if !(Instr{Op: LD, Rd: 3}).WritesReg() {
		t.Errorf("LD r3 writes a register")
	}
	if (Instr{Op: ST, Rd: 3}).WritesReg() {
		t.Errorf("ST writes no register")
	}
	if !(Instr{Op: CAS, Rd: 3}).ReadsRd() {
		t.Errorf("CAS reads Rd (expected value)")
	}
}

func TestEvalALU(t *testing.T) {
	cases := []struct {
		ins    Instr
		s1, s2 uint64
		want   uint64
	}{
		{Instr{Op: ADD}, 2, 3, 5},
		{Instr{Op: SUB}, 2, 3, ^uint64(0)},
		{Instr{Op: MUL}, 7, 6, 42},
		{Instr{Op: AND}, 0b1100, 0b1010, 0b1000},
		{Instr{Op: OR}, 0b1100, 0b1010, 0b1110},
		{Instr{Op: XOR}, 0b1100, 0b1010, 0b0110},
		{Instr{Op: SLL}, 1, 4, 16},
		{Instr{Op: SRL}, 16, 4, 1},
		{Instr{Op: SLT}, ^uint64(0), 0, 1}, // -1 < 0 signed
		{Instr{Op: SLTU}, ^uint64(0), 0, 0},
		{Instr{Op: ADDI, Imm: -1}, 5, 0, 4},
		{Instr{Op: ANDI, Imm: 0xF}, 0x1234, 0, 4},
		{Instr{Op: ORI, Imm: 1}, 2, 0, 3},
		{Instr{Op: XORI, Imm: 3}, 1, 0, 2},
		{Instr{Op: SLLI, Imm: 3}, 1, 0, 8},
		{Instr{Op: SRLI, Imm: 3}, 8, 0, 1},
		{Instr{Op: SLTI, Imm: 10}, 3, 0, 1},
		{Instr{Op: LI, Imm: -7}, 0, 0, uint64(0xFFFFFFFFFFFFFFF9)},
	}
	for _, c := range cases {
		if got := EvalALU(c.ins, c.s1, c.s2); got != c.want {
			t.Errorf("EvalALU(%v, %d, %d) = %d, want %d", c.ins, c.s1, c.s2, got, c.want)
		}
	}
}

func TestEvalALUPanicsOnNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	EvalALU(Instr{Op: LD}, 0, 0)
}

func TestBranchTaken(t *testing.T) {
	neg := ^uint64(0) // -1
	cases := []struct {
		op     Op
		s1, s2 uint64
		want   bool
	}{
		{BEQ, 4, 4, true}, {BEQ, 4, 5, false},
		{BNE, 4, 5, true}, {BNE, 4, 4, false},
		{BLT, neg, 0, true}, {BLT, 0, neg, false},
		{BGE, 0, neg, true}, {BGE, neg, 0, false}, {BGE, 3, 3, true},
	}
	for _, c := range cases {
		if got := BranchTaken(Instr{Op: c.op}, c.s1, c.s2); got != c.want {
			t.Errorf("BranchTaken(%v, %d, %d) = %v", c.op, c.s1, c.s2, got)
		}
	}
}

func TestAmoApply(t *testing.T) {
	if v, w := AmoApply(Instr{Op: AMOADD}, 10, 5, 0); v != 15 || !w {
		t.Errorf("AMOADD = %d,%v", v, w)
	}
	if v, w := AmoApply(Instr{Op: AMOSWAP}, 10, 5, 0); v != 5 || !w {
		t.Errorf("AMOSWAP = %d,%v", v, w)
	}
	if v, w := AmoApply(Instr{Op: CAS}, 10, 99, 10); v != 99 || !w {
		t.Errorf("CAS success = %d,%v", v, w)
	}
	if v, w := AmoApply(Instr{Op: CAS}, 10, 99, 11); v != 10 || w {
		t.Errorf("CAS failure = %d,%v", v, w)
	}
}

// Property: ADD/XOR identities hold for arbitrary operands.
func TestEvalALUProperties(t *testing.T) {
	addComm := func(a, b uint64) bool {
		return EvalALU(Instr{Op: ADD}, a, b) == EvalALU(Instr{Op: ADD}, b, a)
	}
	if err := quick.Check(addComm, nil); err != nil {
		t.Errorf("ADD not commutative: %v", err)
	}
	xorInv := func(a, b uint64) bool {
		x := EvalALU(Instr{Op: XOR}, a, b)
		return EvalALU(Instr{Op: XOR}, x, b) == a
	}
	if err := quick.Check(xorInv, nil); err != nil {
		t.Errorf("XOR not involutive: %v", err)
	}
	subAdd := func(a, b uint64) bool {
		return EvalALU(Instr{Op: ADD}, EvalALU(Instr{Op: SUB}, a, b), b) == a
	}
	if err := quick.Check(subAdd, nil); err != nil {
		t.Errorf("SUB/ADD not inverse: %v", err)
	}
}

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder("loop")
	b.Li(R(1), 0).Li(R(2), 10)
	b.Label("top")
	b.Addi(R(1), R(1), 1)
	b.Bne(R(1), R(2), "top")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[3].Imm != 2 {
		t.Errorf("branch target = %d, want 2", p.Code[3].Imm)
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder("fwd")
	b.Jmp("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p := b.MustBuild()
	if p.Code[0].Imm != 2 {
		t.Errorf("jmp target = %d, want 2", p.Code[0].Imm)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("missing")
	if _, err := b.Build(); err == nil {
		t.Errorf("undefined label should fail")
	}
	b2 := NewBuilder("dup")
	b2.Label("x")
	b2.Label("x")
	if _, err := b2.Build(); err == nil {
		t.Errorf("duplicate label should fail")
	}
}

func TestThreadLoopSum(t *testing.T) {
	// Sum 1..10 into r3.
	b := NewBuilder("sum")
	b.Li(R(1), 1).Li(R(2), 11).Li(R(3), 0)
	b.Label("loop")
	b.Add(R(3), R(3), R(1))
	b.Addi(R(1), R(1), 1)
	b.Bne(R(1), R(2), "loop")
	b.Halt()
	th := &Thread{Prog: b.MustBuild()}
	if err := th.Run(NewFlatMemory(), 1000); err != nil {
		t.Fatal(err)
	}
	if th.Regs[3] != 55 {
		t.Errorf("sum = %d, want 55", th.Regs[3])
	}
	if !th.Halted {
		t.Errorf("thread should be halted")
	}
}

func TestThreadMemoryAndAtomics(t *testing.T) {
	b := NewBuilder("mem")
	b.Li(R(1), 0x100)
	b.Li(R(2), 42)
	b.St(R(2), R(1), 0)
	b.Ld(R(3), R(1), 0)
	b.Li(R(4), 8)
	b.AmoAdd(R(5), R(4), R(1), 0, 0) // r5=42, mem=50
	b.Li(R(6), 99)
	b.AmoSwap(R(7), R(6), R(1), 0, 0) // r7=50, mem=99
	b.Li(R(8), 1)
	b.Mov(R(9), R(6))             // expected 99
	b.Cas(R(9), R(8), R(1), 0, 0) // success: mem=1, r9=99
	b.Li(R(10), 77)
	b.Cas(R(10), R(8), R(1), 0, 0) // fail: r10=1, mem stays 1
	b.Halt()
	mem := NewFlatMemory()
	th := &Thread{Prog: b.MustBuild()}
	if err := th.Run(mem, 1000); err != nil {
		t.Fatal(err)
	}
	if th.Regs[3] != 42 || th.Regs[5] != 42 || th.Regs[7] != 50 || th.Regs[9] != 99 || th.Regs[10] != 1 {
		t.Errorf("regs = %v", th.Regs[:11])
	}
	if got := mem.Load(0x100); got != 1 {
		t.Errorf("mem = %d, want 1", got)
	}
}

func TestThreadInputs(t *testing.T) {
	b := NewBuilder("in")
	b.In(R(1)).In(R(2)).Halt()
	th := &Thread{Prog: b.MustBuild(), Inputs: []uint64{7, 9}}
	if err := th.Run(NewFlatMemory(), 10); err != nil {
		t.Fatal(err)
	}
	if th.Regs[1] != 7 || th.Regs[2] != 9 {
		t.Errorf("inputs = %d,%d", th.Regs[1], th.Regs[2])
	}
	th2 := &Thread{Prog: th.Prog}
	if err := th2.Run(NewFlatMemory(), 10); err != ErrOutOfInput {
		t.Errorf("want ErrOutOfInput, got %v", err)
	}
}

func TestThreadPCOutOfRange(t *testing.T) {
	b := NewBuilder("fall")
	b.Nop()
	th := &Thread{Prog: b.MustBuild()}
	if err := th.Step(NewFlatMemory()); err != nil {
		t.Fatal(err)
	}
	if err := th.Step(NewFlatMemory()); err == nil {
		t.Errorf("PC past end should error")
	}
}

func TestThreadMaxSteps(t *testing.T) {
	b := NewBuilder("spin")
	b.Label("l")
	b.Jmp("l")
	th := &Thread{Prog: b.MustBuild()}
	if err := th.Run(NewFlatMemory(), 100); err == nil {
		t.Errorf("infinite loop should hit step bound")
	}
}

func TestR0Invariant(t *testing.T) {
	b := NewBuilder("r0")
	b.Li(R(0), 123).Addi(R(1), R(0), 5).Halt()
	th := &Thread{Prog: b.MustBuild()}
	if err := th.Run(NewFlatMemory(), 10); err != nil {
		t.Fatal(err)
	}
	if th.Regs[0] != 0 || th.Regs[1] != 5 {
		t.Errorf("r0=%d r1=%d", th.Regs[0], th.Regs[1])
	}
}

func TestInstrString(t *testing.T) {
	checks := map[string]Instr{
		"ld r1, 8(r2)":         {Op: LD, Rd: 1, Rs1: 2, Imm: 8},
		"st r3, 0(r4)":         {Op: ST, Rs1: 4, Rs2: 3},
		"ld.acq r1, 0(r2)":     {Op: LD, Rd: 1, Rs1: 2, Flags: FlagAcquire},
		"st.rel r3, 0(r4)":     {Op: ST, Rs1: 4, Rs2: 3, Flags: FlagRelease},
		"beq r1, r2, @7":       {Op: BEQ, Rs1: 1, Rs2: 2, Imm: 7},
		"li r5, -3":            {Op: LI, Rd: 5, Imm: -3},
		"amoadd r1, r2, 0(r3)": {Op: AMOADD, Rd: 1, Rs2: 2, Rs1: 3},
		"fence":                {Op: FENCE},
		"jmp @4":               {Op: JMP, Imm: 4},
		"in r9":                {Op: IN, Rd: 9},
		"add r1, r2, r3":       {Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		"addi r1, r2, 9":       {Op: ADDI, Rd: 1, Rs1: 2, Imm: 9},
	}
	for want, ins := range checks {
		if got := ins.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Errorf("unknown op should render numerically")
	}
}

func TestFlatMemorySnapshot(t *testing.T) {
	m := NewFlatMemory()
	m.Store(0x10, 5)
	m.Store(0x18, 0) // zero values dropped from snapshot
	m.Store(0x13, 7) // unaligned rounds down to 0x10
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0x10] != 7 {
		t.Errorf("snapshot = %v", snap)
	}
}
