package isa

import "fmt"

// Builder assembles a Program with symbolic labels. Branch and jump
// targets reference labels that may be defined before or after use;
// Build resolves them to absolute instruction indexes.
//
// The zero value is not usable; call NewBuilder.
type Builder struct {
	name   string
	code   []Instr
	labels map[string]int
	fixups []fixup
	err    error
}

type fixup struct {
	at    int // instruction index whose Imm needs the label's address
	label string
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

// Label defines a label at the current position. Redefinition is an error.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("label %q redefined", name)
		return
	}
	b.labels[name] = len(b.code)
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("isa: %s", fmt.Sprintf(format, args...))
	}
}

func (b *Builder) emit(i Instr) *Builder {
	b.code = append(b.code, i)
	return b
}

func (b *Builder) emitBranch(op Op, rs1, rs2 Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	return b.emit(Instr{Op: op, Rs1: rs1, Rs2: rs2})
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: NOP}) }

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: ADD, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SUB, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: MUL, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: AND, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OR, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: XOR, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sll emits rd = rs1 << rs2.
func (b *Builder) Sll(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SLL, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Srl emits rd = rs1 >> rs2.
func (b *Builder) Srl(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SRL, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Slt emits rd = (rs1 < rs2) signed.
func (b *Builder) Slt(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SLT, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sltu emits rd = (rs1 < rs2) unsigned.
func (b *Builder) Sltu(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SLTU, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instr{Op: ADDI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instr{Op: ANDI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instr{Op: ORI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instr{Op: XORI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slli emits rd = rs1 << imm.
func (b *Builder) Slli(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instr{Op: SLLI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Srli emits rd = rs1 >> imm.
func (b *Builder) Srli(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instr{Op: SRLI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slti emits rd = (rs1 < imm) signed.
func (b *Builder) Slti(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instr{Op: SLTI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li emits rd = imm.
func (b *Builder) Li(rd Reg, imm int64) *Builder {
	return b.emit(Instr{Op: LI, Rd: rd, Imm: imm})
}

// Mov emits rd = rs.
func (b *Builder) Mov(rd, rs Reg) *Builder { return b.Addi(rd, rs, 0) }

// Ld emits rd = M[rs1+off].
func (b *Builder) Ld(rd, rs1 Reg, off int64) *Builder {
	return b.emit(Instr{Op: LD, Rd: rd, Rs1: rs1, Imm: off})
}

// LdAcq emits an acquire load.
func (b *Builder) LdAcq(rd, rs1 Reg, off int64) *Builder {
	return b.emit(Instr{Op: LD, Rd: rd, Rs1: rs1, Imm: off, Flags: FlagAcquire})
}

// St emits M[rs1+off] = rs2.
func (b *Builder) St(rs2, rs1 Reg, off int64) *Builder {
	return b.emit(Instr{Op: ST, Rs1: rs1, Rs2: rs2, Imm: off})
}

// StRel emits a release store.
func (b *Builder) StRel(rs2, rs1 Reg, off int64) *Builder {
	return b.emit(Instr{Op: ST, Rs1: rs1, Rs2: rs2, Imm: off, Flags: FlagRelease})
}

// AmoAdd emits rd = M[rs1+off]; M[rs1+off] += rs2.
func (b *Builder) AmoAdd(rd, rs2, rs1 Reg, off int64, flags Flags) *Builder {
	return b.emit(Instr{Op: AMOADD, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: off, Flags: flags})
}

// AmoSwap emits rd = M[rs1+off]; M[rs1+off] = rs2.
func (b *Builder) AmoSwap(rd, rs2, rs1 Reg, off int64, flags Flags) *Builder {
	return b.emit(Instr{Op: AMOSWAP, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: off, Flags: flags})
}

// Cas emits: if M[rs1+off] == rd then M[rs1+off] = rs2; rd = old value.
func (b *Builder) Cas(rd, rs2, rs1 Reg, off int64, flags Flags) *Builder {
	return b.emit(Instr{Op: CAS, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: off, Flags: flags})
}

// Fence emits a full memory fence.
func (b *Builder) Fence() *Builder { return b.emit(Instr{Op: FENCE}) }

// Beq emits a branch to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(BEQ, rs1, rs2, label)
}

// Bne emits a branch to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(BNE, rs1, rs2, label)
}

// Blt emits a branch to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(BLT, rs1, rs2, label)
}

// Bge emits a branch to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(BGE, rs1, rs2, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	return b.emit(Instr{Op: JMP})
}

// In emits rd = next external input value.
func (b *Builder) In(rd Reg) *Builder { return b.emit(Instr{Op: IN, Rd: rd}) }

// Halt emits a HALT.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: HALT}) }

// Build resolves labels and returns the finished program.
func (b *Builder) Build() (Program, error) {
	if b.err != nil {
		return Program{}, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return Program{}, fmt.Errorf("isa: undefined label %q", f.label)
		}
		b.code[f.at].Imm = int64(target)
	}
	code := make([]Instr, len(b.code))
	copy(code, b.code)
	return Program{Name: b.name, Code: code}, nil
}

// MustBuild is Build that panics on error; for tests and static kernels.
func (b *Builder) MustBuild() Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
