// Package isa defines the mini RISC instruction set executed by the
// simulated multicore and by the deterministic replayer.
//
// The ISA is deliberately small but complete enough to express the
// SPLASH-2-like kernels used in the paper's evaluation: 64-bit integer
// ALU operations, 8-byte loads and stores with optional acquire/release
// ordering flags, atomic read-modify-writes (AMOADD, AMOSWAP, CAS), a
// full memory fence, conditional branches, an external-input
// instruction, and HALT. Register R0 is hardwired to zero.
package isa

import "fmt"

// NumRegs is the number of architectural integer registers per core.
const NumRegs = 32

// WordSize is the size in bytes of a memory access. All loads, stores
// and atomics access one naturally-aligned 8-byte word.
const WordSize = 8

// Reg names an architectural register. R0 reads as zero and ignores writes.
type Reg uint8

// R returns the i'th register and panics if i is out of range. It keeps
// kernel-building code terse.
func R(i int) Reg {
	if i < 0 || i >= NumRegs {
		panic(fmt.Sprintf("isa: register %d out of range", i))
	}
	return Reg(i)
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. The zero value is NOP so that a zeroed Instr is harmless.
const (
	NOP Op = iota

	// ALU register-register.
	ADD
	SUB
	MUL
	AND
	OR
	XOR
	SLL
	SRL
	SLT // set-less-than, signed
	SLTU

	// ALU register-immediate (Imm is the second operand).
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SLTI
	LI // Rd = Imm (full 64-bit immediate)

	// Memory. LD: Rd = M[Rs1+Imm]. ST: M[Rs1+Imm] = Rs2.
	LD
	ST

	// Atomics; address is Rs1+Imm; all are both a load and a store.
	// AMOADD:  Rd = old; M[addr] = old + Rs2
	// AMOSWAP: Rd = old; M[addr] = Rs2
	// CAS:     if old == Rd then M[addr] = Rs2; Rd = old
	AMOADD
	AMOSWAP
	CAS

	// FENCE orders all earlier memory operations before all later ones.
	FENCE

	// Branches compare Rs1 with Rs2 and jump to the absolute
	// instruction index in Imm when the condition holds.
	BEQ
	BNE
	BLT // signed
	BGE // signed

	// JMP unconditionally jumps to the absolute instruction index in Imm.
	JMP

	// IN reads the next value from the core's external input stream
	// into Rd. Inputs are a recorded source of nondeterminism.
	IN

	// HALT stops the hardware thread.
	HALT

	numOps
)

// Flags carry memory-ordering semantics on loads, stores and atomics.
type Flags uint8

const (
	// FlagAcquire: no later memory operation may perform before this one.
	FlagAcquire Flags = 1 << iota
	// FlagRelease: this operation may not perform before all earlier ones.
	FlagRelease
)

// Instr is one decoded instruction.
type Instr struct {
	Op    Op
	Rd    Reg
	Rs1   Reg
	Rs2   Reg
	Imm   int64
	Flags Flags
}

// IsMem reports whether the instruction accesses memory (has an address).
func (i Instr) IsMem() bool {
	switch i.Op {
	case LD, ST, AMOADD, AMOSWAP, CAS:
		return true
	}
	return false
}

// IsLoad reports whether the instruction reads memory.
func (i Instr) IsLoad() bool {
	switch i.Op {
	case LD, AMOADD, AMOSWAP, CAS:
		return true
	}
	return false
}

// IsStore reports whether the instruction may write memory. CAS counts
// as a store even though a failing compare writes nothing: it still
// requires exclusive ownership of the line.
func (i Instr) IsStore() bool {
	switch i.Op {
	case ST, AMOADD, AMOSWAP, CAS:
		return true
	}
	return false
}

// IsAtomic reports whether the instruction is an atomic read-modify-write.
func (i Instr) IsAtomic() bool {
	switch i.Op {
	case AMOADD, AMOSWAP, CAS:
		return true
	}
	return false
}

// IsBranch reports whether the instruction is a conditional branch.
func (i Instr) IsBranch() bool {
	switch i.Op {
	case BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// WritesReg reports whether the instruction writes a destination register.
func (i Instr) WritesReg() bool {
	switch i.Op {
	case ADD, SUB, MUL, AND, OR, XOR, SLL, SRL, SLT, SLTU,
		ADDI, ANDI, ORI, XORI, SLLI, SRLI, SLTI, LI,
		LD, AMOADD, AMOSWAP, CAS, IN:
		return i.Rd != 0
	}
	return false
}

// ReadsRs1 reports whether Rs1 is a source operand.
func (i Instr) ReadsRs1() bool {
	switch i.Op {
	case NOP, LI, JMP, IN, HALT, FENCE:
		return false
	}
	return true
}

// ReadsRs2 reports whether Rs2 is a source operand.
func (i Instr) ReadsRs2() bool {
	switch i.Op {
	case ADD, SUB, MUL, AND, OR, XOR, SLL, SRL, SLT, SLTU,
		ST, AMOADD, AMOSWAP, CAS,
		BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// ReadsRd reports whether the architectural Rd is also a source (CAS
// uses Rd as the expected value).
func (i Instr) ReadsRd() bool { return i.Op == CAS }

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", AND: "and", OR: "or",
	XOR: "xor", SLL: "sll", SRL: "srl", SLT: "slt", SLTU: "sltu",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLLI: "slli",
	SRLI: "srli", SLTI: "slti", LI: "li", LD: "ld", ST: "st",
	AMOADD: "amoadd", AMOSWAP: "amoswap", CAS: "cas", FENCE: "fence",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", JMP: "jmp",
	IN: "in", HALT: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// String renders the instruction in a readable assembly-like form.
func (i Instr) String() string {
	flags := ""
	if i.Flags&FlagAcquire != 0 {
		flags += ".acq"
	}
	if i.Flags&FlagRelease != 0 {
		flags += ".rel"
	}
	switch i.Op {
	case NOP, FENCE, HALT:
		return i.Op.String() + flags
	case LI:
		return fmt.Sprintf("li%s r%d, %d", flags, i.Rd, i.Imm)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SLTI:
		return fmt.Sprintf("%s%s r%d, r%d, %d", i.Op, flags, i.Rd, i.Rs1, i.Imm)
	case LD:
		return fmt.Sprintf("ld%s r%d, %d(r%d)", flags, i.Rd, i.Imm, i.Rs1)
	case ST:
		return fmt.Sprintf("st%s r%d, %d(r%d)", flags, i.Rs2, i.Imm, i.Rs1)
	case AMOADD, AMOSWAP, CAS:
		return fmt.Sprintf("%s%s r%d, r%d, %d(r%d)", i.Op, flags, i.Rd, i.Rs2, i.Imm, i.Rs1)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s r%d, r%d, @%d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case JMP:
		return fmt.Sprintf("jmp @%d", i.Imm)
	case IN:
		return fmt.Sprintf("in r%d", i.Rd)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// Program is a fully-resolved instruction sequence for one hardware thread.
type Program struct {
	Name string
	Code []Instr
}
