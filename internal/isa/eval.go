package isa

import "fmt"

// EvalALU computes the result of a register-writing non-memory
// instruction given its source operand values. For immediate forms s2
// is ignored and the immediate is taken from the instruction.
func EvalALU(ins Instr, s1, s2 uint64) uint64 {
	switch ins.Op {
	case ADD:
		return s1 + s2
	case SUB:
		return s1 - s2
	case MUL:
		return s1 * s2
	case AND:
		return s1 & s2
	case OR:
		return s1 | s2
	case XOR:
		return s1 ^ s2
	case SLL:
		return s1 << (s2 & 63)
	case SRL:
		return s1 >> (s2 & 63)
	case SLT:
		if int64(s1) < int64(s2) {
			return 1
		}
		return 0
	case SLTU:
		if s1 < s2 {
			return 1
		}
		return 0
	case ADDI:
		return s1 + uint64(ins.Imm)
	case ANDI:
		return s1 & uint64(ins.Imm)
	case ORI:
		return s1 | uint64(ins.Imm)
	case XORI:
		return s1 ^ uint64(ins.Imm)
	case SLLI:
		return s1 << (uint64(ins.Imm) & 63)
	case SRLI:
		return s1 >> (uint64(ins.Imm) & 63)
	case SLTI:
		if int64(s1) < ins.Imm {
			return 1
		}
		return 0
	case LI:
		return uint64(ins.Imm)
	}
	panic(fmt.Sprintf("isa: EvalALU on non-ALU instruction %v", ins))
}

// BranchTaken reports whether a conditional branch with source values
// s1 and s2 is taken.
func BranchTaken(ins Instr, s1, s2 uint64) bool {
	switch ins.Op {
	case BEQ:
		return s1 == s2
	case BNE:
		return s1 != s2
	case BLT:
		return int64(s1) < int64(s2)
	case BGE:
		return int64(s1) >= int64(s2)
	}
	panic(fmt.Sprintf("isa: BranchTaken on non-branch instruction %v", ins))
}

// EffAddr computes the effective address of a memory instruction.
func EffAddr(ins Instr, s1 uint64) uint64 {
	return s1 + uint64(ins.Imm)
}

// AmoApply computes the effect of an atomic read-modify-write on the
// old memory value. rs2 is the operand register value and rd the
// architectural Rd value (the expected value, used only by CAS). It
// returns the new memory value and whether the write takes effect; the
// value loaded into Rd is always old.
func AmoApply(ins Instr, old, rs2, rd uint64) (newVal uint64, write bool) {
	switch ins.Op {
	case AMOADD:
		return old + rs2, true
	case AMOSWAP:
		return rs2, true
	case CAS:
		if old == rd {
			return rs2, true
		}
		return old, false
	}
	panic(fmt.Sprintf("isa: AmoApply on non-atomic instruction %v", ins))
}
