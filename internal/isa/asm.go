package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse assembles a textual program into a Program. The syntax is one
// instruction or label per line:
//
//	; comments run to end of line (also # and //)
//	start:                      ; a label
//	    li      r10, 0x100
//	    ld      r3, 8(r10)      ; r3 = M[r10+8]
//	    ld.acq  r4, 0(r10)      ; acquire load
//	    st      r3, 0(r10)      ; M[r10+0] = r3
//	    st.rel  r3, 0(r10)      ; release store
//	    add     r5, r3, r4
//	    addi    r5, r5, -1
//	    amoadd  r6, r4, 0(r10)  ; r6 = old; M += r4
//	    amoswap r6, r4, 0(r10)
//	    cas     r6, r4, 0(r10)  ; if old == r6 then M = r4; r6 = old
//	    fence
//	    beq     r3, r0, start
//	    jmp     start
//	    in      r7
//	    halt
//
// Atomics accept .acq/.rel suffixes like loads and stores. Immediates
// are decimal or 0x-hexadecimal, possibly negative.
func Parse(name, source string) (Program, error) {
	b := NewBuilder(name)
	for lineNo, raw := range strings.Split(source, "\n") {
		line, err := parseLine(b, raw)
		if err != nil {
			return Program{}, fmt.Errorf("%s:%d: %w (in %q)", name, lineNo+1, err, strings.TrimSpace(raw))
		}
		_ = line
	}
	return b.Build()
}

// MustParse is Parse that panics on error, for static programs.
func MustParse(name, source string) Program {
	p, err := Parse(name, source)
	if err != nil {
		panic(err)
	}
	return p
}

func parseLine(b *Builder, raw string) (bool, error) {
	line := raw
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return false, nil
	}
	// Labels (possibly followed by an instruction on the same line).
	if i := strings.Index(line, ":"); i >= 0 {
		label := strings.TrimSpace(line[:i])
		if !validLabel(label) {
			return false, fmt.Errorf("invalid label %q", label)
		}
		b.Label(label)
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return true, nil
		}
	}

	fields := strings.Fields(line)
	mnemonic := strings.ToLower(fields[0])
	operands := splitOperands(strings.TrimSpace(strings.TrimPrefix(line, fields[0])))

	op := mnemonic
	var flags Flags
	for _, suffix := range strings.Split(mnemonic, ".")[1:] {
		switch suffix {
		case "acq":
			flags |= FlagAcquire
		case "rel":
			flags |= FlagRelease
		default:
			return false, fmt.Errorf("unknown suffix %q", suffix)
		}
	}
	op = strings.Split(mnemonic, ".")[0]
	return true, emit(b, op, flags, operands)
}

func emit(b *Builder, op string, flags Flags, args []string) error {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	switch op {
	case "nop":
		if err := need(0); err != nil {
			return err
		}
		b.Nop()
	case "fence":
		if err := need(0); err != nil {
			return err
		}
		b.Fence()
	case "halt":
		if err := need(0); err != nil {
			return err
		}
		b.Halt()
	case "in":
		if err := need(1); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.In(rd)
	case "jmp":
		if err := need(1); err != nil {
			return err
		}
		if !validLabel(args[0]) {
			return fmt.Errorf("invalid jump target %q", args[0])
		}
		b.Jmp(args[0])
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		b.Li(rd, imm)
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Mov(rd, rs)
	case "add", "sub", "mul", "and", "or", "xor", "sll", "srl", "slt", "sltu":
		if err := need(3); err != nil {
			return err
		}
		rd, rs1, rs2, err := parse3Regs(args)
		if err != nil {
			return err
		}
		ops := map[string]Op{"add": ADD, "sub": SUB, "mul": MUL, "and": AND,
			"or": OR, "xor": XOR, "sll": SLL, "srl": SRL, "slt": SLT, "sltu": SLTU}
		b.emit(Instr{Op: ops[op], Rd: rd, Rs1: rs1, Rs2: rs2})
	case "addi", "andi", "ori", "xori", "slli", "srli", "slti":
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		ops := map[string]Op{"addi": ADDI, "andi": ANDI, "ori": ORI,
			"xori": XORI, "slli": SLLI, "srli": SRLI, "slti": SLTI}
		b.emit(Instr{Op: ops[op], Rd: rd, Rs1: rs1, Imm: imm})
	case "ld":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.emit(Instr{Op: LD, Rd: rd, Rs1: base, Imm: off, Flags: flags})
	case "st":
		if err := need(2); err != nil {
			return err
		}
		rs2, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.emit(Instr{Op: ST, Rs2: rs2, Rs1: base, Imm: off, Flags: flags})
	case "amoadd", "amoswap", "cas":
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		off, base, err := parseMem(args[2])
		if err != nil {
			return err
		}
		ops := map[string]Op{"amoadd": AMOADD, "amoswap": AMOSWAP, "cas": CAS}
		b.emit(Instr{Op: ops[op], Rd: rd, Rs2: rs2, Rs1: base, Imm: off, Flags: flags})
	case "beq", "bne", "blt", "bge":
		if err := need(3); err != nil {
			return err
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		if !validLabel(args[2]) {
			return fmt.Errorf("invalid branch target %q", args[2])
		}
		ops := map[string]Op{"beq": BEQ, "bne": BNE, "blt": BLT, "bge": BGE}
		b.emitBranch(ops[op], rs1, rs2, args[2])
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	if flags != 0 {
		switch op {
		case "ld", "st", "amoadd", "amoswap", "cas":
		default:
			return fmt.Errorf("%s does not take .acq/.rel", op)
		}
	}
	return nil
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (Reg, error) {
	if !strings.HasPrefix(strings.ToLower(s), "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parse3Regs(args []string) (rd, rs1, rs2 Reg, err error) {
	if rd, err = parseReg(args[0]); err != nil {
		return
	}
	if rs1, err = parseReg(args[1]); err != nil {
		return
	}
	rs2, err = parseReg(args[2])
	return
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "off(rN)".
func parseMem(s string) (off int64, base Reg, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("expected off(reg), got %q", s)
	}
	if open > 0 {
		if off, err = parseImm(s[:open]); err != nil {
			return 0, 0, err
		}
	}
	base, err = parseReg(s[open+1 : len(s)-1])
	return off, base, err
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == '.', r == '-':
		default:
			return false
		}
	}
	return true
}
