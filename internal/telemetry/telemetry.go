// Package telemetry is the measurement substrate of the simulator: a
// metrics registry (named counters, gauges, and log2-bucketed
// histograms, sharded per core so concurrent recordings under
// `rrbench -j` do not contend) plus a cycle-stamped structured event
// tracer that exports Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto.
//
// Overhead rules, in order of importance:
//
//  1. Disabled telemetry is free. Every metric handle and the tracer
//     are nil-safe: methods on a nil *Counter/*Gauge/*Histogram/*Tracer
//     return immediately, so instrumented code never branches on an
//     "enabled" flag — it simply holds nil handles. The nil check is a
//     single perfectly-predicted branch.
//  2. Enabled metrics never allocate on the hot path. Counter.Add,
//     Gauge.Set and Histogram.Observe are one or two atomic operations
//     on a pre-resolved, cache-line-padded shard slot. Handle
//     resolution (Registry.Counter etc.) happens once at setup.
//  3. Telemetry observes and never steers. No instrumented component
//     reads a telemetry value to make a decision, so simulation output
//     is byte-identical with telemetry on or off (tested).
//
// The registry is aggregated with Snapshot, rendered as a sorted text
// table (WriteText, via stats.Table) or JSON (WriteJSON).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"relaxreplay/internal/stats"
)

// DefaultSampleEvery is the default cycle-sampling period for the
// time-series counter tracks the machine emits into the tracer.
const DefaultSampleEvery = 1024

// Options configures a Telemetry instance.
type Options struct {
	// Shards is the number of independent slots per metric (rounded up
	// to a power of two; typically the simulated core count). Shard
	// indices passed to Add/Set/Observe are masked, so any non-negative
	// index is safe.
	Shards int
	// Trace enables the structured event tracer.
	Trace bool
	// SampleEvery is the cycle period of the sampled counter tracks
	// (ROB/MSHR occupancy, ring queue depth, CISN progress). 0 selects
	// DefaultSampleEvery.
	SampleEvery uint64
}

// Telemetry bundles the registry and (optionally) the tracer. A nil
// *Telemetry is the disabled state: Registry() and Tracer() return nil,
// and every metric handle obtained from them is a no-op.
type Telemetry struct {
	reg         *Registry
	tracer      *Tracer
	sampleEvery uint64
}

// New builds an enabled Telemetry instance.
func New(o Options) *Telemetry {
	t := &Telemetry{reg: NewRegistry(o.Shards), sampleEvery: o.SampleEvery}
	if t.sampleEvery == 0 {
		t.sampleEvery = DefaultSampleEvery
	}
	if o.Trace {
		t.tracer = NewTracer(o.Shards)
	}
	return t
}

// Registry returns the metrics registry (nil when t is nil).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Tracer returns the event tracer (nil when t is nil or tracing is
// disabled).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// SampleEvery returns the cycle-sampling period (0 when t is nil,
// meaning "never sample").
func (t *Telemetry) SampleEvery() uint64 {
	if t == nil {
		return 0
	}
	return t.sampleEvery
}

// pow2 rounds n up to a power of two, minimum 1.
func pow2(n int) int {
	if n < 1 {
		n = 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Registry holds the named metrics. Handle resolution takes a lock;
// the handles themselves are lock-free.
type Registry struct {
	shards int // power of two
	mu     sync.Mutex
	byName map[string]any // *Counter | *Gauge | *Histogram
}

// NewRegistry builds a registry whose metrics have the given number of
// shards (rounded up to a power of two).
func NewRegistry(shards int) *Registry {
	return &Registry{shards: pow2(shards), byName: make(map[string]any)}
}

// Counter returns the named counter, creating it on first use. Safe
// for concurrent callers; nil-safe (a nil registry returns a nil
// handle, which is itself a no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered with a different type", name))
		}
		return c
	}
	c := &Counter{name: name, shards: make([]padCell, r.shards), mask: uint32(r.shards - 1)}
	r.byName[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered with a different type", name))
		}
		return g
	}
	g := &Gauge{name: name, shards: make([]gaugeCell, r.shards), mask: uint32(r.shards - 1)}
	r.byName[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Values are bucketed by log2: bucket b counts values in
// [2^(b-1), 2^b), bucket 0 counts zeros.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered with a different type", name))
		}
		return h
	}
	h := &Histogram{name: name, shards: make([]histCell, r.shards), mask: uint32(r.shards - 1)}
	r.byName[name] = h
	return h
}

// padCell is one cache-line-padded counter slot.
type padCell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing, sharded counter.
type Counter struct {
	name   string
	shards []padCell
	mask   uint32
}

// Add adds n to the counter on the given shard (typically the core
// id). Nil-safe and allocation-free.
//
//rrlint:hotpath
func (c *Counter) Add(shard int, n uint64) {
	if c == nil {
		return
	}
	c.shards[uint32(shard)&c.mask].v.Add(n)
}

// Inc adds one.
//
//rrlint:hotpath
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value returns the total over all shards.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var n uint64
	for i := range c.shards {
		n += c.shards[i].v.Load()
	}
	return n
}

// gaugeCell holds the latest and the maximum value set on one shard.
type gaugeCell struct {
	last atomic.Uint64
	max  atomic.Uint64
	_    [48]byte
}

// Gauge is a sharded last-value (plus running maximum) metric.
type Gauge struct {
	name   string
	shards []gaugeCell
	mask   uint32
}

// Set records the gauge's current value on the given shard. Nil-safe
// and allocation-free.
//
//rrlint:hotpath
func (g *Gauge) Set(shard int, v uint64) {
	if g == nil {
		return
	}
	cell := &g.shards[uint32(shard)&g.mask]
	cell.last.Store(v)
	for {
		old := cell.max.Load()
		if v <= old || cell.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the sum of the last values over all shards.
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	var n uint64
	for i := range g.shards {
		n += g.shards[i].last.Load()
	}
	return n
}

// Max returns the largest value ever set on any shard.
func (g *Gauge) Max() uint64 {
	if g == nil {
		return 0
	}
	var m uint64
	for i := range g.shards {
		if v := g.shards[i].max.Load(); v > m {
			m = v
		}
	}
	return m
}

// HistBuckets is the number of log2 buckets: bucket 0 holds zeros,
// bucket b>0 holds values in [2^(b-1), 2^b).
const HistBuckets = 65

// histCell is one shard of a histogram.
type histCell struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Histogram is a sharded fixed-log2-bucket histogram.
type Histogram struct {
	name   string
	shards []histCell
	mask   uint32
}

// Observe records one value on the given shard. Nil-safe and
// allocation-free: three atomic adds.
//
//rrlint:hotpath
func (h *Histogram) Observe(shard int, v uint64) {
	if h == nil {
		return
	}
	cell := &h.shards[uint32(shard)&h.mask]
	cell.count.Add(1)
	cell.sum.Add(v)
	cell.buckets[bits.Len64(v)].Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.shards {
		n += h.shards[i].sum.Load()
	}
	return n
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// buckets returns the merged bucket counts.
func (h *Histogram) bucketTotals() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	if h == nil {
		return out
	}
	for i := range h.shards {
		for b := 0; b < HistBuckets; b++ {
			out[b] += h.shards[i].buckets[b].Load()
		}
	}
	return out
}

// quantile returns an upper bound for quantile q (0..1) from the log2
// buckets: the upper edge of the bucket containing the q-th sample.
func quantileUpper(buckets [HistBuckets]uint64, total uint64, q float64) uint64 {
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var seen uint64
	for b := 0; b < HistBuckets; b++ {
		seen += buckets[b]
		if seen > want {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1 // upper edge of [2^(b-1), 2^b)
		}
	}
	return 1<<63 - 1
}

// BucketSnapshot is one non-empty histogram bucket in a snapshot.
type BucketSnapshot struct {
	// Le is the inclusive upper bound of the bucket (2^b - 1).
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// MetricSnapshot is the aggregated state of one metric.
type MetricSnapshot struct {
	Name  string `json:"name"`
	Type  string `json:"type"` // "counter", "gauge" or "histogram"
	Value uint64 `json:"value,omitempty"`
	Max   uint64 `json:"max,omitempty"` // gauges: largest value ever set

	Count   uint64           `json:"count,omitempty"`
	Sum     uint64           `json:"sum,omitempty"`
	Mean    float64          `json:"mean,omitempty"`
	P50     uint64           `json:"p50,omitempty"` // log2-bucket upper bound
	P99     uint64           `json:"p99,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot aggregates every registered metric, sorted by name. Safe to
// call concurrently with metric updates (values are read atomically;
// a snapshot taken mid-update is simply slightly stale).
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.byName))
	metrics := make(map[string]any, len(r.byName))
	for n, m := range r.byName {
		names = append(names, n)
		metrics[n] = m
	}
	r.mu.Unlock()
	sort.Strings(names)

	out := make([]MetricSnapshot, 0, len(names))
	for _, n := range names {
		switch m := metrics[n].(type) {
		case *Counter:
			out = append(out, MetricSnapshot{Name: n, Type: "counter", Value: m.Value()})
		case *Gauge:
			out = append(out, MetricSnapshot{Name: n, Type: "gauge", Value: m.Value(), Max: m.Max()})
		case *Histogram:
			buckets := m.bucketTotals()
			var total uint64
			var bs []BucketSnapshot
			for b, c := range buckets {
				total += c
				if c > 0 {
					le := uint64(0)
					if b > 0 {
						le = 1<<uint(b) - 1
					}
					bs = append(bs, BucketSnapshot{Le: le, Count: c})
				}
			}
			snap := MetricSnapshot{
				Name: n, Type: "histogram",
				Count: total, Sum: m.Sum(),
				P50: quantileUpper(buckets, total, 0.50), P99: quantileUpper(buckets, total, 0.99),
				Buckets: bs,
			}
			if total > 0 {
				snap.Mean = float64(snap.Sum) / float64(total)
			}
			out = append(out, snap)
		}
	}
	return out
}

// WriteText renders the sorted metrics report as a fixed-width table.
func (r *Registry) WriteText(w io.Writer) error {
	t := stats.NewTable("telemetry metrics", "metric", "type", "value", "count", "mean", "p50", "p99", "max")
	for _, m := range r.Snapshot() {
		switch m.Type {
		case "histogram":
			t.AddRow(m.Name, m.Type, fmt.Sprint(m.Sum), fmt.Sprint(m.Count),
				stats.F(m.Mean, 2), fmt.Sprint(m.P50), fmt.Sprint(m.P99), "")
		case "gauge":
			t.AddRow(m.Name, m.Type, fmt.Sprint(m.Value), "", "", "", "", fmt.Sprint(m.Max))
		default:
			t.AddRow(m.Name, m.Type, fmt.Sprint(m.Value), "", "", "", "", "")
		}
	}
	_, err := io.WriteString(w, t.String())
	return err
}

// WriteJSON writes the sorted metrics report as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}{Metrics: r.Snapshot()})
}
