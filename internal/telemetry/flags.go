package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// Flags is the standard telemetry CLI surface shared by the cmd/
// tools: -metrics, -trace and -pprof. Register binds the three flags
// on a FlagSet; after flag parsing, New builds the (possibly nil)
// Telemetry instance and Flush writes the requested output files.
type Flags struct {
	Metrics string // metrics report file; ".json" suffix selects JSON
	Trace   string // Chrome trace_event JSON file
	Pprof   string // net/http/pprof listen address
}

// Register binds the telemetry flags on fs (flag.CommandLine via
// flag.* if fs is nil).
func (f *Flags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Metrics, "metrics", "", "write a sorted metrics report to this file (.json for JSON)")
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event JSON file (open in chrome://tracing or Perfetto)")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// New starts pprof if requested and returns the Telemetry instance for
// the run — nil (the zero-overhead disabled state) when neither
// -metrics nor -trace was given. shards is typically the simulated
// core count.
func (f Flags) New(shards int) (*Telemetry, error) {
	if f.Pprof != "" {
		addr, err := StartPprof(f.Pprof)
		if err != nil {
			return nil, fmt.Errorf("telemetry: -pprof: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", addr)
	}
	if f.Metrics == "" && f.Trace == "" {
		return nil, nil
	}
	return New(Options{Shards: shards, Trace: f.Trace != ""}), nil
}

// Flush writes the metrics report and/or trace file selected by the
// flags. A nil Telemetry (telemetry disabled) flushes nothing.
func (f Flags) Flush(t *Telemetry) error {
	if t == nil {
		return nil
	}
	if f.Metrics != "" {
		write := t.Registry().WriteText
		if strings.HasSuffix(f.Metrics, ".json") {
			write = t.Registry().WriteJSON
		}
		if err := writeFile(f.Metrics, write); err != nil {
			return fmt.Errorf("telemetry: -metrics: %w", err)
		}
	}
	if f.Trace != "" {
		if err := writeFile(f.Trace, t.Tracer().WriteChrome); err != nil {
			return fmt.Errorf("telemetry: -trace: %w", err)
		}
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
