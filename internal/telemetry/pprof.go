package telemetry

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
)

// StartPprof starts an HTTP server exposing net/http/pprof on addr
// (e.g. "localhost:6060"; a ":0" port picks a free one). It returns
// the bound address. The server runs until the process exits.
func StartPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	//rrlint:allow goroleak -- debug endpoint lives for the process; operators kill it with the process
	go func() {
		// DefaultServeMux carries the pprof handlers registered by the
		// net/http/pprof import.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
