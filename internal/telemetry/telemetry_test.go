package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestNilTelemetryIsNoOp(t *testing.T) {
	var tel *Telemetry
	if tel.Registry() != nil {
		t.Fatal("nil Telemetry must return a nil Registry")
	}
	if tel.Tracer() != nil {
		t.Fatal("nil Telemetry must return a nil Tracer")
	}
	if tel.SampleEvery() != 0 {
		t.Fatal("nil Telemetry must report SampleEvery 0")
	}

	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil Registry must hand out nil handles")
	}
	// All nil-handle operations must be safe no-ops.
	c.Add(3, 7)
	c.Inc(0)
	g.Set(0, 9)
	h.Observe(1, 42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if h.Mean() != 0 {
		t.Fatal("nil histogram Mean must be 0")
	}
	if got := reg.Snapshot(); got != nil {
		t.Fatalf("nil Registry Snapshot = %v, want nil", got)
	}
}

func TestDisabledOptionsReturnNil(t *testing.T) {
	if tel := New(Options{}); tel == nil {
		t.Fatal("New must return a usable Telemetry even with zero Options")
	}
	tel := New(Options{Shards: 4})
	if tel.Tracer() != nil {
		t.Fatal("Tracer must be nil unless Options.Trace is set")
	}
	tel = New(Options{Shards: 4, Trace: true})
	if tel.Tracer() == nil {
		t.Fatal("Options.Trace must enable the tracer")
	}
	if tel.SampleEvery() != DefaultSampleEvery {
		t.Fatalf("SampleEvery = %d, want default %d", tel.SampleEvery(), DefaultSampleEvery)
	}
}

func TestCounter(t *testing.T) {
	reg := NewRegistry(4)
	c := reg.Counter("cpu.retired")
	c.Add(0, 5)
	c.Add(3, 2)
	c.Inc(1)
	// Shard indices beyond the shard count must wrap, not panic.
	c.Inc(1000)
	if got := c.Value(); got != 9 {
		t.Fatalf("Counter.Value = %d, want 9", got)
	}
	if c2 := reg.Counter("cpu.retired"); c2 != c {
		t.Fatal("Counter must return the same handle for the same name")
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry(2)
	g := reg.Gauge("rob.occupancy")
	g.Set(0, 12)
	if g.Value() != 12 || g.Max() != 12 {
		t.Fatalf("gauge after Set(12): value=%d max=%d", g.Value(), g.Max())
	}
	g.Set(1, 40)
	g.Set(0, 3)
	// Value sums the last value of each shard (per-core gauges report
	// the machine-wide total).
	if g.Value() != 43 {
		t.Fatalf("Gauge.Value = %d, want 3+40", g.Value())
	}
	if g.Max() != 40 {
		t.Fatalf("Gauge.Max = %d, want 40", g.Max())
	}
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry(4)
	h := reg.Histogram("chunk.size")
	vals := []uint64{0, 1, 2, 3, 4, 100, 4096}
	var sum uint64
	for i, v := range vals {
		h.Observe(i, v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(vals))
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %d, want %d", h.Sum(), sum)
	}
	want := float64(sum) / float64(len(vals))
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", h.Mean(), want)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry(1)
	reg.Counter("metric.a")
	defer func() {
		if recover() == nil {
			t.Fatal("registering metric.a as a Gauge after Counter must panic")
		}
	}()
	reg.Gauge("metric.a")
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	reg := NewRegistry(2)
	reg.Counter("z.last").Add(0, 1)
	reg.Gauge("a.first").Set(0, 7)
	reg.Histogram("m.middle").Observe(0, 3)

	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot has %d entries, want 3", len(snap))
	}
	names := make([]string, len(snap))
	for i, s := range snap {
		names[i] = s.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Snapshot not sorted by name: %v", names)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	reg := NewRegistry(2)
	reg.Counter("core.intervals").Add(0, 21)
	reg.Histogram("core.chunk_size").Observe(0, 512)

	var txt bytes.Buffer
	if err := reg.WriteText(&txt); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{"core.intervals", "core.chunk_size", "counter", "histogram"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, txt.String())
		}
	}

	var js bytes.Buffer
	if err := reg.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output does not decode: %v", err)
	}
	if len(decoded.Metrics) != 2 {
		t.Fatalf("WriteJSON decoded %d metrics, want 2", len(decoded.Metrics))
	}
}

// The hot-path operations must not allocate: they run per retired
// instruction and per coherence transaction.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry(8)
	c := reg.Counter("alloc.counter")
	g := reg.Gauge("alloc.gauge")
	h := reg.Histogram("alloc.hist")

	checks := []struct {
		name string
		f    func()
	}{
		{"Counter.Add", func() { c.Add(3, 2) }},
		{"Counter.Inc", func() { c.Inc(5) }},
		{"Gauge.Set", func() { g.Set(1, 17) }},
		{"Histogram.Observe", func() { h.Observe(2, 999) }},
		{"nil Counter.Add", func() { (*Counter)(nil).Add(0, 1) }},
		{"nil Histogram.Observe", func() { (*Histogram)(nil).Observe(0, 1) }},
	}
	for _, ck := range checks {
		if n := testing.AllocsPerRun(100, ck.f); n != 0 {
			t.Errorf("%s allocates %.0f times per call, want 0", ck.name, n)
		}
	}
}

// TestRegistryRace hammers one shared registry from many goroutines;
// run with -race this verifies the sharded counters are data-race free
// and that Snapshot can run concurrently with writers.
func TestRegistryRace(t *testing.T) {
	const workers = 8
	const iters = 2000
	reg := NewRegistry(workers)
	c := reg.Counter("race.counter")
	g := reg.Gauge("race.gauge")
	h := reg.Histogram("race.hist")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc(shard)
				g.Set(shard, uint64(i))
				h.Observe(shard, uint64(i%1024))
				if i%500 == 0 {
					reg.Snapshot() // concurrent reader
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Fatalf("racing counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("racing histogram count = %d, want %d", got, workers*iters)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry(8).Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(i&7, 1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry(16).Counter("bench.counter")
	b.ReportAllocs()
	var next uint32
	b.RunParallel(func(pb *testing.PB) {
		shard := int(next) & 15
		next++
		for pb.Next() {
			c.Add(shard, 1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry(8).Histogram("bench.hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(i&7, uint64(i))
	}
}

func BenchmarkDisabledCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(0, 1)
	}
}
