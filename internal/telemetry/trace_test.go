package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil Tracer must report Enabled() == false")
	}
	tr.Complete(0, 0, "cat", "x", 1, 2, nil)
	tr.Instant(0, 0, "cat", "x", 1, nil)
	tr.Counter(0, 0, "cat", "x", 1, 2)
	tr.NameProcess(0, "p")
	tr.NameThread(0, 0, "t")
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil Tracer Events = %v, want nil", evs)
	}
	if err := tr.WriteChrome(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteChrome on a nil Tracer must error")
	}
}

func TestTracerEventsDeterministicOrder(t *testing.T) {
	tr := NewTracer(4)
	// Insert deliberately out of time order and across shards.
	tr.Instant(PidRecord, 2, "core", "late", 500, nil)
	tr.Complete(PidRecord, 0, "core", "early", 10, 20, nil)
	tr.Counter(PidRecord, 1, "cpu", "rob[c1]", 10, 3)
	tr.NameProcess(PidRecord, "record machine") // metadata must sort first
	tr.NameThread(PidRecord, 2, "core 2")

	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	if evs[0].Ph != PhaseMetadata || evs[1].Ph != PhaseMetadata {
		t.Fatalf("metadata events must sort first, got phases %q %q", evs[0].Ph, evs[1].Ph)
	}
	for i := 3; i < len(evs); i++ {
		if evs[i-1].Ts > evs[i].Ts {
			t.Fatalf("events out of Ts order at %d: %d > %d", i, evs[i-1].Ts, evs[i].Ts)
		}
	}
	// Equal Ts breaks ties by pid then tid: "early" (tid 0) before the
	// counter sample (tid 1).
	if evs[2].Name != "early" || evs[3].Name != "rob[c1]" {
		t.Fatalf("tie-break order wrong: %q then %q", evs[2].Name, evs[3].Name)
	}
}

// TestTracerConcurrentInstants hammers one Tracer from many goroutines
// (run under -race in CI's race-short list) and checks that no event is
// lost: the per-shard buffers must serialize concurrent emitters.
func TestTracerConcurrentInstants(t *testing.T) {
	const goroutines = 8
	const perGoroutine = 200
	tr := NewTracer(4)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				switch i % 3 {
				case 0:
					tr.Instant(PidRecord, tid, "core", "terminate", uint64(i), nil)
				case 1:
					tr.Complete(PidRecord, tid, "core", "interval", uint64(i), uint64(i+5), nil)
				case 2:
					tr.Counter(PidRecord, tid, "cpu", "rob", uint64(i), uint64(tid))
				}
			}
		}(g)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != goroutines*perGoroutine {
		t.Fatalf("got %d events, want %d (concurrent emits dropped)", len(evs), goroutines*perGoroutine)
	}
	perTid := map[int]int{}
	for _, ev := range evs {
		perTid[ev.Tid]++
	}
	for g := 0; g < goroutines; g++ {
		if perTid[g] != perGoroutine {
			t.Fatalf("tid %d kept %d events, want %d", g, perTid[g], perGoroutine)
		}
	}
}

// TestWriteChromeDeterministicAcrossSchedules pins the regression that
// the serialized trace is independent of goroutine scheduling: two
// tracers fed the same logical workload from concurrently-racing
// goroutines (and with different shard counts, so shard assignment
// differs too) must serialize byte-identically.
func TestWriteChromeDeterministicAcrossSchedules(t *testing.T) {
	build := func(shards int) []byte {
		tr := NewTracer(shards)
		tr.NameProcess(PidRecord, "record machine")
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					ts := uint64(i*10 + tid)
					tr.Instant(PidRecord, tid, "core", "terminate", ts, map[string]any{"seq": i})
					tr.Complete(PidReplay, tid, "replay", "interval", ts, ts+4, nil)
				}
			}(g)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		return buf.Bytes()
	}
	first := build(1)
	for _, shards := range []int{2, 8} {
		if got := build(shards); !bytes.Equal(got, first) {
			t.Fatalf("trace JSON differs between %d-shard and 1-shard runs:\n%s\nvs\n%s",
				shards, got, first)
		}
	}
}

func TestCompleteClampsBackwardSpan(t *testing.T) {
	tr := NewTracer(1)
	tr.Complete(PidRecord, 0, "core", "interval", 100, 40, nil)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Dur != 0 || evs[0].Ts != 100 {
		t.Fatalf("backward span must clamp to zero duration, got %+v", evs[0])
	}
}

func TestWriteReadChromeRoundTrip(t *testing.T) {
	tr := NewTracer(2)
	tr.NameProcess(PidRecord, "record machine")
	tr.NameThread(PidRecord, 0, "core 0")
	tr.NameProcess(PidReplay, "replayer")
	tr.Complete(PidRecord, 0, "core", "interval", 0, 120, map[string]any{"cisn": 1, "instrs": 64})
	tr.Instant(PidRecord, 0, "coherence", "snooptable-evict", 60, map[string]any{"line": 4})
	tr.Counter(PidRecord, 0, "cpu", "rob[c0]", 64, 12)
	tr.Complete(PidReplay, 0, "replay", "interval", 0, 90, nil)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	got, err := ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadChrome on our own output: %v", err)
	}
	if len(got.TraceEvents) != 7 {
		t.Fatalf("round trip kept %d events, want 7", len(got.TraceEvents))
	}
	cats := got.Categories()
	want := []string{"coherence", "core", "cpu", "replay"}
	if len(cats) != len(want) {
		t.Fatalf("Categories = %v, want %v", cats, want)
	}
	for i := range want {
		if cats[i] != want[i] {
			t.Fatalf("Categories = %v, want %v", cats, want)
		}
	}
	// The counter sample must survive with its value arg intact.
	for _, ev := range got.TraceEvents {
		if ev.Ph == PhaseCounter {
			if v, ok := ev.Args["value"].(float64); !ok || v != 12 {
				t.Fatalf("counter value arg = %v, want 12", ev.Args["value"])
			}
		}
	}
}

func TestWriteChromeEmptyTracerEncodesArray(t *testing.T) {
	tr := NewTracer(1)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace must encode an empty array, got %s", buf.String())
	}
	if _, err := ReadChrome(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadChrome on an empty trace: %v", err)
	}
}

func TestReadChromeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"not json", `{`},
		{"unnamed event", `{"traceEvents":[{"ph":"i","ts":1,"pid":0,"tid":0}]}`},
		{"unknown phase", `{"traceEvents":[{"name":"x","ph":"Q","ts":1,"pid":0,"tid":0}]}`},
		{"counter without value", `{"traceEvents":[{"name":"x","ph":"C","ts":1,"pid":0,"tid":0}]}`},
	}
	for _, c := range cases {
		if _, err := ReadChrome(strings.NewReader(c.json)); err == nil {
			t.Errorf("ReadChrome accepted %s", c.name)
		}
	}
}
