package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// The tracer records cycle-stamped structured events and exports them
// in the Chrome trace_event JSON format ("JSON Object Format" with a
// traceEvents array), loadable in chrome://tracing and Perfetto.
// Timestamps are simulated cycles reported in the format's microsecond
// field, so one trace microsecond == one machine cycle.
//
// Process/thread mapping: pid PidRecord is the recorded machine and
// pid PidReplay the replayer; tid is the core id. Perfetto then shows
// one swim lane per core for each side.

// Trace event phase constants (the subset we emit).
const (
	PhaseComplete = "X" // duration event: Ts..Ts+Dur
	PhaseInstant  = "i" // point event
	PhaseCounter  = "C" // time-series sample
	PhaseMetadata = "M" // process/thread naming
)

// Pids used by the simulator's trace events.
const (
	PidRecord = 0 // the recorded (simulated) machine
	PidReplay = 1 // the replayer
)

// Event is one Chrome trace_event entry.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`

	seq uint64 // per-shard arrival order, for a stable export sort
}

// traceShard is one independently-locked event buffer.
type traceShard struct {
	mu     sync.Mutex
	events []Event
	seq    uint64
}

// Tracer collects events into per-shard buffers (sharded like the
// registry, typically by core id) so concurrent recordings do not
// contend on one lock. A nil *Tracer is a no-op.
type Tracer struct {
	shards []traceShard
	mask   uint32
}

// NewTracer builds a tracer with the given shard count (rounded up to
// a power of two).
func NewTracer(shards int) *Tracer {
	n := pow2(shards)
	return &Tracer{shards: make([]traceShard, n), mask: uint32(n - 1)}
}

// Enabled reports whether events will be kept (false on nil).
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) add(shard int, ev Event) {
	s := &t.shards[uint32(shard)&t.mask]
	s.mu.Lock()
	s.seq++
	ev.seq = s.seq
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Complete records a duration event spanning [start, end] cycles on
// (pid, tid). args may be nil.
func (t *Tracer) Complete(pid, tid int, cat, name string, start, end uint64, args map[string]any) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.add(tid, Event{Name: name, Cat: cat, Ph: PhaseComplete, Ts: start, Dur: end - start, Pid: pid, Tid: tid, Args: args})
}

// Instant records a point event at the given cycle. args may be nil.
func (t *Tracer) Instant(pid, tid int, cat, name string, cycle uint64, args map[string]any) {
	if t == nil {
		return
	}
	t.add(tid, Event{Name: name, Cat: cat, Ph: PhaseInstant, Ts: cycle, Pid: pid, Tid: tid, S: "t", Args: args})
}

// Counter records one sample of a named time series. Chrome groups
// counter tracks by (pid, name), so per-core series must carry the
// core in the name (e.g. "rob[c3]").
func (t *Tracer) Counter(pid, tid int, cat, name string, cycle uint64, value uint64) {
	if t == nil {
		return
	}
	t.add(tid, Event{Name: name, Cat: cat, Ph: PhaseCounter, Ts: cycle, Pid: pid, Tid: tid,
		Args: map[string]any{"value": value}})
}

// NameProcess emits the metadata event naming a pid.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.add(0, Event{Name: "process_name", Ph: PhaseMetadata, Pid: pid, Args: map[string]any{"name": name}})
}

// NameThread emits the metadata event naming a (pid, tid) lane.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.add(tid, Event{Name: "thread_name", Ph: PhaseMetadata, Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// Events returns every recorded event in a deterministic order:
// metadata first, then by (Ts, Pid, Tid, shard arrival order).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		am, bm := a.Ph == PhaseMetadata, b.Ph == PhaseMetadata
		if am != bm {
			return am
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.seq < b.seq
	})
	return out
}

// ChromeTrace is the trace_event JSON object format.
type ChromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
}

// WriteChrome serializes the trace in Chrome trace_event JSON Object
// Format. The event order is deterministic.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("telemetry: tracing not enabled")
	}
	events := t.Events()
	if events == nil {
		events = []Event{} // encode as [] rather than null
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ChromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// ReadChrome parses and validates a trace written by WriteChrome (or
// any trace in the JSON Object Format). It verifies the structural
// rules of the trace_event format: every event has a name and a known
// phase, and complete events carry a duration field that does not
// precede their start.
func ReadChrome(r io.Reader) (*ChromeTrace, error) {
	var tr ChromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("telemetry: decode chrome trace: %w", err)
	}
	for i := range tr.TraceEvents {
		ev := &tr.TraceEvents[i]
		if ev.Name == "" {
			return nil, fmt.Errorf("telemetry: event %d has no name", i)
		}
		switch ev.Ph {
		case PhaseComplete, PhaseInstant, PhaseCounter, PhaseMetadata:
		default:
			return nil, fmt.Errorf("telemetry: event %d (%q) has unsupported phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Ph == PhaseCounter {
			if _, ok := ev.Args["value"]; !ok {
				return nil, fmt.Errorf("telemetry: counter event %d (%q) has no value arg", i, ev.Name)
			}
		}
	}
	return &tr, nil
}

// Categories returns the distinct event categories present, sorted.
func (tr *ChromeTrace) Categories() []string {
	seen := map[string]bool{}
	for i := range tr.TraceEvents {
		if c := tr.TraceEvents[i].Cat; c != "" {
			seen[c] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
