package lint

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestSARIFShape pins the SARIF 2.1.0 surface GitHub code scanning
// requires: schema/version header, a driver with one rule per
// registered check, and results whose ruleId/ruleIndex agree with the
// rules array and whose regions carry the diagnostic positions.
func TestSARIFShape(t *testing.T) {
	dir := filepath.Join("testdata", "blockinglock")
	prog := loadFixture(t, dir)
	diags, err := Run(prog, []string{"blockinglock"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings to serialize")
	}

	out, err := SARIF(diags)
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("$schema missing")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "rrlint" {
		t.Errorf("driver name = %q, want rrlint", run.Tool.Driver.Name)
	}
	checks := Checks()
	if len(run.Tool.Driver.Rules) != len(checks) {
		t.Fatalf("got %d rules, want %d (one per registered check)", len(run.Tool.Driver.Rules), len(checks))
	}
	for i, c := range checks {
		if run.Tool.Driver.Rules[i].ID != c.Name {
			t.Errorf("rules[%d].id = %q, want %q", i, run.Tool.Driver.Rules[i].ID, c.Name)
		}
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(diags))
	}
	for i, r := range run.Results {
		d := diags[i]
		if r.RuleID != d.Check {
			t.Errorf("results[%d].ruleId = %q, want %q", i, r.RuleID, d.Check)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(checks) || checks[r.RuleIndex].Name != r.RuleID {
			t.Errorf("results[%d].ruleIndex = %d does not point at rule %q", i, r.RuleIndex, r.RuleID)
		}
		if r.Level != "error" {
			t.Errorf("results[%d].level = %q, want error", i, r.Level)
		}
		if r.Message.Text != d.Message {
			t.Errorf("results[%d] message mismatch: %q != %q", i, r.Message.Text, d.Message)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("results[%d]: %d locations, want 1", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || filepath.IsAbs(loc.ArtifactLocation.URI) && loc.ArtifactLocation.URI != filepath.ToSlash(d.File) {
			t.Errorf("results[%d] uri = %q", i, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine != d.Line || loc.Region.StartColumn != d.Col {
			t.Errorf("results[%d] region = %d:%d, want %d:%d", i, loc.Region.StartLine, loc.Region.StartColumn, d.Line, d.Col)
		}
	}
}

// TestSARIFEmpty: a clean run still yields a well-formed log with an
// empty (non-null) results array, which code scanning accepts as
// "no alerts".
func TestSARIFEmpty(t *testing.T) {
	out, err := SARIF(nil)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil {
		t.Errorf("empty run must still carry runs[0].results = []")
	}
}
