package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeObj resolves the object a call expression invokes (function,
// method or builtin), or nil when unresolvable (type errors, dynamic
// calls through function values are returned as their variable).
func calleeObj(pkg *Package, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fn]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fn.Sel]
	}
	return nil
}

// objPkgPath returns the import path of the object's package ("" for
// builtins and universe-scope objects).
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// pkgPathIs reports whether an import path names the given package:
// exactly, or as the final path element (so the check recognizes both
// "relaxreplay/internal/replaylog" and a testdata fixture's bare
// "replaylog").
func pkgPathIs(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// lastResultIsError reports whether the call's type is, or ends in, an
// error.
func lastResultIsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// rootIdent returns the base identifier of an lvalue-ish expression
// (x, x.f, x[i], *x all root at x), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// eachFuncBody visits every function body in the package: declared
// functions and methods (function literals are visited as part of
// their enclosing declaration's body). fn receives the declaration
// (for doc comments; nil for package-level var initializers) and the
// body.
func eachFuncBody(pkg *Package, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd, fd.Body)
			}
		}
	}
}

// fileHasDirective reports whether any comment in the file contains
// the given directive token (e.g. "rrlint:deterministic").
func fileHasDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, directive) {
				return true
			}
		}
	}
	return false
}
