package lint

// blockinglock: no blocking operation — net.Conn I/O, os.File.Sync,
// channel send/receive, a blocking select, time.Sleep, WaitGroup/Cond
// Wait — while a mutex is held, directly or through any call chain.
// A blocking call under a lock turns one slow peer (or one slow disk)
// into a convoy: every goroutine that needs the lock stalls behind the
// I/O, and in the rrnet server that means one stalled session
// head-of-line-blocks every tenant sharing the journal.
//
// The finding is reported in the frame that HOLDS the lock: at the
// blocking operation itself when direct, or at the call site whose
// callee's summary blocks. That makes the `//rrlint:allow
// blockinglock` placement meaningful — it sits where the lock is held
// (the site that owns the tradeoff), never inside a callee that
// blocks innocently for locked and unlocked callers alike. The
// repo's intentional exception is the group-commit fsync barrier
// under the rrnet journal lock (jmu): durability-before-ack is the
// protocol contract, and the annotation keeps it a visible, audited
// decision.

var blockinglockCheck = &Check{
	Name: "blockinglock",
	Doc:  "no blocking operation (conn I/O, fsync, channel op, sleep) reachable while a mutex is held",
	Run: func(pass *Pass) {
		facts := pass.Prog.Facts()
		for _, n := range facts.nodes {
			for _, bs := range n.blocks {
				if len(bs.held) == 0 {
					continue
				}
				pass.ReportPos(n.pkg, bs.pos,
					"blocking operation (%s) while holding %s", bs.kind, lockList(bs.held))
			}
			for _, cs := range n.calls {
				if len(cs.held) == 0 || len(cs.callee.sumBlocks) == 0 {
					continue
				}
				op := sortedBlocks(cs.callee.sumBlocks)[0]
				chain := op.kind
				if op.via != "" {
					chain += " via " + op.via
				}
				pass.ReportPos(n.pkg, cs.pos,
					"call to %s blocks (%s) while holding %s", cs.callee.name, chain, lockList(cs.held))
			}
		}
	},
}
