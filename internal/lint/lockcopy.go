package lint

import (
	"go/ast"
	"go/types"
)

// lockcopy: values holding locks or atomics travel by pointer, never
// by value. A copied sync.Mutex is an independent lock (mutual
// exclusion silently gone); a copied telemetry registry or padded
// atomic cell splits the counter in two, so half the increments
// vanish from the report. `go vet -copylocks` covers the mutex cases;
// this check extends the same rule to sync/atomic value types (the
// telemetry shard cells) and runs inside rrlint so CI has one gate.
//
// Flagged: by-value parameters and receivers, call arguments, plain
// variable copies, and range-value copies of any type that
// transitively contains a sync lock or a sync/atomic value type.
// Fresh composite literals are legal (no state exists to lose yet).

var lockcopyCheck = &Check{
	Name: "lockcopy",
	Doc:  "no by-value copies of types containing locks or atomics (mutexes, telemetry cells)",
	Run: func(pass *Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch v := n.(type) {
					case *ast.FuncDecl:
						checkFuncSig(pass, pkg, v.Recv, v.Type)
					case *ast.FuncLit:
						checkFuncSig(pass, pkg, nil, v.Type)
					case *ast.CallExpr:
						checkCallArgs(pass, pkg, v)
					case *ast.AssignStmt:
						checkAssignCopy(pass, pkg, v)
					case *ast.RangeStmt:
						if v.Value != nil {
							t := exprType(pkg, v.Value)
							if t == nil {
								// `for _, g := range xs` defines g, so the
								// ident lives in Defs, not Types.
								if id, ok := ast.Unparen(v.Value).(*ast.Ident); ok {
									if obj := pkg.Info.ObjectOf(id); obj != nil {
										t = obj.Type()
									}
								}
							}
							if t != nil && lockPath(t) != "" {
								pass.Report(pkg, v.Value, "range copies value containing %s by value (index into the container instead)", lockPath(t))
							}
						}
					}
					return true
				})
			}
		}
	},
}

func exprType(pkg *Package, e ast.Expr) types.Type {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

func checkFuncSig(pass *Pass, pkg *Package, recv *ast.FieldList, ft *ast.FuncType) {
	fields := []*ast.FieldList{recv, ft.Params}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			tv, ok := pkg.Info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if p := lockPath(tv.Type); p != "" {
				pass.Report(pkg, field.Type, "parameter passes %s by value (use a pointer)", p)
			}
		}
	}
}

func checkCallArgs(pass *Pass, pkg *Package, call *ast.CallExpr) {
	// A conversion is not a call; its "argument" is not copied into a
	// callee frame (and conversions of lock-free named types over
	// lock-bearing underlying types are impossible anyway).
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	for _, arg := range call.Args {
		arg = ast.Unparen(arg)
		if _, isLit := arg.(*ast.CompositeLit); isLit {
			continue // a fresh value has no lock state to lose
		}
		if t := exprType(pkg, arg); t != nil {
			if p := lockPath(t); p != "" {
				pass.Report(pkg, arg, "call copies %s by value (pass a pointer)", p)
			}
		}
	}
}

func checkAssignCopy(pass *Pass, pkg *Package, st *ast.AssignStmt) {
	for _, rhs := range st.Rhs {
		rhs = ast.Unparen(rhs)
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			// Copying an existing value: the dangerous forms. Fresh
			// composite literals and call results are initializations.
		default:
			continue
		}
		if t := exprType(pkg, rhs); t != nil {
			if p := lockPath(t); p != "" {
				pass.Report(pkg, rhs, "assignment copies %s by value (take a pointer)", p)
			}
		}
	}
}

// lockTypes are the sync and sync/atomic types whose values must not
// be copied once used.
var lockTypes = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.WaitGroup": true,
	"sync.Once": true, "sync.Cond": true, "sync.Map": true, "sync.Pool": true,
	"sync/atomic.Bool": true, "sync/atomic.Int32": true, "sync/atomic.Int64": true,
	"sync/atomic.Uint32": true, "sync/atomic.Uint64": true, "sync/atomic.Uintptr": true,
	"sync/atomic.Pointer": true, "sync/atomic.Value": true,
}

// lockPath returns a human-readable path to the first lock-bearing
// component of t ("" when none): e.g. "sync.Mutex" or
// "Registry.mu (sync.Mutex)".
func lockPath(t types.Type) string {
	return lockPathRec(t, make(map[types.Type]bool))
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			full := obj.Pkg().Path() + "." + obj.Name()
			if lockTypes[full] {
				return full
			}
		}
		if p := lockPathRec(named.Underlying(), seen); p != "" {
			if obj != nil {
				return obj.Name() + " (" + p + ")"
			}
			return p
		}
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPathRec(u.Field(i).Type(), seen); p != "" {
				return u.Field(i).Name() + "." + p
			}
		}
	case *types.Array:
		return lockPathRec(u.Elem(), seen)
	}
	return ""
}
