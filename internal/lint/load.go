package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Program is a loaded, parsed and type-checked set of packages from
// one module, in dependency (topological) order.
type Program struct {
	Fset   *token.FileSet
	Module string // module path from go.mod ("" when loading a bare tree)
	Root   string // module root directory
	Pkgs   []*Package

	byPath map[string]*Package

	// facts caches the cross-function call-graph analysis (built by
	// Facts on first use) so every check shares one build per load;
	// factBuilds counts builds for the share-once regression test.
	facts      *Facts
	factBuilds int
}

// Package is one parsed and type-checked package.
type Package struct {
	Prog    *Program
	Path    string // import path (module-relative for bare trees)
	Dir     string
	Name    string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Imports []string

	// TypeErrors collects type-checker complaints without aborting the
	// run: a package that fails to fully check still gets the syntactic
	// checks, and the caller decides whether errors are fatal.
	TypeErrors []error
}

// Lookup returns the loaded package with the given import path, or
// nil. Checks use it to find cross-package anchors (e.g. faultpoint
// locating the faultinject package).
func (p *Program) Lookup(path string) *Package {
	return p.byPath[path]
}

// LookupName returns the first loaded package with the given package
// name (not path). Testdata trees have no real module paths, so checks
// that anchor on a specific package fall back to its name.
func (p *Program) LookupName(name string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Name == name {
			return pkg
		}
	}
	return nil
}

// Load parses and type-checks the packages selected by patterns
// (either "./..." for the whole tree or explicit directories),
// relative to dir. dir (or an ancestor) may contain a go.mod naming
// the module; a bare tree (e.g. a lint testdata fixture) loads with
// directory-relative import paths.
func Load(dir string, patterns ...string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, module := findModule(abs)
	prog := &Program{
		Fset:   token.NewFileSet(),
		Module: module,
		Root:   root,
		byPath: make(map[string]*Package),
	}

	dirs, err := expandPatterns(abs, root, patterns)
	if err != nil {
		return nil, err
	}

	// Parse every selected directory first so import edges are known
	// before any type-checking starts.
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := prog.parseDir(d)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable Go files
		}
		pkgs = append(pkgs, pkg)
		prog.byPath[pkg.Path] = pkg
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("lint: no Go packages match %v under %s", patterns, abs)
	}

	ordered, err := topoSort(pkgs, prog.byPath)
	if err != nil {
		return nil, err
	}
	prog.Pkgs = ordered

	// Stdlib imports type-check from source (importer.ForCompiler with
	// the "source" compiler — the gc importer has no export data to
	// read in modern toolchains); module-internal imports resolve to
	// the packages we just checked, which topological order guarantees
	// are done first.
	imp := &progImporter{
		prog:   prog,
		source: stdlibImporter,
	}
	for _, pkg := range prog.Pkgs {
		pkg.check(imp)
	}
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod, returning the
// module root and path ("" and dir when there is none).
func findModule(dir string) (root, module string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					if m, err := strconv.Unquote(rest); err == nil {
						return d, m
					}
					return d, strings.TrimSpace(rest)
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir, ""
		}
		d = parent
	}
}

// expandPatterns resolves the CLI package patterns to directories.
// Supported forms: "./...", "dir/...", "./dir", "dir".
func expandPatterns(base, root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" || pat == "." {
			pat = base
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(base, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// testdata trees hold lint fixtures with deliberate
			// findings; hidden and vendored trees are not ours.
			if path != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	_ = root
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory, returning
// nil when there are none. Test files are out of scope: tests
// legitimately use wall clocks and RNGs, and the determinism contract
// binds the simulator, not its test harness.
func (p *Program) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		return nil, nil
	}
	_ = names

	pkg := &Package{
		Prog:  p,
		Dir:   dir,
		Name:  files[0].Name.Name,
		Files: files,
		Path:  p.importPath(dir),
	}
	impSeen := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !impSeen[path] {
				impSeen[path] = true
				pkg.Imports = append(pkg.Imports, path)
			}
		}
	}
	sort.Strings(pkg.Imports)
	return pkg, nil
}

// importPath maps a directory to its import path: module-qualified
// when a go.mod governs the tree, root-relative otherwise.
func (p *Program) importPath(dir string) string {
	rel, err := filepath.Rel(p.Root, dir)
	if err != nil || rel == "." {
		if p.Module != "" {
			return p.Module
		}
		return filepath.Base(dir)
	}
	rel = filepath.ToSlash(rel)
	if p.Module != "" {
		return p.Module + "/" + rel
	}
	return rel
}

// internal reports whether an import path belongs to the loaded tree.
func (p *Program) internal(path string) bool {
	if p.byPath[path] != nil {
		return true
	}
	return p.Module != "" && (path == p.Module || strings.HasPrefix(path, p.Module+"/"))
}

// topoSort orders packages so every module-internal dependency
// precedes its importer.
func topoSort(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	const (
		white = iota // unvisited
		grey         // on the current DFS stack
		black        // done
	)
	state := make(map[string]int)
	var out []*Package
	var visit func(pkg *Package, stack []string) error
	visit = func(pkg *Package, stack []string) error {
		switch state[pkg.Path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle: %s -> %s", strings.Join(stack, " -> "), pkg.Path)
		}
		state[pkg.Path] = grey
		for _, imp := range pkg.Imports {
			if dep := byPath[imp]; dep != nil {
				if err := visit(dep, append(stack, pkg.Path)); err != nil {
					return err
				}
			}
		}
		state[pkg.Path] = black
		out = append(out, pkg)
		return nil
	}
	for _, pkg := range pkgs {
		if err := visit(pkg, nil); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// stdlibImporter is shared across Load calls: the source importer
// re-type-checks each stdlib package from scratch (fmt's transitive
// closure costs seconds) and caches per-instance, so one process-wide
// instance amortizes the cost across loads — the golden-file tests
// load seven fixture trees. Stdlib positions land in a private
// FileSet, which is fine: diagnostics never point into the stdlib.
// Load is correspondingly not safe for concurrent use.
var stdlibImporter = importer.ForCompiler(token.NewFileSet(), "source", nil)

// progImporter resolves imports during type-checking: loaded packages
// by path, "unsafe" specially, everything else (the stdlib) from
// source via go/importer.
type progImporter struct {
	prog   *Program
	source types.Importer
	stdlib map[string]*types.Package
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg := pi.prog.byPath[path]; pkg != nil {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: import %q not yet type-checked (cycle?)", path)
		}
		return pkg.Types, nil
	}
	if pi.prog.internal(path) {
		return nil, fmt.Errorf("lint: module package %q not loaded (pass ./... or include it)", path)
	}
	if cached := pi.stdlib[path]; cached != nil {
		return cached, nil
	}
	tp, err := pi.source.Import(path)
	if err != nil {
		return nil, err
	}
	if pi.stdlib == nil {
		pi.stdlib = make(map[string]*types.Package)
	}
	pi.stdlib[path] = tp
	return tp, nil
}

// check type-checks one parsed package, collecting (not aborting on)
// type errors.
func (pkg *Package) check(imp types.Importer) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tp, _ := cfg.Check(pkg.Path, pkg.Prog.Fset, pkg.Files, info)
	pkg.Types = tp
	pkg.Info = info
}
