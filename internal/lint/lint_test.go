package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata golden files")

// goldenFixtures maps each check to its fixture tree under testdata/.
// Every fixture holds positive findings, an //rrlint:allow suppression
// and a clean case, so the golden file pins all three behaviors.
var goldenFixtures = []struct {
	check string
	dir   string
}{
	{"detrand", "detrand"},
	{"maporder", "maporder"},
	{"errcheck-io", "errcheckio"},
	{"lockcopy", "lockcopy"},
	{"hotpath-alloc", "hotpath"},
	{"faultpoint", "faultpoint"},
	{"lockorder", "lockorder"},
	{"blockinglock", "blockinglock"},
	{"goroleak", "goroleak"},
	{"atomicmix", "atomicmix"},
	{"shardsafety", "shardsafety"},
}

// loadFixture loads one testdata tree and fails the test on loader or
// type-checker errors: a fixture that does not compile proves nothing.
func loadFixture(t *testing.T, dir string) *Program {
	t.Helper()
	prog, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	for _, pkg := range prog.Pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", pkg.Path, e)
		}
	}
	return prog
}

// render formats diagnostics with fixture-relative paths so the golden
// files are stable across checkouts.
func render(t *testing.T, dir string, diags []Diagnostic) string {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range diags {
		rel, err := filepath.Rel(abs, d.File)
		if err != nil {
			rel = d.File
		}
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", filepath.ToSlash(rel), d.Line, d.Col, d.Check, d.Message)
	}
	return b.String()
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenFixtures {
		t.Run(tc.check, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			prog := loadFixture(t, dir)
			diags, err := Run(prog, []string{tc.check})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no findings; the positive cases are broken", tc.dir)
			}
			got := render(t, dir, diags)

			golden := filepath.Join(dir, "expect.golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to generate): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestSuppressionHonored re-runs each fixture and asserts no finding
// lands on a line covered by an //rrlint:allow comment — the golden
// files pin this too, but this failure mode deserves its own name.
func TestSuppressionHonored(t *testing.T) {
	for _, tc := range goldenFixtures {
		t.Run(tc.check, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			prog := loadFixture(t, dir)
			diags, err := Run(prog, []string{tc.check})
			if err != nil {
				t.Fatal(err)
			}
			idx := buildAllowIndex(prog)
			for _, d := range diags {
				if idx.allows(d.Pos, d.Check) {
					t.Errorf("suppressed finding reported: %s", d)
				}
			}
		})
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
		ok   bool
	}{
		{"//rrlint:allow detrand", []string{"detrand"}, true},
		{"//rrlint:allow detrand,maporder", []string{"detrand", "maporder"}, true},
		{"//rrlint:allow detrand maporder", []string{"detrand", "maporder"}, true},
		{"//rrlint:allow", []string{"*"}, true},
		{"//rrlint:allow detrand -- reviewed, seed is fixed", []string{"detrand"}, true},
		{"//rrlint:allow detrand # reviewed", []string{"detrand"}, true},
		{"// plain comment", nil, false},
		{"//rrlint:hotpath", nil, false},
	}
	for _, c := range cases {
		got, ok := parseAllow(c.text)
		if ok != c.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) && c.ok {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

// TestCrossFunctionSuppressionAtReportedSite pins the suppression
// contract for the call-graph checks: blockinglock reports in the
// frame that holds the lock, so the allow comment inside napAllowed
// (the callee) must not silence the misplacedAllow call site, while
// the allow on barrier's own fsync line must.
func TestCrossFunctionSuppressionAtReportedSite(t *testing.T) {
	dir := filepath.Join("testdata", "blockinglock")
	prog := loadFixture(t, dir)
	diags, err := Run(prog, []string{"blockinglock"})
	if err != nil {
		t.Fatal(err)
	}
	var callerSite, barrierSite bool
	for _, d := range diags {
		if strings.Contains(d.Message, "napAllowed") {
			callerSite = true
		}
		if d.Line == 52 { // barrier's suppressed j.f.Sync()
			barrierSite = true
		}
	}
	if !callerSite {
		t.Error("allow inside the callee suppressed the caller-site report; suppression must bind to the reported site")
	}
	if barrierSite {
		t.Error("allow at the reported site did not suppress the finding")
	}
}

// TestFactsSharedAcrossChecks is the perf contract: one Run over all
// four cross-function checks builds the call-graph facts exactly once.
func TestFactsSharedAcrossChecks(t *testing.T) {
	prog := loadFixture(t, filepath.Join("testdata", "lockorder"))
	if _, err := Run(prog, []string{"lockorder", "blockinglock", "goroleak", "atomicmix"}); err != nil {
		t.Fatal(err)
	}
	if prog.factBuilds != 1 {
		t.Errorf("facts built %d times across four checks, want 1", prog.factBuilds)
	}
}

func TestRunUnknownCheck(t *testing.T) {
	prog := loadFixture(t, filepath.Join("testdata", "hotpath"))
	if _, err := Run(prog, []string{"no-such-check"}); err == nil {
		t.Fatal("Run accepted an unknown check name")
	}
}

// TestRepoIsLintClean is the regression test for the violations this
// suite surfaced and fixed (the discarded EncodeWith error in the
// chaos baseline, the mis-shaped metric-name literals): the entire
// repository must stay clean under every check.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	prog, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatalf("Load repo: %v", err)
	}
	for _, pkg := range prog.Pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
	diags, err := Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}
