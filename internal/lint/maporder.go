package lint

import (
	"go/ast"
	"go/types"
)

// maporder: iterating a Go map is deliberately randomized, so a
// `range m` whose body feeds anything ordered — an appended slice that
// is never sorted, an io.Writer, an encoder, a stats table row — is a
// silent-divergence bug: two identical runs print different bytes.
// This is exactly the class of bug PR 1's byte-identical serial-vs-
// parallel test exists to catch at runtime; maporder catches it at
// lint time.
//
// The blessed pattern stays legal: collect keys into a slice inside
// the loop, sort the slice after the loop, then iterate the sorted
// keys. An append inside a map range is only reported when no sort.*
// or slices.Sort* call over the same slice follows within the
// function.

// orderedSinkMethods are method names whose call inside a map range
// emits order-dependent output no later sort can repair.
var orderedSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "AddRow": true,
}

// fmtPrinters are the fmt functions that emit output (Sprintf and
// friends produce values and are fine).
var fmtPrinters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

var maporderCheck = &Check{
	Name: "maporder",
	Doc:  "no map iteration feeding ordered output (unsorted append, writer, encoder, table row)",
	Run: func(pass *Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			eachFuncBody(pkg, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
				ast.Inspect(body, func(n ast.Node) bool {
					rng, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					if !isMapType(pkg, rng.X) {
						return true
					}
					checkMapRange(pass, pkg, body, rng)
					return true
				})
			})
		}
	},
}

func isMapType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body for ordered sinks and
// unsorted appends.
func checkMapRange(pass *Pass, pkg *Package, fn *ast.BlockStmt, rng *ast.RangeStmt) {
	// Slices appended to inside the loop, by root object. Reported
	// only if no later sort covers them.
	appended := make(map[types.Object]ast.Node)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			// A nested range handles its own findings (and a nested
			// map range is independently visited by the outer walk).
			if v != rng && isMapType(pkg, v.X) {
				return false
			}
		case *ast.CallExpr:
			obj := calleeObj(pkg, v)
			switch {
			case obj == nil:
			case objPkgPath(obj) == "fmt" && fmtPrinters[obj.Name()]:
				pass.Report(pkg, v, "fmt.%s inside range over map (iteration order is random; emit after sorting)", obj.Name())
			case obj.Pkg() != nil && orderedSinkMethods[obj.Name()] && isMethod(obj):
				pass.Report(pkg, v, "%s.%s inside range over map (iteration order is random; emit after sorting)",
					recvTypeName(obj), obj.Name())
			case isBuiltinAppend(pkg, v):
				if tgt := appendTarget(v, n); tgt != nil {
					if id := rootIdent(tgt); id != nil {
						if o := pkg.Info.ObjectOf(id); o != nil {
							if _, exists := appended[o]; !exists {
								appended[o] = v
							}
						}
					}
				}
			}
		}
		return true
	})

	// Appends recorded above are fine when a sort over the same slice
	// follows the loop (the collect-sort-iterate idiom).
	if len(appended) == 0 {
		return
	}
	for obj, site := range appended {
		if !sortedAfter(pkg, fn, rng, obj) {
			pass.Report(pkg, site, "append to %q inside range over map with no later sort (iteration order is random)", obj.Name())
		}
	}
}

func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// appendTarget finds what an append call grows: the enclosing
// assignment's matching LHS when there is one, else the append's own
// first argument (append used for side effect into a field, etc.).
func appendTarget(call *ast.CallExpr, _ ast.Node) ast.Expr {
	if len(call.Args) > 0 {
		return call.Args[0]
	}
	return nil
}

func isMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func recvTypeName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return "?"
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// sortedAfter reports whether a sort.* / slices.Sort* call mentioning
// obj appears in fn after the range statement.
func sortedAfter(pkg *Package, fn *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calleeObj(pkg, call)
		if callee == nil {
			return true
		}
		switch objPkgPath(callee) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pkg.Info.ObjectOf(id) == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
