package lint

import (
	"encoding/json"
	"path/filepath"
)

// SARIF output (Static Analysis Results Interchange Format, OASIS
// 2.1.0) is what GitHub code scanning, VS Code SARIF viewers and most
// CI dashboards ingest. rrlint emits the minimal-but-valid shape: one
// run, the rrlint driver with every registered check as a rule, and
// one result per diagnostic with a physical location. File URIs are
// emitted with forward slashes as the spec requires.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// SARIF renders the diagnostics as an indented SARIF 2.1.0 log. Every
// registered check appears as a rule (stable indices) even when it has
// no results, so a dashboard can tell "check ran clean" from "check
// did not run".
func SARIF(diags []Diagnostic) ([]byte, error) {
	var rules []sarifRule
	ruleIndex := make(map[string]int)
	for i, c := range Checks() {
		rules = append(rules, sarifRule{ID: c.Name, ShortDescription: sarifMessage{Text: c.Doc}})
		ruleIndex[c.Name] = i
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Check]
		if !ok {
			idx = -1
		}
		results = append(results, sarifResult{
			RuleID:    d.Check,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.File)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rrlint", InformationURI: "https://github.com/relaxreplay/relaxreplay", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}
