package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the cross-function analysis engine the concurrency
// checks (lockorder, blockinglock, goroleak, atomicmix) share. It is
// built once per loaded Program (Program.Facts) and reused by every
// check, so a full rrlint run pays for parsing, type-checking and the
// call-graph fixpoint exactly once.
//
// The engine works in three passes:
//
//  1. Node discovery: every declared function/method body and every
//     function literal becomes a funcNode.
//  2. Body walk: one source-order traversal per node maintaining an
//     approximate held-lock multiset (Lock adds, Unlock removes,
//     `defer Unlock` holds to function end), recording direct lock
//     acquisitions (with the held set at that instant — the direct
//     lock-order edges), direct blocking operations, static call
//     sites (with their held snapshot) and `go` statements.
//  3. Fixpoint: per-function summaries — the set of locks transitively
//     acquired and the set of blocking operations transitively
//     reachable — propagate over the call graph until stable. `go`
//     statements are NOT call edges: work on another goroutine neither
//     blocks the launcher nor orders against its held locks.
//
// Soundness caveats (deliberate; DESIGN.md §18):
//   - The held-set walk is source-order linear, not path-sensitive: an
//     Unlock inside one branch releases for everything after it, so
//     the engine under-reports rather than false-positives on
//     branchy lock/unlock shapes.
//   - Dynamic calls (function values, interface methods without a
//     loaded body) are opaque; only the blocking primitives the walk
//     classifies structurally (net.Conn I/O, os.File.Sync, channel
//     ops, time.Sleep, WaitGroup/Cond Wait) are seen through them.
//   - Lock identity is (owning named type, field path) or the package
//     variable — all instances of one field are one node, so locking
//     two instances of the same type in a fixed address order is
//     reported as a self-cycle and needs an //rrlint:allow.

// Facts is the shared cross-function analysis state.
type Facts struct {
	prog  *Program
	nodes []*funcNode
	byObj map[*types.Func]*funcNode
	byLit map[*ast.FuncLit]*funcNode
}

// Facts returns the call-graph facts, building them on first use. The
// result is cached on the Program so every check shares one build.
func (p *Program) Facts() *Facts {
	if p.facts == nil {
		p.factBuilds++
		p.facts = buildFacts(p)
	}
	return p.facts
}

// lockUse is one identified mutex: key is the identity (shared across
// functions for struct fields and package vars), disp the short name
// diagnostics print.
type lockUse struct {
	key  string
	disp string
	pos  token.Pos
}

// blockSite is one direct blocking operation, with the held-lock
// snapshot at that point (empty when no lock was held).
type blockSite struct {
	kind string
	pos  token.Pos
	held []lockUse
}

// blockOp is a summary entry: a blocking operation reachable from a
// function, with the callee chain that reaches it ("" when direct).
type blockOp struct {
	kind string
	via  string
}

// callSite is one static call to an in-program function, with the
// held-lock snapshot at the call.
type callSite struct {
	callee *funcNode
	pos    token.Pos
	held   []lockUse
}

// goSite is one `go` statement (the goroleak surface).
type goSite struct {
	call *ast.CallExpr
	pos  token.Pos
}

// lockEdge is one observed acquisition order: to was acquired while
// from was held. via names the call chain for cross-function edges.
type lockEdge struct {
	from, to lockUse
	pos      token.Pos
	pkg      *Package
	via      string
}

// funcNode is one function body in the call graph.
type funcNode struct {
	pkg  *Package
	name string
	obj  *types.Func  // nil for function literals
	lit  *ast.FuncLit // nil for declared functions
	body *ast.BlockStmt

	acquires  map[string]lockUse
	blocks    []blockSite
	calls     []callSite
	gos       []goSite
	lockEdges []lockEdge

	sumAcquires map[string]lockUse
	sumBlocks   map[string]blockOp
}

func buildFacts(prog *Program) *Facts {
	f := &Facts{
		prog:  prog,
		byObj: make(map[*types.Func]*funcNode),
		byLit: make(map[*ast.FuncLit]*funcNode),
	}
	// Pass 1: discover every function body.
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				n := &funcNode{pkg: pkg, obj: obj, body: fd.Body, name: declName(fd)}
				f.nodes = append(f.nodes, n)
				if obj != nil {
					f.byObj[obj] = n
				}
			}
			// Function literals are their own nodes: their body runs on
			// whatever goroutine (or deferred frame) invokes it, so it
			// gets a fresh held set.
			parent := ""
			ast.Inspect(file, func(x ast.Node) bool {
				if fd, ok := x.(*ast.FuncDecl); ok {
					parent = declName(fd)
				}
				if lit, ok := x.(*ast.FuncLit); ok {
					pos := prog.Fset.Position(lit.Pos())
					n := &funcNode{pkg: pkg, lit: lit, body: lit.Body,
						name: fmt.Sprintf("func literal in %s (line %d)", parent, pos.Line)}
					f.nodes = append(f.nodes, n)
					f.byLit[lit] = n
				}
				return true
			})
		}
	}
	// Pass 2: walk each body.
	for _, n := range f.nodes {
		n.acquires = make(map[string]lockUse)
		w := &bodyWalker{facts: f, node: n, held: newHeldSet()}
		w.walk(n.body)
	}
	// Pass 3: fixpoint over the call graph. Summaries only grow and
	// are bounded by the program's lock and primitive vocabulary, so
	// iteration terminates; the loop bound is a defensive backstop.
	for _, n := range f.nodes {
		n.sumAcquires = make(map[string]lockUse, len(n.acquires))
		for k, u := range n.acquires {
			n.sumAcquires[k] = u
		}
		n.sumBlocks = make(map[string]blockOp)
		for _, bs := range n.blocks {
			if _, ok := n.sumBlocks[bs.kind]; !ok {
				n.sumBlocks[bs.kind] = blockOp{kind: bs.kind}
			}
		}
	}
	for round := 0; round <= len(f.nodes); round++ {
		changed := false
		for _, n := range f.nodes {
			for _, cs := range n.calls {
				for k, u := range cs.callee.sumAcquires {
					if _, ok := n.sumAcquires[k]; !ok {
						n.sumAcquires[k] = u
						changed = true
					}
				}
				for k, op := range cs.callee.sumBlocks {
					if _, ok := n.sumBlocks[k]; !ok {
						via := cs.callee.name
						if op.via != "" {
							via += " -> " + op.via
						}
						n.sumBlocks[k] = blockOp{kind: k, via: via}
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return f
}

// declName renders a function declaration's display name,
// e.g. "flushIdle" or "(*Server).flushIdle".
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	writeTypeExpr(&b, fd.Recv.List[0].Type)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeTypeExpr(b *strings.Builder, e ast.Expr) {
	switch v := e.(type) {
	case *ast.Ident:
		b.WriteString(v.Name)
	case *ast.StarExpr:
		b.WriteString("*")
		writeTypeExpr(b, v.X)
	case *ast.IndexExpr:
		writeTypeExpr(b, v.X)
	case *ast.IndexListExpr:
		writeTypeExpr(b, v.X)
	default:
		b.WriteString("?")
	}
}

// heldSet is the approximate set of locks held at a program point,
// as a multiset preserving first-acquisition order.
type heldSet struct {
	order []lockUse
	count map[string]int
}

func newHeldSet() *heldSet {
	return &heldSet{count: make(map[string]int)}
}

func (h *heldSet) add(u lockUse) {
	if h.count[u.key] == 0 {
		h.order = append(h.order, u)
	}
	h.count[u.key]++
}

func (h *heldSet) remove(key string) {
	if h.count[key] == 0 {
		return
	}
	h.count[key]--
	if h.count[key] > 0 {
		return
	}
	for i, u := range h.order {
		if u.key == key {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
}

func (h *heldSet) snapshot() []lockUse {
	if len(h.order) == 0 {
		return nil
	}
	cp := make([]lockUse, len(h.order))
	copy(cp, h.order)
	return cp
}

// bodyWalker performs one node's source-order traversal.
type bodyWalker struct {
	facts *Facts
	node  *funcNode
	held  *heldSet
}

func (w *bodyWalker) walk(root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			// Own node, fresh held set; not part of this walk.
			return false
		case *ast.GoStmt:
			w.node.gos = append(w.node.gos, goSite{call: v.Call, pos: v.Pos()})
			// Arguments evaluate on the launching goroutine.
			for _, a := range v.Call.Args {
				w.walk(a)
			}
			return false
		case *ast.DeferStmt:
			w.call(v.Call, true)
			for _, a := range v.Call.Args {
				w.walk(a)
			}
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				w.block(v.Pos(), "select")
			}
			for _, c := range v.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, s := range cc.Body {
					w.walk(s)
				}
			}
			return false
		case *ast.SendStmt:
			w.block(v.Arrow, "channel send")
			w.walk(v.Chan)
			w.walk(v.Value)
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				w.block(v.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if t := exprType(w.node.pkg, v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.block(v.X.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			if w.call(v, false) {
				return false
			}
		}
		return true
	})
}

// block records one direct blocking operation with the current held
// snapshot.
func (w *bodyWalker) block(pos token.Pos, kind string) {
	w.node.blocks = append(w.node.blocks, blockSite{kind: kind, pos: pos, held: w.held.snapshot()})
}

// call classifies one call expression: mutex acquire/release, blocking
// primitive, or a static in-program call edge. Returns true when the
// traversal should not descend further (the call was fully handled).
func (w *bodyWalker) call(call *ast.CallExpr, isDefer bool) bool {
	pkg := w.node.pkg
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked (or deferred) literal: a call edge. The
		// deferred form runs at return, approximated as running here —
		// with `defer mu.Unlock()` holding to function end this
		// over-approximates the held set, never under.
		if callee := w.facts.byLit[lit]; callee != nil {
			w.node.calls = append(w.node.calls, callSite{callee: callee, pos: call.Pos(), held: w.held.snapshot()})
		}
		return false // still walk the literal's arguments and body node boundary
	}
	obj := calleeObj(pkg, call)
	if obj == nil {
		return false
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if tn, mn := syncMethodOf(obj); tn != "" && sel != nil {
		switch {
		case (tn == "Mutex" || tn == "RWMutex") && (mn == "Lock" || mn == "RLock"):
			if u := w.lockUseOf(sel, call.Pos()); u.key != "" {
				for _, h := range w.held.snapshot() {
					w.node.lockEdges = append(w.node.lockEdges,
						lockEdge{from: h, to: u, pos: call.Pos(), pkg: pkg})
				}
				if _, ok := w.node.acquires[u.key]; !ok {
					w.node.acquires[u.key] = u
				}
				w.held.add(u)
			}
			return true
		case (tn == "Mutex" || tn == "RWMutex") && (mn == "Unlock" || mn == "RUnlock"):
			if isDefer {
				return true // released only at return: held for the rest of the walk
			}
			if u := w.lockUseOf(sel, call.Pos()); u.key != "" {
				w.held.remove(u.key)
			}
			return true
		case (tn == "WaitGroup" || tn == "Cond") && mn == "Wait":
			w.block(call.Pos(), "sync."+tn+".Wait")
			return true
		}
	}
	switch {
	case objPkgPath(obj) == "time" && obj.Name() == "Sleep":
		w.block(call.Pos(), "time.Sleep")
		return true
	case objPkgPath(obj) == "os" && obj.Name() == "Sync" && isMethod(obj):
		w.block(call.Pos(), "os.File.Sync")
		return true
	case (obj.Name() == "Read" || obj.Name() == "Write") && isMethod(obj) && isConnShaped(recvType(obj)):
		w.block(call.Pos(), "net.Conn "+strings.ToLower(obj.Name()))
		return false // still visit arguments
	}
	if fn, ok := obj.(*types.Func); ok {
		if callee := w.facts.byObj[fn]; callee != nil {
			w.node.calls = append(w.node.calls, callSite{callee: callee, pos: call.Pos(), held: w.held.snapshot()})
		}
	}
	return false
}

// syncMethodOf returns the sync-package receiver type name and method
// name when obj is a method of a sync type ("", "" otherwise).
func syncMethodOf(obj types.Object) (string, string) {
	fn, ok := obj.(*types.Func)
	if !ok || objPkgPath(obj) != "sync" {
		return "", ""
	}
	rt := recvType(obj)
	if rt == nil {
		return "", ""
	}
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", ""
	}
	return named.Obj().Name(), fn.Name()
}

// lockUseOf derives the lock identity from the receiver expression of
// a Lock/Unlock call. Struct fields key on (owning named type, field
// path) — every instance of Server.mu is one lock-order node; package
// vars key on (package path, name); locals key on the declaring
// position (unique, never shared cross-function). An unresolvable
// receiver yields key "".
func (w *bodyWalker) lockUseOf(sel *ast.SelectorExpr, pos token.Pos) lockUse {
	pkg := w.node.pkg
	recv := ast.Unparen(sel.X)

	// Embedded mutex: `s.Lock()` where the struct embeds sync.Mutex.
	// The selection's field path names the embedded route.
	if selInfo, ok := pkg.Info.Selections[sel]; ok && len(selInfo.Index()) > 1 {
		if named := namedOf(selInfo.Recv()); named != nil {
			path := fieldPath(selInfo.Recv(), selInfo.Index()[:len(selInfo.Index())-1])
			return lockUse{
				key:  typeKey(named) + "." + path,
				disp: named.Obj().Name() + "." + path,
				pos:  pos,
			}
		}
	}

	switch v := recv.(type) {
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(v)
		if obj == nil {
			return lockUse{}
		}
		if vr, ok := obj.(*types.Var); ok && vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
			return lockUse{key: vr.Pkg().Path() + "." + vr.Name(), disp: vr.Name(), pos: pos}
		}
		// Local (or parameter): keyed by declaring position.
		return lockUse{
			key:  fmt.Sprintf("local:%d:%s", obj.Pos(), obj.Name()),
			disp: obj.Name(),
			pos:  pos,
		}
	case *ast.SelectorExpr:
		// s.mu, a.b.mu, shards[i].mu: identity is (named type of the
		// owner expression, field name).
		if t := exprType(pkg, v.X); t != nil {
			if named := namedOf(t); named != nil {
				return lockUse{
					key:  typeKey(named) + "." + v.Sel.Name,
					disp: named.Obj().Name() + "." + v.Sel.Name,
					pos:  pos,
				}
			}
		}
	}
	return lockUse{}
}

// namedOf unwraps pointers to the named type, nil when t has none.
func namedOf(t types.Type) *types.Named {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v
		default:
			return nil
		}
	}
}

func typeKey(n *types.Named) string {
	if n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}

// fieldPath renders the embedded-field route for a selection index
// prefix (all but the final method element).
func fieldPath(recv types.Type, index []int) string {
	var parts []string
	t := recv
	for _, i := range index {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			break
		}
		f := st.Field(i)
		parts = append(parts, f.Name())
		t = f.Type()
	}
	return strings.Join(parts, ".")
}

// lockOrderEdges assembles the global acquisition-order graph: the
// direct edges each body walk recorded, plus cross-function edges —
// a call made while holding H to a function whose summary acquires A
// orders H before A.
func (f *Facts) lockOrderEdges() []lockEdge {
	var edges []lockEdge
	for _, n := range f.nodes {
		edges = append(edges, n.lockEdges...)
		for _, cs := range n.calls {
			if len(cs.held) == 0 {
				continue
			}
			for _, a := range sortedUses(cs.callee.sumAcquires) {
				for _, h := range cs.held {
					edges = append(edges, lockEdge{
						from: h, to: a, pos: cs.pos, pkg: n.pkg,
						via: "via call to " + cs.callee.name,
					})
				}
			}
		}
	}
	return edges
}

func sortedUses(m map[string]lockUse) []lockUse {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockUse, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func sortedBlocks(m map[string]blockOp) []blockOp {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]blockOp, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// lockList renders a held snapshot for diagnostics.
func lockList(held []lockUse) string {
	names := make([]string, len(held))
	for i, u := range held {
		names[i] = u.disp
	}
	return strings.Join(names, ", ")
}
