package lint

import (
	"go/ast"
	"strings"
)

// hotpath-alloc: functions annotated `//rrlint:hotpath` in their doc
// comment are the per-instruction / per-event paths (telemetry
// counters, the recorder counting stage) where DESIGN.md's overhead
// rules demand zero allocation. Flagged inside such a function:
//
//   - fmt.* calls (interface boxing allocates, and formatting in a
//     per-cycle path is a bug regardless);
//   - function literals (closure environments allocate and the
//     capture defeats inlining);
//   - composite literals (slice/map/struct literals allocate or copy;
//     hot-path state is pre-allocated at construction time).
//
// The annotation is opt-in and the findings are suppressible line by
// line, so a deliberately cold branch inside a hot function (e.g. a
// once-per-interval trace emission behind a nil check) can carry an
// `//rrlint:allow hotpath-alloc` with the reasoning next to it.

var hotpathCheck = &Check{
	Name: "hotpath-alloc",
	Doc:  "functions marked //rrlint:hotpath must not call fmt, close over state, or build composite literals",
	Run: func(pass *Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			eachFuncBody(pkg, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
				if decl == nil || !isHotpath(decl) {
					return
				}
				name := decl.Name.Name
				ast.Inspect(body, func(n ast.Node) bool {
					switch v := n.(type) {
					case *ast.CallExpr:
						if obj := calleeObj(pkg, v); obj != nil && objPkgPath(obj) == "fmt" {
							pass.Report(pkg, v, "fmt.%s call in hotpath function %s (boxing + formatting allocate)", obj.Name(), name)
						}
					case *ast.FuncLit:
						pass.Report(pkg, v, "closure in hotpath function %s (environment capture allocates)", name)
					case *ast.CompositeLit:
						pass.Report(pkg, v, "composite literal in hotpath function %s (allocate at construction time instead)", name)
					}
					return true
				})
			})
		}
	},
}

func isHotpath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.Contains(c.Text, "rrlint:hotpath") {
			return true
		}
	}
	return false
}
