// Package maporder is a lint fixture: map iterations feeding ordered
// output, with and without the saving sort.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Keys collects map keys and never sorts them: callers see a
// different order every run.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Dump prints during iteration; no later sort can repair the order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Join writes into a builder during iteration.
func Join(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}

// Sum emits per-value lines but the caller has declared order
// irrelevant.
func Sum(w io.Writer, m map[string]int) {
	for _, v := range m {
		fmt.Fprintf(w, "%d\n", v) //rrlint:allow maporder -- fixture: order declared irrelevant
	}
}

// SortedKeys is the blessed collect-sort-iterate idiom.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Total folds commutatively; nothing ordered leaves the loop.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
