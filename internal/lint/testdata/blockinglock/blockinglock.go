// Package blockinglock is the rrlint fixture for the blockinglock
// check: an fsync while a mutex is held (the seeded
// fsync-while-locked case), blocking through a callee, a channel send
// under lock, a suppressed audited barrier, the misplaced-suppression
// case (an allow on the callee's line must not silence the caller's
// reported site), and a clean sleep-after-unlock.
package blockinglock

import (
	"os"
	"sync"
	"time"
)

type Journal struct {
	mu sync.Mutex
	f  *os.File
	ch chan int
}

// commit fsyncs while holding mu: direct finding at the Sync call.
func (j *Journal) commit() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync() // want: os.File.Sync while holding mu
}

// pause blocks through a callee: the finding lands on the call site
// in the frame that holds the lock.
func (j *Journal) pause() {
	j.mu.Lock()
	nap() // want: call blocks (time.Sleep) while holding mu
	j.mu.Unlock()
}

func nap() {
	time.Sleep(time.Millisecond)
}

// publish sends on a channel under the lock.
func (j *Journal) publish(v int) {
	j.mu.Lock()
	j.ch <- v // want: channel send while holding mu
	j.mu.Unlock()
}

// barrier is the audited exception: fsync-under-lock as a group-commit
// durability barrier, suppressed at the reported site.
func (j *Journal) barrier() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync() //rrlint:allow blockinglock -- fixture: audited group-commit barrier
}

// misplacedAllow calls a callee whose own line carries an allow
// comment. The reported site is HERE (the frame holding the lock), so
// that comment suppresses nothing and the finding still fires.
func (j *Journal) misplacedAllow() {
	j.mu.Lock()
	napAllowed() // want: still reported; the callee's allow is not at this site
	j.mu.Unlock()
}

func napAllowed() {
	time.Sleep(time.Millisecond) //rrlint:allow blockinglock -- wrong site: the check reports in the caller's frame
}

// cleanPause sleeps only after releasing the lock: no finding.
func (j *Journal) cleanPause() {
	j.mu.Lock()
	j.mu.Unlock()
	time.Sleep(time.Millisecond)
}
