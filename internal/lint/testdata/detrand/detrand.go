// Package detrand is a lint fixture: a self-declared deterministic
// package that consults the wall clock and the global RNG.
//
//rrlint:deterministic
package detrand

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock twice.
func Stamp() int64 {
	t := time.Now()
	elapsed := time.Since(t)
	return t.Unix() + int64(elapsed)
}

// Roll draws from the process-global stream.
func Roll() int {
	return rand.Intn(6)
}

// Jittered is a deliberate exception with the reasoning attached.
func Jittered() int {
	return rand.Intn(6) //rrlint:allow detrand -- fixture: suppressed on purpose
}

// Seeded uses an explicitly seeded source: determinism comes from the
// seed, so both the constructors and the methods on the generator are
// legal.
func Seeded(seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	return r.Uint64()
}

// Elapsed does arithmetic on time values without reading the clock.
func Elapsed(a, b time.Time) time.Duration {
	return b.Sub(a)
}
