// Package lockcopy is a lint fixture: lock- and atomic-bearing values
// copied every way the check covers, plus the pointer-clean forms.
package lockcopy

import (
	"sync"
	"sync/atomic"
)

// Guarded holds a mutex, so values must travel by pointer.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Cell holds an atomic counter; a copy splits the counter in two.
type Cell struct {
	v atomic.Uint64
}

// ByValue receives the lock by value: callers lock a different mutex
// than the callee.
func ByValue(g Guarded) int {
	return g.n
}

// Deref copies through a pointer.
func Deref(g *Guarded) int {
	h := *g
	h.n++
	return h.n
}

// Forward copies the lock into a callee frame.
func Forward(g *Guarded) {
	consume(*g)
}

// Sweep copies each element out of the slice.
func Sweep(gs []Guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

// SnapshotCell copies the padded atomic cell by value.
func SnapshotCell(c Cell) uint64 {
	return c.v.Load()
}

// Frozen copies deliberately: the value is dead after the copy and
// the reasoning is attached.
func Frozen(g *Guarded) int {
	h := *g //rrlint:allow lockcopy -- fixture: g is quiesced, copy is a snapshot
	return h.n
}

// CleanByPointer is the blessed form.
func CleanByPointer(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// CleanIndex indexes into the container instead of copying out.
func CleanIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

func consume(v interface{}) { _ = v }
