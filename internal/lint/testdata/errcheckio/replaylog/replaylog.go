// Package replaylog is a lint fixture mirroring the real encoder's
// shape: functions on the log write path that return errors callers
// must not drop.
package replaylog

import "io"

// Log is a stand-in for the recorded log.
type Log struct {
	Frames int
}

// Encode writes l to w.
func Encode(w io.Writer, l *Log) error {
	_, err := w.Write([]byte{byte(l.Frames)})
	return err
}

// Decode reads a log from r.
func Decode(r io.Reader) (*Log, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return nil, err
	}
	return &Log{Frames: int(b[0])}, nil
}
