// Package use is a lint fixture: every way to drop an error on the
// log write path, plus the handled forms.
package use

import (
	"bufio"
	"io"

	"relaxreplay/internal/lint/testdata/errcheckio/replaylog"
)

// DropAll discards errors four ways.
func DropAll(w io.Writer, l *replaylog.Log) {
	replaylog.Encode(w, l)
	_ = replaylog.Encode(w, l)
	bw := bufio.NewWriter(w)
	go replaylog.Encode(bw, l)
	defer bw.Flush()
}

// DropDecode discards only the error half of a multi-result call.
func DropDecode(r io.Reader) *replaylog.Log {
	l, _ := replaylog.Decode(r)
	return l
}

// BestEffort drops an error deliberately, with the reasoning attached.
func BestEffort(w io.Writer, l *replaylog.Log) {
	_ = replaylog.Encode(w, l) //rrlint:allow errcheck-io -- fixture: best-effort mirror copy
}

// Clean handles every error on the path.
func Clean(w io.Writer, l *replaylog.Log) error {
	bw := bufio.NewWriter(w)
	if err := replaylog.Encode(bw, l); err != nil {
		return err
	}
	return bw.Flush()
}
