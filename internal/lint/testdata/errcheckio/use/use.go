// Package use is a lint fixture: every way to drop an error on the
// log write path, plus the handled forms.
package use

import (
	"bufio"
	"io"
	"net"
	"os"
	"time"

	"relaxreplay/internal/lint/testdata/errcheckio/replaylog"
)

// DropAll discards errors four ways.
func DropAll(w io.Writer, l *replaylog.Log) {
	replaylog.Encode(w, l)
	_ = replaylog.Encode(w, l)
	bw := bufio.NewWriter(w)
	go replaylog.Encode(bw, l)
	defer bw.Flush()
}

// DropDecode discards only the error half of a multi-result call.
func DropDecode(r io.Reader) *replaylog.Log {
	l, _ := replaylog.Decode(r)
	return l
}

// BestEffort drops an error deliberately, with the reasoning attached.
func BestEffort(w io.Writer, l *replaylog.Log) {
	_ = replaylog.Encode(w, l) //rrlint:allow errcheck-io -- fixture: best-effort mirror copy
}

// Clean handles every error on the path.
func Clean(w io.Writer, l *replaylog.Log) error {
	bw := bufio.NewWriter(w)
	if err := replaylog.Encode(bw, l); err != nil {
		return err
	}
	return bw.Flush()
}

// DropConn discards net.Conn errors every way the daemons could.
func DropConn(c net.Conn) {
	c.SetDeadline(time.Now().Add(time.Second))
	_ = c.SetReadDeadline(time.Time{})
	defer c.Close()
	go c.SetWriteDeadline(time.Time{})
}

// wrapConn is a conn wrapper like the fault-injecting transport: it
// carries net.Conn's full method set, so its Close is flagged too.
type wrapConn struct {
	net.Conn
}

// DropWrapped drops a Close error through the wrapper type.
func DropWrapped(c *wrapConn) {
	c.Close()
}

// FileNotConn proves the shape test: *os.File has Close and the three
// deadline setters but no LocalAddr/RemoteAddr, so none of this is
// flagged.
func FileNotConn(f *os.File) {
	f.SetDeadline(time.Now())
	f.Close()
}

// BestEffortConn drops a Close deliberately, with the reasoning.
func BestEffortConn(c net.Conn) {
	_ = c.Close() //rrlint:allow errcheck-io -- fixture: teardown on an already-failed conn
}

// CleanConn handles the conn errors.
func CleanConn(c net.Conn) error {
	if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	return c.Close()
}
