// Package goroleak is the rrlint fixture for the goroleak check: an
// unsupervised goroutine literal and an unsupervised named launch
// (findings), a clean WaitGroup-supervised worker, a clean
// done-channel loop, a clean context launch, and a suppressed
// process-lifetime loop.
package goroleak

import (
	"context"
	"sync"
)

type Worker struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// leak launches a loop nothing can stop: finding at the go statement.
func (w *Worker) leak() {
	go func() { // want: no visible termination path
		for {
			step()
		}
	}()
}

// leakNamed launches a named spinner with the same problem.
func (w *Worker) leakNamed() {
	go spin() // want: no visible termination path
}

func spin() {
	for {
		step()
	}
}

// supervised joins the goroutine through the WaitGroup: clean.
func (w *Worker) supervised() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		step()
	}()
	w.wg.Wait()
}

// doneChannel polls a stop channel visible at the launch site: clean.
func (w *Worker) doneChannel() {
	go func() {
		for {
			select {
			case <-w.done:
				return
			default:
			}
			step()
		}
	}()
}

// announce closes a launcher-visible channel when finished (the other
// half of the done-channel pattern): clean.
func (w *Worker) announce() chan struct{} {
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		step()
	}()
	return finished
}

// withContext hands the goroutine a context: cancellation visibly
// reaches it. Clean.
func (w *Worker) withContext(ctx context.Context) {
	go run(ctx)
}

func run(ctx context.Context) {
	<-ctx.Done()
}

// background is an acknowledged process-lifetime loop: suppressed at
// the launch site.
func (w *Worker) background() {
	go spin() //rrlint:allow goroleak -- fixture: process-lifetime loop by design
}

func step() {}
