// Package hotpath is a lint fixture: annotated per-event paths that
// allocate, one with a deliberate cold-branch exemption, and an
// unannotated function the check must ignore.
package hotpath

import "fmt"

// Counter is a fixture hot-path counter.
type Counter struct {
	n      uint64
	labels []string
}

// Add is the per-event fast path and stays allocation-free.
//
//rrlint:hotpath
func (c *Counter) Add(n uint64) {
	c.n += n
}

// Describe is annotated hot but allocates three ways.
//
//rrlint:hotpath
func (c *Counter) Describe(n uint64) string {
	get := func() uint64 { return c.n + n }
	c.labels = []string{"n"}
	return fmt.Sprintf("%d", get())
}

// Trace is hot, but its formatting branch is a once-per-interval cold
// path with the exemption spelled out.
//
//rrlint:hotpath
func (c *Counter) Trace() string {
	//rrlint:allow hotpath-alloc -- fixture: cold branch, once per interval
	return fmt.Sprintf("%d", c.n)
}

// Cold is not annotated; anything goes.
func (c *Counter) Cold() string {
	return fmt.Sprintf("%d: %v", c.n, c.labels)
}
