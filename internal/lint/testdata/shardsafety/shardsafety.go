// Package shardsafety is the rrlint fixture for the shardsafety
// check: a core-phase function calling coordinator-only code directly
// (finding), one reaching it through a chain of unannotated helpers
// (finding with a via chain), a clean path through an epoch handoff —
// including a handoff whose own body replays into coordinator code —
// and a suppressed call.
package shardsafety

type sys struct {
	seq    uint64
	staged []uint64
}

// pushEvent schedules on the machine-global event heap.
//
//rrlint:coordinator
func (s *sys) pushEvent(id uint64) {
	s.seq++
	_ = id
}

// bump advances the machine-global sequence directly.
//
//rrlint:coordinator
func (s *sys) bump() {
	s.seq++
}

// complete is the epoch handoff for event scheduling: during the core
// phase it stages, at the barrier it replays into pushEvent. Callers
// stop here; the internal pushEvent call is the replay path.
//
//rrlint:handoff
func (s *sys) complete(id uint64, staged bool) {
	if staged {
		s.staged = append(s.staged, id)
		return
	}
	s.pushEvent(id)
}

// tickDirect runs on shard workers but schedules directly: finding.
//
//rrlint:shardphase
func (s *sys) tickDirect() {
	s.pushEvent(1) // want: calls coordinator-only
}

// tickViaHelper reaches the coordinator through two unannotated
// frames: finding, reported here with the via chain.
//
//rrlint:shardphase
func (s *sys) tickViaHelper() {
	s.helper() // want: reaches coordinator-only via helper -> deeper
}

func (s *sys) helper() {
	s.deeper()
}

func (s *sys) deeper() {
	s.bump()
}

// tickStaged funnels everything through the handoff: clean.
//
//rrlint:shardphase
func (s *sys) tickStaged() {
	s.complete(2, true)
}

// tickAllowed is an acknowledged exception: suppressed at the call.
//
//rrlint:shardphase
func (s *sys) tickAllowed() {
	s.bump() //rrlint:allow shardsafety -- fixture: single-shard-only diagnostic path
}
