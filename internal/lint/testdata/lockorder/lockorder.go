// Package lockorder is the rrlint fixture for the lockorder check: a
// two-mutex acquisition cycle (one direction direct, the other through
// a callee — the known-deadlock shape), a self-deadlock via a call, a
// suppressed pair, and a clean pair locked in a consistent order.
package lockorder

import "sync"

type Store struct {
	mu  sync.Mutex
	idx sync.Mutex
}

// lockBoth takes mu then idx: one direction of the cycle.
func (s *Store) lockBoth() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.Lock() // want: idx acquired while holding mu
	defer s.idx.Unlock()
}

// lockReverse takes idx then, via a callee, mu: the other direction.
// The engine sees the edge through touch's summary.
func (s *Store) lockReverse() {
	s.idx.Lock()
	defer s.idx.Unlock()
	s.touch() // want: call acquires mu while idx held
}

func (s *Store) touch() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// relock re-acquires mu through a callee while already holding it:
// a one-lock cycle (guaranteed self-deadlock for sync.Mutex).
func (s *Store) relock() {
	s.mu.Lock()
	s.again() // want: self-deadlock
	s.mu.Unlock()
}

func (s *Store) again() {
	s.mu.Lock()
	s.mu.Unlock()
}

// Pair's inconsistent order is acknowledged with suppressions on both
// reported edges: no findings.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *Pair) ab() {
	p.a.Lock()
	p.b.Lock() //rrlint:allow lockorder -- fixture: suppressed direction
	p.b.Unlock()
	p.a.Unlock()
}

func (p *Pair) ba() {
	p.b.Lock()
	p.a.Lock() //rrlint:allow lockorder -- fixture: suppressed direction
	p.a.Unlock()
	p.b.Unlock()
}

// Clean locks first before second on every path (directly and through
// a callee): a consistent partial order, no findings.
type Clean struct {
	first  sync.Mutex
	second sync.Mutex
}

func (c *Clean) one() {
	c.first.Lock()
	c.second.Lock()
	c.second.Unlock()
	c.first.Unlock()
}

func (c *Clean) two() {
	c.first.Lock()
	defer c.first.Unlock()
	c.lockSecond()
}

func (c *Clean) lockSecond() {
	c.second.Lock()
	c.second.Unlock()
}
