// Package atomicmix is the rrlint fixture for the atomicmix check:
// a field incremented through sync/atomic but also read and written
// plainly (findings at every plain site), a suppressed
// pre-publication initialization, and clean fields (a typed atomic
// wrapper and a purely plain counter).
package atomicmix

import "sync/atomic"

type Counter struct {
	hits  uint64
	safe  atomic.Uint64
	plain uint64
}

func (c *Counter) inc() {
	atomic.AddUint64(&c.hits, 1)
}

// read loads hits without atomic: a race with inc.
func (c *Counter) read() uint64 {
	return c.hits // want: plain access of an atomically-accessed field
}

// reset stores plainly for the same field.
func (c *Counter) reset() {
	c.hits = 0 // want: plain store
}

// newCounter initializes before the value is shared: acknowledged
// with a suppression at the plain site.
func newCounter() *Counter {
	c := &Counter{}
	c.hits = 0 //rrlint:allow atomicmix -- fixture: pre-publication init, not yet shared
	return c
}

// ok uses the typed wrapper (mix-proof by construction) and a field
// that is only ever plain: no findings.
func (c *Counter) ok() uint64 {
	c.safe.Add(1)
	c.plain++
	return c.safe.Load() + c.plain
}
