// Package faultinject is a lint fixture mirroring the real registry's
// shape: Point-typed constants plus a Points() enumeration that has
// drifted out of sync.
package faultinject

// Point names one injectable fault site.
type Point string

// The registered fault points.
const (
	LogBitFlip Point = "log.bitflip"
	ICDelay    Point = "ic.delay"
	FlushCrash Point = "flush.crash"
)

// Points lists the registry for the -faults parser. It omits
// FlushCrash, so no spec can ever enable that point.
func Points() []Point {
	return []Point{LogBitFlip, ICDelay}
}
