// Package use is a lint fixture exercising the faultpoint literal and
// comment sweeps against the sibling faultinject registry.
package use

// Specs are chaos specs: two name points that are not registered.
var Specs = []string{
	"log.bitflip",
	"log.bitflop",
	"ic.dealy",
	"flush.crash",
}

// Sentinel shares the point shape but is deliberately not a point.
var Sentinel = "log.sentinel" //rrlint:allow faultpoint -- fixture: marker string, not a point

// BadDoc documents the -faults flag and names ic.dely, a typo no
// spec parser will ever accept.
func BadDoc() {}

// GoodDoc exists so the suppressed comment group below has an anchor.
func GoodDoc() {}

// The group below is free-standing (gofmt leaves its line order
// alone, unlike a doc comment, where directives sink to the bottom):
//
//rrlint:allow faultpoint -- fixture: the next line is a counter-example on purpose
// ...the help text deliberately names flush.flood, a non-existent point.
