package lint

import (
	"sort"
	"strings"
)

// lockorder: the mutex acquisition order must be a partial order. The
// engine observes every "B acquired while A held" edge — directly in a
// body, or through a call made while A is held to a function whose
// summary (transitively) acquires B — and any cycle in that graph is a
// latent deadlock: two goroutines entering the cycle from different
// edges stall forever, which in this codebase means a recording
// session that never commits. The rrnet server documents its
// discipline as a comment ("sess.mu may be held while taking s.mu or
// jmu, never the reverse"); this check is that comment, machine-
// checked across every call path.
//
// Every edge that participates in a cycle is reported (at the inner
// acquisition or the call site that creates it), so each direction of
// a deadlock has its own suppressible site. A self-edge — re-acquiring
// a lock already held, or locking two instances of the same field,
// which the engine cannot tell apart — is a one-node cycle.

var lockorderCheck = &Check{
	Name: "lockorder",
	Doc:  "no cycles in the mutex acquisition order across any call path",
	Run: func(pass *Pass) {
		edges := pass.Prog.Facts().lockOrderEdges()
		if len(edges) == 0 {
			return
		}

		// Dedupe by (from, to), keeping the earliest position so the
		// report (and its suppression site) is stable.
		type key struct{ from, to string }
		best := make(map[key]lockEdge)
		adj := make(map[string][]string)
		disp := make(map[string]string)
		for _, e := range edges {
			k := key{e.from.key, e.to.key}
			cur, ok := best[k]
			if !ok || e.pos < cur.pos {
				best[k] = e
			}
			if !ok {
				adj[e.from.key] = append(adj[e.from.key], e.to.key)
			}
			disp[e.from.key] = e.from.disp
			disp[e.to.key] = e.to.disp
		}

		scc := stronglyConnected(adj)
		compOf := make(map[string]int)
		for i, comp := range scc {
			for _, v := range comp {
				compOf[v] = i
			}
		}

		var cyclic []lockEdge
		for k, e := range best {
			if k.from == k.to {
				cyclic = append(cyclic, e) // self-cycle
				continue
			}
			if ci, ok := compOf[k.from]; ok && compOf[k.to] == ci && len(scc[ci]) > 1 {
				cyclic = append(cyclic, e)
			}
		}
		sort.Slice(cyclic, func(i, j int) bool { return cyclic[i].pos < cyclic[j].pos })

		for _, e := range cyclic {
			if e.from.key == e.to.key {
				pass.ReportPos(e.pkg, e.pos,
					"%s acquired while already held%s — self-deadlock (or two instances of one lock field, which this check cannot distinguish)",
					e.from.disp, viaSuffix(e.via))
				continue
			}
			members := sccMembers(scc[compOf[e.from.key]], disp, e.from.disp)
			pass.ReportPos(e.pkg, e.pos,
				"%s acquired while holding %s%s — completes a lock-order cycle (%s)",
				e.to.disp, e.from.disp, viaSuffix(e.via), members)
		}
	},
}

func viaSuffix(via string) string {
	if via == "" {
		return ""
	}
	return " " + via
}

// sccMembers renders the cycle's lock set, rotated to start at the
// reported edge's holder so every report of one cycle names it the
// same way.
func sccMembers(comp []string, disp map[string]string, first string) string {
	names := make([]string, 0, len(comp))
	for _, k := range comp {
		names = append(names, disp[k])
	}
	sort.Strings(names)
	for i, n := range names {
		if n == first {
			names = append(names[i:], names[:i]...)
			break
		}
	}
	return strings.Join(append(names, names[0]), " -> ")
}

// stronglyConnected returns Tarjan's strongly connected components for
// the string-keyed adjacency list, in deterministic order.
func stronglyConnected(adj map[string][]string) [][]string {
	verts := make([]string, 0, len(adj))
	seen := make(map[string]bool)
	addV := func(v string) {
		if !seen[v] {
			seen[v] = true
			verts = append(verts, v)
		}
	}
	keys := make([]string, 0, len(adj))
	for v := range adj {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	for _, v := range keys {
		addV(v)
		sorted := append([]string(nil), adj[v]...)
		sort.Strings(sorted)
		adj[v] = sorted
		for _, w := range sorted {
			addV(w)
		}
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range verts {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return comps
}
