// Package lint is rrlint's analyzer framework: a stdlib-only static
// analysis suite (go/ast + go/parser + go/types, no external deps)
// that proves the simulator's determinism and hot-path invariants at
// build time instead of discovering violations at replay time.
//
// RelaxReplay's contract is bit-exact recording and byte-identical
// replay (paper §3, §5). The regression tests catch a nondeterminism
// bug only after someone writes one AND a test happens to exercise it;
// rrlint rejects the usual sources mechanically, the way QuickRec- and
// Castor-style systems treat wall clocks and unseeded RNGs as
// build-time errors:
//
//   - detrand: no wall-clock or global-RNG calls inside the
//     deterministic simulation packages.
//   - maporder: no map iteration whose body feeds ordered output
//     (append without a later sort, writer/encoder/table calls).
//   - errcheck-io: no discarded errors from replaylog encode/decode
//     or Flush on the (fault-injectable) log write path.
//   - lockcopy: no by-value copies of types holding locks or atomics
//     (mutexes, the telemetry registry and its padded cells).
//   - hotpath-alloc: functions annotated //rrlint:hotpath must stay
//     free of fmt calls, closures and composite literals.
//   - faultpoint: every fault-point-shaped string literal matches a
//     point registered in internal/faultinject, and Points() lists
//     every declared point.
//
// On top of the per-function checks sits a type-aware cross-function
// engine (callgraph.go): a static call graph over the type-checked
// program with per-function summaries — locks acquired, blocking
// operations performed, goroutines launched — propagated to a
// fixpoint. Four concurrency checks run on it:
//
//   - lockorder: the observed mutex-acquisition order (across all
//     call paths) must be cycle-free.
//   - blockinglock: no blocking operation (conn I/O, fsync, channel
//     op, sleep) reachable while a mutex is held; reported in the
//     frame that holds the lock.
//   - goroleak: every `go` statement is supervised by a context,
//     done-channel, or WaitGroup visible at the launch site.
//   - atomicmix: no struct field is accessed both through sync/atomic
//     and by plain load/store anywhere in the program.
//   - shardsafety: no //rrlint:shardphase function (the sharded run
//     loop's core phase) may reach an //rrlint:coordinator function
//     (machine-global state) except through an //rrlint:handoff that
//     stages the effect for the epoch barrier.
//
// Findings are suppressed per line with a `//rrlint:allow <check>`
// comment (on the offending line or the line above), so intentional
// exceptions are visible and grep-able. For the cross-function checks
// the comment must sit at the REPORTED site — the frame holding the
// lock, the go statement, the plain field access — not inside a
// callee, so the suppression documents the frame that owns the
// tradeoff.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for editors and CI logs.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one analysis. Run inspects the whole program (checks that
// need cross-package state, like faultpoint, see everything) and
// reports findings through pass.Report, which applies suppression.
type Check struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Checks returns every registered check in stable order.
func Checks() []*Check {
	return []*Check{
		detrandCheck,
		maporderCheck,
		errcheckIOCheck,
		lockcopyCheck,
		hotpathCheck,
		faultpointCheck,
		lockorderCheck,
		blockinglockCheck,
		goroleakCheck,
		atomicmixCheck,
		shardsafetyCheck,
	}
}

// CheckNames returns the registered check names in stable order.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// Pass carries one check's view of the program plus the reporting
// sink. Checks iterate prog.Pkgs themselves.
type Pass struct {
	Check *Check
	Prog  *Program

	diags   []Diagnostic
	allowed func(pos token.Position, check string) bool
}

// Report records a finding at the given node unless an
// `//rrlint:allow` comment suppresses it.
func (p *Pass) Report(pkg *Package, node ast.Node, format string, args ...any) {
	p.ReportPos(pkg, node.Pos(), format, args...)
}

// ReportPos is Report for checks that carry raw positions (the
// cross-function checks report at sites recorded during the shared
// call-graph walk, not at a node in hand).
func (p *Pass) ReportPos(pkg *Package, tpos token.Pos, format string, args ...any) {
	pos := pkg.Prog.Fset.Position(tpos)
	if p.allowed(pos, p.Check.Name) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:     pos,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Check:   p.Check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the named checks (all registered checks when names is
// empty) over the loaded program and returns the findings sorted by
// position.
func Run(prog *Program, names []string) ([]Diagnostic, error) {
	enabled := make(map[string]bool)
	known := make(map[string]*Check)
	for _, c := range Checks() {
		known[c.Name] = c
	}
	if len(names) == 0 {
		for n := range known {
			enabled[n] = true
		}
	} else {
		for _, n := range names {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if known[n] == nil {
				return nil, fmt.Errorf("lint: unknown check %q (have: %s)",
					n, strings.Join(CheckNames(), ", "))
			}
			enabled[n] = true
		}
	}

	allow := buildAllowIndex(prog)
	var all []Diagnostic
	for _, c := range Checks() {
		if !enabled[c.Name] {
			continue
		}
		pass := &Pass{Check: c, Prog: prog, allowed: allow.allows}
		c.Run(pass)
		all = append(all, pass.diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return all, nil
}

// allowIndex maps file -> line -> set of suppressed check names. A
// comment on line N suppresses findings on line N (trailing comment)
// and line N+1 (comment-above style).
type allowIndex map[string]map[int]map[string]bool

func buildAllowIndex(prog *Program) allowIndex {
	idx := make(allowIndex)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					checks, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					lines := idx[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						idx[pos.Filename] = lines
					}
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = make(map[string]bool)
						}
						for _, ch := range checks {
							lines[ln][ch] = true
						}
					}
				}
			}
		}
	}
	return idx
}

// parseAllow extracts the check list from an `//rrlint:allow a,b`
// comment. A bare `//rrlint:allow` suppresses every check ("*").
func parseAllow(text string) ([]string, bool) {
	const prefix = "//rrlint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	// Strip a trailing explanation after " -- " or " # ".
	for _, sep := range []string{" -- ", " # "} {
		if i := strings.Index(rest, sep); i >= 0 {
			rest = strings.TrimSpace(rest[:i])
		}
	}
	if rest == "" {
		return []string{"*"}, true
	}
	var checks []string
	for _, c := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' }) {
		if c != "" {
			checks = append(checks, c)
		}
	}
	return checks, true
}

func (idx allowIndex) allows(pos token.Position, check string) bool {
	set := idx[pos.Filename][pos.Line]
	return set != nil && (set[check] || set["*"])
}
