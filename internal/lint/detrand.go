package lint

import (
	"go/ast"
	"go/types"
)

// detrand: the deterministic simulation packages must not consult a
// wall clock or the process-global RNG. Recording must be a pure
// function of (workload, config, seed) — the paper's bit-exact replay
// contract (§3, §5) — so time.Now in a cycle loop or math/rand's
// global source anywhere in the pipeline is a replay-divergence bug
// waiting for a test to miss it. Explicitly seeded generators
// (rand.New(rand.NewSource(seed))) stay legal: determinism comes from
// the seed, and faultinject's splitmix stream is the house style.
//
// A package is deterministic when its import path is one of the seven
// simulation packages, or when any of its files carries a
// `//rrlint:deterministic` directive comment.

// deterministicPkgs are the packages whose output the replay contract
// covers (ISSUE: everything between workload input and encoded log).
var deterministicPkgs = []string{
	"relaxreplay/internal/cpu",
	"relaxreplay/internal/coherence",
	"relaxreplay/internal/interconnect",
	"relaxreplay/internal/core",
	"relaxreplay/internal/machine",
	"relaxreplay/internal/replay",
	"relaxreplay/internal/replaylog",
}

// timeBanned are the time package functions that read the wall clock
// or schedule against it.
var timeBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// randSeeded are the math/rand constructors that take an explicit
// source or seed; everything else at package level draws from the
// global, unreproducible stream.
var randSeeded = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

var detrandCheck = &Check{
	Name: "detrand",
	Doc:  "no wall clock or global RNG inside the deterministic simulation packages",
	Run: func(pass *Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			if !isDeterministicPkg(pkg) {
				continue
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					obj := pkg.Info.Uses[sel.Sel]
					if obj == nil || obj.Pkg() == nil {
						return true
					}
					if _, isFunc := obj.(*types.Func); !isFunc {
						return true
					}
					// Methods are fine: calling through a *rand.Rand (or a
					// time.Time value) means the caller already holds an
					// explicit generator/value — only the package-level
					// functions reach the global stream or the wall clock.
					if isMethod(obj) {
						return true
					}
					switch obj.Pkg().Path() {
					case "time":
						if timeBanned[obj.Name()] {
							pass.Report(pkg, sel, "time.%s in deterministic package %s (recording must be a pure function of workload+seed)",
								obj.Name(), pkg.Name)
						}
					case "math/rand", "math/rand/v2":
						if !randSeeded[obj.Name()] {
							pass.Report(pkg, sel, "global math/rand.%s in deterministic package %s (use an explicitly seeded source)",
								obj.Name(), pkg.Name)
						}
					}
					return true
				})
			}
		}
	},
}

func isDeterministicPkg(pkg *Package) bool {
	for _, p := range deterministicPkgs {
		if pkg.Path == p {
			return true
		}
	}
	for _, f := range pkg.Files {
		if fileHasDirective(f, "rrlint:deterministic") {
			return true
		}
	}
	return false
}
