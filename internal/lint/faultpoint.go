package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// faultpoint: the fault-injection vocabulary must be closed. Every
// string that looks like a fault-point name ("log.bitflip",
// "flush.crash", "ic.delay" — in code or in the doc comments the four
// cmds print as -faults help) must name a point actually registered in
// internal/faultinject, and faultinject.Points() must list every
// declared point. A typo'd spec otherwise fails silently: the chaos
// matrix reports "no such point" at best, or quietly tests nothing.
//
// The check anchors on the loaded faultinject package (by import path
// or, for fixtures, by package name), collects the string values of
// its Point-typed constants, then sweeps every package for
// point-shaped string literals and comment tokens. Telemetry metric
// names share the dotted-lowercase shape, so string arguments to
// package telemetry calls (Registry.Counter and friends) — names like
//rrlint:allow faultpoint -- the next line's example is a metric name, not a point
// "log.intervals" — are exempt from the sweep.

// faultPointShape matches a fault-point-name-looking token: one of
// the known family prefixes, a dot, and a lowercase word (hyphens
// allowed: net.reorder-conn). The net family only matches lowercase
// tails, so ordinary package-net identifiers in prose (net.Conn,
// net.Pipe) stay out of the sweep.
var faultPointShape = regexp.MustCompile(`^(log|ic|flush|net)\.[a-z][a-z0-9-]*[a-z0-9]$|^(log|ic|flush|net)\.[a-z]$`)

// faultPointInText finds point-shaped tokens inside prose (comments).
var faultPointInText = regexp.MustCompile(`\b(log|ic|flush|net)\.[a-z][a-z0-9-]*[a-z0-9]\b|\b(log|ic|flush|net)\.[a-z]\b`)

var faultpointCheck = &Check{
	Name: "faultpoint",
	Doc:  "fault-point name strings and Points() must match faultinject's registered set exactly",
	Run: func(pass *Pass) {
		fi := pass.Prog.Lookup("relaxreplay/internal/faultinject")
		if fi == nil {
			fi = pass.Prog.LookupName("faultinject")
		}
		if fi == nil || fi.Types == nil {
			return // nothing to anchor on (not loaded in this run)
		}
		registered, constDecls := faultPoints(fi)
		if len(registered) == 0 {
			return
		}

		checkPointsFunc(pass, fi, registered)

		known := func(name string) bool { return registered[name] != "" }
		for _, pkg := range pass.Prog.Pkgs {
			for _, f := range pkg.Files {
				exempt := metricNameLits(pkg, f)
				ast.Inspect(f, func(n ast.Node) bool {
					lit, ok := n.(*ast.BasicLit)
					if !ok || lit.Kind.String() != "STRING" {
						return true
					}
					if constDecls[lit] || exempt[lit] {
						return true // registry declarations / metric names
					}
					s, err := strconv.Unquote(lit.Value)
					if err != nil || !faultPointShape.MatchString(s) {
						return true
					}
					if !known(s) {
						pass.Report(pkg, lit, "fault point %q is not registered in faultinject (known: %s)",
							s, knownList(registered))
					}
					return true
				})
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						for _, m := range faultPointInText.FindAllString(c.Text, -1) {
							if !known(m) {
								pass.Report(pkg, c, "comment names fault point %q which is not registered in faultinject (typo'd -faults docs; known: %s)",
									m, knownList(registered))
							}
						}
					}
				}
			}
		}
	},
}

// metricNameLits collects the string literals passed directly to
// package telemetry calls in one file: metric names, which share the
// fault-point shape but live in a different namespace.
func metricNameLits(pkg *Package, f *ast.File) map[*ast.BasicLit]bool {
	exempt := make(map[*ast.BasicLit]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pkg, call)
		if obj == nil || !pkgPathIs(objPkgPath(obj), "telemetry") {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok {
				exempt[lit] = true
			}
		}
		return true
	})
	return exempt
}

// faultPoints collects the string values of faultinject's Point-typed
// constants, mapping value -> const name, plus the set of BasicLits
// that declare them (exempt from the literal sweep).
func faultPoints(fi *Package) (map[string]string, map[*ast.BasicLit]bool) {
	points := make(map[string]string)
	decls := make(map[*ast.BasicLit]bool)
	for _, f := range fi.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj, ok := fi.Info.Defs[name].(*types.Const)
					if !ok || !isPointType(obj.Type()) {
						continue
					}
					if obj.Val().Kind() != constant.String {
						continue
					}
					points[constant.StringVal(obj.Val())] = name.Name
					if i < len(vs.Values) {
						if lit, ok := ast.Unparen(vs.Values[i]).(*ast.BasicLit); ok {
							decls[lit] = true
						}
					}
				}
			}
		}
	}
	return points, decls
}

func isPointType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Point"
}

// checkPointsFunc verifies that faultinject's Points() function
// mentions every declared Point constant — the registry callers (the
// -faults parser, the chaos matrix) enumerate through Points(), so a
// constant missing from it is a point no spec can ever enable.
func checkPointsFunc(pass *Pass, fi *Package, registered map[string]string) {
	for _, f := range fi.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Points" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			mentioned := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if c, ok := fi.Info.Uses[id].(*types.Const); ok && isPointType(c.Type()) &&
					c.Val().Kind() == constant.String {
					mentioned[constant.StringVal(c.Val())] = true
				}
				return true
			})
			var missing []string
			for val, name := range registered {
				if !mentioned[val] {
					missing = append(missing, name+" ("+val+")")
				}
			}
			sort.Strings(missing)
			if len(missing) > 0 {
				pass.Report(fi, fd.Name, "Points() omits declared fault point(s): %s (no -faults spec can enable them)",
					strings.Join(missing, ", "))
			}
			return
		}
	}
}

func knownList(registered map[string]string) string {
	var names []string
	for v := range registered {
		names = append(names, v)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
